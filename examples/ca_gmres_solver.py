"""Communication-avoiding GMRES on a 2-D Poisson problem.

The s-step Krylov pipeline end to end: matrix-powers basis blocks
(Newton-shifted for conditioning), TSQR panel orthogonalization, and the
projected least-squares solve — compared against classical MGS-Arnoldi
GMRES on the same problem.

Run:  python examples/ca_gmres_solver.py
"""

from __future__ import annotations

import numpy as np

from repro.krylov import (
    arnoldi,
    basis_condition,
    ca_gmres,
    gmres,
    laplacian_2d,
    monomial_basis,
    newton_basis,
)


def main() -> None:
    nx = ny = 32
    op = laplacian_2d(nx, ny)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(op.n)
    print(f"solving a {op.n} x {op.n} Poisson system ({op.name})")

    # Why the Newton basis: monomial s-step bases collapse.
    s = 10
    pre = arnoldi(op, b, s)
    shifts = np.linalg.eigvals(pre.H[:s, :s]).real
    c_mono = basis_condition(monomial_basis(op, b, s))
    c_newt = basis_condition(newton_basis(op, b, s, shifts))
    print(f"s={s} basis condition: monomial {c_mono:.2e}  vs  Newton {c_newt:.2e}")

    # Classical GMRES vs CA-GMRES with the same basis size.
    for m_basis in (30, 60, 90):
        g = gmres(op, b, m=m_basis)
        cg = ca_gmres(op, b, s=6, n_blocks=m_basis // 6)
        print(
            f"  basis {m_basis:3d}: GMRES rel.res {g.relative_residual:9.2e}   "
            f"CA-GMRES rel.res {cg.relative_residual:9.2e}"
        )

    cg = ca_gmres(op, b, s=6, n_blocks=25, tol=1e-8)
    print(f"\nCA-GMRES, 150-dim basis: rel.res {cg.relative_residual:.2e}, "
          f"converged={cg.converged}, matvecs={cg.n_matvecs}")


if __name__ == "__main__":
    main()
