"""Multi-tenant QR serving: coalesced throughput, bit-identical answers.

Several tenants stream small same-shape least-squares problems at one
`QRServer`; the server merges each time window's requests into a single
stacked compact-WY factorization — the paper's batching amortization,
applied to requests instead of tree nodes. The demo shows:

1. results through the server are *bitwise* equal to `QRDispatcher.qr`;
2. the throughput gap between per-request and coalesced execution;
3. typed backpressure (`QueueFullError`) instead of unbounded queues;
4. the per-tenant rollup from the obs span stream.

Run:  python examples/qr_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.dispatch import QRDispatcher
from repro.serving import QRServer, QueueFullError, format_report, run_load

M, N = 256, 32
TENANTS = ("acme", "globex", "initech")


def main() -> None:
    rng = np.random.default_rng(0)
    mats = [rng.standard_normal((M, N)) for _ in range(24)]

    # -- 1. bit-identity: the server changes throughput, never answers --
    reference = QRDispatcher()
    expected = [reference.qr(A) for A in mats]
    with obs.capture() as session, QRServer() as server:
        futures = [
            server.submit(A, tenant=TENANTS[i % len(TENANTS)])
            for i, A in enumerate(mats)
        ]
        results = [f.result() for f in futures]
        stats = server.stats()
    exact = all(
        np.array_equal(got.Q, exp.Q) and np.array_equal(got.R, exp.R)
        for got, exp in zip(results, expected)
    )
    print(f"bit-identical to QRDispatcher.qr on all {len(mats)} requests: {exact}")
    print(
        f"rungs taken: coalesced={stats.coalesced_requests} "
        f"shared-plan={stats.shared_plan_requests} "
        f"per-request={stats.per_request} "
        f"({stats.coalesced_batches} stacked batches)"
    )

    # -- 2. per-tenant breakdown from the span stream --
    print("\nper-tenant rollup (obs.tenant_summary):")
    for row in obs.tenant_summary(session.trace):
        rungs = ", ".join(f"{k}:{v}" for k, v in sorted(row["rungs"].items()))
        print(
            f"  {row['tenant']:8s} {row['requests']:3d} requests "
            f"({row['failed']} failed)  queue p50 {row['queue_p50_ms']:.2f} ms  "
            f"[{rungs}]"
        )

    # -- 3. the throughput gap, measured by the shared load generator --
    print("\nload test (same generator as `python -m repro serve-bench`):")
    per_request = run_load(
        QRDispatcher(), mode="per-request", m=M, n=N, requests=256
    )
    with QRServer() as server:
        run_load(server, mode="coalesced", m=M, n=N, requests=64)  # warmup
        coalesced = run_load(server, mode="coalesced", m=M, n=N, requests=256)
    print(f"  {format_report(per_request)}")
    print(f"  {format_report(coalesced)}")
    print(f"  coalesce speedup: {coalesced.qps / per_request.qps:.2f}x")

    # -- 4. overload is a typed error, not a hang --
    with QRServer(max_depth=8, max_wait_ms=50.0) as server:
        admitted, rejected = [], 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < 0.05:
            try:
                admitted.append(server.submit(mats[len(admitted) % len(mats)]))
            except QueueFullError:
                rejected += 1
                time.sleep(0.002)  # a real client would back off / re-route
        for f in admitted:
            f.result()
    print(
        f"\nbackpressure at max_depth=8: {len(admitted)} admitted, "
        f"{rejected} rejected with QueueFullError (all admitted completed)"
    )


if __name__ == "__main__":
    main()
