"""Kernel tuning walkthrough — Sections IV-E/F (the 55 -> 388 story).

Reproduces the tuning narrative end to end: the four reduction strategies
on 128x16 blocks, the Figure-7 block-size sweep, the autotuned pick, and
the effect each choice has on the full CAQR factorization.

Run:  python examples/tuning_sweep.py
"""

from __future__ import annotations

from repro import simulate_caqr
from repro.experiments import strategies_table
from repro.kernels import REFERENCE_CONFIG, STRATEGIES
from repro.tuning import TuningCache, autotune


def main() -> None:
    # 1. The four approaches to the matvec + rank-1 core.
    print(strategies_table.format_results(strategies_table.run()))

    # 2. Autotune the block size (Figure 7) and cache the sweep.
    tuned, entries = autotune()
    cache = TuningCache()
    cache.put("C2050", REFERENCE_CONFIG.strategy, entries)
    print(f"\nautotuned block: {tuned.block_rows} x {tuned.panel_width} "
          f"({entries[0].gflops:.0f} GFLOPS; paper: 128 x 16 at 388)")
    print("top block shapes:")
    for e in entries[:6]:
        print(f"  {e.height:>4} x {e.width:<3} {e.gflops:7.1f} GFLOPS")

    # 3. What each strategy means for a full 500k x 192 factorization.
    print("\nfull-CAQR impact (500k x 192, C2050):")
    for s in STRATEGIES:
        cfg = REFERENCE_CONFIG.with_(
            strategy=s, transpose_preprocess=(s == "regfile_transpose")
        )
        r = simulate_caqr(500_000, 192, cfg)
        print(f"  {s:18s}: {r.gflops:6.1f} GFLOPS  ({r.seconds * 1e3:7.1f} ms)")


if __name__ == "__main__":
    main()
