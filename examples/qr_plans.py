"""Execution policies and reusable QR plans.

The streaming regime — factor the same (m, n) shape once per video
chunk, sensor window, or Krylov restart — is where planning pays: an
`ExecutionPolicy` names *how* to execute once, `plan_qr` derives
everything shape-dependent once (panel schedule, reduction trees, the
look-ahead task DAG, compact-WY scratch footprint), and `plan.execute`
replays it per matrix, bit-identical to the one-shot entry point.

Run:  python examples/qr_plans.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import caqr, caqr_qr, plan_qr
from repro.runtime import ExecutionPolicy


def main() -> None:
    rng = np.random.default_rng(0)
    m, n = 40_000, 64

    # One policy object instead of loose batched=/lookahead=/workers= kwargs.
    policy = ExecutionPolicy(path="lookahead", panel_width=16, block_rows=64)

    plan = plan_qr(m, n, policy=policy)
    print(plan.describe())

    # Bit-identity: the plan drives the same code paths the one-shot
    # entry point uses, so the results are equal to the last bit.
    A = rng.standard_normal((m, n))
    Qp, Rp = plan.execute(A)
    Qd, Rd = caqr_qr(A, policy=policy)
    print("\nbit-identical to caqr_qr:", np.array_equal(Qp, Qd) and np.array_equal(Rp, Rd))

    # The amortized regime: repeated same-shape factorizations skip all
    # planning.  (plan.factor keeps Q implicit, like caqr().)
    frames = [rng.standard_normal((m, n)) for _ in range(4)]
    plan.factor(frames[0])  # warmup
    t0 = time.perf_counter()
    for frame in frames:
        plan.factor(frame)
    t_plan = (time.perf_counter() - t0) / len(frames)

    batched = ExecutionPolicy(panel_width=16, block_rows=64)
    caqr(frames[0], policy=batched)  # warmup
    t0 = time.perf_counter()
    for frame in frames:
        caqr(frame, policy=batched)  # implicit Q, like plan.factor
    t_call = (time.perf_counter() - t0) / len(frames)
    print(f"per-frame: plan.factor {t_plan * 1e3:.1f} ms "
          f"vs one-shot batched caqr {t_call * 1e3:.1f} ms")

    # Shape/dtype are part of the plan's contract.
    try:
        plan.execute(rng.standard_normal((m, n + 1)))
    except ValueError as exc:
        print("wrong shape rejected:", exc)


if __name__ == "__main__":
    main()
