"""Sharded multi-device CAQR — the paper's algorithm across P ranks.

One policy object turns the single-process CAQR into the parallel CAQR
of Demmel et al.: the tall matrix is row-partitioned across ``shards``
simulated ranks, each rank factors its slice with the existing local
machinery, and the per-rank R factors reduce up a fan-in tree over a
counted communicator.  This example factors one matrix at several shard
counts, shows that the communicated R is bit-identical to the same
schedule run in-process, prints the exact traffic the tree generated,
and closes with the modeled strong-scaling curve at the paper-scale
2,000,000 x 1000 target.

Run:  python examples/qr_sharded.py
"""

from __future__ import annotations

import numpy as np

from repro.caqr_gpu import simulate_caqr, simulate_sharded
from repro.core.validation import factorization_error, orthogonality_error
from repro.distributed import INTERCONNECTS, sharded_reference_r
from repro.runtime import ExecutionPolicy, plan_qr


def main() -> None:
    rng = np.random.default_rng(0)
    m, n = 20_000, 64
    A = rng.standard_normal((m, n))
    ic = INTERCONNECTS["pcie2"]

    print(f"sharded CAQR of a {m}x{n} matrix ({ic.name}):")
    for p in (2, 4, 8):
        policy = ExecutionPolicy(path="sharded", shards=p, interconnect="pcie2")
        plan = plan_qr(m, n, policy=policy)
        f = plan.factor(A)
        bit = np.array_equal(f.R, sharded_reference_r(A, policy, plan._schedule))
        Q = f.form_q()
        print(
            f"  P={p}: {plan._schedule.levels} reduction round(s), "
            f"{f.comm.total_messages} message(s) / {f.comm.total_words:.0f} words "
            f"(critical path {f.comm.critical_path_messages()}), "
            f"network {f.network_seconds(ic) * 1e6:.1f} us | "
            f"bit-identical to in-process reference: {bit} | "
            f"orth {orthogonality_error(Q):.1e}, "
            f"backward {factorization_error(A, Q, f.R):.1e}"
        )

    print("\none schedule, inspected:")
    print(plan_qr(m, n, policy=ExecutionPolicy(path="sharded", shards=8, fanin=4))._schedule.describe())

    tm, tn = 2_000_000, 1000
    base = simulate_caqr(tm, tn).seconds
    print(f"\nmodeled {tm}x{tn} target (P=1: {base:.2f} s):")
    for p in (4, 8, 16):
        s = simulate_sharded(tm, tn, shards=p, interconnect=ic)
        b = s.breakdown()
        print(
            f"  P={p:>2}: {s.seconds:.3f} s  strong {base / s.seconds:.2f}x  "
            f"(local {b['shard_local']:.3f} s, reduce {b['reduce_compute'] * 1e3:.2f} ms, "
            f"network {b['network'] * 1e6:.0f} us)"
        )


if __name__ == "__main__":
    main()
