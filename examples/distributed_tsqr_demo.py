"""Distributed-memory TSQR over simulated ranks — where TSQR came from.

The paper's Section I traces TSQR to distributed machines and grids
"where communication is exceptionally expensive".  This example runs the
parallel algorithm over P simulated processes, verifies the
factorization, and compares its counted communication against
column-by-column Householder under cluster / ethernet / grid network
models.

Run:  python examples/distributed_tsqr_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import factorization_error, orthogonality_error
from repro.distributed import (
    distributed_tsqr,
    householder_message_count,
    simulated_network_seconds,
    tsqr_message_lower_bound,
)
from repro.experiments import distributed_study


def main() -> None:
    rng = np.random.default_rng(0)
    n = 24
    for p in (4, 16, 64):
        A = rng.standard_normal((p * 128, n))
        res = distributed_tsqr(A, p)
        Q = res.form_q()
        print(
            f"P={p:3d}: {res.rounds} tree rounds (log2 P = {tsqr_message_lower_bound(p)}), "
            f"{res.comm.total_messages} messages, {res.comm.total_words:.0f} words | "
            f"orth {orthogonality_error(Q):.1e}, backward {factorization_error(A, Q, res.R):.1e}"
        )
        hh = householder_message_count(n, p)
        t_tsqr = simulated_network_seconds(
            res.comm,
            alpha_us=50.0,
            beta_ns_per_word=10.0,
            critical_path_messages=res.rounds,
            critical_path_words=res.rounds * n * (n + 1) / 2,
        )
        print(
            f"      column Householder would need {hh} critical-path messages "
            f"(TSQR comm time on ethernet: {t_tsqr * 1e6:.0f} us)"
        )

    print("\nfull study across network models:")
    print(distributed_study.format_results(distributed_study.run()))


if __name__ == "__main__":
    main()
