"""Streaming background modeling on an unbounded frame stream.

The batch RPCA demo (``video_background.py``) holds the whole clip in
memory.  This one never does: frames arrive as rows in arbitrary batch
heights, ``repro.streaming.StreamingBackground`` re-blocks them through
a bounded ingestion window and runs the warm-started online RPCA chunk
by chunk, keeping only the carried background subspace.  The script
streams a synthetic surveillance feed through three regimes — a static
scene, a sustained scene break, the new scene after re-detection — and
prints, per chunk, the foreground fraction and whether drift tripped a
cold restart, plus per act how often the cached-subspace fast path
skipped the SVD.  It closes by showing the tracked memory high-water
mark is the same after 3 chunks and after the whole stream: the model
is stream-length-independent.

Run:  python examples/video_stream.py
"""

from __future__ import annotations

import numpy as np

from repro.streaming import StreamingBackground

HEIGHT, WIDTH = 18, 32
PIXELS = HEIGHT * WIDTH
CHUNK_FRAMES = 25


def scene(seed: int) -> np.ndarray:
    """A fixed rank-1 backdrop (one pixel pattern, per-frame lighting)."""
    return np.random.default_rng(seed).standard_normal(PIXELS)


def frames(backdrop: np.ndarray, n: int, seed: int) -> np.ndarray:
    """``n`` frames of the backdrop plus a small moving foreground blob."""
    rng = np.random.default_rng(seed)
    F = np.outer(1.0 + 0.05 * rng.standard_normal(n), backdrop)
    row = rng.integers(2, HEIGHT - 2)
    col = rng.integers(0, WIDTH - n // 8 - 2)
    for t in range(n):
        F[t, row * WIDTH + col + t // 8] += 3.0
    return F


def glitch_frames(n: int, seed: int) -> np.ndarray:
    """A scene break: frames dominated by unexplained sparse energy."""
    rng = np.random.default_rng(seed)
    F = np.zeros((n, PIXELS))
    mask = rng.random(F.shape) < 0.2
    F[mask] = 25.0 * rng.standard_normal(int(mask.sum()))
    return F


def feed(sb: StreamingBackground, F: np.ndarray, rng: np.random.Generator):
    """Push in ragged batches, like a capture pipeline would deliver."""
    done, pos = [], 0
    while pos < F.shape[0]:
        h = int(rng.integers(5, 41))
        done += sb.push(F[pos : pos + h])
        pos += h
    return done


def main() -> None:
    rng = np.random.default_rng(7)
    sb = StreamingBackground(
        chunk_frames=CHUNK_FRAMES,
        rank_cap=3,
        drift_threshold=0.5,
        drift_patience=2,
        subspace_refresh_tol=1e-2,  # mild foreground may ride the cache
    )

    print(f"streaming {HEIGHT}x{WIDTH} frames, {CHUNK_FRAMES} per RPCA chunk:\n")

    def act(done, label, svd_before):
        for c in done:
            flag = "  <- cold restart on the new scene" if c.redetected else ""
            print(
                f"  frames {c.frame_start:>4}-{c.frame_stop:<4} [{label:<9}] "
                f"rank {c.rank}  fg {c.foreground_fraction:5.1%}{flag}"
            )
        svds = sb.subspace_svd_calls - svd_before
        print(f"    ({label}: {len(done)} chunks, {svds} subspace SVD(s) — "
              f"{len(done) - svds} cache hit(s))\n")

    # Act 1: a static scene. One subspace SVD at cold start, then the
    # carried U is reused chunk after chunk.
    day, night = scene(seed=1), scene(seed=2)
    before = sb.subspace_svd_calls
    act(feed(sb, frames(day, 100, seed=10), rng), "static", before)

    # Act 2: the feed glitches — frames stop matching the carried
    # subspace, the foreground fraction spikes past ``drift_threshold``,
    # and after ``drift_patience`` consecutive busy chunks the model
    # schedules a cold restart.
    before = sb.subspace_svd_calls
    act(feed(sb, glitch_frames(50, seed=20), rng), "break", before)

    # Act 3: a new scene. The first chunk re-detects (cold start on the
    # new backdrop), the rest ride the cache again.
    before = sb.subspace_svd_calls
    done = feed(sb, frames(night, 70, seed=30), rng)
    done += sb.finish()
    act(done, "new scene", before)

    print(
        f"{sb.frames_seen} frames -> {sb.chunks_processed} chunks, "
        f"{sb.subspace_svd_calls} subspace SVDs, "
        f"{sb.redetections} re-detection(s), final rank {sb.background_rank}"
    )

    # Bounded memory: same batch geometry, 4x the stream — the tracked
    # high-water mark does not move, nothing accumulates with length.
    def tracked_peak(n_chunks: int) -> int:
        probe = StreamingBackground(chunk_frames=CHUNK_FRAMES, rank_cap=3)
        for i in range(n_chunks):
            probe.push(frames(day, CHUNK_FRAMES, seed=100 + i))
        return probe.peak_tracked_bytes

    short, long = tracked_peak(3), tracked_peak(12)
    print(
        f"tracked peak: {short / 1024:.1f} KiB after 3 chunks vs "
        f"{long / 1024:.1f} KiB after 12 — stream-length-independent: "
        f"{short == long}"
    )


if __name__ == "__main__":
    main()
