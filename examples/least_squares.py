"""Linear least squares with tall-skinny QR — the intro's headline use case.

"Least squares matrices may have thousands of rows representing
observations, and only a few tens or hundreds of columns representing the
number of parameters."  This example fits a model to 100,000 noisy
observations of 24 parameters via TSQR and CAQR and cross-checks against
the normal equations' known failure mode.

Run:  python examples/least_squares.py
"""

from __future__ import annotations

import numpy as np

from repro import lstsq_caqr, lstsq_tsqr
from repro.core.cholesky_qr import cholesky_qr
from repro.core.triangular import SingularTriangularError, solve_upper


def main() -> None:
    rng = np.random.default_rng(1)
    m, n = 100_000, 24

    # A realistic regression design: correlated features, mild conditioning.
    basis = rng.standard_normal((m, n))
    mix = np.eye(n) + 0.4 * rng.standard_normal((n, n))
    A = basis @ mix
    x_true = rng.standard_normal(n)
    b = A @ x_true + 0.01 * rng.standard_normal(m)

    x_tsqr = lstsq_tsqr(A, b, block_rows=512)
    x_caqr = lstsq_caqr(A, b, panel_width=8, block_rows=64)
    print("TSQR  coefficient error:", np.linalg.norm(x_tsqr - x_true))
    print("CAQR  coefficient error:", np.linalg.norm(x_caqr - x_true))
    print("solvers agree:", np.allclose(x_tsqr, x_caqr, atol=1e-8))

    # Why QR and not the normal equations / Cholesky QR: squaring the
    # condition number.  Build an ill-conditioned design and watch
    # Cholesky QR break down while TSQR sails through.
    U, _, Vt = np.linalg.svd(rng.standard_normal((5_000, 12)), full_matrices=False)
    s = np.logspace(0, -9, 12)  # cond = 1e9
    A_ill = (U * s) @ Vt
    b_ill = A_ill @ np.ones(12)
    x = lstsq_tsqr(A_ill, b_ill)
    print("\nill-conditioned (cond=1e9) TSQR residual:", np.linalg.norm(A_ill @ x - b_ill))
    try:
        Q, R = cholesky_qr(A_ill)
        xc = solve_upper(R, Q.T @ b_ill)
        print("Cholesky QR residual:", np.linalg.norm(A_ill @ xc - b_ill))
    except SingularTriangularError as e:
        print("Cholesky QR broke down, as theory predicts:", e)


if __name__ == "__main__":
    main()
