"""CholeskyQR2 fast paths and the condition-guarded ``auto`` fallback.

For tall-skinny, reasonably conditioned matrices the fastest QR in this
repo is not a Householder tree at all: CholeskyQR2 runs two BLAS3
passes (Gram, Cholesky, triangular solve) in O(1) kernel launches for
~4mn^2 flops.  Its weakness is conditioning — the Gram matrix squares
cond(A), so the factorization breaks down (or silently loses
orthogonality) near cond ~ 1/sqrt(eps) of the Gram precision.

Three policy paths expose this trade-off:

* ``path="cholqr2"``        — plain double-precision CholeskyQR2;
                              *refuses* (raises) on ill-conditioned input.
* ``path="cholqr2_mixed"``  — float32 first-pass Gram, float64
                              reorthogonalization; tighter guard.
* ``path="auto"``           — condition-guarded cholqr2 that falls back
                              to the look-ahead Householder tree,
                              transparently and bit-identically, when
                              the guard refuses.

Run:  python examples/fast_paths.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import caqr_qr, plan_qr
from repro.runtime import ExecutionPolicy, count_fallbacks
from repro.core.cholesky_qr import CholeskyBreakdownError


def orth_error(Q: np.ndarray) -> float:
    k = Q.shape[1]
    return float(np.linalg.norm(Q.T @ Q - np.eye(k)))


def graded(m: int, n: int, cond: float, seed: int = 3) -> np.ndarray:
    """Random matrix with geometrically graded singular values."""
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.logspace(0, -np.log10(cond), n)
    return u * s @ v.T


def main() -> None:
    rng = np.random.default_rng(0)
    m, n = 100_000, 64
    A = rng.standard_normal((m, n))

    # --- the fast path on a well-conditioned matrix -------------------
    t0 = time.perf_counter()
    Qc, Rc = caqr_qr(A, policy=ExecutionPolicy(path="cholqr2"))
    t_chol = time.perf_counter() - t0

    t0 = time.perf_counter()
    Ql, Rl = caqr_qr(A, policy=ExecutionPolicy(path="lookahead"))
    t_tree = time.perf_counter() - t0

    print(f"cholqr2   {t_chol * 1e3:7.1f} ms   orth {orth_error(Qc):.2e}")
    print(f"lookahead {t_tree * 1e3:7.1f} ms   orth {orth_error(Ql):.2e}"
          f"   ({t_tree / t_chol:.1f}x slower)")

    # --- explicit paths refuse rather than degrade --------------------
    B = graded(2_000, 32, cond=1e10)
    try:
        caqr_qr(B, policy=ExecutionPolicy(path="cholqr2"))
    except CholeskyBreakdownError as exc:
        print(f"\ncholqr2 on cond=1e10 input: refused ({exc})")

    # --- auto: same guard, transparent fallback to the tree -----------
    auto = ExecutionPolicy(path="auto")
    with count_fallbacks() as counter:
        Qa, Ra = caqr_qr(B, policy=auto)
    Qt, Rt = caqr_qr(B, policy=ExecutionPolicy(path="lookahead"))
    print(f"auto on the same input: {counter.fallbacks} fallback "
          f"(stage={counter.stages[0]}), orth {orth_error(Qa):.2e}, "
          f"bit-identical to the tree: "
          f"{np.array_equal(Qa, Qt) and np.array_equal(Ra, Rt)}")

    with count_fallbacks() as counter:
        caqr_qr(A, policy=auto)
    print(f"auto on the Gaussian input: {counter.fallbacks} fallbacks "
          "(fast path taken)")

    # --- plans work the same way: guard + fallback prebuilt once ------
    plan = plan_qr(m, n, policy=auto)
    Qp, Rp = plan.execute(A)
    Qo, Ro = caqr_qr(A, policy=auto)
    print(f"\nplan(path=auto) reuse: orth {orth_error(Qp):.2e}, "
          f"bit-identical to one-shot: "
          f"{np.array_equal(Qp, Qo) and np.array_equal(Rp, Ro)}")


if __name__ == "__main__":
    main()
