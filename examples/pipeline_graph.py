"""Randomized SVD compiled to the shared task graph and executed there.

The rSVD pipeline (Gaussian sketch → TSQR range finder → projection →
small Jacobi SVD) is registered as the ``rsvd`` producer in
``repro.graph.highlevel.PRODUCERS``: emitted without numeric bindings it
is a structural graph — pure shape arithmetic, the thing CI pins — and
emitted with bindings it runs on the shared executor
(``repro.graph.executor.run_task_graph``) bit-identically to the direct
``randomized_svd`` call, with an obs span per stage.

Run:  python examples/pipeline_graph.py
"""

from __future__ import annotations

import numpy as np

from repro.core.randomized_svd import randomized_svd, randomized_svd_graph
from repro.graph import producer, static_order


def main() -> None:
    rng = np.random.default_rng(7)
    m, n, k = 20_000, 96, 10

    # A tall matrix with a rank-k core buried under noise.
    U0 = np.linalg.qr(rng.standard_normal((m, k)))[0]
    V0 = np.linalg.qr(rng.standard_normal((n, k)))[0]
    A = (U0 * np.logspace(2, 1, k)) @ V0.T + 1e-6 * rng.standard_normal((m, n))

    # --- the structural graph: what CI fingerprints -----------------------
    tg = producer("rsvd")(m, n, k, power_iters=1)
    print(tg.describe())
    print(f"structure fingerprint: {tg.fingerprint()}")
    print("static order:", " -> ".join(repr(key) for key in static_order(tg)))

    # --- the same graph, bound and executed -------------------------------
    U, s, Vt = randomized_svd_graph(A, k, power_iters=1, rng=np.random.default_rng(0))
    Ud, sd, Vtd = randomized_svd(A, k, power_iters=1, rng=np.random.default_rng(0))
    identical = (
        np.array_equal(U, Ud) and np.array_equal(s, sd) and np.array_equal(Vt, Vtd)
    )
    print(f"\ngraph run bit-identical to direct randomized_svd: {identical}")
    print(f"leading singular values: {np.array2string(s[:4], precision=3)}")
    err = np.linalg.norm(A - (U * s) @ Vt) / np.linalg.norm(A)
    print(f"rank-{k} relative error:  {err:.2e}")


if __name__ == "__main__":
    main()
