"""s-step Krylov basis orthogonalization — the paper's most extreme case.

"An even more extreme case of tall-skinny matrices are found in s-step
Krylov methods ... The dimensions of this QR factorization can be
millions of rows by less than ten columns."  This example builds s basis
vectors of the Krylov sequence {v, Av, ..., A^{s-1}v} for a large sparse
operator (3-point Laplacian, applied matrix-free), orthogonalizes them
with TSQR, and shows why naive powers need the QR at all (the basis
collapses toward the dominant eigenvector).

Run:  python examples/sstep_krylov.py
"""

from __future__ import annotations

import numpy as np

from repro import ExecutionPolicy, orthogonality_error, simulate_caqr, tsqr
from repro.core.validation import factorization_error


def laplacian_matvec(v: np.ndarray) -> np.ndarray:
    """Matrix-free 1-D Laplacian (tridiagonal [-1, 2, -1])."""
    out = 2.0 * v
    out[:-1] -= v[1:]
    out[1:] -= v[:-1]
    return out


def main() -> None:
    n_rows, s = 1_000_000, 8
    rng = np.random.default_rng(3)

    # Build the s-step basis matrix-free: K = [v, Av, A^2 v, ...].
    K = np.empty((n_rows, s))
    v = rng.standard_normal(n_rows)
    K[:, 0] = v
    for j in range(1, s):
        K[:, j] = laplacian_matvec(K[:, j - 1])

    # Without orthogonalization, the monomial basis degenerates: its
    # columns align and the Gram matrix becomes nearly singular.
    G = K.T @ K
    print(f"monomial-basis Gram condition number: {np.linalg.cond(G):.2e}")

    # TSQR orthogonalizes the basis in one pass over the million rows.
    f = tsqr(K, policy=ExecutionPolicy(block_rows=4096, tree_shape="quad"))
    Q = f.form_q()
    print(f"TSQR orthogonality error:  {orthogonality_error(Q):.2e}")
    print(f"TSQR factorization error:  {factorization_error(K, Q, f.R):.2e}")
    print(f"reduction-tree levels:     {f.tree.n_levels} (quad tree over {len(f.blocks)} blocks)")

    # The communication argument at this shape: modeled GPU times.
    r = simulate_caqr(n_rows, s)
    print(f"\nmodeled C2050 CAQR time for {n_rows} x {s}: {r.seconds * 1e3:.2f} ms "
          f"({r.gflops:.1f} GFLOPS; arithmetic intensity {r.counters.arithmetic_intensity:.2f} flops/byte)")


if __name__ == "__main__":
    main()
