"""Single-pass (out-of-core) QR with streaming TSQR.

The sequential flat-tree TSQR of Section II-B: row blocks arrive one at
a time (from disk, a sensor, or another process), each merged into a
resident n x n triangle — the whole matrix is read exactly once and never
held in memory.  Demonstrated on an incremental least-squares fit whose
solution is refreshed after every chunk.

Run:  python examples/streaming_out_of_core.py
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import StreamingTSQR
from repro.core.triangular import solve_upper


def sensor_chunks(n_chunks: int, chunk_rows: int, coeffs: np.ndarray, rng):
    """Simulated data source: features + noisy responses, chunk by chunk."""
    for _ in range(n_chunks):
        t = rng.uniform(-1, 1, chunk_rows)
        X = np.vander(t, len(coeffs))
        y = X @ coeffs + 0.02 * rng.standard_normal(chunk_rows)
        yield X, y


def main() -> None:
    rng = np.random.default_rng(7)
    coeffs_true = np.array([0.5, -1.25, 0.75, 2.0])
    n_params = len(coeffs_true)

    # Stream the *augmented* matrix [X | y]: its R factor contains both
    # the regression triangle and Q^T y, so the solve needs only the
    # resident (n+1) x (n+1) triangle — classic streaming least squares.
    stream = StreamingTSQR(n_cols=n_params + 1)
    rows_seen = 0
    print("streaming least squares (solution refreshed per chunk):")
    for i, (X, y) in enumerate(sensor_chunks(12, 5_000, coeffs_true, rng), 1):
        stream.push(np.column_stack([X, y]))
        rows_seen += X.shape[0]
        R = stream.R
        x_hat = solve_upper(R[:n_params, :n_params], R[:n_params, n_params])
        err = np.linalg.norm(x_hat - coeffs_true)
        if i in (1, 2, 4, 8, 12):
            print(f"  after {rows_seen:6d} rows: coefficient error {err:.2e}")

    print(f"\nresident state the whole time: one {n_params + 1} x {n_params + 1} triangle")
    print(f"final estimate: {np.array2string(x_hat, precision=4)}")
    print(f"ground truth:   {coeffs_true}")


if __name__ == "__main__":
    main()
