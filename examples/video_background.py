"""Stationary-video background subtraction with Robust PCA (Section VI).

Generates a synthetic surveillance clip (the ViSOR substitution: static
background, moving pedestrian-like blobs), decomposes it with
l1-regularized nuclear-norm minimization where the per-iteration SVD runs
through this library's QR-based tall-skinny SVD, and reports recovery
quality plus the modeled Table II throughput of the three engines.

Run:  python examples/video_background.py
"""

from __future__ import annotations

import numpy as np

from repro.rpca import (
    RPCAIterationModel,
    foreground_f1,
    generate_video,
    subtract_background,
)


def ascii_frame(img: np.ndarray, width: int = 48) -> str:
    """Render a grayscale frame as ASCII art (for terminal inspection)."""
    h, w = img.shape
    step = max(1, w // width)
    ramp = " .:-=+*#%@"
    lo, hi = img.min(), img.max()
    span = (hi - lo) or 1.0
    rows = []
    for y in range(0, h, 2 * step):
        row = ""
        for x in range(0, w, step):
            v = (img[y, x] - lo) / span
            row += ramp[min(int(v * (len(ramp) - 1)), len(ramp) - 1)]
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    # A scaled-down ViSOR-like clip (full size is 288 x 384 x 100 frames).
    video = generate_video(height=48, width=64, n_frames=50, n_objects=3, noise_std=0.005, seed=42)
    print(f"video matrix: {video.M.shape[0]} x {video.M.shape[1]} (pixels x frames)")

    result = subtract_background(video, tol=1e-6, max_iter=200)
    print(f"RPCA converged in {result.result.n_iterations} iterations")
    print(f"background relative error: {result.background_error:.4f}")
    print(f"recovered background rank: {result.result.final_rank}")
    print(f"foreground support F1:     {foreground_f1(result.result.S, video.S):.3f}")

    t = video.n_frames // 2
    print("\n--- observed frame ---")
    print(ascii_frame(video.frame(t)))
    print("--- recovered foreground (the walkers) ---")
    print(ascii_frame(np.abs(result.foreground[t])))

    print("\nModeled Table II throughput on the full 110,592 x 100 problem:")
    for engine in ("mkl_svd", "blas2_qr", "caqr"):
        ips = RPCAIterationModel(engine=engine).iterations_per_second()
        print(f"  {engine:9s}: {ips:6.2f} iterations/second ({500 / ips:6.1f} s for a 500-iteration run)")


if __name__ == "__main__":
    main()
