"""Quickstart: factor a tall-skinny matrix with TSQR/CAQR and model its
GPU performance.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ExecutionPolicy,
    caqr,
    caqr_qr,
    factorization_error,
    orthogonality_error,
    qr_flops,
    simulate_caqr,
    tsqr_qr,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # --- numerics: a 20,000 x 64 tall-skinny matrix -----------------------
    A = rng.standard_normal((20_000, 64))

    Q, R = tsqr_qr(A, policy=ExecutionPolicy(block_rows=256, tree_shape="quad"))
    print("TSQR   ||QtQ - I|| =", orthogonality_error(Q))
    print("TSQR   ||A - QR||/||A|| =", factorization_error(A, Q, R))

    caqr_policy = ExecutionPolicy(panel_width=16, block_rows=64)
    Q, R = caqr_qr(A, policy=caqr_policy)
    print("CAQR   ||QtQ - I|| =", orthogonality_error(Q))
    print("CAQR   ||A - QR||/||A|| =", factorization_error(A, Q, R))

    # The implicit Q can be applied without ever forming it:
    f = caqr(A, policy=caqr_policy)
    b = rng.standard_normal((20_000, 1))
    qtb = f.apply_qt(b.copy())
    print("Q^T b computed via implicit factors, leading entry:", qtb[0, 0])

    # --- modeled GPU performance (NVIDIA C2050, the paper's device) ------
    print("\nModeled C2050 SGEQRF performance (Table I sizes):")
    for height in (10_000, 100_000, 1_000_000):
        r = simulate_caqr(height, 192)
        print(
            f"  {height:>9} x 192: {r.gflops:6.1f} GFLOPS "
            f"({r.seconds * 1e3:7.2f} ms for {qr_flops(height, 192) / 1e9:.1f} GFLOP)"
        )


if __name__ == "__main__":
    main()
