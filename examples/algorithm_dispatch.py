"""Model-driven QR engine selection — the paper's autotuning-framework idea.

"The crossover point, where CAQR becomes slower than the best GPU
libraries, is around 4000 columns wide.  This suggests an autotuning
framework for QR where a different algorithm may be chosen depending on
the matrix size" (Section V-C).  The dispatcher predicts every engine's
runtime from the calibrated models, picks the winner per shape, and runs
the winning algorithm numerically.

Run:  python examples/algorithm_dispatch.py
"""

from __future__ import annotations

import numpy as np

from repro import QRDispatcher
from repro.core.validation import factorization_error


def main() -> None:
    d = QRDispatcher()

    print("engine choice across shapes (modeled C2050):")
    shapes = [
        (1_000_000, 64),
        (1_000_000, 192),
        (100_000, 1024),
        (8192, 2048),
        (8192, 4096),
        (8192, 8192),
    ]
    for m, n in shapes:
        preds = d.predict(m, n)
        best = preds[0]
        alts = ", ".join(f"{p.engine}={p.seconds * 1e3:.1f}ms" for p in preds[1:])
        print(f"  {m:>8} x {n:<5} -> {best.engine:8s} ({best.seconds * 1e3:8.1f} ms; {alts})")

    x = d.crossover_width(8192)
    print(f"\ncrossover at height 8192: {x} columns (paper: ~4000)")

    # And it actually factors: the routing is attached to real numerics.
    rng = np.random.default_rng(0)
    A = rng.standard_normal((5000, 32))
    out = d.qr(A)
    print(f"\nfactored a 5000 x 32 matrix with engine={out.engine!r}; "
          f"backward error {factorization_error(A, out.Q, out.R):.2e}")


if __name__ == "__main__":
    main()
