#!/usr/bin/env python
"""CI perf-regression gate: re-run the bench grid, diff against a baseline.

``benchmarks/bench_realtime.py`` writes per-shape metrics (seconds per
path, speedups, residual gaps, launch counts and the launch-stream
fingerprint) to a committed JSON artifact.  This tool re-measures the
same shapes and fails (exit 1) when the fresh numbers regress past the
per-metric tolerances:

* ``seconds_*`` — measured time must not exceed ``baseline * (1 + tol)``
  (default ±25%; faster is never a failure).
* ``*speedup*`` ratios — must not fall below ``baseline / (1 + tol)``.
* residual gaps — the bench's own fixed bounds, re-asserted here:
  ``caqr``/``tsqr`` path gaps < 1e-12, look-ahead < 1e-14, plan == 0.
* ``ferr_*`` / ``orth_*`` — within 10x of the baseline (loose: these are
  shape- and rng-stable, so 10x means a numerics regression, not noise).
* CholeskyQR2 acceptance bounds, absolute rather than relative: the
  fast-path orthogonality errors stay below 1e-14, the
  ``cholqr2_vs_lookahead`` speed ratio never falls below 2.0 (on shapes
  whose baseline clears the floor with margin), and the ``auto`` guard
  overhead stays below 1.5x plain cholqr2.
* ``launches`` and ``launch_stream_sha256_16`` — exact (the modeled
  launch stream moving is a silent behavioural change, never noise).

The sharded tier (``benchmarks/bench_distributed.py``) is gated under
``--check-sharded`` / ``--sharded-only``:

* ``sharded_bit_gap`` — exactly 0.0: the sharded R must be bit-identical
  to the same shard/reduction schedule executed without the
  communicator (transport exactness is a correctness contract, not a
  tolerance).
* ``sharded_r_gap`` — sign-canonicalized agreement with the
  single-process tree, < 1e-12.
* ``sharded_strong_speedup_p4`` — relative floor plus the absolute
  ``MIN_BOUNDS`` floor of 2.0 (the acceptance criterion: four modeled
  devices must at least halve the 2M x 1000 target's runtime).
* comm counts and the schedule fingerprint — exact: the reduction
  schedule or traffic silently changing is a behavioural change.

The streaming tier (``benchmarks/bench_streaming.py``) is gated under
``--check-streaming`` / ``--streaming-only``:

* ``streaming_rows_per_sec`` — a throughput floor (mirror of the time
  ceilings): the soak must not slow past the tolerance.
* ``streaming_peak_tracked_mb`` — the engine's deterministic working-set
  high-water mark, against both the relative memory ceiling and an
  absolute ``MAX_BOUNDS`` ceiling set well under 2x the committed
  baseline, so the self-test's injected 2x memory blow-up always trips.
* ``streaming_peak_rss_mb`` — the OS high-water mark, relative ceiling.
* ``streaming_bounded_ratio`` — tracked peak at the full stream length
  over the half-length probe; absolute ceiling 1.05.  Peak memory
  growing with stream length is the one regression an out-of-core
  pipeline must never ship, and it cannot hide inside run-to-run noise
  (a healthy engine reads exactly 1.0).
* ``streaming_r_gap`` — sign-canonicalized agreement between the
  streamed R and one-shot CAQR, < 1e-12; ``streaming_graph_bit_gap`` —
  exactly 0.0 (the registered task-graph producer replays the identical
  fold arithmetic).

The serving tier (``benchmarks/bench_serving.py``) is gated the same
way under ``--serving`` / ``--serving-only``:

* ``*qps*`` — throughput floors, the mirror image of the time ceilings:
  measured requests/sec must not fall below ``baseline / (1 + tol)``.
* ``serving_coalesce_speedup`` — relative floor plus the absolute
  ``MIN_BOUNDS`` floor (coalescing silently degrading to per-request
  dispatch reads ~1.0 and cannot hide inside noise tolerances).
* ``serving_p50/p95/p99_ms`` — absolute ceilings (``MAX_BOUNDS``): they
  trip when the coalesced tier stops keeping up with the open-loop
  offered rate and queueing delay diverges, not on percentile noise.

Usage::

    python tools/check_bench.py --quick                 # CI gate
    python tools/check_bench.py                         # full grid
    python tools/check_bench.py --quick --self-test     # gate the gate
    python tools/check_bench.py --quick --inject-slowdown 2.0   # must exit 1
    python tools/check_bench.py --quick --serving-only  # serving tier only
    python tools/check_bench.py --quick --sharded-only  # sharded tier only
    python tools/check_bench.py --quick --streaming-only  # soak tier only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # self-locating: only extend sys.path when repro is not installed
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_realtime import bench_shape  # noqa: E402

QUICK_BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_quick.json"
FULL_BASELINE = REPO_ROOT / "BENCH_caqr.json"
SERVING_QUICK_BASELINE = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_serving_quick.json"
)
SHARDED_QUICK_BASELINE = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_sharded_quick.json"
)
SHARDED_FULL_BASELINE = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_distributed.json"
)
STREAMING_QUICK_BASELINE = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_streaming_quick.json"
)
STREAMING_FULL_BASELINE = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_streaming.json"
)

# Residual-gap metrics carry the bench's own hard bounds instead of a
# relative tolerance (they pin cross-path agreement, not speed).
GAP_BOUNDS = {
    "caqr_max_residual_gap": 1e-12,
    "tsqr_max_residual_gap": 1e-12,
    "caqr_lookahead_residual_gap": 1e-14,
    "caqr_plan_residual_gap": 0.0,
    # CholeskyQR2 acceptance: <1e-14 orthogonality on the bench grid, or
    # the fast path has no business being dispatched.
    "caqr_orth_cholqr2": 1e-14,
    "caqr_orth_cholqr2_mixed": 1e-14,
    "caqr_orth_auto": 1e-14,
    # Sharded acceptance: the communicated run reproduces the in-process
    # reference bit for bit (0.0 — transport exactness, not a
    # tolerance), and agrees with the single-process tree to the usual
    # cross-path bound.
    "sharded_bit_gap": 0.0,
    "sharded_r_gap": 1e-12,
    # Streaming acceptance: the out-of-core fold agrees with one-shot
    # CAQR to the cross-path bound, and the registered task-graph
    # producer replays the identical fold arithmetic bit for bit.
    "streaming_r_gap": 1e-12,
    "streaming_graph_bit_gap": 0.0,
}
# Ratio metrics with an *absolute* floor on top of the relative check:
# the headline acceptance criterion (cholqr2 at least 2x the tree).  The
# floor is enforced only where the committed baseline clears it with
# margin (MIN_BOUND_MARGIN), so the large full-grid shapes (baseline
# 3.4-3.9x) are pinned hard while a quick-grid shape whose baseline
# merely grazes 2x — within run-to-run noise of the floor — stays gated
# by the relative check alone.
MIN_BOUNDS = {
    "caqr_cholqr2_vs_lookahead": 2.0,
    # The serving acceptance ratio: coalesced windows vs one-request-at-
    # a-time dispatch.  The committed baselines demonstrate well above
    # this; the floor is set where only a real regression (coalescing
    # silently degrading to the per-request rung would read ~1.0) can
    # cross it, because shared CI runners swing both sides of the ratio.
    "serving_coalesce_speedup": 3.0,
    # The sharded acceptance floor: four modeled devices must at least
    # halve the 2M x 1000 target's runtime.  The committed baseline sits
    # near the ideal 4x, so the floor only trips on a real model change
    # (e.g. reduction or interconnect cost landing on the critical path).
    "sharded_strong_speedup_p4": 2.0,
}
MIN_BOUND_MARGIN = 1.25
# Metrics with an absolute ceiling (noise-tolerant): ratio metrics like
# the auto guard's precheck tax, and the serving latency percentiles
# (milliseconds).  The latency ceilings are far above any healthy run —
# they trip when coalescing stops keeping up with the open-loop offered
# rate and queueing delay diverges, which is the failure mode worth
# gating; run-to-run percentile noise on a loaded host is not.
MAX_BOUNDS = {
    "caqr_auto_guard_overhead": 1.5,
    "serving_p50_ms": 25.0,
    "serving_p95_ms": 50.0,
    "serving_p99_ms": 75.0,
    # The soak memory contract.  The tracked working set of the
    # reference configuration (4096-row chunks, 64 columns) is ~6.1 MB
    # and independent of stream length, so the absolute ceiling sits
    # between the baseline and 2x it — the self-test's injected 2x
    # memory blow-up must always trip.  The bounded ratio (full-length
    # tracked peak over the half-length probe) is exactly 1.0 for a
    # healthy engine; 1.05 tolerates only schedule-edge effects, never
    # per-chunk accumulation.
    "streaming_peak_tracked_mb": 10.0,
    "streaming_bounded_ratio": 1.05,
}
EXACT_KEYS = (
    "launches",
    "launch_stream_sha256_16",
    # The sharded reduction schedule and its recorded traffic are pure
    # functions of (m, n, shards, fanin): any drift is a silent
    # behavioural change, never noise.
    "sharded_schedule_fingerprint",
    "sharded_messages",
    "sharded_words",
    "sharded_critical_path_messages",
)
ACCURACY_FACTOR = 10.0  # ferr/orth headroom vs baseline


def _is_time(key: str) -> bool:
    return "seconds" in key


def _is_speedup(key: str) -> bool:
    return "speedup" in key or key.endswith("_vs_lookahead")


def _is_qps(key: str) -> bool:
    # Request throughput (qps) and row throughput (rows per second) are
    # gated identically: floors, never ceilings.
    return "qps" in key or "per_sec" in key


def _is_latency(key: str) -> bool:
    return key.endswith("_ms")


def _is_memory(key: str) -> bool:
    return key.endswith("_mb")


def _is_accuracy(key: str) -> bool:
    return "ferr" in key or "orth" in key


def compare_row(measured: dict, baseline: dict, time_tol: float) -> list[dict]:
    """Per-metric deltas for one shape; each row carries ``ok``."""
    deltas = []
    for key, base in baseline.items():
        if key not in measured:
            deltas.append(
                {"metric": key, "baseline": base, "measured": None, "ok": False,
                 "why": "metric missing from fresh run"}
            )
            continue
        val = measured[key]
        row = {"metric": key, "baseline": base, "measured": val, "ok": True, "why": ""}
        if key in EXACT_KEYS:
            if val != base:
                row["ok"] = False
                row["why"] = "exact-match metric drifted"
        elif key in GAP_BOUNDS:
            bound = GAP_BOUNDS[key]
            if val > bound:
                row["ok"] = False
                row["why"] = f"gap above fixed bound {bound:g}"
        elif _is_time(key):
            row["ratio"] = val / base if base else float("inf")
            if val > base * (1.0 + time_tol):
                row["ok"] = False
                row["why"] = f"slower than baseline by >{time_tol:.0%}"
        elif key in MAX_BOUNDS:
            row["ratio"] = val / base if base else float("inf")
            if val > MAX_BOUNDS[key]:
                row["ok"] = False
                row["why"] = f"ratio above fixed ceiling {MAX_BOUNDS[key]:g}"
        elif _is_speedup(key):
            row["ratio"] = val / base if base else float("inf")
            if val < base / (1.0 + time_tol):
                row["ok"] = False
                row["why"] = f"speedup shrank by >{time_tol:.0%}"
            elif (key in MIN_BOUNDS
                  and base >= MIN_BOUNDS[key] * MIN_BOUND_MARGIN
                  and val < MIN_BOUNDS[key]):
                row["ok"] = False
                row["why"] = f"ratio below fixed floor {MIN_BOUNDS[key]:g}"
        elif _is_qps(key):
            # Throughput floors mirror the time ceilings: faster is never
            # a failure, a fall past the tolerance is.
            row["ratio"] = val / base if base else float("inf")
            if val < base / (1.0 + time_tol):
                row["ok"] = False
                row["why"] = f"throughput fell by >{time_tol:.0%}"
        elif _is_latency(key):
            row["ratio"] = val / base if base else float("inf")
            if val > base * (1.0 + time_tol):
                row["ok"] = False
                row["why"] = f"latency above baseline by >{time_tol:.0%}"
        elif _is_memory(key):
            # Peak-memory ceilings read like the time ceilings: lower is
            # never a failure, blowing past the tolerance is.
            row["ratio"] = val / base if base else float("inf")
            if val > base * (1.0 + time_tol):
                row["ok"] = False
                row["why"] = f"peak memory above baseline by >{time_tol:.0%}"
        elif _is_accuracy(key):
            if val > max(base * ACCURACY_FACTOR, 1e-15):
                row["ok"] = False
                row["why"] = f"accuracy degraded >{ACCURACY_FACTOR:g}x"
        elif "gflops" in key or key == "qr_gflop":
            pass  # derived from seconds / shape; the primaries are gated
        else:  # shape keys (m, n, block_rows, panel_width) must match
            if val != base:
                row["ok"] = False
                row["why"] = "shape key mismatch"
        deltas.append(row)
    return deltas


def format_deltas(shape: str, deltas: list[dict]) -> str:
    lines = [f"{shape}:"]
    lines.append(f"  {'metric':<32} {'baseline':>12} {'measured':>12} {'ratio':>7}  status")
    for d in deltas:
        base, val = d["baseline"], d["measured"]

        def _fmt(x):
            if isinstance(x, float):
                return f"{x:.4g}"
            return str(x)

        ratio = f"{d['ratio']:.2f}x" if "ratio" in d else ""
        status = "ok" if d["ok"] else f"FAIL ({d['why']})"
        lines.append(
            f"  {d['metric']:<32} {_fmt(base):>12} {_fmt(val):>12} {ratio:>7}  {status}"
        )
    return "\n".join(lines)


def run_gate(
    baseline_rows: list[dict],
    time_tol: float,
    reps: int,
    inject_slowdown: float | None = None,
    measured_rows: list[dict] | None = None,
) -> tuple[bool, list[dict], list[dict]]:
    """Measure (or reuse) every baseline shape and diff.

    Returns ``(ok, measured_rows, all_deltas)``; ``inject_slowdown``
    multiplies every fresh ``seconds_*`` metric (and divides the speedup
    ratios that would follow) to prove the gate trips.
    """
    if measured_rows is None:
        measured_rows = [
            bench_shape(b["m"], b["n"], b["block_rows"], b["panel_width"], reps)
            for b in baseline_rows
        ]
    rows = measured_rows
    if inject_slowdown:
        rows = [
            {
                k: (v * inject_slowdown if _is_time(k) else v)
                for k, v in r.items()
            }
            for r in rows
        ]
    ok = True
    all_deltas = []
    for base, meas in zip(baseline_rows, rows):
        deltas = compare_row(meas, base, time_tol)
        all_deltas.append({"shape": f"{base['m']}x{base['n']}", "deltas": deltas})
        print(format_deltas(f"{base['m']}x{base['n']}", deltas))
        ok &= all(d["ok"] for d in deltas)
    return ok, measured_rows, all_deltas


def _inject_serving(rows: list[dict], factor: float) -> list[dict]:
    """A synthetic uniform slowdown of serving rows (gate self-check).

    Latencies scale up; throughputs and the coalesce ratio scale down —
    the way a real regression of the coalesced path would read.
    """
    out = []
    for r in rows:
        row = {}
        for k, v in r.items():
            if _is_latency(k):
                row[k] = v * factor
            elif _is_qps(k) or _is_speedup(k):
                row[k] = v / factor
            else:
                row[k] = v
        out.append(row)
    return out


def run_serving_gate(
    baseline_rows: list[dict],
    time_tol: float,
    inject_slowdown: float | None = None,
    measured_rows: list[dict] | None = None,
) -> tuple[bool, list[dict], list[dict]]:
    """Re-measure every baseline serving row (same load parameters) and diff."""
    import bench_serving  # deferred: the serving stack only loads when gated

    if measured_rows is None:
        measured_rows = [
            bench_serving.bench_serving(
                m=b["m"], n=b["n"], requests=b["requests"],
                rate=b["open_loop_rate"],
            )
            for b in baseline_rows
        ]
    rows = measured_rows
    if inject_slowdown:
        rows = _inject_serving(rows, inject_slowdown)
    ok = True
    all_deltas = []
    for base, meas in zip(baseline_rows, rows):
        deltas = compare_row(meas, base, time_tol)
        shape = f"serving {base['m']}x{base['n']}"
        all_deltas.append({"shape": shape, "deltas": deltas})
        print(format_deltas(shape, deltas))
        ok &= all(d["ok"] for d in deltas)
    return ok, measured_rows, all_deltas


def _inject_sharded(rows: list[dict], factor: float) -> list[dict]:
    """A synthetic slowdown of sharded rows (gate self-check): times
    scale up, the scaling speedups scale down — the way a reduction or
    interconnect regression would read."""
    out = []
    for r in rows:
        row = {}
        for k, v in r.items():
            if _is_time(k):
                row[k] = v * factor
            elif _is_speedup(k):
                row[k] = v / factor
            else:
                row[k] = v
        out.append(row)
    return out


def run_sharded_gate(
    baseline_rows: list[dict],
    time_tol: float,
    inject_slowdown: float | None = None,
    measured_rows: list[dict] | None = None,
) -> tuple[bool, list[dict], list[dict]]:
    """Re-run every baseline sharded row (same shape/shards) and diff."""
    import bench_distributed  # deferred: loads only when gated

    if measured_rows is None:
        measured_rows = [
            bench_distributed.bench_row(m=b["m"], n=b["n"], shards=b["shards"])
            for b in baseline_rows
        ]
    rows = measured_rows
    if inject_slowdown:
        rows = _inject_sharded(rows, inject_slowdown)
    ok = True
    all_deltas = []
    for base, meas in zip(baseline_rows, rows):
        deltas = compare_row(meas, base, time_tol)
        shape = f"sharded {base['m']}x{base['n']} P={base['shards']}"
        all_deltas.append({"shape": shape, "deltas": deltas})
        print(format_deltas(shape, deltas))
        ok &= all(d["ok"] for d in deltas)
    return ok, measured_rows, all_deltas


def _inject_streaming(rows: list[dict], factor: float) -> list[dict]:
    """A synthetic streaming regression (gate self-check): memory peaks
    and the bounded ratio blow up by ``factor``, the soak slows down and
    throughput falls by the same factor — the way a per-chunk leak (or a
    silently unbounded carry) would read."""
    out = []
    for r in rows:
        row = {}
        for k, v in r.items():
            if _is_memory(k) or k == "streaming_bounded_ratio" or _is_time(k):
                row[k] = v * factor
            elif _is_qps(k):
                row[k] = v / factor
            else:
                row[k] = v
        out.append(row)
    return out


def run_streaming_gate(
    baseline_rows: list[dict],
    time_tol: float,
    inject_slowdown: float | None = None,
    measured_rows: list[dict] | None = None,
) -> tuple[bool, list[dict], list[dict]]:
    """Re-run every baseline soak row (same rows/chunking) and diff."""
    import bench_streaming  # deferred: loads only when gated

    if measured_rows is None:
        measured_rows = [
            bench_streaming.bench_streaming(
                rows=b["rows"], n=b["n"], chunk_rows=b["chunk_rows"]
            )
            for b in baseline_rows
        ]
    rows = measured_rows
    if inject_slowdown:
        rows = _inject_streaming(rows, inject_slowdown)
    ok = True
    all_deltas = []
    for base, meas in zip(baseline_rows, rows):
        deltas = compare_row(meas, base, time_tol)
        shape = f"streaming {base['rows']}x{base['n']} C={base['chunk_rows']}"
        all_deltas.append({"shape": shape, "deltas": deltas})
        print(format_deltas(shape, deltas))
        ok &= all(d["ok"] for d in deltas)
    return ok, measured_rows, all_deltas


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON (default: BENCH_caqr.json, or the committed "
        "quick baseline with --quick)",
    )
    ap.add_argument(
        "--quick",
        action="store_true",
        help=f"gate against the committed quick baseline ({QUICK_BASELINE.name})",
    )
    ap.add_argument(
        "--serving",
        action="store_true",
        help="also gate the serving rows (coalesced/per-request QPS, "
        "latency percentiles) from benchmarks/bench_serving.py",
    )
    ap.add_argument(
        "--serving-only",
        action="store_true",
        help="gate only the serving rows (implies --serving; skips the "
        "CAQR shape grid)",
    )
    ap.add_argument(
        "--check-sharded",
        action="store_true",
        help="also gate the sharded rows (bit-identity, R gap, comm "
        "counts, modeled strong/weak scaling) from "
        "benchmarks/bench_distributed.py",
    )
    ap.add_argument(
        "--sharded-only",
        action="store_true",
        help="gate only the sharded rows (implies --check-sharded; "
        "skips the CAQR shape grid)",
    )
    ap.add_argument(
        "--check-streaming",
        action="store_true",
        help="also gate the streaming soak rows (rows/sec floor, peak-"
        "memory ceilings, bounded-memory ratio, streamed-vs-oneshot R "
        "gap) from benchmarks/bench_streaming.py",
    )
    ap.add_argument(
        "--streaming-only",
        action="store_true",
        help="gate only the streaming soak rows (implies "
        "--check-streaming; skips the CAQR shape grid)",
    )
    ap.add_argument("--reps", type=int, default=3, help="timed repetitions (best-of)")
    ap.add_argument(
        "--time-tol",
        type=float,
        default=0.25,
        help="relative tolerance for seconds/speedup metrics (default 0.25)",
    )
    ap.add_argument(
        "--inject-slowdown",
        type=float,
        default=None,
        help="multiply measured times by this factor (gate self-check: "
        "2.0 must make the gate fail)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="measure once, then verify the gate passes on its own numbers "
        "and fails on a synthetic 2x slowdown of them",
    )
    ap.add_argument("--out", type=Path, default=None, help="write the delta table JSON here")
    args = ap.parse_args(argv)

    do_core = not (args.serving_only or args.sharded_only or args.streaming_only)
    do_serving = args.serving or args.serving_only
    do_sharded = args.check_sharded or args.sharded_only
    do_streaming = args.check_streaming or args.streaming_only

    baseline_rows: list[dict] = []
    baseline_path = args.baseline or (QUICK_BASELINE if args.quick else FULL_BASELINE)
    if do_core:
        if not baseline_path.exists():
            print(f"baseline {baseline_path} not found — run bench_realtime.py first")
            return 2
        baseline_rows = json.loads(baseline_path.read_text())["shapes"]
        print(f"gating against {baseline_path} ({len(baseline_rows)} shapes, "
              f"time tolerance ±{args.time_tol:.0%})\n")

    serving_rows: list[dict] = []
    if do_serving:
        serving_path = args.baseline or (
            SERVING_QUICK_BASELINE if args.quick else FULL_BASELINE
        )
        if not serving_path.exists():
            print(f"serving baseline {serving_path} not found — run "
                  f"bench_serving.py first")
            return 2
        serving_rows = json.loads(serving_path.read_text()).get("serving", [])
        if not serving_rows:
            print(f"serving baseline {serving_path} has no 'serving' rows — "
                  f"run bench_serving.py first")
            return 2
        print(f"gating serving against {serving_path} ({len(serving_rows)} "
              f"row(s), time tolerance ±{args.time_tol:.0%})\n")

    sharded_rows: list[dict] = []
    if do_sharded:
        sharded_path = args.baseline or (
            SHARDED_QUICK_BASELINE if args.quick else SHARDED_FULL_BASELINE
        )
        if not sharded_path.exists():
            print(f"sharded baseline {sharded_path} not found — run "
                  f"bench_distributed.py first")
            return 2
        sharded_rows = json.loads(sharded_path.read_text()).get("sharded", [])
        if not sharded_rows:
            print(f"sharded baseline {sharded_path} has no 'sharded' rows — "
                  f"run bench_distributed.py first")
            return 2
        print(f"gating sharded against {sharded_path} ({len(sharded_rows)} "
              f"row(s), time tolerance ±{args.time_tol:.0%})\n")

    streaming_rows: list[dict] = []
    if do_streaming:
        streaming_path = args.baseline or (
            STREAMING_QUICK_BASELINE if args.quick else STREAMING_FULL_BASELINE
        )
        if not streaming_path.exists():
            print(f"streaming baseline {streaming_path} not found — run "
                  f"bench_streaming.py first")
            return 2
        streaming_rows = json.loads(streaming_path.read_text()).get("streaming", [])
        if not streaming_rows:
            print(f"streaming baseline {streaming_path} has no 'streaming' "
                  f"rows — run bench_streaming.py first")
            return 2
        print(f"gating streaming against {streaming_path} "
              f"({len(streaming_rows)} row(s), time tolerance "
              f"±{args.time_tol:.0%})\n")

    if args.self_test:
        # One real measurement per gate; the injected comparisons reuse
        # it, so the self-test costs one bench run each, not three.
        ok = True
        if do_core:
            ok_pass, measured, _ = run_gate(baseline_rows, args.time_tol, args.reps)
            print("\nself-test: injecting 2.0x slowdown (every metric below "
                  "must FAIL on seconds_*)\n")
            ok_fail, _, _ = run_gate(
                baseline_rows, args.time_tol, args.reps,
                inject_slowdown=2.0, measured_rows=measured,
            )
            if not ok_pass:
                print("\nself-test: FAILED — clean run did not pass the gate")
                ok = False
            if ok_fail:
                print("\nself-test: FAILED — injected 2x slowdown was not caught")
                ok = False
        if do_serving:
            s_pass, s_measured, _ = run_serving_gate(serving_rows, args.time_tol)
            print("\nself-test: injecting 2.0x serving slowdown (the QPS "
                  "floors below must FAIL)\n")
            s_fail, _, _ = run_serving_gate(
                serving_rows, args.time_tol,
                inject_slowdown=2.0, measured_rows=s_measured,
            )
            if not s_pass:
                print("\nself-test: FAILED — clean serving run did not pass")
                ok = False
            if s_fail:
                print("\nself-test: FAILED — injected 2x serving slowdown "
                      "was not caught")
                ok = False
        if do_sharded:
            d_pass, d_measured, _ = run_sharded_gate(sharded_rows, args.time_tol)
            print("\nself-test: injecting 2.0x sharded slowdown (the "
                  "scaling-speedup floors below must FAIL)\n")
            d_fail, _, _ = run_sharded_gate(
                sharded_rows, args.time_tol,
                inject_slowdown=2.0, measured_rows=d_measured,
            )
            if not d_pass:
                print("\nself-test: FAILED — clean sharded run did not pass")
                ok = False
            if d_fail:
                print("\nself-test: FAILED — injected 2x sharded slowdown "
                      "was not caught")
                ok = False
        if do_streaming:
            t_pass, t_measured, _ = run_streaming_gate(
                streaming_rows, args.time_tol
            )
            print("\nself-test: injecting 2.0x streaming memory blow-up "
                  "(the peak-memory ceilings and the bounded ratio below "
                  "must FAIL)\n")
            t_fail, _, _ = run_streaming_gate(
                streaming_rows, args.time_tol,
                inject_slowdown=2.0, measured_rows=t_measured,
            )
            if not t_pass:
                print("\nself-test: FAILED — clean streaming run did not pass")
                ok = False
            if t_fail:
                print("\nself-test: FAILED — injected 2x streaming memory "
                      "blow-up was not caught")
                ok = False
        if ok:
            print("\nself-test: ok (clean run passes, 2x slowdown trips the gate)")
        return 0 if ok else 1

    ok = True
    all_deltas: list[dict] = []
    if do_core:
        core_ok, _, core_deltas = run_gate(
            baseline_rows, args.time_tol, args.reps,
            inject_slowdown=args.inject_slowdown,
        )
        ok &= core_ok
        all_deltas.extend(core_deltas)
    if do_serving:
        serving_ok, _, serving_deltas = run_serving_gate(
            serving_rows, args.time_tol, inject_slowdown=args.inject_slowdown
        )
        ok &= serving_ok
        all_deltas.extend(serving_deltas)
    if do_sharded:
        sharded_ok, _, sharded_deltas = run_sharded_gate(
            sharded_rows, args.time_tol, inject_slowdown=args.inject_slowdown
        )
        ok &= sharded_ok
        all_deltas.extend(sharded_deltas)
    if do_streaming:
        streaming_ok, _, streaming_deltas = run_streaming_gate(
            streaming_rows, args.time_tol, inject_slowdown=args.inject_slowdown
        )
        ok &= streaming_ok
        all_deltas.extend(streaming_deltas)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(
            {"baseline": str(baseline_path), "time_tol": args.time_tol,
             "ok": ok, "shapes": all_deltas}, indent=1) + "\n")
        print(f"\nwrote {args.out}")
    print(f"\nperf gate: {'ok' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
