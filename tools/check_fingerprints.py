#!/usr/bin/env python
"""CI launch-fingerprint drift gate for every execution path.

Three fingerprint families, all pure shape arithmetic:

* **Serial launch stream** (``seed`` / ``batched`` / ``structured``) —
  :func:`repro.verify.invariants.launch_fingerprint`, the SHA-256 of the
  modeled kernel-launch sequence.  The three serial paths share one
  stream by design (strategy never changes the launches), so their
  golden values coincide; the gate pins that *identity* as well as the
  values.
* **Look-ahead task DAG** (``lookahead`` / ``lookahead_mt``) — a SHA-256
  over :func:`repro.graph.executor.build_lookahead_schedule`'s panel
  partition and dependency-wired task list.  Tiling is keyed on
  ``workers``, so the mt variant (workers=3) pins the tiled DAG.
* **CholeskyQR2 launch stream** (``cholqr2`` / ``cholqr2_mixed`` /
  ``auto``) — a SHA-256 over
  :func:`repro.caqr_gpu.enumerate_cholqr2_launches`: the O(1) canonical
  two-pass scale/gram/chol/trsm sequence, keyed on the mixed-precision
  flag and on whether the ``auto`` guard precheck launches.  Host-side
  fusion must never move these pins (the modeled stream is shape-pure).
* **Shard reduction schedule** (``sharded``) —
  :meth:`repro.distributed.sharded.ShardSchedule.fingerprint`: the
  SHA-256 of the row deal plus the fan-in reduction rounds built by
  ``plan_qr`` for the reference shard count (4, binomial fan-in).  A
  moved pin means the row partition or tree changed — which silently
  changes which R the "bit-identical" contract pins.
* **Task-graph layers** (``rsvd_graph`` / ``sharded_graph``) —
  :meth:`repro.graph.highlevel.TaskGraph.fingerprint` of the rSVD
  pipeline and the sharded-reduction rounds compiled by their registered
  producers.  The hash covers layers, keys, deps and annotations but
  never the numeric payloads, so the structural (unbound) emission pins
  exactly what the bound execution runs.
* **Streaming chunk pipeline** (``streaming``) —
  :meth:`repro.graph.highlevel.TaskGraph.fingerprint` of the
  out-of-core chunk/factor/fold layers compiled by
  :func:`repro.streaming.graphs.emit_streaming_layers` for the
  reference chunk height (4096 rows).  A moved pin means the chunk row
  deal or the fold chain changed — which silently changes which R the
  streamed-equals-one-shot contract pins.
* **Static order** (``caqr_order``) —
  :func:`repro.graph.order.order_fingerprint` of the CAQR task graph:
  the deterministic critical-path-aware total order every consumer
  (serial runner, threaded executor, stream scheduler) issues from.  A
  moved pin means the ordering pass changed its mind — which is a
  scheduling change even when the graph itself did not move.

Golden values live in ``tests/data/fingerprints.json``.  A mismatch
means a PR silently changed the launch stream or the task schedule —
rerun with ``--update`` only when that change is intentional, and say
why in the commit.

Usage::

    python tools/check_fingerprints.py            # CI gate (exit 1 on drift)
    python tools/check_fingerprints.py --update   # re-bless the goldens
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # self-locating: only extend sys.path when repro is not installed
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))

GOLDEN = REPO_ROOT / "tests" / "data" / "fingerprints.json"

# (m, n) grid: the CI smoke shape, the bench grid, and a wide matrix
# that exercises multi-panel trailing updates; br=64 / pw=16 throughout
# (the paper's reference geometry).
SHAPES = [(1024, 256), (4096, 32), (16384, 64), (55296, 100), (110592, 100)]
BLOCK_ROWS = 64
PANEL_WIDTH = 16

SERIAL_PATHS = ("seed", "batched", "structured")
LOOKAHEAD_PATHS = {"lookahead": None, "lookahead_mt": 3}  # name -> workers
# name -> (mixed, guard); mirrors CHOLQR_PATHS in repro.runtime.policy.
CHOLQR_PATHS = {
    "cholqr2": (False, False),
    "cholqr2_mixed": (True, False),
    "auto": (False, True),
}
# name -> (shards, fanin); the reference sharded configuration.
SHARDED_PATHS = {"sharded": (4, 2)}
# name -> (k, oversample, power_iters); the rSVD pipeline-graph pin.
RSVD_GRAPH_PATHS = {"rsvd_graph": (8, 8, 1)}
# name -> (shards, fanin); the sharded-reduction layer pin (same
# reference configuration as the schedule pin above, hashed as layers).
SHARDED_GRAPH_PATHS = {"sharded_graph": (4, 2)}
# name -> chunk_rows; the streaming chunk-pipeline layer pin.
STREAMING_PATHS = {"streaming": 4096}
# name -> lookahead edge; the CAQR static-order pin.
CAQR_ORDER_PATHS = {"caqr_order": True}


def _sharded_fingerprint(m: int, n: int, shards: int, fanin: int) -> str:
    """SHA-256 of the shard row deal + fan-in reduction schedule."""
    from repro.distributed.sharded import build_shard_schedule

    return build_shard_schedule(m, n, shards, fanin).fingerprint()


def _rsvd_graph_fingerprint(m: int, n: int, k: int, oversample: int, power: int) -> str:
    """SHA-256 of the (unbound) rSVD pipeline task graph."""
    from repro.core.randomized_svd import emit_rsvd_layers

    return emit_rsvd_layers(m, n, k, oversample, power).fingerprint()


def _sharded_graph_fingerprint(m: int, n: int, shards: int, fanin: int) -> str:
    """SHA-256 of the sharded reduction compiled to task-graph layers."""
    from repro.distributed.sharded import build_shard_schedule, emit_sharded_layers

    return emit_sharded_layers(build_shard_schedule(m, n, shards, fanin)).fingerprint()


def _streaming_fingerprint(m: int, n: int, chunk_rows: int) -> str:
    """SHA-256 of the streaming chunk/factor/fold pipeline layers."""
    from repro.streaming.graphs import emit_streaming_layers

    return emit_streaming_layers(m, n, chunk_rows).fingerprint()


def _caqr_order_fingerprint(m: int, n: int, cfg, lookahead: bool) -> str:
    """SHA-256 of the CAQR graph's deterministic static order."""
    from repro.graph.dag import emit_caqr_layers
    from repro.graph.order import order_fingerprint

    return order_fingerprint(emit_caqr_layers(m, n, cfg, lookahead=lookahead))


def _cholqr_fingerprint(m: int, n: int, cfg, mixed: bool, guard: bool) -> str:
    """SHA-256 of the modeled CholeskyQR2 kernel-launch sequence."""
    from repro.caqr_gpu import enumerate_cholqr2_launches
    from repro.gpusim.device import C2050

    h = hashlib.sha256()
    h.update(repr((m, n, mixed, guard)).encode())
    for spec in enumerate_cholqr2_launches(m, n, cfg, C2050, mixed=mixed, guard=guard):
        h.update(repr(spec).encode())
    return h.hexdigest()[:16]


def _schedule_fingerprint(m: int, n: int, workers: int | None) -> str:
    """SHA-256 of the look-ahead panel partition + task DAG."""
    from repro.graph.executor import build_lookahead_schedule
    from repro.runtime import ExecutionPolicy

    policy = ExecutionPolicy(
        path="lookahead",
        workers=workers,
        panel_width=PANEL_WIDTH,
        block_rows=BLOCK_ROWS,
    )
    sched = build_lookahead_schedule(m, n, policy)
    h = hashlib.sha256()
    # The schedule's panel tuples carry row/column offsets but not the
    # matrix height, so (m, n) goes into the hash explicitly.
    h.update(repr((sched.m, sched.n)).encode())
    h.update(repr(sched.panels).encode())
    for t in sched.tasks:
        h.update(repr((t.kind, t.panel, t.lo, t.hi, t.deps)).encode())
    return h.hexdigest()[:16]


def compute_fingerprints() -> dict:
    """The full path x shape fingerprint table, as stored in the golden."""
    from repro.kernels.config import KernelConfig
    from repro.verify.invariants import launch_fingerprint

    cfg = KernelConfig(block_rows=BLOCK_ROWS, panel_width=PANEL_WIDTH)
    out: dict[str, dict[str, str]] = {}
    for path in SERIAL_PATHS:
        # One launch stream for all serial strategies — recomputed per
        # path anyway so a future per-path divergence cannot hide.
        out[path] = {
            f"{m}x{n}": launch_fingerprint(m, n, cfg)[:16] for m, n in SHAPES
        }
    for path, workers in LOOKAHEAD_PATHS.items():
        out[path] = {
            f"{m}x{n}": _schedule_fingerprint(m, n, workers) for m, n in SHAPES
        }
    for path, (mixed, guard) in CHOLQR_PATHS.items():
        out[path] = {
            f"{m}x{n}": _cholqr_fingerprint(m, n, cfg, mixed, guard)
            for m, n in SHAPES
        }
    for path, (shards, fanin) in SHARDED_PATHS.items():
        out[path] = {
            f"{m}x{n}": _sharded_fingerprint(m, n, shards, fanin)
            for m, n in SHAPES
        }
    for path, (k, oversample, power) in RSVD_GRAPH_PATHS.items():
        out[path] = {
            f"{m}x{n}": _rsvd_graph_fingerprint(m, n, k, oversample, power)
            for m, n in SHAPES
        }
    for path, (shards, fanin) in SHARDED_GRAPH_PATHS.items():
        out[path] = {
            f"{m}x{n}": _sharded_graph_fingerprint(m, n, shards, fanin)
            for m, n in SHAPES
        }
    for path, chunk_rows in STREAMING_PATHS.items():
        out[path] = {
            f"{m}x{n}": _streaming_fingerprint(m, n, chunk_rows)
            for m, n in SHAPES
        }
    for path, lookahead in CAQR_ORDER_PATHS.items():
        out[path] = {
            f"{m}x{n}": _caqr_order_fingerprint(m, n, cfg, lookahead)
            for m, n in SHAPES
        }
    return out


def diff_fingerprints(golden: dict, fresh: dict) -> list[str]:
    """Readable drift lines (empty when the tables agree)."""
    lines = []
    for path in sorted(set(golden) | set(fresh)):
        g_shapes = golden.get(path, {})
        f_shapes = fresh.get(path, {})
        for shape in sorted(set(g_shapes) | set(f_shapes)):
            g = g_shapes.get(shape)
            f = f_shapes.get(shape)
            if g != f:
                lines.append(
                    f"  {path:<13} {shape:<11} golden={g or '<missing>'} "
                    f"fresh={f or '<missing>'}"
                )
    return lines


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--update", action="store_true", help="re-bless the golden file"
    )
    ap.add_argument("--golden", type=Path, default=GOLDEN)
    args = ap.parse_args(argv)

    fresh = compute_fingerprints()
    if args.update:
        args.golden.parent.mkdir(parents=True, exist_ok=True)
        args.golden.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.golden}")
        return 0
    if not args.golden.exists():
        print(f"golden {args.golden} not found — run with --update to create it")
        return 2
    golden = json.loads(args.golden.read_text())
    drift = diff_fingerprints(golden, fresh)
    n_pins = sum(len(v) for v in fresh.values())
    if drift:
        print(f"launch-fingerprint drift ({len(drift)} of {n_pins} pins moved):")
        print("\n".join(drift))
        print(
            "\nThe launch stream / look-ahead DAG is pinned; if this change is "
            "intentional, rerun with --update and explain it in the commit."
        )
        return 1
    print(f"fingerprints: all {n_pins} pins stable across "
          f"{len(fresh)} paths x {len(SHAPES)} shapes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
