#!/usr/bin/env python
"""Layering lint: path-selection kwargs live in ``repro.runtime`` only.

The policy refactor routed every execution-path decision through
``repro.runtime.ExecutionPolicy``.  The legacy keywords (``batched``,
``structured``, ``lookahead``, ``workers``) survive on the public entry
points as deprecation shims for *external* callers — but no module
inside this repository may construct them directly anymore: internal
code passes ``policy=`` (or calls the ``_impl`` layers), so future
backends/telemetry hook in at exactly one place.

The same ownership rule covers the CholeskyQR2 condition guard: every
accept/reject threshold and fallback decision is a *policy*, so
constructing :class:`repro.runtime.cholqr.CholQRGuard` (directly or via
``CholQRGuard.for_policy``) anywhere outside ``repro.runtime`` is a
violation, as is smuggling a ``condition_limit=`` keyword into an entry
point instead of carrying it on the ``ExecutionPolicy``.

The serving subsystem gets the same treatment: constructing
:class:`repro.serving.coalesce.CoalescingQueue` anywhere outside
``repro.serving`` is a violation — queue depth, overflow disposition and
the coalescing window are admission-control policy owned by
:class:`~repro.serving.server.QRServer`, and a privately built queue
would bypass backpressure accounting and the per-tenant obs spans.

So does the distributed subsystem: constructing
:class:`repro.distributed.comm.FakeComm` anywhere outside
``repro.distributed`` is a violation — the communicator's per-level
counters feed the critical-path accounting and the alpha-beta interconnect
charges, so a privately built communicator would produce traffic no
scaling report or gate ever sees.  Code wanting a sharded run goes
through ``ExecutionPolicy(path="sharded", shards=P)``.

The task-graph layer gets the same treatment: constructing
:class:`repro.graph.highlevel.TaskGraph` (or a raw ``Layer``) anywhere
outside ``repro.graph`` and the registered producers
(:data:`repro.graph.highlevel.PRODUCERS`) is a violation — the graph's
fingerprint is a CI-pinned artifact, so every layer emission must go
through a producer the registry (and the fingerprint gate) knows about.
Consumers receive a built ``TaskGraph``; they never assemble one.

The streaming subsystem gets the same treatment: constructing
:class:`repro.streaming.qr.StreamingQR` or
:class:`repro.streaming.ingest.ChunkBuffer` anywhere outside
``repro.streaming`` is a violation — chunk geometry rides on
``ExecutionPolicy(path="streaming", chunk_rows=...)`` and the bounded
in-flight window plus the deterministic memory accounting live in the
streaming package, so a privately built engine would produce rows no
soak gate ever accounts for.  External code calls ``stream_qr`` /
``stream_chunks`` or the policy-routed entry points.

AST-based, not regex: a call like ``caqr_qr(A, batched=False)`` is
flagged wherever the callee name matches a policy-accepting entry point,
while unrelated keywords named ``workers`` on non-entry-point calls
(e.g. ``ThreadPoolExecutor(max_workers=...)``) are not.

Scanned: ``src/repro`` (minus ``repro/runtime``, which owns the
mapping), ``benchmarks/``, ``examples/``.  Tests are exempt — they
deliberately exercise the deprecation shims.

Exit status 1 lists every violation as ``file:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Public entry points that accept (deprecated) path-selection kwargs.
ENTRY_POINTS = {
    "caqr",
    "caqr_qr",
    "tsqr",
    "tsqr_qr",
    "caqr_gpu_factor",
    "caqr_lookahead",
    "randomized_svd",
    "randomized_range_finder",
    "QRDispatcher",
    "AdaptiveSVT",
}

# Keywords whose construction is reserved to repro.runtime and the shims.
# ``nonfinite`` stays off this list: it is a guard knob, not a path
# selector, and the numeric baselines legitimately take it.
# ``condition_limit`` is an ExecutionPolicy field, never an entry-point
# kwarg: the CholeskyQR2 guard threshold must ride on the policy object.
PATH_KWARGS = {"batched", "structured", "lookahead", "workers", "condition_limit"}

# Classes whose *construction* is reserved to repro.runtime: the
# CholeskyQR2 accept/reject/fallback decisions live there and nowhere
# else.  Both ``CholQRGuard(...)`` and ``CholQRGuard.for_policy(...)``
# count.
GUARD_CONSTRUCTORS = {"CholQRGuard"}

# Classes whose construction is reserved to repro.serving: queue depth,
# overflow disposition and the coalescing window are *serving policy*.
# Code wanting different trade-offs configures a QRServer; a privately
# constructed queue would bypass admission control and the obs counters.
QUEUE_CONSTRUCTORS = {"CoalescingQueue"}

# Classes whose construction is reserved to repro.distributed: the
# communicator's per-level counters are what the critical-path and
# interconnect accounting is computed from, so every rank-to-rank
# message must flow through the one communicator the sharded runner
# builds.  Sharded execution is requested via ExecutionPolicy.
COMM_CONSTRUCTORS = {"FakeComm"}

# Classes whose construction is reserved to repro.graph and the
# registered producers: graph shape is a CI-fingerprinted artifact, so
# layers are emitted only by code the PRODUCERS registry names.
GRAPH_CONSTRUCTORS = {"TaskGraph", "Layer"}

# Classes whose construction is reserved to repro.streaming: chunk
# geometry and the bounded in-flight window are *streaming policy*
# (ExecutionPolicy.chunk_rows), and a privately built engine or buffer
# would bypass the per-chunk obs spans and the deterministic memory
# accounting the soak gate pins.  External code streams via
# repro.streaming.stream_qr / stream_chunks or
# ExecutionPolicy(path="streaming", chunk_rows=...).
STREAM_CONSTRUCTORS = {"StreamingQR", "ChunkBuffer"}

SCAN_ROOTS = ("src/repro", "benchmarks", "examples")
EXEMPT = ("src/repro/runtime/",)
# Per-rule exemption: only the serving package may construct the queue.
QUEUE_EXEMPT = ("src/repro/serving/",)
# Per-rule exemption: only the distributed package may construct the comm.
COMM_EXEMPT = ("src/repro/distributed/",)
# Per-rule exemption: repro.graph plus the producer modules registered in
# repro.graph.highlevel.PRODUCERS (kept in sync by
# tests/runtime/test_layering_lint.py::test_graph_exemptions_cover_producers).
GRAPH_EXEMPT = (
    "src/repro/graph/",
    "src/repro/core/randomized_svd.py",
    "src/repro/rpca/graphs.py",
    "src/repro/distributed/sharded.py",
    "src/repro/streaming/graphs.py",
)
# Per-rule exemption: only the streaming package may construct the
# engine and the chunk buffer.
STREAM_EXEMPT = ("src/repro/streaming/",)


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def scan_file(path: Path) -> list[tuple[int, str, str]]:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:  # a broken file is its own finding
        return [(exc.lineno or 0, "<syntax>", str(exc))]
    hits = []
    for node, enclosing in _walk_with_function(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _callee_name(node)
        if _is_guard_construction(node):
            hits.append(
                (node.lineno, name or "CholQRGuard", "guard construction")
            )
            continue
        if name in QUEUE_CONSTRUCTORS:
            hits.append((node.lineno, name, "queue construction"))
            continue
        if name in COMM_CONSTRUCTORS:
            hits.append((node.lineno, name, "comm construction"))
            continue
        if name in GRAPH_CONSTRUCTORS:
            hits.append((node.lineno, name, "graph construction"))
            continue
        if name in STREAM_CONSTRUCTORS:
            hits.append((node.lineno, name, "stream construction"))
            continue
        if name not in ENTRY_POINTS:
            continue
        if enclosing in ENTRY_POINTS:
            # A shim forwarding to its sibling (caqr_qr -> caqr): the
            # shims themselves are the sanctioned legacy surface.
            continue
        bad = sorted(
            kw.arg for kw in node.keywords if kw.arg in PATH_KWARGS
        )
        if bad:
            hits.append((node.lineno, name, ", ".join(bad)))
    return hits


def _is_guard_construction(call: ast.Call) -> bool:
    """``CholQRGuard(...)`` or ``CholQRGuard.for_policy(...)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in GUARD_CONSTRUCTORS
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id in GUARD_CONSTRUCTORS
    return False


def _walk_with_function(tree: ast.AST):
    """Yield ``(node, enclosing_function_name)`` over the whole tree."""

    def visit(node: ast.AST, fn: str | None):
        yield node, fn
        inner = (
            node.name
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else fn
        )
        for child in ast.iter_child_nodes(node):
            yield from visit(child, inner)

    yield from visit(tree, None)


def main() -> int:
    violations = []
    for root in SCAN_ROOTS:
        base = REPO / root
        if not base.exists():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(REPO).as_posix()
            if any(rel.startswith(pref) for pref in EXEMPT):
                continue
            for lineno, name, kwargs in scan_file(path):
                if kwargs == "guard construction":
                    violations.append(
                        f"{rel}:{lineno}: {name}(...) — CholQRGuard constructed "
                        f"outside repro.runtime"
                    )
                elif kwargs == "queue construction":
                    if any(rel.startswith(pref) for pref in QUEUE_EXEMPT):
                        continue  # the serving package owns the queue
                    violations.append(
                        f"{rel}:{lineno}: {name}(...) — coalescing queue "
                        f"constructed outside repro.serving (configure a "
                        f"QRServer instead)"
                    )
                elif kwargs == "comm construction":
                    if any(rel.startswith(pref) for pref in COMM_EXEMPT):
                        continue  # the distributed package owns the comm
                    violations.append(
                        f"{rel}:{lineno}: {name}(...) — communicator "
                        f"constructed outside repro.distributed (use "
                        f"ExecutionPolicy(path='sharded', shards=P) instead)"
                    )
                elif kwargs == "graph construction":
                    if any(rel.startswith(pref) for pref in GRAPH_EXEMPT):
                        continue  # repro.graph and its producers own layers
                    violations.append(
                        f"{rel}:{lineno}: {name}(...) — task-graph layers "
                        f"constructed outside repro.graph / registered "
                        f"producers (emit via repro.graph.highlevel.PRODUCERS)"
                    )
                elif kwargs == "stream construction":
                    if any(rel.startswith(pref) for pref in STREAM_EXEMPT):
                        continue  # the streaming package owns the engine
                    violations.append(
                        f"{rel}:{lineno}: {name}(...) — streaming engine/"
                        f"chunk buffer constructed outside repro.streaming "
                        f"(use stream_qr / stream_chunks, or "
                        f"ExecutionPolicy(path='streaming', chunk_rows=...))"
                    )
                else:
                    violations.append(f"{rel}:{lineno}: {name}(..., {kwargs}=...)")
    if violations:
        print("layering lint: path-selection kwargs constructed outside repro.runtime:")
        for v in violations:
            print(f"  {v}")
        print(
            f"\n{len(violations)} violation(s). Pass policy=ExecutionPolicy(...) "
            "instead (see docs/architecture.md, 'Execution policy & plans')."
        )
        return 1
    print("layering lint: clean (no path-selection kwargs outside repro.runtime)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
