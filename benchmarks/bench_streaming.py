#!/usr/bin/env python
"""Out-of-core streaming QR soak: throughput, bounded memory, exactness.

One row, four passes — none of which materializes the timed stream:

* **Soak** (timed): generate row blocks on the fly (deterministic per
  block: ``default_rng(seed + block_index)``) and fold them through
  ``stream_qr`` with ``ExecutionPolicy(path="streaming", chunk_rows=C)``.
  Reports steady-state ``streaming_rows_per_sec``, the engine's
  deterministic ``streaming_peak_tracked_mb`` (pure shape arithmetic:
  chunk buffer + factor transients + resident triangles), and the OS
  ``streaming_peak_rss_mb`` (``getrusage`` high-water mark, sampled
  before any verification matrix exists).
* **Bounded-memory probe**: re-run the identical configuration at half
  the stream length; ``streaming_bounded_ratio`` is full/half tracked
  peak.  A streaming engine whose working set is independent of stream
  length reads exactly 1.0 — anything accumulating per-chunk state
  drifts above it.
* **Verify**: regenerate the same blocks, stack them once, and compare
  the streamed R against one-shot batched CAQR sign-canonicalized
  (``streaming_r_gap``, normalized by ||A||).
* **Graph parity**: a short prefix through the registered
  ``streaming`` task-graph producer must reproduce the direct engine's
  R bit for bit (``streaming_graph_bit_gap`` == 0.0).

The full run soaks >= 1e6 rows and writes
``benchmarks/results/BENCH_streaming.json``; ``--quick`` soaks >= 1e5
rows (< 90 s on CI) and writes only when ``--out`` is given.
``tools/check_bench.py --check-streaming`` re-runs the quick row and
diffs it against the committed ``BENCH_streaming_quick.json``.

Usage::

    python benchmarks/bench_streaming.py            # full 1e6-row soak
    python benchmarks/bench_streaming.py --quick    # CI smoke (>=1e5 rows)
    python benchmarks/bench_streaming.py --check    # assert the bounds
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # self-locating: only extend sys.path when repro is not installed
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.caqr import caqr  # noqa: E402
from repro.core.validation import sign_canonical  # noqa: E402
from repro.runtime import ExecutionPolicy  # noqa: E402
from repro.streaming import (  # noqa: E402
    run_streaming_graph,
    run_streaming_matrix,
    stream_qr,
)

FULL_ROWS, QUICK_ROWS = 1_000_000, 120_000
N_COLS = 64
CHUNK_ROWS = 4096
BLOCK_ROWS, PANEL_WIDTH = 64, 16
# Producer blocks deliberately mismatch chunk_rows so every soak also
# exercises the ingest re-blocking window (ragged folds at the seams).
SOURCE_BLOCK_ROWS = 2048
GRAPH_PARITY_CHUNKS = 3  # prefix length for the bit-parity check


def _peak_rss_mb() -> float:
    """Process high-water RSS in MB (``ru_maxrss`` is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _blocks(rows: int, n: int, seed: int, block_rows: int = SOURCE_BLOCK_ROWS):
    """Deterministic on-the-fly row blocks: block i depends only on i.

    Both soak passes and the verification pass regenerate the identical
    stream from (rows, n, seed) — the full matrix never coexists with
    the timed run.
    """
    emitted, i = 0, 0
    while emitted < rows:
        h = min(block_rows, rows - emitted)
        rng = np.random.default_rng(seed + i)
        yield rng.standard_normal((h, n))[:h]
        emitted += h
        i += 1


def _policy(chunk_rows: int) -> ExecutionPolicy:
    return ExecutionPolicy(
        path="streaming",
        chunk_rows=chunk_rows,
        block_rows=BLOCK_ROWS,
        panel_width=PANEL_WIDTH,
    )


def _canon_r(R: np.ndarray) -> np.ndarray:
    _, Rc = sign_canonical(np.eye(min(R.shape)), R)
    return Rc


def _soak(rows: int, n: int, chunk_rows: int, seed: int):
    """One timed streaming pass; returns (engine, seconds)."""
    policy = _policy(chunk_rows)
    t0 = time.perf_counter()
    sq = stream_qr(_blocks(rows, n, seed), policy=policy)
    return sq, time.perf_counter() - t0


def bench_streaming(
    rows: int,
    n: int = N_COLS,
    chunk_rows: int = CHUNK_ROWS,
    seed: int = 2011,
    verify: bool = True,
) -> dict:
    """One soak row for the committed baseline."""
    # Warm the factor path (plan build, BLAS dispatch) off the clock.
    _soak(min(rows, 2 * chunk_rows), n, chunk_rows, seed=seed + 10_000)

    sq, seconds = _soak(rows, n, chunk_rows, seed)
    assert sq.rows_seen == rows
    rss_mb = _peak_rss_mb()  # sampled before any full matrix exists

    half, _ = _soak(rows // 2, n, chunk_rows, seed)
    ratio = sq.peak_tracked_bytes / max(half.peak_tracked_bytes, 1)

    row = {
        "rows": rows,
        "n": n,
        "chunk_rows": chunk_rows,
        "block_rows": BLOCK_ROWS,
        "panel_width": PANEL_WIDTH,
        "streaming_chunks": sq.n_chunks,
        "streaming_structured_merges": sq.structured_merges,
        "streaming_seconds": seconds,
        "streaming_rows_per_sec": rows / seconds,
        "streaming_peak_tracked_mb": sq.peak_tracked_bytes / 2**20,
        "streaming_peak_rss_mb": rss_mb,
        "streaming_bounded_ratio": float(ratio),
    }

    if verify:
        # The verification matrix is materialized only now, after the
        # RSS high-water mark above was sampled.
        A = np.vstack(list(_blocks(rows, n, seed)))
        one_shot = caqr(A, policy=ExecutionPolicy(
            path="batched", block_rows=BLOCK_ROWS, panel_width=PANEL_WIDTH,
        ))
        scale = max(float(np.linalg.norm(A)), 1.0)
        gap = np.abs(_canon_r(sq.R) - _canon_r(one_shot.R)).max() / scale
        row["streaming_r_gap"] = float(gap)

        prefix = A[: GRAPH_PARITY_CHUNKS * chunk_rows]
        pol = _policy(chunk_rows)
        direct = run_streaming_matrix(prefix, pol, retain_q=False)
        graphed = run_streaming_graph(prefix, pol)
        row["streaming_graph_bit_gap"] = float(
            np.abs(direct.R - graphed.R).max()
        )
    return row


def format_row(row: dict) -> str:
    lines = [
        f"soak {row['rows']} x {row['n']} rows in {row['chunk_rows']}-row "
        f"chunks ({row['streaming_chunks']} chunks, "
        f"{row['streaming_structured_merges']} structured merges):",
        f"  {row['streaming_seconds']:.2f} s  "
        f"{row['streaming_rows_per_sec']:,.0f} rows/s",
        f"  tracked peak {row['streaming_peak_tracked_mb']:.2f} MB  "
        f"rss peak {row['streaming_peak_rss_mb']:.0f} MB  "
        f"full/half tracked ratio {row['streaming_bounded_ratio']:.3f}",
    ]
    if "streaming_r_gap" in row:
        lines.append(
            f"  R gap vs one-shot CAQR {row['streaming_r_gap']:.3e}  "
            f"graph bit gap {row['streaming_graph_bit_gap']:g}"
        )
    return "\n".join(lines)


def check_row(row: dict) -> list[str]:
    """The soak acceptance bounds, asserted locally (``--check``)."""
    failures = []
    if row.get("streaming_r_gap", 0.0) > 1e-12:
        failures.append(
            f"streamed R gap {row['streaming_r_gap']:.3e} above 1e-12"
        )
    if row.get("streaming_graph_bit_gap", 0.0) != 0.0:
        failures.append("graph producer R is not bit-identical")
    if row["streaming_bounded_ratio"] > 1.05:
        failures.append(
            f"tracked peak grew with stream length "
            f"(full/half = {row['streaming_bounded_ratio']:.3f})"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: soak {QUICK_ROWS} rows instead of {FULL_ROWS}",
    )
    ap.add_argument("--rows", type=int, default=None, help="override the soak length")
    ap.add_argument(
        "--no-verify", action="store_true",
        help="skip the one-shot comparison pass (pure-throughput soak)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="assert the soak bounds (R gap, bit parity, bounded ratio)",
    )
    ap.add_argument(
        "--out", type=Path, default=None,
        help="write the row JSON here; the full run defaults to "
        "BENCH_streaming.json, --quick writes nothing without --out",
    )
    args = ap.parse_args(argv)

    rows = args.rows or (QUICK_ROWS if args.quick else FULL_ROWS)
    row = bench_streaming(rows, verify=not args.no_verify)
    print(format_row(row))

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "benchmarks" / "results" / "BENCH_streaming.json"
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps({"streaming": [row]}, indent=1) + "\n")
        print(f"wrote {out}")

    if args.check:
        failures = check_row(row)
        if failures:
            print("soak bounds FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
        print("soak bounds: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
