"""Benchmark: the communication study (words moved vs the lower bound)."""

from __future__ import annotations

from repro.experiments import communication


def test_bench_communication(benchmark, archive):
    rows = benchmark(communication.run)
    archive("communication", communication.format_results(rows))
    skinny = [r for r in rows if r.m // r.n >= 100]
    assert all(r.blas2_vs_caqr > 8.0 for r in skinny)
