"""Benchmark: modeled multi-stream overlap on the Table-I shapes."""

from __future__ import annotations

from repro.experiments import overlap_study


def test_bench_overlap(benchmark, archive):
    rows = benchmark(overlap_study.run)
    archive("overlap", overlap_study.format_results(rows))
    for r in rows:
        # Overlap never loses to the serial stream, never beats the
        # dependency critical path.
        assert r.critical_path_ms <= r.overlap_ms + 1e-12
        assert r.speedup > 1.0
    # At least one tall-skinny shape hides >= 20% of serial overheads.
    assert max(r.speedup for r in rows) >= 1.2
