"""Benchmark: hardware-projection study."""

from __future__ import annotations

from repro.experiments import projection


def test_bench_projection(benchmark, archive):
    rows = benchmark(projection.run)
    archive("projection", projection.format_results(rows))
    base = rows[0]
    for r in rows[1:]:
        # Compute-scaled devices widen CAQR's tall-skinny advantage.
        assert r.speedup_vs_best_lib > base.speedup_vs_best_lib
