"""Benchmark-suite helpers: every bench prints its paper-style table and
archives it under ``benchmarks/results/``."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Print a rendered experiment table and save it to results/."""

    def _archive(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _archive
