"""Benchmarks of the actual NumPy numerics (not the GPU model).

These measure the from-scratch implementations' real wall-clock on this
host — useful for regression tracking of the library itself, and for the
(host-scale) analogue of the paper's claim that TSQR reads the tall
matrix once while column-wise Householder sweeps it repeatedly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocked import geqrf
from repro.core.caqr import caqr
from repro.core.cholesky_qr import cholesky_qr
from repro.core.householder import geqr2
from repro.core.jacobi_svd import jacobi_svd
from repro.core.tsqr import tsqr
from repro.rpca.ialm import rpca_ialm


@pytest.fixture(scope="module")
def tall(rng_mod=np.random.default_rng(7)):
    return rng_mod.standard_normal((20_000, 32))


def test_bench_tsqr_tall(benchmark, tall):
    f = benchmark(tsqr, tall, 512, "quad")
    assert f.R.shape == (32, 32)


def test_bench_blocked_householder_tall(benchmark, tall):
    VR, tau = benchmark(geqrf, tall, 32)
    assert tau.shape == (32,)


def test_bench_cholesky_qr_tall(benchmark, tall):
    Q, R = benchmark(cholesky_qr, tall)
    assert Q.shape == tall.shape


def test_bench_geqr2_block(benchmark):
    A = np.random.default_rng(3).standard_normal((128, 16))
    VR, tau = benchmark(geqr2, A)
    assert tau.shape == (16,)


def test_bench_caqr_small_grid(benchmark):
    A = np.random.default_rng(4).standard_normal((1024, 64))
    f = benchmark(caqr, A, 16, 64, "quad")
    assert f.R.shape == (64, 64)


def test_bench_jacobi_svd_r_factor(benchmark):
    R = np.triu(np.random.default_rng(5).standard_normal((64, 64)))
    U, s, Vt = benchmark(jacobi_svd, R)
    assert s.shape == (64,)


def test_bench_rpca_iteration_scale(benchmark):
    from repro.rpca.video import generate_video

    v = generate_video(height=24, width=32, n_frames=24, seed=9)
    res = benchmark(rpca_ialm, v.M, None, None, 1.5, 1e-4, 25)
    assert res.n_iterations <= 25
