#!/usr/bin/env python
"""Sharded multi-device CAQR: measured numerics + modeled scaling curves.

Two tiers, one row:

* **Measured** (feasible shape, real arrays): factor through
  ``ExecutionPolicy(path="sharded", shards=P)``, assert the R factor is
  **bit-identical** to the same shard/reduction schedule executed
  without the communicator (``sharded_bit_gap == 0`` — the transport
  layer adds zero perturbation), compare sign-canonicalized R against
  the single-process tree (``sharded_r_gap``), and pin the exact
  communication counts (messages, words, critical path) the
  ``FakeComm`` recorded.
* **Modeled** (the paper-scale 2,000,000 x 1000 target): strong-scaling
  speedups at P in {4, 8, 16} from :func:`repro.caqr_gpu.simulate_sharded`
  (per-device local CAQR + stacked-triangle reductions + alpha-beta
  interconnect charges), plus weak-scaling speedups holding 125,000
  rows per rank.  Pure shape arithmetic — deterministic, so CI can gate
  the curve itself.

The full run writes ``benchmarks/results/BENCH_distributed.json``; the
quick run writes ``benchmarks/results/BENCH_sharded_quick.json`` when
``--out`` is given.  ``tools/check_bench.py --check-sharded`` re-runs
the quick row and diffs it against the committed baseline (strong
scaling at P=4 carries an absolute 2x floor).

Usage::

    python benchmarks/bench_distributed.py            # full row
    python benchmarks/bench_distributed.py --quick    # CI smoke
    python benchmarks/bench_distributed.py --check    # assert the floors
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # self-locating: only extend sys.path when repro is not installed
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.caqr_gpu import simulate_caqr, simulate_sharded  # noqa: E402
from repro.core.caqr import caqr  # noqa: E402
from repro.core.validation import sign_canonical  # noqa: E402
from repro.distributed import INTERCONNECTS, sharded_reference_r  # noqa: E402
from repro.runtime import ExecutionPolicy, plan_qr  # noqa: E402

# The modeled target: the acceptance-criterion scale.
TARGET_M, TARGET_N = 2_000_000, 1000
SHARD_COUNTS = (4, 8, 16)
WEAK_ROWS_PER_RANK = 125_000  # TARGET_M / 16

# Measured (materialized) shapes: multi-panel, uneven row deals.
FULL_M, FULL_N = 65_536, 192
QUICK_M, QUICK_N = 8_192, 96
MEASURED_SHARDS = 4
INTERCONNECT = "pcie2"


def bench_row(
    m: int,
    n: int,
    shards: int = MEASURED_SHARDS,
    reps: int = 3,
    seed: int = 7,
) -> dict:
    """One measured + modeled row for the committed baseline."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    policy = ExecutionPolicy(
        path="sharded", shards=shards, interconnect=INTERCONNECT
    )
    plan = plan_qr(m, n, policy=policy)

    best = float("inf")
    f = None
    for _ in range(reps):
        t0 = time.perf_counter()
        f = plan.factor(A)
        best = min(best, time.perf_counter() - t0)

    # Bit-identity: the communicated run vs the same schedule in-process.
    R_ref = sharded_reference_r(A, policy, schedule=plan._schedule)
    bit_gap = float(np.abs(f.R - R_ref).max()) if f.R.size else 0.0

    # Sign-canonicalized R agreement with the single-process tree.
    single = caqr(A, policy=ExecutionPolicy(path="batched"))
    scale = max(float(np.linalg.norm(A)), 1.0)
    _, Rc = sign_canonical(np.eye(min(m, n)), f.R)
    _, Rsc = sign_canonical(np.eye(min(m, n)), single.R)
    r_gap = float(np.abs(Rc - Rsc).max()) / scale

    comm = f.comm
    net = f.network_seconds(INTERCONNECTS[INTERCONNECT])
    row = {
        "m": m,
        "n": n,
        "shards": shards,
        "seconds_sharded_measured": best,
        "sharded_bit_gap": bit_gap,
        "sharded_r_gap": r_gap,
        "sharded_schedule_fingerprint": plan._schedule.fingerprint(),
        "sharded_messages": comm.total_messages if comm else 0,
        "sharded_words": comm.total_words if comm else 0.0,
        "sharded_critical_path_messages": (
            comm.critical_path_messages() if comm else 0
        ),
        "sharded_network_seconds_modeled": net,
    }
    row.update(modeled_scaling())
    return row


def modeled_scaling(
    target_m: int = TARGET_M,
    target_n: int = TARGET_N,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
) -> dict:
    """Strong/weak scaling of the modeled target, as gateable metrics.

    Strong: fixed 2M x 1000, speedup of P devices over one.  Weak: fixed
    125k rows per device, speedup of the P-device run over one device
    solving its own shard (ideal = P x the work in the same time, so the
    reported ratio is the parallel efficiency — near 1.0 when the
    reduction and interconnect stay off the critical path).
    """
    ic = INTERCONNECTS[INTERCONNECT]
    base = simulate_caqr(target_m, target_n).seconds
    one_shard = simulate_caqr(WEAK_ROWS_PER_RANK, target_n).seconds
    out = {
        "sharded_target_m": target_m,
        "sharded_target_n": target_n,
        "seconds_modeled_p1": base,
    }
    for p in shard_counts:
        strong = simulate_sharded(
            target_m, target_n, shards=p, interconnect=ic
        )
        weak = simulate_sharded(
            WEAK_ROWS_PER_RANK * p, target_n, shards=p, interconnect=ic
        )
        out[f"seconds_modeled_p{p}"] = strong.seconds
        out[f"sharded_strong_speedup_p{p}"] = base / strong.seconds
        out[f"sharded_weak_speedup_p{p}"] = one_shard / weak.seconds
    return out


def format_row(row: dict) -> str:
    lines = [
        f"measured {row['m']}x{row['n']} over {row['shards']} ranks: "
        f"{row['seconds_sharded_measured'] * 1e3:.1f} ms, "
        f"bit gap {row['sharded_bit_gap']:g}, "
        f"R gap vs single-process tree {row['sharded_r_gap']:.3e}",
        f"  comm: {row['sharded_messages']} message(s), "
        f"{row['sharded_words']:.0f} words, critical path "
        f"{row['sharded_critical_path_messages']} message(s), "
        f"modeled network {row['sharded_network_seconds_modeled'] * 1e6:.1f} us "
        f"({INTERCONNECT})",
        f"modeled target {row['sharded_target_m']}x{row['sharded_target_n']} "
        f"(P=1: {row['seconds_modeled_p1']:.2f} s):",
    ]
    for p in SHARD_COUNTS:
        lines.append(
            f"  P={p:>2}: {row[f'seconds_modeled_p{p}']:.3f} s  "
            f"strong {row[f'sharded_strong_speedup_p{p}']:.2f}x  "
            f"weak-efficiency {row[f'sharded_weak_speedup_p{p}']:.3f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: measure {QUICK_M}x{QUICK_N} instead of "
        f"{FULL_M}x{FULL_N}",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="fail unless bit-identity holds, the R gap stays below "
        "1e-12, and the modeled strong-scaling speedup at P=4 clears "
        "2x (the committed-baseline diff in check_bench.py gates "
        "tighter)",
    )
    ap.add_argument(
        "--out", type=Path, default=None,
        help="output JSON (default: benchmarks/results/"
        "BENCH_distributed.json on the full run; --quick writes nothing "
        "unless --out is given)",
    )
    args = ap.parse_args(argv)

    m, n = (QUICK_M, QUICK_N) if args.quick else (FULL_M, FULL_N)
    row = bench_row(m, n)
    print(format_row(row))

    if args.check:
        ok = True
        if row["sharded_bit_gap"] != 0.0:
            print(
                f"FAIL: sharded R differs from the in-process reference "
                f"by {row['sharded_bit_gap']:g} — the communicator "
                f"perturbed the numerics"
            )
            ok = False
        if row["sharded_r_gap"] > 1e-12:
            print(
                f"FAIL: sharded R gap vs the single-process tree "
                f"{row['sharded_r_gap']:.3e} above 1e-12"
            )
            ok = False
        if row["sharded_strong_speedup_p4"] < 2.0:
            print(
                f"FAIL: modeled strong-scaling speedup at P=4 "
                f"{row['sharded_strong_speedup_p4']:.2f}x below the 2x floor"
            )
            ok = False
        if not ok:
            return 1
        print("\ncheck: bit-identity, R gap and the P=4 scaling floor all hold")

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "benchmarks" / "results" / "BENCH_distributed.json"
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps({"sharded": [row]}, indent=1) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
