"""Benchmark: the stability study (orthogonality vs conditioning)."""

from __future__ import annotations

from repro.experiments import stability


def test_bench_stability(benchmark, archive):
    rows = benchmark(stability.run)
    archive("stability", stability.format_results(rows))
    worst = rows[-1]
    assert worst.errors["tsqr"] < 1e-12
    assert worst.errors["cgs"] > 1.0 or worst.errors["cgs"] == float("inf")
