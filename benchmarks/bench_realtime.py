#!/usr/bin/env python
"""Real-time (host NumPy) CAQR benchmark: batched vs seed per-node path.

The repo has two speed domains: the *simulated* C2050 timeline (what the
paper measures, produced by :mod:`repro.gpusim`) and the *host* wall
clock of the NumPy execution path that actually computes the numbers.
This benchmark measures the second one — the thing the batched
tree-level kernels and compact-WY trailing updates accelerate — and
verifies, per shape, that the speed came for free: identical launch
stream and residuals matching the seed path to near machine precision.

Protocol: both paths get one untimed warmup call, then the minimum of
``--reps`` timed runs is reported (standard min-of-N for a
single-process, single-core measurement).  The seed per-node execution
path is kept callable behind ``batched=False`` precisely so this
comparison stays honest as the batched path evolves.

Beyond the per-call paths, the benchmark times ``plan.factor`` on a
prebuilt :func:`repro.runtime.plan_qr` plan — the amortized regime where
one shape is factored repeatedly (streaming RPCA frames) and validation,
panel geometry and the look-ahead schedule are paid once up front.

Usage::

    python benchmarks/bench_realtime.py             # full sweep -> BENCH_caqr.json
    python benchmarks/bench_realtime.py --quick     # CI smoke (small shapes)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # self-locating: only extend sys.path when repro is not installed
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.caqr_gpu import enumerate_caqr_launches  # noqa: E402
from repro.core.caqr import caqr  # noqa: E402
from repro.core.tsqr import tsqr  # noqa: E402
from repro.kernels.config import KernelConfig  # noqa: E402
from repro.runtime import ExecutionPolicy, plan_qr  # noqa: E402

# (m, n, block_rows, panel_width)
FULL_SHAPES = [
    (16384, 64, 64, 16),
    (55296, 100, 64, 16),
    (110592, 100, 64, 16),  # the paper-scale acceptance shape
]
QUICK_SHAPES = [
    (4096, 32, 64, 16),
]
CHECK_SHAPES = [
    (16384, 64, 64, 16),  # --check-lookahead perf smoke
]


def qr_gflops(m: int, n: int) -> float:
    """Householder QR flop count, in Gflop."""
    return (2.0 * m * n * n - (2.0 / 3.0) * n * n * n) / 1e9


def time_best(fn, reps: int) -> float:
    fn()  # warmup: page in factors/plans/scratch
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def residuals(A: np.ndarray, factors) -> tuple[float, float]:
    """(‖A - QR‖/‖A‖, ‖QᵀQ - I‖) without materializing Q for the first.

    ``‖A - QR‖ = ‖Qᵀ(A - QR)‖ = ‖QᵀA - [R; 0]‖`` since Q is orthogonal.
    """
    m, n = A.shape
    QtA = factors.apply_qt(A.copy())
    QtA[:n] -= factors.R
    ferr = float(np.linalg.norm(QtA) / np.linalg.norm(A))
    Q = factors.form_q()
    oerr = float(np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1])))
    return ferr, oerr


def launch_fingerprint(m: int, n: int, block_rows: int, panel_width: int):
    """(count, sha256) of the simulated launch stream for this shape.

    The stream is pure shape arithmetic — both execution paths share it,
    so recording it here pins "the timeline did not move" into the
    benchmark artifact.
    """
    cfg = KernelConfig(block_rows=block_rows, panel_width=panel_width)
    digest = hashlib.sha256()
    count = 0
    for launch in enumerate_caqr_launches(m, n, cfg):
        digest.update(repr(launch).encode())
        count += 1
    return count, digest.hexdigest()[:16]


def bench_shape(m: int, n: int, br: int, pw: int, reps: int, seed: int = 7) -> dict:
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    gf = qr_gflops(m, n)

    def path_policy(path: str, **extra) -> ExecutionPolicy:
        return ExecutionPolicy(path=path, block_rows=br, panel_width=pw, **extra)

    # CholeskyQR2 fast paths, timed FIRST: their steady-state service
    # regime is a warm plan in a quiet process, and measuring them after
    # the Householder sweeps (hundreds of MB of transient panel/WY
    # allocations) inflates the O(1)-launch paths by up to ~70% through
    # allocator/page-cache churn.  Accuracy comes from the explicit
    # factors; ratios vs the look-ahead tree are attached further down
    # once that path is timed.
    from repro.runtime import count_fallbacks

    cholqr_rows: dict[str, dict] = {}
    t_cholqr: dict[str, float] = {}
    for name in ("cholqr2", "cholqr2_mixed", "auto"):
        cplan = plan_qr(m, n, dtype=A.dtype, policy=path_policy(name))
        t_c = time_best(lambda: cplan.factor(A), reps)
        with count_fallbacks() as counter:
            fc = cplan.factor(A)
        assert not fc.fell_back and counter.fallbacks == 0, (
            f"auto/{name} fell back on a Gaussian bench matrix"
        )
        Qc = fc.form_q()
        ferr_c = float(np.linalg.norm(A - Qc @ fc.R) / np.linalg.norm(A))
        oerr_c = float(np.linalg.norm(Qc.T @ Qc - np.eye(Qc.shape[1])))
        t_cholqr[name] = t_c
        cholqr_rows[name] = {
            f"seconds_{name}": t_c,
            f"gflops_{name}": gf / t_c,
            f"ferr_{name}": ferr_c,
            f"orth_{name}": oerr_c,
        }
    del cplan, fc, Qc

    results: dict[str, dict] = {}
    for op, run in [
        ("caqr", lambda b: caqr(A, policy=path_policy("batched" if b else "seed"))),
        ("tsqr", lambda b: tsqr(A, policy=path_policy("batched" if b else "seed"))),
    ]:
        t_batched = time_best(lambda: run(True), reps)
        t_seed = time_best(lambda: run(False), reps)
        fb = run(True)
        fr = run(False)
        ferr_b, oerr_b = residuals(A, fb)
        ferr_r, oerr_r = residuals(A, fr)
        results[op] = {
            "seconds_batched": t_batched,
            "seconds_seed": t_seed,
            "gflops_batched": gf / t_batched,
            "gflops_seed": gf / t_seed,
            "speedup": t_seed / t_batched,
            "ferr_batched": ferr_b,
            "ferr_seed": ferr_r,
            "orth_batched": oerr_b,
            "orth_seed": oerr_r,
            "max_residual_gap": max(abs(ferr_b - ferr_r), abs(oerr_b - oerr_r)),
        }

    # Look-ahead executor (repro.graph) over the same batched kernels.
    la_policy = path_policy("lookahead")
    run_la = lambda: caqr(A, policy=la_policy)  # noqa: E731
    t_la = time_best(run_la, reps)
    fl = run_la()
    ferr_l, oerr_l = residuals(A, fl)
    results["caqr"].update(
        {
            "seconds_lookahead": t_la,
            "gflops_lookahead": gf / t_la,
            "speedup_lookahead": results["caqr"]["seconds_batched"] / t_la,
            "ferr_lookahead": ferr_l,
            "orth_lookahead": oerr_l,
            "lookahead_residual_gap": max(
                abs(ferr_l - results["caqr"]["ferr_batched"]),
                abs(oerr_l - results["caqr"]["orth_batched"]),
            ),
        }
    )

    # Amortized regime: one plan_qr() per shape, then repeated factor()
    # calls (validation + geometry + the look-ahead schedule paid once).
    plan = plan_qr(m, n, dtype=A.dtype, policy=la_policy)
    t_plan = time_best(lambda: plan.factor(A), reps)
    fp = plan.factor(A)
    ferr_p, oerr_p = residuals(A, fp)
    results["caqr"].update(
        {
            "seconds_plan_reuse": t_plan,
            "gflops_plan_reuse": gf / t_plan,
            "plan_reuse_speedup": results["caqr"]["seconds_batched"] / t_plan,
            "plan_reuse_vs_lookahead": t_la / t_plan,
            "plan_residual_gap": max(abs(ferr_p - ferr_l), abs(oerr_p - oerr_l)),
        }
    )

    # Attach the early CholeskyQR2 measurements plus their ratios against
    # the (now-timed) look-ahead tree.  The Gaussian bench matrix is
    # well-conditioned, so the auto path stayed on the cheap path — its
    # time over plain cholqr2 *is* the guard overhead.
    for name, row in cholqr_rows.items():
        results["caqr"].update(row)
        results["caqr"][f"{name}_vs_lookahead"] = t_la / t_cholqr[name]
    results["caqr"]["auto_guard_overhead"] = t_cholqr["auto"] / t_cholqr["cholqr2"]

    count, digest = launch_fingerprint(m, n, br, pw)
    return {
        "m": m,
        "n": n,
        "block_rows": br,
        "panel_width": pw,
        "qr_gflop": gf,
        "launches": count,
        "launch_stream_sha256_16": digest,
        **{f"{op}_{k}": v for op, res in results.items() for k, v in res.items()},
    }


def write_bench_trace(m: int, n: int, br: int, pw: int, path: Path) -> None:
    """Capture one traced look-ahead ``plan.factor`` and export it.

    Runs outside the timed loops — tracing stays disabled for every
    measurement this benchmark reports.
    """
    from repro import obs

    policy = ExecutionPolicy(path="lookahead", block_rows=br, panel_width=pw)
    A = np.random.default_rng(7).standard_normal((m, n))
    with obs.capture(meta={"shape": f"{m}x{n}", "bench": "bench_realtime"}) as session:
        plan = plan_qr(m, n, dtype=A.dtype, policy=policy)
        plan.factor(A)
    path.parent.mkdir(parents=True, exist_ok=True)
    obs.write_chrome_trace(session.trace, path)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small shapes, 1 rep (CI smoke)")
    ap.add_argument("--reps", type=int, default=3, help="timed repetitions (best-of)")
    ap.add_argument(
        "--check-lookahead",
        action="store_true",
        help="perf smoke: one mid-size shape, fail if the look-ahead "
        "executor is slower than the serial batched path",
    )
    ap.add_argument(
        "--check-cholqr2",
        action="store_true",
        help="perf smoke: one mid-size shape, fail if the CholeskyQR2 "
        "fast path is not at least 2x the look-ahead tree or loses "
        "machine-precision orthogonality",
    )
    ap.add_argument(
        "--check-plan-reuse",
        action="store_true",
        help="perf smoke: one mid-size shape, fail if repeated "
        "plan.factor() is not at least as fast as per-call entry points",
    )
    ap.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON (default: BENCH_caqr.json at the repo root; "
        "--quick writes nothing unless --out is given)",
    )
    ap.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="also capture one traced plan.factor() per shape and write "
        "the Chrome trace_event JSON here (one file, last shape wins "
        "unless the name contains '{shape}')",
    )
    args = ap.parse_args(argv)

    check_mode = args.check_lookahead or args.check_plan_reuse or args.check_cholqr2
    if check_mode:
        shapes = CHECK_SHAPES
        reps = max(1, args.reps)
    elif args.quick:
        shapes, reps = QUICK_SHAPES, 1
    else:
        shapes, reps = FULL_SHAPES, max(1, args.reps)
    out = args.out
    if out is None and not (args.quick or check_mode):
        out = REPO_ROOT / "BENCH_caqr.json"

    rows = []
    for m, n, br, pw in shapes:
        r = bench_shape(m, n, br, pw, reps)
        rows.append(r)
        if args.trace_out is not None:
            path = Path(str(args.trace_out).replace("{shape}", f"{m}x{n}"))
            write_bench_trace(m, n, br, pw, path)
            print(f"wrote trace {path}")
        print(
            f"{m}x{n} (br={br}, pw={pw}): "
            f"caqr {r['caqr_seconds_batched']:.3f}s batched vs "
            f"{r['caqr_seconds_seed']:.3f}s seed -> {r['caqr_speedup']:.2f}x  "
            f"({r['caqr_gflops_batched']:.2f} GFLOP/s), "
            f"lookahead {r['caqr_seconds_lookahead']:.3f}s "
            f"({r['caqr_speedup_lookahead']:.2f}x vs batched), "
            f"plan reuse {r['caqr_seconds_plan_reuse']:.3f}s "
            f"({r['caqr_plan_reuse_speedup']:.2f}x vs batched), "
            f"cholqr2 {r['caqr_seconds_cholqr2']:.3f}s "
            f"({r['caqr_cholqr2_vs_lookahead']:.2f}x vs lookahead, "
            f"orth {r['caqr_orth_cholqr2']:.1e}; "
            f"mixed {r['caqr_seconds_cholqr2_mixed']:.3f}s, "
            f"auto guard {r['caqr_auto_guard_overhead']:.2f}x), "
            f"tsqr {r['tsqr_speedup']:.2f}x, "
            f"residual gap {r['caqr_max_residual_gap']:.2e}, "
            f"{r['launches']} launches [{r['launch_stream_sha256_16']}]"
        )
        assert r["caqr_max_residual_gap"] < 1e-12, "execution paths diverged"
        assert r["tsqr_max_residual_gap"] < 1e-12, "execution paths diverged"
        assert r["caqr_lookahead_residual_gap"] < 1e-14, "look-ahead path diverged"
        assert r["caqr_plan_residual_gap"] == 0.0, "plan path diverged from one-shot"
        if args.check_lookahead and r["caqr_speedup_lookahead"] < 1.0:
            print(
                f"FAIL: look-ahead CAQR slower than serial batched "
                f"({r['caqr_seconds_lookahead']:.3f}s vs "
                f"{r['caqr_seconds_batched']:.3f}s)"
            )
            return 1
        if args.check_cholqr2:
            for suffix in ("cholqr2", "cholqr2_mixed", "auto"):
                if r[f"caqr_orth_{suffix}"] >= 1e-14:
                    print(
                        f"FAIL: {suffix} orthogonality "
                        f"{r[f'caqr_orth_{suffix}']:.2e} >= 1e-14"
                    )
                    return 1
            if r["caqr_cholqr2_vs_lookahead"] < 2.0:
                print(
                    f"FAIL: cholqr2 only {r['caqr_cholqr2_vs_lookahead']:.2f}x "
                    f"the look-ahead tree (< 2.0x): "
                    f"{r['caqr_seconds_cholqr2']:.3f}s vs "
                    f"{r['caqr_seconds_lookahead']:.3f}s"
                )
                return 1
        if args.check_plan_reuse:
            # Reused plans skip planning + schedule construction, so a
            # warm factor() must not lose to the one-shot entry points
            # (15% head-room absorbs single-process timing noise).
            if r["caqr_seconds_plan_reuse"] > 1.15 * r["caqr_seconds_lookahead"]:
                print(
                    f"FAIL: plan.factor() slower than one-shot look-ahead "
                    f"({r['caqr_seconds_plan_reuse']:.3f}s vs "
                    f"{r['caqr_seconds_lookahead']:.3f}s)"
                )
                return 1
            if r["caqr_plan_reuse_speedup"] < 1.0:
                print(
                    f"FAIL: plan.factor() slower than serial batched "
                    f"({r['caqr_seconds_plan_reuse']:.3f}s vs "
                    f"{r['caqr_seconds_batched']:.3f}s)"
                )
                return 1

    if out is not None:
        payload = {
            "protocol": f"min of {reps} after 1 warmup, single process",
            "shapes": rows,
        }
        out.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
