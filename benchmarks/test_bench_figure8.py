"""Benchmark: Figure 8 speedup grid and the crossover frontier."""

from __future__ import annotations

from repro.experiments import figure8


def test_bench_figure8_grid(benchmark, archive):
    result = benchmark(figure8.run)
    archive("figure8", figure8.format_results(result))
    s = result.max_speedups()
    assert s["vs_magma"] > 8.0 and s["vs_mkl"] > 8.0
    frontier = result.crossover_frontier()
    assert frontier[8192] is not None
