#!/usr/bin/env python
"""Serving-throughput benchmark: coalesced QRServer vs per-request dispatch.

The paper amortizes per-launch overhead by batching many small
factorizations into few BLAS3 calls; :mod:`repro.serving` applies the
same move to independent *requests*.  This benchmark measures that win
on the host wall clock:

* **saturation throughput** of the bare dispatcher (one ``qr()`` per
  request) and of the coalescing server (same-shape windows stacked into
  single batched invocations) — the ratio is the headline
  ``serving_coalesce_speedup``;
* **open-loop latency** of the coalesced server at a fixed offered rate
  (chosen above the per-request ceiling, below the coalesced one), whose
  p50/p95/p99 are committed and gated in CI;
* **bit-identity**: every result that came back through the server is
  compared ``array_equal`` against ``QRDispatcher.qr`` on the same
  matrix — speed that changes the numbers does not count.

Rows land under a ``"serving"`` key: the full run updates
``BENCH_caqr.json`` in place (the CAQR shape grid is untouched), the
quick run writes ``benchmarks/results/BENCH_serving_quick.json`` when
``--out`` is given.  ``tools/check_bench.py --serving`` re-measures and
diffs against those baselines.

Usage::

    python benchmarks/bench_serving.py                # full -> BENCH_caqr.json
    python benchmarks/bench_serving.py --quick        # CI smoke (no write)
    python benchmarks/bench_serving.py --check        # assert the speedup floor
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # self-locating: only extend sys.path when repro is not installed
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dispatch import QRDispatcher  # noqa: E402
from repro.serving import QRServer, format_report, run_load  # noqa: E402

# The acceptance shape: many concurrent small same-shape problems.
M, N = 256, 32
# Offered rate for the open-loop latency run: comfortably above the
# per-request ceiling (~700-900 req/s on the baseline host) and below
# the coalesced one (~4000+), so the latency percentiles show a stable
# queue that only coalescing can sustain.
OPEN_LOOP_RATE = 1500.0
FULL_REQUESTS = 768
QUICK_REQUESTS = 256


def check_bit_identity(count: int = 24, seed: int = 3) -> int:
    """Server results must equal ``QRDispatcher.qr`` bit for bit."""
    rng = np.random.default_rng(seed)
    mats = [rng.standard_normal((M, N)) for _ in range(count)]
    reference = QRDispatcher()
    expected = [reference.qr(A) for A in mats]
    with QRServer() as server:
        futures = [server.submit(A) for A in mats]
        results = [f.result() for f in futures]
    mismatches = 0
    for exp, got in zip(expected, results):
        if not (
            np.array_equal(exp.Q, got.Q) and np.array_equal(exp.R, got.R)
        ):
            mismatches += 1
    return mismatches


def bench_serving(
    m: int = M,
    n: int = N,
    requests: int = FULL_REQUESTS,
    rate: float = OPEN_LOOP_RATE,
    reps: int = 2,
) -> dict:
    """One serving row: both saturation ceilings plus open-loop latency.

    Saturation runs are best-of-``reps`` (the single-core load runs are
    long enough to be stable individually, but allocator and page-cache
    state between runs is not; best-of is the same noise discipline as
    ``bench_realtime.time_best``).
    """
    dispatcher = QRDispatcher()
    per_request = max(
        (
            run_load(dispatcher, mode="per-request", m=m, n=n, requests=requests)
            for _ in range(reps)
        ),
        key=lambda rep: rep.qps,
    )
    with QRServer() as server:
        run_load(server, mode="coalesced", m=m, n=n, requests=requests // 4)
        coalesced = max(
            (
                run_load(server, mode="coalesced", m=m, n=n, requests=requests)
                for _ in range(reps)
            ),
            key=lambda rep: rep.qps,
        )
    with QRServer() as server:
        open_loop = run_load(
            server, mode="coalesced", m=m, n=n, requests=requests, rate=rate
        )
    for rep in (per_request, coalesced, open_loop):
        print(format_report(rep))
    return {
        "m": m,
        "n": n,
        "requests": requests,
        "open_loop_rate": rate,
        "serving_qps_per_request": per_request.qps,
        "serving_qps_coalesced": coalesced.qps,
        "serving_coalesce_speedup": coalesced.qps / per_request.qps,
        "serving_p50_ms": open_loop.p50_ms,
        "serving_p95_ms": open_loop.p95_ms,
        "serving_p99_ms": open_loop.p99_ms,
        "serving_errors": per_request.errors + coalesced.errors + open_loop.errors,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: {QUICK_REQUESTS} requests instead of {FULL_REQUESTS}",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="fail unless the coalesced/per-request speedup clears the "
        "floor (5x full, 2x quick — the quick floor is a does-coalescing-"
        "work-at-all smoke that absorbs shared-runner noise; the "
        "committed-baseline diff in check_bench.py gates tighter)",
    )
    ap.add_argument(
        "--out", type=Path, default=None,
        help="output JSON (default: update BENCH_caqr.json in place; "
        "--quick writes nothing unless --out is given)",
    )
    args = ap.parse_args(argv)

    mismatches = check_bit_identity()
    if mismatches:
        print(f"FAIL: {mismatches} server results differ from QRDispatcher.qr")
        return 1
    print("bit-identity: ok (server == QRDispatcher.qr on every request)\n")

    requests = QUICK_REQUESTS if args.quick else FULL_REQUESTS
    row = bench_serving(requests=requests)
    print(
        f"\n{row['m']}x{row['n']}: per-request {row['serving_qps_per_request']:.0f} req/s, "
        f"coalesced {row['serving_qps_coalesced']:.0f} req/s -> "
        f"{row['serving_coalesce_speedup']:.2f}x; open loop @"
        f"{row['open_loop_rate']:.0f}/s p99 {row['serving_p99_ms']:.2f} ms"
    )

    if row["serving_errors"]:
        print(f"FAIL: {row['serving_errors']} request(s) errored under load")
        return 1
    if args.check:
        floor = 2.0 if args.quick else 5.0
        if row["serving_coalesce_speedup"] < floor:
            print(
                f"FAIL: coalesce speedup {row['serving_coalesce_speedup']:.2f}x "
                f"below the {floor:.1f}x floor"
            )
            return 1
        print(f"coalesce speedup clears the {floor:.1f}x floor")

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "BENCH_caqr.json"
    if out is not None:
        if out.exists():  # merge: the CAQR shape grid stays untouched
            payload = json.loads(out.read_text())
        else:
            payload = {"protocol": "single load run after warmup, single process"}
        payload["serving"] = [row]
        out.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
