"""Observability overhead budget: disabled tracing must stay under 2%.

The tracer's instrumentation sites live permanently inside the hot
loops (``span()`` / ``counters()`` in the panel loop, the apply kernels,
the guard layer), so the disabled fast path carries a pinned budget:
across the quick bench shape, the *total* cost of every instrumentation
call a factorization makes must be below 2% of that factorization's
wall time.

The budget is asserted from first principles — (sites hit per call) x
(measured cost of one disabled call) vs the measured factorization time
— rather than by differencing two noisy end-to-end timings, so the test
is stable on shared CI runners while still failing if someone makes the
disabled path allocate, read a clock, or take a lock.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.core.caqr import caqr
from repro.runtime import ExecutionPolicy

# The quick bench shape (benchmarks/bench_realtime.py QUICK_SHAPES).
M, N, BR, PW = 4096, 32, 64, 16
BUDGET = 0.02


def _policy(path: str, **kw) -> ExecutionPolicy:
    return ExecutionPolicy(path=path, block_rows=BR, panel_width=PW, **kw)


def _disabled_site_cost(calls: int = 50_000) -> float:
    """Seconds per disabled span() call site (enter + exit included)."""
    assert not obs.enabled()
    t0 = time.perf_counter()
    for _ in range(calls):
        with obs.span("probe", cat="x"):
            pass
    return (time.perf_counter() - t0) / calls


def _sites_per_call(A: np.ndarray, policy: ExecutionPolicy) -> int:
    """Instrumentation sites one factorization executes (span + counters)."""
    with obs.capture() as session:
        caqr(A, policy=policy)
    trace = session.trace
    total_counter_keys = sum(len(s.counters) for s in trace.spans)
    return len(trace.spans) + total_counter_keys


def _best_time(fn, reps: int = 3) -> float:
    fn()
    return min(
        (lambda t0: (fn(), time.perf_counter() - t0)[1])(time.perf_counter())
        for _ in range(reps)
    )


def test_disabled_tracing_overhead_under_budget(archive):
    rng = np.random.default_rng(7)
    A = rng.standard_normal((M, N))
    site_cost = _disabled_site_cost()
    lines = [f"disabled-tracer overhead budget ({M}x{N}, {BUDGET:.0%} cap)"]
    lines.append(f"  per-site disabled cost: {site_cost * 1e9:8.1f} ns")
    for path, kw in [("batched", {}), ("lookahead", {"workers": 3})]:
        policy = _policy(path, **kw)
        sites = _sites_per_call(A, policy)
        assert not obs.enabled()
        seconds = _best_time(lambda: caqr(A, policy=policy))
        overhead = sites * site_cost
        share = overhead / seconds
        lines.append(
            f"  {path:<10} {sites:5d} sites x {site_cost * 1e9:6.1f} ns "
            f"= {overhead * 1e6:8.1f} us over {seconds * 1e3:8.2f} ms "
            f"-> {share:.3%}"
        )
        assert share < BUDGET, (
            f"{path}: disabled instrumentation costs {share:.2%} of a "
            f"{seconds * 1e3:.1f} ms factorization (budget {BUDGET:.0%})"
        )
    archive("bench_obs_overhead", "\n".join(lines))


def test_enabled_tracing_overhead_is_bounded():
    """Tracing *enabled* is allowed to cost something, but capturing a
    quick-shape factorization must stay within 2x of the untraced run —
    the 'low-overhead' half of the tracer's contract."""
    rng = np.random.default_rng(7)
    A = rng.standard_normal((M, N))
    policy = _policy("batched")
    plain = _best_time(lambda: caqr(A, policy=policy), reps=5)

    def traced():
        with obs.capture():
            caqr(A, policy=policy)

    captured = _best_time(traced, reps=5)
    assert captured < 2.0 * plain + 0.005, (
        f"enabled tracing: {captured * 1e3:.2f} ms vs {plain * 1e3:.2f} ms untraced"
    )
