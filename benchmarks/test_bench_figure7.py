"""Benchmark: Figure 7 block-size sweep and the autotuned optimum."""

from __future__ import annotations

from repro.experiments import figure7


def test_bench_figure7_sweep(benchmark, archive):
    result = benchmark(figure7.run)
    archive("figure7", figure7.format_results(result, top=20))
    e = result.entry(128, 16)
    assert e is not None and e.gflops >= 0.95 * result.best.gflops
