"""Benchmarks: ablations of the DESIGN.md-called-out design decisions."""

from __future__ import annotations

from repro.experiments import ablations


def test_bench_tree_shape(benchmark, archive):
    rows = benchmark(ablations.tree_shape_ablation)
    archive("ablation_tree_shape", ablations.format_rows(rows, "Ablation: reduction-tree arity (500k x 192)"))
    assert all(r.gflops > 0 for r in rows)


def test_bench_transpose(benchmark, archive):
    rows = benchmark(ablations.transpose_ablation)
    archive("ablation_transpose", ablations.format_rows(rows, "Ablation: transpose preprocessing (500k x 192)"))
    on, off = rows
    assert on.gflops > off.gflops


def test_bench_panel_width(benchmark, archive):
    rows = benchmark(ablations.panel_width_ablation)
    archive("ablation_panel_width", ablations.format_rows(rows, "Ablation: panel width (500k x 192)"))
    assert len(rows) == 3


def test_bench_strategy_in_caqr(benchmark, archive):
    rows = benchmark(ablations.strategy_ablation)
    archive("ablation_strategy", ablations.format_rows(rows, "Ablation: reduction strategy inside full CAQR (500k x 192)"))
    by = {r.label.split()[-1]: r.gflops for r in rows}
    assert by["regfile_transpose"] == max(by.values())


def test_bench_hybrid_vs_gpu_only(benchmark, archive):
    rows = benchmark(ablations.hybrid_panel_ablation)
    archive(
        "ablation_hybrid",
        ablations.format_rows(rows, "Ablation: GPU-only vs CPU-panel hybrid (Section III options)"),
    )
    gpu_only = [r for r in rows if r.label.startswith("GPU-only")]
    hybrid = [r for r in rows if r.label.startswith("hybrid")]
    for g, h in zip(gpu_only, hybrid):
        assert g.gflops > h.gflops
