"""Benchmark: Table I — very tall-skinny SGEQRF (1k..1M x 192)."""

from __future__ import annotations

from repro.experiments import table1


def test_bench_table1(benchmark, archive):
    rows = benchmark(table1.run)
    archive("table1", table1.format_results(rows))
    last = next(r for r in rows if r.height == 1_000_000)
    assert last.caqr / last.magma > 10.0  # paper: up to 17x vs GPU libraries
    for r in rows:
        paper = table1.PAPER_TABLE1[r.height]
        assert 0.6 * paper[0] <= r.caqr <= 1.4 * paper[0]
