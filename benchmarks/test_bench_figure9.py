"""Benchmark: Figure 9 — GFLOPS vs width at height 8192, crossover ~4000."""

from __future__ import annotations

from repro.experiments import figure9


def test_bench_figure9_width_sweep(benchmark, archive):
    result = benchmark(figure9.run)
    archive("figure9", figure9.format_results(result))
    x = result.crossover_width()
    assert x is not None and 2500 <= x <= 6000
