"""Benchmark: Table II — Robust PCA iterations/second on the video matrix."""

from __future__ import annotations

from repro.experiments import table2


def test_bench_table2(benchmark, archive):
    rows = benchmark(table2.run)
    archive("table2", table2.format_results(rows))
    s = table2.speedups(rows)
    assert 2.0 <= s["caqr_vs_blas2"] <= 4.5  # paper: ~3x
    assert 15.0 <= s["caqr_vs_mkl"] <= 45.0  # paper: ~30x
