"""Benchmark: structured vs dense stacked-triangle elimination ablation."""

from __future__ import annotations

from repro.caqr_gpu import simulate_caqr
from repro.kernels.config import REFERENCE_CONFIG


def run_pair(m=500_000, n=192):
    dense = simulate_caqr(m, n)
    struct = simulate_caqr(m, n, REFERENCE_CONFIG.with_(structured_tree=True))
    return dense, struct


def test_bench_structured_tree(benchmark, archive):
    dense, struct = benchmark(run_pair)
    lines = [
        "Ablation: dense vs structured tree elimination (500k x 192)",
        f"  dense      : {dense.gflops:7.1f} GFLOPS ({dense.seconds * 1e3:7.1f} ms)",
        f"  structured : {struct.gflops:7.1f} GFLOPS ({struct.seconds * 1e3:7.1f} ms)",
        f"  tree-kernel time: {sum(v for k, v in dense.breakdown().items() if 'tree' in k) * 1e3:.1f}"
        f" -> {sum(v for k, v in struct.breakdown().items() if 'tree' in k) * 1e3:.1f} ms",
    ]
    archive("ablation_structured_tree", "\n".join(lines))
    assert struct.seconds < dense.seconds
