"""Benchmarks: hardware-sensitivity sweeps of the performance model."""

from __future__ import annotations

from repro.experiments import sensitivity


def test_bench_dram_bandwidth(benchmark, archive):
    rows = benchmark(sensitivity.dram_bandwidth_sweep)
    archive("sensitivity_dram_bw", sensitivity.format_sweep(rows, "DRAM bandwidth scale (500k x 192)"))
    g = {r.value: r for r in rows}
    assert g[2.0].caqr_gflops / g[1.0].caqr_gflops < 1.10  # compute-bound
    assert g[2.0].baseline_gflops / g[1.0].baseline_gflops > 1.8  # bw-bound


def test_bench_pcie_latency(benchmark, archive):
    rows = benchmark(sensitivity.pcie_latency_sweep)
    archive("sensitivity_pcie", sensitivity.format_sweep(rows, "PCIe latency (1k x 192)"))
    assert rows[-1].baseline_gflops < rows[0].baseline_gflops


def test_bench_launch_overhead(benchmark, archive):
    rows = benchmark(sensitivity.launch_overhead_sweep)
    archive("sensitivity_launch", sensitivity.format_sweep(rows, "Kernel launch overhead (1k vs 1M x 192)"))
    assert rows[-1].caqr_gflops < rows[0].caqr_gflops
