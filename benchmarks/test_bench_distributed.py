"""Benchmark: distributed TSQR vs Householder communication study."""

from __future__ import annotations

from repro.experiments import distributed_study


def test_bench_distributed(benchmark, archive):
    rows = benchmark(distributed_study.run)
    archive("distributed", distributed_study.format_results(rows))
    for r in rows:
        assert r.hh_messages == 2 * r.n * r.tsqr_messages
        assert min(r.network_speedups.values()) > 10.0
