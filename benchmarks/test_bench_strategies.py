"""Benchmark: Section IV-E strategy table (55/168/194/388 GFLOPS).

Regenerates the kernel-tuning narrative: the four reduction strategies of
the matvec + rank-1 core on 128x16 blocks, against the paper's reported
numbers.
"""

from __future__ import annotations

from repro.experiments import strategies_table


def test_bench_strategies_table(benchmark, archive):
    rows = benchmark(strategies_table.run)
    archive("strategies_table", strategies_table.format_results(rows))
    vals = [r.model_gflops for r in rows]
    assert vals == sorted(vals)
    for r in rows:
        assert 0.7 <= r.ratio <= 1.3
