"""Benchmark: batched small-QR kernels vs the scalar loop.

The Section-I observation made quantitative on the host: thousands of
small QRs batched (vectorized across the batch axis) vs looped.
"""

from __future__ import annotations

import numpy as np

from repro.core.householder import geqr2
from repro.smallblas import batched_geqr2


def looped_geqr2(stack):
    return [geqr2(stack[i]) for i in range(stack.shape[0])]


def test_bench_batched_geqr2(benchmark):
    stack = np.random.default_rng(0).standard_normal((200, 64, 16))
    VR, tau = benchmark(batched_geqr2, stack)
    assert tau.shape == (200, 16)


def test_bench_looped_geqr2(benchmark):
    stack = np.random.default_rng(0).standard_normal((200, 64, 16))
    out = benchmark(looped_geqr2, stack)
    assert len(out) == 200
