"""Shim for legacy editable installs in offline environments without `wheel`.

All real metadata lives in pyproject.toml; `pip install -e . --no-use-pep517
--no-build-isolation` (or a plain modern `pip install -e .` when wheel is
available) both work.
"""
from setuptools import setup

setup()
