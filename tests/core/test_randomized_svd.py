"""Tests of the randomized partial SVD (TSQR range finder)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.randomized_svd import randomized_range_finder, randomized_svd


def low_rank(rng, m, n, r, noise=0.0):
    A = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    if noise:
        A = A + noise * rng.standard_normal((m, n))
    return A


class TestRangeFinder:
    def test_orthonormal(self, rng):
        A = low_rank(rng, 400, 40, 5)
        Q = randomized_range_finder(A, k=5)
        assert np.allclose(Q.T @ Q, np.eye(Q.shape[1]), atol=1e-10)

    def test_captures_range_exactly_low_rank(self, rng):
        A = low_rank(rng, 500, 30, 4)
        Q = randomized_range_finder(A, k=4)
        # Projection must reproduce A.
        assert np.linalg.norm(A - Q @ (Q.T @ A)) < 1e-9 * np.linalg.norm(A)

    def test_oversampling_helps_noisy(self, rng):
        A = low_rank(rng, 600, 50, 6, noise=0.01)
        err = []
        for p in (0, 10):
            Q = randomized_range_finder(A, k=6, oversample=max(p, 1), power_iters=0, rng=np.random.default_rng(1))
            err.append(np.linalg.norm(A - Q @ (Q.T @ A)))
        assert err[1] <= err[0] * 1.05

    def test_bad_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            randomized_range_finder(rng.standard_normal((10, 5)), k=0)


class TestRandomizedSVD:
    def test_exact_on_low_rank(self, rng):
        A = low_rank(rng, 800, 60, 5)
        U, s, Vt = randomized_svd(A, k=5)
        assert np.linalg.norm((U * s) @ Vt - A) < 1e-8 * np.linalg.norm(A)
        s_true = np.linalg.svd(A, compute_uv=False)[:5]
        assert np.allclose(s, s_true, rtol=1e-8)

    def test_truncates_to_k(self, rng):
        A = rng.standard_normal((100, 20))
        U, s, Vt = randomized_svd(A, k=7)
        assert U.shape == (100, 7) and s.shape == (7,) and Vt.shape == (7, 20)

    def test_factors_orthonormal(self, rng):
        A = low_rank(rng, 300, 25, 6, noise=0.001)
        U, s, Vt = randomized_svd(A, k=6)
        assert np.allclose(U.T @ U, np.eye(6), atol=1e-9)
        assert np.allclose(Vt @ Vt.T, np.eye(6), atol=1e-9)

    def test_wide_matrix(self, rng):
        A = low_rank(rng, 30, 500, 4)
        U, s, Vt = randomized_svd(A, k=4)
        assert U.shape == (30, 4) and Vt.shape == (4, 500)
        assert np.linalg.norm((U * s) @ Vt - A) < 1e-8 * np.linalg.norm(A)

    def test_power_iterations_sharpen_spectrum(self, rng):
        # Slowly decaying spectrum: power iterations improve accuracy.
        U0, _ = np.linalg.qr(rng.standard_normal((400, 50)))
        V0, _ = np.linalg.qr(rng.standard_normal((50, 50)))
        s_full = np.linspace(1.0, 0.2, 50)
        A = (U0 * s_full) @ V0.T
        s_true = s_full[:5]
        errs = []
        for q in (0, 3):
            _, s, _ = randomized_svd(A, k=5, oversample=2, power_iters=q, rng=np.random.default_rng(2))
            errs.append(np.abs(s - s_true).max())
        assert errs[1] <= errs[0]

    def test_deterministic_with_rng(self, rng):
        A = low_rank(rng, 200, 30, 3, noise=0.01)
        out1 = randomized_svd(A, k=3, rng=np.random.default_rng(5))
        out2 = randomized_svd(A, k=3, rng=np.random.default_rng(5))
        assert np.array_equal(out1[1], out2[1])
