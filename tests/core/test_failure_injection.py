"""Failure-injection tests: non-finite data, degenerate shapes, misuse.

The default guard policy (:mod:`repro.verify.guards`) rejects non-finite
inputs with ``ValueError`` at every public entry point.  With
``nonfinite="propagate"`` the library follows LAPACK's contract instead:
non-finite inputs propagate (garbage in, NaN out) rather than hang or
silently produce plausible numbers, and the validation metrics must then
flag the result.  These tests pin both behaviors, plus the explicit
errors for misuse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocked import blocked_qr
from repro.core.caqr import caqr_qr
from repro.core.jacobi_svd import jacobi_svd
from repro.core.streaming import StreamingTSQR
from repro.core.tsqr import tsqr_qr
from repro.core.validation import is_factorization_accurate
from repro.rpca import rpca_ialm


@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # NaN arithmetic is the point
class TestNonFinitePropagation:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("qr", [tsqr_qr, caqr_qr, blocked_qr])
    def test_qr_rejects_nonfinite_by_default(self, rng, qr, bad):
        A = rng.standard_normal((64, 8))
        A[17, 3] = bad
        with pytest.raises(ValueError, match="non-finite"):
            qr(A)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("qr", [tsqr_qr, caqr_qr, blocked_qr])
    def test_qr_propagates_and_validation_flags(self, rng, qr, bad):
        A = rng.standard_normal((64, 8))
        A[17, 3] = bad
        Q, R = qr(A, nonfinite="propagate")
        assert not np.all(np.isfinite(Q)) or not np.all(np.isfinite(R))
        assert not is_factorization_accurate(A, Q, R)

    def test_finite_part_unaffected_before_contamination(self, rng):
        """Columns left of a NaN column factor normally (column order)."""
        A = rng.standard_normal((40, 6))
        A[5, 4] = np.nan
        Q, R = blocked_qr(A, nb=2, nonfinite="propagate")
        # Leading 4x4 triangle involves only clean columns.
        R_clean = np.triu(np.linalg.qr(A[:, :4], mode="r"))
        assert np.allclose(np.abs(np.diag(R[:4, :4])), np.abs(np.diag(R_clean)), atol=1e-10)

    def test_jacobi_svd_rejects_nonfinite(self, rng):
        A = rng.standard_normal((20, 5))
        A[0, 0] = np.nan
        with pytest.raises(ValueError):
            jacobi_svd(A, max_sweeps=5)

    def test_rpca_nonfinite_input_does_not_hang(self, rng):
        M = rng.standard_normal((30, 10))
        M[2, 2] = np.inf
        with pytest.raises(ValueError):
            rpca_ialm(M, max_iter=3)


class TestDegenerateShapes:
    def test_1x1(self):
        Q, R = tsqr_qr(np.array([[3.0]]))
        assert Q.shape == (1, 1) and abs(abs(R[0, 0]) - 3.0) < 1e-15

    def test_single_row(self):
        A = np.array([[1.0, 2.0, 3.0]])
        Q, R = caqr_qr(A, panel_width=2, block_rows=4)
        assert Q.shape == (1, 1)
        assert np.allclose(np.abs(Q @ R), np.abs(A))

    def test_all_zero_matrix(self):
        A = np.zeros((50, 6))
        Q, R = tsqr_qr(A)
        assert np.allclose(R, 0.0)
        assert np.allclose(Q.T @ Q, np.eye(6), atol=1e-12)  # Q still orthonormal

    def test_constant_columns(self, rng):
        A = np.ones((30, 4))
        Q, R = tsqr_qr(A, block_rows=8)
        assert abs(abs(R[0, 0]) - np.sqrt(30)) < 1e-9  # ||column of ones||
        assert np.abs(np.diag(R)[1:]).max() < 1e-12

    def test_huge_and_tiny_scales(self, rng):
        for scale in (1e150, 1e-150):
            A = scale * rng.standard_normal((40, 5))
            Q, R = tsqr_qr(A)
            assert np.all(np.isfinite(Q))
            assert np.linalg.norm(A - Q @ R) < 1e-12 * np.linalg.norm(A)


class TestMisuse:
    def test_streaming_wrong_width_mid_stream(self, rng):
        stq = StreamingTSQR(n_cols=4)
        stq.push(rng.standard_normal((10, 4)))
        with pytest.raises(ValueError):
            stq.push(rng.standard_normal((10, 5)))
        # The stream state is unchanged by the failed push.
        assert stq.m == 10

    def test_simulator_rejects_nonsense(self):
        from repro.caqr_gpu import simulate_caqr
        from repro.kernels.config import KernelConfig

        with pytest.raises(ValueError):
            simulate_caqr(-5, 10)
        with pytest.raises(ValueError):
            KernelConfig(block_rows=16, panel_width=32)

    def test_device_perturbation_cannot_mutate_preset(self):
        from repro.gpusim.device import C2050

        with pytest.raises(Exception):
            C2050.dram_bw_gbs = 1.0
