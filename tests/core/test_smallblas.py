"""Tests of the batched small-kernel library against the scalar kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.householder import geqr2, house, org2r, orm2r
from repro.smallblas import (
    batched_apply_q,
    batched_apply_qt,
    batched_form_q,
    batched_geqr2,
    batched_house,
)


class TestBatchedHouse:
    def test_matches_scalar(self, rng):
        X = rng.standard_normal((50, 9))
        V, tau, beta = batched_house(X)
        for i in range(50):
            v_s, t_s, b_s = house(X[i])
            assert np.allclose(V[i], v_s, atol=1e-13)
            assert tau[i] == pytest.approx(t_s)
            assert beta[i] == pytest.approx(b_s)

    def test_zero_vectors_identity(self):
        X = np.zeros((4, 6))
        V, tau, beta = batched_house(X)
        assert np.allclose(tau, 0.0)
        assert np.allclose(beta, 0.0)

    def test_mixed_zero_and_nonzero(self, rng):
        X = rng.standard_normal((6, 5))
        X[2] = 0.0
        X[4, 1:] = 0.0  # already reduced
        V, tau, beta = batched_house(X)
        assert tau[2] == 0.0
        assert tau[4] == 0.0
        assert beta[4] == pytest.approx(X[4, 0])
        for i in (0, 1, 3, 5):
            _, t_s, b_s = house(X[i])
            assert tau[i] == pytest.approx(t_s)

    def test_length_one(self, rng):
        X = rng.standard_normal((3, 1))
        V, tau, beta = batched_house(X)
        assert np.allclose(V, 1.0)
        assert np.allclose(tau, 0.0)
        assert np.allclose(beta, X[:, 0])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            batched_house(np.zeros((3, 0)))
        with pytest.raises(ValueError):
            batched_house(np.zeros(5))


class TestBatchedGeqr2:
    @pytest.mark.parametrize("b,m,n", [(10, 16, 4), (5, 64, 16), (3, 8, 8), (7, 4, 9)])
    def test_matches_scalar(self, rng, b, m, n):
        A = rng.standard_normal((b, m, n))
        VRb, taub = batched_geqr2(A)
        for i in range(b):
            VR, tau = geqr2(A[i])
            assert np.allclose(VRb[i], VR, atol=1e-12)
            assert np.allclose(taub[i], tau, atol=1e-12)

    def test_input_unmodified(self, rng):
        A = rng.standard_normal((4, 10, 3))
        A0 = A.copy()
        batched_geqr2(A)
        assert np.array_equal(A, A0)

    def test_float32_preserved(self, rng):
        A = rng.standard_normal((4, 12, 4)).astype(np.float32)
        VR, tau = batched_geqr2(A)
        assert VR.dtype == np.float32 and tau.dtype == np.float32

    def test_batch_of_one(self, rng):
        A = rng.standard_normal((1, 20, 5))
        VR, tau = batched_geqr2(A)
        VR_s, tau_s = geqr2(A[0])
        assert np.allclose(VR[0], VR_s, atol=1e-13)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            batched_geqr2(rng.standard_normal((4, 4)))


class TestBatchedApply:
    def test_qt_matches_orm2r(self, rng):
        A = rng.standard_normal((8, 32, 8))
        VR, tau = batched_geqr2(A)
        C = rng.standard_normal((8, 32, 5))
        out = batched_apply_qt(VR, tau, C.copy())
        for i in range(8):
            ref = orm2r(VR[i], tau[i], C[i].copy(), transpose=True)
            assert np.allclose(out[i], ref, atol=1e-12)

    def test_q_qt_roundtrip(self, rng):
        A = rng.standard_normal((6, 24, 6))
        VR, tau = batched_geqr2(A)
        C = rng.standard_normal((6, 24, 3))
        out = batched_apply_q(VR, tau, batched_apply_qt(VR, tau, C.copy()))
        assert np.allclose(out, C, atol=1e-12)

    def test_applied_to_own_block_gives_r(self, rng):
        A = rng.standard_normal((5, 16, 4))
        VR, tau = batched_geqr2(A)
        out = batched_apply_qt(VR, tau, A.copy())
        for i in range(5):
            assert np.allclose(np.triu(out[i, :4]), np.triu(VR[i, :4]), atol=1e-12)
            assert np.linalg.norm(out[i, 4:]) < 1e-10

    def test_shape_mismatch_rejected(self, rng):
        A = rng.standard_normal((3, 10, 4))
        VR, tau = batched_geqr2(A)
        with pytest.raises(ValueError):
            batched_apply_qt(VR, tau, rng.standard_normal((3, 9, 2)))
        with pytest.raises(ValueError):
            batched_apply_qt(VR, tau, rng.standard_normal((2, 10, 2)))


class TestBatchedFormQ:
    def test_matches_org2r(self, rng):
        A = rng.standard_normal((6, 20, 7))
        VR, tau = batched_geqr2(A)
        Q = batched_form_q(VR, tau)
        for i in range(6):
            assert np.allclose(Q[i], org2r(VR[i], tau[i]), atol=1e-12)

    def test_orthonormal(self, rng):
        A = rng.standard_normal((4, 30, 5))
        VR, tau = batched_geqr2(A)
        Q = batched_form_q(VR, tau)
        eye = np.eye(5)
        for i in range(4):
            assert np.allclose(Q[i].T @ Q[i], eye, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    b=st.integers(1, 12),
    m=st.integers(1, 24),
    n=st.integers(1, 12),
    seed=st.integers(0, 2**31),
)
def test_property_batched_equals_scalar(b, m, n, seed):
    A = np.random.default_rng(seed).standard_normal((b, m, n))
    VRb, taub = batched_geqr2(A)
    for i in range(b):
        VR, tau = geqr2(A[i])
        assert np.allclose(VRb[i], VR, atol=1e-11)
        assert np.allclose(taub[i], tau, atol=1e-11)


class TestBatchedBlockedApply:
    def test_larft_matches_scalar(self, rng):
        from repro.core.blocked import larft
        from repro.core.householder import extract_v
        from repro.smallblas.batched import batched_larft

        A = rng.standard_normal((6, 20, 5))
        VR, tau = batched_geqr2(A)
        T = batched_larft(VR, tau)
        for i in range(6):
            T_ref = larft(extract_v(VR[i]), tau[i])
            assert np.allclose(T[i], T_ref, atol=1e-12)

    def test_blocked_apply_matches_reflector_loop(self, rng):
        from repro.smallblas.batched import batched_apply_blocked

        A = rng.standard_normal((8, 48, 12))
        VR, tau = batched_geqr2(A)
        C = rng.standard_normal((8, 48, 7))
        a = batched_apply_qt(VR, tau, C.copy())
        b = batched_apply_blocked(VR, tau, C.copy(), transpose=True)
        assert np.allclose(a, b, atol=1e-11)
        aq = batched_apply_q(VR, tau, C.copy())
        bq = batched_apply_blocked(VR, tau, C.copy(), transpose=False)
        assert np.allclose(aq, bq, atol=1e-11)

    def test_precomputed_t_reused(self, rng):
        from repro.smallblas.batched import batched_apply_blocked, batched_larft

        A = rng.standard_normal((4, 16, 4))
        VR, tau = batched_geqr2(A)
        T = batched_larft(VR, tau)
        C = rng.standard_normal((4, 16, 3))
        a = batched_apply_blocked(VR, tau, C.copy(), T=T)
        b = batched_apply_blocked(VR, tau, C.copy())
        assert np.allclose(a, b, atol=1e-13)

    def test_tsqr_uses_blocked_path_correctly(self, rng):
        """End-to-end: TSQR level-0 applies now go through compact-WY."""
        from repro.core.tsqr import tsqr_qr
        from repro.core.validation import factorization_error, orthogonality_error

        A = rng.standard_normal((1024, 24))
        Q, R = tsqr_qr(A, block_rows=128)
        assert factorization_error(A, Q, R) < 1e-13
        assert orthogonality_error(Q) < 1e-12


class TestCompactWY:
    """The GEMM-based compact-WY kernels against the einsum reference."""

    def test_extract_v_matches_reference(self, rng):
        from repro.smallblas.batched import _extract_v_batch
        from repro.smallblas.wy import extract_v

        for shape in [(4, 20, 6), (3, 5, 9), (2, 1, 3), (5, 7, 7)]:
            A = rng.standard_normal(shape)
            VR, _ = batched_geqr2(A)
            assert np.array_equal(extract_v(VR), _extract_v_batch(VR))

    def test_larft_matches_reference(self, rng):
        from repro.smallblas.batched import batched_larft
        from repro.smallblas.wy import extract_v, larft

        A = rng.standard_normal((6, 20, 5))
        VR, tau = batched_geqr2(A)
        assert np.allclose(
            larft(extract_v(VR), tau), batched_larft(VR, tau), atol=1e-12
        )

    def test_apply_wy_matches_reference_and_writes_in_place(self, rng):
        from repro.smallblas.batched import batched_apply_blocked
        from repro.smallblas.wy import apply_wy, wy_factors

        A = rng.standard_normal((8, 48, 12))
        VR, tau = batched_geqr2(A)
        V, T = wy_factors(VR, tau)
        C = rng.standard_normal((8, 48, 7))
        for transpose in (True, False):
            ref = batched_apply_blocked(VR, tau, C.copy(), transpose=transpose)
            got = C.copy()
            ret = apply_wy(V, T, got, transpose=transpose)
            assert ret is got  # in-place contract
            assert np.allclose(got, ref, atol=1e-11)

    def test_apply_wy_through_strided_view(self, rng):
        """The zero-copy reshape path: apply through a view of a 2-D matrix."""
        from repro.smallblas.batched import batched_apply_blocked
        from repro.smallblas.wy import apply_wy, wy_factors

        A = rng.standard_normal((6, 16, 4))
        VR, tau = batched_geqr2(A)
        V, T = wy_factors(VR, tau)
        B = rng.standard_normal((96, 5))
        tiles = B[:96].reshape(6, 16, 5)
        assert np.shares_memory(tiles, B)
        ref = batched_apply_blocked(VR, tau, np.ascontiguousarray(tiles))
        apply_wy(V, T, tiles)
        assert np.allclose(B.reshape(6, 16, 5), ref, atol=1e-11)

    def test_geqr2_blocked_matches_reference(self, rng):
        from repro.smallblas.wy import geqr2_blocked

        for shape, ib in [
            ((7, 20, 11), 4),
            ((3, 6, 10), 4),  # wide
            ((5, 64, 16), 8),
            ((1, 8, 8), 3),
            ((4, 1, 3), 2),  # single row
            ((2, 9, 1), 4),  # single column
            ((2, 5, 5), 1),
        ]:
            A = rng.standard_normal(shape)
            if shape[1] > 2 and shape[0] > 1:
                A[0, 1:, 0] = 0.0  # already-reduced column
                A[1, :, :] = 0.0  # fully zero block
            A0 = A.copy()
            VR, tau, V, T = geqr2_blocked(A, ib=ib)
            assert np.array_equal(A, A0), "input must not be mutated"
            VR0, tau0 = batched_geqr2(A)
            assert np.allclose(VR, VR0, atol=1e-11), shape
            assert np.allclose(tau, tau0, atol=1e-11), shape

    def test_geqr2_blocked_wy_reconstructs(self, rng):
        from repro.smallblas.wy import apply_wy, geqr2_blocked

        b, m, n = 5, 24, 9
        A = rng.standard_normal((b, m, n))
        VR, tau, V, T = geqr2_blocked(A, ib=4)
        QR = np.concatenate(
            [np.triu(VR[:, :n, :]), np.zeros((b, m - n, n))], axis=1
        )
        apply_wy(V, T, QR, transpose=False)  # Q @ [R; 0] == A
        assert np.allclose(QR, A, atol=1e-11)

    def test_geqr2_blocked_float32(self, rng):
        from repro.smallblas.wy import geqr2_blocked

        A = rng.standard_normal((4, 32, 8)).astype(np.float32)
        VR, tau, V, T = geqr2_blocked(A)
        assert VR.dtype == tau.dtype == V.dtype == T.dtype == np.float32
        VR0, tau0 = batched_geqr2(A)
        assert np.allclose(VR, VR0, atol=1e-4)

    def test_geqr2_blocked_rejects_bad_shape(self):
        from repro.smallblas.wy import geqr2_blocked

        with np.testing.assert_raises(ValueError):
            geqr2_blocked(np.zeros((4, 5)))
