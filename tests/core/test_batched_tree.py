"""Batched tree-level execution vs the per-node reference path.

The batched path (``batched=True``, the default) must be a pure
performance transformation: same block structure, same tree, same
factors up to roundoff, same results from every application method, on
every ragged/edge shape.  The per-node seed path (``batched=False``) is
the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caqr import caqr, caqr_qr
from repro.core.tsqr import tsqr, tsqr_qr
from repro.io import load_tsqr, save_tsqr

ATOL = 1e-10

# (m, n, block_rows, tree_shape, structured) — ragged row counts, narrow
# last panels, every tree shape, structured stacks, single block.
SHAPES = [
    (256, 16, 64, "quad", False),  # uniform, power-of-4 blocks
    (301, 16, 64, "quad", False),  # ragged last block
    (301, 16, 64, "binary", False),
    (1000, 13, 64, "binomial", False),
    (257, 16, 64, "flat", False),
    (300, 16, 64, "quad", True),  # structured R-stack factorization
    (301, 11, 64, "binary", True),
    (77, 100, 64, "quad", False),  # wide: n > m
    (50, 16, 64, "quad", False),  # single (short) block, empty tree
    (200, 16, 33, "quad", False),  # odd block_rows + ragged
    (65, 16, 64, "quad", False),  # 1-row ragged tail
]


def _pair(rng, m, n, br, shape, structured):
    A = rng.standard_normal((m, n))
    fb = tsqr(A, block_rows=br, tree_shape=shape, structured=structured, batched=True)
    fr = tsqr(A, block_rows=br, tree_shape=shape, structured=structured, batched=False)
    return A, fb, fr


class TestFactorParity:
    @pytest.mark.parametrize("m,n,br,shape,structured", SHAPES)
    def test_blocks_match_per_node(self, rng, m, n, br, shape, structured):
        """Every level-0 block factor matches the reference block-by-block."""
        _, fb, fr = _pair(rng, m, n, br, shape, structured)
        assert len(fb.blocks) == len(fr.blocks)
        for bb, br_ in zip(fb.blocks, fr.blocks):
            assert bb.rows == br_.rows
            assert bb.VR.shape == br_.VR.shape
            np.testing.assert_allclose(bb.VR, br_.VR, atol=ATOL)
            np.testing.assert_allclose(bb.tau, br_.tau, atol=ATOL)

    @pytest.mark.parametrize("m,n,br,shape,structured", SHAPES)
    def test_tree_factors_match_per_node(self, rng, m, n, br, shape, structured):
        _, fb, fr = _pair(rng, m, n, br, shape, structured)
        assert fb.tree.levels == fr.tree.levels
        for lb, lr in zip(fb.tree_factors, fr.tree_factors):
            for tb, tr in zip(lb, lr):
                assert tb.group == tr.group
                assert tb.heights == tr.heights
                if tb.structured is None:
                    np.testing.assert_allclose(tb.VR, tr.VR, atol=ATOL)
                    np.testing.assert_allclose(tb.tau, tr.tau, atol=ATOL)

    @pytest.mark.parametrize("m,n,br,shape,structured", SHAPES)
    def test_r_matches(self, rng, m, n, br, shape, structured):
        _, fb, fr = _pair(rng, m, n, br, shape, structured)
        np.testing.assert_allclose(fb.R, fr.R, atol=ATOL)


class TestApplyParity:
    @pytest.mark.parametrize("m,n,br,shape,structured", SHAPES)
    def test_apply_qt_apply_q_form_q(self, rng, m, n, br, shape, structured):
        _, fb, fr = _pair(rng, m, n, br, shape, structured)
        B = rng.standard_normal((m, 5))
        # apply_qt/apply_q work in place, so each call gets its own copy.
        np.testing.assert_allclose(
            fb.apply_qt(B.copy()), fr.apply_qt(B.copy()), atol=ATOL
        )
        np.testing.assert_allclose(
            fb.apply_q(B.copy()), fr.apply_q(B.copy()), atol=ATOL
        )
        np.testing.assert_allclose(fb.form_q(), fr.form_q(), atol=ATOL)

    def test_vector_rhs(self, rng):
        A = rng.standard_normal((301, 9))
        fb = tsqr(A, block_rows=64, batched=True)
        fr = tsqr(A, block_rows=64, batched=False)
        b = rng.standard_normal(301)
        out = fb.apply_qt(b.copy())
        np.testing.assert_allclose(out, fr.apply_qt(b.copy()), atol=ATOL)
        assert out.ndim == 1

    def test_flag_flip_after_factorization(self, rng):
        """A reference-built factor applied with batched=True (and vice
        versa) builds the missing plan lazily and agrees."""
        A = rng.standard_normal((301, 12))
        B = rng.standard_normal((301, 4))
        fb = tsqr(A, block_rows=64, batched=True)
        fr = tsqr(A, block_rows=64, batched=False)
        fr.batched = True
        fb.batched = False
        np.testing.assert_allclose(
            fr.apply_qt(B.copy()), fb.apply_qt(B.copy()), atol=ATOL
        )
        np.testing.assert_allclose(fr.form_q(), fb.form_q(), atol=ATOL)

    def test_float32_input(self, rng):
        A = rng.standard_normal((300, 10)).astype(np.float32)
        B = rng.standard_normal((300, 3)).astype(np.float32)
        fb = tsqr(A, block_rows=64, batched=True)
        fr = tsqr(A, block_rows=64, batched=False)
        assert fb.R.dtype == np.float32
        np.testing.assert_allclose(fb.R, fr.R, atol=1e-4)
        np.testing.assert_allclose(
            fb.apply_qt(B.copy()), fr.apply_qt(B.copy()), atol=1e-4
        )

    def test_mixed_dtype_rhs(self, rng):
        """Factor in float64, apply to float32: plan converts once."""
        A = rng.standard_normal((301, 8))
        f = tsqr(A, block_rows=64, batched=True)
        B64 = rng.standard_normal((301, 3))
        B32 = B64.astype(np.float32)
        out64 = f.apply_qt(B64.copy())
        out32 = f.apply_qt(B32)
        assert out32.dtype == np.float32
        np.testing.assert_allclose(out32, out64, atol=1e-4)


class TestNumericalQuality:
    @pytest.mark.parametrize("m,n,br,shape,structured", SHAPES)
    def test_residual_and_orthogonality(self, rng, m, n, br, shape, structured):
        A = rng.standard_normal((m, n))
        Q, R = tsqr_qr(
            A, block_rows=br, tree_shape=shape, structured=structured, batched=True
        )
        k = min(m, n)
        assert Q.shape == (m, k)
        np.testing.assert_allclose(Q @ R, A, atol=1e-10)
        np.testing.assert_allclose(Q.T @ Q, np.eye(k), atol=1e-10)


class TestCAQRParity:
    @pytest.mark.parametrize(
        "m,n,br,pw",
        [
            (300, 40, 64, 16),
            (301, 37, 64, 16),  # ragged rows + narrow last panel
            (513, 50, 64, 8),
            (200, 30, 33, 7),
        ],
    )
    def test_caqr_batched_vs_reference(self, rng, m, n, br, pw):
        A = rng.standard_normal((m, n))
        fb = caqr(A, block_rows=br, panel_width=pw, batched=True)
        fr = caqr(A, block_rows=br, panel_width=pw, batched=False)
        np.testing.assert_allclose(fb.R, fr.R, atol=ATOL)
        B = rng.standard_normal((m, 4))
        np.testing.assert_allclose(
            fb.apply_qt(B.copy()), fr.apply_qt(B.copy()), atol=ATOL
        )
        np.testing.assert_allclose(
            fb.apply_q(B.copy()), fr.apply_q(B.copy()), atol=ATOL
        )
        Qb, Rb = caqr_qr(A, block_rows=br, panel_width=pw, batched=True)
        np.testing.assert_allclose(Qb @ Rb, A, atol=1e-10)
        np.testing.assert_allclose(Qb.T @ Qb, np.eye(n), atol=1e-10)

    def test_launch_stream_identical(self, rng):
        """The simulator timeline is shape-only: both execution paths
        must enumerate the exact same kernel-launch sequence."""
        from repro.caqr_gpu import enumerate_caqr_launches
        from repro.kernels.config import REFERENCE_CONFIG

        launches = list(enumerate_caqr_launches(301, 37, REFERENCE_CONFIG))
        again = list(enumerate_caqr_launches(301, 37, REFERENCE_CONFIG))
        assert launches == again
        # The factor structure the launches describe is the same object
        # both paths produce: same blocks, same tree groups.
        A = rng.standard_normal((301, 37))
        fb = caqr(A, batched=True)
        fr = caqr(A, batched=False)
        for pb, pr in zip(fb.panels, fr.panels):
            assert [b.rows for b in pb.factors.blocks] == [
                b.rows for b in pr.factors.blocks
            ]
            assert pb.factors.tree.levels == pr.factors.tree.levels


class TestIORoundTrip:
    def test_batched_factor_survives_save_load(self, rng, tmp_path):
        A = rng.standard_normal((301, 12))
        f = tsqr(A, block_rows=64, batched=True)
        path = tmp_path / "f.npz"
        save_tsqr(path, f)
        g = load_tsqr(path)
        B = rng.standard_normal((301, 3))
        np.testing.assert_allclose(
            g.apply_qt(B.copy()), f.apply_qt(B.copy()), atol=ATOL
        )
        np.testing.assert_allclose(g.R, f.R, atol=ATOL)
