"""Unit tests for TSQR reduction-tree schedules."""

from __future__ import annotations

import math

import pytest

from repro.core.tree import TREE_SHAPES, build_tree


class TestBuildTree:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    @pytest.mark.parametrize("n_blocks", [0, 1, 2, 3, 4, 5, 7, 8, 16, 17, 100])
    def test_valid_schedule(self, shape, n_blocks):
        sched = build_tree(n_blocks, shape)
        sched.validate()
        assert sched.survivors() == ([0] if n_blocks >= 1 else [])

    def test_quad_level_count(self):
        # 64/16 = 4 Rs per block: quad-tree reduces height 4x per level
        # (Section IV-C).  256 blocks -> 4 levels.
        sched = build_tree(256, "quad")
        assert sched.n_levels == 4

    def test_binary_level_count(self):
        assert build_tree(256, "binary").n_levels == 8

    def test_binomial_level_count(self):
        assert build_tree(256, "binomial").n_levels == 8
        assert build_tree(100, "binomial").n_levels == math.ceil(math.log2(100))

    def test_flat_is_one_level_one_group(self):
        sched = build_tree(37, "flat")
        assert sched.n_levels == 1
        assert sched.levels[0] == (tuple(range(37)),)

    def test_quad_groups_have_at_most_four(self):
        sched = build_tree(19, "quad")
        for level in sched.levels:
            for group in level:
                assert 2 <= len(group) <= 4

    def test_custom_arity(self):
        sched = build_tree(27, "arity:3")
        assert sched.n_levels == 3
        for level in sched.levels:
            for group in level:
                assert len(group) <= 3

    def test_lone_trailing_block_rides_along(self):
        # 5 blocks, quad: level 0 groups (0,1,2,3), block 4 rides; level 1
        # groups (0, 4).
        sched = build_tree(5, "quad")
        assert sched.levels[0] == ((0, 1, 2, 3),)
        assert sched.levels[1] == ((0, 4),)

    def test_binomial_stride_pattern(self):
        sched = build_tree(8, "binomial")
        assert sched.levels[0] == ((0, 1), (2, 3), (4, 5), (6, 7))
        assert sched.levels[1] == ((0, 2), (4, 6))
        assert sched.levels[2] == ((0, 4),)

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            build_tree(4, "ternary-ish")

    def test_negative_blocks_raises(self):
        with pytest.raises(ValueError):
            build_tree(-1, "quad")

    def test_group_count_total(self):
        # Every elimination removes >= 1 block; exactly n_blocks - 1
        # eliminations for pairwise trees.
        sched = build_tree(33, "binary")
        eliminated = sum(len(g) - 1 for lvl in sched.levels for g in lvl)
        assert eliminated == 32

    def test_n_groups_property(self):
        sched = build_tree(16, "quad")
        assert sched.n_groups == 4 + 1
