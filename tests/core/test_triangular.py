"""Tests for the triangular-solve / Cholesky substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.triangular import (
    SingularTriangularError,
    cholesky,
    solve_lower,
    solve_upper,
)


class TestSolves:
    def test_upper_matches_numpy(self, rng):
        R = np.triu(rng.standard_normal((12, 12))) + 5 * np.eye(12)
        B = rng.standard_normal((12, 4))
        assert np.allclose(solve_upper(R, B), np.linalg.solve(R, B), atol=1e-11)

    def test_lower_matches_numpy(self, rng):
        L = np.tril(rng.standard_normal((9, 9))) + 5 * np.eye(9)
        B = rng.standard_normal((9, 3))
        assert np.allclose(solve_lower(L, B), np.linalg.solve(L, B), atol=1e-11)

    def test_vector_rhs_shape_preserved(self, rng):
        R = np.triu(rng.standard_normal((6, 6))) + 3 * np.eye(6)
        b = rng.standard_normal(6)
        x = solve_upper(R, b)
        assert x.shape == (6,)
        assert np.allclose(R @ x, b, atol=1e-12)

    def test_zero_pivot_raises(self):
        R = np.triu(np.ones((3, 3)))
        R[1, 1] = 0.0
        with pytest.raises(SingularTriangularError):
            solve_upper(R, np.ones(3))
        L = np.tril(np.ones((3, 3)))
        L[2, 2] = 0.0
        with pytest.raises(SingularTriangularError):
            solve_lower(L, np.ones(3))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            solve_upper(np.ones((3, 4)), np.ones(3))
        with pytest.raises(ValueError):
            solve_lower(np.ones((4, 3)), np.ones(4))

    def test_identity(self, rng):
        b = rng.standard_normal(5)
        assert np.allclose(solve_upper(np.eye(5), b), b)
        assert np.allclose(solve_lower(np.eye(5), b), b)


class TestCholesky:
    def test_matches_numpy(self, rng):
        X = rng.standard_normal((20, 8))
        A = X.T @ X + 0.5 * np.eye(8)
        L = cholesky(A)
        assert np.allclose(L, np.linalg.cholesky(A), atol=1e-11)

    def test_reconstruction(self, rng):
        X = rng.standard_normal((30, 6))
        A = X.T @ X + np.eye(6)
        L = cholesky(A)
        assert np.allclose(L @ L.T, A, atol=1e-11)
        assert np.allclose(np.triu(L, 1), 0.0)

    def test_indefinite_raises(self):
        A = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        with pytest.raises(SingularTriangularError):
            cholesky(A)

    def test_nan_pivot_raises(self):
        A = np.full((2, 2), np.nan)
        with pytest.raises(SingularTriangularError):
            cholesky(A)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            cholesky(np.ones((2, 3)))

    def test_1x1(self):
        assert cholesky(np.array([[4.0]]))[0, 0] == 2.0

    def test_input_not_modified(self, rng):
        X = rng.standard_normal((10, 4))
        A = X.T @ X + np.eye(4)
        A0 = A.copy()
        cholesky(A)
        assert np.array_equal(A, A0)
