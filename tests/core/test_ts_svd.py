"""Tests for tall-skinny SVD via QR (Section VI-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ts_svd import QR_ENGINES, tall_skinny_svd
from repro.core.cholesky_qr import cholesky_qr


class TestTallSkinnySVD:
    @pytest.mark.parametrize("engine", sorted(QR_ENGINES))
    def test_reconstruction(self, rng, engine):
        A = rng.standard_normal((300, 20))
        U, s, Vt = tall_skinny_svd(A, qr=engine)
        assert np.allclose((U * s) @ Vt, A, atol=1e-11)

    def test_matches_numpy_svd(self, rng):
        A = rng.standard_normal((256, 16))
        U, s, Vt = tall_skinny_svd(A, qr="tsqr")
        s_np = np.linalg.svd(A, compute_uv=False)
        assert np.allclose(s, s_np, atol=1e-10)

    def test_left_vectors_orthonormal(self, rng):
        A = rng.standard_normal((200, 12))
        U, _, _ = tall_skinny_svd(A)
        assert np.allclose(U.T @ U, np.eye(12), atol=1e-11)

    def test_custom_qr_callable(self, rng):
        A = abs(rng.standard_normal((100, 6))) + 0.1  # well-conditioned enough
        U, s, Vt = tall_skinny_svd(A, qr=cholesky_qr)
        assert np.allclose((U * s) @ Vt, A, atol=1e-8)

    def test_subspace_matches_numpy(self, rng):
        # Video-matrix shape in miniature: singular vectors must span the
        # same dominant subspace numpy finds.
        A = rng.standard_normal((500, 10))
        U, s, Vt = tall_skinny_svd(A)
        U_np, _, _ = np.linalg.svd(A, full_matrices=False)
        # Compare projectors (sign/rotation free).
        P = U @ U.T
        P_np = U_np @ U_np.T
        assert np.allclose(P, P_np, atol=1e-9)

    def test_wide_rejected(self, rng):
        with pytest.raises(ValueError):
            tall_skinny_svd(rng.standard_normal((5, 10)))

    def test_low_rank_video_like_matrix(self, rng):
        # background (rank 1) + sparse foreground, as in Robust PCA.
        bg = rng.standard_normal((400, 1)) @ np.ones((1, 30))
        S = np.zeros((400, 30))
        idx = rng.integers(0, 400, size=60)
        S[idx, rng.integers(0, 30, size=60)] = 5.0
        A = bg + S
        U, s, Vt = tall_skinny_svd(A)
        assert np.allclose((U * s) @ Vt, A, atol=1e-9)
        assert s[0] > 3 * s[1]  # dominant background mode
