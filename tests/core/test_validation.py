"""Tests for the factorization-quality metrics."""

from __future__ import annotations

import numpy as np

from repro.core.validation import (
    factorization_error,
    is_factorization_accurate,
    orthogonality_error,
    sign_canonical,
    triangularity_error,
)


class TestMetrics:
    def test_orthogonality_of_identity(self):
        assert orthogonality_error(np.eye(5)) == 0.0

    def test_orthogonality_detects_scaling(self):
        assert orthogonality_error(2 * np.eye(3)) > 1.0

    def test_factorization_error_zero_for_exact(self, rng):
        Q = np.eye(4)
        R = np.triu(rng.standard_normal((4, 4)))
        assert factorization_error(Q @ R, Q, R) < 1e-15

    def test_factorization_error_zero_matrix(self):
        assert factorization_error(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros((2, 2))) == 0.0

    def test_triangularity(self):
        R = np.triu(np.ones((4, 4)))
        assert triangularity_error(R) == 0.0
        R[2, 0] = 1.0
        assert triangularity_error(R) == 1.0

    def test_sign_canonical_makes_diag_nonnegative(self, rng):
        A = rng.standard_normal((10, 4))
        Q_np, R_np = np.linalg.qr(A)
        Q, R = sign_canonical(Q_np, R_np)
        assert np.all(np.diag(R) >= 0)
        assert np.allclose(Q @ R, A, atol=1e-12)

    def test_sign_canonical_zero_diag_unchanged(self):
        R = np.zeros((3, 3))
        Q = np.eye(3)
        Q2, R2 = sign_canonical(Q, R)
        assert np.array_equal(R2, R)

    def test_is_factorization_accurate_true_for_numpy(self, rng):
        A = rng.standard_normal((50, 10))
        Q, R = np.linalg.qr(A)
        assert is_factorization_accurate(A, Q, R)

    def test_is_factorization_accurate_false_for_junk(self, rng):
        A = rng.standard_normal((20, 5))
        assert not is_factorization_accurate(A, A[:, :5] * 0 + 1.0, np.eye(5))
