"""Tests of the streaming (single-pass) TSQR."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.streaming import StreamingTSQR
from repro.core.validation import sign_canonical


def push_all(st_obj: StreamingTSQR, A: np.ndarray, sizes: list[int]) -> StreamingTSQR:
    pos = 0
    for h in sizes:
        st_obj.push(A[pos : pos + h])
        pos += h
    assert pos == A.shape[0]
    return st_obj


class TestStreamingR:
    def test_matches_batch_qr(self, rng):
        A = rng.standard_normal((500, 12))
        stq = push_all(StreamingTSQR(n_cols=12), A, [100, 150, 150, 100])
        R_np = np.triu(np.linalg.qr(A, mode="r"))[:12]
        assert np.allclose(np.abs(np.diag(stq.R)), np.abs(np.diag(R_np)), atol=1e-10)

    def test_incremental_prefix_property(self, rng):
        """After each push, R must equal the QR of the prefix seen."""
        A = rng.standard_normal((120, 6))
        stq = StreamingTSQR(n_cols=6)
        for i in range(0, 120, 30):
            stq.push(A[i : i + 30])
            R_np = np.triu(np.linalg.qr(A[: i + 30], mode="r"))[:6]
            assert np.allclose(np.abs(np.diag(stq.R)), np.abs(np.diag(R_np)), atol=1e-10)

    def test_single_row_blocks(self, rng):
        A = rng.standard_normal((25, 4))
        stq = push_all(StreamingTSQR(n_cols=4), A, [1] * 25)
        R_np = np.triu(np.linalg.qr(A, mode="r"))
        assert np.allclose(np.abs(np.diag(stq.R)), np.abs(np.diag(R_np)), atol=1e-10)

    def test_blocks_shorter_than_n(self, rng):
        A = rng.standard_normal((40, 8))
        stq = push_all(StreamingTSQR(n_cols=8), A, [3, 5, 2, 10, 20])
        R_np = np.triu(np.linalg.qr(A, mode="r"))
        assert np.allclose(np.abs(np.diag(stq.R)), np.abs(np.diag(R_np)), atol=1e-10)

    def test_short_total_stream(self, rng):
        A = rng.standard_normal((5, 8))  # fewer rows than columns
        stq = push_all(StreamingTSQR(n_cols=8), A, [2, 3])
        assert stq.R.shape == (5, 8)

    def test_r_before_push_raises(self):
        with pytest.raises(ValueError):
            StreamingTSQR(n_cols=4).R

    def test_bad_block_rejected(self, rng):
        stq = StreamingTSQR(n_cols=4)
        with pytest.raises(ValueError):
            stq.push(rng.standard_normal((3, 5)))
        with pytest.raises(ValueError):
            stq.push(rng.standard_normal((0, 4)))

    def test_bookkeeping(self, rng):
        stq = push_all(StreamingTSQR(n_cols=3), rng.standard_normal((30, 3)), [10, 20])
        assert stq.m == 30
        assert stq.n_blocks == 2


class TestStreamingApply:
    def test_qt_applied_to_stream_gives_r(self, rng):
        A = rng.standard_normal((200, 10))
        stq = push_all(StreamingTSQR(n_cols=10), A, [50, 50, 100])
        out = stq.apply_qt(A.copy())
        assert np.allclose(np.triu(out[:10]), stq.R, atol=1e-11)
        assert np.linalg.norm(out[10:]) < 1e-9

    def test_norm_preserved(self, rng):
        A = rng.standard_normal((90, 5))
        stq = push_all(StreamingTSQR(n_cols=5), A, [30, 30, 30])
        b = rng.standard_normal(90)
        qtb = stq.apply_qt(b)
        assert np.linalg.norm(qtb) == pytest.approx(np.linalg.norm(b))

    def test_least_squares_through_stream(self, rng):
        A = rng.standard_normal((300, 7))
        x_true = rng.standard_normal(7)
        b = A @ x_true
        stq = push_all(StreamingTSQR(n_cols=7), A, [100, 100, 100])
        qtb = stq.apply_qt(b)
        from repro.core.triangular import solve_upper

        x = solve_upper(stq.R[:7, :7], qtb[:7])
        assert np.allclose(x, x_true, atol=1e-9)

    def test_vector_rhs_shape(self, rng):
        A = rng.standard_normal((40, 4))
        stq = push_all(StreamingTSQR(n_cols=4), A, [20, 20])
        out = stq.apply_qt(rng.standard_normal(40))
        assert out.shape == (40,)

    def test_row_mismatch_rejected(self, rng):
        stq = push_all(StreamingTSQR(n_cols=4), rng.standard_normal((20, 4)), [20])
        with pytest.raises(ValueError):
            stq.apply_qt(np.zeros((19, 2)))

    def test_short_first_blocks_apply(self, rng):
        A = rng.standard_normal((40, 8))
        stq = push_all(StreamingTSQR(n_cols=8), A, [3, 3, 3, 31])
        out = stq.apply_qt(A.copy())
        assert np.allclose(np.triu(out[:8]), stq.R, atol=1e-10)
        assert np.linalg.norm(out[8:]) < 1e-9


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 10),
    seed=st.integers(0, 2**31),
    splits=st.lists(st.integers(1, 20), min_size=1, max_size=8),
)
def test_property_streaming_matches_batch(n, seed, splits):
    m = sum(splits)
    A = np.random.default_rng(seed).standard_normal((m, n))
    stq = StreamingTSQR(n_cols=n)
    pos = 0
    for h in splits:
        stq.push(A[pos : pos + h])
        pos += h
    R_np = np.triu(np.linalg.qr(A, mode="r"))
    k = min(m, n)
    assert np.allclose(np.abs(np.diag(stq.R)[:k]), np.abs(np.diag(R_np)[:k]), atol=1e-9)


class TestStreamingDtype:
    def test_dtype_fixed_across_uniform_pushes(self, rng):
        stq = StreamingTSQR(n_cols=4)
        stq.push(rng.standard_normal((6, 4)).astype(np.float32))
        stq.push(rng.standard_normal((6, 4)).astype(np.float32))
        assert stq.R.dtype == np.float32
        assert all(step.VR.dtype == np.float32 for step in stq._steps)

    def test_promotion_mid_stream(self, rng):
        """A float64 block after float32 pushes promotes the running R
        exactly once; results match an all-float64 stream to f32 accuracy."""
        A = rng.standard_normal((18, 4))
        stq = StreamingTSQR(n_cols=4)
        stq.push(A[:6].astype(np.float32))
        stq.push(A[6:12])  # promotes
        stq.push(A[12:])
        assert stq.R.dtype == np.float64
        ref = StreamingTSQR(n_cols=4)
        for i in range(0, 18, 6):
            ref.push(A[i : i + 6])
        assert np.allclose(np.abs(stq.R), np.abs(ref.R), atol=1e-5)
