"""Unit tests for the Householder reflector primitives."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg

from repro.core.householder import (
    apply_reflector,
    extract_r,
    extract_v,
    geqr2,
    house,
    org2r,
    orm2r,
    qr_flops,
)


class TestHouse:
    def test_annihilates_below_first(self, rng):
        x = rng.standard_normal(9)
        v, tau, beta = house(x)
        H = np.eye(9) - tau * np.outer(v, v)
        y = H @ x
        assert abs(y[0] - beta) < 1e-12
        assert np.allclose(y[1:], 0.0, atol=1e-12)

    def test_beta_is_negated_sign_of_x0(self, rng):
        x = np.array([3.0, 4.0])
        v, tau, beta = house(x)
        assert beta == -5.0  # -sign(3) * ||(3,4)||

    def test_negative_leading_entry(self):
        x = np.array([-3.0, 4.0])
        v, tau, beta = house(x)
        assert beta == 5.0

    def test_reflector_is_orthogonal(self, rng):
        x = rng.standard_normal(15)
        v, tau, _ = house(x)
        H = np.eye(15) - tau * np.outer(v, v)
        assert np.allclose(H @ H.T, np.eye(15), atol=1e-13)

    def test_norm_preserved(self, rng):
        x = rng.standard_normal(20)
        _, _, beta = house(x)
        assert abs(abs(beta) - np.linalg.norm(x)) < 1e-12

    def test_zero_vector_gives_identity(self):
        v, tau, beta = house(np.zeros(5))
        assert tau == 0.0
        assert beta == 0.0

    def test_already_reduced_vector(self):
        x = np.array([2.5, 0.0, 0.0])
        v, tau, beta = house(x)
        assert tau == 0.0
        assert beta == 2.5

    def test_length_one_vector(self):
        v, tau, beta = house(np.array([7.0]))
        assert tau == 0.0 and beta == 7.0

    def test_v_has_unit_first_entry(self, rng):
        v, tau, _ = house(rng.standard_normal(8))
        assert v[0] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            house(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            house(np.zeros((2, 2)))

    def test_large_magnitude_no_overflow(self):
        x = np.array([1e150, 1e150])
        v, tau, beta = house(x)
        assert np.isfinite(beta) and np.isfinite(tau)
        H = np.eye(2) - tau * np.outer(v, v)
        y = H @ x
        assert abs(y[1]) <= 1e-10 * abs(y[0])


class TestApplyReflector:
    def test_matches_explicit_matrix(self, rng):
        v, tau, _ = house(rng.standard_normal(10))
        C = rng.standard_normal((10, 6))
        expected = (np.eye(10) - tau * np.outer(v, v)) @ C
        got = apply_reflector(v, tau, C.copy())
        assert np.allclose(got, expected, atol=1e-13)

    def test_tau_zero_is_identity(self, rng):
        C = rng.standard_normal((5, 3))
        out = apply_reflector(np.ones(5), 0.0, C.copy())
        assert np.array_equal(out, C)

    def test_in_place(self, rng):
        v, tau, _ = house(rng.standard_normal(6))
        C = rng.standard_normal((6, 2))
        out = apply_reflector(v, tau, C)
        assert out is C


class TestGeqr2:
    @pytest.mark.parametrize("m,n", [(8, 8), (20, 5), (64, 16), (5, 9), (1, 1), (7, 1), (1, 4)])
    def test_reconstruction(self, rng, m, n):
        A = rng.standard_normal((m, n))
        VR, tau = geqr2(A)
        Q = org2r(VR, tau, n_cols=m)  # full Q
        R = extract_r(VR, square=False)
        assert np.allclose(Q @ R, A, atol=1e-12)
        assert np.allclose(Q.T @ Q, np.eye(m), atol=1e-12)

    def test_r_matches_scipy_up_to_signs(self, rng):
        A = rng.standard_normal((30, 12))
        VR, tau = geqr2(A)
        R = extract_r(VR)
        R_sp = scipy.linalg.qr(A, mode="r")[0][:12]
        assert np.allclose(np.abs(np.diag(R)), np.abs(np.diag(R_sp)), atol=1e-10)

    def test_does_not_modify_input(self, rng):
        A = rng.standard_normal((10, 4))
        A0 = A.copy()
        geqr2(A)
        assert np.array_equal(A, A0)

    def test_packed_format(self, rng):
        A = rng.standard_normal((12, 5))
        VR, tau = geqr2(A)
        assert VR.shape == (12, 5)
        assert tau.shape == (5,)
        V = extract_v(VR)
        assert np.allclose(np.diag(V), 1.0)
        assert np.allclose(np.triu(V, 1), 0.0)

    def test_rank_deficient_input(self, rng):
        col = rng.standard_normal((20, 1))
        A = np.hstack([col, 2 * col, 3 * col])
        VR, tau = geqr2(A)
        Q = org2r(VR, tau, n_cols=3)
        R = extract_r(VR)
        assert np.allclose(Q @ R, A, atol=1e-12)
        # Rank 1: trailing diagonal entries of R are ~0.
        assert abs(R[1, 1]) < 1e-12 and abs(R[2, 2]) < 1e-12

    def test_zero_matrix(self):
        VR, tau = geqr2(np.zeros((6, 3)))
        assert np.allclose(VR, 0.0)
        assert np.allclose(tau, 0.0)


class TestOrm2rOrg2r:
    def test_qt_times_q_is_identity(self, rng):
        A = rng.standard_normal((15, 6))
        VR, tau = geqr2(A)
        C = rng.standard_normal((15, 4))
        out = orm2r(VR, tau, C.copy(), transpose=True)
        out = orm2r(VR, tau, out, transpose=False)
        assert np.allclose(out, C, atol=1e-12)

    def test_qt_a_equals_r(self, rng):
        A = rng.standard_normal((18, 7))
        VR, tau = geqr2(A)
        QtA = orm2r(VR, tau, A.copy(), transpose=True)
        assert np.allclose(QtA, extract_r(VR, square=False), atol=1e-12)

    def test_org2r_thin_orthonormal(self, rng):
        A = rng.standard_normal((25, 9))
        VR, tau = geqr2(A)
        Q = org2r(VR, tau)
        assert Q.shape == (25, 9)
        assert np.allclose(Q.T @ Q, np.eye(9), atol=1e-12)

    def test_row_mismatch_raises(self, rng):
        VR, tau = geqr2(rng.standard_normal((10, 3)))
        with pytest.raises(ValueError):
            orm2r(VR, tau, np.zeros((9, 2)))


class TestQrFlops:
    def test_tall_formula(self):
        assert qr_flops(100, 10) == pytest.approx(2 * 100 * 100 - 2 * 1000 / 3)

    def test_paper_scale(self):
        # 1M x 192 used in Table I: ~7.37e10 flops.
        assert qr_flops(1_000_000, 192) == pytest.approx(7.3723e10, rel=1e-3)

    def test_square_positive(self):
        assert qr_flops(512, 512) > 0

    def test_wide_symmetric_in_leading_term(self):
        # m < n case follows the LAPACK convention.
        assert qr_flops(10, 100) == pytest.approx(2 * 100 * 100 - 2 * 1000 / 3)
