"""Tests for the one-sided Jacobi SVD substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jacobi_svd import jacobi_svd, svd_via_jacobi


class TestJacobiSVD:
    @pytest.mark.parametrize("m,n", [(10, 10), (30, 8), (100, 5), (6, 1)])
    def test_reconstruction(self, rng, m, n):
        A = rng.standard_normal((m, n))
        U, s, Vt = jacobi_svd(A)
        assert np.allclose((U * s) @ Vt, A, atol=1e-11)

    def test_singular_values_match_numpy(self, rng):
        A = rng.standard_normal((40, 12))
        _, s, _ = jacobi_svd(A)
        assert np.allclose(s, np.linalg.svd(A, compute_uv=False), atol=1e-10)

    def test_descending_nonnegative(self, rng):
        _, s, _ = jacobi_svd(rng.standard_normal((20, 7)))
        assert np.all(s >= 0)
        assert np.all(np.diff(s) <= 1e-12)

    def test_factors_orthonormal(self, rng):
        A = rng.standard_normal((25, 9))
        U, s, Vt = jacobi_svd(A)
        assert np.allclose(U.T @ U, np.eye(9), atol=1e-11)
        assert np.allclose(Vt @ Vt.T, np.eye(9), atol=1e-11)

    def test_on_triangular_r_factor(self, rng):
        # The library's actual use: SVD of the n x n R from QR.
        R = np.triu(rng.standard_normal((16, 16)))
        U, s, Vt = jacobi_svd(R)
        assert np.allclose((U * s) @ Vt, R, atol=1e-11)

    def test_rank_deficient(self, rng):
        B = rng.standard_normal((20, 3))
        A = B @ rng.standard_normal((3, 8))
        U, s, Vt = jacobi_svd(A)
        assert np.allclose((U * s) @ Vt, A, atol=1e-10)
        assert np.sum(s > 1e-10 * s[0]) == 3

    def test_zero_matrix(self):
        U, s, Vt = jacobi_svd(np.zeros((5, 3)))
        assert np.allclose(s, 0.0)
        assert np.allclose((U * s) @ Vt, 0.0)

    def test_ill_conditioned_high_relative_accuracy(self, matrix_factory):
        A = matrix_factory(50, 10, cond=1e10)
        _, s, _ = jacobi_svd(A)
        s_np = np.linalg.svd(A, compute_uv=False)
        # Jacobi attains high *relative* accuracy on the small values too.
        assert np.allclose(s, s_np, rtol=1e-6, atol=1e-15)

    def test_wide_requires_transpose(self, rng):
        with pytest.raises(ValueError):
            jacobi_svd(rng.standard_normal((3, 7)))

    def test_empty_columns(self):
        U, s, Vt = jacobi_svd(np.zeros((4, 0)))
        assert s.shape == (0,)

    def test_identity(self):
        U, s, Vt = jacobi_svd(np.eye(6))
        assert np.allclose(s, 1.0)


class TestSvdViaJacobi:
    def test_wide_matrix(self, rng):
        A = rng.standard_normal((5, 12))
        U, s, Vt = svd_via_jacobi(A)
        assert U.shape == (5, 5)
        assert Vt.shape == (5, 12)
        assert np.allclose((U * s) @ Vt, A, atol=1e-11)

    def test_tall_delegates(self, rng):
        A = rng.standard_normal((12, 5))
        U, s, Vt = svd_via_jacobi(A)
        assert np.allclose((U * s) @ Vt, A, atol=1e-11)


class TestUnderflowRegression:
    def test_denormal_scale_columns_converge(self, rng):
        """Regression: alpha*beta underflow used to make convergence
        detection divide by zero and spin to the sweep cap."""
        A = rng.standard_normal((12, 6))
        A[:, 3] *= 1e-160
        A[:, 4] *= 1e-165
        U, s, Vt = jacobi_svd(A)
        assert np.all(np.isfinite(s))
        assert np.allclose((U * s) @ Vt, A, atol=1e-10)

    def test_uniformly_tiny_matrix(self, rng):
        A = 1e-170 * rng.standard_normal((10, 4))
        U, s, Vt = jacobi_svd(A)
        assert np.all(np.isfinite(s))
        # Relative reconstruction still holds at denormal scale.
        assert np.linalg.norm((U * s) @ Vt - A) <= 1e-8 * np.linalg.norm(A)
