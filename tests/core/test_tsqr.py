"""Unit and integration tests for TSQR."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg

from repro.core.tsqr import row_blocks, tsqr, tsqr_qr
from repro.core.validation import (
    factorization_error,
    orthogonality_error,
    sign_canonical,
    triangularity_error,
)


class TestRowBlocks:
    def test_exact_division(self):
        assert row_blocks(128, 64) == [(0, 64), (64, 128)]

    def test_short_last_block(self):
        assert row_blocks(100, 64) == [(0, 64), (64, 100)]

    def test_single_block(self):
        assert row_blocks(30, 64) == [(0, 30)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            row_blocks(0, 64)
        with pytest.raises(ValueError):
            row_blocks(10, 0)


class TestTSQRFactorization:
    @pytest.mark.parametrize("tree_shape", ["binary", "quad", "binomial", "flat"])
    @pytest.mark.parametrize("m,n,br", [(256, 16, 64), (1000, 13, 64), (130, 16, 64), (64, 16, 64)])
    def test_qr_quality(self, rng, tree_shape, m, n, br):
        A = rng.standard_normal((m, n))
        Q, R = tsqr_qr(A, block_rows=br, tree_shape=tree_shape)
        assert factorization_error(A, Q, R) < 1e-13
        assert orthogonality_error(Q) < 1e-12
        assert triangularity_error(R) == 0.0

    def test_r_matches_scipy_canonical(self, rng):
        A = rng.standard_normal((512, 24))
        Q, R = tsqr_qr(A, block_rows=64)
        R_sp = scipy.linalg.qr(A, mode="r")[0][:24]
        _, R_c = sign_canonical(Q, R)
        _, R_sp_c = sign_canonical(np.zeros((24, 24)), R_sp)
        assert np.allclose(R_c, R_sp_c, atol=1e-10)

    def test_block_rows_smaller_than_width_auto_bumped(self, rng):
        # block_rows=8 < n=16 must still produce a valid factorization.
        A = rng.standard_normal((200, 16))
        Q, R = tsqr_qr(A, block_rows=8)
        assert factorization_error(A, Q, R) < 1e-13

    def test_single_block_degenerates_to_geqr2(self, rng):
        A = rng.standard_normal((40, 10))
        f = tsqr(A, block_rows=64)
        assert f.tree.n_levels == 0
        assert len(f.blocks) == 1
        assert factorization_error(A, f.form_q(), f.R) < 1e-13

    def test_wide_matrix(self, rng):
        A = rng.standard_normal((10, 25))
        f = tsqr(A, block_rows=64)
        Q = f.form_q()
        assert Q.shape == (10, 10)
        assert f.R.shape == (10, 25)
        assert factorization_error(A, Q, f.R) < 1e-13

    def test_extreme_aspect_ratio(self, rng):
        # s-step Krylov territory: thousands of rows, < 10 columns.
        A = rng.standard_normal((5000, 4))
        Q, R = tsqr_qr(A, block_rows=64)
        assert factorization_error(A, Q, R) < 1e-13
        assert orthogonality_error(Q) < 1e-12

    def test_m_equals_n(self, rng):
        A = rng.standard_normal((32, 32))
        Q, R = tsqr_qr(A, block_rows=16)
        assert factorization_error(A, Q, R) < 1e-13

    def test_one_column(self, rng):
        A = rng.standard_normal((300, 1))
        Q, R = tsqr_qr(A, block_rows=64)
        assert Q.shape == (300, 1)
        assert abs(abs(R[0, 0]) - np.linalg.norm(A)) < 1e-10

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            tsqr(rng.standard_normal(10))


class TestTSQRApply:
    def test_apply_qt_then_q_roundtrip(self, rng):
        A = rng.standard_normal((320, 12))
        f = tsqr(A, block_rows=64)
        B = rng.standard_normal((320, 7))
        out = f.apply_qt(B.copy())
        out = f.apply_q(out)
        assert np.allclose(out, B, atol=1e-12)

    def test_apply_qt_to_a_gives_r_on_top(self, rng):
        A = rng.standard_normal((256, 10))
        f = tsqr(A, block_rows=64)
        QtA = f.apply_qt(A.copy())
        assert np.allclose(np.triu(QtA[:10]), f.R, atol=1e-12)
        # Everything outside the distributed R rows is annihilated.
        assert np.linalg.norm(QtA[10:]) < 1e-10

    def test_apply_q_matches_explicit(self, rng):
        A = rng.standard_normal((192, 8))
        f = tsqr(A, block_rows=64)
        Q = f.form_q()
        B = rng.standard_normal((8, 5))
        expanded = np.vstack([B, np.zeros((192 - 8, 5))])
        got = f.apply_q(expanded.copy())
        assert np.allclose(got, Q @ B, atol=1e-12)

    def test_row_mismatch_raises(self, rng):
        f = tsqr(rng.standard_normal((128, 8)), block_rows=64)
        with pytest.raises(ValueError):
            f.apply_qt(np.zeros((64, 2)))

    def test_apply_is_in_place_view_safe(self, rng):
        A = rng.standard_normal((128, 6))
        f = tsqr(A, block_rows=64)
        big = rng.standard_normal((128, 10))
        view = big[:, 2:8]
        before = big[:, :2].copy()
        f.apply_qt(view)
        assert np.array_equal(big[:, :2], before)


class TestTreeShapeEquivalence:
    def test_all_shapes_same_r_up_to_signs(self, rng):
        A = rng.standard_normal((640, 16))
        rs = []
        for shape in ["binary", "quad", "binomial", "flat"]:
            Q, R = tsqr_qr(A, block_rows=64, tree_shape=shape)
            _, Rc = sign_canonical(Q, R)
            rs.append(Rc)
        for R in rs[1:]:
            assert np.allclose(R, rs[0], atol=1e-10)

    def test_quad_tree_group_arity_respects_paper(self, rng):
        # 64x16 blocks: 4 Rs fit per block -> quad groups.
        f = tsqr(rng.standard_normal((1024, 16)), block_rows=64, tree_shape="quad")
        for level in f.tree_factors:
            for tf in level:
                assert len(tf.group) <= 4
