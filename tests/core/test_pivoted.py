"""Tests of column-pivoted (rank-revealing) QR."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg

from repro.core.pivoted import numerical_rank, qr_pivoted


class TestPivotedQR:
    @pytest.mark.parametrize("m,n", [(20, 10), (10, 10), (8, 15), (30, 1)])
    def test_factorization_identity(self, rng, m, n):
        A = rng.standard_normal((m, n))
        f = qr_pivoted(A)
        assert np.allclose(A[:, f.piv], f.Q @ f.R, atol=1e-11)
        k = f.Q.shape[1]
        assert np.allclose(f.Q.T @ f.Q, np.eye(k), atol=1e-12)

    def test_diagonal_non_increasing(self, rng):
        A = rng.standard_normal((40, 15))
        f = qr_pivoted(A)
        d = np.abs(np.diag(f.R))
        assert np.all(d[:-1] >= d[1:] - 1e-10)

    def test_matches_scipy_pivots_and_r(self, rng):
        A = rng.standard_normal((25, 8))
        f = qr_pivoted(A)
        Qs, Rs, piv_s = scipy.linalg.qr(A, pivoting=True, mode="economic")
        assert np.array_equal(f.piv, piv_s)
        assert np.allclose(np.abs(np.diag(f.R)), np.abs(np.diag(Rs)), atol=1e-10)

    def test_permutation_matrix(self, rng):
        A = rng.standard_normal((12, 6))
        f = qr_pivoted(A)
        assert np.allclose(A @ f.permutation_matrix(), f.Q @ f.R, atol=1e-11)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            qr_pivoted(np.zeros(4))

    def test_first_pivot_is_largest_column(self, rng):
        A = rng.standard_normal((20, 5))
        A[:, 3] *= 100.0
        f = qr_pivoted(A)
        assert f.piv[0] == 3


class TestNumericalRank:
    def test_exact_low_rank(self, rng):
        A = rng.standard_normal((50, 4)) @ rng.standard_normal((4, 20))
        assert numerical_rank(A) == 4

    def test_full_rank(self, rng):
        assert numerical_rank(rng.standard_normal((30, 12))) == 12

    def test_zero_matrix(self):
        assert numerical_rank(np.zeros((10, 5))) == 0

    def test_near_rank_deficiency_with_tolerance(self, matrix_factory):
        A = matrix_factory(60, 10, cond=1e12)
        # With a loose tolerance the trailing tiny directions drop out.
        assert numerical_rank(A, rtol=1e-6) < 10
        assert numerical_rank(A, rtol=1e-14) == 10

    def test_rank_of_rpca_background(self, rng):
        """The use case: confirm the recovered video background is low rank."""
        from repro.rpca import generate_video, rpca_ialm

        v = generate_video(height=16, width=16, n_frames=20, illumination_drift=0.05, seed=2)
        res = rpca_ialm(v.M, tol=1e-6, max_iter=80)
        # The dominant background modes stand out by orders of magnitude
        # against the 20 frames; small residual directions decay fast.
        assert numerical_rank(res.L, rtol=5e-2) <= 4
        assert numerical_rank(res.L, rtol=5e-2) < res.L.shape[1] // 2

    def test_pivoting_beats_unpivoted_rank_reveal(self, rng):
        """A classic Kahan-like matrix where unpivoted QR's diagonal lies."""
        n = 30
        c = 0.285
        s = float(np.sqrt(1 - c * c))
        K = np.triu(-c * np.ones((n, n)), 1) + np.eye(n)
        K = np.diag(s ** np.arange(n)) @ K
        true_rank = np.linalg.matrix_rank(K, tol=1e-10)
        assert abs(numerical_rank(K, rtol=1e-10) - true_rank) <= 1
