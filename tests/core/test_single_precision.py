"""Single-precision tests — the paper's working precision.

"Everything here is done using single-precision, which is adequate for
our video application" (Section IV).  The core routines preserve float32
end to end; accuracy scales with float32 machine epsilon (~1.2e-7).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocked import blocked_qr
from repro.core.caqr import caqr_qr
from repro.core.dtypes import as_float_array, eps_for, working_dtype
from repro.core.householder import geqr2, house, org2r
from repro.core.jacobi_svd import jacobi_svd
from repro.core.tsqr import tsqr, tsqr_qr
from repro.core.ts_svd import tall_skinny_svd
from repro.core.validation import factorization_error, orthogonality_error

F32_TOL = 5e-5  # generous multiple of float32 eps * sqrt(size)


class TestDtypeHelpers:
    def test_working_dtype_rules(self):
        f32 = np.zeros(3, dtype=np.float32)
        f64 = np.zeros(3)
        assert working_dtype(f32) == np.float32
        assert working_dtype(f64) == np.float64
        assert working_dtype(f32, f64) == np.float64
        assert working_dtype(np.zeros(3, dtype=np.int32)) == np.float64

    def test_as_float_array_preserves_f32(self):
        x = np.ones(4, dtype=np.float32)
        assert as_float_array(x).dtype == np.float32
        assert as_float_array([1, 2, 3]).dtype == np.float64

    def test_as_float_array_copy_flag(self):
        x = np.ones(4)
        assert as_float_array(x) is x
        assert as_float_array(x, copy=True) is not x

    def test_eps(self):
        assert eps_for(np.zeros(2, dtype=np.float32)) == pytest.approx(1.1920929e-07)
        assert eps_for(np.zeros(2)) == pytest.approx(2.220446e-16)


class TestSinglePrecisionQR:
    def test_house_f32(self, rng):
        x = rng.standard_normal(16).astype(np.float32)
        v, tau, beta = house(x)
        assert v.dtype == np.float32
        y = x - np.float32(tau) * v * np.float32(v @ x)
        assert abs(y[0] - beta) < 1e-5
        assert np.linalg.norm(y[1:]) < 1e-5

    def test_geqr2_f32(self, rng):
        A = rng.standard_normal((40, 10)).astype(np.float32)
        VR, tau = geqr2(A)
        assert VR.dtype == np.float32 and tau.dtype == np.float32
        Q = org2r(VR, tau)
        assert Q.dtype == np.float32
        assert orthogonality_error(Q) < F32_TOL

    @pytest.mark.parametrize("qr", [tsqr_qr, caqr_qr, blocked_qr])
    def test_factorizations_stay_f32(self, rng, qr):
        A = rng.standard_normal((300, 24)).astype(np.float32)
        Q, R = qr(A)
        assert Q.dtype == np.float32
        assert R.dtype == np.float32
        assert factorization_error(A, Q, R) < F32_TOL
        assert orthogonality_error(Q) < F32_TOL

    def test_apply_qt_preserves_f32(self, rng):
        A = rng.standard_normal((128, 8)).astype(np.float32)
        f = tsqr(A, block_rows=32)
        B = rng.standard_normal((128, 3)).astype(np.float32)
        out = f.apply_qt(B)
        assert out.dtype == np.float32

    def test_jacobi_svd_f32(self, rng):
        A = rng.standard_normal((30, 8)).astype(np.float32)
        U, s, Vt = jacobi_svd(A, tol=1e-7)
        assert U.dtype == np.float32 and s.dtype == np.float32
        assert np.allclose((U * s) @ Vt, A, atol=1e-4)

    def test_tall_skinny_svd_f32(self, rng):
        A = rng.standard_normal((200, 10)).astype(np.float32)
        U, s, Vt = tall_skinny_svd(A, svd_small=lambda R: jacobi_svd(R, tol=1e-7))
        s64 = np.linalg.svd(A.astype(np.float64), compute_uv=False)
        assert np.allclose(s, s64, rtol=1e-3, atol=1e-4)

    def test_f32_error_worse_than_f64_but_bounded(self, rng):
        A64 = rng.standard_normal((500, 16))
        A32 = A64.astype(np.float32)
        Q32, R32 = tsqr_qr(A32)
        Q64, R64 = tsqr_qr(A64)
        e32 = orthogonality_error(Q32)
        e64 = orthogonality_error(Q64)
        assert e64 < 1e-12
        assert e64 < e32 < F32_TOL

    def test_mixed_inputs_promote_to_f64(self, rng):
        A = rng.standard_normal((64, 4)).astype(np.float32)
        f = tsqr(A, block_rows=16)
        B64 = rng.standard_normal((64, 2))
        out = f.apply_qt(B64)
        assert out.dtype == np.float64
