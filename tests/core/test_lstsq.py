"""Tests for the QR-based least-squares solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lstsq import lstsq_caqr, lstsq_tsqr, residual_norm


class TestLstsq:
    @pytest.mark.parametrize("solver", [lstsq_tsqr, lstsq_caqr])
    def test_matches_numpy(self, rng, solver):
        A = rng.standard_normal((500, 15))
        b = rng.standard_normal(500)
        x = solver(A, b)
        x_np = np.linalg.lstsq(A, b, rcond=None)[0]
        assert np.allclose(x, x_np, atol=1e-9)

    @pytest.mark.parametrize("solver", [lstsq_tsqr, lstsq_caqr])
    def test_exact_solution_recovered(self, rng, solver):
        A = rng.standard_normal((200, 10))
        x_true = rng.standard_normal(10)
        b = A @ x_true
        x = solver(A, b)
        assert np.allclose(x, x_true, atol=1e-10)

    def test_multiple_rhs(self, rng):
        A = rng.standard_normal((100, 8))
        B = rng.standard_normal((100, 3))
        X = lstsq_tsqr(A, B)
        assert X.shape == (8, 3)
        X_np = np.linalg.lstsq(A, B, rcond=None)[0]
        assert np.allclose(X, X_np, atol=1e-9)

    def test_residual_orthogonal_to_range(self, rng):
        A = rng.standard_normal((80, 6))
        b = rng.standard_normal(80)
        x = lstsq_caqr(A, b, panel_width=4, block_rows=16)
        r = A @ x - b
        assert np.allclose(A.T @ r, 0.0, atol=1e-9)

    def test_residual_norm_helper(self, rng):
        A = rng.standard_normal((50, 4))
        x = np.zeros(4)
        b = rng.standard_normal(50)
        assert residual_norm(A, x, b) == pytest.approx(np.linalg.norm(b))

    def test_wide_rejected(self, rng):
        with pytest.raises(ValueError):
            lstsq_tsqr(rng.standard_normal((5, 10)), np.zeros(5))

    def test_polynomial_fit_regression(self, rng):
        # Realistic least-squares workload: fit a cubic through noisy data.
        t = np.linspace(-1, 1, 2000)
        A = np.vander(t, 4)
        coeffs = np.array([0.5, -1.0, 2.0, 3.0])
        b = A @ coeffs + 0.01 * rng.standard_normal(2000)
        x = lstsq_tsqr(A, b, block_rows=128)
        assert np.allclose(x, coeffs, atol=0.01)
