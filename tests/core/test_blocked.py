"""Unit tests for blocked (BLAS3) Householder QR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocked import blocked_qr, geqrf, larfb, larft, orgqr, ormqr
from repro.core.householder import extract_v, geqr2, org2r
from repro.core.validation import factorization_error, orthogonality_error


class TestLarft:
    def test_block_reflector_matches_product(self, rng):
        A = rng.standard_normal((12, 4))
        VR, tau = geqr2(A)
        V = extract_v(VR)
        T = larft(V, tau)
        Q_block = np.eye(12) - V @ T @ V.T
        Q_prod = org2r(VR, tau, n_cols=12)
        assert np.allclose(Q_block, Q_prod, atol=1e-12)

    def test_t_is_upper_triangular(self, rng):
        A = rng.standard_normal((10, 5))
        VR, tau = geqr2(A)
        T = larft(extract_v(VR), tau)
        assert np.allclose(np.tril(T, -1), 0.0)

    def test_zero_tau_entries_skipped(self):
        V = np.zeros((6, 2))
        V[0, 0] = 1.0
        V[1, 1] = 1.0
        T = larft(V, np.zeros(2))
        assert np.allclose(T, 0.0)

    def test_tau_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            larft(np.ones((4, 2)), np.zeros(3))


class TestLarfb:
    def test_transpose_matches_orm2r(self, rng):
        A = rng.standard_normal((14, 6))
        VR, tau = geqr2(A)
        V = extract_v(VR)
        T = larft(V, tau)
        C = rng.standard_normal((14, 8))
        from repro.core.householder import orm2r

        want = orm2r(VR, tau, C.copy(), transpose=True)
        got = larfb(V, T, C.copy(), transpose=True)
        assert np.allclose(got, want, atol=1e-12)

    def test_q_then_qt_roundtrip(self, rng):
        A = rng.standard_normal((16, 5))
        VR, tau = geqr2(A)
        V = extract_v(VR)
        T = larft(V, tau)
        C = rng.standard_normal((16, 3))
        out = larfb(V, T, C.copy(), transpose=True)
        out = larfb(V, T, out, transpose=False)
        assert np.allclose(out, C, atol=1e-12)


class TestGeqrf:
    @pytest.mark.parametrize("m,n,nb", [(40, 20, 8), (64, 64, 16), (100, 7, 3), (33, 17, 5), (20, 20, 64)])
    def test_reconstruction(self, rng, m, n, nb):
        A = rng.standard_normal((m, n))
        Q, R = blocked_qr(A, nb=nb)
        assert factorization_error(A, Q, R) < 1e-13
        assert orthogonality_error(Q) < 1e-13

    def test_matches_unblocked_r(self, rng):
        A = rng.standard_normal((30, 12))
        VRb, taub = geqrf(A, nb=4)
        VRu, tauu = geqr2(A)
        assert np.allclose(np.triu(VRb[:12]), np.triu(VRu[:12]), atol=1e-12)
        assert np.allclose(taub, tauu, atol=1e-12)

    def test_bad_nb_raises(self, rng):
        with pytest.raises(ValueError):
            geqrf(rng.standard_normal((4, 4)), nb=0)


class TestOrmqrOrgqr:
    def test_apply_qt_gives_r(self, rng):
        A = rng.standard_normal((24, 10))
        VR, tau = geqrf(A, nb=4)
        QtA = ormqr(VR, tau, A.copy(), transpose=True, nb=4)
        assert np.allclose(QtA[:10], np.triu(VR[:10]), atol=1e-12)
        assert np.allclose(QtA[10:], 0.0, atol=1e-12)

    def test_roundtrip(self, rng):
        A = rng.standard_normal((20, 8))
        VR, tau = geqrf(A, nb=3)
        C = rng.standard_normal((20, 5))
        out = ormqr(VR, tau, C.copy(), transpose=True, nb=3)
        out = ormqr(VR, tau, out, transpose=False, nb=3)
        assert np.allclose(out, C, atol=1e-12)

    def test_orgqr_orthonormal(self, rng):
        A = rng.standard_normal((50, 13))
        VR, tau = geqrf(A, nb=6)
        Q = orgqr(VR, tau, nb=6)
        assert Q.shape == (50, 13)
        assert orthogonality_error(Q) < 1e-13

    def test_row_mismatch(self, rng):
        VR, tau = geqrf(rng.standard_normal((10, 4)), nb=2)
        with pytest.raises(ValueError):
            ormqr(VR, tau, np.zeros((8, 1)))
