"""Tests of the structured stacked-triangle elimination (Figure 2(c))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.structured import (
    dense_tree_flops,
    structured_stack_qr,
    structured_tree_flops,
)
from repro.core.tsqr import tsqr, tsqr_qr
from repro.core.validation import (
    factorization_error,
    orthogonality_error,
    sign_canonical,
)


def triangles(rng, q, n, dtype=np.float64):
    return [np.triu(rng.standard_normal((n, n)).astype(dtype)) for _ in range(q)]


class TestStructuredStackQR:
    @pytest.mark.parametrize("q,n", [(2, 8), (4, 16), (8, 5), (3, 1)])
    def test_r_matches_dense_elimination(self, rng, q, n):
        rs = triangles(rng, q, n)
        f = structured_stack_qr(rs)
        dense = np.linalg.qr(np.vstack(rs), mode="r")[:n]
        assert np.allclose(np.abs(np.diag(f.R)), np.abs(np.diag(dense)), atol=1e-10)

    def test_q_reconstructs_stack(self, rng):
        rs = triangles(rng, 4, 10)
        f = structured_stack_qr(rs)
        # Apply Q to [R; 0]: must reproduce the original stack.
        E = np.vstack([f.R, np.zeros((f.total_rows - 10, 10))])
        got = f.apply_q(E)
        assert np.allclose(got, np.vstack(rs), atol=1e-11)

    def test_qt_annihilates_below_r(self, rng):
        rs = triangles(rng, 3, 7)
        f = structured_stack_qr(rs)
        out = f.apply_qt(np.vstack(rs))
        assert np.allclose(np.triu(out[:7]), f.R, atol=1e-11)
        assert np.linalg.norm(out[7:]) < 1e-10

    def test_qt_q_roundtrip(self, rng):
        rs = triangles(rng, 4, 6)
        f = structured_stack_qr(rs)
        B = rng.standard_normal((f.total_rows, 3))
        out = f.apply_q(f.apply_qt(B.copy()))
        assert np.allclose(out, B, atol=1e-11)

    def test_flop_savings_about_3x(self, rng):
        rs = triangles(rng, 4, 16)
        f = structured_stack_qr(rs)
        assert f.flops < 0.4 * dense_tree_flops(4, 16)
        assert f.flops == pytest.approx(structured_tree_flops(4, 16))

    def test_trapezoidal_members(self, rng):
        rs = [np.triu(rng.standard_normal((8, 8))), rng.standard_normal((3, 8))]
        rs[1] = np.triu(rs[1])
        f = structured_stack_qr(rs)
        dense = np.linalg.qr(np.vstack(rs), mode="r")[:8]
        assert np.allclose(np.abs(np.diag(f.R)), np.abs(np.diag(dense)), atol=1e-10)

    def test_reflector_support_is_sparse(self, rng):
        rs = triangles(rng, 4, 16)
        f = structured_stack_qr(rs)
        # Column 0's reflector touches only 1 + 3*1 = 4 rows.
        assert f.reflectors[0].rows.size == 4
        # Column 15's touches 1 + 3*16 = 49 rows (< 64 dense rows).
        assert f.reflectors[15].rows.size == 49

    def test_float32_preserved(self, rng):
        rs = triangles(rng, 2, 6, dtype=np.float32)
        f = structured_stack_qr(rs)
        assert f.R.dtype == np.float32

    def test_validation_errors(self, rng):
        with pytest.raises(ValueError):
            structured_stack_qr([])
        with pytest.raises(ValueError):
            structured_stack_qr([np.zeros((4, 4)), np.zeros((4, 5))])
        with pytest.raises(ValueError):
            # first R too short to carry the pivots
            structured_stack_qr([np.zeros((2, 5)), np.zeros((5, 5))])
        f = structured_stack_qr(triangles(rng, 2, 4))
        with pytest.raises(ValueError):
            f.apply_qt(np.zeros((3, 1)))


class TestStructuredTSQR:
    def test_same_factorization_as_dense(self, rng):
        A = rng.standard_normal((640, 16))
        Qs, Rs = tsqr_qr(A, block_rows=64, structured=True)
        Qd, Rd = tsqr_qr(A, block_rows=64, structured=False)
        _, Rsc = sign_canonical(Qs, Rs)
        _, Rdc = sign_canonical(Qd, Rd)
        assert np.allclose(Rsc, Rdc, atol=1e-10)
        assert orthogonality_error(Qs) < 1e-12
        assert factorization_error(A, Qs, Rs) < 1e-13

    def test_apply_qt_consistent(self, rng):
        A = rng.standard_normal((320, 8))
        fs = tsqr(A, block_rows=32, structured=True)
        fd = tsqr(A, block_rows=32, structured=False)
        B = rng.standard_normal((320, 4))
        # Q differs only by signs; Q^T Q = I for compositions of each.
        out = fs.apply_q(fs.apply_qt(B.copy()))
        assert np.allclose(out, B, atol=1e-11)
        assert np.allclose(np.abs(np.diag(fs.R)), np.abs(np.diag(fd.R)), atol=1e-10)

    @pytest.mark.parametrize("shape", ["binary", "quad", "binomial"])
    def test_all_tree_shapes(self, rng, shape):
        A = rng.standard_normal((500, 12))
        Q, R = tsqr_qr(A, block_rows=32, tree_shape=shape, structured=True)
        assert factorization_error(A, Q, R) < 1e-12

    def test_caqr_structured(self, rng):
        from repro.core.caqr import caqr_qr

        A = rng.standard_normal((200, 48))
        Q, R = caqr_qr(A, panel_width=16, block_rows=32, structured=True)
        assert factorization_error(A, Q, R) < 1e-12
        assert orthogonality_error(Q) < 1e-12


class TestStructuredCostModel:
    def test_structured_flops_formula(self):
        # q=4, n=16: ratio ~ 1/3.
        assert 0.25 <= structured_tree_flops(4, 16) / dense_tree_flops(4, 16) <= 0.4

    def test_simulated_caqr_faster_with_structured_tree(self):
        from repro.caqr_gpu import simulate_caqr
        from repro.kernels.config import REFERENCE_CONFIG

        dense = simulate_caqr(500_000, 192)
        struct = simulate_caqr(500_000, 192, REFERENCE_CONFIG.with_(structured_tree=True))
        assert struct.seconds < dense.seconds
        bd, bs = dense.breakdown(), struct.breakdown()
        assert bs["factor_tree"] < bd["factor_tree"]
        assert bs["apply_qt_tree"] < bd["apply_qt_tree"]
        # Non-tree kernels unchanged.
        assert bs["apply_qt_h"] == pytest.approx(bd["apply_qt_h"])
