"""Unit and integration tests for CAQR."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg

from repro.core.caqr import caqr, caqr_qr
from repro.core.blocked import blocked_qr
from repro.core.validation import (
    factorization_error,
    orthogonality_error,
    sign_canonical,
    triangularity_error,
)


class TestCAQRFactorization:
    @pytest.mark.parametrize(
        "m,n,pw,br",
        [
            (256, 64, 16, 64),  # paper-like grid
            (200, 50, 16, 64),  # ragged
            (128, 128, 16, 32),  # square
            (1000, 30, 8, 32),  # tall-skinny
            (64, 16, 16, 64),  # single panel
            (90, 25, 7, 13),  # nothing divides anything
        ],
    )
    @pytest.mark.parametrize("tree_shape", ["quad", "binomial"])
    def test_qr_quality(self, rng, m, n, pw, br, tree_shape):
        A = rng.standard_normal((m, n))
        Q, R = caqr_qr(A, panel_width=pw, block_rows=br, tree_shape=tree_shape)
        assert factorization_error(A, Q, R) < 1e-12
        assert orthogonality_error(Q) < 1e-12
        assert triangularity_error(R) == 0.0

    def test_r_matches_scipy_canonical(self, rng):
        A = rng.standard_normal((160, 48))
        Q, R = caqr_qr(A, panel_width=16, block_rows=32)
        R_sp = scipy.linalg.qr(A, mode="r")[0][:48]
        _, Rc = sign_canonical(Q, R)
        _, Rsp_c = sign_canonical(np.zeros((48, 48)), R_sp)
        assert np.allclose(Rc, Rsp_c, atol=1e-9)

    def test_matches_blocked_householder(self, rng):
        A = rng.standard_normal((120, 40))
        Qc, Rc = caqr_qr(A, panel_width=8, block_rows=24)
        Qb, Rb = blocked_qr(A, nb=8)
        _, Rc_ = sign_canonical(Qc, Rc)
        _, Rb_ = sign_canonical(Qb, Rb)
        assert np.allclose(Rc_, Rb_, atol=1e-10)

    def test_wide_matrix(self, rng):
        A = rng.standard_normal((40, 100))
        Q, R = caqr_qr(A, panel_width=8, block_rows=16)
        assert Q.shape == (40, 40)
        assert R.shape == (40, 100)
        assert factorization_error(A, Q, R) < 1e-12

    def test_panel_width_larger_than_n(self, rng):
        A = rng.standard_normal((100, 10))
        Q, R = caqr_qr(A, panel_width=64, block_rows=32)
        assert factorization_error(A, Q, R) < 1e-13

    def test_single_column(self, rng):
        A = rng.standard_normal((77, 1))
        Q, R = caqr_qr(A, panel_width=4, block_rows=16)
        assert abs(abs(R[0, 0]) - np.linalg.norm(A)) < 1e-12

    def test_rank_deficient(self, rng):
        B = rng.standard_normal((150, 5))
        A = B @ rng.standard_normal((5, 30))  # rank 5
        Q, R = caqr_qr(A, panel_width=8, block_rows=32)
        assert factorization_error(A, Q, R) < 1e-12
        # R's diagonal collapses after the rank.
        d = np.abs(np.diag(R))
        assert d[5:].max() < 1e-10 * d[0]

    def test_invalid_panel_width(self, rng):
        with pytest.raises(ValueError):
            caqr(rng.standard_normal((10, 10)), panel_width=0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            caqr(np.zeros(5))

    def test_input_unmodified(self, rng):
        A = rng.standard_normal((64, 32))
        A0 = A.copy()
        caqr(A, panel_width=16, block_rows=32)
        assert np.array_equal(A, A0)


class TestCAQRApply:
    def test_apply_qt_annihilates_below_r(self, rng):
        A = rng.standard_normal((96, 32))
        f = caqr(A, panel_width=16, block_rows=32)
        QtA = f.apply_qt(A.copy())
        assert np.allclose(np.triu(QtA[:32]), f.R, atol=1e-12)
        assert np.linalg.norm(QtA[32:]) < 1e-10
        assert np.linalg.norm(np.tril(QtA[:32], -1)) < 1e-10

    def test_roundtrip(self, rng):
        A = rng.standard_normal((128, 48))
        f = caqr(A, panel_width=16, block_rows=32)
        B = rng.standard_normal((128, 6))
        out = f.apply_q(f.apply_qt(B.copy()))
        assert np.allclose(out, B, atol=1e-12)

    def test_form_q_matches_apply(self, rng):
        A = rng.standard_normal((80, 20))
        f = caqr(A, panel_width=8, block_rows=16)
        Q = f.form_q()
        B = rng.standard_normal((20, 3))
        got = f.apply_q(np.vstack([B, np.zeros((60, 3))]))
        assert np.allclose(got, Q @ B, atol=1e-12)

    def test_row_mismatch_raises(self, rng):
        f = caqr(rng.standard_normal((32, 8)), panel_width=4, block_rows=8)
        with pytest.raises(ValueError):
            f.apply_q(np.zeros((31, 1)))

    def test_panel_count(self, rng):
        f = caqr(rng.standard_normal((128, 64)), panel_width=16, block_rows=64)
        assert len(f.panels) == 4
        assert [p.col_start for p in f.panels] == [0, 16, 32, 48]
        # Grid redrawn lower by the panel width each step.
        assert [p.row_start for p in f.panels] == [0, 16, 32, 48]
