"""Property-based tests (hypothesis) for the core factorizations.

Invariants exercised on randomized shapes, block configurations and data:

* QR backward error and orthogonality bounded by machine precision for
  every algorithm and configuration.
* R is invariant (up to column signs) across algorithms and tree shapes.
* Applying Q then Q^T is the identity.
* Tree schedules eliminate every block exactly once for any block count.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.caqr import caqr_qr
from repro.core.householder import extract_r, geqr2, house, org2r
from repro.core.tree import build_tree
from repro.core.tsqr import tsqr, tsqr_qr
from repro.core.validation import (
    factorization_error,
    orthogonality_error,
    sign_canonical,
)

# Moderate sizes keep the pure-NumPy factorizations fast under many examples.
dims = st.tuples(st.integers(4, 120), st.integers(1, 24)).filter(lambda t: t[0] >= t[1])


def _random_matrix(m: int, n: int, seed: int, scale_pow: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, n)) * (10.0**scale_pow)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 40), seed=st.integers(0, 2**31))
def test_house_always_annihilates(n, seed):
    x = np.random.default_rng(seed).standard_normal(n)
    v, tau, beta = house(x)
    y = x - tau * v * float(v @ x)
    assert abs(y[0] - beta) < 1e-10 * max(1.0, abs(beta))
    assert np.linalg.norm(y[1:]) < 1e-10 * max(1.0, np.linalg.norm(x))


@settings(max_examples=30, deadline=None)
@given(dims=dims, seed=st.integers(0, 2**31), scale=st.integers(-6, 6))
def test_geqr2_backward_stable_across_scales(dims, seed, scale):
    m, n = dims
    A = _random_matrix(m, n, seed, scale)
    VR, tau = geqr2(A)
    Q = org2r(VR, tau, n_cols=min(m, n))
    R = extract_r(VR)
    assert factorization_error(A, Q, R) < 1e-12
    assert orthogonality_error(Q) < 1e-12


@settings(max_examples=30, deadline=None)
@given(
    dims=dims,
    seed=st.integers(0, 2**31),
    block_rows=st.integers(2, 64),
    shape=st.sampled_from(["binary", "quad", "binomial", "flat"]),
)
def test_tsqr_invariants(dims, seed, block_rows, shape):
    m, n = dims
    A = _random_matrix(m, n, seed)
    Q, R = tsqr_qr(A, block_rows=block_rows, tree_shape=shape)
    assert factorization_error(A, Q, R) < 1e-11
    assert orthogonality_error(Q) < 1e-11
    assert np.allclose(np.tril(R, -1), 0.0)


@settings(max_examples=25, deadline=None)
@given(
    dims=dims,
    seed=st.integers(0, 2**31),
    pw=st.integers(1, 20),
    br=st.integers(4, 48),
)
def test_caqr_invariants(dims, seed, pw, br):
    m, n = dims
    A = _random_matrix(m, n, seed)
    Q, R = caqr_qr(A, panel_width=pw, block_rows=br)
    assert factorization_error(A, Q, R) < 1e-11
    assert orthogonality_error(Q) < 1e-11


@settings(max_examples=25, deadline=None)
@given(dims=dims, seed=st.integers(0, 2**31), br=st.integers(2, 40))
def test_tsqr_r_matches_numpy_up_to_signs(dims, seed, br):
    m, n = dims
    A = _random_matrix(m, n, seed)
    Q, R = tsqr_qr(A, block_rows=br)
    Q_np, R_np = np.linalg.qr(A)
    _, Rc = sign_canonical(Q, R)
    _, Rc_np = sign_canonical(Q_np, R_np)
    assert np.allclose(Rc, Rc_np, atol=1e-8 * max(1.0, np.linalg.norm(A)))


@settings(max_examples=25, deadline=None)
@given(dims=dims, seed=st.integers(0, 2**31), br=st.integers(2, 40), k=st.integers(1, 8))
def test_apply_q_qt_roundtrip(dims, seed, br, k):
    m, n = dims
    A = _random_matrix(m, n, seed)
    f = tsqr(A, block_rows=br)
    B = np.random.default_rng(seed + 1).standard_normal((m, k))
    out = f.apply_q(f.apply_qt(B.copy()))
    assert np.allclose(out, B, atol=1e-10)


@settings(max_examples=60, deadline=None)
@given(
    n_blocks=st.integers(0, 400),
    shape=st.sampled_from(["binary", "quad", "binomial", "flat", "arity:3", "arity:7"]),
)
def test_tree_schedule_always_valid(n_blocks, shape):
    sched = build_tree(n_blocks, shape)
    sched.validate()
    if n_blocks >= 1:
        assert sched.survivors() == [0]
    # The number of eliminations is exactly n_blocks - 1 survivors removed.
    eliminated = sum(len(g) - 1 for lvl in sched.levels for g in lvl)
    assert eliminated == max(0, n_blocks - 1)
