"""Tests for the Section II background algorithms and the stability story.

The paper's justification for the Householder approach: "Cholesky QR and
the Gram-Schmidt process are not as numerically stable".  These tests make
that claim concrete by comparing loss of orthogonality across condition
numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cholesky_qr import cholesky_qr, cholesky_qr2
from repro.core.givens import (
    apply_givens,
    eliminate_stacked_triangles,
    givens_coeffs,
    givens_qr,
)
from repro.core.gram_schmidt import (
    RankDeficiencyError,
    cgs2,
    classical_gram_schmidt,
    modified_gram_schmidt,
)
from repro.core.householder import geqr2, extract_r
from repro.core.tsqr import tsqr_qr
from repro.core.triangular import SingularTriangularError
from repro.core.validation import factorization_error, orthogonality_error


class TestGivens:
    def test_coeffs_annihilate(self):
        c, s = givens_coeffs(3.0, 4.0)
        assert abs(-s * 3.0 + c * 4.0) < 1e-14
        assert abs(c * 3.0 + s * 4.0 - 5.0) < 1e-14

    def test_coeffs_edge_cases(self):
        assert givens_coeffs(1.0, 0.0) == (1.0, 0.0)
        assert givens_coeffs(0.0, 1.0) == (0.0, 1.0)

    def test_coeffs_no_overflow(self):
        c, s = givens_coeffs(1e200, 1e200)
        assert np.isfinite(c) and np.isfinite(s)

    def test_apply_rotation_orthogonal(self, rng):
        M = rng.standard_normal((4, 6))
        M0 = M.copy()
        c, s = givens_coeffs(2.0, 1.0)
        apply_givens(M, 0, 2, c, s)
        # Norms of the two rows are preserved jointly.
        assert np.isclose(
            np.linalg.norm(M[[0, 2]]), np.linalg.norm(M0[[0, 2]])
        )

    @pytest.mark.parametrize("m,n", [(10, 10), (20, 6), (6, 9)])
    def test_givens_qr_quality(self, rng, m, n):
        A = rng.standard_normal((m, n))
        Q, R = givens_qr(A)
        assert factorization_error(A, Q, R) < 1e-13
        assert orthogonality_error(Q) < 1e-13

    def test_stacked_triangle_elimination(self, rng):
        n = 8
        R1 = np.triu(rng.standard_normal((n, n)))
        R2 = np.triu(rng.standard_normal((n, n)))
        R, rots = eliminate_stacked_triangles(R1, R2)
        # Must agree with a dense QR of the stack, up to signs.
        VR, _ = geqr2(np.vstack([R1, R2]))
        R_dense = extract_r(VR)
        assert np.allclose(np.abs(np.diag(R)), np.abs(np.diag(R_dense)), atol=1e-10)
        # Structured elimination needs only n(n+1)/2 rotations.
        assert len(rots) <= n * (n + 1) // 2

    def test_stacked_triangle_shape_check(self):
        with pytest.raises(ValueError):
            eliminate_stacked_triangles(np.zeros((3, 3)), np.zeros((4, 4)))


class TestGramSchmidt:
    @pytest.mark.parametrize("fn", [classical_gram_schmidt, modified_gram_schmidt, cgs2])
    def test_well_conditioned(self, rng, fn):
        A = rng.standard_normal((60, 12))
        Q, R = fn(A)
        assert factorization_error(A, Q, R) < 1e-13
        assert orthogonality_error(Q) < 1e-12

    @pytest.mark.parametrize("fn", [classical_gram_schmidt, modified_gram_schmidt, cgs2])
    def test_rank_deficiency_detected(self, rng, fn):
        col = rng.standard_normal((30, 1))
        A = np.hstack([col, col])
        with pytest.raises(RankDeficiencyError):
            fn(A)

    def test_r_upper_triangular(self, rng):
        _, R = modified_gram_schmidt(rng.standard_normal((20, 5)))
        assert np.allclose(np.tril(R, -1), 0.0)


class TestCholeskyQR:
    def test_well_conditioned(self, matrix_factory):
        A = matrix_factory(100, 10, cond=10.0)
        Q, R = cholesky_qr(A)
        assert factorization_error(A, Q, R) < 1e-12
        assert orthogonality_error(Q) < 1e-10

    def test_breaks_down_when_gram_is_indefinite(self, matrix_factory):
        # cond^2 = 1e16 >> 1/eps: Cholesky of A^T A must fail (or be junk).
        A = matrix_factory(100, 10, cond=1e9)
        with pytest.raises(SingularTriangularError):
            cholesky_qr(A)

    def test_requires_tall(self, rng):
        with pytest.raises(ValueError):
            cholesky_qr(rng.standard_normal((3, 5)))

    def test_cholqr2_fixes_moderate_conditioning(self, matrix_factory):
        A = matrix_factory(200, 8, cond=1e5)
        Q1, _ = cholesky_qr(A)
        Q2, R2 = cholesky_qr2(A)
        assert orthogonality_error(Q2) < 1e-13
        assert orthogonality_error(Q2) < orthogonality_error(Q1)
        assert factorization_error(A, Q2, R2) < 1e-12


class TestStabilityOrdering:
    """The Section II claim, quantified on an ill-conditioned matrix."""

    def test_householder_tsqr_beats_cgs_and_cholqr(self, matrix_factory):
        A = matrix_factory(300, 12, cond=1e6)
        err = {}
        Q, _ = tsqr_qr(A, block_rows=64)
        err["tsqr"] = orthogonality_error(Q)
        Q, _ = classical_gram_schmidt(A)
        err["cgs"] = orthogonality_error(Q)
        Q, _ = modified_gram_schmidt(A)
        err["mgs"] = orthogonality_error(Q)
        Q, _ = cholesky_qr(A)
        err["cholqr"] = orthogonality_error(Q)
        # Householder stays at machine precision.
        assert err["tsqr"] < 1e-12
        # CGS and CholeskyQR lose orthogonality dramatically (~cond^2 * eps).
        assert err["cgs"] > 1e3 * err["tsqr"]
        assert err["cholqr"] > 1e3 * err["tsqr"]
        # MGS sits in between (~cond * eps).
        assert err["tsqr"] <= err["mgs"] <= err["cholqr"] * 10
