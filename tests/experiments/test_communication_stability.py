"""Tests of the communication and stability studies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import communication, stability


class TestCommunication:
    @pytest.fixture(scope="class")
    def rows(self):
        return communication.run()

    def test_caqr_beats_blas2_by_order_of_magnitude(self, rows):
        for r in rows:
            if r.n <= 192:  # the tall-skinny regime
                assert r.blas2_vs_caqr > 8.0

    def test_caqr_beats_blocked_householder_when_skinny(self, rows):
        skinny = [r for r in rows if r.m // r.n >= 100]
        for r in skinny:
            assert r.blocked / r.caqr > 3.0

    def test_everything_above_lower_bound(self, rows):
        for r in rows:
            assert r.caqr > r.lower_bound
            assert r.blocked > r.lower_bound
            assert r.blas2 > r.lower_bound

    def test_caqr_within_constant_of_bound(self, rows):
        """CAQR is communication-*optimal*: a bounded constant above the
        Omega bound across sizes (the constant absorbs the paper's block
        sizes and the bound's dropped factors)."""
        ratios = [r.caqr_vs_bound for r in rows]
        assert max(ratios) < 200.0
        assert max(ratios) / min(ratios) < 5.0

    def test_blas2_words_formula(self):
        # n = 1: one column, 3 m words.
        assert communication.blas2_qr_words(100, 1) == 300.0

    def test_lower_bound_scales(self):
        lb1 = communication.qr_words_lower_bound(10_000, 64)
        lb2 = communication.qr_words_lower_bound(20_000, 64)
        assert lb2 == pytest.approx(2 * lb1)

    def test_format(self, rows):
        out = communication.format_results(rows)
        assert "lower bound" in out and "BLAS2/CAQR" in out


class TestStability:
    @pytest.fixture(scope="class")
    def rows(self):
        return stability.run(conds=(1e1, 1e6, 1e10), m=200, n=12)

    def test_householder_family_flat_in_cond(self, rows):
        """TSQR/CAQR/blocked/Givens stay at machine precision regardless
        of conditioning — the Section II selling point."""
        for r in rows:
            for alg in ("tsqr", "caqr", "blocked_hh", "givens"):
                assert r.errors[alg] < 1e-12

    def test_cgs_degrades_quadratically(self, rows):
        e = {r.cond: r.errors["cgs"] for r in rows}
        assert e[1e6] > 1e4 * e[1e1]

    def test_mgs_between_cgs_and_householder(self, rows):
        for r in rows[1:]:
            assert r.errors["tsqr"] <= r.errors["mgs"] <= max(r.errors["cgs"], 1e-10)

    def test_cholqr_breaks_down_eventually(self, rows):
        assert np.isinf(rows[-1].errors["cholqr"])

    def test_make_conditioned_hits_target(self):
        A = stability.make_conditioned(300, 10, 1e8)
        assert np.linalg.cond(A) == pytest.approx(1e8, rel=0.01)

    def test_single_precision_variant(self):
        rows32 = stability.run(conds=(1e1, 1e3), m=200, n=8, dtype=np.float32)
        for r in rows32:
            # float32 machine precision, not float64.
            assert r.errors["tsqr"] < 5e-5
            assert r.errors["tsqr"] > 1e-9

    def test_format(self, rows):
        out = stability.format_results(rows)
        assert "cholqr" in out and "breakdown" in out
