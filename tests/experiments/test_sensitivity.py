"""Tests of the hardware-sensitivity sweeps."""

from __future__ import annotations

import pytest

from repro.experiments.sensitivity import (
    dram_bandwidth_sweep,
    format_sweep,
    launch_overhead_sweep,
    pcie_latency_sweep,
)


class TestBandwidthSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return dram_bandwidth_sweep()

    def test_caqr_is_compute_bound(self, rows):
        """Doubling DRAM bandwidth moves CAQR by < 10%."""
        g = {r.value: r.caqr_gflops for r in rows}
        assert g[2.0] / g[1.0] < 1.10

    def test_blas2_is_bandwidth_bound(self, rows):
        """Doubling DRAM bandwidth nearly doubles the BLAS2 QR."""
        g = {r.value: r.baseline_gflops for r in rows}
        assert g[2.0] / g[1.0] > 1.8

    def test_monotone(self, rows):
        caqr = [r.caqr_gflops for r in rows]
        blas2 = [r.baseline_gflops for r in rows]
        assert caqr == sorted(caqr) and blas2 == sorted(blas2)


class TestPCIeLatencySweep:
    def test_caqr_insensitive(self):
        rows = pcie_latency_sweep()
        vals = {r.caqr_gflops for r in rows}
        assert len(vals) == 1  # GPU-only: never touches the link

    def test_hybrid_degrades(self):
        rows = pcie_latency_sweep()
        base = rows[0].baseline_gflops
        worst = rows[-1].baseline_gflops
        assert worst < 0.75 * base


class TestLaunchOverheadSweep:
    def test_small_matrix_dominated_by_launches(self):
        rows = launch_overhead_sweep()
        small = [r.caqr_gflops for r in rows]
        # 30x more launch overhead must slash small-matrix throughput.
        assert small[-1] < 0.3 * small[0]

    def test_big_matrix_nearly_immune(self):
        rows = launch_overhead_sweep()
        big = [r.baseline_gflops for r in rows]
        assert big[-1] > 0.9 * big[0]


class TestFormatting:
    def test_format(self):
        rows = launch_overhead_sweep(overheads_us=(2.0, 15.0))
        out = format_sweep(rows, "launch sweep")
        assert "launch sweep" in out and "CAQR GFLOPS" in out


class TestProjection:
    def test_advantage_widens_with_compute(self):
        from repro.experiments import projection

        rows = projection.run()
        speedups = [r.speedup_vs_best_lib for r in rows]
        assert all(s > speedups[0] for s in speedups[1:])

    def test_crossover_moves_right_or_vanishes(self):
        from repro.experiments import projection

        rows = projection.run()
        base_x = rows[0].crossover_width
        for r in rows[1:]:
            assert r.crossover_width is None or r.crossover_width > base_x

    def test_format(self):
        from repro.experiments import projection

        out = projection.format_results(projection.run(devices=projection.DEVICES[:2]))
        assert "crossover" in out
