"""Tests of the CSV exporters."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.export import (
    export_all,
    export_figure9,
    export_strategies,
    export_table1,
    export_table2,
)


def read_csv(path):
    with open(path) as fh:
        return list(csv.reader(fh))


class TestExport:
    def test_strategies_csv(self, tmp_path):
        p = export_strategies(tmp_path)
        rows = read_csv(p)
        assert rows[0] == ["strategy", "model_gflops", "paper_gflops"]
        assert len(rows) == 5  # header + 4 strategies
        assert float(rows[1][1]) > 0

    def test_figure9_csv_custom_widths(self, tmp_path):
        p = export_figure9(tmp_path, widths=(64, 1024))
        rows = read_csv(p)
        assert len(rows) == 3
        assert [r[0] for r in rows[1:]] == ["64", "1024"]

    def test_table1_includes_paper_columns(self, tmp_path):
        p = export_table1(tmp_path)
        rows = read_csv(p)
        assert "paper_caqr" in rows[0]
        assert len(rows) == 7  # header + 6 heights

    def test_table2_csv(self, tmp_path):
        p = export_table2(tmp_path)
        rows = read_csv(p)
        assert [r[0] for r in rows[1:]] == ["mkl_svd", "blas2_qr", "caqr"]

    def test_export_all_writes_four_files(self, tmp_path):
        paths = export_all(tmp_path)
        assert len(paths) == 4
        for p in paths:
            assert p.exists() and p.stat().st_size > 0

    def test_creates_nested_directory(self, tmp_path):
        p = export_strategies(tmp_path / "a" / "b")
        assert p.exists()
