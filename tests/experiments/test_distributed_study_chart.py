"""Tests of the distributed communication study and the ASCII chart."""

from __future__ import annotations

import pytest

from repro.experiments import ascii_chart, distributed_study


class TestDistributedStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return distributed_study.run(ps=(4, 16, 64), n=16, rows_per_rank=32)

    def test_tsqr_messages_log_p(self, rows):
        assert [r.tsqr_messages for r in rows] == [2, 4, 6]

    def test_householder_messages_2n_log_p(self, rows):
        for r in rows:
            assert r.hh_messages == 2 * r.n * r.tsqr_messages

    def test_speedup_grows_with_latency(self, rows):
        """The grid regime (ms latencies) rewards fewer messages most."""
        for r in rows:
            names = [n for n, _, _ in distributed_study.NETWORKS]
            s = [r.network_speedups[n] for n in names]
            assert s[0] < s[1] <= s[2]

    def test_speedup_order_of_magnitude(self, rows):
        for r in rows:
            assert min(r.network_speedups.values()) > 10.0

    def test_format(self, rows):
        out = distributed_study.format_results(rows)
        assert "TSQR msgs" in out and "grid" in out


class TestAsciiChart:
    def test_renders_all_series(self):
        out = ascii_chart([1, 2, 4, 8], {"a": [1, 2, 3, 4], "b": [4, 3, 2, 1]}, width=20, height=8)
        assert "* a" in out and "o b" in out
        assert "*" in out and "o" in out

    def test_log_x(self):
        out = ascii_chart([10, 100, 1000], {"s": [1.0, 2.0, 3.0]}, logx=True, width=21, height=5)
        lines = [l for l in out.splitlines() if "|" in l]
        # Log spacing: the middle point lands midway, not near the right.
        mid_cols = [l.index("*") for l in lines if "*" in l]
        assert any(8 <= c - 12 <= 12 for c in mid_cols)

    def test_title_and_axis(self):
        out = ascii_chart([0, 1], {"x": [0.0, 1.0]}, title="T", width=10, height=4)
        assert out.startswith("T")
        assert "+" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]}, width=10, height=4)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {}, width=10, height=4)

    def test_constant_series_no_crash(self):
        out = ascii_chart([1, 2, 3], {"c": [5.0, 5.0, 5.0]}, width=12, height=4)
        assert "c" in out
