"""Tests of the experiment drivers — the paper's shape criteria.

These are the headline assertions of the reproduction (see DESIGN.md
section 4): who wins, by roughly what factor, and where the crossovers
fall.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablations,
    figure7,
    figure8,
    figure9,
    strategies_table,
    table1,
    table2,
)


class TestStrategiesTable:
    def test_rows_cover_all_strategies(self):
        rows = strategies_table.run()
        assert [r.strategy for r in rows] == list(strategies_table.PAPER_STRATEGY_GFLOPS)

    def test_all_ratios_in_band(self):
        for r in strategies_table.run():
            assert 0.7 <= r.ratio <= 1.3

    def test_format_mentions_paper(self):
        out = strategies_table.format_results(strategies_table.run())
        assert "paper GFLOPS" in out and "regfile_transpose" in out


class TestFigure7:
    def test_best_is_128x16_class(self):
        res = figure7.run()
        e = res.entry(128, 16)
        assert e is not None
        assert e.gflops >= 0.95 * res.best.gflops

    def test_model_near_388_at_optimum(self):
        res = figure7.run()
        e = res.entry(128, 16)
        assert 0.7 * 388 <= e.gflops <= 1.3 * 388

    def test_format(self):
        out = figure7.format_results(figure7.run())
        assert "128 x 16" in out


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(heights=(8192, 65_536), widths=(64, 192, 1024, 4096, 8192))

    def test_tall_skinny_speedups_large(self, result):
        skinny = [p for p in result.points if p.width == 64]
        assert all(p.speedup_vs_best > 3.0 for p in skinny)

    def test_square_matrices_lose(self, result):
        square = next(p for p in result.points if p.height == 8192 and p.width == 8192)
        assert square.speedup_vs_best < 1.0

    def test_crossover_frontier_found(self, result):
        frontier = result.crossover_frontier()
        assert frontier[8192] is not None
        assert 1024 <= frontier[8192] <= 8192

    def test_max_speedups_order_of_magnitude(self, result):
        s = result.max_speedups()
        assert s["vs_magma"] > 8.0
        assert s["vs_cula"] > 8.0
        assert s["vs_mkl"] > 8.0

    def test_wide_points_excluded(self, result):
        assert all(p.width <= p.height for p in result.points)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return figure9.run(widths=(64, 512, 1024, 2048, 3072, 4096, 6144, 8192))

    def test_crossover_near_4000(self, result):
        """Paper: 'around 4000 columns'; band 2500-6000."""
        x = result.crossover_width()
        assert x is not None
        assert 2500 <= x <= 6000

    def test_caqr_monotone_rising(self, result):
        caqr = [r.caqr for r in result.rows]
        assert caqr == sorted(caqr)

    def test_caqr_best_left_of_crossover(self, result):
        x = result.crossover_width()
        for row in result.rows:
            if row.width < 0.8 * x:
                assert row.caqr > row.best_library

    def test_magma_wins_at_square(self, result):
        last = result.rows[-1]
        assert last.magma > last.caqr
        assert last.magma > 300.0  # gemm-rich regime

    def test_format(self, result):
        out = figure9.format_results(result)
        assert "crossover" in out


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1.run()

    def test_caqr_wins_everywhere(self, rows):
        for r in rows:
            assert r.caqr > r.magma and r.caqr > r.cula and r.caqr > r.mkl

    def test_extreme_speedup_over_gpu_libs(self, rows):
        """Paper: 'up to 17x speedups vs GPU libraries' at 1M x 192."""
        last = next(r for r in rows if r.height == 1_000_000)
        assert last.caqr / last.magma > 10.0

    def test_speedup_vs_mkl_about_10x(self, rows):
        last = next(r for r in rows if r.height == 1_000_000)
        assert 6.0 <= last.speedup_vs_mkl <= 18.0

    def test_caqr_saturates(self, rows):
        caqr = [r.caqr for r in rows]
        assert caqr == sorted(caqr)
        assert caqr[-1] < 1.1 * caqr[-2]

    def test_every_entry_in_band(self, rows):
        for r in rows:
            paper = table1.PAPER_TABLE1[r.height]
            assert 0.6 * paper[0] <= r.caqr <= 1.4 * paper[0]

    def test_format(self, rows):
        out = table1.format_results(rows)
        assert "1M x 192" in out and "paper" in out


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2.run()

    def test_all_engines_in_band(self, rows):
        for r in rows:
            assert 0.65 <= r.ratio <= 1.35

    def test_speedups(self, rows):
        s = table2.speedups(rows)
        assert 2.0 <= s["caqr_vs_blas2"] <= 4.5
        assert 15.0 <= s["caqr_vs_mkl"] <= 45.0

    def test_format(self, rows):
        out = table2.format_results(rows)
        assert "paper ~3x" in out


class TestAblations:
    def test_tree_shape_rows(self):
        rows = ablations.tree_shape_ablation(m=100_000)
        assert len(rows) == 4
        assert all(r.gflops > 0 for r in rows)

    def test_transpose_preprocessing_wins(self):
        """The Section IV-E.4 claim: the out-of-place transpose pays off."""
        on, off = ablations.transpose_ablation(m=500_000)
        assert on.gflops > off.gflops

    def test_panel_width_sweep(self):
        rows = ablations.panel_width_ablation(m=100_000)
        assert {8, 16, 32} == {int(r.label.split()[-1]) for r in rows}

    def test_strategy_ablation_ordering(self):
        rows = ablations.strategy_ablation(m=100_000)
        by = {r.label.split()[-1]: r.gflops for r in rows}
        assert by["regfile_transpose"] > by["smem_serial"] > by["smem_parallel"]

    def test_gpu_only_beats_hybrid_when_skinny(self):
        """Section III: transfer latency hurts skinny problems, so the
        paper chose the GPU-only mapping."""
        rows = ablations.hybrid_panel_ablation(heights=(10_000, 1_000_000))
        pairs = {}
        for r in rows:
            kind, h = r.label.split()[0], r.m
            pairs.setdefault(h, {})[kind] = r.gflops
        for h, d in pairs.items():
            assert d["GPU-only"] > d["hybrid"], f"hybrid must lose at h={h}"

    def test_format_rows(self):
        rows = ablations.panel_width_ablation(m=50_000)
        out = ablations.format_rows(rows, "panel width")
        assert "panel width" in out
