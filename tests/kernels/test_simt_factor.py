"""Tests of the thread-level ``factor`` kernel (and its compositions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.householder import geqr2, orm2r
from repro.kernels.simt import simt_apply_qt_h
from repro.kernels.simt_factor import simt_factor


class TestSimtFactor:
    @pytest.mark.parametrize("mb,nb,T", [(64, 16, 64), (128, 16, 64), (32, 8, 32), (16, 4, 16), (128, 8, 64)])
    def test_matches_geqr2_exactly(self, rng, mb, nb, T):
        A = rng.standard_normal((mb, nb))
        VR_ref, tau_ref = geqr2(A)
        VR, tau, _ = simt_factor(A, threads=T)
        assert np.allclose(VR, VR_ref, atol=1e-12)
        assert np.allclose(tau, tau_ref, atol=1e-12)

    def test_measured_flops_near_2mn2(self, rng):
        A = rng.standard_normal((128, 16))
        _, _, ctr = simt_factor(A)
        assert ctr.flops == pytest.approx(2 * 128 * 16 * 16, rel=0.1)

    def test_zero_column_handled(self, rng):
        A = rng.standard_normal((32, 8))
        A[:, 2] = 0.0
        A[2:, 2] = 0.0  # fully zero below too
        VR_ref, tau_ref = geqr2(A)
        VR, tau, _ = simt_factor(A, threads=32)
        assert np.allclose(VR, VR_ref, atol=1e-12)
        assert np.allclose(tau, tau_ref, atol=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            simt_factor(np.zeros((0, 4)))

    def test_factor_tree_composition(self, rng):
        """factor_tree == simt_factor on a stack of triangles."""
        rs = [np.triu(rng.standard_normal((16, 16))) for _ in range(4)]
        stacked = np.vstack(rs)  # 64 x 16 — one tree block
        VR_ref, tau_ref = geqr2(stacked)
        VR, tau, ctr = simt_factor(stacked, threads=64)
        assert np.allclose(VR, VR_ref, atol=1e-12)
        assert ctr.flops > 0

    def test_full_tsqr_panel_from_simt_kernels(self, rng):
        """A complete one-panel TSQR built only from the two SIMT kernels:
        factor the blocks, eliminate the stacked Rs, apply the tree factor
        to the stacked R rows — R must match a dense QR."""
        A = rng.standard_normal((128, 16))
        top, bot = A[:64], A[64:]
        VR1, tau1, _ = simt_factor(top)
        VR2, tau2, _ = simt_factor(bot)
        R1, R2 = np.triu(VR1[:16]), np.triu(VR2[:16])
        stacked = np.vstack([R1, R2])
        VRt, taut, _ = simt_factor(stacked, threads=32)
        R_final = np.triu(VRt[:16])
        R_dense = np.triu(np.linalg.qr(A, mode="r"))
        assert np.allclose(np.abs(np.diag(R_final)), np.abs(np.diag(R_dense)), atol=1e-10)

    def test_apply_after_factor_roundtrip(self, rng):
        """simt_factor + simt_apply_qt_h compose like geqr2 + orm2r."""
        A = rng.standard_normal((64, 16))
        VR, tau, _ = simt_factor(A)
        tile = rng.standard_normal((64, 16))
        got, _ = simt_apply_qt_h(VR, tau, tile)
        want = orm2r(VR, tau, tile.copy(), transpose=True)
        assert np.allclose(got, want, atol=1e-12)
