"""Tests of the SIMT block machine and the thread-level apply_qt_h.

These make the "execution-driven" claim concrete: the thread-level
kernel must reproduce the reference numerics exactly, and its *measured*
counters must match the analytic cost model's predictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.householder import geqr2, orm2r
from repro.gpusim.block_machine import BlockCounters, BlockMachine, SharedMemory
from repro.gpusim.device import C2050
from repro.kernels.simt import cyclic_layout, simt_apply_qt_h
from repro.kernels.strategies import strategy_block_cost


class TestSharedMemory:
    def test_read_write_roundtrip(self):
        c = BlockCounters()
        sm = SharedMemory(64, c)
        addrs = np.arange(32)
        sm.write(addrs, np.arange(32.0))
        assert np.array_equal(sm.read(addrs), np.arange(32.0))
        assert c.smem_write_transactions == 1
        assert c.smem_read_transactions == 1

    def test_two_warps_two_transactions(self):
        c = BlockCounters()
        sm = SharedMemory(128, c)
        sm.read(np.arange(64))
        assert c.smem_read_transactions == 2

    def test_bulk_load_counts_strided(self):
        c = BlockCounters()
        sm = SharedMemory(128, c)
        sm.load_bulk(np.ones(128))
        assert c.smem_write_transactions == 4
        assert np.all(sm.data == 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SharedMemory(-1, BlockCounters())


class TestBlockMachine:
    def test_register_allocation(self):
        m = BlockMachine(threads=64, smem_words=16)
        r = m.alloc_registers(8)
        assert r.shape == (64, 8)

    def test_counters_accumulate(self):
        m = BlockMachine(threads=32, smem_words=8)
        m.fma(10)
        m.flop(5)
        m.syncthreads()
        assert m.counters.flops == 25.0
        assert m.counters.syncthreads == 1


class TestCyclicLayout:
    def test_figure6_properties(self):
        rows, cols, owned = cyclic_layout(128, 16, 64)
        assert owned == 32
        # Every thread's data belongs to a single column.
        assert rows.shape == (64, 32)
        assert len(set(cols.tolist())) == 16
        # The layout covers every (row, col) exactly once.
        seen = set()
        for t in range(64):
            for k in range(owned):
                seen.add((int(rows[t, k]), int(cols[t])))
        assert len(seen) == 128 * 16

    def test_threads_per_column(self):
        rows, cols, owned = cyclic_layout(128, 16, 64)
        per_col = np.bincount(cols)
        assert np.all(per_col == 4)

    def test_invalid_layouts_rejected(self):
        with pytest.raises(ValueError):
            cyclic_layout(128, 10, 64)  # 64 not multiple of 10
        with pytest.raises(ValueError):
            cyclic_layout(10, 16, 64)  # 10 not multiple of tpc=4


class TestSimtApplyQtH:
    @pytest.mark.parametrize("mb,nb,tw,threads", [(128, 16, 16, 64), (64, 16, 16, 64), (32, 8, 8, 32), (128, 8, 16, 64)])
    def test_matches_orm2r(self, rng, mb, nb, tw, threads):
        VR, tau = geqr2(rng.standard_normal((mb, nb)))
        tile = rng.standard_normal((mb, tw))
        ref = orm2r(VR, tau, tile.copy(), transpose=True)
        out, _ = simt_apply_qt_h(VR, tau, tile, threads=threads)
        assert np.allclose(out, ref, atol=1e-12)

    def test_measured_flops_close_to_analytic(self, rng):
        VR, tau = geqr2(rng.standard_normal((128, 16)))
        out, ctr = simt_apply_qt_h(VR, tau, rng.standard_normal((128, 16)))
        assert ctr.flops == pytest.approx(4 * 128 * 16 * 16, rel=0.02)

    def test_measured_smem_matches_cost_model(self, rng):
        """The analytic transaction count is validated by execution."""
        VR, tau = geqr2(rng.standard_normal((128, 16)))
        out, ctr = simt_apply_qt_h(VR, tau, rng.standard_normal((128, 16)))
        cost = strategy_block_cost("regfile_transpose", 128, 16, C2050)
        assert ctr.smem_transactions == pytest.approx(cost.smem_transactions, rel=0.05)

    def test_sync_count_scales_with_reflectors(self, rng):
        VR, tau = geqr2(rng.standard_normal((64, 8)))
        _, ctr = simt_apply_qt_h(VR, tau, rng.standard_normal((64, 8)))
        assert ctr.syncthreads == 4 * 8  # 4 barriers per reflector

    def test_zero_tau_skipped(self, rng):
        VR = np.zeros((32, 4))
        tau = np.zeros(4)
        tile = rng.standard_normal((32, 4))
        out, ctr = simt_apply_qt_h(VR, tau, tile)
        assert np.array_equal(out, tile)
        assert ctr.flops == 0.0

    def test_row_mismatch_rejected(self, rng):
        VR, tau = geqr2(rng.standard_normal((32, 4)))
        with pytest.raises(ValueError):
            simt_apply_qt_h(VR, tau, rng.standard_normal((16, 4)))
