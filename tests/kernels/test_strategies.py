"""Calibration tests of the Section IV-E strategy micro-models.

These pin the reproduction's central numbers: the four approaches must
land in the paper's order with ratios inside the +-30% band, and the
mechanism (what limits each strategy) must be the one the paper gives.
"""

from __future__ import annotations

import pytest

from repro.gpusim.device import C2050, GTX480
from repro.kernels.strategies import (
    PAPER_STRATEGY_GFLOPS,
    STRATEGIES,
    strategy_block_cost,
    strategy_gflops,
)


class TestCalibration:
    @pytest.mark.parametrize("name", STRATEGIES)
    def test_within_band_of_paper(self, name):
        model = strategy_gflops(name, 128, 16, C2050)
        paper = PAPER_STRATEGY_GFLOPS[name]
        assert 0.7 * paper <= model <= 1.3 * paper, f"{name}: {model} vs {paper}"

    def test_strict_ordering(self):
        vals = [strategy_gflops(s, 128, 16, C2050) for s in STRATEGIES]
        assert vals == sorted(vals), "55 < 168 < 194 < 388 ordering must hold"

    def test_tuning_span_7x(self):
        """Section IV-G: 'from 55 GFLOPS to 388 GFLOPS' — a ~7x span."""
        lo = strategy_gflops("smem_parallel", 128, 16, C2050)
        hi = strategy_gflops("regfile_transpose", 128, 16, C2050)
        assert 5.0 <= hi / lo <= 10.0

    def test_transpose_doubles_register_strategy(self):
        """Approach 4 vs 3 is ~2x — coalescing, not extra arithmetic."""
        s3 = strategy_gflops("regfile_serial", 128, 16, C2050)
        s4 = strategy_gflops("regfile_transpose", 128, 16, C2050)
        assert 1.6 <= s4 / s3 <= 2.6


class TestMechanisms:
    def test_regfile_serial_is_memory_bound(self):
        """Strategy 3's limiter is uncoalesced global bandwidth."""
        cost = strategy_block_cost("regfile_serial", 128, 16, C2050)
        assert cost.bw_efficiency == C2050.uncoalesced_bw_eff
        # Its compute rate alone would match strategy 4's.
        c4 = strategy_block_cost("regfile_transpose", 128, 16, C2050)
        assert cost.cycles == pytest.approx(c4.cycles)

    def test_smem_strategies_have_more_smem_traffic(self):
        smem = strategy_block_cost("smem_serial", 128, 16, C2050)
        reg = strategy_block_cost("regfile_transpose", 128, 16, C2050)
        # The register-file strategy keeps the matrix out of shared
        # memory entirely; only u reads/partials remain.
        assert smem.smem_transactions > 1.5 * reg.smem_transactions

    def test_parallel_reduction_uses_one_thread_per_row(self):
        cost = strategy_block_cost("smem_parallel", 128, 16, C2050)
        assert cost.threads == 128

    def test_flop_count_is_4mnw(self):
        cost = strategy_block_cost("regfile_transpose", 128, 16, C2050)
        assert cost.flops == 4.0 * 128 * 16 * 16

    def test_trailing_width_scales_flops(self):
        c1 = strategy_block_cost("regfile_transpose", 128, 16, C2050, trailing_width=16)
        c2 = strategy_block_cost("regfile_transpose", 128, 16, C2050, trailing_width=32)
        assert c2.flops == 2 * c1.flops
        assert c2.cycles > c1.cycles

    def test_n_vectors_scales_linearly(self):
        c1 = strategy_block_cost("regfile_transpose", 128, 16, C2050, n_vectors=1)
        c16 = strategy_block_cost("regfile_transpose", 128, 16, C2050, n_vectors=16)
        assert c16.cycles == pytest.approx(16 * c1.cycles)


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            strategy_block_cost("magic", 128, 16, C2050)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            strategy_block_cost("smem_serial", 0, 16, C2050)

    def test_gtx480_scales_with_clock_and_sms(self):
        c = strategy_gflops("regfile_transpose", 128, 16, C2050)
        g = strategy_gflops("regfile_transpose", 128, 16, GTX480)
        expected = (GTX480.n_sm * GTX480.clock_ghz) / (C2050.n_sm * C2050.clock_ghz)
        assert g / c == pytest.approx(expected, rel=0.02)

    def test_narrow_blocks_become_memory_bound(self):
        """Section IV-F: arithmetic intensity ~ width/3 — narrow blocks
        can't stay compute-bound even with perfect kernels."""
        narrow = strategy_gflops("regfile_transpose", 128, 4, C2050)
        wide = strategy_gflops("regfile_transpose", 128, 16, C2050)
        assert narrow < wide
        ai = 4.0 * 4 / 12.0  # flops/byte at width 4
        assert narrow <= ai * C2050.dram_bw_gbs * 1.001
