"""Tests of the four kernels' numerical behavior (Section IV-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.householder import extract_r, geqr2, orm2r
from repro.kernels.apply_qt_h import apply_qt_h_block
from repro.kernels.apply_qt_tree import apply_qt_tree_block
from repro.kernels.factor import factor_block
from repro.kernels.factor_tree import factor_tree_block
from repro.kernels.layouts import (
    from_transposed_panel,
    panel_is_transposable,
    to_transposed_panel,
)


class TestFactor:
    def test_packed_output_reconstructs(self, rng):
        A = rng.standard_normal((64, 16))
        VR, tau, R = factor_block(A)
        Q = orm2r(VR, tau, np.eye(64), transpose=False)
        assert np.allclose(Q[:, :16] @ R, A, atol=1e-12)

    def test_r_upper_triangular(self, rng):
        _, _, R = factor_block(rng.standard_normal((128, 16)))
        assert R.shape == (16, 16)
        assert np.allclose(np.tril(R, -1), 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            factor_block(np.zeros((0, 4)))


class TestFactorTree:
    def test_stacked_elimination_matches_dense(self, rng):
        rs = [np.triu(rng.standard_normal((16, 16))) for _ in range(4)]
        VR, tau, R_new, heights = factor_tree_block(rs)
        assert heights == (16, 16, 16, 16)
        dense_R = extract_r(geqr2(np.vstack(rs))[0])
        assert np.allclose(np.abs(np.diag(R_new)), np.abs(np.diag(dense_R)), atol=1e-10)

    def test_unequal_heights(self, rng):
        rs = [np.triu(rng.standard_normal((8, 8))), rng.standard_normal((3, 8))]
        VR, tau, R_new, heights = factor_tree_block(rs)
        assert heights == (8, 3)
        assert R_new.shape == (8, 8)

    def test_column_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            factor_tree_block([np.zeros((4, 4)), np.zeros((4, 5))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            factor_tree_block([])


class TestApplyQtH:
    def test_matches_orm2r(self, rng):
        A = rng.standard_normal((64, 16))
        VR, tau, _ = factor_block(A)
        tile = rng.standard_normal((64, 16))
        expected = orm2r(VR, tau, tile.copy(), transpose=True)
        got = apply_qt_h_block(VR, tau, tile.copy())
        assert np.allclose(got, expected, atol=1e-13)

    def test_applied_to_own_panel_gives_r(self, rng):
        A = rng.standard_normal((64, 16))
        VR, tau, R = factor_block(A)
        out = apply_qt_h_block(VR, tau, A.copy())
        assert np.allclose(out[:16], R, atol=1e-12)

    def test_row_mismatch_rejected(self, rng):
        VR, tau, _ = factor_block(rng.standard_normal((32, 8)))
        with pytest.raises(ValueError):
            apply_qt_h_block(VR, tau, np.zeros((16, 8)))


class TestApplyQtTree:
    def test_gather_apply_scatter_roundtrip(self, rng):
        rs = [np.triu(rng.standard_normal((16, 16))) for _ in range(2)]
        VR, tau, _, heights = factor_tree_block(rs)
        pieces = [rng.standard_normal((h, 5)) for h in heights]
        updated = apply_qt_tree_block(VR, tau, pieces)
        # Cross-check against a dense application to the stack.
        stacked = np.vstack([p.copy() for p in pieces])
        orm2r(VR, tau, stacked, transpose=True)
        assert np.allclose(np.vstack(updated), stacked, atol=1e-13)
        assert [u.shape for u in updated] == [p.shape for p in pieces]

    def test_height_mismatch_rejected(self, rng):
        rs = [np.triu(rng.standard_normal((8, 8))) for _ in range(2)]
        VR, tau, _, _ = factor_tree_block(rs)
        with pytest.raises(ValueError):
            apply_qt_tree_block(VR, tau, [np.zeros((8, 2))])

    def test_empty_pieces_rejected(self, rng):
        rs = [np.triu(rng.standard_normal((4, 4))) for _ in range(2)]
        VR, tau, _, _ = factor_tree_block(rs)
        with pytest.raises(ValueError):
            apply_qt_tree_block(VR, tau, [])


class TestLayouts:
    def test_roundtrip(self, rng):
        P = rng.standard_normal((96, 16))
        T = to_transposed_panel(P)
        assert T.shape == (16, 96)
        assert T.flags["C_CONTIGUOUS"]
        back = from_transposed_panel(T)
        assert np.array_equal(back, P)

    def test_always_out_of_place(self, rng):
        P = rng.standard_normal((8, 8))
        T = to_transposed_panel(P)
        assert T.base is None or T.base is not P

    def test_transposable_only_square(self):
        assert panel_is_transposable(16, 16)
        assert not panel_is_transposable(128, 16)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            to_transposed_panel(np.zeros(4))
        with pytest.raises(ValueError):
            from_transposed_panel(np.zeros(4))
