"""Tests of the analytic kernel launch costs."""

from __future__ import annotations

import pytest

from repro.gpusim.device import C2050
from repro.gpusim.launch import occupancy_blocks_per_sm, time_launch
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig
from repro.kernels.costs import (
    apply_qt_h_launch,
    apply_qt_tree_launch,
    factor_launch,
    factor_tree_launch,
    transpose_launch,
)

CFG = REFERENCE_CONFIG
DEV = C2050


class TestConfig:
    def test_reference_matches_paper_tuning(self):
        assert CFG.block_rows == 128 and CFG.panel_width == 16
        assert CFG.threads == 64
        assert CFG.strategy == "regfile_transpose"

    def test_quad_tree_for_64x16(self):
        cfg = KernelConfig(block_rows=64, panel_width=16)
        assert cfg.tree_arity == 4
        assert cfg.tree_shape == "arity:4"

    def test_arity_floor_two(self):
        cfg = KernelConfig(block_rows=16, panel_width=16)
        assert cfg.tree_arity == 2

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            KernelConfig(block_rows=8, panel_width=16)
        with pytest.raises(ValueError):
            KernelConfig(block_rows=0)
        with pytest.raises(ValueError):
            KernelConfig(threads=0)

    def test_with_returns_copy(self):
        cfg = CFG.with_(panel_width=8)
        assert cfg.panel_width == 8 and CFG.panel_width == 16


class TestFactorLaunch:
    def test_flops_are_qr_flops(self):
        spec = factor_launch(10, 128, 16, CFG, DEV)
        assert spec.flops_per_block == pytest.approx(2 * 128 * 256 - 2 * 16**3 / 3)

    def test_reads_and_writes_block(self):
        spec = factor_launch(1, 128, 16, CFG, DEV)
        assert spec.read_bytes_per_block == 128 * 16 * 4
        assert spec.write_bytes_per_block == 128 * 16 * 4 + 16 * 4

    def test_slower_than_apply_per_flop(self):
        """Sequential column dependencies make factor less efficient."""
        f = factor_launch(1, 128, 16, CFG, DEV)
        a = apply_qt_h_launch(1, 128, 16, 16, CFG, DEV)
        assert f.cycles_per_block / f.flops_per_block > a.cycles_per_block / a.flops_per_block

    def test_fits_on_sm(self):
        spec = factor_launch(100, 128, 16, CFG, DEV)
        assert occupancy_blocks_per_sm(spec, DEV) >= 1


class TestTreeLaunches:
    def test_factor_tree_reads_triangles_only(self):
        spec = factor_tree_launch(5, 4, 16, CFG, DEV)
        assert spec.read_bytes_per_block == pytest.approx(4 * (16 * 17 / 2) * 4)

    def test_tree_kernels_pay_gather_efficiency(self):
        ft = factor_tree_launch(1, 4, 16, CFG, DEV)
        at = apply_qt_tree_launch(1, 4, 16, 16, CFG, DEV)
        assert ft.bw_efficiency == DEV.gather_bw_eff
        assert at.bw_efficiency <= DEV.gather_bw_eff

    def test_apply_tree_slower_than_apply_h_same_shape(self):
        """Gather/scatter latency makes the tree update less efficient
        than the horizontal update on equivalent work."""
        h = apply_qt_h_launch(1, 64, 16, 16, CFG, DEV)
        t = apply_qt_tree_launch(1, 4, 16, 16, CFG, DEV)  # 4*16 = 64 rows
        assert t.flops_per_block == h.flops_per_block
        assert t.cycles_per_block > h.cycles_per_block


class TestApplyLaunch:
    def test_traffic_counts_tile_and_v(self):
        spec = apply_qt_h_launch(1, 128, 16, 16, CFG, DEV)
        assert spec.read_bytes_per_block == (128 * 16 + 128 * 16) * 4
        assert spec.write_bytes_per_block == 128 * 16 * 4

    def test_wider_tile_more_flops(self):
        a16 = apply_qt_h_launch(1, 128, 16, 16, CFG, DEV)
        a64 = apply_qt_h_launch(1, 128, 16, 64, CFG, DEV)
        assert a64.flops_per_block == 4 * a16.flops_per_block

    def test_wider_tile_lower_occupancy(self):
        a16 = apply_qt_h_launch(1, 128, 16, 16, CFG, DEV)
        a64 = apply_qt_h_launch(1, 128, 16, 64, CFG, DEV)
        assert occupancy_blocks_per_sm(a64, DEV) < occupancy_blocks_per_sm(a16, DEV)

    def test_kernel_rate_below_microbenchmark(self):
        """The in-kernel rate (stalls + prologue) must sit below the
        resident-data microbenchmark's 388-GFLOPS-class rate."""
        from repro.kernels.strategies import strategy_gflops

        spec = apply_qt_h_launch(14 * 8 * 32, 128, 16, 16, CFG, DEV)
        t = time_launch(spec, DEV)
        rate = spec.flops_per_block * spec.n_blocks / (t.seconds - t.overhead_s) / 1e9
        micro = strategy_gflops("regfile_transpose", 128, 16, DEV)
        assert rate < micro
        assert rate > 0.5 * micro


class TestTransposeLaunch:
    def test_pure_bandwidth_no_flops(self):
        spec = transpose_launch(100_000, 16, CFG, DEV)
        assert spec.flops_per_block == 0.0
        total = (spec.read_bytes_per_block + spec.write_bytes_per_block) * spec.n_blocks
        assert total == pytest.approx(2 * 100_000 * 16 * 4)

    def test_memory_bound(self):
        spec = transpose_launch(1_000_000, 16, CFG, DEV)
        assert time_launch(spec, DEV).limiter == "memory"
