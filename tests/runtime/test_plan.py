"""QRPlan: bit-identity with the one-shot entry points, reuse, guards.

The plan's whole contract is "same numbers, less work": ``execute`` must
be *bit-identical* to a direct ``caqr_qr(A, policy=...)`` on every
execution path, and one plan replayed over many same-shape matrices must
equal building a fresh plan per matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caqr import caqr_qr
from repro.runtime import ExecutionPolicy, QRPlan, plan_qr
from repro.verify.fuzz import PATHS, policy_for

GEOM = {"panel_width": 4, "block_rows": 8}


@pytest.fixture(params=list(PATHS))
def path_policy(request):
    return policy_for(request.param, **GEOM)


class TestBitIdentity:
    @pytest.mark.parametrize("shape", [(64, 12), (37, 5), (8, 8)])
    def test_execute_matches_direct_call(self, rng, path_policy, shape):
        A = rng.standard_normal(shape)
        plan = plan_qr(*shape, dtype=A.dtype, policy=path_policy)
        Qp, Rp = plan.execute(A)
        Qd, Rd = caqr_qr(A, policy=path_policy)
        np.testing.assert_array_equal(Qp, Qd)
        np.testing.assert_array_equal(Rp, Rd)

    def test_float32_matches(self, rng, path_policy):
        A = rng.standard_normal((48, 10)).astype(np.float32)
        plan = plan_qr(48, 10, dtype=np.float32, policy=path_policy)
        Qp, Rp = plan.execute(A)
        Qd, Rd = caqr_qr(A, policy=path_policy)
        assert Qp.dtype == np.float32
        np.testing.assert_array_equal(Qp, Qd)
        np.testing.assert_array_equal(Rp, Rd)

    def test_repeated_execute_is_deterministic(self, rng, path_policy):
        A = rng.standard_normal((64, 12))
        plan = plan_qr(64, 12, policy=path_policy)
        Q1, R1 = plan.execute(A)
        Q2, R2 = plan.execute(A)
        np.testing.assert_array_equal(Q1, Q2)
        np.testing.assert_array_equal(R1, R2)


class TestReuse:
    def test_one_plan_two_matrices_equals_two_fresh_plans(self, rng, path_policy):
        A = rng.standard_normal((64, 12))
        B = rng.standard_normal((64, 12))
        shared = plan_qr(64, 12, policy=path_policy)
        outs_shared = [shared.execute(A), shared.execute(B)]
        outs_fresh = [
            plan_qr(64, 12, policy=path_policy).execute(M) for M in (A, B)
        ]
        for (Qs, Rs), (Qf, Rf) in zip(outs_shared, outs_fresh):
            np.testing.assert_array_equal(Qs, Qf)
            np.testing.assert_array_equal(Rs, Rf)

    def test_execute_does_not_mutate_input(self, rng, path_policy):
        A = rng.standard_normal((40, 8))
        before = A.copy()
        plan_qr(40, 8, policy=path_policy).execute(A)
        np.testing.assert_array_equal(A, before)


class TestGuards:
    def test_shape_mismatch_rejected(self, rng):
        plan = plan_qr(32, 8)
        with pytest.raises(ValueError, match="does not match the planned shape"):
            plan.execute(rng.standard_normal((32, 9)))

    def test_dtype_mismatch_rejected(self, rng):
        plan = plan_qr(32, 8, dtype=np.float32)
        with pytest.raises(ValueError, match="does not match the planned dtype"):
            plan.execute(rng.standard_normal((32, 8)))  # float64

    def test_int_input_planned_as_float64(self):
        plan = plan_qr(4, 2, dtype=np.int64)
        Q, R = plan.execute(np.arange(8).reshape(4, 2))
        assert Q.dtype == np.float64
        np.testing.assert_allclose(Q @ R, np.arange(8).reshape(4, 2), atol=1e-12)

    def test_complex_rejected_at_plan_time(self):
        with pytest.raises(TypeError, match="complex"):
            plan_qr(8, 4, dtype=np.complex128)

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            plan_qr(-1, 4)

    def test_nonfinite_guard_active_by_default(self):
        plan = plan_qr(8, 4)
        bad = np.zeros((8, 4))
        bad[3, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            plan.execute(bad)


class TestPlanMetadata:
    def test_panel_schedule_covers_all_columns(self):
        plan = plan_qr(200, 37, policy=ExecutionPolicy(panel_width=16))
        assert plan.panels[0].col_start == 0
        assert plan.panels[-1].col_stop == 37
        widths = [p.width for p in plan.panels]
        assert sum(widths) == 37 and all(w <= 16 for w in widths)

    def test_degenerate_shapes_plan_and_execute(self):
        for m, n in [(0, 5), (5, 0), (0, 0)]:
            plan = plan_qr(m, n)
            assert isinstance(plan, QRPlan)
            Q, R = plan.execute(np.zeros((m, n)))
            k = min(m, n)
            assert Q.shape == (m, k) and R.shape == (k, n)

    def test_simulate_cached_and_guarded(self):
        plan = plan_qr(4096, 64)
        sim1 = plan.simulate()
        assert plan.simulate() is sim1
        assert sim1.seconds > 0
        with pytest.raises(ValueError, match="degenerate"):
            plan_qr(0, 5).simulate()

    def test_describe_mentions_path_and_shape(self):
        policy = ExecutionPolicy(path="lookahead", workers=2)
        text = plan_qr(4096, 64, policy=policy).describe()
        assert "4096 x 64" in text
        assert "lookahead" in text and "workers=2" in text

    def test_wy_scratch_positive_for_nonempty(self):
        assert plan_qr(256, 32).wy_scratch_bytes > 0
        assert plan_qr(0, 0).wy_scratch_bytes == 0
