"""The CholeskyQR2 runtime layer: guard thresholds, fallback semantics,
counters, the factors API, and workspace reuse.

The numeric engine itself is covered by ``tests/core`` and the fuzz
grid; these tests pin the *policy* behaviour — who refuses, who falls
back, what gets counted — which is the part
``tools/lint_layering.py`` says may only live in ``repro.runtime``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cholesky_qr import CholeskyBreakdownError, CholQRWorkspace
from repro.runtime import ExecutionPolicy, count_fallbacks, plan_qr
from repro.runtime.cholqr import (
    ORTH1_LIMIT,
    CholQRFactors,
    CholQRGuard,
    _FallbackRequested,
    run_cholqr,
)


def _gauss(m, n, seed=0, dtype=np.float64):
    return np.random.default_rng(seed).standard_normal((m, n)).astype(dtype)


def _graded(m, n, cond, seed=0):
    rng = np.random.default_rng(seed)
    U, _ = np.linalg.qr(rng.standard_normal((m, n)))
    V, _ = np.linalg.qr(rng.standard_normal((n, n)))
    return (U * np.logspace(0, -math.log10(cond), n)) @ V.T


class TestGuardThresholds:
    def test_float64_limit(self):
        g = CholQRGuard.for_policy(ExecutionPolicy(path="cholqr2"), np.float64)
        assert g.condition_limit == pytest.approx(
            1.0 / (8.0 * math.sqrt(np.finfo(np.float64).eps))
        )
        assert g.orth_limit == ORTH1_LIMIT
        assert not g.fallback

    @pytest.mark.parametrize(
        "path,dtype",
        [("cholqr2", np.float32), ("cholqr2_mixed", np.float64)],
        ids=["float32-data", "mixed-gram"],
    )
    def test_float32_gram_limit(self, path, dtype):
        g = CholQRGuard.for_policy(ExecutionPolicy(path=path), dtype)
        assert g.condition_limit == pytest.approx(
            0.5 / math.sqrt(np.finfo(np.float32).eps)
        )

    def test_policy_condition_limit_overrides(self):
        pol = ExecutionPolicy(path="cholqr2", condition_limit=123.0)
        g = CholQRGuard.for_policy(pol, np.float64)
        assert g.condition_limit == 123.0

    def test_auto_selects_fallback_disposition(self):
        g = CholQRGuard.for_policy(ExecutionPolicy(path="auto"), np.float64)
        assert g.fallback
        with pytest.raises(_FallbackRequested) as exc:
            g("condest", g.condition_limit * 2)
        assert exc.value.stage == "condest"

    def test_explicit_path_raises_breakdown(self):
        g = CholQRGuard.for_policy(ExecutionPolicy(path="cholqr2"), np.float64)
        with pytest.raises(CholeskyBreakdownError) as exc:
            g("orth1", 1.0)
        assert exc.value.stage == "orth1"

    def test_nan_refuses(self):
        g = CholQRGuard.for_policy(ExecutionPolicy(path="cholqr2"), np.float64)
        with pytest.raises(CholeskyBreakdownError):
            g("condest", float("nan"))

    def test_within_limits_is_silent(self):
        g = CholQRGuard.for_policy(ExecutionPolicy(path="cholqr2"), np.float64)
        g("condest_sample", 10.0)
        g("condest", 10.0)
        g("orth1", 1e-8)


class TestFallbackSemantics:
    def test_explicit_path_refuses_tight_limit(self):
        pol = ExecutionPolicy(path="cholqr2", condition_limit=1.001)
        with pytest.raises(CholeskyBreakdownError, match="condition_limit|limit"):
            run_cholqr(_gauss(64, 8), pol)

    def test_auto_falls_back_and_counts(self):
        pol = ExecutionPolicy(path="auto", condition_limit=1.001)
        A = _gauss(64, 8)
        with count_fallbacks() as counter:
            f = run_cholqr(A, pol)
        assert f.fell_back
        assert f.fallback_stage in ("condest", "condest_sample")
        assert counter.fallbacks == 1
        Q = f.form_q()
        np.testing.assert_allclose(Q @ f.R, A, atol=1e-12)
        assert np.linalg.norm(Q.T @ Q - np.eye(8)) < 1e-14

    def test_fallback_matches_lookahead_bitwise(self):
        A = _graded(96, 12, 1e10)
        auto = run_cholqr(A, ExecutionPolicy(path="auto"))
        assert auto.fell_back
        from repro.core.caqr import caqr_qr

        Qla, Rla = caqr_qr(A, policy=ExecutionPolicy(path="lookahead"))
        np.testing.assert_array_equal(auto.form_q(), Qla)
        np.testing.assert_array_equal(auto.R, Rla)

    def test_counters_nest_and_unwind(self):
        pol = ExecutionPolicy(path="auto", condition_limit=1.001)
        with count_fallbacks() as outer:
            run_cholqr(_gauss(40, 5), pol)
            with count_fallbacks() as inner:
                run_cholqr(_gauss(40, 5, seed=1), pol)
            run_cholqr(_gauss(40, 5, seed=2), pol)
        assert inner.fallbacks == 1
        assert outer.fallbacks == 3

    def test_no_fallback_on_gaussian(self):
        with count_fallbacks() as counter:
            f = run_cholqr(_gauss(256, 16), ExecutionPolicy(path="auto"))
        assert counter.fallbacks == 0 and not f.fell_back


class TestFactorsAPI:
    def test_apply_roundtrip_and_shape(self):
        A = _gauss(50, 6)
        f = run_cholqr(A, ExecutionPolicy(path="cholqr2"))
        assert isinstance(f, CholQRFactors)
        assert f.shape == (50, 6)
        assert f.info is not None and not f.fell_back
        Q = f.form_q()
        B = _gauss(6, 3, seed=9)
        np.testing.assert_allclose(f.apply_q(B), Q @ B)
        np.testing.assert_allclose(f.apply_qt(Q @ B), B, atol=1e-12)

    def test_wide_matrix_trailing_columns(self):
        A = _gauss(5, 9)
        f = run_cholqr(A, ExecutionPolicy(path="cholqr2"))
        Q, R = f.form_q(), f.R
        assert Q.shape == (5, 5) and R.shape == (5, 9)
        np.testing.assert_allclose(Q @ R, A, atol=1e-13)

    @pytest.mark.parametrize("shape", [(0, 4), (4, 0), (0, 0)])
    def test_degenerate_shapes(self, shape):
        f = run_cholqr(np.zeros(shape), ExecutionPolicy(path="cholqr2"))
        k = min(shape)
        assert f.form_q().shape == (shape[0], k)
        assert f.R.shape == (k, shape[1])

    def test_float32_preserved(self):
        f = run_cholqr(_gauss(48, 6, dtype=np.float32), ExecutionPolicy(path="cholqr2"))
        assert f.form_q().dtype == np.float32 and f.R.dtype == np.float32


class TestPlanIntegration:
    def test_workspace_reused_across_executes(self):
        plan = plan_qr(64, 8, policy=ExecutionPolicy(path="cholqr2_mixed"))
        ws1 = plan._cholqr_workspace()
        ws2 = plan._cholqr_workspace()
        assert ws1 is ws2 and isinstance(ws1, CholQRWorkspace)
        A = _gauss(64, 8)
        Q1, R1 = plan.execute(A)
        Q2, R2 = plan.execute(A)
        np.testing.assert_array_equal(Q1, Q2)
        np.testing.assert_array_equal(R1, R2)
        # The mixed path's float32 Gram cast buffer was cached in place.
        assert any(key[0] == "gram32" for key in ws1._bufs)

    def test_auto_plan_prebuilds_fallback_schedule(self):
        plan = plan_qr(64, 8, policy=ExecutionPolicy(path="auto"))
        assert plan._schedule is not None
        plain = plan_qr(64, 8, policy=ExecutionPolicy(path="cholqr2"))
        assert plain._schedule is None

    def test_plan_matches_direct_call_bitwise(self):
        from repro.core.caqr import caqr_qr

        for path in ("cholqr2", "cholqr2_mixed", "auto"):
            pol = ExecutionPolicy(path=path)
            A = _gauss(70, 10, seed=11)
            Qp, Rp = plan_qr(70, 10, policy=pol).execute(A)
            Qd, Rd = caqr_qr(A, policy=pol)
            np.testing.assert_array_equal(Qp, Qd)
            np.testing.assert_array_equal(Rp, Rd)
