"""The layering lint: clean on the repo, and able to detect a violation.

A lint that never fires is indistinguishable from no lint; inject a
synthetic violation and make sure it is flagged at the right line.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
LINT = REPO / "tools" / "lint_layering.py"


def test_repo_is_clean():
    proc = subprocess.run(
        [sys.executable, str(LINT)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


class TestScanner:
    def _scan(self, source: str, tmp_path):
        sys.path.insert(0, str(LINT.parent))
        try:
            import lint_layering
        finally:
            sys.path.pop(0)
        f = tmp_path / "mod.py"
        f.write_text(source)
        return lint_layering.scan_file(f)

    def test_detects_path_kwarg_on_entry_point(self, tmp_path):
        hits = self._scan(
            "from repro.core.caqr import caqr_qr\n"
            "Q, R = caqr_qr(A, batched=False)\n",
            tmp_path,
        )
        assert hits == [(2, "caqr_qr", "batched")]

    def test_ignores_unrelated_workers_kwarg(self, tmp_path):
        hits = self._scan(
            "pool = ThreadPoolExecutor(workers=4)\n"
            "other_function(A, batched=False)\n",
            tmp_path,
        )
        assert hits == []

    def test_ignores_policy_kwarg(self, tmp_path):
        hits = self._scan(
            "caqr_qr(A, policy=ExecutionPolicy(path='seed'))\n", tmp_path
        )
        assert hits == []

    def test_shim_forwarding_is_exempt(self, tmp_path):
        hits = self._scan(
            "def caqr_qr(A, batched=UNSET):\n"
            "    return caqr(A, batched=batched)\n",
            tmp_path,
        )
        assert hits == []

    def test_nested_helper_inside_shim_still_exempt_only_in_shim(self, tmp_path):
        hits = self._scan(
            "def helper(A):\n"
            "    return caqr(A, lookahead=True)\n",
            tmp_path,
        )
        assert hits == [(2, "caqr", "lookahead")]

    def test_attribute_calls_are_flagged(self, tmp_path):
        hits = self._scan("repro.core.caqr.caqr(A, workers=3)\n", tmp_path)
        assert hits == [(1, "caqr", "workers")]

    def test_guard_construction_is_flagged(self, tmp_path):
        hits = self._scan(
            "from repro.runtime.cholqr import CholQRGuard\n"
            "guard = CholQRGuard(condition_limit=10.0)\n",
            tmp_path,
        )
        assert hits == [(2, "CholQRGuard", "guard construction")]

    def test_guard_classmethod_construction_is_flagged(self, tmp_path):
        hits = self._scan(
            "g = CholQRGuard.for_policy(policy, dtype)\n", tmp_path
        )
        assert hits == [(1, "for_policy", "guard construction")]

    def test_condition_limit_kwarg_on_entry_point_is_flagged(self, tmp_path):
        hits = self._scan("caqr_qr(A, condition_limit=100.0)\n", tmp_path)
        assert hits == [(1, "caqr_qr", "condition_limit")]

    def test_condition_limit_on_policy_is_sanctioned(self, tmp_path):
        # The policy object IS the runtime construct — carrying the
        # threshold there is the approved route.
        hits = self._scan(
            "caqr_qr(A, policy=ExecutionPolicy(path='auto', condition_limit=100.0))\n",
            tmp_path,
        )
        assert hits == []

    def test_queue_construction_is_flagged(self, tmp_path):
        hits = self._scan(
            "from repro.serving import CoalescingQueue\n"
            "q = CoalescingQueue(max_depth=4, overflow='shed')\n",
            tmp_path,
        )
        assert hits == [(2, "CoalescingQueue", "queue construction")]

    def test_queue_attribute_construction_is_flagged(self, tmp_path):
        hits = self._scan(
            "q = repro.serving.coalesce.CoalescingQueue()\n", tmp_path
        )
        assert hits == [(1, "CoalescingQueue", "queue construction")]

    def test_qrserver_construction_is_sanctioned(self, tmp_path):
        # The server is the public surface; only the raw queue is fenced.
        hits = self._scan(
            "from repro.serving import QRServer\n"
            "srv = QRServer(max_depth=4, overflow='shed')\n",
            tmp_path,
        )
        assert hits == []


class TestQueueRuleEndToEnd:
    """Inject a real violation into a synthetic repo tree and run the
    lint's main(): the violation outside ``repro.serving`` must be
    flagged, the identical construction inside it must not."""

    def _run_main(self, tmp_path, monkeypatch, capsys):
        sys.path.insert(0, str(LINT.parent))
        try:
            import lint_layering
        finally:
            sys.path.pop(0)
        monkeypatch.setattr(lint_layering, "REPO", tmp_path)
        rc = lint_layering.main()
        return rc, capsys.readouterr().out

    def test_injected_queue_violation_is_caught(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "src" / "repro" / "smallblas"
        bad.mkdir(parents=True)
        (bad / "rogue.py").write_text(
            "from repro.serving.coalesce import CoalescingQueue\n"
            "queue = CoalescingQueue(max_depth=2)\n"
        )
        ok = tmp_path / "src" / "repro" / "serving"
        ok.mkdir(parents=True)
        (ok / "server.py").write_text(
            "from .coalesce import CoalescingQueue\n"
            "queue = CoalescingQueue(max_depth=2)\n"
        )
        rc, out = self._run_main(tmp_path, monkeypatch, capsys)
        assert rc == 1
        assert "src/repro/smallblas/rogue.py:2" in out
        assert "outside repro.serving" in out
        assert "serving/server.py" not in out

    def test_serving_only_tree_is_clean(self, tmp_path, monkeypatch, capsys):
        ok = tmp_path / "src" / "repro" / "serving"
        ok.mkdir(parents=True)
        (ok / "coalesce.py").write_text(
            "queue = CoalescingQueue(max_depth=2, overflow='reject')\n"
        )
        rc, out = self._run_main(tmp_path, monkeypatch, capsys)
        assert rc == 0
        assert "clean" in out


class TestCommRuleEndToEnd:
    """The FakeComm fence: flagged outside ``repro.distributed``, owned
    inside it — same shape as the queue rule above."""

    def _run_main(self, tmp_path, monkeypatch, capsys):
        sys.path.insert(0, str(LINT.parent))
        try:
            import lint_layering
        finally:
            sys.path.pop(0)
        monkeypatch.setattr(lint_layering, "REPO", tmp_path)
        rc = lint_layering.main()
        return rc, capsys.readouterr().out

    def test_scanner_flags_comm_construction(self, tmp_path):
        sys.path.insert(0, str(LINT.parent))
        try:
            import lint_layering
        finally:
            sys.path.pop(0)
        f = tmp_path / "mod.py"
        f.write_text(
            "from repro.distributed import FakeComm\n"
            "c = FakeComm(size=4)\n"
        )
        assert lint_layering.scan_file(f) == [(2, "FakeComm", "comm construction")]

    def test_injected_comm_violation_is_caught(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "src" / "repro" / "experiments"
        bad.mkdir(parents=True)
        (bad / "rogue.py").write_text(
            "from repro.distributed.comm import FakeComm\n"
            "comm = FakeComm(size=8)\n"
        )
        ok = tmp_path / "src" / "repro" / "distributed"
        ok.mkdir(parents=True)
        (ok / "sharded.py").write_text(
            "from .comm import FakeComm\n"
            "comm = FakeComm(size=8)\n"
        )
        rc, out = self._run_main(tmp_path, monkeypatch, capsys)
        assert rc == 1
        assert "src/repro/experiments/rogue.py:2" in out
        assert "outside repro.distributed" in out
        assert "ExecutionPolicy(path='sharded'" in out
        assert "distributed/sharded.py" not in out

    def test_distributed_only_tree_is_clean(self, tmp_path, monkeypatch, capsys):
        ok = tmp_path / "src" / "repro" / "distributed"
        ok.mkdir(parents=True)
        (ok / "comm.py").write_text("comm = FakeComm(size=4)\n")
        rc, out = self._run_main(tmp_path, monkeypatch, capsys)
        assert rc == 0
        assert "clean" in out


class TestGraphRuleEndToEnd:
    """The TaskGraph/Layer fence: layer emission belongs to ``repro.graph``
    and the modules registered in ``repro.graph.highlevel.PRODUCERS``."""

    def _lint(self):
        sys.path.insert(0, str(LINT.parent))
        try:
            import lint_layering
        finally:
            sys.path.pop(0)
        return lint_layering

    def _run_main(self, tmp_path, monkeypatch, capsys):
        lint_layering = self._lint()
        monkeypatch.setattr(lint_layering, "REPO", tmp_path)
        rc = lint_layering.main()
        return rc, capsys.readouterr().out

    def test_scanner_flags_taskgraph_construction(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "from repro.graph.highlevel import TaskGraph\n"
            "tg = TaskGraph(name='rogue')\n"
        )
        assert self._lint().scan_file(f) == [(2, "TaskGraph", "graph construction")]

    def test_scanner_flags_layer_construction(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("layer = repro.graph.highlevel.Layer(name='x')\n")
        assert self._lint().scan_file(f) == [(1, "Layer", "graph construction")]

    def test_injected_graph_violation_is_caught(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "src" / "repro" / "serving"
        bad.mkdir(parents=True)
        (bad / "rogue.py").write_text(
            "from repro.graph.highlevel import TaskGraph\n"
            "tg = TaskGraph(name='private')\n"
        )
        ok = tmp_path / "src" / "repro" / "graph"
        ok.mkdir(parents=True)
        (ok / "dag.py").write_text("tg = TaskGraph(name='caqr')\n")
        producer = tmp_path / "src" / "repro" / "rpca"
        producer.mkdir(parents=True)
        (producer / "graphs.py").write_text("tg = TaskGraph(name='rpca_ialm')\n")
        rc, out = self._run_main(tmp_path, monkeypatch, capsys)
        assert rc == 1
        assert "src/repro/serving/rogue.py:2" in out
        assert "outside repro.graph" in out
        assert "PRODUCERS" in out
        assert "graph/dag.py" not in out
        assert "rpca/graphs.py" not in out

    def test_graph_only_tree_is_clean(self, tmp_path, monkeypatch, capsys):
        ok = tmp_path / "src" / "repro" / "graph"
        ok.mkdir(parents=True)
        (ok / "highlevel.py").write_text(
            "tg = TaskGraph(name='x')\n"
            "layer = Layer(name='panel')\n"
        )
        rc, out = self._run_main(tmp_path, monkeypatch, capsys)
        assert rc == 0
        assert "clean" in out

    def test_graph_exemptions_cover_producers(self):
        # The lint's hardcoded exemption list must stay in sync with the
        # producer registry: every registered emitter's module must be
        # allowed to construct layers.
        from repro.graph.highlevel import PRODUCERS

        lint_layering = self._lint()
        for target in PRODUCERS.values():
            module = target.split(":", 1)[0]
            rel = "src/" + module.replace(".", "/") + ".py"
            assert any(
                rel.startswith(pref) for pref in lint_layering.GRAPH_EXEMPT
            ), f"producer module {module} not exempt from the graph fence"


class TestStreamRule:
    """The streaming fence: StreamingQR / ChunkBuffer construction is
    reserved to ``repro.streaming`` — chunk geometry rides on
    ``ExecutionPolicy(path='streaming', chunk_rows=...)`` and a
    privately built engine would bypass the bounded in-flight window and
    the tracked-memory accounting the soak gate pins."""

    def _lint(self):
        sys.path.insert(0, str(LINT.parent))
        try:
            import lint_layering
        finally:
            sys.path.pop(0)
        return lint_layering

    def _run_main(self, tmp_path, monkeypatch, capsys):
        lint_layering = self._lint()
        monkeypatch.setattr(lint_layering, "REPO", tmp_path)
        rc = lint_layering.main()
        return rc, capsys.readouterr().out

    def test_scanner_flags_engine_construction(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "from repro.streaming import StreamingQR\n"
            "sq = StreamingQR(n_cols=8)\n"
        )
        assert self._lint().scan_file(f) == [
            (2, "StreamingQR", "stream construction")
        ]

    def test_scanner_flags_buffer_construction(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("buf = repro.streaming.ingest.ChunkBuffer(chunk_rows=64)\n")
        assert self._lint().scan_file(f) == [
            (1, "ChunkBuffer", "stream construction")
        ]

    def test_stream_qr_entry_point_is_sanctioned(self, tmp_path):
        # The generator-consuming entry point is the public surface;
        # only the raw engine and buffer are fenced.
        f = tmp_path / "mod.py"
        f.write_text(
            "from repro.streaming import stream_qr, stream_chunks\n"
            "sq = stream_qr(blocks, policy=policy)\n"
            "for c in stream_chunks(blocks, 64):\n"
            "    pass\n"
        )
        assert self._lint().scan_file(f) == []

    def test_injected_stream_violation_is_caught(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "src" / "repro" / "rpca"
        bad.mkdir(parents=True)
        (bad / "rogue.py").write_text(
            "from repro.streaming.qr import StreamingQR\n"
            "sq = StreamingQR(n_cols=4)\n"
        )
        ok = tmp_path / "src" / "repro" / "streaming"
        ok.mkdir(parents=True)
        (ok / "background.py").write_text(
            "buf = ChunkBuffer(chunk_rows=25)\n"
            "sq = StreamingQR(n_cols=4)\n"
        )
        rc, out = self._run_main(tmp_path, monkeypatch, capsys)
        assert rc == 1
        assert "src/repro/rpca/rogue.py:2" in out
        assert "outside repro.streaming" in out
        assert "stream_qr / stream_chunks" in out
        assert "streaming/background.py" not in out

    def test_streaming_only_tree_is_clean(self, tmp_path, monkeypatch, capsys):
        ok = tmp_path / "src" / "repro" / "streaming"
        ok.mkdir(parents=True)
        (ok / "qr.py").write_text(
            "sq = StreamingQR(n_cols=4)\n"
            "buf = ChunkBuffer(chunk_rows=8, max_in_flight=2)\n"
        )
        rc, out = self._run_main(tmp_path, monkeypatch, capsys)
        assert rc == 0
        assert "clean" in out
