"""ExecutionPolicy: validation, legacy-kwarg mapping, deprecation contract.

The policy layer is the single place the five legacy kwargs are mapped
onto execution paths; these tests pin that mapping (including the error
cases the pre-policy entry points raised) and the deprecation surface.
"""

from __future__ import annotations

import pytest

from repro.runtime import ExecutionPolicy
from repro.runtime.policy import UNSET, resolve_executor_policy, resolve_policy
from repro.verify.guards import GuardError


class TestValidation:
    def test_default_is_batched(self):
        p = ExecutionPolicy()
        assert p.path == "batched"
        assert p.uses_batched and not p.uses_structured
        assert p.effective_workers == 1

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown execution path"):
            ExecutionPolicy(path="warp-drive")

    @pytest.mark.parametrize(
        "kwargs",
        [{"panel_width": 0}, {"block_rows": 0}, {"workers": 0}],
    )
    def test_positive_geometry_required(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(path="lookahead" if "workers" in kwargs else "batched", **kwargs)

    def test_workers_require_lookahead(self):
        with pytest.raises(ValueError, match="requires path='lookahead'"):
            ExecutionPolicy(path="batched", workers=3)

    def test_bad_nonfinite_policy_is_guard_error(self):
        with pytest.raises(GuardError):
            ExecutionPolicy(nonfinite="explode")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionPolicy().path = "seed"  # type: ignore[misc]

    def test_structured_flags(self):
        assert ExecutionPolicy(path="structured").uses_structured
        assert ExecutionPolicy(path="structured").uses_batched
        assert ExecutionPolicy(path="seed_structured").uses_structured
        assert not ExecutionPolicy(path="seed_structured").uses_batched

    def test_with_nonfinite_returns_self_when_unchanged(self):
        p = ExecutionPolicy()
        assert p.with_nonfinite("raise") is p
        assert p.with_nonfinite("propagate").nonfinite == "propagate"


class TestFromLegacy:
    @pytest.mark.parametrize(
        "kwargs,path",
        [
            ({}, "batched"),
            ({"batched": False}, "seed"),
            ({"structured": True}, "structured"),
            ({"batched": False, "structured": True}, "seed_structured"),
            ({"lookahead": True}, "lookahead"),
            ({"workers": 3}, "lookahead"),
        ],
    )
    def test_mapping(self, kwargs, path):
        assert ExecutionPolicy.from_legacy(**kwargs).path == path

    def test_lookahead_rejects_structured(self):
        with pytest.raises(ValueError, match="not supported with lookahead"):
            ExecutionPolicy.from_legacy(lookahead=True, structured=True)

    def test_lookahead_rejects_seed(self):
        with pytest.raises(ValueError, match="requires the batched"):
            ExecutionPolicy.from_legacy(lookahead=True, batched=False)

    def test_unset_inherits_base(self):
        base = ExecutionPolicy(panel_width=8, block_rows=32, nonfinite="propagate")
        p = ExecutionPolicy.from_legacy(base, workers=2, lookahead=True)
        assert p.path == "lookahead" and p.workers == 2
        assert p.panel_width == 8 and p.block_rows == 32
        assert p.nonfinite == "propagate"


class TestResolvePolicy:
    def test_policy_wins(self):
        p = ExecutionPolicy(path="seed")
        assert resolve_policy("t", p) is p

    def test_mixing_policy_and_legacy_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_policy("t", ExecutionPolicy(), batched=False)

    def test_deprecated_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="docs/architecture.md"):
            p = resolve_policy("t", None, batched=False, stacklevel=2)
        assert p.path == "seed"

    def test_geometry_kwargs_map_silently(self, recwarn):
        p = resolve_policy("t", None, panel_width=4, block_rows=8, tree_shape="binary")
        assert not [w for w in recwarn if w.category is DeprecationWarning]
        assert (p.panel_width, p.block_rows, p.tree_shape) == (4, 8, "binary")

    def test_unset_sentinel_is_singleton_and_falsy_free(self):
        from repro.runtime.policy import _Unset

        assert _Unset() is UNSET

    def test_executor_policy_maps_lookahead_to_edge(self):
        with pytest.warns(DeprecationWarning):
            p = resolve_executor_policy("t", None, lookahead=False, stacklevel=2)
        assert p.path == "lookahead" and p.lookahead_edge is False

    def test_executor_rejects_non_lookahead_policy(self):
        with pytest.raises(ValueError, match="'lookahead' path"):
            resolve_executor_policy("t", ExecutionPolicy(path="batched"))


class TestEntryPointShims:
    """Every public entry point accepts policy= and warns on legacy kwargs."""

    def test_caqr_qr_legacy_warns_and_matches_policy(self, rng):
        import numpy as np

        from repro.core.caqr import caqr_qr

        A = rng.standard_normal((64, 12))
        with pytest.warns(DeprecationWarning):
            Q1, R1 = caqr_qr(A, batched=False, panel_width=4, block_rows=8)
        Q2, R2 = caqr_qr(
            A, policy=ExecutionPolicy(path="seed", panel_width=4, block_rows=8)
        )
        np.testing.assert_array_equal(Q1, Q2)
        np.testing.assert_array_equal(R1, R2)

    def test_tsqr_legacy_warns(self, rng):
        from repro.core.tsqr import tsqr

        with pytest.warns(DeprecationWarning):
            tsqr(rng.standard_normal((64, 8)), batched=False)

    def test_rsvd_legacy_warns(self, rng):
        from repro.core.randomized_svd import randomized_svd

        with pytest.warns(DeprecationWarning):
            randomized_svd(rng.standard_normal((60, 30)), k=4, batched=False)

    def test_adaptive_svt_legacy_warns(self):
        from repro.rpca.adaptive import AdaptiveSVT

        with pytest.warns(DeprecationWarning):
            svt = AdaptiveSVT(batched=False)
        assert svt.policy.path == "seed"

    def test_default_calls_do_not_warn(self, rng, recwarn):
        from repro.core.caqr import caqr_qr

        caqr_qr(rng.standard_normal((32, 8)))
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestShardedPolicy:
    """path='sharded' wiring: shards/fanin/interconnect validation."""

    def test_shards_required(self):
        with pytest.raises(ValueError, match="requires shards"):
            ExecutionPolicy(path="sharded")

    def test_shards_rejected_elsewhere(self):
        with pytest.raises(ValueError, match="shards applies only"):
            ExecutionPolicy(path="batched", shards=4)

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards must be positive"):
            ExecutionPolicy(path="sharded", shards=0)

    def test_fanin_bounds_and_scope(self):
        with pytest.raises(ValueError, match="fanin must be at least 2"):
            ExecutionPolicy(path="sharded", shards=4, fanin=1)
        with pytest.raises(ValueError, match="fanin applies only"):
            ExecutionPolicy(path="batched", fanin=2)
        assert ExecutionPolicy(path="sharded", shards=4).effective_fanin == 2
        assert ExecutionPolicy(path="sharded", shards=4, fanin=4).effective_fanin == 4

    def test_interconnect_validated_and_resolved(self):
        from repro.distributed import INTERCONNECTS

        with pytest.raises(ValueError, match="unknown interconnect"):
            ExecutionPolicy(path="sharded", shards=4, interconnect="carrier-pigeon")
        with pytest.raises(ValueError, match="interconnect applies only"):
            ExecutionPolicy(path="batched", interconnect="pcie2")
        p = ExecutionPolicy(path="sharded", shards=4, interconnect="ethernet")
        assert p.resolved_interconnect() is INTERCONNECTS["ethernet"]
        default = ExecutionPolicy(path="sharded", shards=4).resolved_interconnect()
        assert default is INTERCONNECTS["pcie2"]

    def test_describe_names_the_shard_geometry(self):
        from repro.runtime import plan_qr

        plan = plan_qr(64, 8, policy=ExecutionPolicy(path="sharded", shards=4, fanin=3))
        assert "shards=4" in plan.describe() and "fanin=3" in plan.describe()
