"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; per-test reproducibility."""
    return np.random.default_rng(12345)


def make_matrix(rng: np.random.Generator, m: int, n: int, cond: float | None = None) -> np.ndarray:
    """Random dense matrix, optionally with a prescribed condition number."""
    A = rng.standard_normal((m, n))
    if cond is None:
        return A
    # Impose singular values geometrically spaced from 1 to 1/cond.
    U, _, Vt = np.linalg.svd(A, full_matrices=False)
    k = min(m, n)
    s = np.logspace(0, -np.log10(cond), k)
    return (U * s) @ Vt


@pytest.fixture
def matrix_factory(rng):
    def factory(m: int, n: int, cond: float | None = None) -> np.ndarray:
        return make_matrix(rng, m, n, cond)

    return factory
