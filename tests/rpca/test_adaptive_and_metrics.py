"""Tests of the rank-adaptive SVT and the recovery metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rpca import (
    AdaptiveSVT,
    foreground_roc_auc,
    generate_video,
    psnr,
    rpca_ialm,
    support_precision_recall,
)
from repro.rpca.svt import singular_value_threshold


class TestAdaptiveSVT:
    def test_matches_exact_svt_on_low_rank(self, rng):
        L = rng.standard_normal((300, 4)) @ rng.standard_normal((4, 40))
        X = L + 0.001 * rng.standard_normal((300, 40))
        tau = 0.5
        exact, rank_e = singular_value_threshold(X, tau)
        svt = AdaptiveSVT()
        approx, rank_a = svt(X, tau)
        assert rank_a == rank_e
        assert np.linalg.norm(approx - exact) < 1e-4 * np.linalg.norm(exact)
        assert svt.partial_svd_calls == 1 and svt.full_svd_calls == 0

    def test_rank_tracking_across_calls(self, rng):
        svt = AdaptiveSVT(buffer=2)
        L = rng.standard_normal((200, 3)) @ rng.standard_normal((3, 30))
        svt(L, 0.1)
        assert svt.predicted_rank == 3

    def test_falls_back_when_rank_too_high(self, rng):
        # Full-rank X with a tiny threshold: nothing is below tau, so the
        # partial pass cannot certify and the exact SVD must run.
        X = rng.standard_normal((60, 20))
        svt = AdaptiveSVT(buffer=1, max_tries=1)
        L, rank = svt(X, 1e-12)
        assert svt.full_svd_calls == 1
        assert rank == 20

    def test_inside_rpca(self, rng):
        v = generate_video(height=16, width=20, n_frames=20, seed=3)
        svt = AdaptiveSVT()
        res = rpca_ialm(v.M, tol=1e-5, max_iter=80, svt=svt)
        res_exact = rpca_ialm(v.M, tol=1e-5, max_iter=80)
        assert res.converged
        assert np.linalg.norm(res.L - res_exact.L) < 1e-2 * np.linalg.norm(res_exact.L)
        assert svt.partial_svd_calls > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveSVT(buffer=0)


class TestMetrics:
    def test_psnr_exact_match_inf(self, rng):
        x = rng.standard_normal((8, 8))
        assert psnr(x, x) == float("inf")

    def test_psnr_decreases_with_noise(self, rng):
        ref = rng.standard_normal((32, 32))
        a = psnr(ref + 0.01 * rng.standard_normal(ref.shape), ref)
        b = psnr(ref + 0.1 * rng.standard_normal(ref.shape), ref)
        assert a > b > 0

    def test_psnr_shape_check(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_auc_perfect_detector(self, rng):
        true = np.zeros((50, 50))
        true[10:20, 10:20] = 1.0
        assert foreground_roc_auc(true, true) == pytest.approx(1.0)

    def test_auc_random_detector_half(self, rng):
        true = np.zeros(10_000)
        true[rng.choice(10_000, 500, replace=False)] = 1.0
        score = rng.standard_normal(10_000)
        auc = foreground_roc_auc(score, true)
        assert 0.45 < auc < 0.55

    def test_auc_needs_both_classes(self):
        with pytest.raises(ValueError):
            foreground_roc_auc(np.ones(5), np.ones(5))

    def test_precision_recall(self):
        true = np.array([1.0, 1.0, 0.0, 0.0])
        rec = np.array([1.0, 0.0, 1.0, 0.0])
        p, r = support_precision_recall(rec, true, threshold=0.5)
        assert p == 0.5 and r == 0.5

    def test_rpca_recovery_scores_high(self, rng):
        v = generate_video(height=24, width=32, n_frames=25, seed=5)
        res = rpca_ialm(v.M, tol=1e-6, max_iter=100)
        assert foreground_roc_auc(res.S, v.S) > 0.95
        # The illumination-drift mode is only partially recovered at this
        # scale; ~26 dB background PSNR is the expected regime.
        assert psnr(res.L, v.L) > 20.0
        p, r = support_precision_recall(res.S, v.S)
        assert p > 0.8 and r > 0.8
