"""Calibration tests of the Table II per-iteration timing model."""

from __future__ import annotations

import pytest

from repro.rpca.timing import ITERATION_ENGINES, RPCAIterationModel

PAPER = {"mkl_svd": 0.9, "blas2_qr": 8.7, "caqr": 27.0}


class TestTable2Calibration:
    @pytest.mark.parametrize("engine", ITERATION_ENGINES)
    def test_within_band(self, engine):
        ips = RPCAIterationModel(engine=engine).iterations_per_second()
        assert 0.65 * PAPER[engine] <= ips <= 1.35 * PAPER[engine]

    def test_ordering(self):
        ips = {e: RPCAIterationModel(engine=e).iterations_per_second() for e in ITERATION_ENGINES}
        assert ips["mkl_svd"] < ips["blas2_qr"] < ips["caqr"]

    def test_caqr_vs_blas2_about_3x(self):
        """Section VI-D: 'an additional speedup of about 3x when using
        CAQR as compared to the BLAS2 QR'."""
        c = RPCAIterationModel(engine="caqr").iterations_per_second()
        b = RPCAIterationModel(engine="blas2_qr").iterations_per_second()
        assert 2.0 <= c / b <= 4.5

    def test_caqr_vs_mkl_about_30x(self):
        c = RPCAIterationModel(engine="caqr").iterations_per_second()
        m = RPCAIterationModel(engine="mkl_svd").iterations_per_second()
        assert 15.0 <= c / m <= 45.0

    def test_full_run_nine_minutes_to_seconds(self):
        """'from over nine minutes to 17 seconds' for the 500-iter run."""
        mkl = 500 / RPCAIterationModel(engine="mkl_svd").iterations_per_second()
        caqr = 500 / RPCAIterationModel(engine="caqr").iterations_per_second()
        assert mkl > 6 * 60  # multiple minutes
        assert caqr < 35  # tens of seconds

    def test_amdahl_qr_fraction(self):
        """Even though the QR sped up >3x, the app gains ~3x (Amdahl):
        non-QR time must be a visible fraction of the CAQR iteration."""
        model = RPCAIterationModel(engine="caqr")
        model.iteration_seconds(110_592, 100)
        qr_time = model.breakdown["qr"] + model.breakdown["form_q"]
        total = sum(model.breakdown.values())
        assert 0.05 < 1 - qr_time / total < 0.5

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            RPCAIterationModel(engine="gpu_magic").iteration_seconds(1000, 100)

    def test_wide_matrix_rejected(self):
        with pytest.raises(ValueError):
            RPCAIterationModel(engine="caqr").iteration_seconds(50, 100)

    def test_breakdown_populated(self):
        model = RPCAIterationModel(engine="blas2_qr")
        t = model.iteration_seconds(110_592, 100)
        assert t == pytest.approx(sum(model.breakdown.values()))
        assert {"qr", "form_q", "small_svd", "gemm", "elementwise"} <= set(model.breakdown)


class TestExtensionEngines:
    def test_adaptive_engine_much_faster(self):
        """The rank-adaptive partial-SVD engine (library extension) is
        bounded by the elementwise passes, not the QR."""
        base = RPCAIterationModel(engine="caqr").iterations_per_second()
        adaptive = RPCAIterationModel(engine="caqr_adaptive").iterations_per_second()
        assert adaptive > 4 * base

    def test_adaptive_breakdown_elementwise_bound(self):
        m = RPCAIterationModel(engine="caqr_adaptive")
        m.iteration_seconds(110_592, 100)
        assert m.breakdown["elementwise"] == max(m.breakdown.values())

    def test_adaptive_rank_scales_cost(self):
        lo = RPCAIterationModel(engine="caqr_adaptive", adaptive_rank=2).iteration_seconds(110_592, 100)
        hi = RPCAIterationModel(engine="caqr_adaptive", adaptive_rank=40).iteration_seconds(110_592, 100)
        assert hi > lo
