"""Tests of the chunked/online Robust PCA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rpca import foreground_f1, generate_video, rpca_ialm
from repro.rpca.online import OnlineRPCA


@pytest.fixture(scope="module")
def long_video():
    return generate_video(height=20, width=24, n_frames=80, seed=13)


class TestOnlineRPCA:
    def test_chunks_cover_stream(self, long_video):
        online = OnlineRPCA(chunk_frames=20)
        chunks = online.process(long_video.M)
        assert len(chunks) == 4
        assert chunks[0].frame_start == 0
        assert chunks[-1].frame_stop == 80
        assert online.frames_seen == 80

    def test_decomposition_sums_to_input(self, long_video):
        online = OnlineRPCA(chunk_frames=20)
        online.process(long_video.M)
        res = online.assemble()
        assert res.L.shape == long_video.M.shape
        rel = np.linalg.norm(long_video.M - res.L - res.S) / np.linalg.norm(long_video.M)
        assert rel < 1e-3

    def test_recovery_quality_reasonable(self, long_video):
        """Online trades some accuracy for throughput; the foreground
        support must still be clearly recovered."""
        online = OnlineRPCA(chunk_frames=20)
        online.process(long_video.M)
        res = online.assemble()
        assert foreground_f1(res.S, long_video.S) > 0.7
        bg_err = np.linalg.norm(res.L - long_video.L) / np.linalg.norm(long_video.L)
        assert bg_err < 0.25

    def test_carried_rank_bounded(self, long_video):
        online = OnlineRPCA(chunk_frames=20, rank_cap=3)
        online.process(long_video.M)
        assert 1 <= online.background_rank <= 3

    def test_ragged_final_chunk(self, long_video):
        online = OnlineRPCA(chunk_frames=30)
        chunks = online.process(long_video.M)
        assert [c.frame_stop - c.frame_start for c in chunks] == [30, 30, 20]

    def test_incremental_push_equals_process(self, long_video):
        a = OnlineRPCA(chunk_frames=40)
        a.process(long_video.M)
        b = OnlineRPCA(chunk_frames=40)
        b.push(long_video.M[:, :40])
        b.push(long_video.M[:, 40:])
        assert np.allclose(a.assemble().L, b.assemble().L)

    def test_pixel_count_change_rejected(self, long_video, rng):
        online = OnlineRPCA(chunk_frames=40)
        online.push(long_video.M[:, :40])
        with pytest.raises(ValueError):
            online.push(rng.standard_normal((77, 10)))

    def test_empty_assemble_rejected(self):
        with pytest.raises(ValueError):
            OnlineRPCA().assemble()

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            OnlineRPCA().push(np.zeros(5))

    def test_static_scene_warm_chunks_trivial(self, rng):
        """A perfectly static, foreground-free stream: after warm-up the
        residual is ~zero and warm chunks converge almost immediately."""
        bg = rng.random((200, 1)) @ np.ones((1, 60))
        online = OnlineRPCA(chunk_frames=20)
        chunks = online.process(bg)
        assert all(c.converged for c in chunks)
        # Warm chunks see a ~1e-14-relative residual problem.
        assert chunks[1].n_iterations <= 15
        assert np.linalg.norm(chunks[1].S) < 1e-10


class TestSubspaceCache:
    """The cached-subspace fast path: a constant-rank stream must not
    re-derive the carried U every chunk (the per-chunk full SVD used to
    run unconditionally — the cost-flat contract pins the fix)."""

    @staticmethod
    def _static_stream(rng, pixels=120, frames=80):
        return rng.random((pixels, 1)) @ (1.0 + 0.05 * rng.random((1, frames)))

    def test_constant_rank_stream_costs_one_svd(self, rng):
        online = OnlineRPCA(chunk_frames=20)
        online.process(self._static_stream(rng))
        # Cold start derives U once; every warm chunk hits the cache.
        assert online.subspace_svd_calls == 1
        assert online.background_rank == 1

    def test_per_chunk_cost_stays_flat(self, rng):
        """Doubling the stream length must not add SVD calls."""
        short = OnlineRPCA(chunk_frames=20)
        short.process(self._static_stream(rng, frames=40))
        long = OnlineRPCA(chunk_frames=20)
        long.process(self._static_stream(rng, frames=160))
        assert long.subspace_svd_calls == short.subspace_svd_calls == 1

    def test_cached_subspace_is_reused_not_copied(self, rng):
        online = OnlineRPCA(chunk_frames=20)
        M = self._static_stream(rng)
        online.push(M[:, :20])
        u_after_cold = online._U
        online.push(M[:, 20:40])
        assert online._U is u_after_cold  # same array: the SVD was skipped

    def test_drift_refreshes_the_subspace(self, rng):
        """A genuine subspace change must still be picked up."""
        pixels = 120
        u1 = rng.standard_normal((pixels, 1))
        u2 = rng.standard_normal((pixels, 1))
        coeff = np.vstack([np.ones((1, 40)), rng.standard_normal((1, 40))])
        M = np.hstack([
            u1 @ np.ones((1, 40)),
            np.hstack([u1, u2]) @ coeff,  # a second, varying mode appears
        ])
        online = OnlineRPCA(chunk_frames=20)
        online.process(M)
        assert online.subspace_svd_calls > 1
        assert online.background_rank == 2

    def test_results_unchanged_by_caching(self, rng):
        """The cache may only skip SVDs whose outcome cannot differ: the
        decomposition with an effectively-disabled cache is identical."""
        M = self._static_stream(rng)
        cached = OnlineRPCA(chunk_frames=20)
        cached.process(M)
        always = OnlineRPCA(chunk_frames=20, subspace_refresh_tol=0.0)
        always.process(M)
        assert always.subspace_svd_calls == 4
        a, b = cached.assemble(), always.assemble()
        assert np.allclose(a.L, b.L, atol=1e-9)
        assert np.allclose(a.S, b.S, atol=1e-9)


class TestBoundedHistory:
    def test_keep_history_false_drops_chunk_payloads(self, rng):
        online = OnlineRPCA(chunk_frames=20, keep_history=False)
        res = online.push(rng.random((50, 1)) @ np.ones((1, 20)))
        assert res.L.shape == (50, 20)  # the caller still gets the chunk
        assert online.chunks == []
        with pytest.raises(ValueError, match="keep_history"):
            online.assemble()
