"""Tests of the chunked/online Robust PCA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rpca import foreground_f1, generate_video, rpca_ialm
from repro.rpca.online import OnlineRPCA


@pytest.fixture(scope="module")
def long_video():
    return generate_video(height=20, width=24, n_frames=80, seed=13)


class TestOnlineRPCA:
    def test_chunks_cover_stream(self, long_video):
        online = OnlineRPCA(chunk_frames=20)
        chunks = online.process(long_video.M)
        assert len(chunks) == 4
        assert chunks[0].frame_start == 0
        assert chunks[-1].frame_stop == 80
        assert online.frames_seen == 80

    def test_decomposition_sums_to_input(self, long_video):
        online = OnlineRPCA(chunk_frames=20)
        online.process(long_video.M)
        res = online.assemble()
        assert res.L.shape == long_video.M.shape
        rel = np.linalg.norm(long_video.M - res.L - res.S) / np.linalg.norm(long_video.M)
        assert rel < 1e-3

    def test_recovery_quality_reasonable(self, long_video):
        """Online trades some accuracy for throughput; the foreground
        support must still be clearly recovered."""
        online = OnlineRPCA(chunk_frames=20)
        online.process(long_video.M)
        res = online.assemble()
        assert foreground_f1(res.S, long_video.S) > 0.7
        bg_err = np.linalg.norm(res.L - long_video.L) / np.linalg.norm(long_video.L)
        assert bg_err < 0.25

    def test_carried_rank_bounded(self, long_video):
        online = OnlineRPCA(chunk_frames=20, rank_cap=3)
        online.process(long_video.M)
        assert 1 <= online.background_rank <= 3

    def test_ragged_final_chunk(self, long_video):
        online = OnlineRPCA(chunk_frames=30)
        chunks = online.process(long_video.M)
        assert [c.frame_stop - c.frame_start for c in chunks] == [30, 30, 20]

    def test_incremental_push_equals_process(self, long_video):
        a = OnlineRPCA(chunk_frames=40)
        a.process(long_video.M)
        b = OnlineRPCA(chunk_frames=40)
        b.push(long_video.M[:, :40])
        b.push(long_video.M[:, 40:])
        assert np.allclose(a.assemble().L, b.assemble().L)

    def test_pixel_count_change_rejected(self, long_video, rng):
        online = OnlineRPCA(chunk_frames=40)
        online.push(long_video.M[:, :40])
        with pytest.raises(ValueError):
            online.push(rng.standard_normal((77, 10)))

    def test_empty_assemble_rejected(self):
        with pytest.raises(ValueError):
            OnlineRPCA().assemble()

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            OnlineRPCA().push(np.zeros(5))

    def test_static_scene_warm_chunks_trivial(self, rng):
        """A perfectly static, foreground-free stream: after warm-up the
        residual is ~zero and warm chunks converge almost immediately."""
        bg = rng.random((200, 1)) @ np.ones((1, 60))
        online = OnlineRPCA(chunk_frames=20)
        chunks = online.process(bg)
        assert all(c.converged for c in chunks)
        # Warm chunks see a ~1e-14-relative residual problem.
        assert chunks[1].n_iterations <= 15
        assert np.linalg.norm(chunks[1].S) < 1e-10
