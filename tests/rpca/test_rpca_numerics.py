"""Tests of the Robust PCA numerics (shrinkage, SVT, inexact ALM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rpca.ialm import rpca_ialm
from repro.rpca.shrinkage import shrink
from repro.rpca.svt import singular_value_threshold


class TestShrink:
    def test_soft_threshold_values(self):
        x = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        assert np.allclose(shrink(x, 1.0), [-2.0, 0.0, 0.0, 0.0, 2.0])

    def test_zero_threshold_identity(self, rng):
        x = rng.standard_normal((4, 5))
        assert np.array_equal(shrink(x, 0.0), x)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            shrink(np.zeros(3), -0.1)

    def test_shrink_is_contraction(self, rng):
        x = rng.standard_normal(100)
        assert np.all(np.abs(shrink(x, 0.3)) <= np.abs(x))

    def test_sparsifies(self, rng):
        x = rng.standard_normal(1000)
        assert np.count_nonzero(shrink(x, 1.0)) < np.count_nonzero(x)


class TestSVT:
    def test_large_threshold_zeroes(self, rng):
        X = rng.standard_normal((30, 10))
        L, rank = singular_value_threshold(X, 1e6)
        assert rank == 0
        assert np.allclose(L, 0.0)

    def test_zero_threshold_reconstructs(self, rng):
        X = rng.standard_normal((40, 8))
        L, rank = singular_value_threshold(X, 0.0)
        assert rank == 8
        assert np.allclose(L, X, atol=1e-9)

    def test_reduces_rank(self, rng):
        A = rng.standard_normal((50, 3)) @ rng.standard_normal((3, 10))
        A += 0.01 * rng.standard_normal((50, 10))
        s = np.linalg.svd(A, compute_uv=False)
        L, rank = singular_value_threshold(A, float(s[3] * 1.5))
        assert rank == 3

    def test_nuclear_norm_decreases(self, rng):
        X = rng.standard_normal((20, 12))
        L, _ = singular_value_threshold(X, 0.5)
        assert np.linalg.svd(L, compute_uv=False).sum() < np.linalg.svd(X, compute_uv=False).sum()

    def test_custom_svd_engine(self, rng):
        X = rng.standard_normal((30, 6))
        calls = []

        def probe_svd(A):
            calls.append(A.shape)
            U, s, Vt = np.linalg.svd(A, full_matrices=False)
            return U, s, Vt

        singular_value_threshold(X, 0.1, svd=probe_svd)
        assert calls == [(30, 6)]

    def test_negative_threshold_rejected(self, rng):
        with pytest.raises(ValueError):
            singular_value_threshold(rng.standard_normal((5, 3)), -1.0)


class TestRPCA:
    def test_exact_recovery_low_rank_plus_sparse(self, rng):
        m, n, r = 120, 40, 2
        L0 = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
        S0 = np.zeros((m, n))
        mask = rng.random((m, n)) < 0.05
        S0[mask] = 5.0 * rng.standard_normal(int(mask.sum()))
        M = L0 + S0
        res = rpca_ialm(M, tol=1e-7, max_iter=300)
        assert res.converged
        assert np.linalg.norm(res.L - L0) / np.linalg.norm(L0) < 1e-4
        assert np.linalg.norm(res.S - S0) / max(np.linalg.norm(S0), 1) < 1e-3

    def test_decomposition_sums_to_input(self, rng):
        M = rng.standard_normal((60, 20))
        res = rpca_ialm(M, max_iter=150)
        assert np.linalg.norm(M - res.L - res.S) / np.linalg.norm(M) < 1e-5

    def test_residuals_decrease_overall(self, rng):
        L0 = rng.standard_normal((80, 2)) @ rng.standard_normal((2, 30))
        res = rpca_ialm(L0, max_iter=100)
        assert res.residuals[-1] < res.residuals[0]

    def test_pure_low_rank_gives_empty_sparse(self, rng):
        L0 = rng.standard_normal((100, 3)) @ rng.standard_normal((3, 25))
        res = rpca_ialm(L0, tol=1e-8, max_iter=300)
        assert np.linalg.norm(res.S) < 1e-3 * np.linalg.norm(L0)

    def test_zero_matrix_trivial(self):
        res = rpca_ialm(np.zeros((10, 5)))
        assert res.converged and res.n_iterations == 0

    def test_max_iter_respected(self, rng):
        res = rpca_ialm(rng.standard_normal((40, 15)), tol=0.0, max_iter=7)
        assert res.n_iterations == 7
        assert not res.converged

    def test_callback_invoked(self, rng):
        seen = []
        rpca_ialm(rng.standard_normal((30, 10)), max_iter=5, tol=0.0,
                  callback=lambda it, r: seen.append((it, r)))
        assert [it for it, _ in seen] == [1, 2, 3, 4, 5]

    def test_rank_history_tracked(self, rng):
        L0 = rng.standard_normal((60, 2)) @ rng.standard_normal((2, 20))
        res = rpca_ialm(L0, max_iter=50)
        assert len(res.ranks) == res.n_iterations
        assert res.final_rank <= 20

    def test_invalid_input_rejected(self):
        with pytest.raises(ValueError):
            rpca_ialm(np.zeros(5))

    def test_custom_svd_engine_used(self, rng):
        calls = []

        def probe_svd(A):
            calls.append(1)
            return np.linalg.svd(A, full_matrices=False)

        rpca_ialm(rng.standard_normal((30, 10)), max_iter=3, tol=0.0, svd=probe_svd)
        assert len(calls) == 3
