"""Tests of the video generator and end-to-end background subtraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rpca.background import foreground_f1, subtract_background
from repro.rpca.video import frames_to_matrix, generate_video, matrix_to_frames


class TestVideoGenerator:
    def test_shapes(self):
        v = generate_video(height=20, width=30, n_frames=15)
        assert v.M.shape == (600, 15)
        assert v.L.shape == v.M.shape and v.S.shape == v.M.shape
        assert v.n_pixels == 600

    def test_decomposition_identity_without_noise(self):
        v = generate_video(noise_std=0.0)
        assert np.allclose(v.M, v.L + v.S)

    def test_background_is_low_rank(self):
        v = generate_video(illumination_drift=0.05)
        s = np.linalg.svd(v.L, compute_uv=False)
        assert np.sum(s > 1e-8 * s[0]) <= 2  # static scene + drift mode

    def test_foreground_is_sparse(self):
        v = generate_video(height=36, width=48, n_frames=40, n_objects=2)
        density = np.count_nonzero(v.S) / v.S.size
        assert density < 0.15

    def test_paper_geometry_supported(self):
        # Shape-only check for the full ViSOR geometry (fast: no RPCA).
        v = generate_video(height=288, width=384, n_frames=4, n_objects=1)
        assert v.M.shape == (110_592, 4)

    def test_deterministic_per_seed(self):
        a = generate_video(seed=7)
        b = generate_video(seed=7)
        assert np.array_equal(a.M, b.M)
        c = generate_video(seed=8)
        assert not np.array_equal(a.M, c.M)

    def test_noise_recorded(self):
        v = generate_video(noise_std=0.01, seed=3)
        assert np.linalg.norm(v.noise) > 0
        assert np.allclose(v.M, v.L + v.S + v.noise)

    def test_frame_view(self):
        v = generate_video(height=10, width=12, n_frames=5)
        f = v.frame(2)
        assert f.shape == (10, 12)
        assert np.array_equal(f.ravel(), v.M[:, 2])

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            generate_video(height=2, width=10, n_frames=10)
        with pytest.raises(ValueError):
            generate_video(n_frames=1)


class TestFrameMatrixRoundtrip:
    def test_roundtrip(self, rng):
        frames = rng.standard_normal((6, 9, 11))
        M = frames_to_matrix(frames)
        assert M.shape == (99, 6)
        assert np.array_equal(matrix_to_frames(M, 9, 11), frames)

    def test_column_is_a_frame(self, rng):
        frames = rng.standard_normal((3, 4, 5))
        M = frames_to_matrix(frames)
        assert np.array_equal(M[:, 1], frames[1].ravel())

    def test_bad_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            frames_to_matrix(rng.standard_normal((3, 4)))
        with pytest.raises(ValueError):
            matrix_to_frames(rng.standard_normal((10, 3)), 4, 4)


class TestBackgroundSubtraction:
    def test_recovers_background_and_foreground(self):
        v = generate_video(height=24, width=32, n_frames=30, seed=1)
        bs = subtract_background(v, tol=1e-6, max_iter=120)
        assert bs.result.converged
        assert bs.background_error < 0.05
        assert foreground_f1(bs.result.S, v.S) > 0.8

    def test_background_rank_small(self):
        v = generate_video(height=20, width=24, n_frames=25, seed=2)
        bs = subtract_background(v, max_iter=120)
        assert bs.result.final_rank <= 5

    def test_frame_outputs_shaped(self):
        v = generate_video(height=16, width=20, n_frames=12, seed=3)
        bs = subtract_background(v, max_iter=60)
        assert bs.background.shape == (12, 16, 20)
        assert bs.foreground.shape == (12, 16, 20)

    def test_robust_to_noise(self):
        v = generate_video(height=20, width=24, n_frames=25, noise_std=0.01, seed=4)
        bs = subtract_background(v, tol=1e-4, max_iter=120)
        assert bs.background_error < 0.1

    def test_f1_zero_when_nothing_found(self):
        assert foreground_f1(np.zeros((5, 5)), np.ones((5, 5))) == 0.0
