"""Tests of the block-size autotuner (Figure 7)."""

from __future__ import annotations

import pytest

from repro.gpusim.device import C2050
from repro.kernels.config import REFERENCE_CONFIG
from repro.tuning import (
    TuningCache,
    apply_qt_h_kernel_gflops,
    autotune,
    candidate_blocks,
    is_feasible,
    sweep_block_sizes,
)


class TestFeasibility:
    def test_paper_block_feasible(self):
        assert is_feasible(128, 16, REFERENCE_CONFIG, C2050)

    def test_giant_blocks_infeasible(self):
        # 1024x64 needs a 256 KB register tile: cannot fit.
        assert not is_feasible(1024, 64, REFERENCE_CONFIG, C2050)

    def test_wider_than_tall_infeasible(self):
        assert not is_feasible(16, 64, REFERENCE_CONFIG, C2050)

    def test_candidates_all_feasible(self):
        for c in candidate_blocks(REFERENCE_CONFIG, C2050):
            assert is_feasible(c.height, c.width, REFERENCE_CONFIG, C2050)

    def test_candidate_config_roundtrip(self):
        c = candidate_blocks(REFERENCE_CONFIG, C2050)[0]
        cfg = c.config(REFERENCE_CONFIG)
        assert cfg.block_rows == c.height and cfg.panel_width == c.width


class TestSweep:
    def test_sweep_sorted_descending(self):
        entries = sweep_block_sizes()
        g = [e.gflops for e in entries]
        assert g == sorted(g, reverse=True)

    def test_paper_optimum_is_competitive(self):
        """Figure 7: 128x16 gives 'our best overall performance' (388).
        The model must rank it within 5% of its global best and near the
        paper's number."""
        entries = sweep_block_sizes()
        best = entries[0].gflops
        e128 = next(e for e in entries if (e.height, e.width) == (128, 16))
        assert e128.gflops >= 0.95 * best
        assert 0.7 * 388 <= e128.gflops <= 1.3 * 388

    def test_interior_optimum_in_width(self):
        """Section IV-F: 'the optimal solution is somewhere between the
        two extremes' — at height 128, neither the narrowest nor the
        widest feasible width wins."""
        entries = sweep_block_sizes()
        at128 = {e.width: e.gflops for e in entries if e.height == 128}
        widths = sorted(at128)
        best_w = max(at128, key=at128.get)
        assert best_w not in (widths[0], widths[-1])

    def test_narrow_widths_memory_bound(self):
        assert apply_qt_h_kernel_gflops(128, 4) < apply_qt_h_kernel_gflops(128, 16)

    def test_oversized_heights_lose_occupancy(self):
        assert apply_qt_h_kernel_gflops(512, 16) < apply_qt_h_kernel_gflops(128, 16)

    def test_custom_grid(self):
        entries = sweep_block_sizes(heights=(64, 128), widths=(8, 16))
        assert {(e.height, e.width) for e in entries} == {(64, 8), (64, 16), (128, 8), (128, 16)}


class TestAutotune:
    def test_returns_tuned_config(self):
        tuned, entries = autotune()
        assert tuned.block_rows == entries[0].height
        assert tuned.panel_width == entries[0].width
        assert entries

    def test_best_beats_reference_within_model(self):
        tuned, entries = autotune()
        ref = apply_qt_h_kernel_gflops(REFERENCE_CONFIG.block_rows, REFERENCE_CONFIG.panel_width)
        assert entries[0].gflops >= ref * 0.999


class TestCache:
    def test_roundtrip_in_memory(self):
        cache = TuningCache()
        _, entries = autotune()
        cache.put("C2050", "regfile_transpose", entries[:5])
        got = cache.get("C2050", "regfile_transpose")
        assert got == entries[:5]
        assert cache.best("C2050", "regfile_transpose") == entries[0]

    def test_missing_key(self):
        cache = TuningCache()
        assert cache.get("X", "y") is None
        assert cache.best("X", "y") is None

    def test_persistence(self, tmp_path):
        path = tmp_path / "tune.json"
        cache = TuningCache(path)
        _, entries = autotune()
        cache.put("C2050", "regfile_transpose", entries[:3])
        reloaded = TuningCache(path)
        assert reloaded.get("C2050", "regfile_transpose") == entries[:3]
        assert len(reloaded) == 1
