"""Robustness of the tuning-cache persistence layer."""

from __future__ import annotations

import json
import os

from repro.tuning import TuningCache
from repro.tuning.autotune import SweepEntry

ENTRIES = [SweepEntry(64, 16, 120.0), SweepEntry(128, 16, 155.5)]


class TestAtomicWrites:
    def test_put_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        cache.put("C2050", "default", ENTRIES)
        assert path.exists()
        assert os.listdir(tmp_path) == ["cache.json"]

    def test_put_replaces_whole_file(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        cache.put("C2050", "default", ENTRIES)
        cache.put("C2050", "default", ENTRIES[:1])
        reloaded = TuningCache(path)
        assert len(reloaded.get("C2050", "default")) == 1

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        TuningCache(path).put("C2050", "default", ENTRIES)
        best = TuningCache(path).best("C2050", "default")
        assert best == SweepEntry(128, 16, 155.5)


class TestCorruptLoad:
    def test_truncated_json_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        TuningCache(path).put("C2050", "default", ENTRIES)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate a torn write
        cache = TuningCache(path)
        assert len(cache) == 0
        assert cache.get("C2050", "default") is None

    def test_garbage_bytes_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_bytes(b"\x00\xff\x00 not json")
        assert len(TuningCache(path)) == 0

    def test_non_dict_json_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert len(TuningCache(path)) == 0

    def test_recovers_by_writing_over_corrupt_file(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{corrupt")
        cache = TuningCache(path)
        cache.put("C2050", "default", ENTRIES)
        assert TuningCache(path).get("C2050", "default") == ENTRIES
