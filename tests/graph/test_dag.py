"""Structural tests of the CAQR launch DAG (repro.graph.dag)."""

import math

import pytest

from repro.caqr_gpu import enumerate_caqr_launches
from repro.gpusim.device import C2050
from repro.graph import caqr_launch_graph
from repro.kernels.config import REFERENCE_CONFIG

SHAPES = [(256, 48), (1000, 192), (4096, 64), (130, 200), (64, 16)]


@pytest.mark.parametrize("m,n", SHAPES)
def test_graph_validates(m, n):
    g = caqr_launch_graph(m, n)
    g.validate()  # ids positional, edges backwards, no duplicate deps
    assert len(g) > 0


@pytest.mark.parametrize("m,n", SHAPES)
def test_graph_merges_back_into_serial_stream(m, n):
    """Per (kernel, tag): the split nodes cover the serial launch's blocks."""
    serial = list(enumerate_caqr_launches(m, n))
    g = caqr_launch_graph(m, n)
    ser = {}
    for spec in serial:
        key = (spec.kernel, spec.tag)
        assert key not in ser, "serial stream repeats a (kernel, tag)"
        ser[key] = spec.n_blocks
    got = {}
    for node in g.nodes:
        # Split parts carry "/t0" / "/rest" tag suffixes on the serial tag.
        tag = node.spec.tag
        for suffix in ("/t0", "/rest"):
            if tag.endswith(suffix):
                tag = tag[: -len(suffix)]
        got[(node.spec.kernel, tag)] = got.get((node.spec.kernel, tag), 0) + node.spec.n_blocks
    assert got == ser


def test_lookahead_loosens_factor_deps():
    m, n = 1000, 192
    la = caqr_launch_graph(m, n, lookahead=True)
    bar = caqr_launch_graph(m, n, lookahead=False)
    assert len(la) == len(bar)
    # Same nodes in the same order; look-ahead edges are a subset.
    stricter = 0
    for a, b in zip(la.nodes, bar.nodes):
        assert a.spec == b.spec
        assert set(a.deps) <= set(b.deps)
        stricter += len(b.deps) - len(a.deps)
    assert stricter > 0
    # The look-ahead factor of panel p>0 depends (transitively through the
    # transpose node) only on the previous panel's *first-tile* updates —
    # never on the wide "rest" launches.
    by_id = {node.id: node for node in la.nodes}
    seen_factor_dep = False
    for node in la.nodes:
        if node.kernel in ("transpose", "factor") and node.panel > 0:
            prev_upds = [
                d
                for d in node.deps
                if by_id[d].panel == node.panel - 1 and by_id[d].part
            ]
            if prev_upds:
                seen_factor_dep = True
                assert all(by_id[d].part == "t0" for d in prev_upds)
    assert seen_factor_dep


def test_update_column_intervals_tile_the_trailing_matrix():
    m, n = 1000, 192
    g = caqr_launch_graph(m, n)
    cfg = REFERENCE_CONFIG
    k = min(m, n)
    for panel, c0 in enumerate(range(0, k, cfg.panel_width)):
        pw_p = min(cfg.panel_width, k - c0)
        upds = [
            nd for nd in g.nodes if nd.panel == panel and nd.kernel == "apply_qt_h"
        ]
        if c0 + pw_p >= n:
            assert not upds
            continue
        cols = sorted(nd.cols for nd in upds)
        assert cols[0][0] == c0 + pw_p
        assert cols[-1][1] == n
        for (a0, a1), (b0, b1) in zip(cols, cols[1:]):
            assert a1 == b0  # contiguous, non-overlapping


def test_critical_path_below_serial_sum():
    for m, n in [(1000, 192), (100000, 192)]:
        g = caqr_launch_graph(m, n)
        assert 0 < g.critical_path_seconds(C2050) < g.serial_seconds(C2050)


def test_bad_shapes_rejected():
    with pytest.raises(ValueError):
        caqr_launch_graph(0, 5)
    with pytest.raises(ValueError):
        caqr_launch_graph(5, 0)


def test_tile_split_block_counts():
    """The t0/rest split preserves the serial tiling arithmetic."""
    from repro.caqr_gpu import _tile_width

    m, n = 2000, 192
    g = caqr_launch_graph(m, n)
    cfg = REFERENCE_CONFIG
    for nd in g.nodes:
        if nd.part != "t0" or nd.kernel != "apply_qt_h":
            continue
        c0 = nd.cols[0]  # first trailing column == next panel start
        pw_p = min(cfg.panel_width, min(m, n) - (c0 - cfg.panel_width))
        bh = max(cfg.block_rows, pw_p)
        wt = n - c0
        tile_w = _tile_width(wt, bh, cfg, C2050)
        assert nd.cols[1] - nd.cols[0] == min(tile_w, wt)
