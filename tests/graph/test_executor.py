"""Look-ahead executor: correctness vs serial CAQR, bit-identity contracts."""

import numpy as np
import pytest

from repro.core.caqr import caqr
from repro.graph import caqr_lookahead, form_q_columns

SHAPES = [
    ((1000, 50), {}),
    ((257, 48), {}),  # ragged last block
    ((120, 200), {}),  # wide
    ((63, 17), {}),  # single panel-ish, shorter than block_rows
    ((500, 40), {"tree_shape": "binomial"}),
    ((500, 40), {"tree_shape": "flat"}),
    ((130, 10), {"panel_width": 7, "block_rows": 8}),  # tiny ragged tail
]


def _residuals(A, f):
    Q = f.form_q()
    resid = np.linalg.norm(Q @ f.R - A) / np.linalg.norm(A)
    orth = np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1]))
    return resid, orth


@pytest.mark.parametrize("shape,kw", SHAPES)
def test_matches_serial_batched(shape, kw):
    rng = np.random.default_rng(7)
    A = rng.standard_normal(shape)
    f = caqr_lookahead(A, **kw)
    ref = caqr(A, batched=True, **kw)
    resid, orth = _residuals(A, f)
    assert resid < 1e-13
    assert orth < 1e-12
    assert np.max(np.abs(f.R - ref.R)) < 1e-14 * np.linalg.norm(A)


@pytest.mark.parametrize("shape,kw", SHAPES)
def test_threaded_bit_identical_to_serial(shape, kw):
    """Same tiling (workers), different engine (threaded) -> same bits."""
    rng = np.random.default_rng(3)
    A = rng.standard_normal(shape)
    ft = caqr_lookahead(A, workers=3, threaded=True, **kw)
    fs = caqr_lookahead(A, workers=3, threaded=False, **kw)
    assert np.array_equal(ft.R, fs.R)
    assert np.array_equal(ft.form_q(), fs.form_q())


def test_lookahead_false_matches_lookahead_true():
    rng = np.random.default_rng(11)
    A = rng.standard_normal((600, 96))
    fa = caqr_lookahead(A, workers=3, lookahead=True)
    fb = caqr_lookahead(A, workers=3, lookahead=False)
    # The barrier graph runs the same tasks in a compatible order; the
    # per-task arithmetic is identical, so so are the results.
    assert np.array_equal(fa.R, fb.R)


def test_apply_qt_apply_q_match_reference():
    rng = np.random.default_rng(5)
    A = rng.standard_normal((800, 64))
    B = rng.standard_normal((800, 5))
    f = caqr_lookahead(A)
    ref = caqr(A, batched=True)
    assert np.max(np.abs(f.apply_qt(B.copy()) - ref.apply_qt(B.copy()))) < 1e-12
    assert np.max(np.abs(f.apply_q(B.copy()) - ref.apply_q(B.copy()))) < 1e-12
    # 1-D right-hand side round-trips like the reference factors.
    b = rng.standard_normal(800)
    out = f.apply_q(f.apply_qt(b.copy()))
    assert np.allclose(out, b)


def test_form_q_columns_bit_identity_and_accuracy():
    rng = np.random.default_rng(9)
    A = rng.standard_normal((700, 90))
    ft = caqr_lookahead(A, workers=3)
    Qt = form_q_columns(ft, workers=3, threaded=True)
    Qs = form_q_columns(ft, workers=3, threaded=False)
    assert np.array_equal(Qt, Qs)
    assert np.allclose(Qt, ft.form_q(), atol=1e-12)


def test_form_q_columns_tsqr_factors():
    from repro.core.tsqr import tsqr

    rng = np.random.default_rng(13)
    A = rng.standard_normal((900, 70))
    f = tsqr(A)
    Qc = form_q_columns(f, workers=3)
    assert np.allclose(Qc, f.form_q(), atol=1e-12)
    assert np.allclose(Qc @ f.R, A, atol=1e-10)


def test_float32_supported():
    rng = np.random.default_rng(17)
    A = rng.standard_normal((500, 60)).astype(np.float32)
    f = caqr_lookahead(A, workers=2)
    assert f.R.dtype == np.float32
    Q = f.form_q()
    assert Q.dtype == np.float32
    assert np.linalg.norm(Q @ f.R - A) / np.linalg.norm(A) < 1e-5


def test_plumbed_through_caqr():
    rng = np.random.default_rng(19)
    A = rng.standard_normal((400, 60))
    f = caqr(A, lookahead=True, workers=2)
    resid, orth = _residuals(A, f)
    assert resid < 1e-13 and orth < 1e-12
    with pytest.raises(ValueError):
        caqr(A, lookahead=True, structured=True)
    with pytest.raises(ValueError):
        caqr(A, lookahead=True, batched=False)


def test_bad_inputs():
    rng = np.random.default_rng(23)
    with pytest.raises(ValueError):
        caqr_lookahead(rng.standard_normal(8))
    with pytest.raises(ValueError):
        caqr_lookahead(rng.standard_normal((8, 4)), panel_width=0)
    with pytest.raises(ValueError):
        caqr_lookahead(rng.standard_normal((8, 4)), workers=0)
    f = caqr_lookahead(rng.standard_normal((64, 8)))
    with pytest.raises(ValueError):
        f.apply_qt(rng.standard_normal((5, 2)))
    with pytest.raises(ValueError):
        f.apply_q(rng.standard_normal((5, 2)))
