"""The TaskGraph representation: construction rules, identity, registry."""

from __future__ import annotations

import pytest

from repro.graph.highlevel import PRODUCERS, LayerAnnotations, TaskGraph, producer


def _chain(n=3, name="chain"):
    tg = TaskGraph(name=name)
    prev = tg.add_task("work", ("t", 0))
    for i in range(1, n):
        prev = tg.add_task("work", ("t", i), deps=[prev])
    return tg


class TestConstruction:
    def test_duplicate_task_key_raises(self):
        tg = TaskGraph()
        tg.add_task("a", "k")
        with pytest.raises(ValueError, match="duplicate task key"):
            tg.add_task("a", "k")

    def test_duplicate_layer_raises(self):
        tg = TaskGraph()
        tg.add_layer("panel", priority=1)
        with pytest.raises(ValueError, match="already exists"):
            tg.add_layer("panel")

    def test_layers_spring_into_existence(self):
        tg = TaskGraph()
        tg.add_task("fresh", "k")
        assert "fresh" in tg.layers
        assert tg.layers["fresh"].annotations == LayerAnnotations()

    def test_duplicate_deps_collapse_preserving_first(self):
        tg = TaskGraph()
        tg.add_task("a", "x")
        tg.add_task("a", "y")
        tg.add_task("a", "z", deps=["y", "x", "y", "x"])
        assert tg.task("z").deps == ("y", "x")

    def test_emission_seq_is_global_across_layers(self):
        tg = TaskGraph()
        tg.add_task("a", "k0")
        tg.add_task("b", "k1")
        tg.add_task("a", "k2")
        assert [tg.task(k).seq for k in ("k0", "k1", "k2")] == [0, 1, 2]

    def test_ordering_cost_precedence(self):
        tg = TaskGraph()
        tg.add_layer("weighted", cost=3.0)
        tg.add_task("weighted", "layer_default")
        tg.add_task("weighted", "explicit", cost=7.0)
        tg.add_task("bare", "fallback")
        assert tg.ordering_cost(tg.task("layer_default")) == 3.0
        assert tg.ordering_cost(tg.task("explicit")) == 7.0
        assert tg.ordering_cost(tg.task("fallback")) == 1.0


class TestValidate:
    def test_unknown_dep_raises(self):
        tg = TaskGraph()
        tg.add_task("a", "k", deps=["ghost"])
        with pytest.raises(ValueError, match="unknown key"):
            tg.validate()

    def test_self_dep_raises(self):
        tg = TaskGraph()
        tg.add_task("a", "k", deps=["k"])
        with pytest.raises(ValueError, match="depends on itself"):
            tg.validate()

    def test_cycle_raises(self):
        tg = TaskGraph()
        tg.add_task("a", "x", deps=["y"])
        tg.add_task("a", "y", deps=["x"])
        with pytest.raises(ValueError, match="dependency cycle"):
            tg.validate()

    def test_forward_deps_are_legal(self):
        # Emission order need not be topological: a dep may point at a
        # task emitted later.
        tg = TaskGraph()
        tg.add_task("a", "late_consumer", deps=["early_producer"])
        tg.add_task("a", "early_producer")
        tg.validate()


class TestFingerprint:
    def test_payloads_do_not_affect_fingerprint(self):
        from repro.core.randomized_svd import emit_rsvd_layers

        structural = emit_rsvd_layers(500, 60, 8)
        bound = emit_rsvd_layers(500, 60, 8, bind={"A": None, "rng": None})
        assert structural.fingerprint() == bound.fingerprint()
        assert bound.task(("qr", 0)).fn is not None
        assert structural.task(("qr", 0)).fn is None

    def test_structure_changes_move_the_fingerprint(self):
        base = _chain(3).fingerprint()
        assert _chain(4).fingerprint() != base
        assert _chain(3, name="other").fingerprint() != base
        with_cost = _chain(3)
        # Rebuild with a cost annotation on the layer.
        tg = TaskGraph(name="chain")
        tg.add_layer("work", cost=2.0)
        prev = tg.add_task("work", ("t", 0))
        for i in range(1, 3):
            prev = tg.add_task("work", ("t", i), deps=[prev])
        assert tg.fingerprint() != with_cost.fingerprint()

    def test_info_annotations_are_hashed(self):
        a = TaskGraph()
        a.add_task("l", "k", panel=0)
        b = TaskGraph()
        b.add_task("l", "k", panel=1)
        assert a.fingerprint() != b.fingerprint()


class TestRegistry:
    def test_every_producer_resolves(self):
        for name in PRODUCERS:
            fn = producer(name)
            assert callable(fn), name

    def test_unknown_producer_raises_with_roster(self):
        with pytest.raises(KeyError, match="caqr"):
            producer("nope")

    def test_producers_emit_taskgraphs(self):
        from repro.distributed.sharded import build_shard_schedule
        from repro.graph.executor import build_lookahead_schedule
        from repro.runtime.policy import ExecutionPolicy

        graphs = [
            producer("caqr")(2048, 128),
            producer("rsvd")(500, 60, 8),
            producer("rpca_ialm")(400, 30),
            producer("sharded_reduction")(build_shard_schedule(4096, 64, shards=4)),
            producer("lookahead")(
                build_lookahead_schedule(1024, 96, ExecutionPolicy(path="lookahead"))
            ),
        ]
        for tg in graphs:
            assert isinstance(tg, TaskGraph)
            tg.validate()
            assert len(tg) > 0


def test_describe_lists_layers():
    tg = producer("rsvd")(500, 60, 8)
    text = tg.describe()
    for layer in ("sketch", "qr", "project", "svd"):
        assert layer in text
