"""Properties of the static ordering pass (``repro.graph.order``).

The order replaced implicit program-order scheduling, so these pin its
contract: valid topological order over every producer's graphs,
deterministic across runs / interpreters / hash seeds, annotation-aware,
and — for the CAQR graph — collapsing back onto a single stream
node-for-node with the serial launch DAG.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.graph.dag import caqr_launch_graph, emit_caqr_layers, launch_graph_from_tasks
from repro.graph.highlevel import TaskGraph, producer
from repro.graph.order import critical_path_lengths, order_fingerprint, static_order

REPO = Path(__file__).resolve().parents[2]


def _producer_graphs():
    from repro.distributed.sharded import build_shard_schedule
    from repro.graph.executor import build_lookahead_schedule
    from repro.runtime.policy import ExecutionPolicy

    return {
        "caqr": producer("caqr")(4096, 128),
        "caqr_barrier": producer("caqr")(4096, 128, lookahead=False),
        "rsvd": producer("rsvd")(800, 60, 8, power_iters=2),
        "rpca_ialm": producer("rpca_ialm")(400, 30),
        "sharded": producer("sharded_reduction")(
            build_shard_schedule(8192, 64, shards=6, fanin=2)
        ),
        "lookahead": producer("lookahead")(
            build_lookahead_schedule(2048, 96, ExecutionPolicy(path="lookahead"))
        ),
    }


def assert_topological(tg, order):
    assert sorted(map(repr, order)) == sorted(repr(t.key) for t in tg.tasks())
    pos = {k: i for i, k in enumerate(order)}
    for t in tg.tasks():
        for d in t.deps:
            assert pos[d] < pos[t.key], f"{d!r} must precede {t.key!r}"


class TestTopological:
    @pytest.mark.parametrize("name", list(_producer_graphs()))
    def test_every_producer_graph_orders_topologically(self, name):
        tg = _producer_graphs()[name]
        assert_topological(tg, static_order(tg))

    def test_cycle_is_rejected(self):
        tg = TaskGraph()
        tg.add_task("a", "x", deps=["y"])
        tg.add_task("a", "y", deps=["x"])
        with pytest.raises(ValueError, match="dependency cycle"):
            static_order(tg)


class TestDeterminism:
    def test_rebuilt_graph_orders_identically(self):
        for name, tg in _producer_graphs().items():
            again = _producer_graphs()[name]
            assert static_order(tg) == static_order(again), name
            assert order_fingerprint(tg) == order_fingerprint(again), name

    def test_order_is_hash_seed_independent(self):
        # The CI determinism pin: keys are tuples of strings and ints, so
        # a hash-order leak anywhere in the pass would show up as a
        # different order under a different PYTHONHASHSEED.
        prog = (
            "from repro.graph.highlevel import producer\n"
            "from repro.graph.order import order_fingerprint\n"
            "print(order_fingerprint(producer('caqr')(4096, 128)))\n"
            "print(order_fingerprint(producer('rsvd')(800, 60, 8, power_iters=2)))\n"
        )
        outs = []
        for seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = str(REPO / "src")
            proc = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True,
                text=True,
                env=env,
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1] == outs[2]

    def test_worker_count_does_not_change_execution_set(self):
        # run_task_graph honors the same static order for any worker
        # count — the executed sequence at workers=1 IS the static order,
        # and a threaded run executes the same task set.
        from repro.graph.executor import run_task_graph

        log: list = []
        tg = TaskGraph(name="probe")
        keys = []
        prev = None
        for i in range(6):
            deps = [prev] if prev is not None else []
            prev = tg.add_task(
                "work", ("t", i), (lambda i=i: log.append(("t", i))), deps=deps
            )
            keys.append(prev)
        run_task_graph(tg, workers=1)
        assert log == static_order(tg)
        serial = list(log)
        log.clear()
        run_task_graph(tg, workers=4)
        assert log == serial  # a chain admits exactly one order


class TestAnnotations:
    def _two_roots(self, hi_priority):
        tg = TaskGraph()
        tg.add_layer("lo", priority=0)
        tg.add_layer("hi", priority=hi_priority)
        tg.add_task("lo", "first_emitted")
        tg.add_task("hi", "second_emitted")
        return tg

    def test_layer_priority_beats_emission_order(self):
        assert static_order(self._two_roots(hi_priority=3))[0] == "second_emitted"

    def test_without_priority_emission_order_wins(self):
        assert static_order(self._two_roots(hi_priority=0))[0] == "first_emitted"

    def test_priority_beats_critical_path(self):
        tg = TaskGraph()
        tg.add_layer("urgent", priority=1)
        # Long chain rooted at a normal-priority task...
        prev = tg.add_task("work", ("chain", 0))
        for i in range(1, 5):
            prev = tg.add_task("work", ("chain", i), deps=[prev])
        # ...still yields to the priority-annotated singleton.
        tg.add_task("urgent", "vip")
        assert static_order(tg)[0] == "vip"

    def test_longer_critical_path_ordered_first(self):
        tg = TaskGraph()
        tg.add_task("work", ("short", 0))  # emitted first, cp = 1
        prev = tg.add_task("work", ("long", 0))  # cp = 3
        for i in range(1, 3):
            prev = tg.add_task("work", ("long", i), deps=[prev])
        assert static_order(tg)[0] == ("long", 0)

    def test_cost_annotation_weights_the_path(self):
        tg = TaskGraph()
        tg.add_layer("heavy", cost=10.0)
        tg.add_task("light", ("light", 0))
        tg.add_task("light", ("light", 1), deps=[("light", 0)])
        tg.add_task("heavy", ("heavy", 0))  # one task, but weight 10
        cp = critical_path_lengths(tg)
        assert cp[("heavy", 0)] == 10.0
        assert cp[("light", 0)] == 2.0
        assert static_order(tg)[0] == ("heavy", 0)

    def test_stream_annotation_pins_simulator_streams(self):
        from repro.gpusim import list_schedule_graph

        tg = emit_caqr_layers(4096, 128)
        # Re-emit with explicit stream pins via a synthetic wrapper graph:
        pinned = TaskGraph(name=tg.name)
        pinned.add_layer("panel", stream=0)
        pinned.add_layer("tree", stream=0)
        pinned.add_layer("trailing", stream=1)
        for t in tg.tasks():
            pinned.add_task(t.layer, t.key, deps=t.deps, spec=t.spec, **dict(t.info))
        tl = list_schedule_graph(pinned, streams=4)
        by_layer = {}
        for ev in tl.launches:
            task = next(t for t in pinned.tasks() if t.seq == ev.node_id)
            by_layer.setdefault(task.layer, set()).add(ev.stream)
        assert by_layer["panel"] == {0}
        assert by_layer["tree"] == {0}
        assert by_layer["trailing"] == {1}


class TestCAQRSerialMerge:
    """On one stream the CAQR task graph merges back into the serial
    launch stream: same nodes, a topological sequence, zero idle time."""

    @pytest.mark.parametrize("shape", [(2048, 128), (16384, 192)])
    @pytest.mark.parametrize("lookahead", [True, False])
    def test_single_stream_matches_serial_launch_dag(self, shape, lookahead):
        from repro.gpusim import list_schedule_graph

        m, n = shape
        tg = emit_caqr_layers(m, n, lookahead=lookahead)
        lg = caqr_launch_graph(m, n, lookahead=lookahead)
        tl = list_schedule_graph(tg, streams=1)
        # Node-for-node: every launch node appears exactly once.
        assert sorted(ev.node_id for ev in tl.launches) == [
            node.id for node in lg.nodes
        ]
        # The sequence respects the launch DAG's own dependencies.
        order = [ev.node_id for ev in sorted(tl.launches, key=lambda e: e.start)]
        pos = {nid: i for i, nid in enumerate(order)}
        for node in lg.nodes:
            for d in node.deps:
                assert pos[d] < pos[node.id]
        # One stream, back-to-back: the makespan is the serial runtime.
        assert tl.makespan == pytest.approx(lg.serial_seconds(tl.device), rel=1e-12)

    def test_lowering_preserves_node_identity(self):
        from repro.graph.dag import REFERENCE_CONFIG

        tg = emit_caqr_layers(2048, 128)
        lg = launch_graph_from_tasks(tg, REFERENCE_CONFIG, True)
        assert len(lg.nodes) == len(tg)
        for node, task in zip(lg.nodes, tg.tasks()):
            assert node.id == task.seq
            assert node.spec is task.spec
