"""Streaming background model: bounded memory, cached subspace, drift."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming import StreamingBackground

PIXELS = 30


def static_frames(n_frames: int, seed: int, basis_seed: int = 0) -> np.ndarray:
    """Rank-1 scene: one fixed pixel pattern, per-frame intensity."""
    brng = np.random.default_rng(basis_seed)
    u = brng.standard_normal(PIXELS)
    coeff = 1.0 + 0.1 * np.random.default_rng(seed).standard_normal(n_frames)
    return np.outer(coeff, u)  # frames as rows


def spike_frames(n_frames: int, seed: int) -> np.ndarray:
    """Sparse-corruption chunk: most energy belongs in S, not L."""
    rng = np.random.default_rng(seed)
    F = np.zeros((n_frames, PIXELS))
    mask = rng.random(F.shape) < 0.2
    F[mask] = 25.0 * rng.standard_normal(int(mask.sum()))
    return F


class TestStaticScene:
    def test_one_subspace_svd_total(self):
        """Constant-rank stream: the carried subspace is cached, so the
        per-chunk cost stays flat — one SVD at cold start, zero after."""
        sb = StreamingBackground(chunk_frames=10, rank_cap=2)
        for i in range(6):
            sb.push(static_frames(10, seed=i))
        assert sb.frames_seen == 60
        assert sb.chunks_processed == 6
        assert sb.subspace_svd_calls == 1
        assert sb.background_rank == 1

    def test_no_redetection_and_no_history(self):
        sb = StreamingBackground(chunk_frames=10)
        for i in range(4):
            sb.push(static_frames(10, seed=i))
        assert sb.redetections == 0
        assert all(not s.redetected for s in sb.summaries)
        # Bounded-memory mode: the inner model keeps no L/S history.
        assert sb._model.chunks == []
        with pytest.raises(ValueError, match="keep_history"):
            sb._model.assemble()

    def test_foreground_fraction_is_low(self):
        sb = StreamingBackground(chunk_frames=10)
        for i in range(3):
            sb.push(static_frames(10, seed=i))
        assert all(s.foreground_fraction < 0.1 for s in sb.summaries[1:])

    def test_ragged_tail_via_finish(self):
        sb = StreamingBackground(chunk_frames=10)
        sb.push(static_frames(23, seed=5))
        done = sb.finish()
        assert sb.frames_seen == 23
        assert done[-1].frame_stop == 23

    def test_arbitrary_push_heights_reblock(self):
        sb = StreamingBackground(chunk_frames=10)
        F = static_frames(30, seed=9)
        for lo, hi in [(0, 7), (7, 19), (19, 30)]:
            sb.push(F[lo:hi])
        sb.finish()
        assert sb.frames_seen == 30
        assert sb.chunks_processed == 3


class TestDriftAdaptation:
    def test_sustained_drift_triggers_redetection(self):
        sb = StreamingBackground(
            chunk_frames=10, drift_threshold=0.5, drift_patience=2
        )
        for i in range(2):
            sb.push(static_frames(10, seed=i))
        # Scene break: two chunks dominated by unexplained sparse energy.
        sb.push(spike_frames(10, seed=100))
        sb.push(spike_frames(10, seed=101))
        assert all(
            s.foreground_fraction > 0.5 for s in sb.summaries[2:4]
        ), "spike chunks must read as foreground-dominated"
        # The next chunk cold-starts on the new scene.
        sb.push(static_frames(10, seed=200, basis_seed=7))
        assert sb.redetections == 1
        assert sb.summaries[4].redetected
        # And the new scene is re-learned and stable again.
        before = sb.subspace_svd_calls
        sb.push(static_frames(10, seed=201, basis_seed=7))
        assert not sb.summaries[5].redetected
        assert sb.summaries[5].foreground_fraction < 0.1
        assert sb.subspace_svd_calls == before

    def test_single_busy_chunk_is_tolerated(self):
        """One drifted chunk under patience=2 must not reset the model."""
        sb = StreamingBackground(
            chunk_frames=10, drift_threshold=0.5, drift_patience=2
        )
        sb.push(static_frames(10, seed=0))
        sb.push(spike_frames(10, seed=50))
        sb.push(static_frames(10, seed=1))
        sb.push(static_frames(10, seed=2))
        assert sb.redetections == 0

    def test_patience_validation(self):
        with pytest.raises(ValueError, match="patience"):
            StreamingBackground(drift_patience=0)


class TestBoundedFootprint:
    def test_tracked_bytes_independent_of_stream_length(self):
        def run(chunks: int) -> int:
            sb = StreamingBackground(chunk_frames=10)
            for i in range(chunks):
                sb.push(static_frames(10, seed=i))
            return sb.peak_tracked_bytes

        assert run(12) == run(3)

    def test_subspace_shape(self):
        sb = StreamingBackground(chunk_frames=10, rank_cap=3)
        assert sb.subspace() is None
        sb.push(static_frames(10, seed=0))
        U = sb.subspace()
        assert U.shape[0] == PIXELS and U.shape[1] <= 3
