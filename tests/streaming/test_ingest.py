"""Chunked ingestion: re-blocking, the bounded window, the guard layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming import ChunkBuffer, StreamBackpressure, stream_chunks


def blocks_of(A: np.ndarray, sizes: list[int]):
    pos = 0
    for h in sizes:
        yield A[pos : pos + h]
        pos += h
    assert pos == A.shape[0]


class TestChunkBuffer:
    def test_reblocks_exactly(self, rng):
        A = rng.standard_normal((50, 4))
        buf = ChunkBuffer(chunk_rows=8)
        out = []
        for b in blocks_of(A, [3, 11, 1, 12, 15, 8]):
            buf.push(b)
            out.extend(buf.drain())
        out.extend(buf.flush())
        assert [c.shape[0] for c in out] == [8, 8, 8, 8, 8, 8, 2]
        assert np.array_equal(np.vstack(out), A)

    def test_chunks_are_fresh_copies(self, rng):
        A = rng.standard_normal((8, 3))
        buf = ChunkBuffer(chunk_rows=8)
        buf.push(A)
        (chunk,) = buf.drain()
        chunk[:] = 0.0
        assert not np.allclose(A, 0.0)

    def test_backpressure_trips_without_drain(self, rng):
        buf = ChunkBuffer(chunk_rows=4, max_in_flight=2)
        buf.push(rng.standard_normal((8, 2)))  # exactly the window
        with pytest.raises(StreamBackpressure, match="drain"):
            buf.push(rng.standard_normal((4, 2)))  # one chunk past it

    def test_draining_releases_the_window(self, rng):
        buf = ChunkBuffer(chunk_rows=4, max_in_flight=2)
        for _ in range(5):
            buf.push(rng.standard_normal((8, 2)))
            assert len(list(buf.drain())) == 2
        assert buf.chunks_out == 10

    def test_column_drift_rejected_before_buffering(self, rng):
        buf = ChunkBuffer(chunk_rows=8)
        buf.push(rng.standard_normal((3, 5)))
        with pytest.raises(ValueError, match="column"):
            buf.push(rng.standard_normal((3, 4)))
        assert buf.buffered_rows == 3  # the bad block was never held

    def test_dtype_mix_rejected_before_buffering(self, rng):
        buf = ChunkBuffer(chunk_rows=8)
        buf.push(rng.standard_normal((3, 5)).astype(np.float32))
        with pytest.raises(TypeError, match="dtype"):
            buf.push(rng.standard_normal((3, 5)))  # float64 into a float32 stream
        assert buf.dtype == np.float32

    def test_nonfinite_guard(self, rng):
        buf = ChunkBuffer(chunk_rows=4)
        bad = rng.standard_normal((2, 3))
        bad[1, 1] = np.nan
        with pytest.raises(ValueError, match="[Nn]on.?finite|NaN|nan"):
            buf.push(bad)

    def test_peak_buffered_bytes_is_bounded(self, rng):
        buf = ChunkBuffer(chunk_rows=4, max_in_flight=2)
        for _ in range(20):
            buf.push(rng.standard_normal((8, 2)))
            list(buf.drain())
        # The window is 8 rows x 2 cols x 8 bytes: the peak never exceeds
        # one full window even though 160 rows streamed through.
        assert buf.peak_buffered_bytes <= 8 * 2 * 8
        assert buf.rows_in == 160


class TestStreamChunks:
    def test_matches_source(self, rng):
        A = rng.standard_normal((37, 3))
        out = list(stream_chunks(blocks_of(A, [10, 10, 10, 7]), chunk_rows=6))
        assert np.array_equal(np.vstack(out), A)
        assert [c.shape[0] for c in out] == [6] * 6 + [1]

    def test_whole_stream_at_once_never_trips_backpressure(self, rng):
        # A pathological producer handing over everything in one block is
        # sliced through the bounded window instead of raising.
        A = rng.standard_normal((100, 3))
        out = list(stream_chunks([A], chunk_rows=4, max_in_flight=2))
        assert np.array_equal(np.vstack(out), A)

    def test_lazy_consumption_advances_source_on_demand(self, rng):
        pulled = []

        def source():
            for i in range(6):
                pulled.append(i)
                yield rng.standard_normal((4, 2))

        gen = stream_chunks(source(), chunk_rows=4, max_in_flight=2)
        next(gen)
        # One chunk consumed: the producer cannot have been drained dry.
        assert len(pulled) < 6

    def test_empty_source(self):
        assert list(stream_chunks([], chunk_rows=4)) == []

    def test_counters_emitted(self, rng):
        from repro.obs import tracer as obs

        A = rng.standard_normal((20, 2))
        with obs.capture() as session:
            list(stream_chunks(blocks_of(A, [20]), chunk_rows=6))
        totals = session.trace.total_counters()
        assert totals["stream_rows_ingested"] == 20
        assert totals["stream_chunks_cut"] == 4
