"""The streaming out-of-core CAQR engine vs one-shot CAQR.

The contract the soak gate pins, exercised at test scale: the streamed
R equals the one-shot R (sign-canonicalized) across chunk-size x shape
grids including chunks narrower than a panel, ragged tails and the
dense start-up folds; the implicit Q reconstructs; memory is bounded by
the chunk geometry, never the stream length.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.caqr import caqr
from repro.core.validation import sign_canonical
from repro.runtime import ExecutionPolicy, plan_qr
from repro.streaming import (
    build_stream_schedule,
    run_streaming_graph,
    run_streaming_matrix,
    stream_qr,
)


def spolicy(chunk_rows: int, **kw) -> ExecutionPolicy:
    return ExecutionPolicy(path="streaming", chunk_rows=chunk_rows, **kw)


def canon_r(R: np.ndarray) -> np.ndarray:
    _, Rc = sign_canonical(np.eye(min(R.shape)), R)
    return Rc


def assert_matches_oneshot(A: np.ndarray, chunk_rows: int, **kw):
    f = caqr(A, policy=spolicy(chunk_rows, **kw))
    ref = caqr(A, policy=ExecutionPolicy(path="batched"))
    scale = max(np.linalg.norm(A), 1.0)
    assert f.R.shape == ref.R.shape
    assert np.abs(canon_r(f.R) - canon_r(ref.R)).max() <= 1e-12 * scale
    return f


class TestStreamedEqualsOneShot:
    def test_reference_shape(self, rng):
        assert_matches_oneshot(rng.standard_normal((130, 20)), chunk_rows=32)

    def test_ragged_tail(self, rng):
        # 100 = 3*33 + 1: the last chunk is a single row.
        assert_matches_oneshot(rng.standard_normal((100, 8)), chunk_rows=33)

    def test_chunk_narrower_than_panel_width(self, rng):
        # chunk height 3 < panel_width 16: every fold is a start-up
        # dense merge until the carry reaches full height.
        assert_matches_oneshot(rng.standard_normal((40, 8)), chunk_rows=3)

    def test_chunk_of_one_row(self, rng):
        assert_matches_oneshot(rng.standard_normal((17, 5)), chunk_rows=1)

    def test_single_chunk_stream(self, rng):
        assert_matches_oneshot(rng.standard_normal((30, 6)), chunk_rows=64)

    def test_wide_matrix(self, rng):
        assert_matches_oneshot(rng.standard_normal((9, 20)), chunk_rows=4)

    def test_square_chunks(self, rng):
        assert_matches_oneshot(rng.standard_normal((64, 16)), chunk_rows=16)

    def test_float32_stream_stays_float32(self, rng):
        A = rng.standard_normal((50, 6)).astype(np.float32)
        f = caqr(A, policy=spolicy(11))
        assert f.R.dtype == np.float32
        Q = f.form_q()
        assert Q.dtype == np.float32
        assert np.abs(Q @ f.R - A).max() < 1e-4

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=60),
        n=st.integers(min_value=1, max_value=12),
        chunk_rows=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_chunking_grid(self, m, n, chunk_rows, seed):
        """Streamed R == one-shot R over a chunk-size x shape grid."""
        A = np.random.default_rng(seed).standard_normal((m, n))
        assert_matches_oneshot(A, chunk_rows=chunk_rows)


class TestFormQ:
    def test_reconstruction_and_orthogonality(self, rng):
        A = rng.standard_normal((90, 12))
        f = caqr(A, policy=spolicy(25))
        Q = f.form_q()
        assert Q.shape == (90, 12)
        assert np.abs(Q @ f.R - A).max() < 1e-12 * np.linalg.norm(A)
        assert np.abs(Q.T @ Q - np.eye(12)).max() < 1e-13

    def test_wide_stream_q(self, rng):
        A = rng.standard_normal((7, 15))
        f = caqr(A, policy=spolicy(3))
        Q = f.form_q()
        assert Q.shape == (7, 7)
        assert np.abs(Q @ f.R - A).max() < 1e-12 * np.linalg.norm(A)

    def test_soak_mode_refuses_form_q(self, rng):
        A = rng.standard_normal((20, 4))
        f = run_streaming_matrix(A, spolicy(6), retain_q=False)
        with pytest.raises(RuntimeError, match="retain_q"):
            f.form_q()


class TestGuards:
    def test_column_drift_rejected(self, rng):
        sq = stream_qr(iter([rng.standard_normal((8, 5))]), policy=spolicy(4))
        with pytest.raises(ValueError, match="column"):
            sq.push(rng.standard_normal((4, 6)))

    def test_dtype_mix_rejected(self, rng):
        sq = stream_qr(
            iter([rng.standard_normal((8, 5)).astype(np.float32)]),
            policy=spolicy(4),
        )
        with pytest.raises(TypeError, match="dtype"):
            sq.push(rng.standard_normal((4, 5)))  # float64 into float32

    def test_nonfinite_chunk_rejected(self, rng):
        A = rng.standard_normal((8, 3))
        A[5, 1] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            caqr(A, policy=spolicy(4))


class TestPolicyAndPlan:
    def test_streaming_requires_chunk_rows(self):
        with pytest.raises(ValueError, match="chunk_rows"):
            ExecutionPolicy(path="streaming")

    def test_chunk_rows_rejected_elsewhere(self):
        with pytest.raises(ValueError, match="chunk_rows"):
            ExecutionPolicy(path="batched", chunk_rows=64)

    def test_plan_factor_matches_entry_point(self, rng):
        A = rng.standard_normal((70, 9))
        pol = spolicy(16)
        plan = plan_qr(70, 9, policy=pol)
        assert np.array_equal(plan.factor(A).R, caqr(A, policy=pol).R)

    def test_plan_schedule_is_the_row_deal(self):
        plan = plan_qr(100, 8, policy=spolicy(33))
        sched = build_stream_schedule(100, 8, 33)
        assert plan._schedule == sched
        assert sched.chunks == 4
        assert sched.rows[-1] == (99, 100)

    def test_plan_task_graph_matches_producer(self):
        from repro.streaming import emit_streaming_layers

        plan = plan_qr(100, 8, policy=spolicy(33))
        assert (
            plan.task_graph().fingerprint()
            == emit_streaming_layers(100, 8, 33).fingerprint()
        )

    def test_plan_simulate_raises(self):
        plan = plan_qr(100, 8, policy=spolicy(33))
        with pytest.raises(ValueError, match="out-of-core"):
            plan.simulate()

    def test_plan_describe_mentions_chunking(self):
        text = plan_qr(100, 8, policy=spolicy(33)).describe()
        assert "streaming" in text and "chunk_rows=33" in text


class TestGraphProducer:
    def test_graph_r_is_bit_identical(self, rng):
        A = rng.standard_normal((50, 7))
        pol = spolicy(12)
        direct = run_streaming_matrix(A, pol, retain_q=False)
        for workers in (1, 3):
            assert np.array_equal(
                run_streaming_graph(A, pol, workers=workers).R, direct.R
            )

    def test_registered_producer(self):
        from repro.graph.highlevel import PRODUCERS

        assert PRODUCERS["streaming"] == (
            "repro.streaming.graphs:emit_streaming_layers"
        )


class TestBoundedMemory:
    def test_peak_is_independent_of_stream_length(self, rng):
        def blocks(chunks):
            for i in range(chunks):
                yield np.random.default_rng(i).standard_normal((16, 6))

        pol = spolicy(16)
        short = stream_qr(blocks(4), policy=pol)
        long = stream_qr(blocks(16), policy=pol)
        assert long.rows_seen == 4 * short.rows_seen
        assert long.peak_tracked_bytes == short.peak_tracked_bytes

    def test_retain_q_grows_instead(self, rng):
        A = rng.standard_normal((64, 6))
        pol = spolicy(16)
        soak = run_streaming_matrix(A, pol, retain_q=False)
        assert soak.retained is False
        kept = stream_qr(iter([A]), policy=pol, retain_q=True)
        assert kept.resident_tracked_bytes > A[:16].nbytes

    def test_merge_kinds_partition_the_chunks(self, rng):
        # Full-height carry from chunk 1 on: all folds are structured.
        tall = stream_qr(iter([rng.standard_normal((64, 8))]), policy=spolicy(16))
        assert (tall.structured_merges, tall.dense_merges) == (3, 0)
        # 2-row chunks against n=8: the carry stays short for the first
        # folds, so start-up merges are dense.
        short = stream_qr(iter([rng.standard_normal((16, 8))]), policy=spolicy(2))
        assert short.dense_merges == 3  # carries of 2, 4, 6 rows
        assert short.structured_merges == 4
        assert short.n_chunks == 8


class TestDegenerateStreams:
    def test_empty_matrix(self):
        f = run_streaming_matrix(np.zeros((0, 5)), spolicy(4))
        assert f.R.shape == (0, 5)
        assert f.form_q().shape == (0, 0)

    def test_zero_columns(self):
        f = run_streaming_matrix(np.zeros((12, 0)), spolicy(4))
        assert f.R.shape == (0, 0)
        assert f.m == 12

    def test_empty_float32_keeps_dtype(self):
        f = run_streaming_matrix(np.zeros((0, 3), dtype=np.float32), spolicy(4))
        assert f.R.dtype == np.float32

    def test_obs_counters_count_the_stream(self, rng):
        from repro.obs import tracer as obs

        A = rng.standard_normal((40, 5))
        with obs.capture() as session:
            caqr(A, policy=spolicy(16))
        totals = session.trace.total_counters()
        assert totals["stream_rows"] == 40
        assert totals["stream_chunks"] == 3
