"""Tracer core: sessions, nesting, threads, counters, zero-overhead path."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.caqr import caqr
from repro.obs import tracer
from repro.runtime import ExecutionPolicy, plan_qr


def test_disabled_by_default():
    assert not obs.enabled()
    # span() and counters() must be no-ops with no active session.
    with obs.span("anything", cat="x", arg=1) as s:
        assert s is tracer._NOOP
    obs.counters(bytes=123)  # no crash, no state


def test_span_nesting_and_parents():
    with obs.capture() as session:
        with obs.span("outer", cat="a") as outer:
            with obs.span("inner", cat="b") as inner:
                pass
        with obs.span("sibling", cat="a"):
            pass
    t = session.trace
    assert len(t.spans) == 3
    by_name = {s.name: s for s in t.spans}
    assert by_name["outer"].parent is None
    assert by_name["inner"].parent == outer.id
    assert by_name["sibling"].parent is None
    # Child interval lies inside the parent's.
    o, i = by_name["outer"], by_name["inner"]
    assert o.start_ns <= i.start_ns
    assert i.start_ns + i.dur_ns <= o.start_ns + o.dur_ns
    assert inner.id == i.id


def test_counters_accumulate_on_open_span():
    with obs.capture() as session:
        with obs.span("work", cat="w"):
            obs.counters(items=2, bytes=100)
            obs.counters(items=3)
        obs.counters(orphan=1)  # no open span: synthetic zero-length span
    t = session.trace
    by_name = {s.name: s for s in t.spans}
    assert by_name["work"].counters == {"items": 5, "bytes": 100}
    assert t.total_counters() == {"items": 5, "bytes": 100, "orphan": 1}


def test_worker_threads_get_own_tids():
    def worker():
        with obs.span("task", cat="t"):
            time.sleep(0.001)

    with obs.capture() as session:
        with obs.span("main-side", cat="t"):
            pass
        threads = [threading.Thread(target=worker) for _ in range(2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
    t = session.trace
    tids = {s.tid for s in t.spans}
    assert 0 in tids  # capturing thread
    assert len(tids) == 3  # two workers got distinct tids
    assert t.thread_names[0] == "main"
    # Worker spans are roots of their threads (no cross-thread parent).
    for s in t.spans:
        if s.tid != 0:
            assert s.parent is None


def test_nested_sessions_shadow():
    with obs.capture() as outer_s:
        with obs.span("before", cat="x"):
            pass
        with obs.capture() as inner_s:
            with obs.span("shadowed", cat="x"):
                pass
        assert obs.enabled()
        with obs.span("after", cat="x"):
            pass
    assert not obs.enabled()
    assert [s.name for s in outer_s.trace.spans] == ["before", "after"]
    assert [s.name for s in inner_s.trace.spans] == ["shadowed"]


def test_policy_trace_accumulates_across_calls(rng):
    A = rng.standard_normal((256, 48))
    session = obs.capture()
    policy = ExecutionPolicy(path="batched", trace=session)
    caqr(A, policy=policy)
    n_first = len(session.spans)
    caqr(A, policy=policy)
    assert n_first > 0
    assert len(session.spans) > n_first
    assert not obs.enabled()  # deactivated between calls


def _best_coverage(A, policy, attempts=3):
    # A scheduler stall or GC pause during one ~20 ms factorization can
    # punch a hole between spans that is not an instrumentation gap, so
    # take the best of a few attempts (a real gap persists in all of them).
    best, trace = 0.0, None
    for _ in range(attempts):
        with obs.capture() as session:
            plan = plan_qr(*A.shape, policy=policy)
            plan.factor(A)
        t = session.trace
        root = max(
            (s for s in t.spans if s.name == "plan.factor"), key=lambda s: s.dur_ns
        )
        cov = t.coverage(root)
        if cov > best:
            best, trace = cov, t
        if best >= 0.90:
            break
    return best, trace


def test_coverage_serial_paths(rng):
    A = rng.standard_normal((2048, 96))
    for path in ("seed", "batched", "structured", "lookahead"):
        cov, _ = _best_coverage(A, ExecutionPolicy(path=path))
        assert cov >= 0.90, f"{path}: instrumentation gap ({cov:.1%})"


def test_coverage_threaded_lookahead(rng):
    A = rng.standard_normal((4096, 128))
    policy = ExecutionPolicy(path="lookahead", workers=3)
    cov, t = _best_coverage(A, policy)
    assert len(t.thread_names) > 1  # pool workers were attributed
    assert cov >= 0.90


def test_tracing_does_not_change_results(rng):
    A = rng.standard_normal((1024, 64))
    f_plain = caqr(A)
    with obs.capture():
        f_traced = caqr(A)
    np.testing.assert_array_equal(f_plain.R, f_traced.R)


def test_disabled_span_overhead_is_negligible():
    """The disabled fast path must stay cheap enough to leave permanently
    in the hot loops: sub-microsecond per call site (one global check)."""
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("hot", cat="x"):
            pass
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 5e-6, f"disabled span() costs {per_call * 1e9:.0f} ns"


def test_guard_scan_span_and_counters(rng):
    A = rng.standard_normal((512, 32))
    with obs.capture() as session:
        caqr(A)
    t = session.trace
    scans = t.by_cat("guard")
    assert len(scans) == 1  # validated exactly once end to end
    total = t.total_counters()
    assert total["guard_scans"] == 1
    assert total["guard_scan_bytes"] == A.nbytes


def test_dispatcher_cache_counters(rng):
    from repro.dispatch import QRDispatcher

    d = QRDispatcher()
    A = rng.standard_normal((2048, 64))
    with obs.capture() as session:
        d.qr(A)
        d.qr(A)
    total = session.trace.total_counters()
    assert total.get("pred_cache_misses") == 1
    assert total.get("pred_cache_hits") == 1
    # Plan cache counters only tick when the caqr engine wins the shape.
    if any(s.args.get("engine") == "caqr" for s in session.trace.spans if s.name == "engine"):
        assert total.get("plan_cache_misses") == 1
        assert total.get("plan_cache_hits") == 1


def test_maybe_trace_none_is_noop():
    with tracer.maybe_trace(None):
        assert not obs.enabled()
    s = obs.capture()
    with tracer.maybe_trace(s):
        assert obs.enabled()
    assert not obs.enabled()


@pytest.fixture(autouse=True)
def _no_leaked_session():
    yield
    assert tracer._session is None, "a test leaked an active trace session"
