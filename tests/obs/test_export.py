"""Exporters: Chrome trace_event schema, summaries, timeline lifting."""

from __future__ import annotations

import json
from dataclasses import fields as dc_fields

import pytest

from repro import obs
from repro.runtime import ExecutionPolicy, plan_qr


@pytest.fixture(scope="module")
def traced_run():
    import numpy as np

    rng = np.random.default_rng(99)
    A = rng.standard_normal((2048, 96))
    policy = ExecutionPolicy(path="lookahead", workers=3)
    with obs.capture(meta={"case": "export-test"}) as session:
        plan = plan_qr(*A.shape, policy=policy)
        plan.factor(A)
    return session.trace, plan


def test_chrome_trace_schema(traced_run):
    trace, _ = traced_run
    doc = obs.to_chrome_trace(trace)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["case"] == "export-test"
    events = doc["traceEvents"]
    assert events, "empty trace"
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(meta) + len(complete) == len(events)
    # One thread_name metadata event per attributed thread.
    assert {e["args"]["name"] for e in meta} == set(trace.thread_names.values())
    for e in complete:
        assert set(e) >= {"ph", "pid", "tid", "ts", "dur", "name", "cat", "args"}
        assert isinstance(e["tid"], int)
        assert e["ts"] >= 0.0  # relative to capture start
        assert e["dur"] >= 0.0
    # The document is actually JSON-serializable (Perfetto-loadable).
    json.dumps(doc)


def test_chrome_trace_nesting_well_formed(traced_run):
    """Per (tid): children intervals lie inside their parents' — the
    containment Chrome/Perfetto reconstructs nesting from."""
    trace, _ = traced_run
    by_id = {s.id: s for s in trace.spans}
    for s in trace.spans:
        if s.parent is None:
            continue
        p = by_id[s.parent]
        assert p.tid == s.tid, "parent and child on different threads"
        assert p.start_ns <= s.start_ns
        assert s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns + 1  # ns slack


def test_write_chrome_trace_roundtrip(traced_run, tmp_path):
    trace, _ = traced_run
    path = obs.write_chrome_trace(trace, tmp_path / "t.json")
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == len(obs.to_chrome_trace(trace)["traceEvents"])


def test_span_summary_shares(traced_run):
    trace, _ = traced_run
    rows = obs.span_summary(trace)
    assert rows == sorted(rows, key=lambda r: -r["seconds"])
    for r in rows:
        assert set(r) == {"name", "kind", "seconds", "share", "events", "counters"}
        assert r["events"] >= 1
    total_by_name = {r["name"]: r["seconds"] for r in rows}
    assert abs(
        total_by_name["plan.factor"]
        - sum(s.seconds for s in trace.spans if s.name == "plan.factor")
    ) < 1e-12


def test_render_spans_mentions_every_name(traced_run):
    trace, _ = traced_run
    text = obs.render_spans(trace)
    for r in obs.span_summary(trace):
        assert r["name"] in text


def test_from_timeline_counters_roundtrip(traced_run):
    """Lifting a simulated timeline preserves every traffic counter —
    Trace.total_counters() must reproduce Timeline.counters field by field."""
    _, plan = traced_run
    tl = plan.simulate().timeline
    trace = obs.from_timeline(tl)
    lifted = trace.total_counters()
    expect = tl.counters
    for f in dc_fields(expect):
        want = getattr(expect, f.name)
        assert lifted.get(f.name, 0) == want, f.name
    # Span seconds reproduce the serial timeline end-to-end (each event
    # rounds to whole ns on the synthetic clock, so tolerance scales
    # with the event count).
    assert abs(trace.wall_seconds - sum(e.seconds for e in tl.events)) < 1e-9 * max(
        1, len(tl.events)
    )
    # And the lifted trace exports like any measured one.
    doc = obs.to_chrome_trace(trace)
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_modeled_vs_measured_overlay(traced_run):
    trace, plan = traced_run
    overlay = obs.modeled_vs_measured(trace, plan.simulate())
    assert {p.phase for p in overlay.phases} == {"factor", "update"}
    for p in overlay.phases:
        assert p.modeled_seconds > 0
        assert p.measured_seconds > 0
        assert 0.0 <= p.modeled_share <= 1.0
        assert 0.0 <= p.measured_share <= 1.0
    # Shares sum to 1 on both sides (phase totals are the denominators).
    assert abs(sum(p.modeled_share for p in overlay.phases) - 1.0) < 1e-9
    assert abs(sum(p.measured_share for p in overlay.phases) - 1.0) < 1e-9
    text = obs.format_overlay(overlay)
    assert "share err" in text and "factor" in text
