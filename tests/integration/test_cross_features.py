"""Cross-feature integration: combinations of library features.

Each test wires several subsystems together the way a downstream user
would, catching interface mismatches single-feature tests miss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caqr import caqr
from repro.core.streaming import StreamingTSQR
from repro.core.tsqr import tsqr, tsqr_qr
from repro.core.validation import factorization_error, orthogonality_error, sign_canonical
from repro.dispatch import QRDispatcher
from repro.io import load_tsqr, save_tsqr
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig


class TestStructuredCombinations:
    def test_structured_plus_float32(self, rng):
        A = rng.standard_normal((400, 12)).astype(np.float32)
        Q, R = tsqr_qr(A, block_rows=32, structured=True)
        assert Q.dtype == np.float32
        assert factorization_error(A, Q, R) < 5e-5

    def test_structured_serialized_float32(self, rng, tmp_path):
        A = rng.standard_normal((200, 8)).astype(np.float32)
        f = tsqr(A, block_rows=32, structured=True)
        save_tsqr(tmp_path / "sf.npz", f)
        g = load_tsqr(tmp_path / "sf.npz")
        assert g.R.dtype == np.float32
        assert np.allclose(g.form_q() @ g.R, A, atol=1e-4)

    def test_structured_matches_dense_all_trees(self, rng):
        A = rng.standard_normal((512, 16))
        results = []
        for shape in ("binary", "quad", "binomial"):
            for structured in (False, True):
                Q, R = tsqr_qr(A, block_rows=64, tree_shape=shape, structured=structured)
                _, Rc = sign_canonical(Q, R)
                results.append(Rc)
        for Rc in results[1:]:
            assert np.allclose(Rc, results[0], atol=1e-10)

    def test_simulated_structured_config_on_gtx480(self):
        from repro.caqr_gpu import simulate_caqr
        from repro.gpusim.device import GTX480

        cfg = REFERENCE_CONFIG.with_(structured_tree=True)
        r = simulate_caqr(110_592, 100, cfg, GTX480)
        assert r.seconds > 0
        assert r.breakdown()["factor_tree"] < simulate_caqr(110_592, 100, dev=GTX480).breakdown()["factor_tree"]


class TestDispatcherCombinations:
    def test_dispatcher_with_structured_config(self, rng):
        d = QRDispatcher(config=REFERENCE_CONFIG.with_(structured_tree=True))
        out = d.qr(rng.standard_normal((1500, 16)))
        assert out.engine == "caqr"
        assert factorization_error(rng.standard_normal((0, 0)) if False else out.Q @ out.R, out.Q, out.R) >= 0
        assert orthogonality_error(out.Q) < 1e-12

    def test_dispatcher_respects_custom_device(self):
        from repro.gpusim.device import C2050

        starved = C2050.with_(gemm_peak_gflops=50.0)  # cripple the libraries
        d = QRDispatcher(device=starved, include_cpu=False)
        # With gemm crippled, CAQR should win even square-ish.
        assert d.choose(8192, 8192).engine == "caqr"


class TestStreamingCombinations:
    def test_streaming_float32(self, rng):
        A = rng.standard_normal((120, 6)).astype(np.float32)
        stq = StreamingTSQR(n_cols=6)
        for i in range(0, 120, 40):
            stq.push(A[i : i + 40])
        assert stq.R.dtype == np.float32
        R64 = np.triu(np.linalg.qr(A.astype(np.float64), mode="r"))
        assert np.allclose(np.abs(np.diag(stq.R)), np.abs(np.diag(R64)), atol=1e-3)

    def test_streaming_agrees_with_flat_tsqr(self, rng):
        A = rng.standard_normal((160, 8))
        stq = StreamingTSQR(n_cols=8)
        for i in range(0, 160, 32):
            stq.push(A[i : i + 32])
        f = tsqr(A, block_rows=32, tree_shape="flat")
        assert np.allclose(np.abs(np.diag(stq.R)), np.abs(np.diag(f.R)), atol=1e-11)


class TestBatchedPathConsistency:
    def test_uniform_vs_ragged_blocks_same_r(self, rng):
        """The batched level-0 path (uniform blocks) and the scalar path
        (ragged last block) must agree on overlapping data."""
        A = rng.standard_normal((256, 8))
        f_uniform = tsqr(A, block_rows=64)  # 4 full blocks -> batched
        f_ragged = tsqr(A[:250], block_rows=64)  # ragged tail -> mixed
        R1 = np.abs(np.diag(f_uniform.R))
        R_np = np.abs(np.diag(np.triu(np.linalg.qr(A, mode="r"))))
        assert np.allclose(R1, R_np, atol=1e-10)
        R2 = np.abs(np.diag(f_ragged.R))
        R_np2 = np.abs(np.diag(np.triu(np.linalg.qr(A[:250], mode="r"))))
        assert np.allclose(R2, R_np2, atol=1e-10)

    def test_caqr_trailing_views_with_batched_level0(self, rng):
        """CAQR passes non-contiguous trailing views into TSQR applies;
        the batched path must handle them (copy-back) correctly."""
        A = rng.standard_normal((512, 96))
        f = caqr(A, panel_width=16, block_rows=64)
        Q = f.form_q()
        assert factorization_error(A, Q, f.R) < 1e-12


class TestEndToEndPipelines:
    def test_factor_save_load_least_squares(self, rng, tmp_path):
        """Factor once, persist, reload in a 'different process', solve."""
        from repro.core.triangular import solve_upper
        from repro.io import load_caqr, save_caqr

        A = rng.standard_normal((400, 20))
        x_true = rng.standard_normal(20)
        b = (A @ x_true).reshape(-1, 1)
        save_caqr(tmp_path / "f.npz", caqr(A, panel_width=8, block_rows=64))
        g = load_caqr(tmp_path / "f.npz")
        qtb = g.apply_qt(b.copy())
        x = solve_upper(g.R[:20, :20], qtb[:20]).ravel()
        assert np.allclose(x, x_true, atol=1e-9)

    def test_rpca_with_custom_qr_engine(self, rng):
        """The full Table II wiring: RPCA whose SVD runs through CAQR."""
        from repro.core.jacobi_svd import jacobi_svd
        from repro.core.ts_svd import tall_skinny_svd
        from repro.rpca import generate_video, rpca_ialm

        def caqr_svd(X):
            return tall_skinny_svd(X, qr="caqr", svd_small=jacobi_svd)

        v = generate_video(height=12, width=16, n_frames=15, seed=9)
        res = rpca_ialm(v.M, tol=1e-5, max_iter=60, svd=caqr_svd)
        res_default = rpca_ialm(v.M, tol=1e-5, max_iter=60)
        assert res.converged
        # The CAQR-backed SVD must give the same decomposition as the
        # default engine (identical up to solver precision).
        assert np.allclose(res.L, res_default.L, atol=1e-8)

    def test_krylov_basis_through_streaming_qr(self, rng):
        """Orthogonality check of an s-step basis via streaming TSQR."""
        from repro.krylov import laplacian_1d, sstep_arnoldi

        op = laplacian_1d(300)
        res = sstep_arnoldi(op, rng.standard_normal(300), s=4, n_blocks=3)
        stq = StreamingTSQR(n_cols=res.V.shape[1])
        for i in range(0, 300, 100):
            stq.push(res.V[i : i + 100])
        d = np.abs(np.diag(stq.R))
        assert np.allclose(d, 1.0, atol=1e-10)  # V orthonormal -> R = I-ish
