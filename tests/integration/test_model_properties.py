"""Property-based tests of the performance model itself.

The calibrated constants could drift during refactoring; these pin the
*structural* properties any sane model must have: monotonicity in both
dimensions, linear scaling at the tall end, counter consistency, and
schedule-count formulas.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.caqr_gpu import enumerate_caqr_launches, simulate_caqr
from repro.core.householder import qr_flops
from repro.core.tree import build_tree
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(256, 200_000), n=st.integers(8, 256))
    def test_time_increases_with_rows(self, m, n):
        t1 = simulate_caqr(m, n).seconds
        t2 = simulate_caqr(2 * m, n).seconds
        assert t2 > t1

    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(4096, 100_000), n=st.integers(8, 128))
    def test_time_increases_with_columns(self, m, n):
        t1 = simulate_caqr(m, n).seconds
        t2 = simulate_caqr(m, 2 * n).seconds
        assert t2 > t1

    def test_tall_end_scales_linearly(self):
        t1 = simulate_caqr(500_000, 192).seconds
        t2 = simulate_caqr(1_000_000, 192).seconds
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)


class TestCounterConsistency:
    @settings(max_examples=15, deadline=None)
    @given(m=st.integers(1_000, 50_000), n=st.integers(8, 96))
    def test_counted_flops_at_least_standard(self, m, n):
        r = simulate_caqr(m, n)
        assert r.counters.flops >= 0.95 * qr_flops(m, n)

    @settings(max_examples=15, deadline=None)
    @given(m=st.integers(1_000, 50_000), n=st.integers(8, 96))
    def test_bytes_at_least_matrix_size(self, m, n):
        r = simulate_caqr(m, n)
        assert r.counters.gmem_bytes >= m * n * 4.0

    def test_counters_linear_in_height(self):
        c1 = simulate_caqr(250_000, 192).counters
        c2 = simulate_caqr(500_000, 192).counters
        assert c2.flops / c1.flops == pytest.approx(2.0, rel=0.02)
        assert c2.gmem_bytes / c1.gmem_bytes == pytest.approx(2.0, rel=0.02)


class TestScheduleFormulas:
    @settings(max_examples=25, deadline=None)
    @given(m=st.integers(64, 100_000), n=st.integers(1, 200))
    def test_launch_count_formula(self, m, n):
        """Launches per panel: transpose + factor + L tree levels +
        (apply_qt_h + L apply levels when a trailing matrix exists)."""
        cfg = REFERENCE_CONFIG
        specs = list(enumerate_caqr_launches(m, n, cfg))
        k = min(m, n)
        expected = 0
        pw = cfg.panel_width
        for c0 in range(0, k, pw):
            pw_p = min(pw, k - c0)
            hp = m - c0
            bh = max(cfg.block_rows, pw_p)
            nb0 = math.ceil(hp / bh)
            levels = build_tree(nb0, cfg.tree_shape).n_levels
            expected += 2 + levels  # transpose + factor + tree
            if n - (c0 + pw_p) > 0:
                expected += 1 + levels
        assert len(specs) == expected

    @settings(max_examples=25, deadline=None)
    @given(nb=st.integers(1, 5000), arity=st.integers(2, 16))
    def test_tree_group_total(self, nb, arity):
        sched = build_tree(nb, f"arity:{arity}")
        eliminated = sum(len(g) - 1 for lvl in sched.levels for g in lvl)
        assert eliminated == max(0, nb - 1)

    def test_factor_blocks_match_row_blocks(self):
        specs = [s for s in enumerate_caqr_launches(100_000, 32) if s.kernel == "factor"]
        assert specs[0].n_blocks == math.ceil(100_000 / 128)
        assert specs[1].n_blocks == math.ceil((100_000 - 16) / 128)


class TestConfigInvariance:
    def test_simulation_deterministic(self):
        a = simulate_caqr(123_456, 100)
        b = simulate_caqr(123_456, 100)
        assert a.seconds == b.seconds
        assert a.counters.flops == b.counters.flops

    def test_structured_tree_never_slower(self):
        for m, n in ((10_000, 64), (500_000, 192), (8192, 1024)):
            dense = simulate_caqr(m, n).seconds
            struct = simulate_caqr(m, n, REFERENCE_CONFIG.with_(structured_tree=True)).seconds
            assert struct <= dense * 1.001

    def test_faster_device_is_faster(self):
        from repro.gpusim.device import C2050

        fast = C2050.with_(n_sm=28)
        assert simulate_caqr(500_000, 192, dev=fast).seconds < simulate_caqr(500_000, 192).seconds

    @settings(max_examples=10, deadline=None)
    @given(
        bh=st.sampled_from([32, 64, 128, 256]),
        pw=st.sampled_from([8, 16, 32]),
    )
    def test_any_config_produces_valid_schedule(self, bh, pw):
        if bh < pw:
            return
        cfg = KernelConfig(block_rows=bh, panel_width=pw)
        r = simulate_caqr(20_000, 64, cfg)
        assert r.seconds > 0
        assert r.counters.kernel_launches == len(r.timeline.events)
