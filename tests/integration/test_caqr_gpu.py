"""Integration tests of the simulated GPU CAQR driver.

Covers: launch-stream structure (Figure 4), structural parity between the
executed factorization and the analytic schedule, and the calibration of
the full model against Table I / Figure 9 shape criteria.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.caqr_gpu import (
    caqr_gpu_factor,
    enumerate_caqr_launches,
    simulate_caqr,
    simulate_form_q,
)
from repro.core.validation import factorization_error, orthogonality_error
from repro.experiments.table1 import PAPER_TABLE1
from repro.gpusim.device import C2050, GTX480
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig


class TestLaunchStream:
    def test_figure4_order_within_panel(self):
        cfg = KernelConfig(block_rows=64, panel_width=16)
        specs = list(enumerate_caqr_launches(64 * 16, 32, cfg))
        names = [s.kernel for s in specs if s.tag.startswith("panel0")]
        # transpose, factor, factor_tree*, apply_qt_h, apply_qt_tree*.
        assert names[0] == "transpose"
        assert names[1] == "factor"
        i = 2
        while names[i] == "factor_tree":
            i += 1
        assert names[i] == "apply_qt_h"
        assert all(nm == "apply_qt_tree" for nm in names[i + 1 :])

    def test_last_panel_has_no_updates(self):
        cfg = KernelConfig(block_rows=64, panel_width=16)
        specs = list(enumerate_caqr_launches(256, 32, cfg))
        last = [s.kernel for s in specs if s.tag.startswith("panel1")]
        assert "apply_qt_h" not in last and "apply_qt_tree" not in last

    def test_no_transpose_without_preprocessing(self):
        cfg = KernelConfig(strategy="regfile_serial", transpose_preprocess=False)
        names = {s.kernel for s in enumerate_caqr_launches(4096, 64, cfg)}
        assert "transpose" not in names

    def test_block_and_group_counts(self):
        cfg = KernelConfig(block_rows=64, panel_width=16)
        specs = list(enumerate_caqr_launches(64 * 16, 16, cfg))
        factor = [s for s in specs if s.kernel == "factor"]
        assert len(factor) == 1
        assert factor[0].n_blocks == 16
        trees = [s for s in specs if s.kernel == "factor_tree"]
        # 16 blocks, quad tree: 4 groups then 1 group.
        assert [t.n_blocks for t in trees] == [4, 1]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_caqr_launches(0, 10))


class TestStructuralParity:
    def test_executed_factors_match_schedule(self, rng):
        """The factor object's structure must agree with the analytic
        launch enumeration: same level-0 block and tree-group counts."""
        cfg = KernelConfig(block_rows=32, panel_width=8)
        m, n = 320, 24
        A = rng.standard_normal((m, n))
        factors, result = caqr_gpu_factor(A, cfg)
        specs = list(enumerate_caqr_launches(m, n, cfg))
        for p_idx, panel in enumerate(factors.panels):
            tag = f"panel{p_idx}"
            f_spec = next(s for s in specs if s.kernel == "factor" and s.tag == tag)
            assert f_spec.n_blocks == len(panel.factors.blocks)
            tree_specs = [
                s for s in specs if s.kernel == "factor_tree" and s.tag.startswith(tag + "/")
            ]
            assert len(tree_specs) == panel.factors.tree.n_levels
            for spec, level in zip(tree_specs, panel.factors.tree_factors):
                assert spec.n_blocks == len(level)

    def test_executed_numerics_correct(self, rng):
        A = rng.standard_normal((300, 40))
        factors, result = caqr_gpu_factor(A, KernelConfig(block_rows=32, panel_width=8))
        Q = factors.form_q()
        assert factorization_error(A, Q, factors.R) < 1e-12
        assert orthogonality_error(Q) < 1e-12
        assert result.seconds > 0


class TestModelCalibration:
    @pytest.mark.parametrize("height", sorted(PAPER_TABLE1))
    def test_table1_caqr_band(self, height):
        """Model within +-35% of every Table I CAQR entry."""
        model = simulate_caqr(height, 192).gflops
        paper = PAPER_TABLE1[height][0]
        assert 0.65 * paper <= model <= 1.35 * paper

    def test_gflops_saturate_with_height(self):
        vals = [simulate_caqr(h, 192).gflops for h in (1_000, 10_000, 100_000, 1_000_000)]
        assert vals == sorted(vals)
        # Saturation: the last doubling gains little.
        assert vals[-1] / simulate_caqr(500_000, 192).gflops < 1.05

    def test_performance_insensitive_to_width_regime(self):
        """'Performance is good regardless of the width of the matrix':
        at 8192 rows, even 64 columns must exceed every library."""
        from repro.baselines import CULAQR, MAGMAQR, MKLQR

        c = simulate_caqr(8192, 64).gflops
        assert c > MAGMAQR().simulate(8192, 64).gflops * 3
        assert c > CULAQR().simulate(8192, 64).gflops * 3
        assert c > MKLQR().simulate(8192, 64).gflops * 3

    def test_flop_overhead_modest(self):
        """CAQR's redundant tree flops are a bounded overhead (<30%)."""
        r = simulate_caqr(1_000_000, 192)
        assert 1.0 < r.flop_overhead < 1.3

    def test_apply_qt_h_dominates_time(self):
        """The trailing update is the workhorse kernel at scale."""
        bd = simulate_caqr(1_000_000, 192).breakdown()
        assert bd["apply_qt_h"] == max(bd.values())

    def test_form_q_as_efficient_as_factorization(self):
        f = simulate_caqr(100_000, 100)
        q = simulate_form_q(100_000, 100)
        assert q.seconds == pytest.approx(f.seconds)

    def test_gtx480_faster_than_c2050(self):
        assert (
            simulate_caqr(100_000, 100, dev=GTX480).seconds
            < simulate_caqr(100_000, 100, dev=C2050).seconds
        )

    def test_counters_track_launches(self):
        r = simulate_caqr(10_000, 64)
        assert r.counters.kernel_launches == len(r.timeline.events)
        assert r.counters.flops > r.standard_flops  # redundant tree work

    def test_wide_matrix_supported(self):
        r = simulate_caqr(1024, 4096)
        assert r.seconds > 0

    def test_communication_avoidance_vs_blas2(self):
        """CAQR's DRAM traffic is far below a BLAS2 QR's O(m n^2) bytes."""
        m, n = 100_000, 192
        r = simulate_caqr(m, n)
        blas2_bytes = 3.0 * 4.0 * m * n * n / 2.0
        assert r.counters.gmem_bytes < 0.35 * blas2_bytes
