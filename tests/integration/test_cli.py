"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if isinstance(a, type(parser._actions[-1])) and a.choices
        )
        assert {
            "strategies",
            "figure7",
            "figure8",
            "figure9",
            "table1",
            "table2",
            "ablations",
            "sensitivity",
            "dispatch",
        } <= set(subparsers.choices)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_strategies(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "regfile_transpose" in out and "paper" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Robust PCA" in out

    def test_table1_custom_heights(self, capsys):
        assert main(["table1", "--heights", "1000,10000"]) == 0
        out = capsys.readouterr().out
        assert "1k x 192" in out and "10k x 192" in out
        assert "1M" not in out

    def test_figure9_custom_widths(self, capsys):
        assert main(["figure9", "--widths", "64,4096"]) == 0
        out = capsys.readouterr().out
        assert "4096" in out

    def test_dispatch(self, capsys):
        assert main(["dispatch", "--m", "100000", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "choice: caqr" in out

    def test_dispatch_square(self, capsys):
        assert main(["dispatch", "--m", "8192", "--n", "8192"]) == 0
        out = capsys.readouterr().out
        assert "choice: blocked" in out

    def test_figure7(self, capsys):
        assert main(["figure7"]) == 0
        assert "128 x 16" in capsys.readouterr().out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "PCIe latency" in out and "DRAM bandwidth" in out
