"""Tests of factor serialization (save/load roundtrips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caqr import caqr
from repro.core.tsqr import tsqr
from repro.io import load_caqr, load_tsqr, save_caqr, save_tsqr


class TestTSQRRoundtrip:
    def test_r_and_apply_preserved(self, rng, tmp_path):
        A = rng.standard_normal((300, 12))
        f = tsqr(A, block_rows=64)
        path = tmp_path / "f.npz"
        save_tsqr(path, f)
        g = load_tsqr(path)
        assert np.array_equal(g.R, f.R)
        B = rng.standard_normal((300, 4))
        assert np.allclose(g.apply_qt(B.copy()), f.apply_qt(B.copy()), atol=1e-14)
        assert np.allclose(g.form_q(), f.form_q(), atol=1e-14)

    @pytest.mark.parametrize("shape", ["binary", "quad", "binomial", "flat"])
    def test_all_tree_shapes(self, rng, tmp_path, shape):
        A = rng.standard_normal((200, 8))
        f = tsqr(A, block_rows=32, tree_shape=shape)
        path = tmp_path / f"{shape}.npz"
        save_tsqr(path, f)
        g = load_tsqr(path)
        assert g.tree.shape == shape
        assert np.allclose(g.form_q() @ g.R, A, atol=1e-11)

    def test_structured_factors_roundtrip(self, rng, tmp_path):
        A = rng.standard_normal((400, 10))
        f = tsqr(A, block_rows=32, structured=True)
        path = tmp_path / "s.npz"
        save_tsqr(path, f)
        g = load_tsqr(path)
        assert np.allclose(g.form_q() @ g.R, A, atol=1e-11)
        # The structured reflectors really survived (not silently dense).
        assert any(tf.structured is not None for lvl in g.tree_factors for tf in lvl)

    def test_single_block(self, rng, tmp_path):
        A = rng.standard_normal((20, 6))
        f = tsqr(A, block_rows=64)
        save_tsqr(tmp_path / "one.npz", f)
        g = load_tsqr(tmp_path / "one.npz")
        assert np.allclose(g.form_q() @ g.R, A, atol=1e-12)

    def test_float32_dtype_preserved(self, rng, tmp_path):
        A = rng.standard_normal((100, 6)).astype(np.float32)
        f = tsqr(A, block_rows=32)
        save_tsqr(tmp_path / "f32.npz", f)
        g = load_tsqr(tmp_path / "f32.npz")
        assert g.R.dtype == np.float32
        assert g.form_q().dtype == np.float32


class TestCAQRRoundtrip:
    def test_full_roundtrip(self, rng, tmp_path):
        A = rng.standard_normal((160, 48))
        f = caqr(A, panel_width=16, block_rows=32)
        path = tmp_path / "caqr.npz"
        save_caqr(path, f)
        g = load_caqr(path)
        assert np.array_equal(g.R, f.R)
        assert g.panel_width == 16 and g.block_rows == 32
        assert len(g.panels) == len(f.panels)
        B = rng.standard_normal((160, 3))
        assert np.allclose(g.apply_qt(B.copy()), f.apply_qt(B.copy()), atol=1e-14)
        assert np.allclose(g.form_q(), f.form_q(), atol=1e-14)

    def test_least_squares_through_loaded_factors(self, rng, tmp_path):
        from repro.core.triangular import solve_upper

        A = rng.standard_normal((200, 10))
        x_true = rng.standard_normal(10)
        b = (A @ x_true).reshape(-1, 1)
        f = caqr(A, panel_width=4, block_rows=32)
        save_caqr(tmp_path / "ls.npz", f)
        g = load_caqr(tmp_path / "ls.npz")
        qtb = g.apply_qt(b.copy())
        x = solve_upper(g.R[:10, :10], qtb[:10]).ravel()
        assert np.allclose(x, x_true, atol=1e-9)

    def test_no_pickle_in_archive(self, rng, tmp_path):
        """Archives must load with allow_pickle=False (safe to share)."""
        A = rng.standard_normal((80, 8))
        save_caqr(tmp_path / "safe.npz", caqr(A, panel_width=4, block_rows=16))
        with np.load(tmp_path / "safe.npz", allow_pickle=False) as z:
            assert "caqr_R" in z
