"""Tests of the model-driven QR dispatcher (the paper's Section V-C
autotuning-framework suggestion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.validation import factorization_error, orthogonality_error
from repro.dispatch import QRDispatcher


@pytest.fixture(scope="module")
def dispatcher():
    return QRDispatcher()


class TestPrediction:
    def test_predictions_sorted(self, dispatcher):
        preds = dispatcher.predict(100_000, 192)
        secs = [p.seconds for p in preds]
        assert secs == sorted(secs)
        assert {p.engine for p in preds} == {"caqr", "blocked", "mkl"}

    def test_skinny_chooses_caqr(self, dispatcher):
        for m, n in ((1_000_000, 192), (100_000, 64), (8192, 512)):
            assert dispatcher.choose(m, n).engine == "caqr"

    def test_square_chooses_blocked(self, dispatcher):
        assert dispatcher.choose(8192, 8192).engine == "blocked"

    def test_crossover_matches_figure9(self, dispatcher):
        x = dispatcher.crossover_width(8192)
        assert x is not None
        assert 2500 <= x <= 6000  # the paper's ~4000-column line

    def test_crossover_none_when_caqr_always_wins(self, dispatcher):
        # Too tall for the libraries to ever catch up within the width cap.
        assert dispatcher.crossover_width(2048, max_width=1024) is None

    def test_no_cpu_option(self):
        d = QRDispatcher(include_cpu=False)
        assert {p.engine for p in d.predict(10_000, 64)} == {"caqr", "blocked"}

    def test_invalid_shape(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.predict(0, 5)


class TestPredictionCache:
    def test_predict_memoizes_per_shape(self, monkeypatch):
        import repro.dispatch as dispatch_mod

        calls = {"n": 0}
        real = dispatch_mod.simulate_caqr

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(dispatch_mod, "simulate_caqr", counting)
        d = QRDispatcher()
        first = d.predict(50_000, 96)
        again = d.predict(50_000, 96)
        assert calls["n"] == 1
        assert first == again
        d.choose(50_000, 96)
        assert calls["n"] == 1  # choose() hits the same cache entry
        d.predict(50_000, 97)
        assert calls["n"] == 2

    def test_crossover_reuses_cached_predictions(self, monkeypatch):
        import repro.dispatch as dispatch_mod

        calls = {"n": 0}
        real = dispatch_mod.simulate_caqr

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(dispatch_mod, "simulate_caqr", counting)
        d = QRDispatcher()
        d.crossover_width(8192)
        probes = calls["n"]
        d.crossover_width(8192)  # same probes, all cached now
        assert calls["n"] == probes

    def test_returned_list_is_a_copy(self):
        d = QRDispatcher()
        preds = d.predict(10_000, 64)
        preds.clear()
        assert len(d.predict(10_000, 64)) == 3

    def test_lru_eviction(self):
        # One shard so all three shapes share one LRU order (the
        # multi-shard default spreads keys across independent LRUs).
        d = QRDispatcher(cache_size=2, cache_shards=1)
        d.predict(1000, 8)
        d.predict(1000, 9)
        d.predict(1000, 8)  # refresh: (1000, 9) is now least recent
        d.predict(1000, 10)  # evicts (1000, 9)
        assert set(d._pred_cache) == {(1000, 8), (1000, 10)}

    def test_sharded_capacity_is_bounded(self):
        d = QRDispatcher(cache_size=8, cache_shards=4)
        for n in range(8, 40):
            d.predict(4096, n)
        # ceil(8 / 4) = 2 entries per shard, 4 shards.
        assert len(d._pred_cache) <= 8


class TestLookaheadPlumbing:
    def test_qr_forwards_execution_options(self, rng):
        with pytest.warns(DeprecationWarning):
            d = QRDispatcher(lookahead=True, workers=2)
        # The legacy kwargs resolve into the dispatcher's policy, and the
        # pre-policy attributes still read back through it.
        assert d.policy.path == "lookahead" and d.policy.workers == 2
        assert d.lookahead is True and d.workers == 2 and d.batched is True
        A = rng.standard_normal((2000, 24))
        out = d.qr(A)
        assert out.engine == "caqr"
        # The cached plan carries the same policy the kwargs named.
        plan = d.plan_for(2000, 24)
        assert plan.policy is d.policy
        assert factorization_error(A, out.Q, out.R) < 1e-12
        assert orthogonality_error(out.Q) < 1e-12

    def test_lookahead_matches_serial_dispatch(self, rng):
        from repro.runtime import ExecutionPolicy
        from repro.kernels.config import REFERENCE_CONFIG as cfg

        A = rng.standard_normal((1500, 32))
        serial = QRDispatcher().qr(A)
        overlap = QRDispatcher(
            policy=ExecutionPolicy(
                path="lookahead",
                workers=2,
                panel_width=cfg.panel_width,
                block_rows=cfg.block_rows,
                tree_shape=cfg.tree_shape,
            )
        ).qr(A)
        assert serial.engine == overlap.engine == "caqr"
        assert np.max(np.abs(serial.R - overlap.R)) < 1e-14 * np.linalg.norm(A)


class TestPlanCache:
    def test_qr_reuses_one_plan_per_shape(self, monkeypatch, rng):
        import repro.dispatch as dispatch_mod

        calls = {"n": 0}
        real = dispatch_mod.plan_qr

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(dispatch_mod, "plan_qr", counting)
        d = QRDispatcher()
        A = rng.standard_normal((2000, 24))
        B = rng.standard_normal((2000, 24))
        d.qr(A)
        d.qr(B)
        assert calls["n"] == 1  # second same-shape matrix skipped planning
        d.qr(rng.standard_normal((2100, 24)))
        assert calls["n"] == 2

    def test_plan_cache_lru_eviction(self):
        d = QRDispatcher(cache_size=2, cache_shards=1)
        d.plan_for(400, 8)
        d.plan_for(400, 9)
        d.plan_for(400, 8)  # refresh: (400, 9) is now least recent
        d.plan_for(400, 10)  # evicts (400, 9)
        assert {k[:2] for k in d._plan_cache} == {(400, 8), (400, 10)}

    def test_plan_keyed_on_dtype(self):
        d = QRDispatcher()
        p64 = d.plan_for(400, 8, dtype=np.float64)
        p32 = d.plan_for(400, 8, dtype=np.float32)
        assert p64 is not p32
        assert d.plan_for(400, 8, dtype=np.float64) is p64

    def test_dispatched_qr_scans_each_matrix_once(self, rng):
        from repro.verify.guards import count_validations

        d = QRDispatcher()
        A = rng.standard_normal((2000, 24))
        d.qr(A)  # warm the plan/pred caches outside the counted window
        with count_validations() as counter:
            out = d.qr(A)
        assert out.engine == "caqr"
        assert counter.validations == 1
        assert counter.scans == 1


class TestShardedCacheContention:
    """The per-shard locks: holding one shape's lock must not serialize
    accesses to shapes that hash to a different shard (the old global
    lock did)."""

    @staticmethod
    def _two_shapes_in_different_shards(d):
        base = (1000, 8)
        base_lock = d._pred_cache.lock_for(base)
        for n in range(9, 64):
            if d._pred_cache.lock_for((1000, n)) is not base_lock:
                return base, (1000, n)
        raise AssertionError("no second shard found (shards=1?)")

    def test_other_shard_proceeds_while_one_lock_is_held(self):
        import threading

        d = QRDispatcher()  # default: 8 shards
        a, b = self._two_shapes_in_different_shards(d)
        d.predict(*a)
        d.predict(*b)  # warm both: the probe below is pure cache reads
        done = threading.Event()

        def hit_other_shard():
            d.predict(*b)
            done.set()

        with d._pred_cache.lock_for(a):
            t = threading.Thread(target=hit_other_shard)
            t.start()
            # Deterministic: b's shard lock is free, so this completes
            # promptly even though a's shard lock is held the whole time.
            assert done.wait(timeout=5.0), (
                "predict() on a different shard blocked behind a held "
                "shard lock — sharding is not isolating shapes"
            )
            t.join()

    def test_same_shard_still_serializes(self):
        import threading

        d = QRDispatcher()
        a, _ = self._two_shapes_in_different_shards(d)
        d.predict(*a)
        done = threading.Event()

        def hit_same_shard():
            d.predict(*a)
            done.set()

        with d._pred_cache.lock_for(a):
            t = threading.Thread(target=hit_same_shard)
            t.start()
            # Same shard: must wait for the lock (LRU order stays exact).
            assert not done.wait(timeout=0.2)
        assert done.wait(timeout=5.0)
        t.join()


class TestCrossoverMemoization:
    def test_crossover_memoizes_per_height_and_cap(self):
        d = QRDispatcher()
        first = d.crossover_width(8192)
        calls = {"n": 0}
        real = d.choose

        def counting(m, n):
            calls["n"] += 1
            return real(m, n)

        d.choose = counting
        try:
            assert d.crossover_width(8192) == first
            assert calls["n"] == 0  # memoized: no probes at all
            # A different width cap is a different question.
            d.crossover_width(8192, max_width=1024)
            assert calls["n"] > 0
        finally:
            del d.choose

    def test_crossover_cache_keyed_on_cap(self):
        d = QRDispatcher()
        assert d.crossover_width(2048, max_width=1024) is None
        full = d.crossover_width(2048)
        assert full is None or full > 1024


class TestThreadSafety:
    def test_concurrent_qr_one_dispatcher(self, rng):
        from concurrent.futures import ThreadPoolExecutor

        d = QRDispatcher(cache_size=4)
        mats = [rng.standard_normal((600 + 50 * (i % 4), 16)) for i in range(16)]
        expected = [QRDispatcher().qr(A).R for A in mats]
        with ThreadPoolExecutor(max_workers=8) as ex:
            results = list(ex.map(d.qr, mats))
        for res, R in zip(results, expected):
            assert res.engine == "caqr"
            np.testing.assert_array_equal(res.R, R)

    def test_concurrent_predict_is_consistent(self):
        from concurrent.futures import ThreadPoolExecutor

        d = QRDispatcher(cache_size=8)
        shapes = [(10_000 + 1000 * (i % 5), 64) for i in range(40)]
        with ThreadPoolExecutor(max_workers=8) as ex:
            results = list(ex.map(lambda s: d.predict(*s), shapes))
        baseline = {s: QRDispatcher().predict(*s) for s in set(shapes)}
        for shape, preds in zip(shapes, results):
            assert preds == baseline[shape]


class TestDispatchedFactorization:
    def test_skinny_runs_caqr_and_is_accurate(self, dispatcher, rng):
        A = rng.standard_normal((2000, 24))
        out = dispatcher.qr(A)
        assert out.engine == "caqr"
        assert factorization_error(A, out.Q, out.R) < 1e-12
        assert orthogonality_error(out.Q) < 1e-12

    def test_squareish_runs_blocked_and_is_accurate(self, rng):
        d = QRDispatcher()
        # Force the blocked path via a shape where the libraries win.
        # (Use small real matrix but monkey-patch choice by predictions:
        # a genuinely square large matrix is too slow to factor in a
        # test, so check the routing logic + numerics separately.)
        A = rng.standard_normal((96, 96))
        out = d.qr(A)  # whatever engine wins, numerics must hold
        assert factorization_error(A, out.Q, out.R) < 1e-12

    def test_predictions_attached(self, dispatcher, rng):
        out = dispatcher.qr(rng.standard_normal((500, 8)))
        assert out.predictions[0].engine == out.engine
        assert len(out.predictions) == 3

    def test_rejects_1d(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.qr(np.zeros(5))
