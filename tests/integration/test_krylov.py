"""Tests of the s-step Krylov subpackage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.krylov import (
    arnoldi,
    basis_condition,
    ca_gmres,
    from_dense,
    gmres,
    hessenberg_from_basis,
    laplacian_1d,
    laplacian_2d,
    leja_order,
    monomial_basis,
    newton_basis,
    solve_hessenberg_lstsq,
    sstep_arnoldi,
    tridiagonal,
)


class TestOperators:
    def test_laplacian_1d_matches_dense(self):
        op = laplacian_1d(8)
        A = op.to_dense()
        expected = 2 * np.eye(8) - np.eye(8, k=1) - np.eye(8, k=-1)
        assert np.array_equal(A, expected)

    def test_laplacian_2d_symmetric_positive(self):
        op = laplacian_2d(5, 6)
        A = op.to_dense()
        assert np.allclose(A, A.T)
        assert np.linalg.eigvalsh(A).min() > 0

    def test_tridiagonal(self):
        op = tridiagonal(-1.0, 3.0, 2.0, 5)
        A = op.to_dense()
        assert A[1, 0] == -1.0 and A[0, 0] == 3.0 and A[0, 1] == 2.0

    def test_from_dense_roundtrip(self, rng):
        A = rng.standard_normal((6, 6))
        op = from_dense(A)
        v = rng.standard_normal(6)
        assert np.allclose(op(v), A @ v)

    def test_shape_checks(self, rng):
        op = laplacian_1d(4)
        with pytest.raises(ValueError):
            op(np.zeros(5))
        with pytest.raises(ValueError):
            from_dense(rng.standard_normal((3, 4)))


class TestBases:
    def test_monomial_columns_normalized(self, rng):
        op = laplacian_1d(50)
        V = monomial_basis(op, rng.standard_normal(50), 6)
        assert np.allclose(np.linalg.norm(V, axis=0), 1.0)

    def test_monomial_condition_explodes(self, rng):
        op = laplacian_2d(15, 15)
        v = rng.standard_normal(op.n)
        c4 = basis_condition(monomial_basis(op, v, 4))
        c12 = basis_condition(monomial_basis(op, v, 12))
        assert c12 > 100 * c4

    def test_newton_beats_monomial(self, rng):
        op = laplacian_2d(15, 15)
        v = rng.standard_normal(op.n)
        s = 12
        pre = arnoldi(op, v, s)
        shifts = np.linalg.eigvals(pre.H[:s, :s]).real
        c_mono = basis_condition(monomial_basis(op, v, s))
        c_newt = basis_condition(newton_basis(op, v, s, shifts))
        assert c_newt < c_mono / 100

    def test_leja_order_starts_at_extreme(self):
        shifts = np.array([1.0, 5.0, 2.0, -3.0])
        ordered = leja_order(shifts)
        assert ordered[0] == 5.0
        assert sorted(ordered) == sorted(shifts)

    def test_zero_start_rejected(self):
        op = laplacian_1d(10)
        with pytest.raises(ValueError):
            monomial_basis(op, np.zeros(10), 3)

    def test_too_few_shifts_rejected(self, rng):
        op = laplacian_1d(10)
        with pytest.raises(ValueError):
            newton_basis(op, rng.standard_normal(10), 5, np.array([1.0]))


class TestArnoldi:
    def test_relation_holds(self, rng):
        op = laplacian_2d(10, 10)
        r = arnoldi(op, rng.standard_normal(op.n), 15)
        assert r.relation_residual(op) < 1e-12
        k = r.V.shape[1]
        assert np.allclose(r.V.T @ r.V, np.eye(k), atol=1e-12)

    def test_h_upper_hessenberg(self, rng):
        op = laplacian_1d(40)
        r = arnoldi(op, rng.standard_normal(40), 10)
        H = r.H
        for j in range(H.shape[1]):
            assert np.allclose(H[j + 2 :, j], 0.0)

    def test_breakdown_on_invariant_subspace(self):
        # Start in an eigenvector: Krylov space is 1-dimensional.
        op = from_dense(np.diag([1.0, 2.0, 3.0]))
        v0 = np.array([1.0, 0.0, 0.0])
        r = arnoldi(op, v0, 3)
        assert r.breakdown == 1
        assert r.V.shape[1] == 1

    def test_sstep_matches_classical_subspace(self, rng):
        op = laplacian_2d(8, 8)
        b = rng.standard_normal(op.n)
        rc = arnoldi(op, b, 12)
        rs = sstep_arnoldi(op, b, s=4, n_blocks=3)
        # Same Krylov subspace: projectors agree.
        Pc = rc.V[:, :12] @ rc.V[:, :12].T
        Ps = rs.V[:, :12] @ rs.V[:, :12].T
        assert np.allclose(Pc, Ps, atol=1e-8)

    def test_sstep_orthonormal(self, rng):
        op = laplacian_2d(12, 12)
        r = sstep_arnoldi(op, rng.standard_normal(op.n), s=6, n_blocks=4)
        k = r.V.shape[1]
        assert np.allclose(r.V.T @ r.V, np.eye(k), atol=1e-10)
        assert r.relation_residual(op) < 1e-10

    def test_hessenberg_from_basis_consistent(self, rng):
        op = laplacian_1d(60)
        r = arnoldi(op, rng.standard_normal(60), 8)
        H2 = hessenberg_from_basis(op, r.V)
        assert np.allclose(H2, r.H, atol=1e-10)

    def test_invalid_args(self, rng):
        op = laplacian_1d(10)
        with pytest.raises(ValueError):
            arnoldi(op, rng.standard_normal(10), 0)
        with pytest.raises(ValueError):
            sstep_arnoldi(op, np.zeros(10), 2, 2)


class TestGMRES:
    def test_hessenberg_lstsq_matches_numpy(self, rng):
        m = 7
        H = np.triu(rng.standard_normal((m + 1, m)), -1)
        beta = 2.5
        y, res = solve_hessenberg_lstsq(H, beta)
        rhs = np.zeros(m + 1)
        rhs[0] = beta
        y_np, *_ = np.linalg.lstsq(H, rhs, rcond=None)
        assert np.allclose(y, y_np, atol=1e-10)
        assert res == pytest.approx(np.linalg.norm(rhs - H @ y_np), abs=1e-10)

    def test_gmres_solves_spd_system(self, rng):
        op = laplacian_2d(10, 10)
        b = rng.standard_normal(op.n)
        r = gmres(op, b, m=90, tol=1e-8)
        assert r.converged
        assert np.allclose(op.to_dense() @ r.x, b, atol=1e-5)

    def test_ca_gmres_matches_gmres(self, rng):
        op = laplacian_2d(10, 10)
        b = rng.standard_normal(op.n)
        g = gmres(op, b, m=48)
        cg = ca_gmres(op, b, s=6, n_blocks=8)
        assert cg.basis_size == g.basis_size
        assert cg.relative_residual == pytest.approx(g.relative_residual, rel=1e-3, abs=1e-12)
        assert np.allclose(cg.x, g.x, atol=1e-6)

    def test_ca_gmres_converges_monotonically_in_blocks(self, rng):
        op = laplacian_2d(8, 8)
        b = rng.standard_normal(op.n)
        res = [ca_gmres(op, b, s=4, n_blocks=k).relative_residual for k in (2, 4, 8)]
        assert res[0] >= res[1] >= res[2]

    def test_gmres_exact_in_n_steps(self, rng):
        A = rng.standard_normal((12, 12)) + 6 * np.eye(12)
        op = from_dense(A)
        b = rng.standard_normal(12)
        r = gmres(op, b, m=12, tol=1e-12)
        assert r.relative_residual < 1e-10
