"""Tests of the distributed-memory TSQR simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.caqr import caqr
from repro.core.validation import sign_canonical
from repro.distributed import (
    INTERCONNECTS,
    FakeComm,
    build_shard_schedule,
    distributed_tsqr,
    householder_message_count,
    run_sharded,
    sharded_reference_r,
    simulated_network_seconds,
    tsqr_message_lower_bound,
)
from repro.runtime import ExecutionPolicy, plan_qr


class TestFakeComm:
    def test_send_recv_roundtrip(self):
        c = FakeComm(size=2)
        c.send(np.arange(5.0), src=0, dst=1)
        got = c.recv(src=0, dst=1)
        assert np.array_equal(got, np.arange(5.0))

    def test_messages_are_copies(self):
        c = FakeComm(size=2)
        x = np.ones(3)
        c.send(x, src=0, dst=1)
        x[0] = 99.0
        assert c.recv(src=0, dst=1)[0] == 1.0

    def test_counters(self):
        c = FakeComm(size=3)
        c.send(np.zeros(10), src=0, dst=2)
        c.send(np.zeros(4), src=1, dst=2)
        assert c.total_messages == 2
        assert c.total_words == 14
        assert c.stats[2].messages_received == 2
        assert c.stats[2].words_received == 14

    def test_fifo_per_channel(self):
        c = FakeComm(size=2)
        c.send(1.0, src=0, dst=1)
        c.send(2.0, src=0, dst=1)
        assert c.recv(src=0, dst=1) == 1.0
        assert c.recv(src=0, dst=1) == 2.0

    def test_missing_message_raises(self):
        c = FakeComm(size=2)
        with pytest.raises(LookupError):
            c.recv(src=0, dst=1)

    def test_invalid_ranks(self):
        c = FakeComm(size=2)
        with pytest.raises(ValueError):
            c.send(1.0, src=0, dst=2)
        with pytest.raises(ValueError):
            c.send(1.0, src=1, dst=1)
        with pytest.raises(ValueError):
            FakeComm(size=0)

    def test_alpha_beta_time(self):
        c = FakeComm(size=2)
        c.send(np.zeros(1000), src=0, dst=1)
        t = simulated_network_seconds(c, alpha_us=10.0, beta_ns_per_word=5.0)
        # busiest rank: 1 message, 1000 words.
        assert t == pytest.approx(10e-6 + 1000 * 5e-9)


class TestDistributedTSQR:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8, 16])
    def test_correct_factorization(self, rng, p):
        A = rng.standard_normal((600, 10))
        res = distributed_tsqr(A, p)
        R_np = np.triu(np.linalg.qr(A, mode="r"))
        assert np.allclose(np.abs(np.diag(res.R)), np.abs(np.diag(R_np)), atol=1e-10)
        Q = res.form_q()
        assert np.allclose(Q @ res.R, A, atol=1e-10)
        assert np.allclose(Q.T @ Q, np.eye(10), atol=1e-11)

    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
    def test_critical_path_is_log_p(self, rng, p):
        A = rng.standard_normal((32 * 8, 4))
        res = distributed_tsqr(A, p)
        assert res.rounds == tsqr_message_lower_bound(p)

    def test_total_messages_p_minus_1(self, rng):
        """Every rank's R is eliminated exactly once: P - 1 messages."""
        for p in (2, 5, 8, 13):
            res = distributed_tsqr(rng.standard_normal((13 * 8, 6)), p)
            assert res.comm.total_messages == p - 1

    def test_message_size_is_triangle(self, rng):
        n = 8
        res = distributed_tsqr(rng.standard_normal((64, n)), 4)
        assert res.comm.total_words == 3 * n * (n + 1) / 2

    def test_tsqr_beats_householder_in_messages(self):
        """The headline distributed claim: log P vs 2 n log P messages."""
        for p in (16, 256):
            for n in (32, 192):
                assert householder_message_count(n, p) == 2 * n * tsqr_message_lower_bound(p)
                assert tsqr_message_lower_bound(p) * 2 * n == householder_message_count(n, p)
                assert tsqr_message_lower_bound(p) < householder_message_count(n, p) / 10

    def test_rejects_too_few_rows(self, rng):
        with pytest.raises(ValueError):
            distributed_tsqr(rng.standard_normal((10, 4)), 4)

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            distributed_tsqr(rng.standard_normal((40, 4)), 0)
        with pytest.raises(ValueError):
            distributed_tsqr(np.zeros(5), 1)

    def test_zero_communication_single_rank(self, rng):
        res = distributed_tsqr(rng.standard_normal((50, 5)), 1)
        assert res.comm.total_messages == 0


@settings(max_examples=20, deadline=None)
@given(p=st.integers(1, 12), n=st.integers(1, 8), seed=st.integers(0, 2**31))
def test_property_distributed_matches_serial(p, n, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((p * n + rng.integers(0, 20), n))
    res = distributed_tsqr(A, p)
    R_np = np.triu(np.linalg.qr(A, mode="r"))[:n]
    assert np.allclose(np.abs(np.diag(res.R)), np.abs(np.diag(R_np)), atol=1e-9)


class TestGuardsAndDtype:
    """The satellite fixes: entry-point guards + dtype preservation."""

    def test_complex_input_rejected(self):
        with pytest.raises(TypeError, match="complex"):
            distributed_tsqr(np.ones((40, 4), dtype=np.complex128), 2)

    def test_nonfinite_rejected_naming_the_entry_point(self, rng):
        A = rng.standard_normal((40, 4))
        A[3, 1] = np.nan
        with pytest.raises(ValueError, match="distributed_tsqr.*non-finite"):
            distributed_tsqr(A, 2)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_nonfinite_propagate_escape_hatch(self, rng):
        A = rng.standard_normal((40, 4))
        A[3, 1] = np.inf
        res = distributed_tsqr(A, 2, nonfinite="propagate")
        assert not np.isfinite(res.R).all()

    def test_float32_preserved_end_to_end(self, rng):
        A = rng.standard_normal((120, 6)).astype(np.float32)
        res = distributed_tsqr(A, 4)
        assert res.R.dtype == np.float32
        Q = res.form_q()
        assert Q.dtype == np.float32
        assert np.allclose(Q @ res.R, A, atol=1e-4)
        assert np.allclose(Q.T @ Q, np.eye(6), atol=1e-4)

    def test_sharded_guards_route_through_the_caqr_entry(self, rng):
        policy = ExecutionPolicy(path="sharded", shards=3)
        with pytest.raises(TypeError, match="complex"):
            caqr(np.ones((20, 3), dtype=np.complex128), policy=policy)
        A = rng.standard_normal((20, 3))
        A[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            caqr(A, policy=policy)

    def test_sharded_float32_preserved(self, rng):
        A = rng.standard_normal((200, 7)).astype(np.float32)
        f = caqr(A, policy=ExecutionPolicy(path="sharded", shards=4))
        assert f.R.dtype == np.float32
        Q = f.form_q()
        assert Q.dtype == np.float32
        assert np.allclose(Q @ f.R, A, atol=1e-4)


class TestCriticalPath:
    """Per-level maxima, not busiest-rank whole-run totals."""

    def test_sequential_rounds_add(self):
        c = FakeComm(size=4)
        c.send(np.zeros(100), src=1, dst=0, tag=0)
        c.send(np.zeros(80), src=3, dst=2, tag=1)
        # Two barriers: 100 words then 80, even though no single rank
        # moved more than 100 — the old busiest-rank estimate missed
        # the second round entirely here.
        assert c.critical_path_messages() == 2
        assert c.critical_path_words() == 180.0

    def test_parallel_merges_within_a_round_do_not_add(self):
        c = FakeComm(size=4)
        c.send(np.zeros(100), src=1, dst=0, tag=0)
        c.send(np.zeros(80), src=3, dst=2, tag=0)
        assert c.critical_path_messages() == 1
        assert c.critical_path_words() == 100.0

    def test_forwarder_charged_once_per_level(self):
        # Rank 2 receives a triangle at round 0 and forwards it at
        # round 1: each round contributes its own busiest transfer,
        # never one rank's send+recv lumped into a single round.
        c = FakeComm(size=4)
        c.send(np.zeros(100), src=3, dst=2, tag=0)
        c.send(np.zeros(100), src=2, dst=0, tag=1)
        assert c.stats[2].words_sent + c.stats[2].words_received == 200.0
        assert c.critical_path_words() == 200.0
        assert c.critical_path_messages() == 2

    def test_fanin_receives_serialize_within_a_round(self):
        c = FakeComm(size=4)
        for src in (1, 2, 3):
            c.send(np.zeros(50), src=src, dst=0, tag=0)
        assert c.critical_path_messages() == 3
        assert c.critical_path_words() == 150.0

    def test_network_seconds_defaults_to_per_level_maxima(self):
        c = FakeComm(size=4)
        c.send(np.zeros(100), src=1, dst=0, tag=0)
        c.send(np.zeros(80), src=3, dst=2, tag=1)
        t = simulated_network_seconds(c, alpha_us=10.0, beta_ns_per_word=5.0)
        assert t == pytest.approx(2 * 10.0e-6 + 180 * 5.0e-9)


class TestShardSchedule:
    def test_uneven_row_deal_covers_the_matrix(self):
        s = build_shard_schedule(10, 3, 4)
        assert s.rows == ((0, 3), (3, 6), (6, 8), (8, 10))

    def test_clamps_to_the_row_count(self):
        s = build_shard_schedule(3, 5, 8)
        assert s.shards == 3
        assert all(e - b == 1 for b, e in s.rows)

    def test_round_count_is_log_fanin(self):
        assert build_shard_schedule(64, 4, 8).levels == 3
        assert build_shard_schedule(64, 4, 8, fanin=4).levels == 2
        assert build_shard_schedule(64, 4, 8, fanin=8).levels == 1

    def test_fingerprint_tracks_the_tree(self):
        base = build_shard_schedule(64, 4, 8)
        assert base.fingerprint() == build_shard_schedule(64, 4, 8).fingerprint()
        assert base.fingerprint() != build_shard_schedule(64, 4, 4).fingerprint()
        assert (
            base.fingerprint()
            != build_shard_schedule(64, 4, 8, fanin=4).fingerprint()
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            build_shard_schedule(10, 2, 0)
        with pytest.raises(ValueError):
            build_shard_schedule(10, 2, 2, fanin=1)

    def test_describe_names_every_round(self):
        text = build_shard_schedule(16, 2, 4).describe()
        assert "round 0" in text and "round 1" in text


class TestShardedCAQR:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_matches_numpy(self, rng, shards):
        A = rng.standard_normal((150, 12))
        f = caqr(A, policy=ExecutionPolicy(path="sharded", shards=shards))
        _, Rc = sign_canonical(np.eye(12), f.R)
        _, Rn = sign_canonical(np.eye(12), np.triu(np.linalg.qr(A, mode="r")))
        assert np.allclose(Rc, Rn, atol=1e-10)
        Q = f.form_q()
        assert np.allclose(Q @ f.R, A, atol=1e-10)
        assert np.allclose(Q.T @ Q, np.eye(12), atol=1e-10)

    def test_bit_identical_to_the_in_process_reference(self, rng):
        A = rng.standard_normal((300, 16))
        policy = ExecutionPolicy(path="sharded", shards=5, fanin=3)
        f = caqr(A, policy=policy)
        assert np.array_equal(f.R, sharded_reference_r(A, policy))

    def test_plan_replays_the_prebuilt_schedule(self, rng):
        A = rng.standard_normal((128, 8))
        policy = ExecutionPolicy(path="sharded", shards=4)
        plan = plan_qr(128, 8, policy=policy)
        f_plan = plan.factor(A)
        f_direct = caqr(A, policy=policy)
        assert np.array_equal(f_plan.R, f_direct.R)
        assert plan._schedule.fingerprint() == f_direct.schedule.fingerprint()

    def test_message_counts_match_the_tree(self, rng):
        A = rng.standard_normal((96, 6))
        f = caqr(A, policy=ExecutionPolicy(path="sharded", shards=4))
        # Binomial tree over 4 ranks: 3 packed-triangle messages over
        # 2 sequential rounds; every shard is taller than n, so each
        # message is the full n(n+1)/2 triangle.
        tri_words = 6 * 7 // 2
        assert f.comm.total_messages == 3
        assert f.comm.total_words == 3 * tri_words
        assert f.comm.critical_path_messages() == 2
        assert f.comm.critical_path_words() == 2 * tri_words

    def test_network_seconds_charges_the_interconnect(self, rng):
        A = rng.standard_normal((96, 6))
        f = caqr(A, policy=ExecutionPolicy(path="sharded", shards=4))
        ic = INTERCONNECTS["ethernet"]
        want = ic.seconds(
            f.comm.critical_path_messages(), f.comm.critical_path_words()
        )
        assert f.network_seconds(ic) == pytest.approx(want)

    def test_single_shard_needs_no_communicator(self, rng):
        A = rng.standard_normal((40, 5))
        f = caqr(A, policy=ExecutionPolicy(path="sharded", shards=1))
        assert f.comm is None
        assert f.network_seconds(INTERCONNECTS["pcie2"]) == 0.0
        assert np.allclose(f.form_q() @ f.R, A, atol=1e-10)

    def test_wide_matrix(self, rng):
        A = rng.standard_normal((6, 10))
        f = caqr(A, policy=ExecutionPolicy(path="sharded", shards=4))
        Q = f.form_q()
        assert Q.shape == (6, 6) and f.R.shape == (6, 10)
        assert np.allclose(Q @ f.R, A, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    shards=st.integers(1, 9),
    fanin=st.integers(2, 4),
    m=st.integers(1, 60),
    n=st.integers(1, 10),
    seed=st.integers(0, 2**31),
)
def test_property_sharded_matches_numpy(shards, fanin, m, n, seed):
    """Shard counts x uneven row deals: bit-identity to the reference,
    tolerance agreement with LAPACK, and an orthonormal reconstruction."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    policy = ExecutionPolicy(path="sharded", shards=shards, fanin=fanin)
    f = run_sharded(A, policy)
    assert np.array_equal(f.R, sharded_reference_r(A, policy))
    k = min(m, n)
    R_np = np.triu(np.linalg.qr(A, mode="r"))[:k]
    assert np.allclose(np.abs(np.diag(f.R)), np.abs(np.diag(R_np)), atol=1e-9)
    Q = f.form_q()
    assert np.allclose(Q @ f.R, A, atol=1e-9)
    assert np.allclose(Q.T @ Q, np.eye(Q.shape[1]), atol=1e-9)
