"""Tests of the distributed-memory TSQR simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    FakeComm,
    distributed_tsqr,
    householder_message_count,
    simulated_network_seconds,
    tsqr_message_lower_bound,
)


class TestFakeComm:
    def test_send_recv_roundtrip(self):
        c = FakeComm(size=2)
        c.send(np.arange(5.0), src=0, dst=1)
        got = c.recv(src=0, dst=1)
        assert np.array_equal(got, np.arange(5.0))

    def test_messages_are_copies(self):
        c = FakeComm(size=2)
        x = np.ones(3)
        c.send(x, src=0, dst=1)
        x[0] = 99.0
        assert c.recv(src=0, dst=1)[0] == 1.0

    def test_counters(self):
        c = FakeComm(size=3)
        c.send(np.zeros(10), src=0, dst=2)
        c.send(np.zeros(4), src=1, dst=2)
        assert c.total_messages == 2
        assert c.total_words == 14
        assert c.stats[2].messages_received == 2
        assert c.stats[2].words_received == 14

    def test_fifo_per_channel(self):
        c = FakeComm(size=2)
        c.send(1.0, src=0, dst=1)
        c.send(2.0, src=0, dst=1)
        assert c.recv(src=0, dst=1) == 1.0
        assert c.recv(src=0, dst=1) == 2.0

    def test_missing_message_raises(self):
        c = FakeComm(size=2)
        with pytest.raises(LookupError):
            c.recv(src=0, dst=1)

    def test_invalid_ranks(self):
        c = FakeComm(size=2)
        with pytest.raises(ValueError):
            c.send(1.0, src=0, dst=2)
        with pytest.raises(ValueError):
            c.send(1.0, src=1, dst=1)
        with pytest.raises(ValueError):
            FakeComm(size=0)

    def test_alpha_beta_time(self):
        c = FakeComm(size=2)
        c.send(np.zeros(1000), src=0, dst=1)
        t = simulated_network_seconds(c, alpha_us=10.0, beta_ns_per_word=5.0)
        # busiest rank: 1 message, 1000 words.
        assert t == pytest.approx(10e-6 + 1000 * 5e-9)


class TestDistributedTSQR:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8, 16])
    def test_correct_factorization(self, rng, p):
        A = rng.standard_normal((600, 10))
        res = distributed_tsqr(A, p)
        R_np = np.triu(np.linalg.qr(A, mode="r"))
        assert np.allclose(np.abs(np.diag(res.R)), np.abs(np.diag(R_np)), atol=1e-10)
        Q = res.form_q()
        assert np.allclose(Q @ res.R, A, atol=1e-10)
        assert np.allclose(Q.T @ Q, np.eye(10), atol=1e-11)

    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
    def test_critical_path_is_log_p(self, rng, p):
        A = rng.standard_normal((32 * 8, 4))
        res = distributed_tsqr(A, p)
        assert res.rounds == tsqr_message_lower_bound(p)

    def test_total_messages_p_minus_1(self, rng):
        """Every rank's R is eliminated exactly once: P - 1 messages."""
        for p in (2, 5, 8, 13):
            res = distributed_tsqr(rng.standard_normal((13 * 8, 6)), p)
            assert res.comm.total_messages == p - 1

    def test_message_size_is_triangle(self, rng):
        n = 8
        res = distributed_tsqr(rng.standard_normal((64, n)), 4)
        assert res.comm.total_words == 3 * n * (n + 1) / 2

    def test_tsqr_beats_householder_in_messages(self):
        """The headline distributed claim: log P vs 2 n log P messages."""
        for p in (16, 256):
            for n in (32, 192):
                assert householder_message_count(n, p) == 2 * n * tsqr_message_lower_bound(p)
                assert tsqr_message_lower_bound(p) * 2 * n == householder_message_count(n, p)
                assert tsqr_message_lower_bound(p) < householder_message_count(n, p) / 10

    def test_rejects_too_few_rows(self, rng):
        with pytest.raises(ValueError):
            distributed_tsqr(rng.standard_normal((10, 4)), 4)

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            distributed_tsqr(rng.standard_normal((40, 4)), 0)
        with pytest.raises(ValueError):
            distributed_tsqr(np.zeros(5), 1)

    def test_zero_communication_single_rank(self, rng):
        res = distributed_tsqr(rng.standard_normal((50, 5)), 1)
        assert res.comm.total_messages == 0


@settings(max_examples=20, deadline=None)
@given(p=st.integers(1, 12), n=st.integers(1, 8), seed=st.integers(0, 2**31))
def test_property_distributed_matches_serial(p, n, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((p * n + rng.integers(0, 20), n))
    res = distributed_tsqr(A, p)
    R_np = np.triu(np.linalg.qr(A, mode="r"))[:n]
    assert np.allclose(np.abs(np.diag(res.R)), np.abs(np.diag(R_np)), atol=1e-9)
