"""Tests of the Lanczos variants (classical and s-step/TSQR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.krylov import from_dense, laplacian_1d, laplacian_2d
from repro.krylov.lanczos import LanczosResult, lanczos, ritz_values, sstep_lanczos


class TestClassicalLanczos:
    def test_tridiagonal_projection(self, rng):
        op = laplacian_1d(60)
        r = lanczos(op, rng.standard_normal(60), 12)
        V = r.V[:, :12]
        T_proj = V.T @ np.column_stack([op(V[:, j]) for j in range(12)])
        assert np.allclose(T_proj, r.T, atol=1e-10)

    def test_extremal_ritz_values_converge(self, rng):
        op = laplacian_2d(15, 15)
        true = np.linalg.eigvalsh(op.to_dense())
        ritz = lanczos(op, rng.standard_normal(op.n), 40).ritz_values()
        assert ritz[-1] == pytest.approx(true[-1], rel=1e-4)
        assert ritz[0] == pytest.approx(true[0], rel=1e-2)

    def test_ritz_values_interlace_within_spectrum(self, rng):
        op = laplacian_1d(50)
        true = np.linalg.eigvalsh(op.to_dense())
        ritz = lanczos(op, rng.standard_normal(50), 15).ritz_values()
        assert ritz.min() >= true.min() - 1e-10
        assert ritz.max() <= true.max() + 1e-10

    def test_reorthogonalization_matters(self, rng):
        """The motivation for QR-based variants: orthogonality decays
        without reorthogonalization."""
        op = laplacian_2d(12, 12)
        v0 = rng.standard_normal(op.n)
        V_no = lanczos(op, v0, 60, reorthogonalize=False).V
        V_yes = lanczos(op, v0, 60).V
        err_no = np.linalg.norm(V_no.T @ V_no - np.eye(V_no.shape[1]))
        err_yes = np.linalg.norm(V_yes.T @ V_yes - np.eye(V_yes.shape[1]))
        assert err_yes < 1e-12
        assert err_no > 100 * err_yes

    def test_breakdown_on_invariant_start(self):
        A = np.diag([1.0, 2.0, 5.0])
        op = from_dense(A)
        r = lanczos(op, np.array([0.0, 1.0, 0.0]), 3)
        assert r.alpha.size == 1
        assert r.ritz_values()[0] == pytest.approx(2.0)

    def test_invalid_args(self, rng):
        op = laplacian_1d(10)
        with pytest.raises(ValueError):
            lanczos(op, rng.standard_normal(10), 0)
        with pytest.raises(ValueError):
            lanczos(op, np.zeros(10), 3)


class TestSStepLanczos:
    def test_matches_classical_ritz_values(self, rng):
        op = laplacian_2d(12, 12)
        v0 = rng.standard_normal(op.n)
        m = 24
        classical = lanczos(op, v0, m).ritz_values()
        sstep = sstep_lanczos(op, v0, s=6, n_blocks=4).ritz_values()
        assert sstep.size == classical.size
        assert np.allclose(sstep[[0, -1]], classical[[0, -1]], rtol=1e-6)

    def test_basis_orthonormal(self, rng):
        op = laplacian_1d(200)
        r = sstep_lanczos(op, rng.standard_normal(200), s=5, n_blocks=5)
        k = r.V.shape[1]
        assert np.allclose(r.V.T @ r.V, np.eye(k), atol=1e-10)

    def test_t_matrix_symmetric_by_construction(self, rng):
        op = laplacian_1d(80)
        r = sstep_lanczos(op, rng.standard_normal(80), s=4, n_blocks=4)
        assert np.allclose(r.T, r.T.T)

    def test_ritz_values_dispatcher(self, rng):
        op = laplacian_2d(8, 8)
        v0 = rng.standard_normal(op.n)
        for method in ("classical", "classical-noreorth", "sstep"):
            vals = ritz_values(op, v0, 16, method=method)
            assert vals.size >= 1
        with pytest.raises(ValueError):
            ritz_values(op, v0, 16, method="magic")
