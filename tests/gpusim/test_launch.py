"""Tests for the kernel-launch timing model."""

from __future__ import annotations

import pytest

from repro.gpusim.device import C2050
from repro.gpusim.launch import LaunchSpec, occupancy_blocks_per_sm, time_launch


def make_spec(**kw) -> LaunchSpec:
    base = dict(
        kernel="k",
        n_blocks=1000,
        threads_per_block=64,
        cycles_per_block=5000.0,
        flops_per_block=131072.0,
        read_bytes_per_block=16384.0,
        write_bytes_per_block=8192.0,
        smem_per_block_bytes=9 * 1024,
        regs_per_block_bytes=10 * 1024,
    )
    base.update(kw)
    return LaunchSpec(**base)


class TestOccupancy:
    def test_limited_by_smem(self):
        spec = make_spec(smem_per_block_bytes=24 * 1024, regs_per_block_bytes=0)
        assert occupancy_blocks_per_sm(spec, C2050) == 2

    def test_limited_by_registers(self):
        spec = make_spec(smem_per_block_bytes=0, regs_per_block_bytes=60 * 1024)
        assert occupancy_blocks_per_sm(spec, C2050) == 2

    def test_limited_by_max_blocks(self):
        spec = make_spec(smem_per_block_bytes=100, regs_per_block_bytes=100)
        assert occupancy_blocks_per_sm(spec, C2050) == C2050.max_blocks_per_sm

    def test_limited_by_threads(self):
        spec = make_spec(threads_per_block=512, smem_per_block_bytes=0, regs_per_block_bytes=0)
        assert occupancy_blocks_per_sm(spec, C2050) == 3  # 1536 threads / 512

    def test_does_not_fit_raises(self):
        spec = make_spec(smem_per_block_bytes=64 * 1024)
        with pytest.raises(ValueError):
            occupancy_blocks_per_sm(spec, C2050)

    def test_bad_thread_count_raises(self):
        with pytest.raises(ValueError):
            occupancy_blocks_per_sm(make_spec(threads_per_block=1024), C2050)
        with pytest.raises(ValueError):
            occupancy_blocks_per_sm(make_spec(threads_per_block=0), C2050)


class TestTimeLaunch:
    def test_always_pays_launch_overhead(self):
        t = time_launch(make_spec(n_blocks=1), C2050)
        assert t.seconds >= C2050.kernel_launch_us * 1e-6

    def test_zero_blocks_is_pure_overhead(self):
        t = time_launch(make_spec(n_blocks=0), C2050)
        assert t.seconds == pytest.approx(C2050.kernel_launch_us * 1e-6)
        assert t.limiter == "overhead"

    def test_compute_bound_kernel(self):
        # Tiny traffic, heavy cycles -> compute-limited.
        spec = make_spec(n_blocks=100_000, read_bytes_per_block=10.0, write_bytes_per_block=0.0)
        t = time_launch(spec, C2050)
        assert t.limiter == "compute"
        assert t.compute_s > t.memory_s

    def test_memory_bound_kernel(self):
        spec = make_spec(
            n_blocks=100_000,
            cycles_per_block=10.0,
            read_bytes_per_block=1e6,
            write_bytes_per_block=1e6,
        )
        t = time_launch(spec, C2050)
        assert t.limiter == "memory"

    def test_latency_bound_small_grid(self):
        # One block: a single wave's latency dominates aggregate rates.
        spec = make_spec(n_blocks=1, cycles_per_block=100.0, read_bytes_per_block=100.0, write_bytes_per_block=0.0)
        t = time_launch(spec, C2050)
        assert t.seconds >= C2050.dram_latency_us * 1e-6

    def test_time_scales_linearly_at_scale(self):
        t1 = time_launch(make_spec(n_blocks=50_000), C2050)
        t2 = time_launch(make_spec(n_blocks=100_000), C2050)
        body1 = t1.seconds - t1.overhead_s
        body2 = t2.seconds - t2.overhead_s
        assert body2 == pytest.approx(2 * body1, rel=0.02)

    def test_low_occupancy_slows_compute(self):
        # Same work, but a footprint that allows only one resident block
        # (2 warps) must not run faster than the high-occupancy version.
        fat = make_spec(n_blocks=10_000, regs_per_block_bytes=120 * 1024, smem_per_block_bytes=0)
        slim = make_spec(n_blocks=10_000, regs_per_block_bytes=10 * 1024, smem_per_block_bytes=0)
        t_fat = time_launch(fat, C2050)
        t_slim = time_launch(slim, C2050)
        assert t_fat.compute_s > t_slim.compute_s

    def test_bw_efficiency_scales_memory_time(self):
        spec_full = make_spec(n_blocks=10_000, cycles_per_block=1.0, bw_efficiency=1.0)
        spec_half = make_spec(n_blocks=10_000, cycles_per_block=1.0, bw_efficiency=0.5)
        assert time_launch(spec_half, C2050).memory_s == pytest.approx(
            2 * time_launch(spec_full, C2050).memory_s
        )

    def test_negative_blocks_rejected(self):
        with pytest.raises(ValueError):
            time_launch(make_spec(n_blocks=-1), C2050)

    def test_counters_scale_with_blocks(self):
        spec = make_spec(n_blocks=7)
        c = spec.counters()
        assert c.flops == 7 * spec.flops_per_block
        assert c.gmem_bytes == 7 * (spec.read_bytes_per_block + spec.write_bytes_per_block)
        assert c.kernel_launches == 1
        assert c.thread_blocks == 7
