"""Tests of the event scheduler and the scheduled hybrid baseline."""

from __future__ import annotations

import pytest

from repro.baselines import MAGMAQR
from repro.baselines.hybrid_scheduled import ScheduledHybridQR
from repro.experiments.table1 import PAPER_TABLE1
from repro.gpusim.schedule import EventSchedule


class TestEventSchedule:
    def test_serial_chain(self):
        s = EventSchedule()
        a = s.add("a", "cpu", 1.0)
        b = s.add("b", "cpu", 2.0, [a])
        assert s.makespan == 3.0
        assert s.tasks[b].start == 1.0

    def test_parallel_resources(self):
        s = EventSchedule()
        s.add("a", "cpu", 2.0)
        s.add("b", "gpu", 3.0)
        assert s.makespan == 3.0

    def test_dependency_across_resources(self):
        s = EventSchedule()
        a = s.add("a", "cpu", 2.0)
        b = s.add("b", "gpu", 1.0, [a])
        assert s.makespan == 3.0
        assert s.tasks[b].start == 2.0

    def test_resource_serialization(self):
        s = EventSchedule()
        s.add("a", "gpu", 1.0)
        s.add("b", "gpu", 1.0)  # no dep, same resource -> serial
        assert s.makespan == 2.0

    def test_pipeline_overlap(self):
        """Classic two-stage pipeline: makespan < serial sum."""
        s = EventSchedule()
        prev = None
        for i in range(4):
            a = s.add(f"stage1[{i}]", "cpu", 1.0)
            prev = s.add(f"stage2[{i}]", "gpu", 1.0, [a])
        assert s.makespan == pytest.approx(5.0)  # 1 + 4 (pipelined), not 8

    def test_utilization_and_busy(self):
        s = EventSchedule()
        s.add("a", "cpu", 2.0)
        s.add("b", "gpu", 1.0)
        assert s.resource_busy("cpu") == 2.0
        assert s.resource_utilization("gpu") == pytest.approx(0.5)

    def test_critical_path_ends_at_makespan(self):
        s = EventSchedule()
        a = s.add("a", "cpu", 1.0)
        b = s.add("b", "link", 2.0, [a])
        c = s.add("c", "gpu", 3.0, [b])
        path = s.critical_path()
        assert path[-1].name == "c"
        assert path[-1].finish == s.makespan
        assert [t.name for t in path] == ["a", "b", "c"]

    def test_invalid_inputs(self):
        s = EventSchedule()
        with pytest.raises(ValueError):
            s.add("x", "cpu", -1.0)
        with pytest.raises(ValueError):
            s.add("x", "cpu", 1.0, [5])

    def test_empty(self):
        assert EventSchedule().makespan == 0.0

    def test_gantt_renders(self):
        s = EventSchedule()
        a = s.add("work", "cpu", 1.0)
        s.add("copy", "link", 0.5, [a])
        out = s.gantt(width=20)
        assert "makespan" in out and "[cpu]" in out and "=" in out


class TestScheduledHybrid:
    @pytest.mark.parametrize("height", sorted(PAPER_TABLE1))
    def test_agrees_with_closed_form(self, height):
        """The explicit pipeline validates the closed-form look-ahead."""
        a = MAGMAQR().simulate(height, 192).seconds
        b = ScheduledHybridQR().simulate(height, 192).seconds
        assert b == pytest.approx(a, rel=0.15)

    def test_agrees_on_square(self):
        a = MAGMAQR().simulate(8192, 4096).seconds
        b = ScheduledHybridQR().simulate(8192, 4096).seconds
        assert b == pytest.approx(a, rel=0.15)

    def test_gpu_idle_on_tall_skinny(self):
        """Section III: for skinny matrices the hybrid leaves the GPU
        mostly idle — the quantitative reason for going GPU-only."""
        sched = ScheduledHybridQR().build_schedule(1_000_000, 192)
        assert sched.resource_utilization("gpu") < 0.15
        assert sched.resource_utilization("cpu") > 0.75

    def test_gpu_busy_on_square(self):
        sched = ScheduledHybridQR().build_schedule(8192, 8192)
        assert sched.resource_utilization("gpu") > 0.5

    def test_lookahead_beats_sequential(self):
        la = ScheduledHybridQR(lookahead=True).simulate(8192, 4096).seconds
        seq = ScheduledHybridQR(lookahead=False).simulate(8192, 4096).seconds
        assert la < seq

    def test_breakdown_resources(self):
        r = ScheduledHybridQR().simulate(50_000, 192)
        assert {"cpu", "gpu", "link"} <= set(r.breakdown)
