"""Scheduler invariants for the stream-aware concurrent timeline."""

import pytest

from repro.gpusim import C2050, list_schedule, occupancy_weight, time_launch
from repro.graph import caqr_launch_graph, simulate_caqr_overlap

SHAPES = [(1000, 192), (10000, 192), (4096, 64)]


@pytest.mark.parametrize("m,n", SHAPES)
def test_overlap_between_critical_path_and_serial(m, n):
    r = simulate_caqr_overlap(m, n, streams=4)
    assert r.critical_path_seconds <= r.overlap_seconds + 1e-15
    assert r.overlap_seconds <= r.serial_seconds + 1e-15


@pytest.mark.parametrize("m,n", SHAPES)
def test_overlap_strictly_improves(m, n):
    r = simulate_caqr_overlap(m, n, streams=4)
    assert r.overlap_seconds < r.serial_seconds
    assert r.speedup > 1.0
    assert r.hidden_seconds > 0.0


def test_stream_count_monotonicity():
    prev = None
    for streams in (1, 2, 3, 4, 6, 8):
        r = simulate_caqr_overlap(1000, 192, streams=streams)
        if prev is not None:
            assert r.overlap_seconds <= prev + 1e-15
        prev = r.overlap_seconds


@pytest.mark.parametrize("m,n", SHAPES)
@pytest.mark.parametrize("streams", [2, 4])
def test_schedule_respects_streams_deps_capacity(m, n, streams):
    g = caqr_launch_graph(m, n)
    tl = list_schedule(g.nodes, C2050, streams=streams)
    assert len(tl.launches) == len(g.nodes)
    # In-order, non-overlapping within each stream.
    per_stream = {}
    for ev in sorted(tl.launches, key=lambda e: e.start):
        last = per_stream.get(ev.stream)
        if last is not None:
            assert ev.start >= last - 1e-15
        per_stream[ev.stream] = ev.finish
    assert set(per_stream) <= set(range(streams))
    # Dependencies finish before dependents start.
    finish = {ev.node_id: ev.finish for ev in tl.launches}
    start = {ev.node_id: ev.start for ev in tl.launches}
    for node in g.nodes:
        for d in node.deps:
            assert start[node.id] >= finish[d] - 1e-15
    # Device capacity never exceeded (bodies only).
    assert tl.max_concurrent_weight() <= 1.0 + 1e-9
    # Overhead precedes the body within each launch.
    for ev in tl.launches:
        assert ev.start <= ev.body_start <= ev.finish


def test_single_stream_degenerates_to_serial_order():
    g = caqr_launch_graph(1000, 192)
    tl = list_schedule(g.nodes, C2050, streams=1)
    evs = sorted(tl.launches, key=lambda e: e.node_id)
    for a, b in zip(evs, evs[1:]):
        assert b.start >= a.finish - 1e-15


def test_occupancy_weight_bounds():
    g = caqr_launch_graph(1000, 192)
    for node in g.nodes:
        w = occupancy_weight(node.spec, C2050)
        assert 0.0 < w <= 1.0


def test_makespan_at_least_longest_launch():
    g = caqr_launch_graph(4096, 64)
    tl = list_schedule(g.nodes, C2050, streams=4)
    longest = max(time_launch(nd.spec, C2050).seconds for nd in g.nodes)
    assert tl.makespan >= longest
    assert 0.0 < tl.utilization() <= 1.0


def test_invalid_stream_count():
    g = caqr_launch_graph(256, 48)
    with pytest.raises(ValueError):
        list_schedule(g.nodes, C2050, streams=0)
    with pytest.raises(ValueError):
        simulate_caqr_overlap(256, 48, streams=0)
