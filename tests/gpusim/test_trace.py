"""Tests of the timeline profiler rendering."""

from __future__ import annotations

import pytest

from repro.caqr_gpu import simulate_caqr
from repro.gpusim import C2050, PCIE_GEN2, Timeline, kernel_summary, render_profile
from repro.gpusim.launch import LaunchSpec


def spec(name, blocks=100, cycles=1000.0):
    return LaunchSpec(
        kernel=name,
        n_blocks=blocks,
        threads_per_block=64,
        cycles_per_block=cycles,
        flops_per_block=1e5,
        read_bytes_per_block=1e4,
        write_bytes_per_block=1e4,
    )


class TestKernelSummary:
    def test_aggregates_by_name(self):
        tl = Timeline(device=C2050)
        tl.launch(spec("a"))
        tl.launch(spec("a"))
        tl.launch(spec("b"))
        rows = kernel_summary(tl)
        assert [r["name"] for r in rows][0] == "a"
        a = rows[0]
        assert a["events"] == 2
        assert a["thread_blocks"] == 200

    def test_shares_sum_to_one(self):
        tl = Timeline(device=C2050)
        tl.launch(spec("a"))
        tl.launch(spec("b", cycles=5000.0))
        tl.transfer(PCIE_GEN2, 1 << 20)
        rows = kernel_summary(tl)
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)

    def test_rates_positive(self):
        tl = Timeline(device=C2050)
        tl.launch(spec("a"))
        r = kernel_summary(tl)[0]
        assert r["gflops"] > 0 and r["gbytes_per_s"] > 0

    def test_empty_timeline(self):
        assert kernel_summary(Timeline(device=C2050)) == []


class TestRenderProfile:
    def test_renders_caqr_profile(self):
        tl = simulate_caqr(50_000, 192).timeline
        out = render_profile(tl)
        for k in ("apply_qt_h", "factor", "apply_qt_tree", "factor_tree", "transpose"):
            assert k in out
        assert "ms total" in out
        assert "#" in out

    def test_dominant_kernel_first(self):
        tl = simulate_caqr(500_000, 192).timeline
        lines = render_profile(tl).splitlines()
        assert "apply_qt_h" in lines[1]

    def test_custom_title(self):
        tl = Timeline(device=C2050)
        tl.launch(spec("k"))
        assert render_profile(tl, title="hello").startswith("hello")
