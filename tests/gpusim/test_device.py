"""Tests for device specifications."""

from __future__ import annotations

import pytest

from repro.gpusim.device import C2050, COREI7_4CORE, GTX480, NEHALEM_8CORE, PCIE_GEN2


class TestDeviceSpecs:
    def test_c2050_peak_matches_paper(self):
        # 14 SMs x 32 lanes x 1.15 GHz x 2 (FMA) ~ 1.03 TFLOP/s.
        assert C2050.peak_gflops == pytest.approx(1030.4, rel=1e-3)

    def test_c2050_section_iv_a_parameters(self):
        assert C2050.n_sm == 14
        assert C2050.lanes_per_sm == 32
        assert C2050.clock_ghz == 1.15
        assert C2050.dram_bw_gbs == 144.0  # ECC-enabled effective bandwidth
        assert C2050.smem_per_sm_bytes == 48 * 1024
        assert C2050.regfile_per_sm_bytes == 128 * 1024
        assert C2050.max_threads_per_block == 512

    def test_gtx480_faster_than_c2050(self):
        assert GTX480.peak_gflops > C2050.peak_gflops
        assert GTX480.dram_bw_gbs > C2050.dram_bw_gbs

    def test_cpu_peaks(self):
        # 8 cores x 4-wide SSE x 2 x 2.4 GHz = 153.6 GFLOP/s.
        assert NEHALEM_8CORE.peak_gflops == pytest.approx(153.6)
        assert COREI7_4CORE.peak_gflops == pytest.approx(83.2)

    def test_with_returns_modified_copy(self):
        fast = C2050.with_(dram_bw_gbs=288.0)
        assert fast.dram_bw_gbs == 288.0
        assert C2050.dram_bw_gbs == 144.0
        assert fast.n_sm == C2050.n_sm

    def test_spec_is_hashable_and_frozen(self):
        assert hash(C2050) == hash(C2050)
        with pytest.raises(Exception):
            C2050.n_sm = 15  # frozen dataclass


class TestPCIeLink:
    def test_latency_floor(self):
        t = PCIE_GEN2.transfer_seconds(4)
        assert t >= PCIE_GEN2.latency_us * 1e-6

    def test_bandwidth_dominates_large_transfers(self):
        n = 1 << 30
        t = PCIE_GEN2.transfer_seconds(n)
        assert t == pytest.approx(n / (PCIE_GEN2.bw_gbs * 1e9), rel=0.01)

    def test_zero_bytes_free(self):
        assert PCIE_GEN2.transfer_seconds(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN2.transfer_seconds(-1)

    def test_monotone_in_bytes(self):
        assert PCIE_GEN2.transfer_seconds(1000) < PCIE_GEN2.transfer_seconds(10_000_000)
