"""Tests for counters and timelines."""

from __future__ import annotations

import pytest

from repro.gpusim.counters import Counters
from repro.gpusim.device import C2050, PCIE_GEN2
from repro.gpusim.launch import LaunchSpec
from repro.gpusim.timeline import Timeline


def spec(name="k", blocks=100):
    return LaunchSpec(
        kernel=name,
        n_blocks=blocks,
        threads_per_block=64,
        cycles_per_block=1000.0,
        flops_per_block=1e5,
        read_bytes_per_block=1e4,
        write_bytes_per_block=1e4,
    )


class TestCounters:
    def test_add_accumulates(self):
        a = Counters(flops=10, gmem_read_bytes=5, kernel_launches=1)
        b = Counters(flops=3, gmem_write_bytes=2, kernel_launches=2)
        a.add(b)
        assert a.flops == 13
        assert a.gmem_bytes == 7
        assert a.kernel_launches == 3

    def test_plus_operator_is_pure(self):
        a = Counters(flops=1)
        b = Counters(flops=2)
        c = a + b
        assert c.flops == 3 and a.flops == 1 and b.flops == 2

    def test_arithmetic_intensity(self):
        c = Counters(flops=100, gmem_read_bytes=25, gmem_write_bytes=25)
        assert c.arithmetic_intensity == 2.0
        assert Counters(flops=5).arithmetic_intensity == float("inf")


class TestTimeline:
    def test_launch_appends_and_times(self):
        tl = Timeline(device=C2050)
        t = tl.launch(spec())
        assert len(tl.events) == 1
        assert tl.total_seconds == t.seconds

    def test_counters_aggregate(self):
        tl = Timeline(device=C2050)
        tl.launch(spec(blocks=10))
        tl.launch(spec(blocks=20))
        assert tl.counters.flops == 30 * 1e5
        assert tl.counters.kernel_launches == 2

    def test_transfer_event(self):
        tl = Timeline(device=C2050)
        t = tl.transfer(PCIE_GEN2, 1 << 20)
        assert t > 0
        assert tl.counters.pcie_bytes == 1 << 20
        assert tl.counters.pcie_transfers == 1

    def test_host_event(self):
        tl = Timeline(device=C2050)
        tl.host("cpu_svd", 0.01, flops=1e6)
        assert tl.total_seconds == pytest.approx(0.01)
        assert tl.counters.flops == 1e6

    def test_host_negative_rejected(self):
        tl = Timeline(device=C2050)
        with pytest.raises(ValueError):
            tl.host("bad", -1.0)

    def test_seconds_by_kernel_groups(self):
        tl = Timeline(device=C2050)
        tl.launch(spec("a"))
        tl.launch(spec("a"))
        tl.launch(spec("b"))
        by = tl.seconds_by_kernel()
        assert set(by) == {"a", "b"}
        assert by["a"] == pytest.approx(2 * by["b"])
        assert tl.launches_by_kernel() == {"a": 2, "b": 1}

    def test_gflops_vs_reference(self):
        tl = Timeline(device=C2050)
        tl.launch(spec(blocks=1000))
        assert tl.gflops(reference_flops=2e8) == pytest.approx(2e8 / tl.total_seconds / 1e9)
        # default: counted flops
        assert tl.gflops() == pytest.approx(1e8 / tl.total_seconds / 1e9)

    def test_extend_concatenates(self):
        a = Timeline(device=C2050)
        b = Timeline(device=C2050)
        a.launch(spec())
        b.launch(spec())
        a.extend(b)
        assert len(a.events) == 2

    def test_empty_timeline(self):
        tl = Timeline(device=C2050)
        assert tl.total_seconds == 0.0
        assert tl.gflops() == 0.0


class TestIncrementalAggregates:
    """total_seconds / counters fold incrementally and track list edits."""

    def _spec(self, tag=""):
        from repro.gpusim.launch import LaunchSpec

        return LaunchSpec(
            kernel="factor",
            n_blocks=4,
            threads_per_block=64,
            cycles_per_block=1000.0,
            flops_per_block=10.0,
            read_bytes_per_block=64.0,
            write_bytes_per_block=64.0,
            tag=tag,
        )

    def test_repeated_reads_stable(self):
        from repro.gpusim import C2050, Timeline

        tl = Timeline(device=C2050)
        for i in range(5):
            tl.launch(self._spec(tag=str(i)))
        first = tl.total_seconds
        for _ in range(3):
            assert tl.total_seconds == first
            assert tl.counters.kernel_launches == 5

    def test_appends_picked_up(self):
        from repro.gpusim import C2050, Timeline

        tl = Timeline(device=C2050)
        tl.launch(self._spec())
        t1 = tl.total_seconds
        tl.launch(self._spec())
        assert tl.total_seconds > t1
        assert tl.counters.flops == 2 * 4 * 10.0

    def test_extend_and_truncate(self):
        from repro.gpusim import C2050, Timeline

        a = Timeline(device=C2050)
        b = Timeline(device=C2050)
        for _ in range(3):
            a.launch(self._spec())
            b.launch(self._spec())
        total_each = a.total_seconds
        a.extend(b)
        assert a.total_seconds == 2 * total_each
        # Replacing with a shorter list resets the fold.
        a.events = a.events[:2]
        assert a.counters.kernel_launches == 2

    def test_counters_returns_fresh_object(self):
        from repro.gpusim import C2050, Timeline

        tl = Timeline(device=C2050)
        tl.launch(self._spec())
        c = tl.counters
        c.add(c)  # caller mutates its copy
        assert tl.counters.kernel_launches == 1
