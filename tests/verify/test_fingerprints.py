"""Golden launch/schedule fingerprints — the tier-1 face of the CI gate.

The committed ``tests/data/fingerprints.json`` pins the modeled launch
stream (serial paths) and the look-ahead task DAG (executor paths) for
a grid of reference shapes; ``tools/check_fingerprints.py`` recomputes
and diffs them in CI.  This test keeps the same check inside `pytest`
so drift is caught before a PR ever reaches the workflow.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = REPO_ROOT / "tests" / "data" / "fingerprints.json"
TOOL = REPO_ROOT / "tools" / "check_fingerprints.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_fingerprints", TOOL)
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_fingerprints", mod)
    spec.loader.exec_module(mod)
    return mod


def test_golden_file_is_committed():
    assert GOLDEN.exists(), "tests/data/fingerprints.json missing"
    data = json.loads(GOLDEN.read_text())
    assert set(data) == {
        "seed",
        "batched",
        "structured",
        "lookahead",
        "lookahead_mt",
        "cholqr2",
        "cholqr2_mixed",
        "auto",
        "sharded",
        "rsvd_graph",
        "sharded_graph",
        "streaming",
        "caqr_order",
    }


def test_fingerprints_match_golden(checker):
    golden = json.loads(GOLDEN.read_text())
    fresh = checker.compute_fingerprints()
    drift = checker.diff_fingerprints(golden, fresh)
    assert not drift, "fingerprint drift:\n" + "\n".join(drift)


def test_serial_paths_share_one_stream(checker):
    """Strategy never changes the modeled launches — pinned identity."""
    fresh = checker.compute_fingerprints()
    assert fresh["seed"] == fresh["batched"] == fresh["structured"]


def test_lookahead_tiling_changes_the_dag(checker):
    """workers=3 tiles the trailing updates: the mt DAG must differ from
    the untiled one wherever a trailing matrix exists."""
    fresh = checker.compute_fingerprints()
    multi_panel = [s for s in fresh["lookahead"] if s != "4096x32"]
    assert any(
        fresh["lookahead"][s] != fresh["lookahead_mt"][s] for s in multi_panel
    )


def test_cholqr_paths_pin_distinct_streams(checker):
    """Mixed precision and the auto guard precheck are visible in the
    modeled stream: each cholqr path pins its own fingerprints."""
    fresh = checker.compute_fingerprints()
    for shape in fresh["cholqr2"]:
        assert fresh["cholqr2"][shape] != fresh["cholqr2_mixed"][shape]
        assert fresh["auto"][shape] != fresh["cholqr2"][shape]


def test_sharded_fingerprint_tracks_the_schedule(checker):
    """The sharded pin is the reduction schedule's hash: a different
    shard count or fan-in must move it, and the golden must match what
    plan_qr builds for the reference configuration."""
    from repro.distributed.sharded import build_shard_schedule
    from repro.runtime import ExecutionPolicy, plan_qr

    shards, fanin = checker.SHARDED_PATHS["sharded"]
    golden = json.loads(GOLDEN.read_text())["sharded"]
    for shape, pin in golden.items():
        m, n = map(int, shape.split("x"))
        assert build_shard_schedule(m, n, shards, fanin).fingerprint() == pin
    plan = plan_qr(
        1024, 256, policy=ExecutionPolicy(path="sharded", shards=shards, fanin=fanin)
    )
    assert plan._schedule.fingerprint() == golden["1024x256"]
    moved = build_shard_schedule(1024, 256, shards + 1, fanin).fingerprint()
    assert moved != golden["1024x256"]


def test_rsvd_graph_pin_is_bind_independent(checker):
    """The rsvd_graph pin hashes structure only: the bound graph (the one
    randomized_svd_graph actually runs) must fingerprint identically to
    the structural emission the gate computes."""
    from repro.core.randomized_svd import emit_rsvd_layers

    k, oversample, power = checker.RSVD_GRAPH_PATHS["rsvd_graph"]
    golden = json.loads(GOLDEN.read_text())["rsvd_graph"]
    for shape, pin in golden.items():
        m, n = map(int, shape.split("x"))
        bound = emit_rsvd_layers(
            m, n, k, oversample, power, bind={"A": None, "rng": None}
        )
        assert bound.fingerprint() == pin, shape


def test_sharded_graph_pin_tracks_the_layers(checker):
    """The sharded_graph pin is the layer compilation of the reference
    reduction schedule: a different shard count must move it while the
    schedule-level ``sharded`` pin stays the authority on the row deal."""
    from repro.distributed.sharded import build_shard_schedule, emit_sharded_layers

    shards, fanin = checker.SHARDED_GRAPH_PATHS["sharded_graph"]
    golden = json.loads(GOLDEN.read_text())["sharded_graph"]
    for shape, pin in golden.items():
        m, n = map(int, shape.split("x"))
        sched = build_shard_schedule(m, n, shards, fanin)
        assert emit_sharded_layers(sched).fingerprint() == pin, shape
    moved = emit_sharded_layers(
        build_shard_schedule(1024, 256, shards + 1, fanin)
    ).fingerprint()
    assert moved != golden["1024x256"]


def test_streaming_pin_tracks_the_chunk_pipeline(checker):
    """The streaming pin hashes the chunk/factor/fold layers for the
    reference chunk height: a different chunk_rows must move it, the
    bound emission (what run_streaming_graph executes) must fingerprint
    identically to the structural one, and plan_qr's task_graph() must
    agree with the gate."""
    from repro.runtime import ExecutionPolicy, plan_qr
    from repro.streaming.graphs import emit_streaming_layers

    chunk_rows = checker.STREAMING_PATHS["streaming"]
    golden = json.loads(GOLDEN.read_text())["streaming"]
    for shape, pin in golden.items():
        m, n = map(int, shape.split("x"))
        assert emit_streaming_layers(m, n, chunk_rows).fingerprint() == pin, shape
    plan = plan_qr(
        1024, 256,
        policy=ExecutionPolicy(path="streaming", chunk_rows=chunk_rows),
    )
    assert plan.task_graph().fingerprint() == golden["1024x256"]
    moved = emit_streaming_layers(1024, 256, chunk_rows // 2).fingerprint()
    assert moved != golden["1024x256"]


def test_caqr_order_pin_is_deterministic(checker):
    """Tier-1 ordering determinism: the static order of the CAQR graph is
    pinned, so any drift in the ordering pass fails fast — two fresh
    emissions must agree with each other and with the golden."""
    from repro.graph.dag import emit_caqr_layers
    from repro.graph.order import order_fingerprint
    from repro.kernels.config import KernelConfig

    cfg = KernelConfig(
        block_rows=checker.BLOCK_ROWS, panel_width=checker.PANEL_WIDTH
    )
    golden = json.loads(GOLDEN.read_text())["caqr_order"]
    for shape, pin in golden.items():
        m, n = map(int, shape.split("x"))
        first = order_fingerprint(emit_caqr_layers(m, n, cfg))
        again = order_fingerprint(emit_caqr_layers(m, n, cfg))
        assert first == again, shape
        assert first == pin, shape


def test_diff_is_readable(checker):
    golden = {"seed": {"8x8": "aaaa"}}
    fresh = {"seed": {"8x8": "bbbb"}}
    lines = checker.diff_fingerprints(golden, fresh)
    assert len(lines) == 1
    assert "aaaa" in lines[0] and "bbbb" in lines[0] and "seed" in lines[0]
