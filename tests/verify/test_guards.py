"""The single validation policy, demonstrated at every public entry point.

Complex input raises ``TypeError``; non-finite input raises ``ValueError``
by default with a ``nonfinite="propagate"`` escape hatch; int inputs
normalize to float64 and float32 is preserved.  These are the PR's two
headline bugfixes: previously complex inputs were silently truncated to
their real part (a ``ComplexWarning`` at best) and NaN/Inf flowed through
to plausible-looking garbage factors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.caqr_gpu import caqr_gpu_factor
from repro.core.blocked import blocked_qr
from repro.core.caqr import caqr_qr
from repro.core.cholesky_qr import cholesky_qr
from repro.core.gram_schmidt import cgs2
from repro.core.randomized_svd import randomized_svd
from repro.core.tsqr import tsqr_qr
from repro.dispatch import QRDispatcher
from repro.graph.executor import caqr_lookahead
from repro.rpca.adaptive import AdaptiveSVT
from repro.verify.guards import GuardError, validate_matrix, validate_nonfinite_policy

# Every public entry point, normalized to a callable taking one matrix.
ENTRY_POINTS = {
    "caqr_qr": lambda A: caqr_qr(A),
    "tsqr_qr": lambda A: tsqr_qr(A),
    "blocked_qr": lambda A: blocked_qr(A),
    "caqr_lookahead": lambda A: caqr_lookahead(A),
    "caqr_gpu_factor": lambda A: caqr_gpu_factor(A),
    "dispatcher": lambda A: QRDispatcher().qr(A),
    "randomized_svd": lambda A: randomized_svd(A, k=2),
    "adaptive_svt": lambda A: AdaptiveSVT()(A, tau=0.1),
    "cholesky_qr": lambda A: cholesky_qr(A),
    "cgs2": lambda A: cgs2(A),
}


@pytest.fixture(params=list(ENTRY_POINTS))
def entry_point(request):
    return ENTRY_POINTS[request.param]


class TestComplexRejection:
    def test_every_entry_point_raises_type_error(self, rng, entry_point):
        A = rng.standard_normal((32, 4)) + 1j * rng.standard_normal((32, 4))
        with pytest.raises(TypeError, match="complex"):
            entry_point(A)

    def test_complex_dtype_with_zero_imaginary_still_rejected(self, rng):
        # The dtype is the contract; a zero imaginary part is still a bug
        # waiting to happen upstream.
        A = rng.standard_normal((16, 3)).astype(np.complex128)
        with pytest.raises(TypeError, match="complex"):
            caqr_qr(A)

    def test_as_float_array_is_the_chokepoint(self, rng):
        from repro.core.dtypes import as_float_array

        with pytest.raises(TypeError, match="complex"):
            as_float_array(np.array([1 + 2j, 3 + 4j]))


class TestNonFiniteGuard:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_every_entry_point_raises_value_error(self, rng, entry_point, bad):
        A = rng.standard_normal((32, 4))
        A[7, 2] = bad
        with pytest.raises(ValueError, match="non-finite"):
            entry_point(A)

    def test_error_message_locates_first_bad_entry(self, rng):
        A = rng.standard_normal((32, 4))
        A[7, 2] = np.nan
        with pytest.raises(ValueError, match=r"\(7, 2\)"):
            caqr_qr(A)

    def test_error_message_mentions_escape_hatch(self, rng):
        A = rng.standard_normal((8, 2))
        A[0, 0] = np.inf
        with pytest.raises(ValueError, match="propagate"):
            tsqr_qr(A)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_propagate_opt_in(self, rng):
        A = rng.standard_normal((64, 8))
        A[17, 3] = np.nan
        Q, R = caqr_qr(A, nonfinite="propagate")
        assert not np.isfinite(Q).all() or not np.isfinite(R).all()

    def test_dispatcher_propagate_is_constructor_state(self, rng):
        A = rng.standard_normal((64, 8))
        A[1, 1] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            QRDispatcher().qr(A)
        res = QRDispatcher(nonfinite="propagate").qr(A)
        assert not np.isfinite(res.R).all()

    def test_unknown_policy_is_guard_error(self):
        with pytest.raises(GuardError, match="nonfinite"):
            validate_nonfinite_policy("explode")
        with pytest.raises(GuardError):
            QRDispatcher(nonfinite="explode")
        with pytest.raises(GuardError):
            AdaptiveSVT(nonfinite="explode")


class TestNormalization:
    def test_int_input_becomes_float64(self):
        A = validate_matrix(np.arange(12).reshape(4, 3), where="t")
        assert A.dtype == np.float64

    def test_float32_preserved(self, rng):
        A = validate_matrix(rng.standard_normal((8, 3)).astype(np.float32), where="t")
        assert A.dtype == np.float32

    def test_dtype_pin_overrides(self, rng):
        A = validate_matrix(
            rng.standard_normal((8, 3)).astype(np.float32), where="t", dtype=np.float64
        )
        assert A.dtype == np.float64

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            validate_matrix(np.zeros(5), where="t")
        with pytest.raises(ValueError):
            validate_matrix(np.zeros((2, 2, 2)), where="t")

    def test_int_matrix_factors_end_to_end(self):
        A = np.arange(1, 33).reshape(8, 4)
        Q, R = caqr_qr(A, panel_width=2, block_rows=4)
        assert Q.dtype == np.float64
        assert np.allclose(Q @ R, A.astype(np.float64))

    def test_where_tag_appears_in_errors(self, rng):
        A = rng.standard_normal((4, 2))
        A[0, 0] = np.nan
        with pytest.raises(ValueError, match="cholesky_qr"):
            cholesky_qr(A)
