"""Degenerate and awkward shapes through every execution path.

Each path must return exactly the ``np.linalg.qr(mode="reduced")`` shape
and dtype contract — 0-row, 0-column, scalar, wide, and panel widths
exceeding the matrix — for contiguous, Fortran-ordered and strided
inputs alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caqr import caqr_qr
from repro.runtime import ExecutionPolicy
from repro.verify.fuzz import PATHS, policy_for
from repro.verify.invariants import check_qr, expected_qr_shapes

SHAPES = [(0, 5), (5, 0), (0, 0), (1, 1), (1, 4), (3, 7), (2, 2)]


@pytest.fixture(params=list(PATHS))
def path_policy(request):
    """A factory building the fuzz path's policy with per-test geometry."""

    def make(**geometry):
        return policy_for(request.param, **geometry)

    return make


@pytest.mark.parametrize("m,n", SHAPES)
def test_shapes_and_dtypes_match_numpy(rng, path_policy, m, n):
    A = rng.standard_normal((m, n))
    Qn, Rn = np.linalg.qr(A, mode="reduced")
    Q, R = caqr_qr(A, policy=path_policy(panel_width=2, block_rows=4))
    assert Q.shape == Qn.shape and R.shape == Rn.shape
    assert Q.dtype == Qn.dtype and R.dtype == Rn.dtype
    check_qr(A, Q, R)


@pytest.mark.parametrize("m,n", SHAPES)
def test_float32_degenerate_shapes(rng, path_policy, m, n):
    A = rng.standard_normal((m, n)).astype(np.float32)
    Q, R = caqr_qr(A, policy=path_policy(panel_width=2, block_rows=4))
    eq, er = expected_qr_shapes(m, n)
    assert Q.shape == eq and R.shape == er
    assert Q.dtype == np.float32 and R.dtype == np.float32


def test_wide_matrix_with_lookahead(rng):
    """m < n through the task-graph executor (panels stop at min(m, n))."""
    A = rng.standard_normal((4, 19))
    for workers in (None, 3):
        policy = ExecutionPolicy(
            path="lookahead", panel_width=3, block_rows=4, workers=workers
        )
        Q, R = caqr_qr(A, policy=policy)
        assert Q.shape == (4, 4) and R.shape == (4, 19)
        check_qr(A, Q, R)


def test_panel_wider_than_matrix(rng, path_policy):
    A = rng.standard_normal((20, 3))
    Q, R = caqr_qr(A, policy=path_policy(panel_width=16, block_rows=8))
    assert Q.shape == (20, 3)
    check_qr(A, Q, R)


@pytest.mark.parametrize("order", ["F", "strided"])
def test_noncontiguous_layouts(rng, path_policy, order):
    A = rng.standard_normal((33, 7))
    if order == "F":
        V = np.asfortranarray(A)
    else:
        buf = np.zeros((67, 15))
        V = buf[0:66:2, 0:14:2]
        V[...] = A
    before = V.copy()
    Q, R = caqr_qr(V, policy=path_policy(panel_width=3, block_rows=8))
    check_qr(V, Q, R)
    # The entry point never mutates the caller's view.
    np.testing.assert_array_equal(V, before)


def test_empty_dimensions_give_empty_factors(path_policy):
    Q, R = caqr_qr(np.zeros((0, 5)), policy=path_policy())
    assert Q.shape == (0, 0) and R.shape == (0, 5)
    Q, R = caqr_qr(np.zeros((5, 0)), policy=path_policy())
    assert Q.shape == (5, 0) and R.shape == (0, 0)
