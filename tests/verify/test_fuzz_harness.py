"""The differential fuzz harness: deterministic, clean, and able to detect.

The quick grid must pass (that is the CI smoke), case generation must be
reproducible from the seed, and — crucially — the harness must actually
report a divergence when handed a broken path, or a green run means
nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify import fuzz
from repro.verify.fuzz import FuzzCase, generate_cases, run_case, run_grid


class TestGridIsClean:
    def test_quick_grid_all_paths(self):
        report = run_grid(seed=0, quick=True)
        assert report.ok, report.format()
        assert report.paths_run == len(fuzz.PATHS)
        assert report.cases_run >= 50

    def test_random_cases_sample(self):
        # A slice of the randomized portion (the full grid runs in CI).
        report = run_grid(seed=0, n_random=10, quick=False)
        assert report.ok, report.format()


class TestDeterminism:
    def test_same_seed_same_cases(self):
        assert generate_cases(seed=3) == generate_cases(seed=3)

    def test_different_seed_different_cases(self):
        assert generate_cases(seed=3) != generate_cases(seed=4)

    def test_case_build_is_deterministic(self):
        c = FuzzCase(17, 5, seed=9)
        np.testing.assert_array_equal(c.build(), c.build())

    def test_wide_matrix_coverage_guaranteed(self):
        cases = generate_cases(seed=0)
        assert any(c.m < c.n for c in cases)
        assert any(c.m == 0 or c.n == 0 for c in cases)
        assert any(c.kind == "huge" for c in cases)


class TestHarnessDetects:
    def test_repro_snippet_is_executable(self):
        case = FuzzCase(12, 4, panel_width=2, block_rows=4)
        ns: dict = {}
        exec(case.repro("batched"), ns)  # noqa: S102 - the point of the test
        assert ns["Q"].shape == (12, 4)

    def test_broken_path_is_reported(self, monkeypatch):
        """Feed the harness a path that corrupts R; it must diverge."""
        real = fuzz.caqr_qr

        def corrupted(A, **kw):
            Q, R = real(A, **kw)
            if kw["policy"].path == "seed" and R.size:
                R = R.copy()
                R[0, 0] *= 1.0 + 1e-3
            return Q, R

        monkeypatch.setattr(fuzz, "caqr_qr", corrupted)
        divs = run_case(FuzzCase(40, 8, panel_width=4, block_rows=8), paths=["seed", "batched"])
        assert divs, "harness failed to flag a corrupted factorization"
        assert any(d.check in ("vs-numpy", "pairwise", "invariants") for d in divs)

    def test_crashing_path_is_a_finding(self, monkeypatch):
        def boom(A, **kw):
            raise RuntimeError("injected")

        monkeypatch.setattr(fuzz, "caqr_qr", boom)
        divs = run_case(FuzzCase(16, 4), paths=["batched"])
        assert len(divs) == 1 and divs[0].check == "exception"
        assert "injected" in divs[0].detail

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown path"):
            run_grid(paths=["warp-drive"])


class TestCli:
    def test_verify_exits_zero_on_clean_grid(self, capsys):
        from repro.cli import main

        assert main(["verify", "--quick", "--paths", "batched"]) == 0
        assert "0 divergence" in capsys.readouterr().out
