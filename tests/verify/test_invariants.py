"""The reusable invariant checks themselves: they must catch corruption.

A checker that silently passes corrupted factors is worse than no
checker, so each class of corruption gets a test proving detection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify.invariants import (
    check_qr,
    expected_qr_shapes,
    launch_fingerprint,
    qr_invariants,
    qr_tolerance,
)


class TestCleanFactorizationsPass:
    @pytest.mark.parametrize("shape", [(30, 5), (5, 5), (3, 7), (1, 1)])
    def test_numpy_qr_passes(self, rng, shape):
        A = rng.standard_normal(shape)
        Q, R = np.linalg.qr(A, mode="reduced")
        check_qr(A, Q, R)  # must not raise

    def test_empty_matrices_pass(self):
        for shape in [(0, 5), (5, 0), (0, 0)]:
            A = np.zeros(shape)
            Q, R = np.linalg.qr(A, mode="reduced")
            check_qr(A, Q, R)

    def test_float32_held_to_float32_tolerance(self, rng):
        A = rng.standard_normal((64, 8)).astype(np.float32)
        Q, R = np.linalg.qr(A, mode="reduced")
        rep = qr_invariants(A, Q, R)
        assert rep.ok
        # The tolerance is float32's, not float64's: ~7 orders looser.
        assert rep.tol > 1e5 * qr_tolerance(64, 8, np.float64)


class TestCorruptionIsCaught:
    def test_non_orthogonal_q_flagged(self, rng):
        A = rng.standard_normal((30, 5))
        Q, R = np.linalg.qr(A, mode="reduced")
        Qbad = Q.copy()
        Qbad[:, 0] *= 1.001
        failures = qr_invariants(A, Qbad, R).failures()
        assert any("orthogonality" in f for f in failures)

    def test_wrong_reconstruction_flagged(self, rng):
        A = rng.standard_normal((30, 5))
        Q, R = np.linalg.qr(A, mode="reduced")
        Rbad = R.copy()
        Rbad[0, 1] += 0.01 * abs(R[0, 0])
        failures = qr_invariants(A, Q, Rbad).failures()
        assert any("residual" in f for f in failures)

    def test_lower_triangle_contamination_flagged(self, rng):
        A = rng.standard_normal((30, 5))
        Q, R = np.linalg.qr(A, mode="reduced")
        Rbad = R.copy()
        Rbad[3, 0] = 1e-8
        failures = qr_invariants(A, Q, Rbad).failures()
        assert any("triangular" in f for f in failures)

    def test_wrong_shapes_flagged(self, rng):
        A = rng.standard_normal((30, 5))
        Q, R = np.linalg.qr(A, mode="complete")  # complete, not reduced: 30x30 Q
        failures = qr_invariants(A, Q, R).failures()
        assert any("shape" in f for f in failures)

    def test_dtype_drift_flagged(self, rng):
        A = rng.standard_normal((30, 5)).astype(np.float32)
        Q, R = np.linalg.qr(A.astype(np.float64), mode="reduced")
        failures = qr_invariants(A, Q, R).failures()
        assert any("dtype" in f for f in failures)

    def test_nan_factors_flagged_despite_nan_metrics(self, rng):
        """Regression: NaN metrics compare False against every tolerance,
        so without explicit finiteness fields a NaN-filled Q passed."""
        A = rng.standard_normal((30, 5))
        Q, R = np.linalg.qr(A, mode="reduced")
        Qbad = np.full_like(Q, np.nan)
        rep = qr_invariants(A, Qbad, R)
        assert not rep.q_finite
        assert any("non-finite" in f for f in rep.failures())
        with pytest.raises(AssertionError, match="non-finite"):
            check_qr(A, Qbad, R)

    def test_inf_in_r_flagged(self, rng):
        A = rng.standard_normal((30, 5))
        Q, R = np.linalg.qr(A, mode="reduced")
        Rbad = R.copy()
        Rbad[0, 0] = np.inf
        assert not qr_invariants(A, Q, Rbad).r_finite


class TestShapeContract:
    @pytest.mark.parametrize(
        "m,n", [(0, 5), (5, 0), (0, 0), (1, 1), (3, 7), (7, 3), (30, 5)]
    )
    def test_matches_numpy_reduced(self, m, n):
        A = np.zeros((m, n))
        Q, R = np.linalg.qr(A, mode="reduced")
        eq, er = expected_qr_shapes(m, n)
        assert Q.shape == eq and R.shape == er


class TestLaunchFingerprint:
    def test_stable_across_calls(self):
        assert launch_fingerprint(4096, 128) == launch_fingerprint(4096, 128)

    def test_sensitive_to_shape(self):
        assert launch_fingerprint(4096, 128) != launch_fingerprint(4096, 64)
        assert launch_fingerprint(4096, 128) != launch_fingerprint(8192, 128)
