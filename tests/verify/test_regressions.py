"""Minimal repros of every bug the differential fuzz harness caught.

Each test pins one fixed bug with the smallest input that triggered it,
per the guard-rails PR policy: a divergence found by ``python -m repro
verify`` becomes a regression test here alongside its fix.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.caqr import caqr_qr
from repro.core.householder import house
from repro.smallblas.batched import batched_house
from repro.verify.invariants import check_qr, qr_invariants


class TestLookaheadZeroPanelDeadlock:
    """BUG: ``caqr(A, lookahead=True, workers>1)`` hung forever on inputs
    producing zero panels (0 rows, 0 columns): the thread pool waited on
    a completion event that no task would ever set.  Found by the fuzz
    grid's first case, ``FuzzCase(0, 5)`` on path ``lookahead_mt``."""

    @pytest.mark.parametrize("shape", [(0, 5), (5, 0), (0, 0)])
    def test_degenerate_threaded_lookahead_completes(self, shape):
        ex = ThreadPoolExecutor(1)
        fut = ex.submit(caqr_qr, np.zeros(shape), lookahead=True, workers=3)
        try:
            Q, R = fut.result(timeout=30)  # deadlock -> TimeoutError, not a hang
        finally:
            ex.shutdown(wait=False)
        Qn, Rn = np.linalg.qr(np.zeros(shape), mode="reduced")
        assert Q.shape == Qn.shape and R.shape == Rn.shape


class TestFloat32ReflectorOverflow:
    """BUG: ``house``/``batched_house`` squared the vector norm without
    rescaling, so float32 data at 1e30 overflowed (1e60 > float32 max)
    and the seed and structured paths returned NaN factors while the
    LAPACK-backed paths stayed finite.  Found by an extreme-scale sweep;
    fixed with slarfg-style rescaling; the fuzz grid's ``huge`` kind now
    covers it."""

    def _huge(self):
        rng = np.random.default_rng(7)
        return (1e30 * rng.standard_normal((90, 10))).astype(np.float32)

    @pytest.mark.parametrize(
        "kwargs",
        [{"batched": False}, {}, {"structured": True}, {"lookahead": True}],
        ids=["seed", "batched", "structured", "lookahead"],
    )
    def test_huge_float32_stays_finite(self, kwargs):
        A = self._huge()
        Q, R = caqr_qr(A, panel_width=4, block_rows=16, **kwargs)
        check_qr(A, Q, R)

    def test_house_rescales(self):
        v, tau, beta = house(np.array([3e30, 4e30], dtype=np.float32))
        assert np.isfinite(v).all() and np.isfinite(beta)
        assert abs(abs(beta) - 5e30) < 1e25  # ||x|| = 5e30

    def test_batched_house_rescales(self):
        X = np.array([[3e30, 4e30], [3.0, 4.0]], dtype=np.float32)
        V, tau, beta = batched_house(X)
        assert np.isfinite(V).all() and np.isfinite(beta).all()
        # The rescaled lane agrees with the in-range lane up to scale.
        assert abs(abs(beta[0]) - 5e30) < 1e25
        assert abs(abs(beta[1]) - 5.0) < 1e-5


class TestFloat32ReflectorUnderflow:
    """BUG (same root cause, opposite end): tails whose squares underflow
    to zero were misread as already-reduced vectors and got identity
    reflectors, silently skipping the elimination.  The fuzz grid's
    ``tiny`` kind now covers it."""

    def test_house_tiny_tail_not_identity(self):
        v, tau, beta = house(np.array([3e-30, 4e-30], dtype=np.float32))
        assert tau != 0.0  # identity reflector would leave x[1] uneliminated
        assert abs(abs(beta) - 5e-30) < 1e-35

    def test_tiny_float32_factors_accurately(self):
        rng = np.random.default_rng(7)
        A = (1e-30 * rng.standard_normal((60, 6))).astype(np.float32)
        for kwargs in ({"batched": False}, {}, {"structured": True}):
            Q, R = caqr_qr(A, panel_width=3, block_rows=12, **kwargs)
            check_qr(A, Q, R)


class TestComplexTruncation:
    """BUG: complex input was silently cast to its real part (only a
    ComplexWarning), producing a plausible Q/R of corrupted data.  Now a
    TypeError at the single normalization chokepoint; the full
    entry-point matrix lives in ``test_guards.py``."""

    def test_minimal_repro(self):
        A = np.array([[1 + 1j, 2], [3, 4 - 2j]])
        with pytest.raises(TypeError, match="complex"):
            caqr_qr(A)


class TestNanBlindInvariants:
    """BUG in the checker itself: NaN metrics compare False against every
    tolerance, so a NaN-filled Q passed the invariant suite.  Finiteness
    is now an explicit first-class check (details in
    ``test_invariants.py``)."""

    def test_minimal_repro(self):
        A = np.eye(3)
        rep = qr_invariants(A, np.full((3, 3), np.nan), np.eye(3))
        assert rep.failures()


class TestCholQR2GradedFallback:
    """The CholeskyQR2 acceptance contract on adversarial spectra: a
    graded matrix past the guard's condition limit (the column-
    equilibrated estimate crossing ``~1/(8 sqrt(eps))``, or the Gram
    matrix going numerically indefinite outright) stops the first
    Cholesky pass.  ``path="cholqr2"`` must surface that as a
    :class:`CholeskyBreakdownError`; ``path="auto"`` must transparently
    take the look-ahead tree and still deliver <1e-14 orthogonality.
    Found while building the fast-path fuzz coverage (graded float32
    cases); pinned here at the breakdown boundary in float64."""

    def _graded(self, m=120, n=20, cond=1e10, seed=3):
        # m < 16 n on purpose: the row-sampled precheck is skipped, so
        # the refusal happens *inside* the factorization (Cholesky
        # breakdown at stage "gram", or the "condest" guard right after
        # it), not at the cheap precheck.  Column equilibration absorbs
        # about two decades of the grading, hence cond=1e10 to pin the
        # breakdown region with margin.
        rng = np.random.default_rng(seed)
        U, _ = np.linalg.qr(rng.standard_normal((m, n)))
        V, _ = np.linalg.qr(rng.standard_normal((n, n)))
        return (U * np.logspace(0, -np.log10(cond), n)) @ V.T

    def test_explicit_cholqr2_raises_breakdown(self):
        from repro.core.cholesky_qr import CholeskyBreakdownError
        from repro.runtime import ExecutionPolicy

        with pytest.raises(CholeskyBreakdownError):
            caqr_qr(self._graded(), policy=ExecutionPolicy(path="cholqr2"))

    def test_auto_falls_back_mid_factorization(self):
        from repro.runtime import ExecutionPolicy, count_fallbacks

        A = self._graded()
        with count_fallbacks() as counter:
            Q, R = caqr_qr(A, policy=ExecutionPolicy(path="auto"))
        assert counter.fallbacks == 1
        assert counter.stages[0] in ("gram", "condest")
        assert np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1])) < 1e-14
        check_qr(A, Q, R)

    def test_tall_graded_bails_at_the_sampled_precheck(self):
        from repro.runtime import ExecutionPolicy, count_fallbacks

        # m >= 16 n: the ~1% row-sampled Gram estimate must reject the
        # matrix before any O(mn^2) work.
        A = self._graded(m=640, n=20, cond=1e10)
        with count_fallbacks() as counter:
            Q, R = caqr_qr(A, policy=ExecutionPolicy(path="auto"))
        assert counter.fallbacks == 1
        assert counter.stages == ("condest_sample",)
        assert np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1])) < 1e-14

    def test_auto_never_falls_back_on_gaussian(self):
        from repro.runtime import ExecutionPolicy, count_fallbacks

        A = np.random.default_rng(5).standard_normal((640, 20))
        with count_fallbacks() as counter:
            Q, R = caqr_qr(A, policy=ExecutionPolicy(path="auto"))
        assert counter.fallbacks == 0
        assert np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1])) < 1e-14
        check_qr(A, Q, R)
