"""Tests of the baseline library performance models."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BLAS2GPUQR,
    CULAQR,
    MAGMAQR,
    MKLQR,
    MKLSVD,
    BaselineResult,
    CPUPanelModel,
    gemm_rate_gflops,
)
from repro.experiments.table1 import PAPER_TABLE1
from repro.gpusim.device import C2050, GTX480, NEHALEM_8CORE


class TestBaselineResult:
    def test_gflops_uses_standard_count(self):
        r = BaselineResult(name="x", m=1000, n=100, seconds=1.0)
        assert r.gflops == pytest.approx(r.standard_flops / 1e9)

    def test_add_accumulates_breakdown(self):
        r = BaselineResult(name="x", m=10, n=10, seconds=0.0)
        r.add("a", 1.0)
        r.add("a", 0.5)
        r.add("b", 2.0)
        assert r.seconds == 3.5
        assert r.breakdown == {"a": 1.5, "b": 2.0}


class TestGemmRate:
    def test_ramps_with_inner_dim(self):
        assert gemm_rate_gflops(C2050, 16) < gemm_rate_gflops(C2050, 64) < gemm_rate_gflops(C2050, 512)

    def test_approaches_peak(self):
        assert gemm_rate_gflops(C2050, 4096) > 0.95 * C2050.gemm_peak_gflops

    def test_zero_dim(self):
        assert gemm_rate_gflops(C2050, 0) == 0.0


class TestCPUPanelModel:
    def test_traffic_formula(self):
        m = CPUPanelModel(NEHALEM_8CORE, col_sync_us=0.0)
        # DRAM-bound regime: time = 6 hp nb^2 / effective bw.
        hp, nb = 1_000_000, 64
        t = m.panel_seconds(hp, nb)
        bw = NEHALEM_8CORE.mem_bw_gbs * 1e9 * NEHALEM_8CORE.blas2_bw_eff
        assert t == pytest.approx(6 * hp * nb * nb / bw, rel=1e-6)

    def test_cache_residency_speeds_small_panels(self):
        cached = CPUPanelModel(NEHALEM_8CORE, cache_resident=True)
        streamed = CPUPanelModel(NEHALEM_8CORE, cache_resident=False)
        assert cached.panel_seconds(10_000, 64) < streamed.panel_seconds(10_000, 64)
        # Huge panels converge back to streaming bandwidth.
        big_c = cached.panel_seconds(5_000_000, 64)
        big_s = streamed.panel_seconds(5_000_000, 64)
        assert big_c == pytest.approx(big_s, rel=0.15)

    def test_zero_size(self):
        assert CPUPanelModel(NEHALEM_8CORE).panel_seconds(0, 64) == 0.0


class TestTable1Bands:
    """Each baseline within +-45% of its Table I column (models of
    closed-source libraries; the orderings are the hard assertions)."""

    @pytest.mark.parametrize("height", sorted(PAPER_TABLE1))
    def test_magma_band(self, height):
        model = MAGMAQR().simulate(height, 192).gflops
        paper = PAPER_TABLE1[height][1]
        assert 0.55 * paper <= model <= 1.45 * paper

    @pytest.mark.parametrize("height", sorted(PAPER_TABLE1))
    def test_cula_band(self, height):
        model = CULAQR().simulate(height, 192).gflops
        paper = PAPER_TABLE1[height][2]
        assert 0.5 * paper <= model <= 1.9 * paper

    @pytest.mark.parametrize("height", sorted(PAPER_TABLE1))
    def test_mkl_band(self, height):
        model = MKLQR().simulate(height, 192).gflops
        paper = PAPER_TABLE1[height][3]
        assert 0.55 * paper <= model <= 1.45 * paper

    def test_magma_rise_then_fall(self):
        """Table I's signature non-monotonicity (cache residency)."""
        g = {h: MAGMAQR().simulate(h, 192).gflops for h in (1_000, 50_000, 1_000_000)}
        assert g[50_000] > g[1_000]
        assert g[50_000] > g[1_000_000]

    def test_magma_beats_cula(self):
        for h in (10_000, 100_000, 1_000_000):
            assert MAGMAQR().simulate(h, 192).gflops > CULAQR().simulate(h, 192).gflops


class TestRegimes:
    def test_hybrids_shine_on_square_matrices(self):
        """For square matrices the gemm-rich update dominates and the
        hybrids reach hundreds of GFLOPS (Figure 9's right edge)."""
        g = MAGMAQR().simulate(8192, 8192).gflops
        assert g > 300.0

    def test_skinny_dominated_by_panel(self):
        r = MAGMAQR().simulate(1_000_000, 192)
        assert r.breakdown["panel+transfer"] > 0.8 * r.seconds

    def test_lookahead_helps(self):
        from repro.baselines.blocked_gpu import HybridBlockedQR

        with_la = HybridBlockedQR(name="la", nb=64, lookahead=True).simulate(8192, 4096)
        without = HybridBlockedQR(name="nola", nb=64, lookahead=False).simulate(8192, 4096)
        assert with_la.seconds < without.seconds

    def test_blas2_gpu_is_bandwidth_bound(self):
        q = BLAS2GPUQR(gpu=GTX480)
        r = q.simulate(110_592, 100)
        traffic = 3.0 * 4.0 * sum((110_592 - j) * (100 - j) for j in range(100))
        bw = GTX480.dram_bw_gbs * 1e9 * q.bw_eff
        assert r.breakdown["columns"] == pytest.approx(traffic / bw, rel=1e-6)

    def test_blas2_gpu_beats_mkl_svd_scale(self):
        assert BLAS2GPUQR().simulate(110_592, 100).seconds < MKLSVD().simulate(110_592, 100).seconds

    def test_mkl_svd_bidiag_dominates(self):
        r = MKLSVD().simulate(110_592, 100)
        assert r.breakdown["bidiagonalize"] > 0.5 * r.seconds

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            MKLQR().simulate(0, 10)
        with pytest.raises(ValueError):
            MAGMAQR().simulate(10, 0)
        with pytest.raises(ValueError):
            BLAS2GPUQR().simulate(-1, 5)
        with pytest.raises(ValueError):
            MKLSVD().simulate(10, 100)
