"""Per-tenant observability: serving spans and the tenant rollup."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.serving import QRServer

from .conftest import M, N


def _mats(count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((M, N)) for _ in range(count)]


def _serve(tenant_loads):
    """Run one capture: {tenant: [matrices]} through a fresh server."""
    with obs.capture() as session:
        with QRServer() as server:
            futures = [
                (server.submit(A, tenant=tenant))
                for tenant, mats in tenant_loads.items()
                for A in mats
            ]
            for f in futures:
                f.result(timeout=10.0)
    return session.trace


def test_every_completion_emits_a_tenant_tagged_span():
    trace = _serve({"acme": _mats(3, seed=1), "globex": _mats(2, seed=2)})
    spans = [s for s in trace.spans if s.name == "serving.request"]
    assert len(spans) == 5
    by_tenant = {}
    for s in spans:
        by_tenant.setdefault(s.args["tenant"], []).append(s)
        assert s.args["rung"] in ("coalesced", "shared-plan", "per-request")
        assert s.args["queue_ms"] >= 0.0
        assert (s.args["m"], s.args["n"]) == (M, N)
    assert sorted(by_tenant) == ["acme", "globex"]
    assert len(by_tenant["acme"]) == 3
    assert len(by_tenant["globex"]) == 2


def test_window_spans_cover_the_batch():
    trace = _serve({"acme": _mats(4)})
    windows = [s for s in trace.spans if s.name == "serving.window"]
    assert windows
    assert sum(s.args["requests"] for s in windows) == 4


def test_tenant_summary_rolls_up_by_tenant():
    trace = _serve({"acme": _mats(4, seed=3), "globex": _mats(1, seed=4)})
    rows = obs.tenant_summary(trace)
    assert [r["tenant"] for r in rows] == ["acme", "globex"]  # count desc
    acme, globex = rows
    assert acme["requests"] == 4
    assert globex["requests"] == 1
    assert acme["failed"] == globex["failed"] == 0
    assert sum(acme["rungs"].values()) == 4
    assert acme["queue_p50_ms"] >= 0.0
    assert acme["queue_p95_ms"] >= acme["queue_p50_ms"]


def test_tenant_summary_counts_failures():
    bad = _mats(1)[0].copy()
    bad[0, 0] = np.inf
    with obs.capture() as session:
        with QRServer() as server:
            ok = server.submit(_mats(1, seed=6)[0], tenant="acme")
            poisoned = server.submit(bad, tenant="acme")
            ok.result(timeout=10.0)
            try:
                poisoned.result(timeout=10.0)
            except ValueError:
                pass
    rows = obs.tenant_summary(session.trace)
    (acme,) = rows
    assert acme["requests"] == 2
    assert acme["failed"] == 1
    assert acme["rungs"].get("failed") == 1


def test_tenant_summary_empty_trace():
    with obs.capture() as session:
        pass
    assert obs.tenant_summary(session.trace) == []
