"""The coalescer's one non-negotiable contract: bit-identical results.

Every test here compares results that came back through the server —
forced onto a known rung via the gated worker — against the uncoalesced
reference (``QRDispatcher.qr`` or ``plan_qr(...).factor``) with
``np.array_equal``, i.e. bit-for-bit, not ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dispatch import QRDispatcher
from repro.runtime import ExecutionPolicy, plan_qr
from repro.serving import QRServer

from .conftest import M, N


def _mats(count, dtype=np.float64, m=M, n=N, seed=7):
    rng = np.random.default_rng(seed)
    return [
        np.asarray(rng.standard_normal((m, n)), dtype=dtype)
        for _ in range(count)
    ]


def _assert_identical(got, exp):
    assert got.engine == exp.engine
    assert got.Q.dtype == exp.Q.dtype
    assert np.array_equal(got.Q, exp.Q)
    assert np.array_equal(got.R, exp.R)


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_coalesced_rung_is_bit_identical(gated_server, dtype):
    """A whole window stacked through rung 1 equals per-request dispatch."""
    mats = _mats(8, dtype=dtype)
    reference = QRDispatcher()
    expected = [reference.qr(A) for A in mats]

    gated_server.hold()
    futures = [gated_server.server.submit(A) for A in mats]
    gated_server.release()
    results = [f.result(timeout=10.0) for f in futures]

    stats = gated_server.server.stats()
    assert stats.coalesced_requests == len(mats)
    assert stats.coalesced_batches == 1
    for got, exp in zip(results, expected):
        _assert_identical(got, exp)


def test_custom_batched_policy_stacks_and_matches_plan(gated_server):
    """A non-default batched geometry coalesces and matches its own plan."""
    policy = ExecutionPolicy(path="batched", panel_width=8, block_rows=32)
    mats = _mats(6)
    plan = plan_qr(M, N, policy=policy)
    expected = [plan.factor(A.copy()) for A in mats]

    gated_server.hold()
    futures = [
        gated_server.server.submit(A, policy=policy) for A in mats
    ]
    gated_server.release()
    results = [f.result(timeout=10.0) for f in futures]

    assert gated_server.server.stats().coalesced_requests == len(mats)
    for got, exp in zip(results, expected):
        assert np.array_equal(got.Q, exp.form_q())
        assert np.array_equal(got.R, exp.R)


def test_cholqr2_policy_stops_at_shared_plan(gated_server):
    """CholeskyQR2 groups must not stack (syrk order != stacked GEMM)."""
    policy = ExecutionPolicy(path="cholqr2")
    mats = _mats(5)
    plan = plan_qr(M, N, policy=policy)
    expected = [plan.factor(A.copy()) for A in mats]

    gated_server.hold()
    futures = [
        gated_server.server.submit(A, policy=policy) for A in mats
    ]
    gated_server.release()
    results = [f.result(timeout=10.0) for f in futures]

    stats = gated_server.server.stats()
    assert stats.coalesced_requests == 0
    assert stats.shared_plan_requests == len(mats)
    for got, exp in zip(results, expected):
        assert np.array_equal(got.Q, exp.form_q())
        assert np.array_equal(got.R, exp.R)


def test_coalesce_false_opts_out_without_changing_results(gated_server):
    """``coalesce=False`` is a routing knob, never a numerics one."""
    policy = ExecutionPolicy(path="batched", coalesce=False)
    mats = _mats(4)
    plan = plan_qr(M, N, policy=policy)
    expected = [plan.factor(A.copy()) for A in mats]

    gated_server.hold()
    futures = [
        gated_server.server.submit(A, policy=policy) for A in mats
    ]
    gated_server.release()
    results = [f.result(timeout=10.0) for f in futures]

    assert gated_server.server.stats().coalesced_requests == 0
    for got, exp in zip(results, expected):
        assert np.array_equal(got.Q, exp.form_q())
        assert np.array_equal(got.R, exp.R)


def test_mixed_dtypes_never_share_a_stack(gated_server):
    """f32 and f64 requests in one window group separately, both exact."""
    mats32 = _mats(4, dtype=np.float32, seed=1)
    mats64 = _mats(4, dtype=np.float64, seed=2)
    reference = QRDispatcher()
    exp32 = [reference.qr(A) for A in mats32]
    exp64 = [reference.qr(A) for A in mats64]

    gated_server.hold()
    futures = [
        gated_server.server.submit(A)
        for pair in zip(mats32, mats64)
        for A in pair
    ]
    gated_server.release()
    results = [f.result(timeout=10.0) for f in futures]

    stats = gated_server.server.stats()
    # One stacked batch per dtype: the group key includes dtype.str.
    assert stats.coalesced_requests == 8
    assert stats.coalesced_batches == 2
    for got, exp in zip(results[0::2], exp32):
        assert got.Q.dtype == np.float32
        _assert_identical(got, exp)
    for got, exp in zip(results[1::2], exp64):
        assert got.Q.dtype == np.float64
        _assert_identical(got, exp)


def test_nonfinite_request_fails_alone(gated_server):
    """One tenant's NaN poisons its own future, not the shared stack."""
    mats = _mats(6)
    bad = mats[2].copy()
    bad[3, 3] = np.nan
    reference = QRDispatcher()
    expected = [reference.qr(A) for A in mats]

    gated_server.hold()
    futures = []
    for i, A in enumerate(mats):
        futures.append(gated_server.server.submit(bad if i == 2 else A))
    gated_server.release()

    with pytest.raises(ValueError):
        futures[2].result(timeout=10.0)
    good = [f for i, f in enumerate(futures) if i != 2]
    exp_good = [e for i, e in enumerate(expected) if i != 2]
    for fut, exp in zip(good, exp_good):
        _assert_identical(fut.result(timeout=10.0), exp)
    stats = gated_server.server.stats()
    assert stats.failed == 1
    assert stats.coalesced_requests == 5


def test_qr_many_round_trip():
    """The convenience API on an ungated server: order and exactness."""
    mats = _mats(12, seed=9)
    reference = QRDispatcher()
    expected = [reference.qr(A) for A in mats]
    with QRServer() as server:
        results = server.qr_many(mats)
        stats = server.stats()
    assert stats.completed == len(mats)
    assert stats.failed == 0
    assert (
        stats.coalesced_requests
        + stats.shared_plan_requests
        + stats.per_request
        == len(mats)
    )
    for got, exp in zip(results, expected):
        _assert_identical(got, exp)
