"""CoalescingQueue semantics: admission bound, window, wakeup contract."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving import CoalescingQueue, QueueFullError, ServerClosedError


class TestAdmission:
    def test_depth_bound_rejects(self):
        q = CoalescingQueue(max_depth=2, overflow="reject")
        q.put("a")
        q.put("b")
        with pytest.raises(QueueFullError) as exc_info:
            q.put("c")
        assert exc_info.value.depth == 2
        assert len(q) == 2

    def test_depth_bound_sheds_oldest(self):
        q = CoalescingQueue(max_depth=2, overflow="shed")
        assert q.put("a") is None
        assert q.put("b") is None
        assert q.put("c") == "a"  # oldest out, newest admitted
        assert q.get_batch(4, 0.0) == ["b", "c"]

    def test_put_after_close_raises(self):
        q = CoalescingQueue()
        q.close()
        assert q.closed
        with pytest.raises(ServerClosedError):
            q.put("a")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CoalescingQueue(max_depth=0)
        with pytest.raises(ValueError):
            CoalescingQueue(overflow="drop-newest")


class TestWindow:
    def test_batch_size_bound(self):
        q = CoalescingQueue()
        for i in range(5):
            q.put(i)
        assert q.get_batch(3, 0.0) == [0, 1, 2]
        assert q.get_batch(3, 0.0) == [3, 4]

    def test_zero_wait_returns_what_is_there(self):
        q = CoalescingQueue()
        q.put("only")
        t0 = time.monotonic()
        assert q.get_batch(64, 0.0) == ["only"]
        assert time.monotonic() - t0 < 0.5

    def test_window_waits_out_max_wait_for_a_lone_item(self):
        q = CoalescingQueue()
        q.put("lone")
        t0 = time.monotonic()
        assert q.get_batch(64, 0.05) == ["lone"]
        assert time.monotonic() - t0 >= 0.04

    def test_full_batch_closes_the_window_early(self):
        """Producers filling the window wake the consumer at max_batch —
        the ``_wake_at`` threshold notify — well before the deadline."""
        q = CoalescingQueue()
        result = []

        def consume():
            result.append(q.get_batch(3, max_wait=5.0))

        t = threading.Thread(target=consume)
        t.start()
        t0 = time.monotonic()
        for i in range(3):
            time.sleep(0.01)
            q.put(i)
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert time.monotonic() - t0 < 2.0  # woke at fill, not the 5 s cap
        assert result == [[0, 1, 2]]
        assert q._wake_at is None  # threshold cleared on window exit

    def test_close_wakes_a_filling_window(self):
        q = CoalescingQueue()
        q.put("x")
        result = []

        def consume():
            result.append(q.get_batch(8, max_wait=5.0))
            result.append(q.get_batch(8, max_wait=5.0))

        t = threading.Thread(target=consume)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert result == [["x"], None]  # drained window, then shutdown

    def test_get_batch_blocks_until_first_item(self):
        q = CoalescingQueue()
        result = []

        def consume():
            result.append(q.get_batch(4, 0.0))

        t = threading.Thread(target=consume)
        t.start()
        time.sleep(0.05)
        assert result == []  # still parked: nothing offered yet
        q.put("late")
        t.join(timeout=10.0)
        assert result == [["late"]]


class TestDrain:
    def test_drain_empties_and_returns_in_order(self):
        q = CoalescingQueue()
        for i in range(4):
            q.put(i)
        assert q.drain() == [0, 1, 2, 3]
        assert len(q) == 0
        assert q.drain() == []
