"""Serving-test helpers: a deterministically blockable server.

Coalescing is timing-dependent by nature (the window closes on a clock),
so the tests that pin *which rung* a group takes make it deterministic:
a gate blocks the worker thread inside a plug request's ``qr`` call,
requests pile up behind it, and releasing the gate executes them in one
window.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.dispatch import QRDispatcher
from repro.serving import QRServer

# A shape the dispatcher routes to the CAQR engine and that is well
# under the coalescing element ceiling.
M, N = 96, 16
PLUG_SHAPE = (48, 8)  # distinct shape: the plug never joins a group


class GatedServer:
    """A ``QRServer`` whose worker can be held inside one plug request.

    ``hold()`` submits a plug matrix and returns once the worker thread
    is blocked executing it; every subsequent ``submit`` queues up.
    ``release()`` lets the worker finish the plug and drain the queue in
    one coalescing window.
    """

    def __init__(self, **server_kwargs):
        self.dispatcher = QRDispatcher()
        self.gate = threading.Event()
        self.started = threading.Event()
        inner_qr = self.dispatcher.qr
        gate, started = self.gate, self.started

        def gated_qr(A):
            if A.shape == PLUG_SHAPE:
                started.set()
                if not gate.wait(timeout=10.0):
                    raise RuntimeError("test gate never released")
            return inner_qr(A)

        self.dispatcher.qr = gated_qr
        self.server = QRServer(self.dispatcher, **server_kwargs)
        self._plug_future = None

    def hold(self):
        rng = np.random.default_rng(0)
        self._plug_future = self.server.submit(
            rng.standard_normal(PLUG_SHAPE)
        )
        assert self.started.wait(timeout=10.0), "worker never took the plug"

    def release(self):
        self.gate.set()
        if self._plug_future is not None:
            self._plug_future.result(timeout=10.0)

    def close(self):
        self.gate.set()
        self.server.close()


@pytest.fixture
def gated_server():
    gs = GatedServer()
    yield gs
    gs.close()
