"""Backpressure and lifecycle: typed, request-scoped, accounted for.

Overload must surface as :class:`QueueFullError` (reject at the
submitter, or shed through the oldest victim's future) and shutdown as
:class:`ServerClosedError` — never as a hang or a numerics error.  The
gated server makes the scenarios deterministic: the worker is held
inside a plug request, so queue depth is fully under test control.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import QueueFullError, ServerClosedError, ServingError

from .conftest import M, N, GatedServer


def _mat(seed=0):
    return np.random.default_rng(seed).standard_normal((M, N))


def test_reject_raises_at_the_submitter():
    gs = GatedServer(max_depth=2, overflow="reject")
    try:
        gs.hold()
        f1 = gs.server.submit(_mat(1))
        f2 = gs.server.submit(_mat(2))
        with pytest.raises(QueueFullError) as exc_info:
            gs.server.submit(_mat(3))
        assert exc_info.value.depth == 2
        assert exc_info.value.shed is False
        assert isinstance(exc_info.value, ServingError)
        gs.release()
        assert f1.result(timeout=10.0).R.shape == (N, N)
        assert f2.result(timeout=10.0).R.shape == (N, N)
        stats = gs.server.stats()
        assert stats.rejected == 1
        assert stats.failed == 0
    finally:
        gs.close()


def test_shed_fails_the_oldest_waiting_request():
    gs = GatedServer(max_depth=2, overflow="shed")
    try:
        gs.hold()
        victim = gs.server.submit(_mat(1))
        f2 = gs.server.submit(_mat(2))
        f3 = gs.server.submit(_mat(3))  # over depth: sheds `victim`
        with pytest.raises(QueueFullError) as exc_info:
            victim.result(timeout=10.0)
        assert exc_info.value.shed is True
        gs.release()
        assert f2.result(timeout=10.0).R.shape == (N, N)
        assert f3.result(timeout=10.0).R.shape == (N, N)
        stats = gs.server.stats()
        assert stats.shed == 1
        assert stats.failed == 1  # the victim
        assert stats.rejected == 0
    finally:
        gs.close()


def test_submit_after_close_raises_typed():
    gs = GatedServer()
    gs.close()
    with pytest.raises(ServerClosedError):
        gs.server.submit(_mat())
    assert gs.server.closed


def test_abortive_close_fails_pending_requests():
    """``close(wait=False)`` drains the queue into typed failures."""
    gs = GatedServer()
    gs.hold()
    f1 = gs.server.submit(_mat(1))
    f2 = gs.server.submit(_mat(2))
    # The worker is parked inside the plug; release it shortly after the
    # drain below has already emptied the queue.
    threading.Timer(0.2, gs.gate.set).start()
    gs.server.close(wait=False)
    for fut in (f1, f2):
        with pytest.raises(ServerClosedError):
            fut.result(timeout=10.0)
    stats = gs.server.stats()
    assert stats.failed >= 2
    # Drained requests still count as submitted: the ledger balances.
    assert stats.submitted == stats.completed + stats.failed


def test_graceful_close_drains_everything():
    gs = GatedServer()
    gs.hold()
    futures = [gs.server.submit(_mat(i)) for i in range(5)]
    gs.gate.set()
    gs.server.close()  # wait=True: everything admitted must complete
    for fut in futures:
        assert fut.result(timeout=10.0).R.shape == (N, N)
    stats = gs.server.stats()
    assert stats.completed == stats.submitted
    assert stats.failed == 0


def test_stats_ledger_balances_under_mixed_traffic():
    gs = GatedServer(max_depth=3, overflow="reject")
    try:
        gs.hold()
        futures = [gs.server.submit(_mat(i)) for i in range(3)]
        rejected = 0
        try:
            gs.server.submit(_mat(99))
        except QueueFullError:
            rejected = 1
        gs.release()
        for fut in futures:
            fut.result(timeout=10.0)
        stats = gs.server.stats()
        assert stats.rejected == rejected == 1
        # submitted counts only admitted requests (incl. the plug).
        assert stats.submitted == stats.completed + stats.failed
        assert (
            stats.coalesced_requests
            + stats.shared_plan_requests
            + stats.per_request
            == stats.completed + stats.failed - stats.shed
        )
    finally:
        gs.close()
