"""ServingPlan / stacked_qr: geometry coverage and the staging pool.

The stacked executor must reproduce the per-request batched path bit for
bit on every tree geometry the planner can emit — single block, ragged
tail, multi-level trees, multiple panels — because the server caches one
plan per shape and runs every tenant through it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import ExecutionPolicy, plan_qr
from repro.serving import ServingPlan, stacked_qr


def _policy(**kw):
    return ExecutionPolicy(path="batched", **kw)


def _reference(mats, m, n, policy, dtype=np.float64):
    plan = plan_qr(m, n, dtype=dtype, policy=policy)
    out = []
    for A in mats:
        f = plan.factor(A.copy())
        out.append((f.form_q(), f.R))
    return out


@pytest.mark.parametrize(
    "m,n,kw",
    [
        (64, 16, {}),                                   # single level-0 block
        (96, 16, {"block_rows": 32}),                   # clean multi-block tree
        (100, 16, {"block_rows": 32}),                  # ragged tail block
        (96, 32, {"panel_width": 16, "block_rows": 32}),  # multiple panels
        (200, 24, {"panel_width": 8, "block_rows": 48}),  # panels + ragged
    ],
)
def test_stacked_matches_per_request_bitwise(m, n, kw):
    policy = _policy(**kw)
    rng = np.random.default_rng(42)
    mats = [rng.standard_normal((m, n)) for _ in range(5)]
    expected = _reference(mats, m, n, policy)

    plan = ServingPlan(m, n, np.float64, policy)
    Q, R = stacked_qr(mats, plan)
    for i, (Qe, Re) in enumerate(expected):
        assert np.array_equal(Q[i], Qe)
        assert np.array_equal(R[i], Re)


def test_float32_stack_stays_float32_and_exact():
    policy = _policy(block_rows=32)
    rng = np.random.default_rng(5)
    mats = [
        np.asarray(rng.standard_normal((96, 16)), dtype=np.float32)
        for _ in range(4)
    ]
    expected = _reference(mats, 96, 16, policy, dtype=np.float32)
    plan = ServingPlan(96, 16, np.float32, policy)
    Q, R = stacked_qr(mats, plan)
    assert Q.dtype == R.dtype == np.float32
    for i, (Qe, Re) in enumerate(expected):
        assert np.array_equal(Q[i], Qe)
        assert np.array_equal(R[i], Re)


def test_plan_rejects_non_batched_paths():
    with pytest.raises(ValueError, match="batched"):
        ServingPlan(96, 16, np.float64, ExecutionPolicy(path="cholqr2"))


def test_staging_pool_grows_to_high_water_and_reuses():
    plan = ServingPlan(64, 16, np.float64, _policy())
    big = plan.staging(6)
    assert big.shape == (6, 64, 16)
    small = plan.staging(2)
    assert small.shape == (2, 64, 16)
    # The smaller request is a view of the pooled high-water buffer.
    assert np.shares_memory(small, big)
    bigger = plan.staging(9)
    assert bigger.shape == (9, 64, 16)


def test_repeated_factorizations_through_one_plan_are_stable():
    """Plan reuse (the server's steady state) must not drift results."""
    policy = _policy(block_rows=32)
    rng = np.random.default_rng(11)
    mats = [rng.standard_normal((96, 16)) for _ in range(3)]
    plan = ServingPlan(96, 16, np.float64, policy)
    Q1, R1 = stacked_qr(mats, plan)
    Q1, R1 = Q1.copy(), R1.copy()
    # Interleave a different batch to dirty the staging buffer.
    stacked_qr([rng.standard_normal((96, 16)) for _ in range(5)], plan)
    Q2, R2 = stacked_qr(mats, plan)
    assert np.array_equal(Q1, Q2)
    assert np.array_equal(R1, R2)
