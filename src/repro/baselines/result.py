"""Common result type for the baseline QR performance models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.householder import qr_flops

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """Modeled execution of one baseline QR factorization."""

    name: str
    m: int
    n: int
    seconds: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def standard_flops(self) -> float:
        return qr_flops(self.m, self.n)

    @property
    def gflops(self) -> float:
        """SGEQRF GFLOP/s — the paper's reporting convention."""
        if self.seconds <= 0:
            return 0.0
        return self.standard_flops / self.seconds / 1e9

    def add(self, phase: str, seconds: float) -> None:
        self.seconds += seconds
        self.breakdown[phase] = self.breakdown.get(phase, 0.0) + seconds
