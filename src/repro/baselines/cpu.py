"""Multicore CPU QR and SVD models — the "MKL" baselines.

Blocked Householder QR on a multicore CPU (LAPACK ``sgeqrf`` as shipped
in MKL 10.2): a BLAS2 panel factorization whose traffic re-reads the
trailing panel for every column, followed by a BLAS3 trailing update.
For tall-skinny matrices the panel phase is memory-bandwidth-bound and
dominates — precisely the effect that lets CAQR beat MKL by 12x
(Section V-D).

The model is event-based over panels: each phase contributes
``max(flop time, traffic time)`` plus threading-synchronization
overheads, using the :class:`~repro.gpusim.device.CPUSpec` parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.householder import qr_flops
from repro.gpusim.device import CPUSpec, NEHALEM_8CORE

from .result import BaselineResult

__all__ = ["CPUPanelModel", "MKLQR", "MKLSVD", "cpu_panel_time"]


@dataclass(frozen=True)
class CPUPanelModel:
    """BLAS2 panel factorization cost on a multicore CPU.

    For each of the panel's ``nb`` columns the trailing panel is read for
    the matrix-vector product and read+written for the rank-1 update:
    ``3 accesses x 4 bytes x hp x (nb - j)`` summed over columns gives
    ``6 hp nb^2`` bytes per panel.  Each column also pays two parallel-
    region synchronizations (matvec + rank-1).
    """

    cpu: CPUSpec
    col_sync_us: float = 20.0  # per-column thread-sync overhead (x2 calls)
    blas2_peak_fraction: float = 0.5  # flop-bound ceiling of BLAS2 code
    cache_resident: bool = False  # panel in a packed workspace that fits L3
    l3_bytes: float = 16 * 1024 * 1024  # dual-socket Nehalem: 2 x 8 MB
    l3_bw_gbs: float = 25.0  # effective BLAS2 bandwidth out of L3

    def effective_bw(self, working_set_bytes: float) -> float:
        """Bytes/s for the panel sweeps.

        A packed panel workspace that fits in L3 (the hybrid libraries
        copy the panel off the GPU into a contiguous buffer and sweep it
        nb times) reads at cache bandwidth; as the working set outgrows
        L3 the rate interpolates down to streaming DRAM bandwidth.  This
        is the mechanism behind the rise-then-fall of the MAGMA/CULA
        columns of Table I.
        """
        dram = self.cpu.mem_bw_gbs * 1e9 * self.cpu.blas2_bw_eff
        if not self.cache_resident:
            return dram
        cache = self.l3_bw_gbs * 1e9
        frac = min(1.0, self.l3_bytes / max(working_set_bytes, 1.0))
        return dram + (cache - dram) * frac

    def panel_seconds(self, hp: int, nb: int) -> float:
        if hp < 1 or nb < 1:
            return 0.0
        traffic = 6.0 * hp * nb * nb  # bytes (see class docstring)
        bw = self.effective_bw(hp * nb * 4.0)
        flops = 2.0 * hp * nb * nb
        t_mem = traffic / bw
        t_flop = flops / (self.cpu.peak_gflops * 1e9 * self.blas2_peak_fraction)
        return max(t_mem, t_flop) + nb * 2.0 * self.col_sync_us * 1e-6


def cpu_panel_time(hp: int, nb: int, cpu: CPUSpec = NEHALEM_8CORE) -> float:
    """Convenience wrapper used by the hybrid GPU baselines."""
    return CPUPanelModel(cpu).panel_seconds(hp, nb)


@dataclass(frozen=True)
class MKLQR:
    """Blocked Householder SGEQRF on the multicore CPU ("MKL, 8 cores")."""

    cpu: CPUSpec = NEHALEM_8CORE
    nb: int = 32  # MKL's inner panel width for QR
    col_sync_us: float = 35.0
    name: str = "MKL"

    def simulate(self, m: int, n: int) -> BaselineResult:
        if m < 1 or n < 1:
            raise ValueError("matrix dimensions must be positive")
        res = BaselineResult(name=self.name, m=m, n=n, seconds=0.0)
        # MKL factors in place (lda = m), without the packed cache-
        # resident workspace the hybrid libraries enjoy.
        panel = CPUPanelModel(self.cpu, col_sync_us=self.col_sync_us, cache_resident=False)
        gemm_rate = self.cpu.peak_gflops * 1e9 * self.cpu.gemm_eff
        k = min(m, n)
        for c0 in range(0, k, self.nb):
            nbp = min(self.nb, k - c0)
            hp = m - c0
            res.add("panel", panel.panel_seconds(hp, nbp))
            wt = n - (c0 + nbp)
            if wt > 0:
                flops = 4.0 * hp * nbp * wt
                # larfb is gemm-rich but streams the trailing matrix.
                traffic = 2.0 * 4.0 * hp * wt + 4.0 * hp * nbp
                t = max(flops / gemm_rate, traffic / (self.cpu.mem_bw_gbs * 1e9))
                res.add("update", t + self.cpu.thread_fork_us * 1e-6)
        return res


@dataclass(frozen=True)
class MKLSVD:
    """Multicore SGESVD/SGESDD model for the Robust PCA comparison.

    MKL's SVD of a tall-skinny matrix bidiagonalizes with BLAS2-heavy
    sweeps (~``4 m n^2`` flops of which half are memory-bound), then
    solves the small bidiagonal problem and back-transforms.  The paper
    observes it is "may not be optimized for the tall-skinny case"; the
    model reflects that with a bandwidth-bound bidiagonalization.
    """

    cpu: CPUSpec = NEHALEM_8CORE
    name: str = "MKL-SVD"

    def simulate(self, m: int, n: int, want_vectors: bool = True) -> BaselineResult:
        if m < n:
            raise ValueError("model expects a tall matrix")
        res = BaselineResult(name=self.name, m=m, n=n, seconds=0.0)
        bw = self.cpu.mem_bw_gbs * 1e9 * self.cpu.blas2_bw_eff
        # Golub-Kahan bidiagonalization: 4 m n^2 flops; every column/row
        # sweep re-streams the trailing matrix (BLAS2), ~8 m n^2 bytes.
        bidiag_traffic = 8.0 * m * n * n
        bidiag_flops = 4.0 * m * n * n
        t_bidiag = max(
            bidiag_traffic / bw,
            bidiag_flops / (self.cpu.peak_gflops * 1e9 * 0.5),
        )
        res.add("bidiagonalize", t_bidiag + 2 * n * self.cpu.thread_fork_us * 1e-6)
        # Bidiagonal SVD (implicit QL/QR iteration): O(n^2) per sweep on
        # the CPU, cheap relative to the bidiagonalization.
        res.add("bidiagonal_svd", 30.0 * n * n / (self.cpu.peak_gflops * 1e9 * 0.1))
        if want_vectors:
            # Back-transform U: apply the m x n Householder set (gemm-rich).
            flops = 4.0 * m * n * n
            res.add("form_u", flops / (self.cpu.peak_gflops * 1e9 * self.cpu.gemm_eff))
        return res


def mkl_qr_gflops(m: int, n: int, cpu: CPUSpec = NEHALEM_8CORE) -> float:
    """Convenience: modeled MKL SGEQRF GFLOP/s (standard flop count)."""
    return MKLQR(cpu=cpu).simulate(m, n).gflops
