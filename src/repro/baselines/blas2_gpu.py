"""Bandwidth-bound GPU QR tuned for tall-skinny matrices ("BLAS2 QR").

The middle row of Table II: "our BLAS2 QR decomposition that was
specifically designed and tuned for tall-skinny matrices" — a
column-by-column Householder factorization running entirely on the GPU
with fused matvec + rank-1 kernels.  Every column streams the trailing
matrix through DRAM (read for the matvec, read + write for the update),
so performance is capped by memory bandwidth no matter how good the
kernels are: the 3x gap to CAQR in the application study is exactly this
cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec, GTX480

from .result import BaselineResult

__all__ = ["BLAS2GPUQR"]


@dataclass(frozen=True)
class BLAS2GPUQR:
    """Fused column-wise Householder QR on the GPU (bandwidth-bound)."""

    gpu: DeviceSpec = GTX480
    bw_eff: float = 0.65  # achieved fraction of peak DRAM bandwidth
    launches_per_column: float = 2.0  # fused norm+matvec, then rank-1
    name: str = "BLAS2-GPU"

    def simulate(self, m: int, n: int) -> BaselineResult:
        if m < 1 or n < 1:
            raise ValueError("matrix dimensions must be positive")
        res = BaselineResult(name=self.name, m=m, n=n, seconds=0.0)
        bw = self.gpu.dram_bw_gbs * 1e9 * self.bw_eff
        k = min(m, n)
        traffic = 0.0
        flops = 0.0
        for j in range(k):
            hp = m - j
            wt = n - j
            traffic += 3.0 * hp * wt * 4.0  # matvec read + rank-1 read/write
            flops += 4.0 * hp * wt
        t_mem = traffic / bw
        t_flop = flops / (self.gpu.peak_gflops * 1e9 * 0.5)
        res.add("columns", max(t_mem, t_flop))
        res.add("launches", k * self.launches_per_column * self.gpu.kernel_launch_us * 1e-6)
        return res
