"""Hybrid blocked-Householder GPU QR models — the "MAGMA" and "CULA" baselines.

Both libraries implement the Figure-1 algorithm: a BLAS2 panel
factorization and a BLAS3 (gemm-based ``larfb``) trailing update on the
GPU.  The panel is factored on the *CPU* (the Volkov/MAGMA design the
paper describes in Section II-A / III-A), which costs PCIe transfers each
way plus a bandwidth-bound multicore panel factorization.

* ``MAGMAQR`` overlaps the next panel's CPU factorization with the
  current trailing-matrix update on the GPU (look-ahead), so each step
  costs ``max(cpu panel + transfers, gpu update)``.
* ``CULAQR`` is modeled without look-ahead and with a wider panel
  (its published square-matrix curve matches Volkov's blocked
  Householder, and Table I shows it trailing MAGMA by ~2x on skinny
  matrices, consistent with unoverlapped panels).

For tall-skinny matrices the trailing update is negligible and both
degenerate to the CPU panel + transfer path — which is exactly why the
paper's GPU-resident CAQR wins by an order of magnitude there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import (
    C2050,
    NEHALEM_8CORE,
    PCIE_GEN2,
    CPUSpec,
    DeviceSpec,
    PCIeLink,
)

from .cpu import CPUPanelModel
from .result import BaselineResult

__all__ = ["gemm_rate_gflops", "HybridBlockedQR", "MAGMAQR", "CULAQR"]


def gemm_rate_gflops(dev: DeviceSpec, inner_dim: int) -> float:
    """Effective SGEMM rate as a function of the inner (k) dimension.

    Rank-``k`` updates with small ``k`` cannot amortize the streaming of
    the trailing matrix; efficiency ramps as ``k / (k + k_half)`` toward
    the device's tuned-gemm peak (Volkov-style kernels).
    """
    if inner_dim < 1:
        return 0.0
    k_half = 24.0
    return dev.gemm_peak_gflops * inner_dim / (inner_dim + k_half)


@dataclass(frozen=True)
class HybridBlockedQR:
    """CPU-panel + GPU-update blocked Householder QR (Figure 1 / Sec III-A)."""

    name: str
    gpu: DeviceSpec = C2050
    cpu: CPUSpec = NEHALEM_8CORE
    link: PCIeLink = PCIE_GEN2
    nb: int = 64  # panel width
    lookahead: bool = True  # overlap CPU panel with GPU update

    def simulate(self, m: int, n: int) -> BaselineResult:
        if m < 1 or n < 1:
            raise ValueError("matrix dimensions must be positive")
        res = BaselineResult(name=self.name, m=m, n=n, seconds=0.0)
        # The panel is copied into a packed CPU workspace: cache-resident
        # sweeps when it fits L3 (see CPUPanelModel.effective_bw).
        panel_model = CPUPanelModel(self.cpu, cache_resident=True)
        k = min(m, n)
        pending_gpu = 0.0  # GPU update still running (look-ahead window)
        for c0 in range(0, k, self.nb):
            nbp = min(self.nb, k - c0)
            hp = m - c0
            panel_bytes = hp * nbp * 4.0
            cpu_side = (
                self.link.transfer_seconds(panel_bytes)  # panel to CPU
                + panel_model.panel_seconds(hp, nbp)
                + self.link.transfer_seconds(panel_bytes + nbp * nbp * 4.0)  # V,R,T back
            )
            if self.lookahead:
                # The CPU factors this panel while the GPU finishes the
                # previous trailing update.
                step = max(cpu_side, pending_gpu)
                res.add("panel+transfer" if cpu_side >= pending_gpu else "gpu_update", step)
            else:
                res.add("gpu_update", pending_gpu)
                res.add("panel+transfer", cpu_side)
            wt = n - (c0 + nbp)
            if wt > 0:
                flops = 4.0 * hp * nbp * wt
                rate = gemm_rate_gflops(self.gpu, nbp) * 1e9
                traffic = (2.0 * hp * wt + hp * nbp) * 4.0
                t_gemm = max(flops / rate, traffic / (self.gpu.dram_bw_gbs * 1e9))
                pending_gpu = t_gemm + 3.0 * self.gpu.kernel_launch_us * 1e-6
            else:
                pending_gpu = 0.0
        res.add("gpu_update", pending_gpu)  # drain the last update
        return res


def MAGMAQR(gpu: DeviceSpec = C2050, cpu: CPUSpec = NEHALEM_8CORE, link: PCIeLink = PCIE_GEN2) -> HybridBlockedQR:
    """MAGMA 1.0-style hybrid QR: nb=64 panels with look-ahead overlap."""
    return HybridBlockedQR(name="MAGMA", gpu=gpu, cpu=cpu, link=link, nb=64, lookahead=True)


def CULAQR(gpu: DeviceSpec = C2050, cpu: CPUSpec = NEHALEM_8CORE, link: PCIeLink = PCIE_GEN2) -> HybridBlockedQR:
    """CULA 2.x-style hybrid QR: wider panels, no look-ahead."""
    return HybridBlockedQR(name="CULA", gpu=gpu, cpu=cpu, link=link, nb=128, lookahead=False)
