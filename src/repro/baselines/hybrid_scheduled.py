"""Event-scheduled hybrid blocked QR — the Section III pipeline, explicit.

The closed-form :class:`~repro.baselines.blocked_gpu.HybridBlockedQR`
folds look-ahead into per-panel ``max()`` expressions.  This variant
builds the actual task graph — panel downloads, CPU factorizations,
uploads, the *split* GPU update (next-panel columns first, then the
rest) — and lets the :class:`~repro.gpusim.schedule.EventSchedule`
derive the makespan.  It exists both as the more faithful model and as a
cross-check: tests assert the two agree within a modeling tolerance
across the Table I sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import C2050, NEHALEM_8CORE, PCIE_GEN2, CPUSpec, DeviceSpec, PCIeLink
from repro.gpusim.schedule import EventSchedule

from .blocked_gpu import gemm_rate_gflops
from .cpu import CPUPanelModel
from .result import BaselineResult

__all__ = ["ScheduledHybridQR"]


@dataclass(frozen=True)
class ScheduledHybridQR:
    """Hybrid CPU-panel blocked QR as an explicit task pipeline."""

    name: str = "MAGMA-scheduled"
    gpu: DeviceSpec = C2050
    cpu: CPUSpec = NEHALEM_8CORE
    link: PCIeLink = PCIE_GEN2
    nb: int = 64
    lookahead: bool = True

    def build_schedule(self, m: int, n: int) -> EventSchedule:
        if m < 1 or n < 1:
            raise ValueError("matrix dimensions must be positive")
        sched = EventSchedule()
        panel_model = CPUPanelModel(self.cpu, cache_resident=True)
        k = min(m, n)
        starts = list(range(0, k, self.nb))
        prev_next_update: int | None = None  # update producing panel p's columns
        prev_rest_update: int | None = None
        for i, c0 in enumerate(starts):
            nbp = min(self.nb, k - c0)
            hp = m - c0
            panel_bytes = hp * nbp * 4.0
            # Download depends on this panel's columns being up to date.
            down_deps = [prev_next_update] if prev_next_update is not None else []
            if not self.lookahead and prev_rest_update is not None:
                down_deps.append(prev_rest_update)
            d = sched.add(f"down[{i}]", "link", self.link.transfer_seconds(panel_bytes), down_deps)
            c = sched.add(f"panel[{i}]", "cpu", panel_model.panel_seconds(hp, nbp), [d])
            u = sched.add(
                f"up[{i}]", "link", self.link.transfer_seconds(panel_bytes + nbp * nbp * 4.0), [c]
            )
            wt = n - (c0 + nbp)
            if wt > 0:
                rate = gemm_rate_gflops(self.gpu, nbp) * 1e9
                launch = 3.0 * self.gpu.kernel_launch_us * 1e-6
                next_w = min(self.nb, wt)  # the columns of the next panel
                t_next = 4.0 * hp * nbp * next_w / rate + launch
                deps = [u] if prev_rest_update is None else [u, prev_rest_update]
                un = sched.add(f"update_next[{i}]", "gpu", t_next, deps)
                rest_w = wt - next_w
                if rest_w > 0:
                    t_rest = 4.0 * hp * nbp * rest_w / rate + launch
                    ur = sched.add(f"update_rest[{i}]", "gpu", t_rest, [un])
                else:
                    ur = un
                prev_next_update, prev_rest_update = un, ur
            else:
                prev_next_update = prev_rest_update = None
        return sched

    def simulate(self, m: int, n: int) -> BaselineResult:
        sched = self.build_schedule(m, n)
        res = BaselineResult(name=self.name, m=m, n=n, seconds=sched.makespan)
        for r in ("cpu", "gpu", "link"):
            res.breakdown[r] = sched.resource_busy(r)
        return res
