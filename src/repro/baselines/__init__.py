"""Baseline QR implementations the paper compares against.

Performance models of MAGMA 1.0 (hybrid CPU-panel + GPU-gemm with
look-ahead), CULA 2.x (same family without overlap), multicore MKL
(blocked Householder on the CPU), the paper's own bandwidth-bound
tall-skinny BLAS2 GPU QR, and the multicore MKL SVD.  All report time
against the standard SGEQRF flop count, like the paper.
"""

from .blas2_gpu import BLAS2GPUQR
from .blocked_gpu import CULAQR, HybridBlockedQR, MAGMAQR, gemm_rate_gflops
from .hybrid_scheduled import ScheduledHybridQR
from .cpu import CPUPanelModel, MKLQR, MKLSVD, cpu_panel_time, mkl_qr_gflops
from .result import BaselineResult

__all__ = [
    "BLAS2GPUQR",
    "CULAQR",
    "HybridBlockedQR",
    "MAGMAQR",
    "gemm_rate_gflops",
    "ScheduledHybridQR",
    "CPUPanelModel",
    "MKLQR",
    "MKLSVD",
    "cpu_panel_time",
    "mkl_qr_gflops",
    "BaselineResult",
]
