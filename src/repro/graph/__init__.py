"""Launch-graph execution engine (dependency DAG over the Figure-4 stream).

The paper's host driver is a *serial* stream of kernel launches, but the
data dependencies between them are much looser: ``factor(k+1)`` only
needs the first trailing tile of panel ``k``, and trailing-update
launches for disjoint column tiles are mutually independent.  This
subsystem makes those dependencies explicit:

* :mod:`repro.graph.dag` — grows :func:`repro.caqr_gpu.enumerate_caqr_launches`
  into a DAG of :class:`LaunchNode` s (the serial enumeration is untouched,
  so launch-stream fingerprints and calibration cannot move).
* :mod:`repro.graph.overlap` — list-schedules the DAG onto S concurrent
  streams with :mod:`repro.gpusim.concurrent` and reports modeled overlap
  seconds next to serial seconds.
* :mod:`repro.graph.executor` — executes the same DAG numerically
  (look-ahead CAQR over the batched compact-WY kernels), serially in
  dependency order or on a thread pool.
"""

from .dag import LaunchGraph, LaunchNode, build_caqr_graph
from .executor import LookaheadCAQRFactors, caqr_lookahead, form_q_columns
from .overlap import OverlapResult, simulate_caqr_overlap

__all__ = [
    "LaunchGraph",
    "LaunchNode",
    "build_caqr_graph",
    "LookaheadCAQRFactors",
    "caqr_lookahead",
    "form_q_columns",
    "OverlapResult",
    "simulate_caqr_overlap",
]
