"""High-level task-graph engine shared by the paper's pipelines.

The paper's host driver is a *serial* stream of kernel launches, but the
data dependencies between them are much looser: ``factor(k+1)`` only
needs the first trailing tile of panel ``k``, and trailing-update
launches for disjoint column tiles are mutually independent.  This
subsystem makes those dependencies explicit — and, since PR 9, generic:

* :mod:`repro.graph.highlevel` — the dask-style :class:`TaskGraph` of
  named :class:`Layer` s with key-based cross-layer dependencies and
  per-layer annotations (stream hint, cost, device), plus the
  :data:`PRODUCERS` registry of everything that compiles to it (CAQR,
  the look-ahead numeric DAG, rSVD, RPCA/IALM, sharded R-reduction).
* :mod:`repro.graph.order` — the deterministic critical-path static
  ordering pass every consumer schedules by (à la ``dask/order.py``).
* :mod:`repro.graph.dag` — :func:`emit_caqr_layers` compiles
  :func:`repro.caqr_gpu.enumerate_caqr_launches` into panel/tree/
  trailing layers (the serial enumeration is untouched, so launch-stream
  fingerprints and calibration cannot move); :func:`caqr_launch_graph`
  lowers them to positional :class:`LaunchNode` s.
* :mod:`repro.graph.overlap` — list-schedules the task graph onto S
  concurrent streams with :mod:`repro.gpusim.concurrent` and reports
  modeled overlap seconds next to serial seconds.
* :mod:`repro.graph.executor` — executes task graphs numerically
  (:func:`run_task_graph`), serially in static order or on a
  dependency-counting thread pool, bit-identically either way; the
  look-ahead CAQR driver rides it.
"""

from .dag import (
    LaunchGraph,
    LaunchNode,
    build_caqr_graph,
    caqr_launch_graph,
    emit_caqr_layers,
)
from .executor import (
    LookaheadCAQRFactors,
    caqr_lookahead,
    emit_lookahead_layers,
    form_q_columns,
    run_task_graph,
)
from .highlevel import PRODUCERS, Layer, LayerAnnotations, Task, TaskGraph, producer, producers
from .order import critical_path_lengths, order_fingerprint, static_order
from .overlap import OverlapResult, simulate_caqr_overlap

__all__ = [
    "LaunchGraph",
    "LaunchNode",
    "build_caqr_graph",
    "caqr_launch_graph",
    "emit_caqr_layers",
    "LookaheadCAQRFactors",
    "caqr_lookahead",
    "emit_lookahead_layers",
    "form_q_columns",
    "run_task_graph",
    "PRODUCERS",
    "Layer",
    "LayerAnnotations",
    "Task",
    "TaskGraph",
    "producer",
    "producers",
    "critical_path_lengths",
    "order_fingerprint",
    "static_order",
    "OverlapResult",
    "simulate_caqr_overlap",
]
