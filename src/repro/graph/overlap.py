"""Modeled multi-stream overlap for CAQR — serial vs overlapped seconds.

Glue between :func:`repro.graph.dag.emit_caqr_layers` and
:func:`repro.gpusim.concurrent.list_schedule_graph`: emit the task
graph, schedule it on 1..S streams in its critical-path static order
(:mod:`repro.graph.order`), and report the overlapped runtime next to
the serial Figure-4 stream (which remains the default everywhere — this
is the opt-in path behind ``streams=``).

``overlap_seconds`` is the best makespan over all stream counts up to
``S`` *including the unsplit serial stream itself* (a driver holding one
stream simply issues the serial program).  That definition makes two
invariants structural rather than empirical: overlap can never exceed
serial, and adding streams can never hurt (greedy list scheduling alone
is not anomaly-free — Graham's bounds — but a scheduler that may leave
streams idle is).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caqr_gpu import simulate_caqr
from repro.gpusim.concurrent import ConcurrentTimeline, list_schedule_graph
from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .dag import LaunchGraph, emit_caqr_layers, launch_graph_from_tasks
from .highlevel import TaskGraph

__all__ = ["OverlapResult", "simulate_caqr_overlap"]


@dataclass
class OverlapResult:
    """Serial / overlapped / critical-path seconds for one CAQR shape."""

    m: int
    n: int
    config: KernelConfig
    device: DeviceSpec
    streams: int
    lookahead: bool
    graph: LaunchGraph
    task_graph: TaskGraph | None
    serial_seconds: float
    critical_path_seconds: float
    makespans: dict[int, float] = field(default_factory=dict)  # streams -> raw makespan
    timeline: ConcurrentTimeline | None = None  # schedule at best_streams

    @property
    def overlap_seconds(self) -> float:
        """Best runtime on up to ``streams`` streams (serial included)."""
        return min(self.serial_seconds, min(self.makespans.values(), default=float("inf")))

    @property
    def best_streams(self) -> int:
        best_s, best_t = 1, self.serial_seconds
        for s, t in sorted(self.makespans.items()):
            if t < best_t:
                best_s, best_t = s, t
        return best_s

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.overlap_seconds

    @property
    def hidden_seconds(self) -> float:
        """Serial time hidden by overlap (what the streams bought)."""
        return self.serial_seconds - self.overlap_seconds


def simulate_caqr_overlap(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    streams: int = 4,
    lookahead: bool = True,
) -> OverlapResult:
    """Model CAQR on ``streams`` concurrent streams.

    Emits the panel/tree/trailing task graph (look-ahead edges by
    default), list-schedules it in static order for every stream count
    ``2..streams``, and returns the result alongside the serial
    reference produced by the untouched
    :func:`~repro.caqr_gpu.simulate_caqr`.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    serial = simulate_caqr(m, n, cfg, dev).seconds
    tg = emit_caqr_layers(m, n, cfg, dev, lookahead=lookahead)
    graph = launch_graph_from_tasks(tg, cfg, lookahead)
    res = OverlapResult(
        m=m,
        n=n,
        config=cfg,
        device=dev,
        streams=streams,
        lookahead=lookahead,
        graph=graph,
        task_graph=tg,
        serial_seconds=serial,
        critical_path_seconds=graph.critical_path_seconds(dev),
    )
    best_tl: ConcurrentTimeline | None = None
    for s in range(2, streams + 1):
        tl = list_schedule_graph(tg, dev, streams=s)
        res.makespans[s] = tl.makespan
        if best_tl is None or tl.makespan < best_tl.makespan:
            best_tl = tl
    res.timeline = best_tl
    return res
