"""Modeled multi-stream overlap for CAQR — serial vs overlapped seconds.

Glue between :func:`repro.graph.dag.build_caqr_graph` and
:func:`repro.gpusim.concurrent.list_schedule`: build the dependency DAG,
schedule it on 1..S streams, and report the overlapped runtime next to
the serial Figure-4 stream (which remains the default everywhere — this
is the opt-in path behind ``streams=``).

``overlap_seconds`` is the best makespan over all stream counts up to
``S`` *including the unsplit serial stream itself* (a driver holding one
stream simply issues the serial program).  That definition makes two
invariants structural rather than empirical: overlap can never exceed
serial, and adding streams can never hurt (greedy list scheduling alone
is not anomaly-free — Graham's bounds — but a scheduler that may leave
streams idle is).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caqr_gpu import simulate_caqr
from repro.gpusim.concurrent import ConcurrentTimeline, list_schedule
from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .dag import LaunchGraph, build_caqr_graph

__all__ = ["OverlapResult", "simulate_caqr_overlap"]


@dataclass
class OverlapResult:
    """Serial / overlapped / critical-path seconds for one CAQR shape."""

    m: int
    n: int
    config: KernelConfig
    device: DeviceSpec
    streams: int
    lookahead: bool
    graph: LaunchGraph
    serial_seconds: float
    critical_path_seconds: float
    makespans: dict[int, float] = field(default_factory=dict)  # streams -> raw makespan
    timeline: ConcurrentTimeline | None = None  # schedule at best_streams

    @property
    def overlap_seconds(self) -> float:
        """Best runtime on up to ``streams`` streams (serial included)."""
        return min(self.serial_seconds, min(self.makespans.values(), default=float("inf")))

    @property
    def best_streams(self) -> int:
        best_s, best_t = 1, self.serial_seconds
        for s, t in sorted(self.makespans.items()):
            if t < best_t:
                best_s, best_t = s, t
        return best_s

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.overlap_seconds

    @property
    def hidden_seconds(self) -> float:
        """Serial time hidden by overlap (what the streams bought)."""
        return self.serial_seconds - self.overlap_seconds


def simulate_caqr_overlap(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    streams: int = 4,
    lookahead: bool = True,
) -> OverlapResult:
    """Model CAQR on ``streams`` concurrent streams.

    Builds the launch DAG (look-ahead edges by default), list-schedules
    it for every stream count ``2..streams``, and returns the result
    alongside the serial reference produced by the untouched
    :func:`~repro.caqr_gpu.simulate_caqr`.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    serial = simulate_caqr(m, n, cfg, dev).seconds
    graph = build_caqr_graph(m, n, cfg, dev, lookahead=lookahead)
    res = OverlapResult(
        m=m,
        n=n,
        config=cfg,
        device=dev,
        streams=streams,
        lookahead=lookahead,
        graph=graph,
        serial_seconds=serial,
        critical_path_seconds=graph.critical_path_seconds(dev),
    )
    best_tl: ConcurrentTimeline | None = None
    for s in range(2, streams + 1):
        tl = list_schedule(graph.nodes, dev, streams=s)
        res.makespans[s] = tl.makespan
        if best_tl is None or tl.makespan < best_tl.makespan:
            best_tl = tl
    res.timeline = best_tl
    return res
