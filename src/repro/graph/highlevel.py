"""The shared high-level task graph — named layers, key-based dependencies.

Demmel, Grigori, Hoemmen & Langou present TSQR/CAQR explicitly as a DAG
of block tasks scheduled for minimal communication, and the paper's
downstream workloads (RPCA iterations, randomized SVD, s-step Krylov
bases) are more DAGs of the same kernels.  This module is the dask-style
representation they all compile to:

* a :class:`Task` is one unit of work with a hashable ``key``, explicit
  ``deps`` (keys of tasks that must finish first), an optional zero-arg
  ``fn`` (the numeric payload; ``None`` for model-only graphs), an
  optional :class:`~repro.gpusim.launch.LaunchSpec` for the simulator,
  and an ordering ``cost``;
* a :class:`Layer` is a named group of tasks sharing annotations —
  a ``stream`` hint for the overlap simulator, an ordering ``priority``,
  a default ``cost`` model weight, and a ``device`` tag;
* a :class:`TaskGraph` is an ordered collection of layers.  Emission
  order (the order of :meth:`TaskGraph.add_task` calls) is recorded and
  is the deterministic tiebreak of the static ordering pass
  (:mod:`repro.graph.order`); it does **not** have to be topological.

Producers — the functions that compile a workload into a ``TaskGraph``
— are registered in :data:`PRODUCERS` so tooling (the layering lint,
the fingerprint gate, the docs producer table) has one ground truth.
Construction of ``TaskGraph``/``Layer`` anywhere outside ``repro.graph``
and the registered producer modules is a layering-lint violation: the
graph representation is shared infrastructure, and a privately built
graph would bypass the ordering pass, the fingerprint pins and the
per-task obs spans.

Graphs with numeric payloads run on the shared executor
(:func:`repro.graph.executor.run_task_graph`) — serially in static order
or on a dependency-counting thread pool, bit-identically either way.
Model-only graphs (every task carrying a ``spec``) schedule onto S
concurrent streams with
:func:`repro.gpusim.concurrent.list_schedule_graph`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Hashable, Iterator

__all__ = [
    "Key",
    "Task",
    "Layer",
    "LayerAnnotations",
    "TaskGraph",
    "PRODUCERS",
    "producer",
    "producers",
]

Key = Hashable


@dataclass(frozen=True)
class LayerAnnotations:
    """Per-layer scheduling hints shared by every task of the layer.

    Attributes:
        stream: preferred simulator stream (``None`` lets the list
            scheduler pick the earliest-available stream).
        priority: static-ordering boost — among ready tasks, higher
            priority always wins before critical-path length is even
            consulted (how the look-ahead edge is expressed: panel
            factors outrank trailing updates).
        cost: default ordering weight of the layer's tasks (overridden
            per task by :attr:`Task.cost`, or by the modeled duration
            when a task carries a ``spec``).
        device: informational device tag (e.g. ``"gpu0"``, ``"rank3"``);
            carried into fingerprints and obs spans, not interpreted by
            the scheduler.
    """

    stream: int | None = None
    priority: int = 0
    cost: float | None = None
    device: str | None = None

    def describe(self) -> str:
        parts = []
        if self.stream is not None:
            parts.append(f"stream={self.stream}")
        if self.priority:
            parts.append(f"priority={self.priority}")
        if self.cost is not None:
            parts.append(f"cost={self.cost:g}")
        if self.device is not None:
            parts.append(f"device={self.device}")
        return ", ".join(parts) or "-"


@dataclass(frozen=True)
class Task:
    """One schedulable unit of a :class:`TaskGraph`.

    Attributes:
        key: hashable, graph-unique identity; dependencies name keys.
        layer: owning layer's name.
        deps: keys that must complete before this task may run.
        seq: emission index (global across layers) — the deterministic
            tiebreak of the static ordering pass.
        fn: zero-argument numeric payload (``None`` in model-only
            graphs).  Data flows through closures / the producer's bind
            state, never through the runner: dependencies order tasks,
            they do not ferry values.
        spec: optional :class:`~repro.gpusim.launch.LaunchSpec` pricing
            this task in the modeled domain.
        cost: optional ordering weight (defaults to the layer's ``cost``
            annotation, then 1.0).
        info: small structural annotations (panel index, column range,
            rank...) — hashed into fingerprints, shown in obs spans.
    """

    key: Key
    layer: str
    deps: tuple[Key, ...] = ()
    seq: int = 0
    fn: Callable[[], Any] | None = field(default=None, compare=False)
    spec: Any | None = None
    cost: float | None = None
    info: tuple[tuple[str, Any], ...] = ()


@dataclass
class Layer:
    """A named group of tasks sharing :class:`LayerAnnotations`."""

    name: str
    annotations: LayerAnnotations = field(default_factory=LayerAnnotations)
    keys: list[Key] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.keys)


class TaskGraph:
    """Named layers of key-addressed tasks with cross-layer dependencies.

    Tasks are added through :meth:`add_task` (layers spring into
    existence on first use, or are pre-declared with annotations via
    :meth:`add_layer`).  Dependencies are *keys* and may point at tasks
    in any layer, emitted before or after — :meth:`validate` checks they
    all resolve and the graph is acyclic.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.layers: dict[str, Layer] = {}
        self._tasks: dict[Key, Task] = {}

    # -- construction --------------------------------------------------------

    def add_layer(
        self,
        name: str,
        *,
        stream: int | None = None,
        priority: int = 0,
        cost: float | None = None,
        device: str | None = None,
    ) -> str:
        """Declare a layer (idempotent only for annotation-free re-adds)."""
        if name in self.layers:
            raise ValueError(f"layer {name!r} already exists")
        self.layers[name] = Layer(
            name=name,
            annotations=LayerAnnotations(
                stream=stream, priority=priority, cost=cost, device=device
            ),
        )
        return name

    def add_task(
        self,
        layer: str,
        key: Key,
        fn: Callable[[], Any] | None = None,
        deps: tuple[Key, ...] | list[Key] = (),
        spec: Any | None = None,
        cost: float | None = None,
        **info: Any,
    ) -> Key:
        """Append one task to ``layer`` (created bare if undeclared).

        Duplicate dependency keys are collapsed preserving first
        occurrence — emitters may append overlapping dependency lists
        without bookkeeping.
        """
        if key in self._tasks:
            raise ValueError(f"duplicate task key {key!r}")
        if layer not in self.layers:
            self.add_layer(layer)
        task = Task(
            key=key,
            layer=layer,
            deps=tuple(dict.fromkeys(deps)),
            seq=len(self._tasks),
            fn=fn,
            spec=spec,
            cost=cost,
            info=tuple(sorted(info.items())),
        )
        self._tasks[key] = task
        self.layers[layer].keys.append(key)
        return key

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, key: Key) -> bool:
        return key in self._tasks

    def task(self, key: Key) -> Task:
        return self._tasks[key]

    def tasks(self) -> Iterator[Task]:
        """All tasks in emission order."""
        return iter(self._tasks.values())

    def annotations(self, task: Task) -> LayerAnnotations:
        return self.layers[task.layer].annotations

    def ordering_cost(self, task: Task) -> float:
        """The static-ordering weight of one task.

        Explicit ``cost`` wins; otherwise the layer's ``cost``
        annotation; otherwise every task weighs 1.0 (pure critical-path
        *length*).  Modeled durations are deliberately not consulted
        here — the ordering pass must stay dependency-pure so its output
        is pinnable without a device model.
        """
        if task.cost is not None:
            return task.cost
        ann = self.layers[task.layer].annotations
        return 1.0 if ann.cost is None else ann.cost

    def dependents(self) -> dict[Key, list[Key]]:
        """Reverse edges, in emission order per source."""
        out: dict[Key, list[Key]] = {k: [] for k in self._tasks}
        for t in self._tasks.values():
            for d in t.deps:
                out[d].append(t.key)
        return out

    # -- checks --------------------------------------------------------------

    def validate(self) -> None:
        """Check every dep resolves, keys are layer-consistent, no cycles."""
        for t in self._tasks.values():
            for d in t.deps:
                if d not in self._tasks:
                    raise ValueError(f"task {t.key!r} depends on unknown key {d!r}")
                if d == t.key:
                    raise ValueError(f"task {t.key!r} depends on itself")
        # Kahn pass: anything left has a cycle through it.
        indeg = {k: len(t.deps) for k, t in self._tasks.items()}
        ready = [k for k, d in indeg.items() if d == 0]
        dependents = self.dependents()
        seen = 0
        while ready:
            k = ready.pop()
            seen += 1
            for j in dependents[k]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    ready.append(j)
        if seen != len(self._tasks):
            cyclic = sorted(
                (repr(k) for k, d in indeg.items() if d > 0), key=str
            )[:4]
            raise ValueError(f"dependency cycle through {', '.join(cyclic)}")

    # -- identity ------------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 (truncated) of the graph *structure*.

        Hashes layer names + annotations and every task's key, layer,
        deps, spec and info — never the ``fn`` payloads, so a graph
        built with or without numeric bindings fingerprints identically
        (which is what lets the CI gate pin pipeline graphs as pure
        shape arithmetic).
        """
        h = hashlib.sha256()
        h.update(self.name.encode())
        for layer in self.layers.values():
            h.update(repr((layer.name, layer.annotations)).encode())
        for t in self._tasks.values():
            h.update(repr((t.key, t.layer, t.deps, t.spec, t.cost, t.info)).encode())
        return h.hexdigest()[:16]

    def describe(self) -> str:
        """One line per layer: name, task count, annotations."""
        lines = [f"task graph {self.name!r}: {len(self)} task(s), {len(self.layers)} layer(s)"]
        for layer in self.layers.values():
            lines.append(
                f"  {layer.name:<16} {len(layer):>5} task(s)  "
                f"[{layer.annotations.describe()}]"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Producer registry ----------------------------------------------------------
# ---------------------------------------------------------------------------

#: The registered graph producers: name -> "module:function".  These are
#: the only modules (besides ``repro.graph`` itself) allowed to construct
#: ``TaskGraph``/``Layer`` — ``tools/lint_layering.py`` enforces the
#: fence, and ``tests/runtime/test_layering_lint.py`` checks this table
#: and the lint's allowlist agree.
PRODUCERS: dict[str, str] = {
    "caqr": "repro.graph.dag:emit_caqr_layers",
    "lookahead": "repro.graph.executor:emit_lookahead_layers",
    "rsvd": "repro.core.randomized_svd:emit_rsvd_layers",
    "rpca_ialm": "repro.rpca.graphs:emit_ialm_layers",
    "sharded_reduction": "repro.distributed.sharded:emit_sharded_layers",
    "streaming": "repro.streaming.graphs:emit_streaming_layers",
}


def producer(name: str) -> Callable[..., TaskGraph]:
    """Resolve one registered producer to its emit function."""
    try:
        target = PRODUCERS[name]
    except KeyError:
        raise KeyError(
            f"unknown graph producer {name!r}; registered: {tuple(PRODUCERS)}"
        ) from None
    module, _, func = target.partition(":")
    return getattr(import_module(module), func)


def producers() -> dict[str, Callable[..., TaskGraph]]:
    """All registered producers, resolved (imports the owning modules)."""
    return {name: producer(name) for name in PRODUCERS}
