"""The CAQR launch stream as task-graph layers.

:func:`repro.caqr_gpu.enumerate_caqr_launches` yields the Figure-4 host
stream in serial order; :func:`emit_caqr_layers` compiles the same
kernels into a :class:`~repro.graph.highlevel.TaskGraph` of three named
layers carrying their *data* dependencies:

* ``panel`` — the optional transpose preprocess plus the level-0 block
  Householder factorization of each panel (highest ordering priority:
  this is the look-ahead edge in layer-annotation form);
* ``tree`` — the R-reduction tree levels
  (``factor -> factor_tree(L0) -> factor_tree(L1) -> ...``: each level
  eliminates the previous level's Rs);
* ``trailing`` — the Qᵀ applications: ``apply_qt_h`` needs the panel's
  level-0 factors; each ``apply_qt_tree`` level needs its tree factors
  plus the previous update level *on the same columns*.  Across panels,
  a launch touching columns ``[a, b)`` depends on the previous panel's
  trailing updates that wrote any of those columns.

The one structural change versus the serial stream is that each trailing
update is split into a *first-tile* launch (the columns of the next
panel) and a *rest* launch covering the remaining tiles.  Splitting
preserves the total block count and the per-block cost, but exposes the
look-ahead edge: ``factor(k+1)`` intersects only the first tile, so the
panel critical path can run ahead while the wide rest of the trailing
matrix is still updating.  With ``lookahead=False`` the next panel
instead depends on *every* update of the previous panel — the serial
driver's barrier, in graph form.

:func:`caqr_launch_graph` lowers the emitted layers to the positional
:class:`LaunchGraph` the overlap simulator and structural tests consume;
:func:`build_caqr_graph` is the deprecated pre-layer spelling of the
same call.  The serial enumeration itself is untouched — fingerprints
pinned in ``tests/data/fingerprints.json`` hash that stream, and a
structural test checks the graph merges back into it node for node.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

from repro.core.tree import build_tree
from repro.core.tsqr import row_blocks
from repro.gpusim.device import C2050, DeviceSpec
from repro.gpusim.launch import LaunchSpec, time_launch
from repro.graph.highlevel import TaskGraph
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig
from repro.kernels.costs import (
    apply_qt_h_split_launches,
    apply_qt_tree_split_launches,
    factor_launch,
    factor_tree_launch,
    transpose_launch,
)

__all__ = [
    "LaunchNode",
    "LaunchGraph",
    "emit_caqr_layers",
    "caqr_launch_graph",
    "launch_graph_from_tasks",
    "build_caqr_graph",
]


@dataclass(frozen=True)
class LaunchNode:
    """One kernel launch with its explicit data dependencies.

    Attributes:
        id: position in program order (a valid topological order).
        spec: the unchanged :class:`~repro.gpusim.launch.LaunchSpec`.
        deps: ids of launches that must finish first (all ``< id``).
        panel: panel index the launch belongs to.
        level: tree level for ``factor_tree``/``apply_qt_tree``, else -1.
        part: ``"t0"`` / ``"rest"`` for split trailing updates, else "".
        cols: half-open column interval the launch reads+writes —
            the panel's columns for factor-side kernels, the updated
            trailing columns for apply-side kernels.
    """

    id: int
    spec: LaunchSpec
    deps: tuple[int, ...]
    panel: int
    level: int = -1
    part: str = ""
    cols: tuple[int, int] = (0, 0)

    @property
    def kernel(self) -> str:
        return self.spec.kernel


@dataclass
class LaunchGraph:
    """A CAQR launch DAG in program order."""

    m: int
    n: int
    config: KernelConfig
    lookahead: bool
    nodes: list[LaunchNode] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.nodes)

    def validate(self) -> None:
        """Check ids are positional and every edge points backwards."""
        for pos, node in enumerate(self.nodes):
            if node.id != pos:
                raise ValueError(f"node at position {pos} has id {node.id}")
            for d in node.deps:
                if not 0 <= d < pos:
                    raise ValueError(f"node {pos} depends on {d} (not earlier)")
            if len(set(node.deps)) != len(node.deps):
                raise ValueError(f"node {pos} has duplicate deps")

    def durations(self, dev: DeviceSpec = C2050) -> list[float]:
        """Modeled seconds of each launch under the roofline+wave model."""
        return [time_launch(node.spec, dev).seconds for node in self.nodes]

    def serial_seconds(self, dev: DeviceSpec = C2050) -> float:
        """Sum of the *split* launch durations (>= the unsplit serial
        stream: splitting pays one extra launch overhead per update)."""
        return sum(self.durations(dev))

    def critical_path_seconds(self, dev: DeviceSpec = C2050) -> float:
        """Longest dependency chain — the overlap lower bound (no
        schedule on any number of streams can beat it)."""
        dur = self.durations(dev)
        finish = [0.0] * len(self.nodes)
        for node in self.nodes:
            start = max((finish[d] for d in node.deps), default=0.0)
            finish[node.id] = start + dur[node.id]
        return max(finish, default=0.0)


def _tile_width(wt: int, bh: int, cfg: KernelConfig, dev: DeviceSpec) -> int:
    # Deferred: caqr_gpu imports kernels/gpusim, and this module is below
    # it in the layering; the tile-width policy must be *shared* (the
    # split launches must tile exactly like the serial enumeration).
    from repro.caqr_gpu import _tile_width as tw

    return tw(wt, bh, cfg, dev)


def emit_caqr_layers(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    lookahead: bool = True,
) -> TaskGraph:
    """Compile one CAQR factorization into panel/tree/trailing layers.

    Tasks are emitted in the serial program order (so emission order is
    already a topological order, and the positional lowering in
    :func:`launch_graph_from_tasks` reproduces the pre-layer node ids
    bit for bit).  Keys are structured tuples::

        ("transpose", p)            optional panel preprocess
        ("factor", p)               level-0 panel factorization
        ("factor_tree", p, lvl)     tree reduction level
        ("apply_h", p, part)        split level-0 trailing update
        ("apply_tree", p, lvl, part)  split tree-level trailing update

    Every task carries its :class:`~repro.gpusim.launch.LaunchSpec`, so
    the emitted graph is model-complete: it can be lowered to a
    :class:`LaunchGraph`, list-scheduled onto streams, or statically
    ordered, without re-deriving anything.
    """
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    tg = TaskGraph(name=f"caqr[{m}x{n}]{'' if lookahead else '/barrier'}")
    # No priority annotations: the panel/tree chain already heads the
    # longest dependency chains, so the critical-path term of the static
    # order advances it first on its own — a hard layer priority would
    # also starve the wide trailing launches that must issue early for
    # the stream model to hide their overheads.
    tg.add_layer("panel")
    tg.add_layer("tree")
    tg.add_layer("trailing")

    k = min(m, n)
    pw = cfg.panel_width

    # Trailing-update tasks of the previous panel: (key, (col_lo, col_hi)).
    prev_updates: list[tuple[tuple, tuple[int, int]]] = []

    for panel, c0 in enumerate(range(0, k, pw)):
        pw_p = min(pw, k - c0)
        r0 = c0
        hp = m - r0
        bh = max(cfg.block_rows, pw_p)
        nb0 = len(row_blocks(hp, bh))
        tree = build_tree(nb0, cfg.tree_shape)
        arities = tree.level_arities()
        tag = f"panel{panel}"

        def data_deps(lo: int, hi: int) -> list[tuple]:
            """Previous-panel updates this column interval must wait for."""
            if not lookahead:
                return [key for key, _ in prev_updates]
            return [key for key, (a, b) in prev_updates if a < hi and lo < b]

        panel_cols = (c0, c0 + pw_p)
        chain: list[tuple] = data_deps(*panel_cols)
        if cfg.transpose_preprocess and cfg.strategy == "regfile_transpose":
            t_key = tg.add_task(
                "panel",
                ("transpose", panel),
                deps=chain,
                spec=transpose_launch(hp, pw_p, cfg, dev, tag=tag),
                panel=panel,
                cols=panel_cols,
            )
            chain = [t_key]
        f_key = tg.add_task(
            "panel",
            ("factor", panel),
            deps=chain,
            spec=factor_launch(nb0, bh, pw_p, cfg, dev, tag=tag),
            panel=panel,
            cols=panel_cols,
        )
        ft_keys: list[tuple] = []
        prev = f_key
        for lvl, level in enumerate(tree.levels):
            prev = tg.add_task(
                "tree",
                ("factor_tree", panel, lvl),
                deps=[prev],
                spec=factor_tree_launch(
                    len(level), arities[lvl], pw_p, cfg, dev, tag=f"{tag}/L{lvl}"
                ),
                panel=panel,
                level=lvl,
                cols=panel_cols,
            )
            ft_keys.append(prev)

        updates: list[tuple[tuple, tuple[int, int]]] = []
        wt = n - (c0 + pw_p)
        if wt > 0:
            tile_w = _tile_width(wt, bh, cfg, dev)
            tiles = math.ceil(wt / tile_w)
            t0_cols = (c0 + pw_p, min(c0 + pw_p + tile_w, n))
            rest_cols = (t0_cols[1], n)
            h_first, h_rest = apply_qt_h_split_launches(
                nb0, bh, pw_p, tile_w, tiles, cfg, dev, tag=tag
            )
            parts = [("t0", h_first, t0_cols)]
            if h_rest is not None:
                parts.append(("rest", h_rest, rest_cols))
            # chains[part] tracks the latest update on that column slice.
            chains: dict[str, tuple] = {}
            for part, spec, cols in parts:
                key = tg.add_task(
                    "trailing",
                    ("apply_h", panel, part),
                    deps=[f_key] + data_deps(*cols),
                    spec=spec,
                    panel=panel,
                    part=part,
                    cols=cols,
                )
                chains[part] = key
                updates.append((key, cols))
            for lvl, level in enumerate(tree.levels):
                t_first, t_rest = apply_qt_tree_split_launches(
                    len(level), arities[lvl], pw_p, tile_w, tiles, cfg, dev, tag=f"{tag}/L{lvl}"
                )
                lvl_parts = [("t0", t_first, t0_cols)]
                if t_rest is not None:
                    lvl_parts.append(("rest", t_rest, rest_cols))
                for part, spec, cols in lvl_parts:
                    key = tg.add_task(
                        "trailing",
                        ("apply_tree", panel, lvl, part),
                        deps=[ft_keys[lvl], chains[part]],
                        spec=spec,
                        panel=panel,
                        level=lvl,
                        part=part,
                        cols=cols,
                    )
                    chains[part] = key
                    updates.append((key, cols))
        prev_updates = updates

    tg.validate()
    return tg


def launch_graph_from_tasks(tg: TaskGraph, cfg: KernelConfig, lookahead: bool) -> LaunchGraph:
    """Lower an emitted CAQR :class:`TaskGraph` to positional launch nodes.

    Keys become emission-order ids; the ``panel`` / ``level`` / ``part``
    / ``cols`` annotations each task carries in its ``info`` become the
    node fields — the result is bit-identical to the pre-layer builder.
    """
    # The emitter stamps the shape into the graph name; parse it back
    # rather than threading (m, n) through a second channel.
    shape = tg.name.split("[", 1)[1].split("]", 1)[0]
    m, n = (int(v) for v in shape.split("x"))
    graph = LaunchGraph(m=m, n=n, config=cfg, lookahead=lookahead)
    ids: dict = {}
    for t in tg.tasks():
        if t.spec is None:
            raise ValueError(f"task {t.key!r} has no launch spec; cannot lower")
        info = dict(t.info)
        nid = len(graph.nodes)
        ids[t.key] = nid
        graph.nodes.append(
            LaunchNode(
                id=nid,
                spec=t.spec,
                deps=tuple(ids[d] for d in t.deps),
                panel=info["panel"],
                level=info.get("level", -1),
                part=info.get("part", ""),
                cols=info["cols"],
            )
        )
    graph.validate()
    return graph


def caqr_launch_graph(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    lookahead: bool = True,
) -> LaunchGraph:
    """Build the dependency DAG of a CAQR factorization's launches.

    Emits the panel/tree/trailing layers and lowers them to positional
    :class:`LaunchNode` s; ``nodes`` is the serial program order (a
    valid topological order), with trailing updates split into
    first-tile / rest pairs as described in the module docstring.
    """
    return launch_graph_from_tasks(
        emit_caqr_layers(m, n, cfg, dev, lookahead=lookahead), cfg, lookahead
    )


def build_caqr_graph(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    lookahead: bool = True,
) -> LaunchGraph:
    """Deprecated pre-layer spelling of :func:`caqr_launch_graph`."""
    warnings.warn(
        "build_caqr_graph is deprecated; use caqr_launch_graph (positional "
        "launch DAG) or emit_caqr_layers (TaskGraph) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return caqr_launch_graph(m, n, cfg, dev, lookahead=lookahead)
