"""The CAQR launch stream as a dependency DAG.

:func:`repro.caqr_gpu.enumerate_caqr_launches` yields the Figure-4 host
stream in serial order; :func:`build_caqr_graph` produces the same
kernels as nodes carrying their *data* dependencies:

* ``factor -> factor_tree(L0) -> factor_tree(L1) -> ...`` within a panel
  (each tree level eliminates the previous level's Rs);
* ``apply_qt_h`` needs the panel's level-0 factors; each
  ``apply_qt_tree`` level needs its tree factors plus the previous
  update level *on the same columns*;
* across panels, a launch touching columns ``[a, b)`` depends on the
  previous panel's trailing updates that wrote any of those columns.

The one structural change versus the serial stream is that each trailing
update is split into a *first-tile* launch (the columns of the next
panel) and a *rest* launch covering the remaining tiles.  Splitting
preserves the total block count and the per-block cost, but exposes the
look-ahead edge: ``factor(k+1)`` intersects only the first tile, so the
panel critical path can run ahead while the wide rest of the trailing
matrix is still updating.  With ``lookahead=False`` the next panel
instead depends on *every* update of the previous panel — the serial
driver's barrier, in graph form.

The serial enumeration itself is untouched — fingerprints pinned in
``BENCH_caqr.json`` hash that stream, and a structural test checks the
graph merges back into it node for node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.tree import build_tree
from repro.core.tsqr import row_blocks
from repro.gpusim.device import C2050, DeviceSpec
from repro.gpusim.launch import LaunchSpec, time_launch
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig
from repro.kernels.costs import (
    apply_qt_h_split_launches,
    apply_qt_tree_split_launches,
    factor_launch,
    factor_tree_launch,
    transpose_launch,
)

__all__ = ["LaunchNode", "LaunchGraph", "build_caqr_graph"]


@dataclass(frozen=True)
class LaunchNode:
    """One kernel launch with its explicit data dependencies.

    Attributes:
        id: position in program order (a valid topological order).
        spec: the unchanged :class:`~repro.gpusim.launch.LaunchSpec`.
        deps: ids of launches that must finish first (all ``< id``).
        panel: panel index the launch belongs to.
        level: tree level for ``factor_tree``/``apply_qt_tree``, else -1.
        part: ``"t0"`` / ``"rest"`` for split trailing updates, else "".
        cols: half-open column interval the launch reads+writes —
            the panel's columns for factor-side kernels, the updated
            trailing columns for apply-side kernels.
    """

    id: int
    spec: LaunchSpec
    deps: tuple[int, ...]
    panel: int
    level: int = -1
    part: str = ""
    cols: tuple[int, int] = (0, 0)

    @property
    def kernel(self) -> str:
        return self.spec.kernel


@dataclass
class LaunchGraph:
    """A CAQR launch DAG in program order."""

    m: int
    n: int
    config: KernelConfig
    lookahead: bool
    nodes: list[LaunchNode] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.nodes)

    def validate(self) -> None:
        """Check ids are positional and every edge points backwards."""
        for pos, node in enumerate(self.nodes):
            if node.id != pos:
                raise ValueError(f"node at position {pos} has id {node.id}")
            for d in node.deps:
                if not 0 <= d < pos:
                    raise ValueError(f"node {pos} depends on {d} (not earlier)")
            if len(set(node.deps)) != len(node.deps):
                raise ValueError(f"node {pos} has duplicate deps")

    def durations(self, dev: DeviceSpec = C2050) -> list[float]:
        """Modeled seconds of each launch under the roofline+wave model."""
        return [time_launch(node.spec, dev).seconds for node in self.nodes]

    def serial_seconds(self, dev: DeviceSpec = C2050) -> float:
        """Sum of the *split* launch durations (>= the unsplit serial
        stream: splitting pays one extra launch overhead per update)."""
        return sum(self.durations(dev))

    def critical_path_seconds(self, dev: DeviceSpec = C2050) -> float:
        """Longest dependency chain — the overlap lower bound (no
        schedule on any number of streams can beat it)."""
        dur = self.durations(dev)
        finish = [0.0] * len(self.nodes)
        for node in self.nodes:
            start = max((finish[d] for d in node.deps), default=0.0)
            finish[node.id] = start + dur[node.id]
        return max(finish, default=0.0)


def _tile_width(wt: int, bh: int, cfg: KernelConfig, dev: DeviceSpec) -> int:
    # Deferred: caqr_gpu imports kernels/gpusim, and this module is below
    # it in the layering; the tile-width policy must be *shared* (the
    # split launches must tile exactly like the serial enumeration).
    from repro.caqr_gpu import _tile_width as tw

    return tw(wt, bh, cfg, dev)


def build_caqr_graph(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    lookahead: bool = True,
) -> LaunchGraph:
    """Build the dependency DAG of a CAQR factorization's launches.

    Nodes appear in the serial program order (so ``nodes`` is already a
    topological order); only the trailing updates are split into
    first-tile / rest pairs as described in the module docstring.
    """
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    graph = LaunchGraph(m=m, n=n, config=cfg, lookahead=lookahead)
    nodes = graph.nodes
    k = min(m, n)
    pw = cfg.panel_width

    def add(spec, deps, panel, level=-1, part="", cols=(0, 0)) -> int:
        nid = len(nodes)
        nodes.append(
            LaunchNode(
                id=nid,
                spec=spec,
                deps=tuple(dict.fromkeys(deps)),
                panel=panel,
                level=level,
                part=part,
                cols=cols,
            )
        )
        return nid

    # Trailing-update nodes of the previous panel: (id, (col_lo, col_hi)).
    prev_updates: list[tuple[int, tuple[int, int]]] = []

    for panel, c0 in enumerate(range(0, k, pw)):
        pw_p = min(pw, k - c0)
        r0 = c0
        hp = m - r0
        bh = max(cfg.block_rows, pw_p)
        nb0 = len(row_blocks(hp, bh))
        tree = build_tree(nb0, cfg.tree_shape)
        arities = tree.level_arities()
        tag = f"panel{panel}"

        def data_deps(lo: int, hi: int) -> list[int]:
            """Previous-panel updates this column interval must wait for."""
            if not lookahead:
                return [nid for nid, _ in prev_updates]
            return [nid for nid, (a, b) in prev_updates if a < hi and lo < b]

        panel_cols = (c0, c0 + pw_p)
        chain = data_deps(*panel_cols)
        if cfg.transpose_preprocess and cfg.strategy == "regfile_transpose":
            t_id = add(
                transpose_launch(hp, pw_p, cfg, dev, tag=tag),
                chain,
                panel,
                cols=panel_cols,
            )
            chain = [t_id]
        f_id = add(factor_launch(nb0, bh, pw_p, cfg, dev, tag=tag), chain, panel, cols=panel_cols)
        ft_ids: list[int] = []
        prev = f_id
        for lvl, level in enumerate(tree.levels):
            prev = add(
                factor_tree_launch(len(level), arities[lvl], pw_p, cfg, dev, tag=f"{tag}/L{lvl}"),
                [prev],
                panel,
                level=lvl,
                cols=panel_cols,
            )
            ft_ids.append(prev)

        updates: list[tuple[int, tuple[int, int]]] = []
        wt = n - (c0 + pw_p)
        if wt > 0:
            tile_w = _tile_width(wt, bh, cfg, dev)
            tiles = math.ceil(wt / tile_w)
            t0_cols = (c0 + pw_p, min(c0 + pw_p + tile_w, n))
            rest_cols = (t0_cols[1], n)
            h_first, h_rest = apply_qt_h_split_launches(
                nb0, bh, pw_p, tile_w, tiles, cfg, dev, tag=tag
            )
            parts = [("t0", h_first, t0_cols)]
            if h_rest is not None:
                parts.append(("rest", h_rest, rest_cols))
            # chains[part] tracks the latest update on that column slice.
            chains: dict[str, int] = {}
            for part, spec, cols in parts:
                nid = add(spec, [f_id] + data_deps(*cols), panel, level=-1, part=part, cols=cols)
                chains[part] = nid
                updates.append((nid, cols))
            for lvl, level in enumerate(tree.levels):
                t_first, t_rest = apply_qt_tree_split_launches(
                    len(level), arities[lvl], pw_p, tile_w, tiles, cfg, dev, tag=f"{tag}/L{lvl}"
                )
                lvl_parts = [("t0", t_first, t0_cols)]
                if t_rest is not None:
                    lvl_parts.append(("rest", t_rest, rest_cols))
                for part, spec, cols in lvl_parts:
                    nid = add(
                        spec, [ft_ids[lvl], chains[part]], panel, level=lvl, part=part, cols=cols
                    )
                    chains[part] = nid
                    updates.append((nid, cols))
        prev_updates = updates

    graph.validate()
    return graph
