"""Deterministic static ordering for :class:`~repro.graph.highlevel.TaskGraph`.

The pass that replaces implicit program-order scheduling: given a task
graph, produce one total order that every consumer (the serial runner,
the threaded executor's root seeding, the multi-stream list scheduler)
uses.  Dask's ``order.py`` solves the same problem for its schedulers;
ours is smaller because our graphs are regular, but the contract is the
same — the order is a function of graph *structure* only:

* it is a valid topological order (dependencies strictly precede
  dependents);
* it is deterministic across runs, interpreters and worker counts —
  no hash randomization leaks in because keys are compared only via
  each task's integer emission index;
* among ready tasks it prefers, in order: higher layer ``priority``
  (the look-ahead edge: panel factors outrank trailing updates), longer
  critical path to a sink (finish load-bearing chains first so the
  thread pool / stream scheduler always has work), then earlier
  emission (the program-order tiebreak that keeps regular graphs in
  their natural sweep).

Costs come from :meth:`TaskGraph.ordering_cost` (explicit task cost,
else layer annotation, else 1.0) — deliberately *not* from the gpusim
device model, so the order is pinnable in CI without fixing a device.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.highlevel import Key, TaskGraph

__all__ = ["critical_path_lengths", "static_order", "order_fingerprint"]


def critical_path_lengths(graph: "TaskGraph") -> dict["Key", float]:
    """Longest cost-weighted path from each task to any sink (inclusive).

    Computed iteratively (graphs reach tens of thousands of tasks at
    bench shapes — recursion would overflow) over the dependents
    relation: ``cp[t] = cost(t) + max(cp[dependents of t], default 0)``.
    """
    dependents = graph.dependents()
    cp: dict[Key, float] = {}
    # Reverse topological order via iterative DFS with an explicit
    # post-order stack; cycle detection is validate()'s job, so a cycle
    # here would only surface as a KeyError — call validate() first.
    state: dict[Key, int] = {}  # 0 = discovered, 1 = done
    for root in graph._tasks:
        if root in state:
            continue
        stack = [(root, False)]
        while stack:
            key, processed = stack.pop()
            if processed:
                cp[key] = graph.ordering_cost(graph.task(key)) + max(
                    (cp[d] for d in dependents[key]), default=0.0
                )
                state[key] = 1
                continue
            if key in state:
                continue
            state[key] = 0
            stack.append((key, True))
            for d in dependents[key]:
                if d not in state:
                    stack.append((d, False))
    return cp


def static_order(graph: "TaskGraph") -> list["Key"]:
    """One deterministic, critical-path-aware topological order.

    Kahn's algorithm with a priority heap over the ready set.  The heap
    entries compare as ``(-layer priority, -critical path, emission
    seq)`` — all ints/floats, never raw keys, so arbitrary hashable
    keys (tuples, strings, mixed) order identically everywhere.
    """
    graph.validate()
    cp = critical_path_lengths(graph)
    dependents = graph.dependents()
    indeg = {t.key: len(t.deps) for t in graph.tasks()}

    ready: list[tuple[int, float, int]] = []
    seq_to_key = {t.seq: t.key for t in graph.tasks()}

    def push(key: "Key") -> None:
        t = graph.task(key)
        ann = graph.annotations(t)
        heapq.heappush(ready, (-ann.priority, -cp[key], t.seq))

    for t in graph.tasks():
        if indeg[t.key] == 0:
            push(t.key)

    order: list[Key] = []
    while ready:
        _, _, seq = heapq.heappop(ready)
        key = seq_to_key[seq]
        order.append(key)
        for j in dependents[key]:
            indeg[j] -= 1
            if indeg[j] == 0:
                push(j)
    # validate() already ruled out cycles, so this always drains.
    return order


def order_fingerprint(graph: "TaskGraph") -> str:
    """SHA-256 (truncated) of the static order — the CI determinism pin."""
    import hashlib

    h = hashlib.sha256()
    h.update(graph.fingerprint().encode())
    for key in static_order(graph):
        h.update(repr(key).encode())
    return h.hexdigest()[:16]
