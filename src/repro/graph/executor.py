"""Numeric execution of the CAQR launch DAG — look-ahead CAQR.

This is the executor half of the launch-graph subsystem: the same
dependency structure that :mod:`repro.graph.dag` builds for the
simulator, run for real over the batched compact-WY kernels of
:mod:`repro.smallblas.wy`.  Two things distinguish it from the serial
``caqr(batched=True)`` driver:

* **Task graph.**  The factorization is a list of tasks — one panel
  factor ``F(p)`` plus one trailing update ``U(p, j)`` per column tile —
  wired with the same data dependencies as the DAG: ``F(p)`` needs only
  the *first-tile* update of panel ``p - 1`` (look-ahead), each update
  needs its panel's factors plus the previous panel's updates on its
  columns.  The tasks run serially in program order or on a thread pool;
  either way every task performs identical arithmetic on identical
  operands, so the two modes are **bit-identical** (tiling is keyed on
  ``workers`` alone, never on ``threaded``).

* **Lean replay.**  The panel factorization keeps only what the apply
  plan needs: the packed QR output is consumed through strided views
  (no ``ascontiguousarray`` repack of the reflector stacks), tree-level
  R stacks are zero-copy reshapes of a contiguous backing array instead
  of per-node gathers, no per-block/per-node factor objects are built,
  and the shape-dependent schedule (row maps, batch slicing) is computed
  once per ``(panel_height, width, block_rows, tree)`` and replayed from
  an LRU cache — the CUDA-Graphs capture/replay idiom, host-side.
  Panels with no trailing matrix defer building their compact-WY
  ``(V, T)`` until a Q application actually needs them.

Numerically the executor matches ``caqr(batched=True)`` to roundoff
(the factor kernel is the same LAPACK ``geqrf``; only operation *order*
across independent tiles differs), and matches itself exactly across
``threaded=True/False``.  The ``structured`` tree elimination is not
supported here — use :func:`repro.core.caqr.caqr` for that path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.dtypes import as_float_array, working_dtype
from repro.core.tree import batch_level, build_tree
from repro.core.tsqr import _WyPlan, _tsqr_impl, apply_wy_plan, row_blocks
from repro.graph.highlevel import TaskGraph
from repro.graph.order import static_order
from repro.obs import tracer as _obs
from repro.runtime.policy import UNSET, ExecutionPolicy, resolve_executor_policy
from repro.smallblas.wy import extract_v, larft
from repro.verify.guards import validate_matrix

__all__ = [
    "LookaheadCAQRFactors",
    "LookaheadSchedule",
    "build_lookahead_schedule",
    "caqr_lookahead",
    "emit_lookahead_layers",
    "form_q_columns",
    "run_lookahead_schedule",
    "run_task_graph",
]

_MIN_TILE = 16  # narrowest "rest" tile worth a task of its own


# ---------------------------------------------------------------------------
# Panel schedule capture (shape-dependent, cached) ---------------------------
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _LevelBatch:
    """One same-shape batch of tree groups at one level.

    Attributes:
        g: number of groups in the batch.
        arity: stacked Rs per group (all ``height``-uniform).
        pos0: the batch's first member position in alive order — members
            occupy ``backing[pos0 : pos0 + g * arity]`` contiguously.
        idx: ``(g, arity * height)`` panel-row gather map for applies.
    """

    g: int
    arity: int
    pos0: int
    idx: np.ndarray


@dataclass(frozen=True)
class _PanelRecipe:
    """Everything shape-dependent about factoring one panel."""

    hp: int
    width: int
    bh: int
    nb: int
    l0_count: int
    l0_h: int
    ragged: bool
    tail_start: int
    tail_h: int
    levels: tuple[tuple[_LevelBatch, ...], ...]
    carried: tuple[int, ...]  # per level: alive entries riding along
    low_mask: np.ndarray  # (width, width) strictly-lower boolean mask


_RECIPES: OrderedDict[tuple, _PanelRecipe | None] = OrderedDict()
_RECIPES_LOCK = threading.Lock()
_RECIPES_MAX = 64


def _build_recipe(hp: int, width: int, bh: int, tree_shape: str) -> _PanelRecipe | None:
    """Capture the panel schedule, or ``None`` if the shape needs the
    generic :func:`~repro.core.tsqr.tsqr` fallback (tiny ragged tail, or
    a tree whose level order is not its batch order)."""
    ranges = row_blocks(hp, bh)
    nb = len(ranges)
    tail_start, tail_stop = ranges[-1]
    tail_h = tail_stop - tail_start
    ragged = nb > 1 and tail_h != bh
    l0_count = nb - 1 if ragged else nb
    l0_h = bh if nb > 1 else hp
    if ragged and tail_h < width:
        # The tail R is shorter than the panel width: heights go ragged
        # through the whole tree.  Rare (only when the last block is
        # thinner than the panel) — not worth a lean path.
        return None
    tree = build_tree(nb, tree_shape)
    starts = np.arange(nb, dtype=np.intp) * bh
    alive = list(range(nb))
    levels: list[tuple[_LevelBatch, ...]] = []
    carried: list[int] = []
    for level in tree.levels:
        pos_of = {blk: p for p, blk in enumerate(alive)}
        batches: list[_LevelBatch] = []
        cursor = 0
        for arity, poss in batch_level(level).items():
            groups = [level[p] for p in poss]
            members = [i for grp in groups for i in grp]
            mpos = [pos_of[i] for i in members]
            if mpos != list(range(cursor, cursor + len(members))):
                return None  # batch not a contiguous alive slice
            st = starts[np.asarray(members, dtype=np.intp)]
            idx = (st[:, None] + np.arange(width, dtype=np.intp)).reshape(
                len(groups), arity * width
            )
            batches.append(_LevelBatch(g=len(groups), arity=arity, pos0=cursor, idx=idx))
            cursor += len(members)
        ride = alive[cursor:]
        eliminated = {i for grp in level for i in grp[1:]}
        next_alive = [grp[0] for grp in level] + ride
        if [i for i in alive if i not in eliminated] != next_alive:
            return None  # survivor order differs from concat order
        levels.append(tuple(batches))
        carried.append(len(ride))
        alive = next_alive
    return _PanelRecipe(
        hp=hp,
        width=width,
        bh=bh,
        nb=nb,
        l0_count=l0_count,
        l0_h=l0_h,
        ragged=ragged,
        tail_start=tail_start,
        tail_h=tail_h,
        levels=tuple(levels),
        carried=tuple(carried),
        low_mask=~np.triu(np.ones((width, width), dtype=bool)),
    )


def _recipe(hp: int, width: int, bh: int, tree_shape: str) -> _PanelRecipe | None:
    key = (hp, width, bh, tree_shape)
    with _RECIPES_LOCK:
        if key in _RECIPES:
            _RECIPES.move_to_end(key)
            return _RECIPES[key]
    rec = _build_recipe(hp, width, bh, tree_shape)
    with _RECIPES_LOCK:
        _RECIPES[key] = rec
        while len(_RECIPES) > _RECIPES_MAX:
            _RECIPES.popitem(last=False)
    return rec


# ---------------------------------------------------------------------------
# Panel factorization --------------------------------------------------------
# ---------------------------------------------------------------------------


@dataclass
class _PanelPlan:
    """One factored panel: its R, and a lazily-built apply plan.

    The factor task stores the raw packed QR outputs (``VR`` stacks as
    strided views plus ``tau``); the compact-WY ``(V, T)`` factors are
    assembled on first use — immediately for panels that have a trailing
    matrix, lazily (and lock-protected) for panels that do not.
    """

    row_start: int
    col_start: int
    col_stop: int
    hp: int
    R: np.ndarray | None = None  # (width, width) upper triangular
    _raw: tuple | None = field(default=None, repr=False)
    _fallback: object | None = field(default=None, repr=False)  # TSQRFactors
    _plan: _WyPlan | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def plan(self) -> _WyPlan:
        plan = self._plan
        if plan is None:
            with self._lock:
                plan = self._plan
                if plan is None:
                    plan = self._plan = self._build_plan()
                    self._raw = None  # raw stacks no longer needed
        return plan

    def _build_plan(self) -> _WyPlan:
        if self._fallback is not None:
            return self._fallback._plan_for(working_dtype(self.R))
        rec, VR0, tau0, tail_raw, levels_raw = self._raw
        V0 = extract_v(VR0)
        T0 = larft(V0, tau0)
        l0_tail = []
        if tail_raw is not None:
            VRt, taut = tail_raw
            Vt = extract_v(VRt)
            l0_tail.append((rec.tail_start, rec.tail_h, Vt, larft(Vt, taut)))
        levels = []
        for entries_raw in levels_raw:
            entries = []
            for idx, VRl, taul in entries_raw:
                Vl = extract_v(VRl)
                entries.append(("wy", idx, Vl, larft(Vl, taul)))
            levels.append(entries)
        return _WyPlan(
            dtype=np.dtype(V0.dtype),
            l0_count=rec.l0_count,
            l0_h=rec.l0_h,
            l0_V=V0,
            l0_T=T0,
            l0_tail=l0_tail,
            levels=levels,
        )

    def apply_qt(self, B: np.ndarray) -> None:
        apply_wy_plan(self.plan(), B, transpose=True)

    def apply_q(self, B: np.ndarray) -> None:
        apply_wy_plan(self.plan(), B, transpose=False)


def _factor_panel(
    pp: _PanelPlan, Wp: np.ndarray, bh: int, tree_shape: str, eager: bool
) -> None:
    """Factor one panel (TSQR) into ``pp`` — the ``factor`` +
    ``factor_tree`` launches of the DAG, replayed from the cached recipe."""
    hp, width = Wp.shape
    rec = _recipe(hp, width, bh, tree_shape)
    if rec is None:
        f = _tsqr_impl(Wp, block_rows=bh, tree_shape=tree_shape, structured=False, batched=True)
        pp._fallback = f
        pp.R = f.R[:width, :]
        if eager:
            pp.plan()
        return
    # Level 0: one batched geqrf over the uniform blocks, consumed as a
    # strided view — R rows are sliced out, reflectors stay packed.
    if rec.nb == 1:
        stack = Wp[None, :, :]
    else:
        stack = Wp[: rec.l0_count * bh].reshape(rec.l0_count, bh, width)
    with _obs.span("panel.level0", cat="factor.level0", blocks=rec.nb):
        h, tau0 = np.linalg.qr(stack, mode="raw")
        VR0 = h.transpose(0, 2, 1)  # (l0_count, l0_h, width) view
        dt = VR0.dtype
        backing = np.empty((rec.nb, width, width), dtype=dt)
        backing[: rec.l0_count] = VR0[:, :width, :]
        tail_raw = None
        if rec.ragged:
            ht, taut = np.linalg.qr(Wp[rec.tail_start :][None, :, :], mode="raw")
            VRt = ht.transpose(0, 2, 1)
            backing[rec.nb - 1] = VRt[0, :width, :]
            tail_raw = (VRt, taut)
        backing[:, rec.low_mask] = 0.0
    # Tree levels: every stacked-R input is a zero-copy reshape of the
    # backing slab; the outputs become the next slab.
    levels_raw = []
    for batches, n_ride in zip(rec.levels, rec.carried):
        entries_raw = []
        outs = []
        used = 0
        with _obs.span("panel.tree", cat="factor.tree", batches=len(batches)):
            for lb in batches:
                src = backing[lb.pos0 : lb.pos0 + lb.g * lb.arity].reshape(
                    lb.g, lb.arity * width, width
                )
                hh, taul = np.linalg.qr(src, mode="raw")
                VRl = hh.transpose(0, 2, 1)
                entries_raw.append((lb.idx, VRl, taul))
                Rt = VRl[:, :width, :].copy()
                Rt[:, rec.low_mask] = 0.0
                outs.append(Rt)
                used += lb.g * lb.arity
            if len(outs) == 1 and n_ride == 0:
                backing = outs[0]
            else:
                backing = np.concatenate(outs + ([backing[used:]] if n_ride else []))
        levels_raw.append(entries_raw)
    pp.R = backing[0]
    pp._raw = (rec, VR0, tau0, tail_raw, levels_raw)
    if eager:
        pp.plan()


# ---------------------------------------------------------------------------
# The factor object ----------------------------------------------------------
# ---------------------------------------------------------------------------


@dataclass
class LookaheadCAQRFactors:
    """Implicit Q and explicit R of a look-ahead CAQR factorization.

    Duck-type compatible with :class:`repro.core.caqr.CAQRFactors`:
    ``apply_qt`` / ``apply_q`` / ``form_q`` and the explicit ``R``.
    Q applications run through the same compact-WY plans the trailing
    updates used (built on demand for trailing-free panels).
    """

    m: int
    n: int
    panel_width: int
    block_rows: int
    tree_shape: str
    panels: list[_PanelPlan]
    R: np.ndarray  # min(m, n) x n upper trapezoidal
    workers: int = 1

    def _check(self, B: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        B = as_float_array(B)
        if B.shape[0] != self.m:
            raise ValueError(f"B must have {self.m} rows, got {B.shape[0]}")
        return B, (B[:, None] if B.ndim == 1 else B)

    def apply_qt(self, B: np.ndarray) -> np.ndarray:
        """Compute ``Q^T B`` in place (B must have ``m`` rows)."""
        B, W = self._check(B)
        for p in self.panels:
            p.apply_qt(W[p.row_start :, :])
        return B

    def apply_q(self, B: np.ndarray) -> np.ndarray:
        """Compute ``Q B`` in place (B must have ``m`` rows)."""
        B, W = self._check(B)
        for p in reversed(self.panels):
            p.apply_q(W[p.row_start :, :])
        return B

    def form_q(self) -> np.ndarray:
        """Form the explicit thin ``m x min(m, n)`` orthonormal Q."""
        k = min(self.m, self.n)
        Q = np.zeros((self.m, k), dtype=working_dtype(self.R))
        np.fill_diagonal(Q, 1.0)
        return self.apply_q(Q)


def form_q_columns(
    factors,
    workers: int | None = None,
    threaded: bool | None = None,
) -> np.ndarray:
    """Form the explicit thin Q, tiling its columns across a thread pool.

    Q columns are independent under ``apply_q`` (every update touches
    disjoint column slices), so the SORGQR-equivalent parallelizes
    embarrassingly.  Accepts :class:`LookaheadCAQRFactors` or any factor
    object with ``m``/``n``/``R``/``apply_q`` (e.g.
    :class:`~repro.core.tsqr.TSQRFactors`, which is how the randomized
    range finder threads its Q formation).  As in :func:`caqr_lookahead`,
    ``workers`` alone fixes the tiling and ``threaded`` picks the engine,
    so the threaded result is bit-identical to the serial run of the same
    tiles (and matches the untiled ``form_q`` to roundoff — GEMM
    accumulation order differs with tile width).  ``workers=None`` uses
    the factors' worker count (1 if absent); 1 means plain ``form_q``.
    """
    if workers is None:
        workers = getattr(factors, "workers", 1)
    if threaded is None:
        threaded = workers > 1
    k = min(factors.m, factors.n)
    if workers <= 1 or k < 2 * _MIN_TILE:
        return factors.form_q()
    Q = np.zeros((factors.m, k), dtype=working_dtype(factors.R))
    np.fill_diagonal(Q, 1.0)
    # Build apply plans serially up front: the tile applies run
    # concurrently and must only read them.
    panels = getattr(factors, "panels", None)
    if panels is not None:
        for p in panels:
            p.plan()
        def run(lo: int, hi: int) -> None:
            for p in reversed(panels):
                p.apply_q(Q[p.row_start :, lo:hi])
    else:
        plan_for = getattr(factors, "_plan_for", None)
        if plan_for is not None and getattr(factors, "batched", False):
            plan_for(np.dtype(Q.dtype))
        def run(lo: int, hi: int) -> None:
            factors.apply_q(Q[:, lo:hi])
    step = max(_MIN_TILE, -(-k // workers))
    bounds = [(lo, min(lo + step, k)) for lo in range(0, k, step)]
    if threaded:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for fut in [pool.submit(run, lo, hi) for lo, hi in bounds]:
                fut.result()
    else:
        for lo, hi in bounds:
            run(lo, hi)
    return Q


# ---------------------------------------------------------------------------
# The driver -----------------------------------------------------------------
# ---------------------------------------------------------------------------


@dataclass
class _Task:
    fn: object
    deps: list[int]


def _col_tiles(lo: int, hi: int, first_w: int, workers: int) -> list[tuple[int, int]]:
    """Column tiles of one panel's trailing update.

    ``workers <= 1`` keeps the update whole (one lean full-width pass);
    otherwise the first tile is exactly the next panel's columns (the
    look-ahead edge) and the rest is split into ``~workers`` chunks of at
    least ``_MIN_TILE`` columns.  Depends only on ``workers`` so the
    threaded and serial engines execute identical tiles.
    """
    if workers <= 1:
        return [(lo, hi)]
    cut = min(lo + first_w, hi)
    tiles = [(lo, cut)]
    rest = hi - cut
    if rest > 0:
        step = max(_MIN_TILE, -(-rest // workers))
        tiles.extend((a, min(a + step, hi)) for a in range(cut, hi, step))
    return tiles


def _run_threaded(tasks: list[_Task], workers: int) -> None:
    """Dependency-counting execution of ``tasks`` on a thread pool."""
    n = len(tasks)
    if n == 0:
        # A degenerate factorization (0 panels) has no tasks; waiting on
        # the completion event would block forever.
        return
    dependents: list[list[int]] = [[] for _ in range(n)]
    indegree = [0] * n
    for i, t in enumerate(tasks):
        indegree[i] = len(t.deps)
        for d in t.deps:
            dependents[d].append(i)
    lock = threading.Lock()
    done = threading.Event()
    state = {"remaining": n, "error": None}

    def submit(pool: ThreadPoolExecutor, i: int) -> None:
        pool.submit(run, pool, i)

    def run(pool: ThreadPoolExecutor, i: int) -> None:
        try:
            if state["error"] is None:
                tasks[i].fn()
        except BaseException as exc:  # propagate the first failure
            with lock:
                if state["error"] is None:
                    state["error"] = exc
        ready: list[int] = []
        with lock:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                done.set()
            for j in dependents[i]:
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
        for j in ready:
            submit(pool, j)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        roots = [i for i in range(n) if indegree[i] == 0]
        for i in roots:
            submit(pool, i)
        done.wait()
    if state["error"] is not None:
        raise state["error"]


def run_task_graph(
    tg: TaskGraph,
    workers: int = 1,
    threaded: bool | None = None,
    instrument: bool = False,
) -> None:
    """Execute a bound :class:`TaskGraph` — the shared numeric engine.

    Tasks run in the graph's static order (:mod:`repro.graph.order`):
    serially when ``workers <= 1`` (or ``threaded=False``), else on the
    dependency-counting thread pool with roots seeded in static order.
    Dependencies are ordering constraints only — data flows through the
    producer's closures/bind state — so any topological execution is
    race-free and the two engines are bit-identical by construction.

    ``instrument=True`` wraps every task in an obs span named after its
    layer (producers whose closures don't span themselves get per-task
    attribution for free; the look-ahead driver passes ``False`` because
    its closures already do).  Tasks with ``fn=None`` (model-only
    placeholders) are skipped.
    """
    if threaded is None:
        threaded = workers > 1
    order = static_order(tg)

    def payload(key):
        t = tg.task(key)
        fn = t.fn
        if fn is None:
            return None
        if not instrument:
            return fn
        def run(t=t, fn=fn):
            with _obs.span(t.layer, cat=f"graph.{tg.name}", key=repr(t.key)):
                fn()
        return run

    if not threaded or workers <= 1:
        for key in order:
            fn = payload(key)
            if fn is not None:
                fn()
        return
    pos = {key: i for i, key in enumerate(order)}
    tasks = []
    for key in order:
        fn = payload(key)
        tasks.append(
            _Task(fn=fn if fn is not None else (lambda: None),
                  deps=[pos[d] for d in tg.task(key).deps])
        )
    _run_threaded(tasks, workers)


@dataclass(frozen=True)
class _TaskSpec:
    """One task of a captured schedule (closure-free, matrix-free)."""

    kind: str  # "factor" | "update"
    panel: int
    lo: int  # update column range; (0, 0) for factor tasks
    hi: int
    deps: tuple[int, ...]


@dataclass(frozen=True)
class LookaheadSchedule:
    """The shape-dependent half of a look-ahead factorization.

    Built once per ``(m, n, policy)`` by :func:`build_lookahead_schedule`
    (and cached inside a :class:`repro.runtime.plan.QRPlan`), then run on
    any conforming matrix by :func:`run_lookahead_schedule`.  ``panels``
    holds ``(col_start, width, row_start, block_rows, trailing)`` per
    panel; ``tasks`` is the dependency-wired task list.
    """

    m: int
    n: int
    policy: ExecutionPolicy
    panels: tuple[tuple[int, int, int, int, int], ...]
    tasks: tuple[_TaskSpec, ...]


def build_lookahead_schedule(m: int, n: int, policy: ExecutionPolicy) -> LookaheadSchedule:
    """Capture the panel partition and task DAG for one shape.

    Pure shape arithmetic — no matrix is touched, so the result is
    reusable across every matrix of the shape.  Tiling is keyed on
    ``policy.workers`` alone (never on the execution engine), which is
    what makes threaded and serial runs of one schedule bit-identical.
    """
    workers = policy.effective_workers
    k = min(m, n)
    panels: list[tuple[int, int, int, int, int]] = []
    tasks: list[_TaskSpec] = []
    prev_updates: list[tuple[int, tuple[int, int]]] = []  # (task id, cols)
    for p, c0 in enumerate(range(0, k, policy.panel_width)):
        pw_p = min(policy.panel_width, k - c0)
        r0 = c0
        bh = max(policy.block_rows, pw_p)
        wt = n - (c0 + pw_p)
        panels.append((c0, pw_p, r0, bh, wt))

        if policy.lookahead_edge and prev_updates:
            f_deps = (prev_updates[0][0],)
        else:
            f_deps = tuple(t for t, _ in prev_updates)
        f_id = len(tasks)
        tasks.append(_TaskSpec(kind="factor", panel=p, lo=0, hi=0, deps=f_deps))

        updates: list[tuple[int, tuple[int, int]]] = []
        if wt > 0:
            next_w = min(policy.panel_width, max(k - (c0 + pw_p), 1))
            for lo, hi in _col_tiles(c0 + pw_p, n, next_w, workers):
                deps = (f_id,) + tuple(
                    t for t, (a, b) in prev_updates if a < hi and lo < b
                )
                u_id = len(tasks)
                tasks.append(_TaskSpec(kind="update", panel=p, lo=lo, hi=hi, deps=deps))
                updates.append((u_id, (lo, hi)))
        prev_updates = updates
    return LookaheadSchedule(
        m=m, n=n, policy=policy, panels=tuple(panels), tasks=tuple(tasks)
    )


def emit_lookahead_layers(
    sched: LookaheadSchedule,
    bind: list | None = None,
) -> TaskGraph:
    """Compile a captured :class:`LookaheadSchedule` into a task graph.

    Two layers: ``panel`` (the factor tasks, higher ordering priority —
    the look-ahead edge in annotation form) and ``trailing`` (the tiled
    updates).  Keys are ``("factor", p)`` / ``("update", p, lo, hi)``;
    dependencies are the schedule's own, translated from positional ids
    to keys.  ``bind``, when given, is the per-task payload list in
    schedule order (as built by :func:`run_lookahead_schedule`); without
    it the graph is structural — same fingerprint, nothing runnable.
    """
    if bind is not None and len(bind) != len(sched.tasks):
        raise ValueError(
            f"bind has {len(bind)} payload(s) for {len(sched.tasks)} task(s)"
        )
    tg = TaskGraph(name=f"lookahead[{sched.m}x{sched.n}]")
    tg.add_layer("panel", priority=1)
    tg.add_layer("trailing", priority=0)
    keys: list = []
    for i, ts in enumerate(sched.tasks):
        if ts.kind == "factor":
            layer, key = "panel", ("factor", ts.panel)
        else:
            layer, key = "trailing", ("update", ts.panel, ts.lo, ts.hi)
        tg.add_task(
            layer,
            key,
            fn=bind[i] if bind is not None else None,
            deps=[keys[d] for d in ts.deps],
            panel=ts.panel,
            cols=(ts.lo, ts.hi),
        )
        keys.append(key)
    return tg


def run_lookahead_schedule(
    sched: LookaheadSchedule,
    A: np.ndarray,
    threaded: bool | None = None,
) -> LookaheadCAQRFactors:
    """Run a captured schedule on one (already validated) matrix.

    ``threaded`` picks the engine only — thread pool vs program-order
    loop over the *same* tasks — and defaults to ``workers > 1``; either
    engine produces bit-identical factors.
    """
    policy = sched.policy
    workers = policy.effective_workers
    if threaded is None:
        threaded = workers > 1
    m, n = sched.m, sched.n
    if A.shape != (m, n):
        raise ValueError(
            f"run_lookahead_schedule: matrix shape {A.shape} does not match "
            f"the scheduled shape ({m}, {n})"
        )
    k = min(m, n)
    with _obs.span("setup", cat="host"):
        W = A.copy()
    dt = np.dtype(working_dtype(W))
    tree_shape = policy.tree_shape

    panels = [
        _PanelPlan(row_start=r0, col_start=c0, col_stop=c0 + pw_p, hp=m - r0)
        for c0, pw_p, r0, _bh, _wt in sched.panels
    ]
    bind: list = []
    for ts in sched.tasks:
        c0, pw_p, r0, bh, wt = sched.panels[ts.panel]
        pp = panels[ts.panel]
        if ts.kind == "factor":

            def fn(pp=pp, c0=c0, pw_p=pw_p, r0=r0, bh=bh, wt=wt, p=ts.panel):
                with _obs.span("factor", cat="factor", panel=p, rows=m - r0):
                    _factor_panel(pp, W[r0:, c0 : c0 + pw_p], bh, tree_shape, eager=wt > 0)

        else:

            def fn(pp=pp, r0=r0, lo=ts.lo, hi=ts.hi, p=ts.panel):
                with _obs.span("update", cat="update", panel=p, lo=lo, hi=hi):
                    pp.apply_qt(W[r0:, lo:hi])

        bind.append(fn)

    # Compile to the shared graph representation and run on the shared
    # engine — serial static order and the thread pool execute the same
    # tasks on the same operands, so both are bit-identical.
    tg = emit_lookahead_layers(sched, bind=bind)
    run_task_graph(tg, workers=workers, threaded=threaded and workers > 1)

    # Assemble R: the trailing updates left every super-diagonal entry in
    # W; panel diagonal blocks come from the panels' own R factors (the
    # serial driver's zero-fill + write-back is skipped entirely).
    with _obs.span("assemble_r", cat="host"):
        R = np.triu(W[:k, :])
        for pp in panels:
            pw_p = pp.col_stop - pp.col_start
            R[pp.row_start : pp.row_start + pw_p, pp.col_start : pp.col_stop] = pp.R[:pw_p, :]
    return LookaheadCAQRFactors(
        m=m,
        n=n,
        panel_width=policy.panel_width,
        block_rows=policy.block_rows,
        tree_shape=tree_shape,
        panels=panels,
        R=R.astype(dt, copy=False),
        workers=workers,
    )


def caqr_lookahead(
    A: np.ndarray,
    panel_width: int = UNSET,
    block_rows: int = UNSET,
    tree_shape: str = UNSET,
    workers: int | None = UNSET,
    threaded: bool | None = None,
    lookahead: bool = UNSET,
    nonfinite: str = UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> LookaheadCAQRFactors:
    """Factor ``A`` with CAQR executed as a dependency graph.

    Prefer ``policy=`` (an :class:`~repro.runtime.policy.ExecutionPolicy`
    with ``path="lookahead"``); the loose kwargs are deprecation shims.
    ``threaded`` stays a live engine knob: it picks thread pool vs
    program-order loop over the same schedule (defaults to
    ``workers > 1``) and never changes the bits.

    Legacy kwargs (deprecated): ``workers`` — column tiles per trailing
    update / pool width; ``lookahead`` — the look-ahead dependency edge
    (``False`` restores the panel barrier); ``nonfinite`` — input guard
    policy; plus the panel geometry.

    Returns:
        :class:`LookaheadCAQRFactors` with the implicit Q and explicit R.
    """
    policy = resolve_executor_policy(
        "caqr_lookahead",
        policy,
        workers=workers,
        lookahead=lookahead,
        nonfinite=nonfinite,
        panel_width=panel_width,
        block_rows=block_rows,
        tree_shape=tree_shape,
    )
    with _obs.maybe_trace(policy.trace):
        A = validate_matrix(A, where="caqr_lookahead", nonfinite=policy.nonfinite)
        with _obs.span(
            "caqr_lookahead",
            cat="entry",
            m=A.shape[0],
            n=A.shape[1],
            workers=policy.effective_workers,
        ):
            sched = build_lookahead_schedule(A.shape[0], A.shape[1], policy)
            return run_lookahead_schedule(sched, A, threaded=threaded)
