"""Robust PCA by inexact augmented Lagrangian alternating directions.

The Section VI-C algorithm (Candès et al. / Yuan-Yang): decompose
``M = L0 + S0`` by minimizing ``||L||_* + lam ||S||_1`` subject to
``M = L + S``, alternating a singular-value threshold on L (Figure 11)
with an l1 shrinkage on S and a dual update.  "The vast majority of the
runtime is spent in the singular value threshold, specifically the SVD of
the L0 matrix" — which is why swapping the QR engine under the SVD is
worth 30x end to end (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from typing import Callable as _Callable

from .shrinkage import shrink
from .svt import SVDFunc, singular_value_threshold

SVTFunc = _Callable[[np.ndarray, float], tuple[np.ndarray, int]]

__all__ = ["RPCAResult", "rpca_ialm"]


@dataclass
class RPCAResult:
    """Converged (or iteration-capped) Robust PCA decomposition."""

    L: np.ndarray
    S: np.ndarray
    n_iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)
    ranks: list[int] = field(default_factory=list)

    @property
    def final_rank(self) -> int:
        return self.ranks[-1] if self.ranks else 0


def rpca_ialm(
    M: np.ndarray,
    lam: float | None = None,
    mu: float | None = None,
    rho: float = 1.5,
    tol: float = 1e-7,
    max_iter: int = 500,
    svd: SVDFunc | None = None,
    svt: SVTFunc | None = None,
    callback: Callable[[int, float], None] | None = None,
    engine: str = "direct",
) -> RPCAResult:
    """Decompose ``M`` into low-rank ``L`` plus sparse ``S``.

    Args:
        M: observed matrix (for video: pixels x frames, tall-skinny).
        lam: sparsity weight; default ``1/sqrt(max(m, n))`` (the standard
            Robust PCA choice from Candès et al.).
        mu: initial augmented-Lagrangian penalty; default
            ``1.25 / ||M||_2``.
        rho: penalty growth factor per iteration.
        tol: convergence threshold on ``||M - L - S||_F / ||M||_F``.
        max_iter: iteration cap (the paper's problem "technically takes
            over 500 iterations to converge, however the solution begins
            to look good earlier").
        svd: SVD engine used inside the singular-value threshold
            (defaults to the QR-based tall-skinny SVD).
        svt: full SVT operator override ``(X, tau) -> (L, rank)`` — e.g.
            :class:`repro.rpca.adaptive.AdaptiveSVT` for rank-adaptive
            partial SVDs.  Takes precedence over ``svd``.
        callback: optional per-iteration hook ``(iteration, residual)``.
        engine: ``"direct"`` runs the loop inline; ``"graph"`` compiles
            each iteration to a :class:`~repro.graph.highlevel.TaskGraph`
            (:mod:`repro.rpca.graphs`) run on the shared executor —
            bit-identical, with per-stage obs spans.  The graph engine
            fixes the default QR→SVT pipeline, so it rejects ``svd`` /
            ``svt`` overrides.
    """
    M = np.asarray(M, dtype=float)
    if M.ndim != 2 or M.size == 0:
        raise ValueError("M must be a non-empty 2-D matrix")
    if not np.isfinite(M).all():
        raise ValueError("Robust PCA requires finite input (NaN/Inf found)")
    m, n = M.shape
    norm_M = np.linalg.norm(M)
    if norm_M == 0.0:
        return RPCAResult(L=np.zeros_like(M), S=np.zeros_like(M), n_iterations=0, converged=True)
    if lam is None:
        lam = 1.0 / np.sqrt(max(m, n))
    spectral = np.linalg.norm(M, 2)
    if mu is None:
        mu = 1.25 / spectral
    mu_max = mu * 1e7
    # Dual initialization of Lin et al.: Y = M / max(||M||_2, ||M||_inf/lam).
    Y = M / max(spectral, np.abs(M).max() / lam)
    S = np.zeros_like(M)
    L = np.zeros_like(M)
    if engine not in ("direct", "graph"):
        raise ValueError(f"unknown engine {engine!r}; expected 'direct' or 'graph'")
    if engine == "graph":
        if svd is not None or svt is not None:
            raise ValueError(
                "engine='graph' compiles the default QR->SVT pipeline; "
                "svd/svt overrides need engine='direct'"
            )
        from .graphs import run_ialm_graph

        return run_ialm_graph(
            M,
            Y=Y,
            S=S,
            L=L,
            mu=mu,
            mu_max=mu_max,
            lam=lam,
            rho=rho,
            tol=tol,
            max_iter=max_iter,
            norm_M=norm_M,
            callback=callback,
        )
    residuals: list[float] = []
    ranks: list[int] = []
    converged = False
    it = 0
    svt_fn: SVTFunc = svt if svt is not None else (
        lambda X, t: singular_value_threshold(X, t, svd=svd)
    )
    for it in range(1, max_iter + 1):
        L, rank = svt_fn(M - S + Y / mu, 1.0 / mu)
        S = shrink(M - L + Y / mu, lam / mu)
        residual_mat = M - L - S
        Y = Y + mu * residual_mat
        mu = min(mu * rho, mu_max)
        res = float(np.linalg.norm(residual_mat) / norm_M)
        residuals.append(res)
        ranks.append(rank)
        if callback is not None:
            callback(it, res)
        if res < tol:
            converged = True
            break
    return RPCAResult(L=L, S=S, n_iterations=it, converged=converged, residuals=residuals, ranks=ranks)
