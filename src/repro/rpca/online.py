"""Chunked (online) Robust PCA for long videos.

The paper processes a 100-frame clip in one batch; surveillance streams
are unbounded.  This module processes the video in temporal chunks,
warm-starting each chunk's dual variable and sparsity pattern from a
background subspace carried across chunks — the background is (near-)
static, so its subspace transfers, and each chunk converges in a few
iterations instead of tens.  A practical extension built entirely from
the library's existing pieces (RPCA + randomized subspace projection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from .ialm import RPCAResult, rpca_ialm
from .svt import SVDFunc

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.policy import ExecutionPolicy

__all__ = ["OnlineRPCA", "ChunkResult"]


@dataclass
class ChunkResult:
    """Decomposition of one temporal chunk."""

    frame_start: int
    frame_stop: int
    L: np.ndarray
    S: np.ndarray
    n_iterations: int
    converged: bool


@dataclass
class OnlineRPCA:
    """Process a pixel x frames stream chunk by chunk.

    Usage::

        online = OnlineRPCA(chunk_frames=25)
        for chunk in online.process(M):          # or repeated .push(...)
            use(chunk.S)

    After warm-up, each chunk first subtracts the projection onto the
    carried background subspace (making the remaining problem almost
    purely sparse), runs a short RPCA on the residual to catch subspace
    drift, and updates the carried subspace.

    The carried subspace is *cached*: when a warm chunk's residual
    low-rank part is negligible relative to its L (no drift — the
    carried U already explains the background, so re-deriving it could
    not change the rank estimate), the per-chunk full SVD is skipped and
    the cached U is reused.  ``subspace_refresh_tol`` sets the relative
    Frobenius threshold; ``subspace_svd_calls`` counts actual SVDs, so a
    constant-rank stream costs one SVD total instead of one per chunk.

    ``keep_history=False`` drops per-chunk L/S history after returning
    each :class:`ChunkResult` — the bounded-memory mode the streaming
    soak runs in (``assemble()`` then raises; consume chunks as they
    come).
    """

    chunk_frames: int = 25
    rank_cap: int = 4
    tol: float = 1e-6
    max_iter_cold: int = 150
    max_iter_warm: int = 40
    svd: SVDFunc | None = None
    # How the inner SVT's QR factorizations execute; builds a
    # rank-adaptive SVT when no explicit ``svd`` hook is given.
    policy: "ExecutionPolicy | None" = None
    subspace_refresh_tol: float = 1e-6
    keep_history: bool = True
    subspace_svd_calls: int = 0
    _U: np.ndarray | None = field(default=None, repr=False)  # carried subspace
    frames_seen: int = 0
    chunks: list[ChunkResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.svd is None and self.policy is not None:
            from .adaptive import AdaptiveSVT

            self.svd = AdaptiveSVT(policy=self.policy)

    def _subspace_from(self, L: np.ndarray) -> np.ndarray:
        U, s, _ = np.linalg.svd(L, full_matrices=False)
        if s.size == 0 or s[0] == 0.0:
            return U[:, :0]
        # Keep only clearly-background modes: a loose threshold would let
        # residual foreground contaminate the carried subspace and leak
        # into the next chunk's L projection.
        keep = min(int(np.sum(s > 2e-2 * s[0])), self.rank_cap)
        return U[:, : max(keep, 1)]

    def push(self, frames: np.ndarray) -> ChunkResult:
        """Decompose one chunk (pixels x chunk_frames matrix)."""
        frames = np.asarray(frames, dtype=float)
        if frames.ndim != 2 or frames.shape[1] < 1:
            raise ValueError("chunk must be a pixels x frames matrix")
        if self._U is not None and frames.shape[0] != self._U.shape[0]:
            raise ValueError("pixel count changed mid-stream")
        start = self.frames_seen
        refresh = True
        if self._U is None:
            # Cold start: full RPCA on the first chunk.
            res = rpca_ialm(frames, tol=self.tol, max_iter=self.max_iter_cold, svd=self.svd)
            L, S = res.L, res.S
            iters, conv = res.n_iterations, res.converged
        else:
            # Warm start: split off the carried-background projection.
            U = self._U
            L_proj = U @ (U.T @ frames)
            residual = frames - L_proj
            res = rpca_ialm(residual, tol=self.tol, max_iter=self.max_iter_warm, svd=self.svd)
            L = L_proj + res.L
            S = res.S
            iters, conv = res.n_iterations, res.converged
            # No drift: L is (to tolerance) a projection onto the cached
            # U, so an SVD of L could only re-derive span(U) — skip it.
            drift = float(np.linalg.norm(res.L))
            scale = max(float(np.linalg.norm(L)), np.finfo(float).tiny)
            refresh = drift > self.subspace_refresh_tol * scale
        if refresh:
            self._U = self._subspace_from(L)
            self.subspace_svd_calls += 1
        self.frames_seen += frames.shape[1]
        chunk = ChunkResult(
            frame_start=start,
            frame_stop=self.frames_seen,
            L=L,
            S=S,
            n_iterations=iters,
            converged=conv,
        )
        if self.keep_history:
            self.chunks.append(chunk)
        return chunk

    def process(self, M: np.ndarray) -> list[ChunkResult]:
        """Split a full pixels x frames matrix into chunks and push each."""
        M = np.asarray(M, dtype=float)
        if M.ndim != 2:
            raise ValueError("M must be 2-D")
        out = []
        for c0 in range(0, M.shape[1], self.chunk_frames):
            out.append(self.push(M[:, c0 : c0 + self.chunk_frames]))
        return out

    @property
    def background_rank(self) -> int:
        return 0 if self._U is None else self._U.shape[1]

    def assemble(self) -> RPCAResult:
        """Concatenate all chunk decompositions into one result."""
        if not self.keep_history:
            raise ValueError(
                "assemble() needs per-chunk history, but keep_history=False "
                "(bounded-memory mode); consume ChunkResults as they come"
            )
        if not self.chunks:
            raise ValueError("no chunks processed yet")
        L = np.hstack([c.L for c in self.chunks])
        S = np.hstack([c.S for c in self.chunks])
        return RPCAResult(
            L=L,
            S=S,
            n_iterations=sum(c.n_iterations for c in self.chunks),
            converged=all(c.converged for c in self.chunks),
        )
