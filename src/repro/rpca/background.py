"""End-to-end stationary-video background subtraction (Section VI).

Wraps the pipeline of Figure 10/11: video -> tall-skinny matrix ->
Robust PCA -> background (low-rank) and foreground (sparse) videos, with
quality metrics against the generator's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ialm import RPCAResult, rpca_ialm
from .svt import SVDFunc
from .video import SyntheticVideo, matrix_to_frames

__all__ = ["BackgroundSubtraction", "subtract_background", "foreground_f1"]


@dataclass
class BackgroundSubtraction:
    """Separated video plus recovery metrics."""

    video: SyntheticVideo
    result: RPCAResult

    @property
    def background(self) -> np.ndarray:
        """Recovered background frames (n_frames, height, width)."""
        return matrix_to_frames(self.result.L, self.video.height, self.video.width)

    @property
    def foreground(self) -> np.ndarray:
        """Recovered foreground frames (n_frames, height, width)."""
        return matrix_to_frames(self.result.S, self.video.height, self.video.width)

    @property
    def background_error(self) -> float:
        """Relative error of the recovered background vs ground truth."""
        denom = np.linalg.norm(self.video.L)
        return float(np.linalg.norm(self.result.L - self.video.L) / denom)

    @property
    def foreground_error(self) -> float:
        denom = max(np.linalg.norm(self.video.S), 1e-30)
        return float(np.linalg.norm(self.result.S - self.video.S) / denom)


def foreground_f1(recovered_S: np.ndarray, true_S: np.ndarray, threshold: float = 0.05) -> float:
    """F1 score of the recovered foreground support against ground truth."""
    rec = np.abs(recovered_S) > threshold
    true = np.abs(true_S) > threshold
    tp = np.count_nonzero(rec & true)
    fp = np.count_nonzero(rec & ~true)
    fn = np.count_nonzero(~rec & true)
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def subtract_background(
    video: SyntheticVideo,
    tol: float = 1e-6,
    max_iter: int = 200,
    svd: SVDFunc | None = None,
    policy=None,
) -> BackgroundSubtraction:
    """Run Robust PCA background subtraction on a (synthetic) video.

    ``policy`` (an :class:`~repro.runtime.policy.ExecutionPolicy`) builds
    a rank-adaptive SVT configured with it when no explicit ``svd`` hook
    is given.
    """
    if svd is None and policy is not None:
        from .adaptive import AdaptiveSVT

        svd = AdaptiveSVT(policy=policy)
    result = rpca_ialm(video.M, tol=tol, max_iter=max_iter, svd=svd)
    return BackgroundSubtraction(video=video, result=result)
