"""Rank-adaptive singular value thresholding.

The full thin SVD of Section VI computes all ``n`` singular triplets each
iteration, but the threshold keeps only a handful (the background is
rank ~1-3).  The rank-adaptive variant predicts the surviving rank from
the previous iteration, computes a randomized partial SVD of slightly
larger rank (one TSQR of a thin sampled matrix — cheap in exactly this
library's terms), and falls back to the full SVD only when the
prediction was too small.  A standard optimization in modern RPCA codes
(e.g. the inexact-ALM reference implementation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.randomized_svd import _RSVD_DEFAULT, randomized_svd
from repro.runtime.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.core.ts_svd import tall_skinny_svd
from repro.verify.guards import validate_matrix

from .shrinkage import shrink

__all__ = ["AdaptiveSVT"]


@dataclass
class AdaptiveSVT:
    """Stateful SVT operator that tracks the rank across iterations.

    Callable with the same ``(X, tau) -> (L, rank)`` contract as
    :func:`repro.rpca.svt.singular_value_threshold`, so it plugs into
    :func:`repro.rpca.ialm.rpca_ialm` via the ``svd`` hook or directly.

    Execution is configured by ``policy`` (an
    :class:`~repro.runtime.policy.ExecutionPolicy`); the ``batched`` /
    ``workers`` / ``nonfinite`` fields are deprecation shims that build
    one, and after construction they read back as plain values resolved
    from the policy.
    """

    buffer: int = 5  # extra singular triplets beyond the predicted rank
    max_tries: int = 3
    seed: int = 0
    batched: bool = UNSET  # (deprecated) compact-WY TSQR inside the SVD
    workers: int | None = UNSET  # (deprecated) thread the TSQR Q formation
    nonfinite: str = UNSET  # (deprecated) input guard policy
    policy: ExecutionPolicy | None = None
    predicted_rank: int = 1
    full_svd_calls: int = 0
    partial_svd_calls: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.buffer < 1 or self.max_tries < 1:
            raise ValueError("buffer and max_tries must be >= 1")
        self.policy = resolve_policy(
            "AdaptiveSVT",
            self.policy,
            batched=self.batched,
            workers=self.workers,
            nonfinite=self.nonfinite,
            default=_RSVD_DEFAULT,
        )
        # Back-fill the legacy fields so attribute reads keep working.
        self.batched = self.policy.uses_batched
        self.workers = self.policy.workers
        self.nonfinite = self.policy.nonfinite
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, X: np.ndarray, tau: float) -> tuple[np.ndarray, int]:
        X = validate_matrix(
            X, where="AdaptiveSVT", nonfinite=self.policy.nonfinite, dtype=np.float64
        )
        m, n = X.shape
        k = min(self.predicted_rank + self.buffer, min(m, n))
        for _ in range(self.max_tries):
            if k >= min(m, n):
                break
            U, s, Vt = randomized_svd(
                X,
                k=k,
                rng=self._rng,
                policy=self.policy.with_nonfinite("propagate"),
            )
            if s.size and s[-1] <= tau:
                # The smallest computed value is already below the
                # threshold: nothing surviving was truncated away.
                s_thr = shrink(s, tau)
                rank = int(np.count_nonzero(s_thr))
                self.predicted_rank = max(rank, 1)
                self.partial_svd_calls += 1
                L = (U[:, :rank] * s_thr[:rank]) @ Vt[:rank]
                return L, rank
            k = min(2 * k, min(m, n))
        # Fall back to the exact thin SVD.
        U, s, Vt = tall_skinny_svd(X) if m >= n else _wide_svd(X)
        s_thr = shrink(s, tau)
        rank = int(np.count_nonzero(s_thr))
        self.predicted_rank = max(rank, 1)
        self.full_svd_calls += 1
        L = (U[:, :rank] * s_thr[:rank]) @ Vt[:rank]
        return L, rank


def _wide_svd(X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    U, s, Vt = tall_skinny_svd(X.T)
    return Vt.T, s, U.T
