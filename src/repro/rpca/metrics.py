"""Quality metrics for background-subtraction output.

The paper evaluates visually (Figure 10); with a synthetic generator we
can score recovery quantitatively: PSNR of the recovered background,
and ROC-AUC of the foreground detection (|S| as the detection score
against the ground-truth support).
"""

from __future__ import annotations

import numpy as np

__all__ = ["psnr", "foreground_roc_auc", "support_precision_recall"]


def psnr(estimate: np.ndarray, reference: np.ndarray, peak: float | None = None) -> float:
    """Peak signal-to-noise ratio in dB (inf for an exact match)."""
    estimate = np.asarray(estimate, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if estimate.shape != reference.shape:
        raise ValueError("shapes must match")
    mse = float(np.mean((estimate - reference) ** 2))
    if mse == 0.0:
        return float("inf")
    if peak is None:
        peak = float(np.abs(reference).max())
        if peak == 0.0:
            peak = 1.0
    return float(10.0 * np.log10(peak * peak / mse))


def foreground_roc_auc(S_recovered: np.ndarray, S_true: np.ndarray, threshold: float = 1e-6) -> float:
    """Area under the ROC curve for foreground detection.

    Uses ``|S_recovered|`` as the per-pixel score and the true support as
    labels, computed via the Mann-Whitney rank statistic (exact AUC).
    """
    score = np.abs(np.asarray(S_recovered, dtype=float)).ravel()
    labels = (np.abs(np.asarray(S_true, dtype=float)) > threshold).ravel()
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("need both foreground and background pixels for AUC")
    order = np.argsort(score, kind="mergesort")
    ranks = np.empty(labels.size, dtype=float)
    ranks[order] = np.arange(1, labels.size + 1)
    # Tie correction: average ranks within equal-score groups.
    sorted_scores = score[order]
    i = 0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + 1 + j + 1)
        i = j + 1
    rank_sum_pos = float(ranks[labels].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def support_precision_recall(
    S_recovered: np.ndarray,
    S_true: np.ndarray,
    threshold: float = 0.05,
) -> tuple[float, float]:
    """(precision, recall) of the thresholded foreground support."""
    rec = np.abs(np.asarray(S_recovered)) > threshold
    true = np.abs(np.asarray(S_true)) > threshold
    tp = float(np.count_nonzero(rec & true))
    fp = float(np.count_nonzero(rec & ~true))
    fn = float(np.count_nonzero(~rec & true))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return precision, recall
