"""Robust PCA for stationary-video background subtraction (Section VI).

The motivating application: a surveillance clip becomes a tall-skinny
matrix (one column per frame), decomposed into a low-rank background and
sparse foreground by l1-regularized nuclear-norm minimization, where the
per-iteration SVD runs through this library's QR engines.
"""

from .adaptive import AdaptiveSVT
from .background import BackgroundSubtraction, foreground_f1, subtract_background
from .metrics import foreground_roc_auc, psnr, support_precision_recall
from .online import ChunkResult, OnlineRPCA
from .ialm import RPCAResult, rpca_ialm
from .shrinkage import shrink
from .svt import singular_value_threshold
from .timing import ITERATION_ENGINES, RPCAIterationModel
from .video import SyntheticVideo, frames_to_matrix, generate_video, matrix_to_frames

__all__ = [
    "AdaptiveSVT",
    "BackgroundSubtraction",
    "foreground_roc_auc",
    "psnr",
    "support_precision_recall",
    "ChunkResult",
    "OnlineRPCA",
    "foreground_f1",
    "subtract_background",
    "RPCAResult",
    "rpca_ialm",
    "shrink",
    "singular_value_threshold",
    "ITERATION_ENGINES",
    "RPCAIterationModel",
    "SyntheticVideo",
    "frames_to_matrix",
    "generate_video",
    "matrix_to_frames",
]
