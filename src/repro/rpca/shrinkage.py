"""Scalar shrinkage (soft thresholding) — the sparsity operator of Robust PCA.

"A shrinkage operation (pushing the values of the matrix towards zero) is
done on S0 to enforce sparsity" (Section VI-C).  This is the proximal
operator of the l1 norm.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shrink"]


def shrink(X: np.ndarray, tau: float) -> np.ndarray:
    """Elementwise soft threshold: ``sign(x) * max(|x| - tau, 0)``."""
    if tau < 0:
        raise ValueError("shrinkage threshold must be non-negative")
    X = np.asarray(X, dtype=float)
    return np.sign(X) * np.maximum(np.abs(X) - tau, 0.0)
