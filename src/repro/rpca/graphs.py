"""One Robust-PCA/IALM iteration as task-graph layers.

The Section VI-C loop body — singular-value threshold via QR (Figure
11), l1 shrinkage, dual update — compiled into the shared
:class:`~repro.graph.highlevel.TaskGraph` so the iteration runs on the
same executor (and gets the same per-task obs spans) as CAQR, rSVD and
the sharded reduction:

* ``qr`` — form ``X = M - S + Y/mu`` and factor it with the tall-skinny
  QR engine (the step worth 30x end to end per Table II);
* ``svt`` — small Jacobi SVD of R, soft-threshold, reassemble ``L``;
* ``shrink`` — ``S = shrink(M - L + Y/mu, lam/mu)``;
* ``residual`` — ``M - L - S``, the dual update ``Y += mu·residual``
  and the penalty growth ``mu = min(mu·rho, mu_max)``.

The tasks replicate, operation for operation, what
:func:`repro.rpca.ialm.rpca_ialm` does through
:func:`~repro.rpca.svt.singular_value_threshold` /
:func:`~repro.core.ts_svd.tall_skinny_svd` with the default engines —
``rpca_ialm(..., engine="graph")`` is therefore bit-identical to the
direct loop.  Registered as the ``rpca_ialm`` producer in
:data:`repro.graph.highlevel.PRODUCERS`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.jacobi_svd import jacobi_svd
from repro.core.tsqr import tsqr_qr

from .shrinkage import shrink

__all__ = ["emit_ialm_layers", "run_ialm_graph"]


def emit_ialm_layers(m: int, n: int, bind: dict | None = None):
    """Compile one IALM iteration into qr/svt/shrink/residual layers.

    The graph is a four-task chain; emitted once per decomposition and
    re-run every iteration (the closures read their operands from the
    ``bind`` state each time, so no re-emission is needed as ``mu``
    grows).  Without ``bind`` the graph is structural (``fn=None``).
    ``bind`` must hold ``M``/``S``/``L``/``Y``/``mu``/``lam`` plus the
    constants ``rho``/``mu_max``; the tasks update ``L``, ``S``, ``Y``,
    ``mu`` and deposit ``rank`` and ``res_norm``.
    """
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    if m < n:
        raise ValueError("the IALM graph factors tall matrices (m >= n); transpose first")
    from repro.graph.highlevel import TaskGraph

    st = bind

    def payload(f: Callable[[], None]):
        return f if st is not None else None

    def do_qr() -> None:
        X = st["M"] - st["S"] + st["Y"] / st["mu"]
        st["Q"], st["R"] = tsqr_qr(X)

    def do_svt() -> None:
        tau = 1.0 / st["mu"]
        U_small, s, Vt = jacobi_svd(st["R"])
        U = st["Q"] @ U_small
        s_thr = shrink(s, tau)
        rank = int(np.count_nonzero(s_thr))
        st["L"] = (U[:, :rank] * s_thr[:rank]) @ Vt[:rank]
        st["rank"] = rank

    def do_shrink() -> None:
        st["S"] = shrink(st["M"] - st["L"] + st["Y"] / st["mu"], st["lam"] / st["mu"])

    def do_residual() -> None:
        residual_mat = st["M"] - st["L"] - st["S"]
        st["Y"] = st["Y"] + st["mu"] * residual_mat
        st["mu"] = min(st["mu"] * st["rho"], st["mu_max"])
        st["res_norm"] = float(np.linalg.norm(residual_mat))

    tg = TaskGraph(name=f"rpca_ialm[{m}x{n}]")
    prev = tg.add_task("qr", ("qr",), payload(do_qr))
    prev = tg.add_task("svt", ("svt",), payload(do_svt), deps=[prev])
    prev = tg.add_task("shrink", ("shrink",), payload(do_shrink), deps=[prev])
    tg.add_task("residual", ("residual",), payload(do_residual), deps=[prev])
    return tg


def run_ialm_graph(
    M: np.ndarray,
    *,
    Y: np.ndarray,
    S: np.ndarray,
    L: np.ndarray,
    mu: float,
    mu_max: float,
    lam: float,
    rho: float,
    tol: float,
    max_iter: int,
    norm_M: float,
    callback: Callable[[int, float], None] | None = None,
):
    """The IALM loop with each iteration executed as a task graph.

    Called by :func:`repro.rpca.ialm.rpca_ialm` (``engine="graph"``)
    after the shared initialization; returns the same
    :class:`~repro.rpca.ialm.RPCAResult`, bit-identical to the direct
    loop with the default SVT pipeline.
    """
    from repro.graph.executor import run_task_graph
    from repro.rpca.ialm import RPCAResult

    st: dict = {
        "M": M,
        "Y": Y,
        "S": S,
        "L": L,
        "mu": mu,
        "mu_max": mu_max,
        "lam": lam,
        "rho": rho,
    }
    tg = emit_ialm_layers(*M.shape, bind=st)
    residuals: list[float] = []
    ranks: list[int] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        run_task_graph(tg, instrument=True)
        res = float(st["res_norm"] / norm_M)
        residuals.append(res)
        ranks.append(st["rank"])
        if callback is not None:
            callback(it, res)
        if res < tol:
            converged = True
            break
    return RPCAResult(
        L=st["L"],
        S=st["S"],
        n_iterations=it,
        converged=converged,
        residuals=residuals,
        ranks=ranks,
    )
