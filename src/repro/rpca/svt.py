"""Singular value thresholding — the low-rank operator of Robust PCA.

"The algorithm thresholds (sets to zero) the smallest singular values of
L0 in order to make it low rank" (Section VI-C).  The SVD is computed via
QR (Section VI-B): any of the library's QR engines can be plugged in,
which is the knob Table II turns.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.ts_svd import tall_skinny_svd

from .shrinkage import shrink

__all__ = ["singular_value_threshold"]

SVDFunc = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray, np.ndarray]]


def singular_value_threshold(
    X: np.ndarray,
    tau: float,
    svd: SVDFunc | None = None,
) -> tuple[np.ndarray, int]:
    """Proximal operator of the nuclear norm.

    Computes the thin SVD of ``X`` (via QR by default — the Figure 11
    pipeline), soft-thresholds the singular values by ``tau`` and
    reassembles.  Returns ``(L, rank)`` where ``rank`` is the number of
    singular values surviving the threshold.
    """
    if tau < 0:
        raise ValueError("threshold must be non-negative")
    svd_fn = svd if svd is not None else tall_skinny_svd
    U, s, Vt = svd_fn(X)
    s_thr = shrink(s, tau)
    rank = int(np.count_nonzero(s_thr))
    L = (U[:, :rank] * s_thr[:rank]) @ Vt[:rank]
    return L, rank
