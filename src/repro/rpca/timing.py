"""Per-iteration timing model of the three Robust PCA implementations.

Table II compares iterations/second on the 110,592 x 100 ViSOR matrix:

=================  ==============  ===================
SVD engine         platform        iterations / second
=================  ==============  ===================
MKL SVD            4-core Core i7  0.9
BLAS2 QR           GTX480          8.7
CAQR               GTX480          27.0
=================  ==============  ===================

Each Robust PCA iteration (Figure 11) is: SVD of L (via QR on the GPU
versions: factor + explicit Q + small SVD of R on the CPU + ``Q @ U``),
the singular-value threshold reassembly, the shrinkage of S, and the dual
update — the last three are bandwidth-bound elementwise passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.blas2_gpu import BLAS2GPUQR
from repro.baselines.blocked_gpu import gemm_rate_gflops
from repro.baselines.cpu import MKLSVD
from repro.caqr_gpu import simulate_caqr
from repro.gpusim.device import (
    COREI7_4CORE,
    GTX480,
    PCIE_GEN2,
    CPUSpec,
    DeviceSpec,
    PCIeLink,
)
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

__all__ = ["RPCAIterationModel", "ITERATION_ENGINES", "EXTENSION_ENGINES"]

ITERATION_ENGINES = ("mkl_svd", "blas2_qr", "caqr")

#: Engines beyond the paper's Table II (library extensions).
EXTENSION_ENGINES = ("caqr_adaptive",)

#: Elementwise passes over the full matrix per RPCA iteration:
#: M-S+Y/mu (3 reads 1 write), shrink input + output, dual update — about
#: ten matrix-sized streams.
_ELEMENTWISE_PASSES = 10.0


@dataclass
class RPCAIterationModel:
    """Time one Robust PCA iteration under a chosen SVD engine."""

    engine: str
    gpu: DeviceSpec = GTX480
    cpu: CPUSpec = COREI7_4CORE
    link: PCIeLink = PCIE_GEN2
    caqr_config: KernelConfig = REFERENCE_CONFIG
    adaptive_rank: int = 3  # predicted background rank (caqr_adaptive)
    breakdown: dict[str, float] = field(default_factory=dict)

    def _small_svd_seconds(self, n: int) -> float:
        """SVD of the n x n R on the CPU ("done on the CPU using MKL")."""
        flops = 25.0 * n**3  # Golub-Kahan + iterations on a small square
        return flops / (self.cpu.peak_gflops * 1e9 * 0.3)

    def _elementwise_gpu(self, m: int, n: int) -> float:
        bytes_moved = _ELEMENTWISE_PASSES * m * n * 4.0
        return bytes_moved / (self.gpu.dram_bw_gbs * 1e9) + 6 * self.gpu.kernel_launch_us * 1e-6

    def _elementwise_cpu(self, m: int, n: int) -> float:
        bytes_moved = _ELEMENTWISE_PASSES * m * n * 4.0
        return bytes_moved / (self.cpu.mem_bw_gbs * 1e9)

    def iteration_seconds(self, m: int, n: int) -> float:
        """Model one full RPCA iteration on an ``m x n`` video matrix."""
        if m < n:
            raise ValueError("video matrices are tall-skinny (m >= n)")
        self.breakdown = {}
        if self.engine == "mkl_svd":
            svd = MKLSVD(cpu=self.cpu).simulate(m, n)
            self.breakdown["svd"] = svd.seconds
            self.breakdown["elementwise"] = self._elementwise_cpu(m, n)
            # Threshold reassembly (U * s) @ Vt on the CPU.
            self.breakdown["reassemble"] = (
                2.0 * m * n * n / (self.cpu.peak_gflops * 1e9 * self.cpu.gemm_eff)
            )
            return sum(self.breakdown.values())

        if self.engine == "blas2_qr":
            qr = BLAS2GPUQR(gpu=self.gpu).simulate(m, n)
            self.breakdown["qr"] = qr.seconds
            self.breakdown["form_q"] = qr.seconds  # SORGQR streams the same data
        elif self.engine == "caqr":
            res = simulate_caqr(m, n, self.caqr_config, self.gpu)
            self.breakdown["qr"] = res.seconds
            self.breakdown["form_q"] = res.seconds  # Section V-C: as efficient
        elif self.engine == "caqr_adaptive":
            # Rank-adaptive SVT (library extension): a randomized partial
            # SVD needs one gemm sample (m x n @ n x ell), a CAQR of the
            # m x ell sampled matrix (ell = rank + buffer << n), the
            # small factors, and the reassembly gemms.
            ell = self.adaptive_rank + 5
            sample_flops = 2.0 * m * n * ell
            gemm_rate0 = gemm_rate_gflops(self.gpu, n) * 1e9
            self.breakdown["sample_gemm"] = sample_flops / gemm_rate0
            res = simulate_caqr(m, ell, self.caqr_config, self.gpu)
            self.breakdown["qr"] = res.seconds
            self.breakdown["form_q"] = res.seconds
            # B = Q^T A (ell x n) on the GPU.
            self.breakdown["project_gemm"] = 2.0 * m * ell * n / gemm_rate0
            self.breakdown["small_svd"] = self._small_svd_seconds(n)  # ell x n SVD on CPU
            gemm_rate = gemm_rate_gflops(self.gpu, ell) * 1e9
            self.breakdown["gemm"] = 2.0 * (2.0 * m * ell * ell) / gemm_rate
            self.breakdown["elementwise"] = self._elementwise_gpu(m, n)
            self.breakdown["transfer"] = 2.0 * self.link.transfer_seconds(ell * n * 4.0)
            return sum(self.breakdown.values())
        else:
            raise ValueError(f"unknown engine {self.engine!r}; choose from {ITERATION_ENGINES}")

        # R (n x n) down to the CPU, U back up.
        self.breakdown["transfer"] = 2.0 * self.link.transfer_seconds(n * n * 4.0)
        self.breakdown["small_svd"] = self._small_svd_seconds(n)
        # U' = Q @ U (m x n @ n x n) and the threshold reassembly, on the GPU.
        gemm_rate = gemm_rate_gflops(self.gpu, n) * 1e9
        self.breakdown["gemm"] = 2.0 * (2.0 * m * n * n) / gemm_rate
        self.breakdown["elementwise"] = self._elementwise_gpu(m, n)
        return sum(self.breakdown.values())

    def iterations_per_second(self, m: int = 110_592, n: int = 100) -> float:
        """The Table II metric (defaults: the ViSOR matrix size)."""
        return 1.0 / self.iteration_seconds(m, n)
