"""Synthetic surveillance video generator (the ViSOR substitution).

The paper's benchmark video comes from the ViSOR database: 100 frames of
288x384 pixels, giving a 110,592 x 100 matrix where "each column contains
all pixels in a frame".  That data is not redistributable here, so this
module synthesizes videos with the same structure Robust PCA exploits:

* a static background (smooth gradient + fixed texture) with optional
  slow illumination drift — the low-rank component L0;
* sparse moving foreground objects (pedestrian-like rectangles with
  random walks) — the sparse component S0;
* optional pixel noise.

Because the generator returns the ground-truth L0 and S0, the
reproduction can validate recovery *more* strongly than the paper (which
could only inspect output frames visually).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SyntheticVideo", "generate_video", "frames_to_matrix", "matrix_to_frames"]


@dataclass
class SyntheticVideo:
    """A generated surveillance clip and its ground-truth decomposition."""

    height: int
    width: int
    n_frames: int
    M: np.ndarray  # (pixels, frames) observed video matrix
    L: np.ndarray  # ground-truth low-rank background
    S: np.ndarray  # ground-truth sparse foreground
    noise: np.ndarray = field(repr=False, default=None)

    @property
    def n_pixels(self) -> int:
        return self.height * self.width

    def frame(self, t: int) -> np.ndarray:
        """Observed frame ``t`` as a 2-D image."""
        return self.M[:, t].reshape(self.height, self.width)

    def foreground_mask(self, threshold: float = 1e-6) -> np.ndarray:
        """Boolean mask of the true foreground support."""
        return np.abs(self.S) > threshold


def frames_to_matrix(frames: np.ndarray) -> np.ndarray:
    """Stack (n_frames, height, width) frames into the paper's tall-skinny
    (pixels, frames) matrix — one column per frame."""
    if frames.ndim != 3:
        raise ValueError("frames must be (n_frames, height, width)")
    t, h, w = frames.shape
    return frames.reshape(t, h * w).T.copy()


def matrix_to_frames(M: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`frames_to_matrix`."""
    if M.shape[0] != height * width:
        raise ValueError("matrix rows must equal height*width")
    return M.T.reshape(-1, height, width).copy()


def _background(height: int, width: int, rng: np.random.Generator) -> np.ndarray:
    """A smooth, textured static scene in [0, 1]."""
    y = np.linspace(0, 1, height)[:, None]
    x = np.linspace(0, 1, width)[None, :]
    gradient = 0.4 + 0.3 * y + 0.2 * x
    texture = 0.08 * np.sin(8 * np.pi * x + 2.0) * np.cos(6 * np.pi * y)
    blobs = 0.1 * np.exp(-(((y - 0.7) ** 2) / 0.02 + ((x - 0.3) ** 2) / 0.05))
    return np.clip(gradient + texture + blobs, 0.0, 1.0)


def generate_video(
    height: int = 36,
    width: int = 48,
    n_frames: int = 40,
    n_objects: int = 3,
    object_size: tuple[int, int] = (8, 5),
    object_intensity: float = 0.6,
    illumination_drift: float = 0.05,
    noise_std: float = 0.0,
    seed: int = 0,
) -> SyntheticVideo:
    """Generate a synthetic surveillance clip.

    Defaults give a 1728 x 40 matrix — the paper's geometry scaled down
    for fast tests; pass ``height=288, width=384, n_frames=100`` for the
    full 110,592 x 100 problem.

    Args:
        n_objects: number of moving foreground objects.
        object_size: (height, width) of each object in pixels.
        object_intensity: additive brightness of the foreground.
        illumination_drift: amplitude of the slow background illumination
            change (adds a second low-rank mode, as real scenes have).
        noise_std: standard deviation of additive Gaussian pixel noise.
    """
    if height < 4 or width < 4 or n_frames < 2:
        raise ValueError("video must be at least 4x4 pixels and 2 frames")
    rng = np.random.default_rng(seed)
    bg = _background(height, width, rng).ravel()
    drift = 1.0 + illumination_drift * np.sin(np.linspace(0, 2 * np.pi, n_frames))
    L = np.outer(bg, drift)  # rank <= 2 background

    S = np.zeros((height * width, n_frames))
    oh, ow = object_size
    oh, ow = min(oh, height), min(ow, width)
    for _ in range(n_objects):
        # Each object enters at a random edge position and walks across.
        y = float(rng.integers(0, max(height - oh, 1)))
        x = float(rng.integers(0, max(width - ow, 1)))
        vy = rng.uniform(-1.0, 1.0)
        vx = rng.uniform(0.5, 2.0) * rng.choice([-1.0, 1.0])
        intensity = object_intensity * rng.uniform(0.7, 1.3)
        for t in range(n_frames):
            yi, xi = int(round(y)), int(round(x))
            if 0 <= yi <= height - oh and 0 <= xi <= width - ow:
                frame = np.zeros((height, width))
                frame[yi : yi + oh, xi : xi + ow] = intensity
                S[:, t] += frame.ravel()
            y += vy + rng.normal(0, 0.3)
            x += vx + rng.normal(0, 0.3)
            y = float(np.clip(y, 0, height - oh))
            if x < -ow or x > width:
                x = float(rng.integers(0, max(width - ow, 1)))
    noise = noise_std * rng.standard_normal((height * width, n_frames)) if noise_std > 0 else np.zeros_like(L)
    M = L + S + noise
    return SyntheticVideo(height=height, width=width, n_frames=n_frames, M=M, L=L, S=S, noise=noise)
