"""Sharded multi-device CAQR: the parallel CAQR of Demmel et al. (arXiv
0809.2407), executed over P simulated ranks.

The tall matrix is partitioned into P contiguous row shards.  Each rank
factors its shard with the *existing* single-process CAQR machinery
(panel loop + batched compact-WY kernels, :func:`repro.core.caqr._caqr_serial`
under the shard's :class:`~repro.runtime.policy.ExecutionPolicy`
geometry), producing a local upper-trapezoidal R.  The per-rank R
factors are then eliminated up a configurable fan-in tree over
:class:`~repro.distributed.comm.FakeComm`: at every round, groups of up
to ``fanin`` surviving ranks send their packed triangles to the group's
first member, which stacks and re-factors them — ``ceil(log_fanin P)``
rounds on the critical path, ``~n(n+1)/2`` words per message.

Inter-rank traffic is charged through a calibrated alpha-beta
:class:`~repro.distributed.comm.InterconnectModel`, the same accounting
discipline :mod:`repro.gpusim` applies to global-memory bytes.  The
whole execution is reachable as ``ExecutionPolicy(path="sharded",
shards=P, fanin=...)`` through every policy-accepting entry point, and
:func:`build_shard_schedule` precomputes the row deal plus the
reduction schedule once per shape so :class:`repro.runtime.plan.QRPlan`
replays it with zero re-planning.

Numerics contract: the communicator moves packed upper-trapezoid
entries bit-exactly, so the sharded R is **bit-identical** to the same
shard/reduction tree executed in a single process
(:func:`sharded_reference_r`), and agrees with the single-process CAQR
paths to the usual sign-canonicalized backward-error tolerance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.householder import geqr2, orm2r
from repro.obs import tracer as _obs

from .comm import FakeComm, InterconnectModel

__all__ = [
    "ShardSchedule",
    "ShardedCAQRFactors",
    "build_shard_schedule",
    "emit_sharded_layers",
    "run_sharded",
    "run_sharded_graph",
    "sharded_reference_r",
]


@dataclass(frozen=True)
class ShardSchedule:
    """Precomputed shard row-deal + fan-in reduction schedule for a shape.

    ``rows[r]`` is rank ``r``'s contiguous ``[start, stop)`` row range.
    ``rounds`` is the reduction tree, one level per entry; each level is
    a tuple of ``(dst, srcs)`` merges — ``srcs`` send their current R to
    ``dst``, which stacks ``[R_dst, R_src0, ...]`` and re-factors.  All
    merges within a level touch disjoint ranks, so a level is one
    communication round.
    """

    m: int
    n: int
    shards: int  # effective rank count (every rank owns >= 1 row)
    fanin: int
    rows: tuple[tuple[int, int], ...]
    rounds: tuple[tuple[tuple[int, tuple[int, ...]], ...], ...]

    @property
    def levels(self) -> int:
        """Reduction rounds on the critical path (= ceil(log_fanin P))."""
        return len(self.rounds)

    def fingerprint(self) -> str:
        """SHA-256 (truncated) of the row deal + reduction schedule."""
        h = hashlib.sha256()
        h.update(repr((self.m, self.n, self.shards, self.fanin)).encode())
        h.update(repr(self.rows).encode())
        h.update(repr(self.rounds).encode())
        return h.hexdigest()[:16]

    def describe(self) -> str:
        """One human-readable line per reduction round."""
        lines = [
            f"shard schedule {self.m}x{self.n}: {self.shards} rank(s), "
            f"fan-in {self.fanin}, {self.levels} round(s)"
        ]
        for lvl, merges in enumerate(self.rounds):
            parts = ", ".join(
                f"{list(srcs)}->{dst}" for dst, srcs in merges
            )
            lines.append(f"  round {lvl}: {parts}")
        return "\n".join(lines)


def build_shard_schedule(m: int, n: int, shards: int, fanin: int = 2) -> ShardSchedule:
    """Deal ``m`` rows across ``shards`` ranks and build the fan-in tree.

    Rows are dealt in contiguous slices (the first ``m % P`` ranks get
    one extra row).  The effective rank count is clamped so every rank
    owns at least one row — sharding a 3-row matrix across 8 ranks runs
    3 ranks, not 8 with 5 idle.  The reduction tree groups ``fanin``
    consecutive survivors per merge until one rank holds the global R.
    """
    if m < 0 or n < 0:
        raise ValueError("matrix dimensions must be non-negative")
    if shards < 1:
        raise ValueError("need at least one shard")
    if fanin < 2:
        raise ValueError("fan-in must be at least 2")
    p = max(1, min(shards, m))
    base, extra = divmod(m, p)
    rows = []
    start = 0
    for r in range(p):
        h = base + (1 if r < extra else 0)
        rows.append((start, start + h))
        start += h
    rounds: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
    survivors = list(range(p))
    while len(survivors) > 1:
        level = []
        nxt = []
        for i in range(0, len(survivors), fanin):
            group = survivors[i : i + fanin]
            dst = group[0]
            nxt.append(dst)
            if len(group) > 1:
                level.append((dst, tuple(group[1:])))
        if level:
            rounds.append(tuple(level))
        survivors = nxt
    return ShardSchedule(
        m=m, n=n, shards=p, fanin=fanin, rows=tuple(rows), rounds=tuple(rounds)
    )


@dataclass
class _ShardTreeNode:
    """Householder factor of one fan-in merge of stacked R factors."""

    level: int
    dst: int
    srcs: tuple[int, ...]
    heights: tuple[int, ...]  # R rows contributed by dst, then each src
    VR: np.ndarray
    tau: np.ndarray


@dataclass
class ShardedCAQRFactors:
    """Implicit Q and explicit R of a sharded CAQR factorization.

    Duck-type compatible with :class:`~repro.core.caqr.CAQRFactors`
    where the entry points need it (``R``, ``form_q``): the implicit Q
    is the composition of every rank's local CAQR factors with the
    fan-in tree eliminations.
    """

    m: int
    n: int
    schedule: ShardSchedule
    comm: FakeComm | None
    local: list  # per-rank CAQRFactors
    tree: list[_ShardTreeNode]
    R: np.ndarray  # min(m, n) x n upper trapezoidal (held by rank 0)

    @property
    def shards(self) -> int:
        return self.schedule.shards

    def network_seconds(self, interconnect: InterconnectModel) -> float:
        """Modeled critical-path communication time of this run."""
        if self.comm is None:
            return 0.0
        return interconnect.seconds(
            self.comm.critical_path_messages(), self.comm.critical_path_words()
        )

    def form_q(self) -> np.ndarray:
        """Form the explicit thin ``m x min(m, n)`` orthonormal Q.

        Walks the fan-in tree top-down (mirroring the elimination
        order), then applies each rank's local implicit Q to its row
        slice.  All temporaries are allocated in the factorization's
        working dtype, so float32 survives reconstruction.
        """
        k = min(self.m, self.n)
        dtype = self.R.dtype
        Q = np.zeros((self.m, k), dtype=dtype)
        if k == 0:
            return Q
        # slots[r]: rank r's coefficient block (its R rows x k).
        slots: dict[int, np.ndarray] = {0: np.eye(k, dtype=dtype)}
        for node in sorted(self.tree, key=lambda t: -t.level):
            cur = slots[node.dst]
            stacked = np.zeros((sum(node.heights), k), dtype=dtype)
            stacked[: cur.shape[0]] = cur
            orm2r(node.VR, node.tau, stacked, transpose=False)
            ofs = 0
            for rank, h in zip((node.dst,) + node.srcs, node.heights):
                slots[rank] = stacked[ofs : ofs + h]
                ofs += h
        for r, (s, e) in enumerate(self.schedule.rows):
            f = self.local[r]
            h = e - s
            block = np.zeros((h, k), dtype=dtype)
            kr = min(h, self.n)
            block[:kr] = slots[r][:kr]
            f.apply_q(block)
            Q[s:e] = block
        return Q


def _trapezoid_pack(R: np.ndarray) -> tuple[np.ndarray, tuple]:
    """Pack the nonzero (upper-trapezoid) entries of a ``k x n`` R."""
    idx = np.triu_indices(R.shape[0], 0, R.shape[1])
    return R[idx], idx


def _local_factor(A_shard: np.ndarray, policy) -> tuple:
    """One rank's local CAQR under the policy geometry.

    Returns ``(factors, R)`` with R upper-trapezoidal
    ``min(h, n) x n`` — the block the rank contributes to the tree.
    """
    from repro.core.caqr import _caqr_serial

    f = _caqr_serial(A_shard, policy)
    return f, np.triu(f.R)


def _reduce(
    schedule: ShardSchedule,
    current: dict[int, np.ndarray],
    comm: FakeComm | None,
    n: int,
    dtype,
) -> tuple[dict[int, np.ndarray], list[_ShardTreeNode]]:
    """Run the fan-in rounds; returns surviving R(s) and the tree factors.

    With a communicator, every source rank packs its trapezoid and
    sends it (tagged with the round index, so per-level critical-path
    accounting works); without one, the same arrays are handed over
    directly — the arithmetic is identical either way, which is the
    bit-identity contract :func:`sharded_reference_r` pins.
    """
    tree: list[_ShardTreeNode] = []
    for level, merges in enumerate(schedule.rounds):
        with _obs.span("shard.reduce", cat="shard", level=level, merges=len(merges)):
            for dst, srcs in merges:
                blocks = [current[dst]]
                heights = [current[dst].shape[0]]
                for src in srcs:
                    if comm is not None:
                        packed, idx = _trapezoid_pack(current[src])
                        comm.send(packed, src=src, dst=dst, tag=level)
                        received = comm.recv(src=src, dst=dst, tag=level)
                        Rs = np.zeros(current[src].shape, dtype=dtype)
                        Rs[idx] = received
                    else:
                        Rs = current[src]
                    blocks.append(Rs)
                    heights.append(Rs.shape[0])
                    del current[src]
                stacked = np.vstack(blocks)
                VR, tau = geqr2(stacked)
                kd = min(stacked.shape[0], n)
                tree.append(
                    _ShardTreeNode(
                        level=level,
                        dst=dst,
                        srcs=srcs,
                        heights=tuple(heights),
                        VR=VR,
                        tau=tau,
                    )
                )
                current[dst] = np.triu(VR[:kd, :])
    return current, tree


def emit_sharded_layers(schedule: ShardSchedule, bind: dict | None = None):
    """Compile a :class:`ShardSchedule` into task-graph layers.

    One ``local`` layer (per-rank CAQR, ``device="rank{r}"`` tags in the
    task info) plus one ``round{L}`` layer per fan-in reduction round —
    the schedule's rounds in layer form.  Keys are ``("local", r)`` and
    ``("merge", L, dst)``; each merge depends on the tasks currently
    holding the R of its destination and source ranks, so cross-round
    chains are explicit and rounds with disjoint ranks can overlap.
    Registered as the ``sharded_reduction`` producer in
    :data:`repro.graph.highlevel.PRODUCERS`.

    Without ``bind`` the graph is structural (``fn=None``) — the shape
    the CI fingerprint gate pins.  With ``bind`` (the state dict set up
    by :func:`run_sharded_graph`: ``A``, ``policy``, ``comm``, ``n``,
    ``dtype``, plus empty ``local`` / ``current`` / ``nodes`` dicts),
    tasks carry closures performing exactly the arithmetic of
    :func:`run_sharded` — merges within a round touch disjoint ranks, so
    any topological execution (threaded included) is race-free and
    bit-identical.
    """
    from repro.graph.highlevel import TaskGraph

    st = bind

    def payload(f):
        return f if st is not None else None

    def mk_local(r: int, s: int, e: int):
        def run() -> None:
            with _obs.span("shard.local", cat="shard", rank=r, rows=e - s):
                f, Rr = _local_factor(st["A"][s:e], st["policy"])
            st["local"][r] = f
            st["current"][r] = Rr

        return run

    def mk_merge(level: int, dst: int, srcs: tuple[int, ...]):
        def run() -> None:
            current = st["current"]
            comm = st["comm"]
            with _obs.span("shard.merge", cat="shard", level=level, rank=dst):
                blocks = [current[dst]]
                heights = [current[dst].shape[0]]
                for src in srcs:
                    if comm is not None:
                        packed, idx = _trapezoid_pack(current[src])
                        comm.send(packed, src=src, dst=dst, tag=level)
                        received = comm.recv(src=src, dst=dst, tag=level)
                        Rs = np.zeros(current[src].shape, dtype=st["dtype"])
                        Rs[idx] = received
                    else:
                        Rs = current[src]
                    blocks.append(Rs)
                    heights.append(Rs.shape[0])
                    del current[src]
                stacked = np.vstack(blocks)
                VR, tau = geqr2(stacked)
                kd = min(stacked.shape[0], st["n"])
                st["nodes"][(level, dst)] = _ShardTreeNode(
                    level=level,
                    dst=dst,
                    srcs=srcs,
                    heights=tuple(heights),
                    VR=VR,
                    tau=tau,
                )
                current[dst] = np.triu(VR[:kd, :])

        return run

    tg = TaskGraph(name=f"sharded[{schedule.m}x{schedule.n}]p{schedule.shards}f{schedule.fanin}")
    tg.add_layer("local")
    holder: dict[int, tuple] = {}
    for r, (s, e) in enumerate(schedule.rows):
        holder[r] = tg.add_task(
            "local", ("local", r), payload(mk_local(r, s, e)), rank=r, rows=(s, e),
            device=f"rank{r}",
        )
    for level, merges in enumerate(schedule.rounds):
        layer = tg.add_layer(f"round{level}")
        for dst, srcs in merges:
            holder[dst] = tg.add_task(
                layer,
                ("merge", level, dst),
                payload(mk_merge(level, dst, srcs)),
                deps=[holder[dst]] + [holder[s] for s in srcs],
                rank=dst,
                srcs=srcs,
                device=f"rank{dst}",
            )
    return tg


def run_sharded_graph(
    A: np.ndarray,
    policy,
    schedule: ShardSchedule | None = None,
    workers: int = 1,
) -> ShardedCAQRFactors:
    """:func:`run_sharded` compiled to a task graph and run on the shared
    executor (:func:`repro.graph.executor.run_task_graph`).

    Identical arithmetic merge for merge, so ``R`` (and the whole factor
    object) is bit-identical to the direct call; ``workers > 1`` runs
    independent local factorizations and disjoint merges concurrently.
    """
    m, n = A.shape
    if schedule is None:
        schedule = build_shard_schedule(m, n, policy.shards, policy.effective_fanin)
    from repro.graph.executor import run_task_graph

    comm = FakeComm(size=schedule.shards) if schedule.shards > 1 else None
    st: dict = {
        "A": A,
        "policy": policy,
        "comm": comm,
        "n": n,
        "dtype": A.dtype,
        "local": {},
        "current": {},
        "nodes": {},
    }
    with _obs.span(
        "sharded", cat="shard", m=m, n=n, shards=schedule.shards, fanin=schedule.fanin
    ):
        tg = emit_sharded_layers(schedule, bind=st)
        run_task_graph(tg, workers=workers)
        if comm is not None:
            _obs.counters(
                shard_messages=comm.total_messages,
                shard_words=int(comm.total_words),
            )
        current = st["current"]
        if current:
            R_root = current[0]
        else:  # m == 0: no ranks dealt, R is the empty trapezoid
            R_root = np.zeros((0, n), dtype=A.dtype)
        k = min(m, n)
        R = np.zeros((k, n), dtype=A.dtype)
        R[: R_root.shape[0]] = R_root[:k]
    # Reassemble in round order so the factor object matches the direct
    # driver's tree list regardless of which order the tasks ran in.
    tree = [
        st["nodes"][(level, dst)]
        for level, merges in enumerate(schedule.rounds)
        for dst, _srcs in merges
    ]
    local = [st["local"][r] for r in range(len(schedule.rows))]
    return ShardedCAQRFactors(
        m=m, n=n, schedule=schedule, comm=comm, local=local, tree=tree, R=R
    )


def run_sharded(A: np.ndarray, policy, schedule: ShardSchedule | None = None) -> ShardedCAQRFactors:
    """Factor an *already validated* matrix across ``policy.shards`` ranks.

    Called by the ``caqr`` entry point and :class:`~repro.runtime.plan.QRPlan`
    after the one public-boundary validation, mirroring
    :func:`repro.core.caqr._caqr_serial`.  Each rank's work and every
    reduction round is spanned (``rank=`` / ``level=`` tags) so traces
    attribute time per simulated device.
    """
    m, n = A.shape
    if schedule is None:
        schedule = build_shard_schedule(m, n, policy.shards, policy.effective_fanin)
    comm = FakeComm(size=schedule.shards) if schedule.shards > 1 else None
    with _obs.span(
        "sharded", cat="shard", m=m, n=n, shards=schedule.shards, fanin=schedule.fanin
    ):
        local = []
        current: dict[int, np.ndarray] = {}
        for r, (s, e) in enumerate(schedule.rows):
            with _obs.span("shard.local", cat="shard", rank=r, rows=e - s):
                f, Rr = _local_factor(A[s:e], policy)
            local.append(f)
            current[r] = Rr
        current, tree = _reduce(schedule, current, comm, n, A.dtype)
        if comm is not None:
            _obs.counters(
                shard_messages=comm.total_messages,
                shard_words=int(comm.total_words),
            )
        if current:
            R_root = current[0]
        else:  # m == 0: no ranks dealt, R is the empty trapezoid
            R_root = np.zeros((0, n), dtype=A.dtype)
        k = min(m, n)
        R = np.zeros((k, n), dtype=A.dtype)
        R[: R_root.shape[0]] = R_root[:k]
    return ShardedCAQRFactors(
        m=m, n=n, schedule=schedule, comm=comm, local=local, tree=tree, R=R
    )


def sharded_reference_r(A: np.ndarray, policy, schedule: ShardSchedule | None = None) -> np.ndarray:
    """The single-process reference R for a sharded run: same shard
    partition, same local factorizations, same fan-in tree — no
    communicator.  ``run_sharded(...).R`` must equal this **bitwise**;
    any difference means the communication layer (packing, transport,
    reconstruction) perturbed the numerics.
    """
    A = np.asarray(A)
    m, n = A.shape
    if schedule is None:
        schedule = build_shard_schedule(m, n, policy.shards, policy.effective_fanin)
    current: dict[int, np.ndarray] = {}
    for r, (s, e) in enumerate(schedule.rows):
        _f, Rr = _local_factor(A[s:e], policy)
        current[r] = Rr
    current, _tree = _reduce(schedule, current, None, n, A.dtype)
    R_root = current[0] if current else np.zeros((0, n), dtype=A.dtype)
    k = min(m, n)
    R = np.zeros((k, n), dtype=A.dtype)
    R[: R_root.shape[0]] = R_root[:k]
    return R
