"""Distributed-memory parallel TSQR over the simulated communicator.

The original TSQR setting (Demmel et al.; the paper's Section I
citations): each of P processors holds a horizontal slice of the tall
matrix, factors it locally, and the R factors are combined up a binomial
tree with one message per level — ``log2 P`` messages of ``n(n+1)/2``
words each on the critical path, versus the ``Theta(n log P)`` messages
of ScaLAPACK-style column-by-column Householder.  This module implements
the algorithm over :class:`~repro.distributed.comm.FakeComm`, counts
exactly that communication, and can reconstruct the global Q for
verification.

Input validation follows the repo-wide entry-point policy
(:mod:`repro.verify.guards`): complex input raises ``TypeError``,
NaN/Inf raises ``ValueError`` unless ``nonfinite="propagate"``, and
float32 is preserved end to end — the local factors, the tree
eliminations and the reconstructed Q all stay in the input's working
precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.householder import geqr2, orm2r
from repro.verify.guards import validate_matrix

from .comm import CommStats, FakeComm

__all__ = ["DistributedTSQRResult", "distributed_tsqr", "tsqr_message_lower_bound", "householder_message_count"]


@dataclass
class DistributedTSQRResult:
    """Outcome of one distributed TSQR run."""

    R: np.ndarray  # final n x n factor (held by rank 0)
    comm: FakeComm
    local_factors: list  # per-rank local (VR, tau)
    tree_factors: dict  # (level, rank) -> (VR, tau, partner)
    rows_per_rank: list[tuple[int, int]]
    n: int
    rounds: int  # tree levels = critical-path message count

    def form_q(self) -> np.ndarray:
        """Reconstruct the global thin Q (gathered; verification only)."""
        m = self.rows_per_rank[-1][1]
        n = self.n
        dtype = self.R.dtype
        Q = np.zeros((m, n), dtype=dtype)
        Q[:n] = np.eye(n, dtype=dtype)
        # Walk the tree top-down, mirroring the elimination order.
        P = len(self.rows_per_rank)
        levels = sorted({lvl for (lvl, _r) in self.tree_factors}, reverse=True)
        # Rank r's R-slot occupies the top n rows of its row range.
        slots = {r: np.zeros((n, n), dtype=dtype) for r in range(P)}
        slots[0] = Q[:n].copy()
        for lvl in levels:
            for (l, r), (VR, tau, partner) in self.tree_factors.items():
                if l != lvl:
                    continue
                stacked = np.vstack([slots[r], slots[partner]])
                orm2r(VR, tau, stacked, transpose=False)
                slots[r] = stacked[:n]
                slots[partner] = stacked[n:]
        for r, (s, e) in enumerate(self.rows_per_rank):
            VR, tau = self.local_factors[r]
            h = e - s
            block = np.zeros((h, n), dtype=dtype)
            block[: min(h, n)] = slots[r][: min(h, n)]
            orm2r(VR, tau, block, transpose=False)
            Q[s:e] = block
        return Q


def tsqr_message_lower_bound(p: int) -> int:
    """Messages on the critical path of any reduction over P ranks."""
    return max(0, math.ceil(math.log2(max(p, 1))))


def householder_message_count(n: int, p: int) -> int:
    """ScaLAPACK-style column-by-column Householder: one reduction (and
    broadcast) per column — Theta(n log P) critical-path messages."""
    return 2 * n * tsqr_message_lower_bound(p)


def distributed_tsqr(A: np.ndarray, p: int, nonfinite: str = "raise") -> DistributedTSQRResult:
    """Run parallel TSQR over ``p`` simulated ranks.

    Rows are dealt in contiguous slices; each rank factors its slice
    locally (no communication), then the binomial-tree elimination sends
    each surviving R (its upper triangle, ``n(n+1)/2`` words) to its
    partner — one message per rank per level.

    ``A`` passes through the standard entry-point guards: complex input
    raises ``TypeError``, non-finite entries raise ``ValueError`` unless
    ``nonfinite="propagate"``, and float32 input stays float32 through
    the tree and the reconstructed Q.
    """
    A = validate_matrix(A, where="distributed_tsqr", nonfinite=nonfinite)
    m, n = A.shape
    dtype = A.dtype
    if p < 1:
        raise ValueError("need at least one rank")
    if m < p * n:
        raise ValueError(f"need at least n rows per rank (m >= p*n = {p * n})")
    comm = FakeComm(size=p)
    # Deal contiguous row slices.
    base = m // p
    extra = m % p
    rows = []
    start = 0
    for r in range(p):
        h = base + (1 if r < extra else 0)
        rows.append((start, start + h))
        start += h
    # Local factorization (embarrassingly parallel; zero communication).
    local = []
    current_r = {}
    for r, (s, e) in enumerate(rows):
        VR, tau = geqr2(A[s:e])
        local.append((VR, tau))
        current_r[r] = np.triu(VR[:n, :])
    # Binomial-tree elimination: partner = rank + stride.
    tree = {}
    stride = 1
    level = 0
    while stride < p:
        for r in range(0, p, 2 * stride):
            partner = r + stride
            if partner >= p:
                continue
            # Partner sends its triangle to r (counted words: n(n+1)/2).
            tri = current_r[partner][np.triu_indices(n)]
            comm.send(tri, src=partner, dst=r, tag=level)
            received = comm.recv(src=partner, dst=r, tag=level)
            Rp = np.zeros((n, n), dtype=dtype)
            Rp[np.triu_indices(n)] = received
            stacked = np.vstack([current_r[r], Rp])
            VR, tau = geqr2(stacked)
            tree[(level, r)] = (VR, tau, partner)
            current_r[r] = np.triu(VR[:n, :])
            del current_r[partner]
        stride *= 2
        level += 1
    return DistributedTSQRResult(
        R=current_r[0],
        comm=comm,
        local_factors=local,
        tree_factors=tree,
        rows_per_rank=rows,
        n=n,
        rounds=level,
    )
