"""A simulated message-passing communicator with communication accounting.

TSQR originated in distributed memory (the paper's Section I: applied
"in distributed memory machines and grid environments where
communication is exceptionally expensive").  This module provides an
MPI-like substrate to reproduce that setting without MPI: ``P`` ranks
run as callables over an in-process fabric; every ``send`` is counted
(messages and words) and charged an alpha-beta cost
(``alpha + beta * words``), the standard distributed-communication
model the TSQR lower bounds are stated in.

Execution is round-based and deterministic: ranks are generator-style
steppers driven by a simple scheduler, which is all the tree-structured
collectives here require.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommStats", "FakeComm", "simulated_network_seconds"]


@dataclass
class CommStats:
    """Per-rank communication counters."""

    messages_sent: int = 0
    words_sent: float = 0.0
    messages_received: int = 0
    words_received: float = 0.0


@dataclass
class FakeComm:
    """A P-rank in-process communicator (blocking send/recv semantics).

    Unlike real MPI, delivery is instantaneous — the *costs* are what we
    measure, via :class:`CommStats` and :func:`simulated_network_seconds`.
    """

    size: int
    stats: list[CommStats] = field(default_factory=list)
    _mail: dict[tuple[int, int, int], list] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("communicator needs at least one rank")
        self.stats = [CommStats() for _ in range(self.size)]

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self.size):
            raise ValueError(f"rank {r} outside communicator of size {self.size}")

    @staticmethod
    def _words(payload) -> float:
        if isinstance(payload, np.ndarray):
            return float(payload.size)
        return 1.0

    def send(self, payload, src: int, dst: int, tag: int = 0) -> None:
        """Deposit a message (copies arrays — no aliasing across ranks)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError("self-sends are not allowed")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        self._mail.setdefault((src, dst, tag), []).append(payload)
        w = self._words(payload)
        self.stats[src].messages_sent += 1
        self.stats[src].words_sent += w
        self.stats[dst].messages_received += 1
        self.stats[dst].words_received += w

    def recv(self, src: int, dst: int, tag: int = 0):
        """Retrieve the oldest matching message (raises if none)."""
        self._check_rank(src)
        self._check_rank(dst)
        queue = self._mail.get((src, dst, tag))
        if not queue:
            raise LookupError(f"no message from {src} to {dst} with tag {tag}")
        return queue.pop(0)

    # -- aggregate accounting ------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_words(self) -> float:
        return sum(s.words_sent for s in self.stats)

    def max_messages_per_rank(self) -> int:
        return max((s.messages_sent + s.messages_received for s in self.stats), default=0)


def simulated_network_seconds(
    comm: FakeComm,
    alpha_us: float = 1.0,
    beta_ns_per_word: float = 2.0,
    critical_path_messages: int | None = None,
    critical_path_words: float | None = None,
) -> float:
    """Alpha-beta communication time.

    With tree collectives the critical path is what matters; pass the
    per-path counts when known (e.g. ``log2 P`` rounds for TSQR),
    otherwise the busiest rank's totals are used as the estimate.
    """
    if critical_path_messages is None:
        critical_path_messages = comm.max_messages_per_rank()
    if critical_path_words is None:
        busiest = max(comm.stats, key=lambda s: s.words_sent + s.words_received, default=None)
        critical_path_words = (busiest.words_sent + busiest.words_received) if busiest else 0.0
    return critical_path_messages * alpha_us * 1e-6 + critical_path_words * beta_ns_per_word * 1e-9
