"""A simulated message-passing communicator with communication accounting.

TSQR originated in distributed memory (the paper's Section I: applied
"in distributed memory machines and grid environments where
communication is exceptionally expensive").  This module provides an
MPI-like substrate to reproduce that setting without MPI: ``P`` ranks
run as callables over an in-process fabric; every ``send`` is counted
(messages and words) and charged an alpha-beta cost
(``alpha + beta * words``), the standard distributed-communication
model the TSQR lower bounds are stated in.

Execution is round-based and deterministic: ranks are generator-style
steppers driven by a simple scheduler, which is all the tree-structured
collectives here require.  The ``tag`` of each message names its
reduction round (tree level), and per-tag counters feed the default
critical-path estimate: levels are sequential barriers, so the path is
the sum over levels of the busiest rank *within* each level — never the
whole-run total of any single rank, which double-counts a forwarded
triangle (received at one level, sent at the next) whenever the
forwarder happens to be globally busiest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CommStats",
    "FakeComm",
    "InterconnectModel",
    "INTERCONNECTS",
    "DEFAULT_INTERCONNECT",
    "simulated_network_seconds",
]


@dataclass
class CommStats:
    """Per-rank communication counters."""

    messages_sent: int = 0
    words_sent: float = 0.0
    messages_received: int = 0
    words_received: float = 0.0


@dataclass(frozen=True)
class InterconnectModel:
    """A calibrated alpha-beta link model: ``alpha + beta * words``.

    The same accounting discipline :mod:`repro.gpusim` applies to
    global-memory bytes, applied to inter-rank traffic: ``alpha_us`` is
    the per-message latency in microseconds, ``beta_ns_per_word`` the
    per-word (matrix element) transfer cost in nanoseconds.
    """

    name: str
    alpha_us: float
    beta_ns_per_word: float

    def seconds(self, messages: float, words: float) -> float:
        """Alpha-beta time for a message/word count on the critical path."""
        return messages * self.alpha_us * 1e-6 + words * self.beta_ns_per_word * 1e-9


#: Calibrated presets, latency-dominant from left to right.  ``pcie2``
#: is the multi-GPU-in-one-node setting of the paper's era (Fermi boards
#: on PCIe 2.0: ~10 us software latency, ~8 GB/s per direction — 1 ns
#: per 8-byte word); the cluster/ethernet/grid rows mirror the network
#: models of :mod:`repro.experiments.distributed_study`.
INTERCONNECTS: dict[str, InterconnectModel] = {
    "pcie2": InterconnectModel("pcie2 (10 us, 1 ns/w)", 10.0, 1.0),
    "cluster": InterconnectModel("cluster (1 us, 2 ns/w)", 1.0, 2.0),
    "ethernet": InterconnectModel("ethernet (50 us, 10 ns/w)", 50.0, 10.0),
    "grid": InterconnectModel("grid (10 ms, 100 ns/w)", 10_000.0, 100.0),
}

DEFAULT_INTERCONNECT = "pcie2"


@dataclass
class FakeComm:
    """A P-rank in-process communicator (blocking send/recv semantics).

    Unlike real MPI, delivery is instantaneous — the *costs* are what we
    measure, via :class:`CommStats` and :func:`simulated_network_seconds`.
    """

    size: int
    stats: list[CommStats] = field(default_factory=list)
    _mail: dict[tuple[int, int, int], list] = field(default_factory=dict)
    # tag -> rank -> per-level counters (tags name reduction rounds).
    _level_stats: dict[int, dict[int, CommStats]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("communicator needs at least one rank")
        self.stats = [CommStats() for _ in range(self.size)]

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self.size):
            raise ValueError(f"rank {r} outside communicator of size {self.size}")

    @staticmethod
    def _words(payload) -> float:
        if isinstance(payload, np.ndarray):
            return float(payload.size)
        return 1.0

    def send(self, payload, src: int, dst: int, tag: int = 0) -> None:
        """Deposit a message (copies arrays — no aliasing across ranks)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError("self-sends are not allowed")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        self._mail.setdefault((src, dst, tag), []).append(payload)
        w = self._words(payload)
        self.stats[src].messages_sent += 1
        self.stats[src].words_sent += w
        self.stats[dst].messages_received += 1
        self.stats[dst].words_received += w
        level = self._level_stats.setdefault(tag, {})
        s = level.setdefault(src, CommStats())
        s.messages_sent += 1
        s.words_sent += w
        d = level.setdefault(dst, CommStats())
        d.messages_received += 1
        d.words_received += w

    def recv(self, src: int, dst: int, tag: int = 0):
        """Retrieve the oldest matching message (raises if none)."""
        self._check_rank(src)
        self._check_rank(dst)
        queue = self._mail.get((src, dst, tag))
        if not queue:
            raise LookupError(f"no message from {src} to {dst} with tag {tag}")
        return queue.pop(0)

    # -- aggregate accounting ------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_words(self) -> float:
        return sum(s.words_sent for s in self.stats)

    def max_messages_per_rank(self) -> int:
        return max(s.messages_sent + s.messages_received for s in self.stats)

    # -- critical path -------------------------------------------------------

    def critical_path_messages(self) -> int:
        """Critical-path message count: per-level maxima, summed.

        Message tags name reduction rounds, and rounds are sequential
        barriers, so the path through the whole exchange is the busiest
        rank of each level in turn.  Within a level a rank serializes
        its own sends and receives (a fan-in of arity ``a`` costs the
        surviving rank ``a - 1`` sequential receives).
        """
        return sum(
            max(s.messages_sent + s.messages_received for s in level.values())
            for level in self._level_stats.values()
        )

    def critical_path_words(self) -> float:
        """Critical-path word count: per-level maxima, summed.

        Unlike the busiest rank's whole-run ``words_sent +
        words_received``, this never charges a forwarded triangle twice
        to one rank across levels — each level contributes only the
        words the busiest rank of *that* level moved.
        """
        return sum(
            max(s.words_sent + s.words_received for s in level.values())
            for level in self._level_stats.values()
        )


def simulated_network_seconds(
    comm: FakeComm,
    alpha_us: float = 1.0,
    beta_ns_per_word: float = 2.0,
    critical_path_messages: int | None = None,
    critical_path_words: float | None = None,
) -> float:
    """Alpha-beta communication time.

    With tree collectives the critical path is what matters; pass the
    per-path counts when known (e.g. ``log2 P`` rounds for TSQR),
    otherwise they default to the per-level maxima the communicator
    recorded (tags name levels): the busiest rank of each level, summed
    across levels.
    """
    if critical_path_messages is None:
        critical_path_messages = comm.critical_path_messages()
    if critical_path_words is None:
        critical_path_words = comm.critical_path_words()
    return critical_path_messages * alpha_us * 1e-6 + critical_path_words * beta_ns_per_word * 1e-9
