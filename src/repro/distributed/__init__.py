"""Distributed-memory TSQR over a simulated message-passing fabric.

The setting TSQR was invented for (the paper's Section I citations):
P processors, horizontal matrix slices, R factors combined up a
binomial tree with one message per level — versus Theta(n log P)
messages for column-by-column Householder.  Communication is counted
exactly and charged an alpha-beta cost.
"""

from .comm import CommStats, FakeComm, simulated_network_seconds
from .tsqr import (
    DistributedTSQRResult,
    distributed_tsqr,
    householder_message_count,
    tsqr_message_lower_bound,
)

__all__ = [
    "CommStats",
    "FakeComm",
    "simulated_network_seconds",
    "DistributedTSQRResult",
    "distributed_tsqr",
    "householder_message_count",
    "tsqr_message_lower_bound",
]
