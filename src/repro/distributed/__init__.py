"""Distributed-memory TSQR/CAQR over a simulated message-passing fabric.

The setting TSQR was invented for (the paper's Section I citations):
P processors, horizontal matrix slices, R factors combined up a
reduction tree with one message per level — versus Theta(n log P)
messages for column-by-column Householder.  Communication is counted
exactly and charged a calibrated alpha-beta cost
(:class:`~repro.distributed.comm.InterconnectModel`).

Two layers:

* :func:`distributed_tsqr` — the classic single-panel parallel TSQR
  over a binomial tree (one ``geqr2`` per rank, triangles up the tree).
* :mod:`repro.distributed.sharded` — full sharded CAQR: each rank runs
  the local batched compact-WY machinery on its row shard, and per-rank
  R factors reduce through a configurable fan-in tree.  Reached through
  ``ExecutionPolicy(path="sharded", shards=P, fanin=...)``.
"""

from .comm import (
    DEFAULT_INTERCONNECT,
    INTERCONNECTS,
    CommStats,
    FakeComm,
    InterconnectModel,
    simulated_network_seconds,
)
from .sharded import (
    ShardedCAQRFactors,
    ShardSchedule,
    build_shard_schedule,
    run_sharded,
    sharded_reference_r,
)
from .tsqr import (
    DistributedTSQRResult,
    distributed_tsqr,
    householder_message_count,
    tsqr_message_lower_bound,
)

__all__ = [
    "CommStats",
    "FakeComm",
    "InterconnectModel",
    "INTERCONNECTS",
    "DEFAULT_INTERCONNECT",
    "simulated_network_seconds",
    "DistributedTSQRResult",
    "distributed_tsqr",
    "householder_message_count",
    "tsqr_message_lower_bound",
    "ShardSchedule",
    "ShardedCAQRFactors",
    "build_shard_schedule",
    "run_sharded",
    "sharded_reference_r",
]
