"""Command-line interface: regenerate any table or figure from a shell.

Usage::

    python -m repro table1
    python -m repro figure9 --widths 64,512,4096
    python -m repro table2
    python -m repro strategies
    python -m repro figure7
    python -m repro figure8
    python -m repro ablations
    python -m repro sensitivity
    python -m repro dispatch --m 8192 --n 192
    python -m repro plan --m 110592 --n 100 --path lookahead
    python -m repro trace --shape 4096x128 --policy lookahead --out trace.json
    python -m repro verify --seed 0
    python -m repro serve-bench --shape 256x32 --requests 512
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of 'Communication-Avoiding QR Decomposition for GPUs' (IPDPS 2011).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("strategies", help="Section IV-E strategy table (55/168/194/388)")
    sub.add_parser("figure7", help="block-size sweep + autotuned pick")
    sub.add_parser("figure8", help="speedup grid + crossover frontier")

    f9 = sub.add_parser("figure9", help="GFLOPS vs width at height 8192")
    f9.add_argument("--widths", type=str, default=None, help="comma-separated widths")

    t1 = sub.add_parser("table1", help="very tall-skinny GFLOPS (1k..1M x 192)")
    t1.add_argument("--heights", type=str, default=None, help="comma-separated heights")

    sub.add_parser("table2", help="Robust PCA iterations/second")
    sub.add_parser("ablations", help="tree/transpose/panel/hybrid/strategy ablations")
    sub.add_parser("sensitivity", help="bandwidth / PCIe-latency / launch-overhead sweeps")
    sub.add_parser("communication", help="DRAM words vs the communication lower bound")
    sub.add_parser("stability", help="orthogonality vs condition number, all algorithms")
    sub.add_parser("projection", help="headline results on projected future devices")

    ov = sub.add_parser("overlap", help="modeled multi-stream overlap vs the serial stream")
    ov.add_argument("--heights", type=str, default=None, help="comma-separated heights")
    ov.add_argument("--streams", type=int, default=4)

    sub.add_parser("distributed", help="distributed TSQR vs Householder message counts")

    d = sub.add_parser("dispatch", help="model-driven engine choice for one shape")
    d.add_argument("--m", type=int, required=True)
    d.add_argument("--n", type=int, required=True)

    pl = sub.add_parser("plan", help="build and describe a reusable QR plan")
    pl.add_argument("--m", type=int, required=True)
    pl.add_argument("--n", type=int, required=True)
    pl.add_argument("--dtype", type=str, default="float64")
    pl.add_argument(
        "--path",
        type=str,
        default="batched",
        help="execution path: seed | batched | structured | lookahead | "
        "cholqr2 | cholqr2_mixed | auto | sharded",
    )
    pl.add_argument("--workers", type=int, default=None, help="look-ahead worker count")
    pl.add_argument(
        "--shards", type=int, default=None, help="sharded rank count (path=sharded)"
    )
    pl.add_argument(
        "--fanin", type=int, default=None, help="sharded reduction-tree arity"
    )
    pl.add_argument(
        "--interconnect",
        type=str,
        default=None,
        help="alpha-beta link model: pcie2 | cluster | ethernet | grid",
    )

    tr = sub.add_parser(
        "trace",
        help="run one traced factorization; write a Perfetto-loadable trace",
    )
    tr.add_argument(
        "--shape", type=str, default="4096x128", help="matrix shape as MxN"
    )
    tr.add_argument(
        "--policy",
        type=str,
        default="batched",
        help="execution path: seed | batched | structured | lookahead | "
        "cholqr2 | cholqr2_mixed | auto",
    )
    tr.add_argument("--workers", type=int, default=None, help="look-ahead worker count")
    tr.add_argument("--seed", type=int, default=0, help="matrix RNG seed")
    tr.add_argument(
        "--out", type=str, default=None, help="Chrome trace_event JSON output path"
    )

    e = sub.add_parser("export", help="write CSVs of every table/figure")
    e.add_argument("--out", type=str, default="exports")

    v = sub.add_parser(
        "verify",
        help="differential fuzz: every CAQR path vs np.linalg.qr and each other",
    )
    v.add_argument("--seed", type=int, default=0, help="grid seed (default 0)")
    v.add_argument("--quick", action="store_true", help="core grid only (CI smoke)")
    v.add_argument(
        "--cases", type=int, default=60, help="random cases beyond the core grid"
    )
    v.add_argument(
        "--paths",
        type=str,
        default=None,
        help="comma-separated subset of paths (default: all)",
    )

    sb = sub.add_parser(
        "serve-bench",
        help="load-test the coalescing QR server vs per-request dispatch",
    )
    sb.add_argument(
        "--shape", type=str, default="256x32", help="request shape as MxN"
    )
    sb.add_argument("--dtype", type=str, default="float64")
    sb.add_argument("--requests", type=int, default=512)
    sb.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered arrival rate in req/s (open loop); default saturation",
    )
    sb.add_argument(
        "--mode",
        type=str,
        default="both",
        choices=("both", "coalesced", "per-request"),
        help="which surface to drive (default: both, and report the speedup)",
    )
    sb.add_argument("--tenants", type=int, default=4)
    sb.add_argument(
        "--max-batch", type=int, default=96, help="coalescing window size cap"
    )
    sb.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="coalescing window time cap (ms)",
    )
    return p


def _ints(csv: str | None) -> tuple[int, ...] | None:
    if csv is None:
        return None
    return tuple(int(x) for x in csv.split(",") if x)


def _cmd_trace(args) -> int:
    """One traced factorization: capture, export, modeled-vs-measured."""
    import numpy as np

    from repro import obs
    from repro.runtime import ExecutionPolicy, plan_qr

    try:
        m_s, n_s = args.shape.lower().split("x")
        m, n = int(m_s), int(n_s)
    except ValueError:
        print(f"trace: --shape must look like 4096x128, got {args.shape!r}")
        return 2
    policy = ExecutionPolicy(path=args.policy, workers=args.workers)
    A = np.random.default_rng(args.seed).standard_normal((m, n))
    with obs.capture(meta={"shape": f"{m}x{n}", "path": policy.path}) as session:
        plan = plan_qr(m, n, policy=policy)
        plan.factor(A)
    trace = session.trace
    root = max(
        (s for s in trace.spans if s.name == "plan.factor"), key=lambda s: s.dur_ns
    )
    coverage = trace.coverage(root)
    out = [obs.render_spans(trace)]
    out.append(
        f"span coverage of plan.factor: {coverage:.1%} "
        f"({len(trace.spans)} spans, {len(trace.thread_names)} thread"
        f"{'s' if len(trace.thread_names) != 1 else ''})"
    )
    out.append("")
    out.append(
        obs.format_overlay(
            obs.modeled_vs_measured(trace, plan.simulate()),
            title=f"modeled vs measured ({m}x{n}, path={policy.path})",
        )
    )
    if args.out:
        path = obs.write_chrome_trace(trace, args.out)
        out.append(f"\nwrote {path} (open in https://ui.perfetto.dev)")
    print("\n".join(out))
    if coverage < 0.95:
        print(f"trace: span coverage {coverage:.1%} below the 95% floor")
        return 1
    return 0


def _cmd_serve_bench(args) -> int:
    """Drive the load generator at the serving front end from the shell."""
    import numpy as np

    from repro.dispatch import QRDispatcher
    from repro.serving import QRServer, format_report, run_load

    try:
        m_s, n_s = args.shape.lower().split("x")
        m, n = int(m_s), int(n_s)
    except ValueError:
        print(f"serve-bench: --shape must look like 256x32, got {args.shape!r}")
        return 2
    dtype = np.dtype(args.dtype)
    common = dict(
        m=m, n=n, dtype=dtype, requests=args.requests,
        rate=args.rate, tenants=args.tenants,
    )

    reports = {}
    if args.mode in ("both", "per-request"):
        reports["per-request"] = run_load(
            QRDispatcher(), mode="per-request", **common
        )
    if args.mode in ("both", "coalesced"):
        with QRServer(
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
        ) as server:
            # One short pass outside the measured window: first-touch
            # plan/cache builds land here, not in the report.
            run_load(
                server, mode="coalesced", m=m, n=n, dtype=dtype,
                requests=max(8, args.requests // 4),
            )
            reports["coalesced"] = run_load(server, mode="coalesced", **common)

    for rep in reports.values():
        print(format_report(rep))
    if len(reports) == 2:
        speedup = reports["coalesced"].qps / reports["per-request"].qps
        print(f"coalesce speedup: {speedup:.2f}x")
    errors = sum(rep.errors for rep in reports.values())
    if errors:
        print(f"serve-bench: {errors} request(s) errored")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "verify":
        # Handled first: the correctness gate must not depend on the
        # experiments stack, and it is the only command with a failure
        # exit code (1 on any divergence).
        from repro.verify.fuzz import run_grid

        report = run_grid(
            seed=args.seed,
            quick=args.quick,
            n_random=args.cases,
            paths=[p for p in args.paths.split(",") if p] if args.paths else None,
            progress=print,
        )
        print(report.format())
        return 0 if report.ok else 1
    if args.command == "plan":
        import numpy as np

        from repro.runtime import ExecutionPolicy, plan_qr

        policy = ExecutionPolicy(
            path=args.path,
            workers=args.workers,
            shards=args.shards,
            fanin=args.fanin,
            interconnect=args.interconnect,
        )
        plan = plan_qr(args.m, args.n, dtype=np.dtype(args.dtype), policy=policy)
        print(plan.describe())
        return 0
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    # Imports deferred so `--help` stays instant.
    from repro.experiments import (
        ablations,
        ascii_chart,
        communication,
        distributed_study,
        figure7,
        projection,
        figure8,
        figure9,
        overlap_study,
        sensitivity,
        stability,
        strategies_table,
        table1,
        table2,
    )

    out = []
    if args.command == "strategies":
        out.append(strategies_table.format_results(strategies_table.run()))
    elif args.command == "figure7":
        out.append(figure7.format_results(figure7.run(), top=15))
    elif args.command == "figure8":
        out.append(figure8.format_results(figure8.run()))
    elif args.command == "figure9":
        widths = _ints(args.widths)
        result = figure9.run(widths=widths) if widths else figure9.run()
        out.append(figure9.format_results(result))
        out.append(
            ascii_chart(
                [r.width for r in result.rows],
                {
                    "CAQR": [r.caqr for r in result.rows],
                    "MAGMA": [r.magma for r in result.rows],
                    "CULA": [r.cula for r in result.rows],
                    "MKL": [r.mkl for r in result.rows],
                },
                title="Figure 9 (GFLOPS vs width, log-x)",
                logx=True,
            )
        )
    elif args.command == "table1":
        heights = _ints(args.heights)
        rows = table1.run(heights=heights) if heights else table1.run()
        out.append(table1.format_results(rows))
    elif args.command == "table2":
        out.append(table2.format_results(table2.run()))
    elif args.command == "ablations":
        out.append(ablations.format_rows(ablations.tree_shape_ablation(), "Tree arity (500k x 192)"))
        out.append(ablations.format_rows(ablations.transpose_ablation(), "Transpose preprocessing (500k x 192)"))
        out.append(ablations.format_rows(ablations.panel_width_ablation(), "Panel width (500k x 192)"))
        out.append(ablations.format_rows(ablations.strategy_ablation(), "Strategy inside CAQR (500k x 192)"))
        out.append(ablations.format_rows(ablations.hybrid_panel_ablation(), "GPU-only vs hybrid panel"))
    elif args.command == "sensitivity":
        out.append(sensitivity.format_sweep(sensitivity.dram_bandwidth_sweep(), "DRAM bandwidth scale (500k x 192)"))
        out.append(sensitivity.format_sweep(sensitivity.pcie_latency_sweep(), "PCIe latency (100k x 192)"))
        out.append(sensitivity.format_sweep(sensitivity.launch_overhead_sweep(), "Kernel launch overhead (1k x 192 vs 1M x 192)"))
    elif args.command == "communication":
        out.append(communication.format_results(communication.run()))
    elif args.command == "stability":
        out.append(stability.format_results(stability.run()))
    elif args.command == "overlap":
        heights = _ints(args.heights)
        kwargs = {"streams": args.streams}
        if heights:
            kwargs["heights"] = heights
        out.append(overlap_study.format_results(overlap_study.run(**kwargs)))
    elif args.command == "projection":
        out.append(projection.format_results(projection.run()))
    elif args.command == "distributed":
        out.append(distributed_study.format_results(distributed_study.run()))
    elif args.command == "dispatch":
        from repro.dispatch import QRDispatcher

        preds = QRDispatcher().predict(args.m, args.n)
        lines = [f"engine predictions for {args.m} x {args.n}:"]
        for p_ in preds:
            lines.append(f"  {p_.engine:8s} {p_.seconds * 1e3:10.2f} ms  {p_.gflops:8.1f} GFLOPS")
        lines.append(f"choice: {preds[0].engine}")
        out.append("\n".join(lines))
    elif args.command == "export":
        from repro.experiments.export import export_all

        paths = export_all(args.out)
        out.append("wrote:\n" + "\n".join(f"  {p}" for p in paths))
    print("\n\n".join(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
