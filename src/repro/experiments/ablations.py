"""Ablations of the design decisions DESIGN.md calls out.

1. Reduction-tree shape (Section IV-C): arity 2 / 4 / 8 / flat.
2. Transpose preprocessing on/off (Section IV-E approach 3 vs 4).
3. Panel width sweep.
4. Where the panel is factored (Section III): GPU-only CAQR vs the
   hybrid option that ships each panel to the CPU for TSQR.
5. Reduction strategy used inside the full CAQR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.cpu import CPUPanelModel
from repro.caqr_gpu import simulate_caqr
from repro.core.tree import build_tree
from repro.core.tsqr import row_blocks
from repro.gpusim.device import C2050, NEHALEM_8CORE, PCIE_GEN2, CPUSpec, DeviceSpec, PCIeLink
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .report import format_table

__all__ = [
    "AblationRow",
    "tree_shape_ablation",
    "transpose_ablation",
    "panel_width_ablation",
    "strategy_ablation",
    "hybrid_panel_ablation",
    "format_rows",
]


@dataclass(frozen=True)
class AblationRow:
    label: str
    m: int
    n: int
    gflops: float
    seconds: float


def _row(label: str, m: int, n: int, cfg: KernelConfig, dev: DeviceSpec) -> AblationRow:
    r = simulate_caqr(m, n, cfg, dev)
    return AblationRow(label=label, m=m, n=n, gflops=r.gflops, seconds=r.seconds)


def tree_shape_ablation(
    m: int = 500_000,
    n: int = 192,
    dev: DeviceSpec = C2050,
) -> list[AblationRow]:
    """Vary the reduction arity by varying the block height.

    The arity is ``block_rows / panel_width`` (Section IV-C), so height
    32 gives a binary tree, 64 the paper's quad-tree, 128 arity 8.
    Shallower trees mean fewer kernel launches and fewer tree levels but
    shorter level-0 reductions.
    """
    rows = []
    for bh, label in ((32, "binary (32x16)"), (64, "quad (64x16)"), (128, "arity-8 (128x16)"), (256, "arity-16 (256x16)")):
        cfg = REFERENCE_CONFIG.with_(block_rows=bh)
        rows.append(_row(f"tree {label}", m, n, cfg, dev))
    return rows


def transpose_ablation(
    m: int = 500_000,
    n: int = 192,
    dev: DeviceSpec = C2050,
) -> list[AblationRow]:
    """Approach 4 (transposed panels) vs approach 3 (no preprocessing).

    Without the out-of-place transpose the kernels read global memory
    with strided, uncoalesced accesses (strategy ``regfile_serial``);
    with it they are coalesced but pay a bandwidth-bound preprocessing
    pass per panel.
    """
    with_t = REFERENCE_CONFIG.with_(strategy="regfile_transpose", transpose_preprocess=True)
    without = REFERENCE_CONFIG.with_(strategy="regfile_serial", transpose_preprocess=False)
    return [
        _row("transpose preprocessing ON", m, n, with_t, dev),
        _row("transpose preprocessing OFF", m, n, without, dev),
    ]


def panel_width_ablation(
    m: int = 500_000,
    widths: tuple[int, ...] = (8, 16, 32),
    n: int = 192,
    dev: DeviceSpec = C2050,
) -> list[AblationRow]:
    """Panel width: narrower panels mean more panels and launches; wider
    panels mean more BLAS2-like factor work per block."""
    rows = []
    for pw in widths:
        cfg = REFERENCE_CONFIG.with_(panel_width=pw, block_rows=max(REFERENCE_CONFIG.block_rows, pw))
        rows.append(_row(f"panel width {pw}", m, n, cfg, dev))
    return rows


def strategy_ablation(
    m: int = 500_000,
    n: int = 192,
    dev: DeviceSpec = C2050,
) -> list[AblationRow]:
    """Full-CAQR impact of the Section IV-E strategy choice."""
    rows = []
    for s in ("smem_parallel", "smem_serial", "regfile_serial", "regfile_transpose"):
        cfg = REFERENCE_CONFIG.with_(strategy=s, transpose_preprocess=(s == "regfile_transpose"))
        rows.append(_row(f"strategy {s}", m, n, cfg, dev))
    return rows


def simulate_hybrid_caqr(
    m: int,
    n: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    cpu: CPUSpec = NEHALEM_8CORE,
    link: PCIeLink = PCIE_GEN2,
) -> float:
    """Section III option 1: CPU panel TSQR + GPU trailing update.

    Per panel: ship the panel over PCIe, factor it with a cache-friendly
    TSQR on the CPU (flop-bound, unlike the BLAS2 panel of blocked
    Householder), ship the factors back, then run the same GPU trailing
    updates as the GPU-only driver.  Returns total seconds.
    """
    from repro.kernels.costs import apply_qt_h_launch, apply_qt_tree_launch
    from repro.gpusim.launch import time_launch

    k = min(m, n)
    pw = cfg.panel_width
    total = 0.0
    panel_model = CPUPanelModel(cpu, cache_resident=True)
    for c0 in range(0, k, pw):
        pw_p = min(pw, k - c0)
        hp = m - c0
        bh = max(cfg.block_rows, pw_p)
        nb0 = len(row_blocks(hp, bh))
        tree = build_tree(nb0, cfg.tree_shape)
        panel_bytes = hp * pw_p * 4.0
        # CPU TSQR: one streaming pass, flop-bound at BLAS3-like rate.
        tsqr_flops = 2.0 * hp * pw_p * pw_p
        cpu_t = max(
            tsqr_flops / (cpu.peak_gflops * 1e9 * 0.5),
            2.0 * panel_bytes / (cpu.mem_bw_gbs * 1e9),
        ) + cpu.thread_fork_us * 1e-6
        total += link.transfer_seconds(panel_bytes) + cpu_t + link.transfer_seconds(panel_bytes)
        wt = n - (c0 + pw_p)
        if wt > 0:
            tiles = math.ceil(wt / pw_p)
            total += time_launch(apply_qt_h_launch(nb0 * tiles, bh, pw_p, pw_p, cfg, dev), dev).seconds
            for level in tree.levels:
                arity = max(len(g) for g in level)
                total += time_launch(
                    apply_qt_tree_launch(len(level) * tiles, arity, pw_p, pw_p, cfg, dev), dev
                ).seconds
    return total


def hybrid_panel_ablation(
    heights: tuple[int, ...] = (10_000, 100_000, 1_000_000),
    n: int = 192,
    dev: DeviceSpec = C2050,
) -> list[AblationRow]:
    """GPU-only (the paper's choice) vs hybrid CPU-panel CAQR."""
    from repro.core.householder import qr_flops

    rows = []
    for h in heights:
        gpu_only = simulate_caqr(h, n, REFERENCE_CONFIG, dev)
        rows.append(AblationRow(f"GPU-only  h={h}", h, n, gpu_only.gflops, gpu_only.seconds))
        t = simulate_hybrid_caqr(h, n, REFERENCE_CONFIG, dev)
        rows.append(AblationRow(f"hybrid    h={h}", h, n, qr_flops(h, n) / t / 1e9, t))
    return rows


def format_rows(rows: list[AblationRow], title: str) -> str:
    return format_table(
        ["configuration", "m", "n", "GFLOPS", "seconds"],
        [(r.label, r.m, r.n, r.gflops, r.seconds) for r in rows],
        title=title,
        float_fmt="{:.3f}",
    )
