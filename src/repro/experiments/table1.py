"""Table I: performance on very tall-skinny matrices (width 192).

Paper values, single-precision GFLOPS:

=========  =====  =====  ====  ====
size       CAQR   MAGMA  CULA  MKL
=========  =====  =====  ====  ====
1k x 192   39.6   5.01   2.99  3.12
10k x 192  111    18.7   9.67  16.9
50k x 192  174    20.8   9.42  22.8
100k x 192 180    18.8   8.90  21.4
500k x 192 194    12.4   8.40  17.8
1M x 192   195    11.4   7.79  16.5
=========  =====  =====  ====  ====

"In the case of extremely tall-skinny matrices ... we see up to 17x
speedups vs GPU libraries and 12x vs MKL."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import CULAQR, MAGMAQR, MKLQR
from repro.caqr_gpu import simulate_caqr
from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .report import format_size, format_table

__all__ = ["PAPER_TABLE1", "Table1Row", "run", "format_results", "HEIGHTS", "WIDTH"]

WIDTH = 192
HEIGHTS = (1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000)

#: height -> (CAQR, MAGMA, CULA, MKL) single-precision GFLOPS from Table I.
PAPER_TABLE1: dict[int, tuple[float, float, float, float]] = {
    1_000: (39.6, 5.01, 2.99, 3.12),
    10_000: (111.0, 18.7, 9.67, 16.9),
    50_000: (174.0, 20.8, 9.42, 22.8),
    100_000: (180.0, 18.8, 8.90, 21.4),
    500_000: (194.0, 12.4, 8.40, 17.8),
    1_000_000: (195.0, 11.4, 7.79, 16.5),
}


@dataclass(frozen=True)
class Table1Row:
    height: int
    caqr: float
    magma: float
    cula: float
    mkl: float

    @property
    def speedup_vs_gpu_libs(self) -> float:
        return self.caqr / max(self.magma, self.cula)

    @property
    def speedup_vs_mkl(self) -> float:
        return self.caqr / self.mkl


def run(
    heights: tuple[int, ...] = HEIGHTS,
    width: int = WIDTH,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> list[Table1Row]:
    magma, cula, mkl = MAGMAQR(gpu=dev), CULAQR(gpu=dev), MKLQR()
    return [
        Table1Row(
            height=h,
            caqr=simulate_caqr(h, width, cfg, dev).gflops,
            magma=magma.simulate(h, width).gflops,
            cula=cula.simulate(h, width).gflops,
            mkl=mkl.simulate(h, width).gflops,
        )
        for h in heights
    ]


def format_results(rows: list[Table1Row]) -> str:
    body = []
    for r in rows:
        paper = PAPER_TABLE1.get(r.height)
        ref = f"{paper[0]:.0f}/{paper[1]:.1f}/{paper[2]:.1f}/{paper[3]:.1f}" if paper else "-"
        body.append(
            (format_size(r.height, WIDTH), r.caqr, r.magma, r.cula, r.mkl, ref)
        )
    return format_table(
        ["size", "CAQR", "MAGMA", "CULA", "MKL", "paper (C/M/Cu/K)"],
        body,
        title="Table I: very tall-skinny SGEQRF, single-precision GFLOPS",
        float_fmt="{:.1f}",
    )
