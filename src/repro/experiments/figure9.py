"""Figure 9: SGEQRF GFLOPS vs matrix width at height 8192.

"The crossover point, where CAQR becomes slower than the best GPU
libraries, is around 4000 columns wide.  This suggests an autotuning
framework for QR where a different algorithm may be chosen depending on
the matrix size."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import CULAQR, MAGMAQR, MKLQR
from repro.caqr_gpu import simulate_caqr
from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .report import format_table

__all__ = ["Figure9Row", "Figure9Result", "run", "format_results", "DEFAULT_WIDTHS", "HEIGHT"]

HEIGHT = 8192
DEFAULT_WIDTHS = (64, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192)


@dataclass(frozen=True)
class Figure9Row:
    width: int
    caqr: float
    magma: float
    cula: float
    mkl: float

    @property
    def best_library(self) -> float:
        return max(self.magma, self.cula, self.mkl)


@dataclass
class Figure9Result:
    height: int
    rows: list[Figure9Row]

    def crossover_width(self) -> float | None:
        """Interpolated width where the best library first beats CAQR."""
        prev = None
        for row in self.rows:
            if row.caqr < row.best_library:
                if prev is None:
                    return float(row.width)
                # Linear interpolation of the margin between samples.
                m0 = prev.caqr - prev.best_library
                m1 = row.caqr - row.best_library
                frac = m0 / (m0 - m1) if m0 != m1 else 0.5
                return prev.width + frac * (row.width - prev.width)
            prev = row
        return None


def run(
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    height: int = HEIGHT,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> Figure9Result:
    magma, cula, mkl = MAGMAQR(gpu=dev), CULAQR(gpu=dev), MKLQR()
    rows = [
        Figure9Row(
            width=w,
            caqr=simulate_caqr(height, w, cfg, dev).gflops,
            magma=magma.simulate(height, w).gflops,
            cula=cula.simulate(height, w).gflops,
            mkl=mkl.simulate(height, w).gflops,
        )
        for w in widths
    ]
    return Figure9Result(height=height, rows=rows)


def format_results(result: Figure9Result) -> str:
    table = format_table(
        ["width", "CAQR", "MAGMA", "CULA", "MKL (8 cores)"],
        [(r.width, r.caqr, r.magma, r.cula, r.mkl) for r in result.rows],
        title=f"Figure 9: SGEQRF GFLOPS vs width (height={result.height}, C2050)",
        float_fmt="{:.1f}",
    )
    x = result.crossover_width()
    note = f"\ncrossover: ~{x:.0f} columns (paper: ~4000)" if x else "\nno crossover in range"
    return table + note
