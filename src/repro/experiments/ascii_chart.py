"""Terminal line charts for the figures (no plotting dependency offline).

Renders multiple series over a shared x-axis as an ASCII grid — enough
to see the Figure-9 crossover in a terminal.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@"


def ascii_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 70,
    height: int = 20,
    title: str | None = None,
    logx: bool = False,
) -> str:
    """Render ``series`` (name -> y values over ``x``) as ASCII art."""
    import math

    if not series:
        raise ValueError("need at least one series")
    xs = [math.log10(v) for v in x] if logx else list(map(float, x))
    if len(set(len(s) for s in series.values()) | {len(xs)}) != 1:
        raise ValueError("all series must match the x length")
    ymax = max(max(s) for s in series.values())
    ymin = min(min(s) for s in series.values())
    span_y = (ymax - ymin) or 1.0
    xmin, xmax = min(xs), max(xs)
    span_x = (xmax - xmin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = _MARKERS[si % len(_MARKERS)]
        for xv, yv in zip(xs, ys):
            col = int(round((xv - xmin) / span_x * (width - 1)))
            row = height - 1 - int(round((yv - ymin) / span_y * (height - 1)))
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        yv = ymax - i * span_y / (height - 1)
        lines.append(f"{yv:10.1f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lo = f"{x[0]:g}"
    hi = f"{x[-1]:g}"
    lines.append(" " * 12 + lo + " " * max(1, width - len(lo) - len(hi)) + hi)
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
