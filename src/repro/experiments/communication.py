"""Communication accounting: the "avoiding" in Communication-Avoiding QR.

CAQR is "optimal with regard to the amount of communication performed"
(Section I, citing Demmel et al.'s lower bounds): a sequential QR must
move ``Omega(m n^2 / sqrt(M))`` words between slow and fast memory, where
``M`` is the fast-memory capacity.  This experiment counts the modeled
DRAM words of each algorithm on the same problem and compares them
against that bound — the quantitative core of the paper's argument,
independent of any timing calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.caqr_gpu import simulate_caqr
from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .report import format_size, format_table

__all__ = [
    "CommunicationRow",
    "qr_words_lower_bound",
    "blas2_qr_words",
    "blocked_householder_words",
    "caqr_words",
    "run",
    "format_results",
]

_WORD = 4.0  # single-precision bytes


def fast_memory_words(dev: DeviceSpec = C2050) -> float:
    """On-chip fast memory capacity in words (shared memory + registers)."""
    return dev.n_sm * (dev.smem_per_sm_bytes + dev.regfile_per_sm_bytes) / _WORD


def qr_words_lower_bound(m: int, n: int, dev: DeviceSpec = C2050) -> float:
    """``m n^2 / sqrt(M)`` — the sequential communication lower bound
    (constant factors omitted, as usual)."""
    return m * n * n / math.sqrt(fast_memory_words(dev))


def blas2_qr_words(m: int, n: int) -> float:
    """Column-by-column Householder: the trailing matrix is read for the
    matvec and read+written for the rank-1 update, every column."""
    return sum(3.0 * (m - j) * (n - j) for j in range(min(m, n)))


def blocked_householder_words(m: int, n: int, nb: int = 64) -> float:
    """Blocked Householder (Figure 1): BLAS2 panel sweeps plus streaming
    the trailing matrix once per panel for the BLAS3 update."""
    words = 0.0
    k = min(m, n)
    for c0 in range(0, k, nb):
        nbp = min(nb, k - c0)
        hp = m - c0
        words += 1.5 * hp * nbp * nbp  # panel: 3 accesses x avg width nb/2
        wt = n - (c0 + nbp)
        if wt > 0:
            words += 2.0 * hp * wt + hp * nbp  # stream trailing + read V
    return words


def caqr_words(m: int, n: int, cfg: KernelConfig = REFERENCE_CONFIG, dev: DeviceSpec = C2050) -> float:
    """Modeled DRAM words of the GPU CAQR (from the launch counters)."""
    return simulate_caqr(m, n, cfg, dev).counters.gmem_bytes / _WORD


@dataclass(frozen=True)
class CommunicationRow:
    m: int
    n: int
    lower_bound: float
    caqr: float
    blocked: float
    blas2: float

    @property
    def caqr_vs_bound(self) -> float:
        return self.caqr / self.lower_bound

    @property
    def blas2_vs_caqr(self) -> float:
        return self.blas2 / self.caqr


def run(
    sizes: tuple[tuple[int, int], ...] = ((100_000, 64), (100_000, 192), (1_000_000, 192), (8192, 2048)),
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> list[CommunicationRow]:
    return [
        CommunicationRow(
            m=m,
            n=n,
            lower_bound=qr_words_lower_bound(m, n, dev),
            caqr=caqr_words(m, n, cfg, dev),
            blocked=blocked_householder_words(m, n),
            blas2=blas2_qr_words(m, n),
        )
        for (m, n) in sizes
    ]


def format_results(rows: list[CommunicationRow]) -> str:
    table = format_table(
        ["size", "lower bound", "CAQR", "blocked HH", "BLAS2", "CAQR/bound", "BLAS2/CAQR"],
        [
            (
                format_size(r.m, r.n),
                r.lower_bound,
                r.caqr,
                r.blocked,
                r.blas2,
                r.caqr_vs_bound,
                r.blas2_vs_caqr,
            )
            for r in rows
        ],
        title="Communication study: DRAM words moved (model), vs Omega(m n^2 / sqrt(M))",
        float_fmt="{:.3g}",
    )
    return table
