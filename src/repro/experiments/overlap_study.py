"""Modeled multi-stream overlap across the Table-I shapes.

The serial Figure-4 host stream issues every kernel back-to-back, so the
device idles during each launch overhead and whenever a small tree
kernel leaves most SMs empty.  The launch-graph scheduler
(:mod:`repro.graph`) list-schedules the same kernels onto S concurrent
streams under the SM-occupancy capacity model, with the look-ahead edge
letting ``factor(k+1)`` start as soon as panel ``k``'s first trailing
tile is updated.

The win shrinks with height: at 1k x 192 the stream is dominated by
launch overhead and narrow tree kernels (lots to hide), while at 1M x
192 nearly every launch already fills the device, so the capacity model
leaves only the overhead pipelining to recover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .report import format_size, format_table
from .table1 import HEIGHTS, WIDTH

__all__ = ["OverlapRow", "run", "format_results", "STREAMS"]

STREAMS = 4


@dataclass(frozen=True)
class OverlapRow:
    """Serial vs overlapped modeled seconds for one shape."""

    height: int
    width: int
    serial_ms: float
    overlap_ms: float
    critical_path_ms: float
    best_streams: int

    @property
    def speedup(self) -> float:
        return self.serial_ms / self.overlap_ms

    @property
    def hidden_pct(self) -> float:
        """Share of the serial runtime hidden by overlap."""
        return 100.0 * (1.0 - self.overlap_ms / self.serial_ms)


def run(
    heights: tuple[int, ...] = HEIGHTS,
    width: int = WIDTH,
    streams: int = STREAMS,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> list[OverlapRow]:
    from repro.graph import simulate_caqr_overlap

    rows = []
    for h in heights:
        r = simulate_caqr_overlap(h, width, cfg, dev, streams=streams)
        rows.append(
            OverlapRow(
                height=h,
                width=width,
                serial_ms=r.serial_seconds * 1e3,
                overlap_ms=r.overlap_seconds * 1e3,
                critical_path_ms=r.critical_path_seconds * 1e3,
                best_streams=r.best_streams,
            )
        )
    return rows


def format_results(rows: list[OverlapRow]) -> str:
    body = [
        (
            format_size(r.height, r.width),
            r.serial_ms,
            r.overlap_ms,
            r.critical_path_ms,
            f"{r.speedup:.3f}x",
            r.best_streams,
        )
        for r in rows
    ]
    return format_table(
        ["size", "serial ms", "overlap ms", "crit-path ms", "speedup", "best S"],
        body,
        title=f"Modeled multi-stream overlap (look-ahead DAG, up to {STREAMS} streams)",
        float_fmt="{:.3f}",
    )
