"""Distributed-memory communication study: TSQR vs column Householder.

The original TSQR argument (the paper's Section I citations): on P
processors a reduction-tree QR needs ``log2 P`` critical-path messages
regardless of the column count, while column-by-column Householder pays
two collectives per column — ``2 n log2 P``.  This study runs the actual
simulated algorithm (:mod:`repro.distributed`), counts its traffic, and
prices both algorithms under alpha-beta network models from fast
interconnects to grid computing ("where communication is exceptionally
expensive", the Agullo et al. setting the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed import (
    distributed_tsqr,
    householder_message_count,
    tsqr_message_lower_bound,
)

from .report import format_table

__all__ = ["NETWORKS", "DistributedRow", "run", "format_results"]

#: (name, alpha in us, beta in ns/word) — per-message latency dominates
#: progressively more as we move right.
NETWORKS = (
    ("cluster (1 us, 2 ns/w)", 1.0, 2.0),
    ("ethernet (50 us, 10 ns/w)", 50.0, 10.0),
    ("grid (10 ms, 100 ns/w)", 10_000.0, 100.0),
)


@dataclass(frozen=True)
class DistributedRow:
    p: int
    n: int
    tsqr_messages: int
    hh_messages: int
    tsqr_words: float
    network_speedups: dict  # network name -> householder/tsqr comm-time ratio


def run(
    ps: tuple[int, ...] = (4, 16, 64, 256),
    n: int = 32,
    rows_per_rank: int = 64,
) -> list[DistributedRow]:
    rows = []
    rng = np.random.default_rng(0)
    for p in ps:
        A = rng.standard_normal((p * rows_per_rank, n))
        res = distributed_tsqr(A, p)
        tsqr_msgs = res.rounds
        tsqr_words = res.rounds * n * (n + 1) / 2.0  # critical path
        hh_msgs = householder_message_count(n, p)
        hh_words = 2.0 * n * tsqr_message_lower_bound(p) * n  # column pieces
        speedups = {}
        for name, alpha_us, beta_ns in NETWORKS:
            t_tsqr = tsqr_msgs * alpha_us * 1e-6 + tsqr_words * beta_ns * 1e-9
            t_hh = hh_msgs * alpha_us * 1e-6 + hh_words * beta_ns * 1e-9
            speedups[name] = t_hh / t_tsqr if t_tsqr > 0 else float("inf")
        rows.append(
            DistributedRow(
                p=p,
                n=n,
                tsqr_messages=tsqr_msgs,
                hh_messages=hh_msgs,
                tsqr_words=tsqr_words,
                network_speedups=speedups,
            )
        )
    return rows


def format_results(rows: list[DistributedRow]) -> str:
    headers = ["P", "TSQR msgs", "HH msgs"] + [f"speedup: {name}" for name, _, _ in NETWORKS]
    body = []
    for r in rows:
        body.append(
            [r.p, r.tsqr_messages, r.hh_messages]
            + [r.network_speedups[name] for name, _, _ in NETWORKS]
        )
    return format_table(
        headers,
        body,
        title=f"Distributed TSQR vs column Householder (n={rows[0].n if rows else '?'}, critical-path alpha-beta model)",
        float_fmt="{:.0f}x",
    )
