"""Section IV-E: the four reduction strategies on 128x16 blocks.

Reproduces the tuning narrative — 55, 168, 194, 388 GFLOPS — and the
Section IV-G summary ("from 55 GFLOPS to 388 GFLOPS using low-level
tuning").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.strategies import PAPER_STRATEGY_GFLOPS, STRATEGIES, strategy_gflops

from .report import format_table

__all__ = ["StrategyRow", "run", "format_results", "PAPER_STRATEGY_GFLOPS"]


@dataclass(frozen=True)
class StrategyRow:
    strategy: str
    model_gflops: float
    paper_gflops: float

    @property
    def ratio(self) -> float:
        return self.model_gflops / self.paper_gflops


def run(mb: int = 128, nb: int = 16, dev: DeviceSpec = C2050) -> list[StrategyRow]:
    """Evaluate all four strategies under microbenchmark conditions."""
    return [
        StrategyRow(
            strategy=s,
            model_gflops=strategy_gflops(s, mb, nb, dev),
            paper_gflops=PAPER_STRATEGY_GFLOPS[s],
        )
        for s in STRATEGIES
    ]


def format_results(rows: list[StrategyRow]) -> str:
    return format_table(
        ["strategy", "model GFLOPS", "paper GFLOPS", "ratio"],
        [(r.strategy, r.model_gflops, r.paper_gflops, r.ratio) for r in rows],
        title="Section IV-E: matvec + rank-1 strategies on 128x16 blocks (C2050)",
    )
