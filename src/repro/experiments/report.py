"""Plain-text rendering helpers for experiment output.

Experiments return structured rows; these helpers print them as aligned
tables with optional paper-reference columns, so benchmark logs read like
the paper's own tables.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_size"]


def format_size(m: int, n: int) -> str:
    """Matrix-size label in the paper's style: '1k x 192', '1M x 192'."""

    def short(v: int) -> str:
        if v >= 1_000_000 and v % 1_000_000 == 0:
            return f"{v // 1_000_000}M"
        if v >= 1_000 and v % 1_000 == 0:
            return f"{v // 1_000}k"
        return str(v)

    return f"{short(m)} x {short(n)}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered = [
        [float_fmt.format(c) if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
