"""Numerical-stability study across QR algorithms (Section II's claim).

"Cholesky QR and the Gram-Schmidt process are not as numerically stable,
so most general-purpose software for QR uses either Givens rotations or
Householder reflectors."  This experiment measures loss of orthogonality
``||Q^T Q - I||`` as a function of the condition number for every
algorithm in the library, in both double and the paper's single
precision, exhibiting the classic separations: Householder (TSQR/CAQR/
blocked) ~ eps, MGS ~ eps * cond, CGS and CholeskyQR ~ eps * cond^2
(with CholeskyQR failing outright past cond ~ 1/sqrt(eps)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocked import blocked_qr
from repro.core.caqr import caqr_qr
from repro.core.cholesky_qr import cholesky_qr
from repro.core.givens import givens_qr
from repro.core.gram_schmidt import classical_gram_schmidt, modified_gram_schmidt
from repro.core.triangular import SingularTriangularError
from repro.core.tsqr import tsqr_qr
from repro.core.validation import orthogonality_error

from .report import format_table

__all__ = ["StabilityRow", "ALGORITHMS", "run", "format_results", "make_conditioned"]

ALGORITHMS = {
    "tsqr": lambda A: tsqr_qr(A, block_rows=64),
    "caqr": lambda A: caqr_qr(A, panel_width=8, block_rows=32),
    "blocked_hh": lambda A: blocked_qr(A, nb=8),
    "givens": givens_qr,
    "mgs": modified_gram_schmidt,
    "cgs": classical_gram_schmidt,
    "cholqr": cholesky_qr,
}


def make_conditioned(m: int, n: int, cond: float, seed: int = 0) -> np.ndarray:
    """Random matrix with geometrically spaced singular values 1 .. 1/cond."""
    rng = np.random.default_rng(seed)
    U, _, Vt = np.linalg.svd(rng.standard_normal((m, n)), full_matrices=False)
    s = np.logspace(0.0, -np.log10(cond), n)
    return (U * s) @ Vt


@dataclass(frozen=True)
class StabilityRow:
    cond: float
    errors: dict[str, float]  # algorithm -> ||QtQ - I|| (inf = breakdown)


def run(
    conds: tuple[float, ...] = (1e1, 1e4, 1e7, 1e10, 1e13),
    m: int = 400,
    n: int = 16,
    dtype=np.float64,
) -> list[StabilityRow]:
    rows = []
    for i, cond in enumerate(conds):
        A = make_conditioned(m, n, cond, seed=i).astype(dtype)
        errors = {}
        for name, fn in ALGORITHMS.items():
            try:
                Q, _ = fn(A)
                errors[name] = orthogonality_error(Q)
            except SingularTriangularError:
                errors[name] = float("inf")  # Cholesky breakdown
            except ValueError:
                errors[name] = float("inf")  # rank-deficiency abort (GS)
        rows.append(StabilityRow(cond=cond, errors=errors))
    return rows


def format_results(rows: list[StabilityRow], title: str | None = None) -> str:
    names = list(ALGORITHMS)
    body = []
    for r in rows:
        body.append(
            [f"{r.cond:.0e}"]
            + [("breakdown" if np.isinf(r.errors[n]) else f"{r.errors[n]:.1e}") for n in names]
        )
    return format_table(
        ["cond(A)"] + names,
        body,
        title=title or "Loss of orthogonality ||Q^T Q - I|| vs condition number",
    )
