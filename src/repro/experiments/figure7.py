"""Figure 7: apply_qt_h performance across block sizes, and the autotuned pick.

The paper's chart shows single-precision GFLOPS for a grid of block
shapes, with the best overall performance at 128x16 (388 GFLOPS).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig
from repro.tuning.autotune import SweepEntry, autotune

from .report import format_table

__all__ = ["Figure7Result", "run", "format_results", "PAPER_BEST"]

#: The paper's tuning outcome: 128x16 blocks at 388 GFLOPS.
PAPER_BEST = {"height": 128, "width": 16, "gflops": 388.0}


@dataclass
class Figure7Result:
    entries: list[SweepEntry]
    best: SweepEntry
    tuned_config: KernelConfig

    def entry(self, height: int, width: int) -> SweepEntry | None:
        for e in self.entries:
            if e.height == height and e.width == width:
                return e
        return None


def run(cfg: KernelConfig = REFERENCE_CONFIG, dev: DeviceSpec = C2050) -> Figure7Result:
    tuned, entries = autotune(cfg, dev)
    return Figure7Result(entries=entries, best=entries[0], tuned_config=tuned)


def format_results(result: Figure7Result, top: int = 12) -> str:
    rows = [(e.height, e.width, e.gflops) for e in result.entries[:top]]
    table = format_table(
        ["height", "width", "GFLOPS"],
        rows,
        title="Figure 7: apply_qt_h block-size sweep (top entries, C2050)",
        float_fmt="{:.1f}",
    )
    ref = result.entry(PAPER_BEST["height"], PAPER_BEST["width"])
    ref_line = (
        f"\npaper best: 128 x 16 at {PAPER_BEST['gflops']:.0f} GFLOPS; "
        f"model at 128 x 16: {ref.gflops:.1f} GFLOPS" if ref else ""
    )
    return table + ref_line
