"""Hardware projection: how the paper's conclusions age with the hardware.

The paper closes noting "it is likely that both [CPU and GPU CAQR] will
be needed in future libraries".  This study re-runs the headline
comparisons on projected devices — compute scaled faster than bandwidth
(the actual trajectory from Fermi onward) — and reports how the
tall-skinny speedup and the Figure-9 crossover move: compute-rich,
bandwidth-starved devices widen CAQR's advantage (it is compute-bound;
the panel baselines are bandwidth/latency-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import CULAQR, MAGMAQR
from repro.caqr_gpu import simulate_caqr
from repro.dispatch import QRDispatcher
from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .report import format_table

__all__ = ["ProjectedDevice", "DEVICES", "run", "format_results", "ProjectionRow"]


@dataclass(frozen=True)
class ProjectedDevice:
    name: str
    compute_scale: float  # SM count multiplier
    bandwidth_scale: float
    gemm_scale: float

    def device(self, base: DeviceSpec = C2050) -> DeviceSpec:
        return base.with_(
            name=self.name,
            n_sm=int(round(base.n_sm * self.compute_scale)),
            dram_bw_gbs=base.dram_bw_gbs * self.bandwidth_scale,
            gemm_peak_gflops=base.gemm_peak_gflops * self.compute_scale * self.gemm_scale,
        )


#: Fermi baseline plus flops-outpace-bandwidth projections.
DEVICES = (
    ProjectedDevice("C2050 (2011)", 1.0, 1.0, 1.0),
    ProjectedDevice("Kepler-like (2x flops, 1.6x bw)", 2.0, 1.6, 1.0),
    ProjectedDevice("Pascal-like (6x flops, 3x bw)", 6.0, 3.0, 1.0),
    ProjectedDevice("bandwidth-starved (4x flops, 1x bw)", 4.0, 1.0, 1.0),
)


@dataclass(frozen=True)
class ProjectionRow:
    device: str
    caqr_1m192: float  # GFLOPS at 1M x 192
    speedup_vs_best_lib: float
    crossover_width: float | None  # at height 8192


def run(
    devices: tuple[ProjectedDevice, ...] = DEVICES,
    cfg: KernelConfig = REFERENCE_CONFIG,
) -> list[ProjectionRow]:
    rows = []
    for pd in devices:
        dev = pd.device()
        caqr = simulate_caqr(1_000_000, 192, cfg, dev).gflops
        best_lib = max(
            MAGMAQR(gpu=dev).simulate(1_000_000, 192).gflops,
            CULAQR(gpu=dev).simulate(1_000_000, 192).gflops,
        )
        x = QRDispatcher(device=dev, config=cfg, include_cpu=False).crossover_width(8192)
        rows.append(
            ProjectionRow(
                device=pd.name,
                caqr_1m192=caqr,
                speedup_vs_best_lib=caqr / best_lib,
                crossover_width=float(x) if x is not None else None,
            )
        )
    return rows


def format_results(rows: list[ProjectionRow]) -> str:
    return format_table(
        ["device", "CAQR @ 1M x 192", "speedup vs best lib", "crossover (h=8192)"],
        [
            (
                r.device,
                r.caqr_1m192,
                r.speedup_vs_best_lib,
                r.crossover_width if r.crossover_width is not None else "never",
            )
            for r in rows
        ],
        title="Hardware projection: tall-skinny advantage and crossover vs device balance",
        float_fmt="{:.1f}",
    )
