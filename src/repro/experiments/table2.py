"""Table II: Robust PCA iterations/second on the 110,592 x 100 video matrix.

=================  ==============  ====================
SVD engine         platform        iterations / second
=================  ==============  ====================
MKL SVD            4-core CPU      0.9
BLAS2 QR           GTX480          8.7
CAQR               GTX480          27.0
=================  ==============  ====================

Plus the end-to-end narrative: 3x from CAQR over the tuned BLAS2 QR
(Amdahl-limited even though the QR itself speeds up more) and 30x over
the CPU, "reducing the time to solve the problem completely from over
nine minutes to 17 seconds".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rpca.timing import ITERATION_ENGINES, RPCAIterationModel

from .report import format_table

__all__ = ["PAPER_TABLE2", "Table2Row", "run", "format_results", "VIDEO_M", "VIDEO_N"]

VIDEO_M = 110_592  # 288 x 384 pixels per frame
VIDEO_N = 100  # frames
FULL_RUN_ITERATIONS = 500  # "technically takes over 500 iterations"

PAPER_TABLE2 = {"mkl_svd": 0.9, "blas2_qr": 8.7, "caqr": 27.0}


@dataclass(frozen=True)
class Table2Row:
    engine: str
    iterations_per_second: float
    paper_iterations_per_second: float
    breakdown: dict[str, float]

    @property
    def ratio(self) -> float:
        return self.iterations_per_second / self.paper_iterations_per_second

    @property
    def full_run_seconds(self) -> float:
        return FULL_RUN_ITERATIONS / self.iterations_per_second


def run(m: int = VIDEO_M, n: int = VIDEO_N) -> list[Table2Row]:
    rows = []
    for engine in ITERATION_ENGINES:
        model = RPCAIterationModel(engine=engine)
        ips = model.iterations_per_second(m, n)
        rows.append(
            Table2Row(
                engine=engine,
                iterations_per_second=ips,
                paper_iterations_per_second=PAPER_TABLE2[engine],
                breakdown=dict(model.breakdown),
            )
        )
    return rows


def speedups(rows: list[Table2Row]) -> dict[str, float]:
    by = {r.engine: r.iterations_per_second for r in rows}
    return {
        "caqr_vs_blas2": by["caqr"] / by["blas2_qr"],  # paper: ~3x
        "caqr_vs_mkl": by["caqr"] / by["mkl_svd"],  # paper: ~30x
        "blas2_vs_mkl": by["blas2_qr"] / by["mkl_svd"],  # paper: ~9.6x
    }


def format_results(rows: list[Table2Row]) -> str:
    table = format_table(
        ["SVD type", "model it/s", "paper it/s", "ratio", "500-iter run (s)"],
        [
            (r.engine, r.iterations_per_second, r.paper_iterations_per_second, r.ratio, r.full_run_seconds)
            for r in rows
        ],
        title=f"Table II: Robust PCA on the {VIDEO_M} x {VIDEO_N} video matrix",
    )
    s = speedups(rows)
    return table + (
        f"\nCAQR vs BLAS2: {s['caqr_vs_blas2']:.1f}x (paper ~3x) | "
        f"CAQR vs MKL: {s['caqr_vs_mkl']:.1f}x (paper ~30x) | "
        f"BLAS2 vs MKL: {s['blas2_vs_mkl']:.1f}x (paper ~9.6x)"
    )
