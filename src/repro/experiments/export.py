"""CSV export of every table and figure (for external plotting).

The benchmark harness archives human-readable tables; this module emits
machine-readable CSV so the figures can be re-plotted with any tool.
``export_all`` writes one file per artifact into a directory.
"""

from __future__ import annotations

import csv
from pathlib import Path

from . import figure9, strategies_table, table1, table2

__all__ = ["export_figure9", "export_table1", "export_table2", "export_strategies", "export_all"]


def _write(path: Path, header: list[str], rows: list[list]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(header)
        w.writerows(rows)
    return path


def export_strategies(directory: str | Path) -> Path:
    rows = strategies_table.run()
    return _write(
        Path(directory) / "strategies.csv",
        ["strategy", "model_gflops", "paper_gflops"],
        [[r.strategy, r.model_gflops, r.paper_gflops] for r in rows],
    )


def export_figure9(directory: str | Path, widths: tuple[int, ...] | None = None) -> Path:
    result = figure9.run(widths=widths) if widths else figure9.run()
    return _write(
        Path(directory) / "figure9.csv",
        ["width", "caqr_gflops", "magma_gflops", "cula_gflops", "mkl_gflops"],
        [[r.width, r.caqr, r.magma, r.cula, r.mkl] for r in result.rows],
    )


def export_table1(directory: str | Path) -> Path:
    rows = table1.run()
    return _write(
        Path(directory) / "table1.csv",
        [
            "height",
            "caqr_gflops",
            "magma_gflops",
            "cula_gflops",
            "mkl_gflops",
            "paper_caqr",
            "paper_magma",
            "paper_cula",
            "paper_mkl",
        ],
        [
            [r.height, r.caqr, r.magma, r.cula, r.mkl, *table1.PAPER_TABLE1[r.height]]
            for r in rows
        ],
    )


def export_table2(directory: str | Path) -> Path:
    rows = table2.run()
    return _write(
        Path(directory) / "table2.csv",
        ["engine", "model_iterations_per_second", "paper_iterations_per_second"],
        [[r.engine, r.iterations_per_second, r.paper_iterations_per_second] for r in rows],
    )


def export_all(directory: str | Path) -> list[Path]:
    """Write every artifact's CSV; returns the paths written."""
    return [
        export_strategies(directory),
        export_figure9(directory),
        export_table1(directory),
        export_table2(directory),
    ]
