"""Figure 8: CAQR speedup vs SGEQRF of each library across matrix shapes.

The paper's scatter spans skinny-to-square sizes; the dashed line marks
the crossover "to the right of which the libraries outperform our QR".
This experiment evaluates the speedup of CAQR over each library on a
height x width grid and locates the crossover frontier per height.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import CULAQR, MAGMAQR, MKLQR
from repro.caqr_gpu import simulate_caqr
from repro.gpusim.device import C2050, DeviceSpec
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .report import format_size, format_table

__all__ = ["Figure8Point", "Figure8Result", "run", "format_results", "DEFAULT_GRID"]

DEFAULT_GRID = {
    "heights": (8192, 65_536, 524_288),
    "widths": (64, 192, 512, 1024, 2048, 4096, 8192),
}


@dataclass(frozen=True)
class Figure8Point:
    height: int
    width: int
    caqr_gflops: float
    speedup_vs_magma: float
    speedup_vs_cula: float
    speedup_vs_mkl: float

    @property
    def speedup_vs_best(self) -> float:
        return min(self.speedup_vs_magma, self.speedup_vs_cula, self.speedup_vs_mkl)


@dataclass
class Figure8Result:
    points: list[Figure8Point]

    def crossover_frontier(self) -> dict[int, float | None]:
        """Per height: first width where some library beats CAQR."""
        frontier: dict[int, float | None] = {}
        heights = sorted({p.height for p in self.points})
        for h in heights:
            row = sorted((p for p in self.points if p.height == h), key=lambda p: p.width)
            frontier[h] = None
            for p in row:
                if p.width <= h and p.speedup_vs_best < 1.0:
                    frontier[h] = float(p.width)
                    break
        return frontier

    def max_speedups(self) -> dict[str, float]:
        tall = [p for p in self.points if p.width <= p.height]
        return {
            "vs_magma": max(p.speedup_vs_magma for p in tall),
            "vs_cula": max(p.speedup_vs_cula for p in tall),
            "vs_mkl": max(p.speedup_vs_mkl for p in tall),
        }


def run(
    heights: tuple[int, ...] = DEFAULT_GRID["heights"],
    widths: tuple[int, ...] = DEFAULT_GRID["widths"],
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> Figure8Result:
    magma, cula, mkl = MAGMAQR(gpu=dev), CULAQR(gpu=dev), MKLQR()
    points = []
    for h in heights:
        for w in widths:
            if w > h:
                continue  # the paper's grid stays at or left of square
            c = simulate_caqr(h, w, cfg, dev).gflops
            points.append(
                Figure8Point(
                    height=h,
                    width=w,
                    caqr_gflops=c,
                    speedup_vs_magma=c / magma.simulate(h, w).gflops,
                    speedup_vs_cula=c / cula.simulate(h, w).gflops,
                    speedup_vs_mkl=c / mkl.simulate(h, w).gflops,
                )
            )
    return Figure8Result(points=points)


def format_results(result: Figure8Result) -> str:
    table = format_table(
        ["size", "CAQR GF", "vs MAGMA", "vs CULA", "vs MKL"],
        [
            (format_size(p.height, p.width), p.caqr_gflops, p.speedup_vs_magma, p.speedup_vs_cula, p.speedup_vs_mkl)
            for p in result.points
        ],
        title="Figure 8: CAQR speedup vs SGEQRF of each library",
        float_fmt="{:.2f}",
    )
    frontier = result.crossover_frontier()
    lines = [f"  height {h}: crossover at width {w if w else '> grid'}" for h, w in frontier.items()]
    return table + "\ncrossover frontier (dashed line):\n" + "\n".join(lines)
