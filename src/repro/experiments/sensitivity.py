"""Hardware-sensitivity studies of the performance model.

The paper's qualitative claims tie each regime to a hardware resource:
CAQR's kernels are *compute*-bound (so DRAM bandwidth barely moves
them), the BLAS2 panel approaches are *bandwidth*-bound, the hybrids are
*PCIe-latency*-sensitive for skinny matrices, and tiny problems are
*launch-overhead*-bound.  These sweeps perturb one device parameter at a
time and measure the response — both a robustness check on the
calibration and the quantitative version of Section III's discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import BLAS2GPUQR, MAGMAQR
from repro.caqr_gpu import simulate_caqr
from repro.gpusim.device import C2050, PCIE_GEN2, DeviceSpec, PCIeLink
from repro.kernels.config import REFERENCE_CONFIG, KernelConfig

from .report import format_table

__all__ = [
    "SensitivityRow",
    "dram_bandwidth_sweep",
    "pcie_latency_sweep",
    "launch_overhead_sweep",
    "format_sweep",
]


@dataclass(frozen=True)
class SensitivityRow:
    parameter: str
    value: float
    caqr_gflops: float
    baseline_gflops: float
    baseline_name: str


def dram_bandwidth_sweep(
    scales: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
    m: int = 500_000,
    n: int = 192,
    cfg: KernelConfig = REFERENCE_CONFIG,
) -> list[SensitivityRow]:
    """Scale DRAM bandwidth: CAQR (compute-bound) vs BLAS2 QR (bw-bound)."""
    rows = []
    for s in scales:
        dev = C2050.with_(dram_bw_gbs=C2050.dram_bw_gbs * s)
        caqr_g = simulate_caqr(m, n, cfg, dev).gflops
        blas2 = BLAS2GPUQR(gpu=dev).simulate(m, n).gflops
        rows.append(
            SensitivityRow("dram_bw_scale", s, caqr_g, blas2, "BLAS2-GPU")
        )
    return rows


def pcie_latency_sweep(
    latencies_us: tuple[float, ...] = (1.0, 12.0, 50.0, 200.0, 1000.0),
    m: int = 1_000,
    n: int = 192,
    cfg: KernelConfig = REFERENCE_CONFIG,
) -> list[SensitivityRow]:
    """Vary PCIe latency: GPU-only CAQR never touches the link; the
    hybrid pays two transfers per panel (Section III-A's disadvantage),
    which dominates exactly in the small-and-skinny regime."""
    rows = []
    caqr_g = simulate_caqr(m, n, cfg, C2050).gflops
    for lat in latencies_us:
        link = PCIeLink(name="pcie", bw_gbs=PCIE_GEN2.bw_gbs, latency_us=lat)
        magma = MAGMAQR(link=link).simulate(m, n).gflops
        rows.append(SensitivityRow("pcie_latency_us", lat, caqr_g, magma, "MAGMA"))
    return rows


def launch_overhead_sweep(
    overheads_us: tuple[float, ...] = (2.0, 5.0, 15.0, 30.0, 60.0),
    m: int = 1_000,
    n: int = 192,
    cfg: KernelConfig = REFERENCE_CONFIG,
) -> list[SensitivityRow]:
    """Vary kernel-launch overhead at a tiny size: the 1k x 192 row of
    Table I is launch-dominated, the 1M row is not."""
    rows = []
    for oh in overheads_us:
        dev = C2050.with_(kernel_launch_us=oh)
        small = simulate_caqr(m, n, cfg, dev).gflops
        big = simulate_caqr(1_000_000, n, cfg, dev).gflops
        rows.append(SensitivityRow("launch_us", oh, small, big, "CAQR@1M"))
    return rows


def format_sweep(rows: list[SensitivityRow], title: str) -> str:
    return format_table(
        [rows[0].parameter if rows else "value", "CAQR GFLOPS", f"{rows[0].baseline_name if rows else ''} GFLOPS"],
        [(r.value, r.caqr_gflops, r.baseline_gflops) for r in rows],
        title=title,
        float_fmt="{:.1f}",
    )
