"""Experiment drivers — one module per table/figure of the evaluation.

==================  ========================================================
module              reproduces
==================  ========================================================
strategies_table    Section IV-E: 55/168/194/388 GFLOPS strategy list
figure7             Figure 7: block-size sweep + autotuned pick (128x16)
figure8             Figure 8: speedup grid and crossover frontier
figure9             Figure 9: GFLOPS vs width at height 8192 (~4000 cross)
table1              Table I: very tall-skinny GFLOPS (1k..1M x 192)
table2              Table II: Robust PCA iterations/second
ablations           tree shape, transpose, panel width, hybrid vs GPU-only
sensitivity         DRAM-bw / PCIe-latency / launch-overhead sweeps
communication       DRAM words vs the Omega(mn^2/sqrt(M)) lower bound
stability           loss of orthogonality vs condition number
overlap_study       modeled multi-stream overlap on the Table-I shapes
projection          headline results on flops-outpace-bandwidth devices
distributed_study   TSQR vs Householder messages on P simulated ranks
==================  ========================================================
"""

from . import (
    ablations,
    communication,
    distributed_study,
    export,
    figure7,
    figure8,
    figure9,
    overlap_study,
    projection,
    sensitivity,
    stability,
    strategies_table,
    table1,
    table2,
)
from .ascii_chart import ascii_chart
from .report import format_size, format_table

__all__ = [
    "ablations",
    "communication",
    "distributed_study",
    "export",
    "overlap_study",
    "projection",
    "sensitivity",
    "stability",
    "figure7",
    "figure8",
    "figure9",
    "strategies_table",
    "table1",
    "table2",
    "ascii_chart",
    "format_size",
    "format_table",
]
