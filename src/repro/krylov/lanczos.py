"""Lanczos iterations for symmetric operators: classical and s-step.

The symmetric sibling of Arnoldi: for SPD operators (the Laplacians of
the s-step literature) the projected matrix is tridiagonal and its
eigenvalues (Ritz values) approximate the operator's extremal spectrum.
The s-step variant builds the basis in matrix-powers blocks
orthogonalized with TSQR — full reorthogonalization included, which is
precisely what makes communication-avoiding Lanczos usable (classical
three-term Lanczos without reorthogonalization loses orthogonality and
produces ghost eigenvalues).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arnoldi import arnoldi, sstep_arnoldi
from .operators import LinearOperator

__all__ = ["LanczosResult", "lanczos", "sstep_lanczos", "ritz_values"]


@dataclass
class LanczosResult:
    """Tridiagonal projection of a symmetric operator."""

    V: np.ndarray  # n x (m+1) orthonormal basis
    alpha: np.ndarray  # diagonal of T (length m)
    beta: np.ndarray  # subdiagonal of T (length m-1)

    @property
    def T(self) -> np.ndarray:
        m = self.alpha.size
        T = np.diag(self.alpha)
        if m > 1:
            T += np.diag(self.beta, 1) + np.diag(self.beta, -1)
        return T

    def ritz_values(self) -> np.ndarray:
        return np.sort(np.linalg.eigvalsh(self.T))


def lanczos(
    op: LinearOperator,
    v0: np.ndarray,
    m: int,
    reorthogonalize: bool = True,
) -> LanczosResult:
    """Classical Lanczos (optionally with full reorthogonalization).

    With ``reorthogonalize=False`` this is the textbook three-term
    recurrence, included to demonstrate the orthogonality loss that
    motivates the QR-based variants.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    v0 = np.asarray(v0, dtype=float)
    nrm = np.linalg.norm(v0)
    if nrm == 0.0:
        raise ValueError("starting vector must be nonzero")
    n = op.n
    V = np.zeros((n, m + 1))
    alpha = np.zeros(m)
    beta = np.zeros(max(m - 1, 0))
    V[:, 0] = v0 / nrm
    prev_beta = 0.0
    for j in range(m):
        w = op(V[:, j])
        if j > 0:
            w -= prev_beta * V[:, j - 1]
        alpha[j] = float(V[:, j] @ w)
        w -= alpha[j] * V[:, j]
        if reorthogonalize:
            w -= V[:, : j + 1] @ (V[:, : j + 1].T @ w)
        b = float(np.linalg.norm(w))
        if b < 1e-14:
            return LanczosResult(V=V[:, : j + 1], alpha=alpha[: j + 1], beta=beta[:j])
        if j < m - 1:
            beta[j] = b
        prev_beta = b
        V[:, j + 1] = w / b
    return LanczosResult(V=V, alpha=alpha, beta=beta)


def sstep_lanczos(
    op: LinearOperator,
    v0: np.ndarray,
    s: int,
    n_blocks: int,
    block_rows: int = 1024,
) -> LanczosResult:
    """s-step Lanczos: the TSQR-orthogonalized basis + tridiagonal read-off.

    Builds the basis with :func:`~repro.krylov.arnoldi.sstep_arnoldi`
    (matrix powers + block CGS2 + TSQR); for a symmetric operator the
    recovered projection is symmetric tridiagonal up to rounding, and we
    symmetrize and read off its diagonals.
    """
    res = sstep_arnoldi(op, v0, s=s, n_blocks=n_blocks, block_rows=block_rows)
    m = res.V.shape[1] - 1
    H = res.H[: m + 1, :m]
    Hm = 0.5 * (H[:m] + H[:m].T)  # symmetrize the square part
    alpha = np.diag(Hm).copy()
    beta = np.diag(Hm, 1).copy()
    return LanczosResult(V=res.V, alpha=alpha, beta=beta)


def ritz_values(
    op: LinearOperator,
    v0: np.ndarray,
    m: int,
    method: str = "sstep",
    s: int = 5,
) -> np.ndarray:
    """Extremal-eigenvalue estimates via the chosen Lanczos variant."""
    if method == "classical":
        return lanczos(op, v0, m).ritz_values()
    if method == "classical-noreorth":
        return lanczos(op, v0, m, reorthogonalize=False).ritz_values()
    if method == "sstep":
        return sstep_lanczos(op, v0, s=s, n_blocks=max(m // s, 1)).ritz_values()
    raise ValueError(f"unknown method {method!r}")
