"""Matrix-free linear operators for the Krylov workloads.

The s-step Krylov use case (Section I, citing Mohiyuddin et al.) applies
QR to bases of millions of rows; materializing the operator would defeat
the point.  These operators expose only ``matvec`` (and shape), the way
communication-avoiding solvers consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["LinearOperator", "laplacian_1d", "laplacian_2d", "tridiagonal", "from_dense"]


@dataclass(frozen=True)
class LinearOperator:
    """A square operator defined by its matvec."""

    n: int
    matvec: Callable[[np.ndarray], np.ndarray]
    name: str = "operator"

    def __call__(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        if v.shape != (self.n,):
            raise ValueError(f"vector of length {self.n} expected, got {v.shape}")
        return self.matvec(v)

    def to_dense(self) -> np.ndarray:
        """Materialize (tests / small problems only)."""
        A = np.empty((self.n, self.n))
        e = np.zeros(self.n)
        for j in range(self.n):
            e[j] = 1.0
            A[:, j] = self.matvec(e)
            e[j] = 0.0
        return A


def laplacian_1d(n: int) -> LinearOperator:
    """1-D Dirichlet Laplacian: tridiag(-1, 2, -1)."""

    def mv(v: np.ndarray) -> np.ndarray:
        out = 2.0 * v
        out[:-1] -= v[1:]
        out[1:] -= v[:-1]
        return out

    return LinearOperator(n=n, matvec=mv, name=f"laplacian_1d({n})")


def laplacian_2d(nx: int, ny: int) -> LinearOperator:
    """2-D 5-point Dirichlet Laplacian on an nx x ny grid."""

    def mv(v: np.ndarray) -> np.ndarray:
        g = v.reshape(nx, ny)
        out = 4.0 * g.copy()
        out[:-1, :] -= g[1:, :]
        out[1:, :] -= g[:-1, :]
        out[:, :-1] -= g[:, 1:]
        out[:, 1:] -= g[:, :-1]
        return out.ravel()

    return LinearOperator(n=nx * ny, matvec=mv, name=f"laplacian_2d({nx}x{ny})")


def tridiagonal(lower: float, diag: float, upper: float, n: int) -> LinearOperator:
    """General constant-coefficient tridiagonal operator."""

    def mv(v: np.ndarray) -> np.ndarray:
        out = diag * v
        out[:-1] += upper * v[1:]
        out[1:] += lower * v[:-1]
        return out

    return LinearOperator(n=n, matvec=mv, name=f"tridiag({lower},{diag},{upper})")


def from_dense(A: np.ndarray, name: str = "dense") -> LinearOperator:
    """Wrap a dense matrix (tests and comparisons)."""
    A = np.asarray(A, dtype=float)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    return LinearOperator(n=A.shape[0], matvec=lambda v: A @ v, name=name)
