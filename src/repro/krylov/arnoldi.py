"""Arnoldi iterations: classical and s-step (TSQR-orthogonalized).

The classical algorithm orthogonalizes one vector at a time (modified
Gram-Schmidt) — a latency-bound sequence of vector operations.  The
s-step variant generates a block of ``s`` candidate basis vectors with
matrix powers, orthogonalizes the whole block against the existing basis
(block CGS, applied twice), and factors the block with **TSQR** — turning
the panel work into exactly the tall-skinny QR the paper accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tsqr import tsqr
from repro.runtime.policy import ExecutionPolicy

from .basis import newton_basis
from .operators import LinearOperator

__all__ = ["ArnoldiResult", "arnoldi", "sstep_arnoldi", "hessenberg_from_basis"]


@dataclass
class ArnoldiResult:
    """Orthonormal Krylov basis with its (rectangular) Hessenberg matrix.

    Satisfies ``A V[:, :m] = V H`` with ``V`` of shape ``n x (m+1)`` and
    ``H`` of shape ``(m+1) x m`` (upper Hessenberg), unless the iteration
    found an invariant subspace (``breakdown`` index set, V square).
    """

    V: np.ndarray
    H: np.ndarray
    breakdown: int | None = None

    @property
    def m(self) -> int:
        return self.H.shape[1]

    def relation_residual(self, op: LinearOperator) -> float:
        """``||A V_m - V H|| / ||H||`` — the Arnoldi-relation check."""
        AV = np.column_stack([op(self.V[:, j]) for j in range(self.m)])
        return float(np.linalg.norm(AV - self.V @ self.H) / max(np.linalg.norm(self.H), 1e-30))


def arnoldi(op: LinearOperator, v0: np.ndarray, m: int, reorth: bool = True) -> ArnoldiResult:
    """Classical Arnoldi with modified Gram-Schmidt (optionally twice)."""
    if m < 1:
        raise ValueError("m must be >= 1")
    v0 = np.asarray(v0, dtype=float)
    beta = np.linalg.norm(v0)
    if beta == 0.0:
        raise ValueError("starting vector must be nonzero")
    V = np.zeros((op.n, m + 1))
    H = np.zeros((m + 1, m))
    V[:, 0] = v0 / beta
    for j in range(m):
        w = op(V[:, j])
        for i in range(j + 1):
            h = float(V[:, i] @ w)
            H[i, j] += h
            w -= h * V[:, i]
        if reorth:
            for i in range(j + 1):
                c = float(V[:, i] @ w)
                H[i, j] += c
                w -= c * V[:, i]
        nrm = float(np.linalg.norm(w))
        if nrm < 1e-14 * abs(H[: j + 1, j]).max():
            return ArnoldiResult(V=V[:, : j + 1], H=H[: j + 1, : j + 1], breakdown=j + 1)
        H[j + 1, j] = nrm
        V[:, j + 1] = w / nrm
    return ArnoldiResult(V=V, H=H)


def hessenberg_from_basis(op: LinearOperator, V: np.ndarray) -> np.ndarray:
    """``H = V^T A V_m`` for an orthonormal basis V (``(m+1) x m``).

    Used by the s-step variant: the basis is built communication-
    avoidingly, then the projection is recovered with one matvec pass.
    """
    m = V.shape[1] - 1
    AV = np.column_stack([op(V[:, j]) for j in range(m)])
    return V.T @ AV


def sstep_arnoldi(
    op: LinearOperator,
    v0: np.ndarray,
    s: int,
    n_blocks: int,
    block_rows: int = 1024,
    ritz_shifts: np.ndarray | None = None,
) -> ArnoldiResult:
    """s-step Arnoldi: matrix-powers blocks + block CGS2 + TSQR panels.

    Args:
        s: basis vectors generated per block (the "s" of s-step methods).
        n_blocks: number of blocks; the final basis has ``s * n_blocks``
            columns plus the starting vector.
        block_rows: TSQR row-block height for the panel factorizations.
        ritz_shifts: optional Newton-basis shifts (default: Ritz values of
            a preliminary classical Arnoldi run of length ``s``).

    Returns:
        :class:`ArnoldiResult` whose Hessenberg matrix is recovered by
        projection (``hessenberg_from_basis``); the Arnoldi relation
        holds to the orthogonalization accuracy.
    """
    if s < 1 or n_blocks < 1:
        raise ValueError("s and n_blocks must be >= 1")
    v0 = np.asarray(v0, dtype=float)
    beta = np.linalg.norm(v0)
    if beta == 0.0:
        raise ValueError("starting vector must be nonzero")
    if ritz_shifts is None:
        pre = arnoldi(op, v0, min(s, op.n - 1))
        ritz_shifts = np.linalg.eigvals(pre.H[: pre.m, : pre.m]).real
    cols = [v0 / beta]
    for _ in range(n_blocks):
        # Matrix-powers block seeded from the latest basis vector.
        W = newton_basis(op, cols[-1], s + 1, ritz_shifts)[:, 1:]
        Vmat = np.column_stack(cols)
        # Block classical Gram-Schmidt, applied twice ("twice is enough").
        for _ in range(2):
            W -= Vmat @ (Vmat.T @ W)
        # TSQR of the orthogonalized panel — the paper's kernel.
        f = tsqr(W, policy=ExecutionPolicy(block_rows=block_rows, tree_shape="quad"))
        Q = f.form_q()
        # Rank check: a (near-)invariant subspace shows up as tiny R rows.
        diag = np.abs(np.diag(f.R))
        keep = int(np.sum(diag > 1e-12 * max(diag.max(), 1e-30)))
        cols.extend(Q[:, j] for j in range(keep))
        if keep < s:
            break
    V = np.column_stack(cols)
    H = hessenberg_from_basis(op, V)
    return ArnoldiResult(V=V, H=H)
