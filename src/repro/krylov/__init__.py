"""Communication-avoiding Krylov methods — the s-step application.

"An even more extreme case of tall-skinny matrices are found in s-step
Krylov methods" (Section I): blocks of basis vectors are generated with
matrix powers and orthogonalized with a tall-skinny QR.  This subpackage
builds that workload end to end: matrix-free operators, monomial/Newton
s-step bases, classical and s-step (TSQR-orthogonalized) Arnoldi, and a
CA-GMRES solver on top.
"""

from .arnoldi import ArnoldiResult, arnoldi, hessenberg_from_basis, sstep_arnoldi
from .basis import basis_condition, leja_order, monomial_basis, newton_basis
from .gmres import GMRESResult, ca_gmres, gmres, solve_hessenberg_lstsq
from .lanczos import LanczosResult, lanczos, ritz_values, sstep_lanczos
from .operators import LinearOperator, from_dense, laplacian_1d, laplacian_2d, tridiagonal

__all__ = [
    "ArnoldiResult",
    "arnoldi",
    "hessenberg_from_basis",
    "sstep_arnoldi",
    "basis_condition",
    "leja_order",
    "monomial_basis",
    "newton_basis",
    "GMRESResult",
    "ca_gmres",
    "gmres",
    "solve_hessenberg_lstsq",
    "LanczosResult",
    "lanczos",
    "ritz_values",
    "sstep_lanczos",
    "LinearOperator",
    "from_dense",
    "laplacian_1d",
    "laplacian_2d",
    "tridiagonal",
]
