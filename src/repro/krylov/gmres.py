"""GMRES on the s-step (TSQR-orthogonalized) Arnoldi basis.

Communication-avoiding GMRES builds the Krylov basis in s-step blocks
(matrix powers + TSQR panel factorization) and then solves the projected
least-squares problem ``min || beta e1 - H y ||`` exactly as standard
GMRES does — here with this library's own Givens rotations.

The basis construction is the communication-avoiding part (the reason
the paper's QR matters); the Hessenberg recovery by projection costs one
extra matvec sweep, a simplification relative to the full CA-GMRES
recurrences of Hoemmen's thesis, documented here and in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.givens import apply_givens, givens_coeffs
from repro.core.triangular import solve_upper

from .arnoldi import arnoldi, sstep_arnoldi
from .operators import LinearOperator

__all__ = ["GMRESResult", "gmres", "ca_gmres", "solve_hessenberg_lstsq"]


@dataclass
class GMRESResult:
    x: np.ndarray
    residual_norm: float
    relative_residual: float
    n_matvecs: int
    basis_size: int
    converged: bool


def solve_hessenberg_lstsq(H: np.ndarray, beta: float) -> tuple[np.ndarray, float]:
    """Solve ``min || beta e1 - H y ||`` for an (m+1) x m Hessenberg H.

    Givens rotations reduce H to triangular form while updating the
    right-hand side; returns ``(y, residual_norm)``.  A square ``m x m``
    H (Arnoldi breakdown: the Krylov space is invariant) is solved
    exactly with zero projected residual.
    """
    H = np.array(H, dtype=float, copy=True)
    rows, m = H.shape
    if rows not in (m, m + 1):
        raise ValueError("H must be (m+1) x m, or m x m after a breakdown")
    g = np.zeros(rows)
    g[0] = beta
    for j in range(m):
        if j + 1 >= rows:
            break
        c, s = givens_coeffs(H[j, j], H[j + 1, j])
        apply_givens(H, j, j + 1, c, s)
        H[j + 1, j] = 0.0
        gj = c * g[j] + s * g[j + 1]
        g[j + 1] = -s * g[j] + c * g[j + 1]
        g[j] = gj
    y = solve_upper(H[:m, :m], g[:m])
    residual = float(abs(g[m])) if rows == m + 1 else 0.0
    return y, residual


def _finish(op: LinearOperator, b: np.ndarray, V: np.ndarray, H: np.ndarray, n_matvecs: int, tol: float) -> GMRESResult:
    beta = float(np.linalg.norm(b))
    y, res = solve_hessenberg_lstsq(H, beta)
    x = V[:, : H.shape[1]] @ y
    true_res = float(np.linalg.norm(b - op(x)))
    rel = true_res / beta if beta else 0.0
    return GMRESResult(
        x=x,
        residual_norm=true_res,
        relative_residual=rel,
        n_matvecs=n_matvecs,
        basis_size=H.shape[1],
        converged=rel <= tol,
    )


def gmres(op: LinearOperator, b: np.ndarray, m: int, tol: float = 1e-10) -> GMRESResult:
    """Standard (full, unrestarted) GMRES with MGS Arnoldi."""
    res = arnoldi(op, b, m)
    Hm = res.H
    return _finish(op, b, res.V, Hm, n_matvecs=Hm.shape[1], tol=tol)


def ca_gmres(
    op: LinearOperator,
    b: np.ndarray,
    s: int,
    n_blocks: int,
    tol: float = 1e-10,
    block_rows: int = 1024,
) -> GMRESResult:
    """GMRES over an s-step TSQR-orthogonalized basis.

    ``s * n_blocks`` basis vectors are built in blocks of ``s`` (matrix
    powers + block CGS2 + TSQR), then the projected problem is solved.
    """
    res = sstep_arnoldi(op, b, s=s, n_blocks=n_blocks, block_rows=block_rows)
    m = res.V.shape[1] - 1
    if m < 1:
        raise ValueError("basis construction produced no new directions")
    H = res.H[:, :m]
    matvecs = n_blocks * (s + 1) + m + s  # powers + projection + Ritz run
    return _finish(op, b, res.V, H, n_matvecs=matvecs, tol=tol)
