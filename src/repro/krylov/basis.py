"""s-step Krylov basis generation.

"In s-step methods, multiple basis vectors are generated at once and can
be orthogonalized using a QR factorization" (Section I).  The naive
monomial basis {v, Av, A^2 v, ...} becomes numerically dependent fast
(its condition number grows like the power iteration converges); the
Newton basis with Ritz-value shifts keeps it usable for larger s — the
standard communication-avoiding-Krylov device.
"""

from __future__ import annotations

import numpy as np

from .operators import LinearOperator

__all__ = ["monomial_basis", "newton_basis", "basis_condition", "leja_order"]


def monomial_basis(op: LinearOperator, v0: np.ndarray, s: int) -> np.ndarray:
    """``[v0, A v0, ..., A^{s-1} v0]`` with per-column normalization.

    Column scaling keeps entries representable; it does not fix the
    direction collapse (condition growth) that motivates the Newton basis.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    V = np.empty((op.n, s))
    v = np.asarray(v0, dtype=float)
    nrm = np.linalg.norm(v)
    if nrm == 0.0:
        raise ValueError("starting vector must be nonzero")
    V[:, 0] = v / nrm
    for j in range(1, s):
        w = op(V[:, j - 1])
        nrm = np.linalg.norm(w)
        if nrm == 0.0:
            raise ValueError(f"Krylov sequence terminated at step {j} (invariant subspace)")
        V[:, j] = w / nrm
    return V


def leja_order(shifts: np.ndarray) -> np.ndarray:
    """Order shifts by the Leja criterion (maximize spread products).

    Newton bases are only well-conditioned when the shifts are applied in
    a spread-out order; Leja ordering is the standard choice.
    """
    shifts = np.asarray(shifts, dtype=float)
    if shifts.size == 0:
        return shifts
    remaining = list(range(shifts.size))
    order = [int(np.argmax(np.abs(shifts)))]
    remaining.remove(order[0])
    while remaining:
        # Next point maximizes the product of distances to chosen points
        # (in log space for robustness).
        best, best_val = None, -np.inf
        for i in remaining:
            d = np.abs(shifts[i] - shifts[order])
            val = np.sum(np.log(np.maximum(d, 1e-300)))
            if val > best_val:
                best, best_val = i, val
        order.append(best)
        remaining.remove(best)
    return shifts[order]


def newton_basis(
    op: LinearOperator,
    v0: np.ndarray,
    s: int,
    shifts: np.ndarray,
) -> np.ndarray:
    """Newton basis ``v, (A - t1 I)v, (A - t2 I)(A - t1 I)v, ...``.

    Args:
        shifts: ``s - 1`` (or more) shift values, typically Ritz values of
            a short preliminary Arnoldi run, Leja-ordered internally.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    shifts = leja_order(np.asarray(shifts, dtype=float))
    if s > 1 and shifts.size < s - 1:
        raise ValueError(f"need at least {s - 1} shifts, got {shifts.size}")
    V = np.empty((op.n, s))
    v = np.asarray(v0, dtype=float)
    nrm = np.linalg.norm(v)
    if nrm == 0.0:
        raise ValueError("starting vector must be nonzero")
    V[:, 0] = v / nrm
    for j in range(1, s):
        w = op(V[:, j - 1]) - shifts[j - 1] * V[:, j - 1]
        nrm = np.linalg.norm(w)
        if nrm == 0.0:
            raise ValueError(f"Newton basis terminated at step {j}")
        V[:, j] = w / nrm
    return V


def basis_condition(V: np.ndarray) -> float:
    """2-norm condition number of the basis (via the Gram matrix)."""
    s = np.linalg.svd(np.asarray(V, dtype=float), compute_uv=False)
    if s[-1] == 0.0:
        return float("inf")
    return float(s[0] / s[-1])
