"""Chunked out-of-core ingestion: dask-style block IO for row streams.

The streaming pipeline consumes an *unbounded* sequence of row blocks
(video frames flattened to rows, sensor batches, log shards...) whose
producers rarely align with the factorization's preferred chunk height.
:class:`ChunkBuffer` sits between the two: it re-blocks arbitrary-height
input into fixed ``chunk_rows``-row chunks the way ``dask.array``
re-chunks block IO, while enforcing a bounded in-flight window so a fast
producer cannot silently buffer the whole stream in memory.

Memory contract
---------------
The buffer holds at most ``max_in_flight`` assembled-but-undrained
chunks plus one partial chunk of remainder rows.  ``push`` raises
:class:`StreamBackpressure` when a producer gets further ahead than
that — the caller must drain before pushing more (the
:func:`stream_chunks` generator does this automatically after every
push, so sources that are consumed lazily never trip it).  Peak
buffered bytes are tracked deterministically (pure shape arithmetic
over what was actually buffered), so soak gates can pin the ingestion
layer's footprint without OS-level noise.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

import numpy as np

from repro.obs import tracer as _obs
from repro.verify.guards import validate_stream_chunk

__all__ = ["ChunkBuffer", "StreamBackpressure", "stream_chunks"]


class StreamBackpressure(RuntimeError):
    """The producer out-ran the bounded in-flight window — drain first."""


class ChunkBuffer:
    """Re-block arbitrary-height row blocks into fixed-height chunks.

    Args:
        chunk_rows: height of every assembled chunk (the last one may be
            a shorter ragged tail, surfaced only by :meth:`flush`).
        max_in_flight: how many assembled chunks may sit undrained
            before :meth:`push` raises :class:`StreamBackpressure`.
        nonfinite: per-chunk guard policy (``"raise"``/``"propagate"``),
            applied by :func:`repro.verify.guards.validate_stream_chunk`.

    The first pushed block establishes the stream's column count and
    working dtype; later blocks that disagree are rejected by the guard
    layer (``ValueError`` for column drift, ``TypeError`` for dtype
    mixing) *before* they are buffered, so a bad producer cannot corrupt
    rows already in flight.
    """

    def __init__(
        self,
        chunk_rows: int,
        max_in_flight: int = 2,
        nonfinite: str = "raise",
    ) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        self.chunk_rows = int(chunk_rows)
        self.max_in_flight = int(max_in_flight)
        self.nonfinite = nonfinite
        self.n_cols: int | None = None
        self.dtype: np.dtype | None = None
        self._parts: deque[np.ndarray] = deque()
        self._rows = 0
        self.rows_in = 0  # total rows ever pushed
        self.chunks_out = 0  # total chunks ever drained
        self.peak_buffered_bytes = 0

    # -- state views -------------------------------------------------------

    @property
    def buffered_rows(self) -> int:
        """Rows currently held (assembled + partial)."""
        return self._rows

    @property
    def ready_chunks(self) -> int:
        """Full chunks assemblable from the buffered rows right now."""
        return self._rows // self.chunk_rows

    @property
    def buffered_bytes(self) -> int:
        return sum(int(p.nbytes) for p in self._parts)

    # -- the pipeline ------------------------------------------------------

    def push(self, block) -> None:
        """Buffer one producer block (any row count, matching columns).

        Raises :class:`StreamBackpressure` when accepting the block
        would leave more than ``max_in_flight`` undrained full chunks —
        the bounded-window contract that keeps ingestion out-of-core.
        """
        block = validate_stream_chunk(
            block,
            where="ChunkBuffer.push",
            n_cols=self.n_cols,
            dtype=self.dtype,
            nonfinite=self.nonfinite,
        )
        if self.n_cols is None:
            self.n_cols = int(block.shape[1])
            self.dtype = block.dtype
        if (self._rows + block.shape[0]) // self.chunk_rows > self.max_in_flight:
            raise StreamBackpressure(
                f"ChunkBuffer: accepting {block.shape[0]} rows would leave "
                f"more than max_in_flight={self.max_in_flight} chunks "
                f"buffered ({self._rows} rows already held, "
                f"chunk_rows={self.chunk_rows}); drain() first"
            )
        if block.shape[0] == 0:
            return
        self._parts.append(block)
        self._rows += int(block.shape[0])
        self.rows_in += int(block.shape[0])
        self.peak_buffered_bytes = max(self.peak_buffered_bytes, self.buffered_bytes)

    def drain(self) -> Iterator[np.ndarray]:
        """Yield every currently assemblable full chunk (lazily)."""
        while self._rows >= self.chunk_rows:
            yield self._assemble(self.chunk_rows)

    def flush(self) -> Iterator[np.ndarray]:
        """Drain, then yield the final ragged chunk (if any rows remain)."""
        yield from self.drain()
        if self._rows:
            yield self._assemble(self._rows)

    def _assemble(self, rows: int) -> np.ndarray:
        """Copy ``rows`` buffered rows into one fresh contiguous chunk.

        The copy is the block "read": downstream factorization mutates
        its chunk freely without aliasing producer arrays, and the
        producer's blocks are released as soon as their rows are cut.
        """
        out = np.empty((rows, self.n_cols), dtype=self.dtype)
        filled = 0
        while filled < rows:
            part = self._parts[0]
            take = min(part.shape[0], rows - filled)
            out[filled : filled + take] = part[:take]
            filled += take
            if take == part.shape[0]:
                self._parts.popleft()
            else:
                self._parts[0] = part[take:]
        self._rows -= rows
        self.chunks_out += 1
        return out


def stream_chunks(
    source: Iterable,
    chunk_rows: int,
    max_in_flight: int = 2,
    nonfinite: str = "raise",
) -> Iterator[np.ndarray]:
    """Re-block an iterable of row blocks into fixed-height chunks.

    The out-of-core ingestion loop: each source block is buffered, every
    assemblable chunk is yielded immediately (so at most
    ``max_in_flight`` chunks are ever resident), and the final ragged
    tail is flushed when the source ends.  Consuming this generator
    lazily is what keeps the pipeline bounded — the source is only
    advanced when the consumer asks for the next chunk.
    """
    buf = ChunkBuffer(chunk_rows, max_in_flight=max_in_flight, nonfinite=nonfinite)
    # A single producer block bigger than the in-flight window is cut
    # into window-sized slices, drained between slices — so even a
    # pathological "here is the whole stream at once" source stays
    # within the bounded-window contract.
    window = chunk_rows * max_in_flight
    with _obs.span("stream.ingest", cat="stream", chunk_rows=chunk_rows):
        for block in source:
            block = np.asarray(block)
            if block.ndim == 2 and block.shape[0] > window:
                for off in range(0, block.shape[0], window):
                    buf.push(block[off : off + window])
                    yield from buf.drain()
            else:
                buf.push(block)
                yield from buf.drain()
        yield from buf.flush()
        _obs.counters(
            stream_rows_ingested=buf.rows_in, stream_chunks_cut=buf.chunks_out
        )
