"""The streaming pipeline compiled to shared task-graph layers.

:func:`emit_streaming_layers` is the ``streaming`` producer registered
in :data:`repro.graph.highlevel.PRODUCERS`: one ``ingest`` layer (the
chunk cuts), one ``factor`` layer (per-chunk local CAQR — mutually
independent, so a threaded executor may overlap them), and one ``fold``
layer whose chain of carry merges is the serial spine.  Unbound, the
graph is the structural shape the CI fingerprint gate pins; bound, its
tasks perform exactly the arithmetic of
:func:`repro.streaming.qr.run_streaming_matrix`, so the graph execution
is bit-identical to the direct streaming run.
"""

from __future__ import annotations

import numpy as np

from repro.obs import tracer as _obs

from .qr import (
    StreamingCAQRFactors,
    StreamSchedule,
    _merge_triangles,
    build_stream_schedule,
)

__all__ = ["emit_streaming_layers", "run_streaming_graph"]


def emit_streaming_layers(
    m: int,
    n: int,
    chunk_rows: int,
    bind: dict | None = None,
    schedule: StreamSchedule | None = None,
):
    """Compile the streaming chunk/factor/fold pipeline into layers.

    Keys are ``("chunk", i)`` / ``("factor", i)`` / ``("fold", i)``;
    every fold depends on its chunk's factor and on the previous fold,
    making the bounded-carry chain explicit while leaving the per-chunk
    factorizations free to overlap.  Without ``bind`` the graph is
    structural (``fn=None``).  With ``bind`` (a state dict holding
    ``A``, ``policy``, the inner per-chunk policy ``inner`` plus empty
    ``chunks`` / ``rfac`` / ``nodes`` dicts, as set up by
    :func:`run_streaming_graph`), tasks carry closures performing the direct runner's exact
    arithmetic; the final fold leaves the carry in ``bind["R"]``.
    """
    from repro.graph.highlevel import TaskGraph

    if schedule is None:
        schedule = build_stream_schedule(m, n, chunk_rows)
    st = bind
    tg = TaskGraph(name="streaming")
    tg.add_layer("ingest", priority=2)
    tg.add_layer("factor", priority=1, cost=float(chunk_rows * max(n, 1)))
    tg.add_layer("fold", cost=float(max(n, 1) ** 2))

    def mk_chunk(i: int, s: int, e: int):
        def run() -> None:
            st["chunks"][i] = st["A"][s:e]

        return run

    def mk_factor(i: int):
        def run() -> None:
            from repro.core.caqr import _caqr_serial

            with _obs.span("stream.factor", cat="factor", chunk=i):
                f = _caqr_serial(st["chunks"][i], st["inner"])
            st["rfac"][i] = (f, np.triu(f.R))

        return run

    def mk_fold(i: int):
        def run() -> None:
            f, rc = st["rfac"][i]
            if i == 0:
                st["nodes"][i] = None
                st["R"] = rc
                return
            with _obs.span("stream.merge", cat="stream", chunk=i):
                node, st["R"] = _merge_triangles(st["R"], rc)
            st["nodes"][i] = node

        return run

    def payload(f):
        return f if st is not None else None

    for i, (s, e) in enumerate(schedule.rows):
        tg.add_task("ingest", ("chunk", i), payload(mk_chunk(i, s, e)), rows=(s, e))
        tg.add_task("factor", ("factor", i), payload(mk_factor(i)), deps=(("chunk", i),))
        deps = (("factor", i),) if i == 0 else (("factor", i), ("fold", i - 1))
        tg.add_task("fold", ("fold", i), payload(mk_fold(i)), deps=deps)
    return tg


def run_streaming_graph(A: np.ndarray, policy, workers: int = 1) -> StreamingCAQRFactors:
    """:func:`~repro.streaming.qr.run_streaming_matrix` compiled to a task
    graph and run on the shared executor.

    Identical arithmetic fold for fold, so ``R`` is bit-identical to the
    direct streaming run; ``workers > 1`` overlaps chunk factorizations
    ahead of the serial fold spine.  Returns an R-only (non-retained)
    factor object — the graph form is the scheduling/parity surface,
    not a second Q-reconstruction engine.
    """
    from repro.graph.executor import run_task_graph
    from repro.runtime.policy import ExecutionPolicy

    m, n = A.shape
    schedule = build_stream_schedule(m, n, policy.chunk_rows)
    inner = ExecutionPolicy(
        path="batched",
        panel_width=policy.panel_width,
        block_rows=policy.block_rows,
        tree_shape=policy.tree_shape,
        nonfinite="propagate",
    )
    st: dict = {"A": A, "policy": policy, "inner": inner, "chunks": {}, "rfac": {}, "nodes": {}}
    with _obs.span(
        "streaming", cat="stream", m=m, n=n, chunk_rows=policy.chunk_rows
    ):
        tg = emit_streaming_layers(m, n, policy.chunk_rows, bind=st, schedule=schedule)
        run_task_graph(tg, workers=workers)
        k = min(m, n)
        R = np.zeros((k, n), dtype=A.dtype)
        if "R" in st:
            R[: st["R"].shape[0]] = st["R"][:k]
    return StreamingCAQRFactors(
        m=m,
        n=n,
        chunk_rows=policy.chunk_rows,
        R=R,
        chunks=[],
        merges=[],
        retained=False,
    )
