"""Incremental row-append QR: out-of-core sequential CAQR.

This is the "flat tree" regime of Demmel–Grigori–Hoemmen–Langou's
sequential CAQR (arXiv 0809.2407): the tall matrix arrives chunk by
chunk, each chunk is factored with the in-core batched CAQR machinery
(:func:`repro.core.caqr._caqr_serial`, reused verbatim), and the chunk's
``min(h, n) x n`` triangle folds into the running ``<= n x n`` carry
through exactly the elimination the TSQR tree nodes use:

* once the carry is a full ``n x n`` triangle (the steady state), the
  fold is :func:`repro.core.structured.structured_stack_qr` — the
  sparsity-exploiting stacked-triangle elimination at ~1/3 the dense
  flops;
* while the carry is still shorter than ``n`` (start-up on very short
  chunks), the fold is the dense ``geqr2`` merge, byte-for-byte the
  arithmetic of one :func:`repro.distributed.sharded._reduce` node.

Resident state between chunks is the carry triangle alone, so memory is
bounded by ``chunk_rows x n`` regardless of how many rows stream past —
the property the soak gate (``tools/check_bench.py --check-streaming``)
pins.  With ``retain_q=True`` every chunk's implicit-Q factors and every
merge's reflectors are kept, and :meth:`StreamingCAQRFactors.form_q`
reconstructs the explicit thin Q by the same top-down coefficient walk
:meth:`repro.distributed.sharded.ShardedCAQRFactors.form_q` does over
its tree — the chain here is just a maximally unbalanced tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.householder import geqr2, orm2r
from repro.core.structured import StructuredStackFactor, structured_stack_qr
from repro.obs import tracer as _obs
from repro.runtime.policy import ExecutionPolicy
from repro.verify.guards import validate_stream_chunk

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "StreamSchedule",
    "StreamingCAQRFactors",
    "StreamingQR",
    "build_stream_schedule",
    "run_streaming_matrix",
    "stream_qr",
]

DEFAULT_CHUNK_ROWS = 8192


# -- the per-chunk plan-level schedule ------------------------------------


@dataclass(frozen=True)
class StreamSchedule:
    """The chunk row deal of a streaming factorization (pure shape math)."""

    m: int
    n: int
    chunk_rows: int
    rows: tuple[tuple[int, int], ...]

    @property
    def chunks(self) -> int:
        return len(self.rows)


def build_stream_schedule(m: int, n: int, chunk_rows: int) -> StreamSchedule:
    """Cut the tall axis into ``chunk_rows``-row chunks (ragged tail last)."""
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    rows = tuple(
        (s, min(s + chunk_rows, m)) for s in range(0, m, chunk_rows)
    )
    return StreamSchedule(m=m, n=n, chunk_rows=chunk_rows, rows=rows)


# -- merge nodes (the chain's "tree") -------------------------------------


@dataclass
class _DenseMergeNode:
    """One dense ``geqr2`` fold — the sharded ``_reduce`` arithmetic."""

    heights: tuple[int, int]  # (carry rows, chunk-R rows)
    VR: np.ndarray
    tau: np.ndarray

    def apply_q_stack(self, stacked: np.ndarray) -> np.ndarray:
        orm2r(self.VR, self.tau, stacked, transpose=False)
        return stacked


@dataclass
class _StructuredMergeNode:
    """One sparsity-aware fold — the tree-node stacked-triangle QR."""

    heights: tuple[int, int]
    factor: StructuredStackFactor

    def apply_q_stack(self, stacked: np.ndarray) -> np.ndarray:
        return self.factor.apply_q(stacked)


def _merge_triangles(r_run: np.ndarray, r_chunk: np.ndarray):
    """Fold a chunk's triangle into the carry; returns ``(node, new_R)``.

    Structured elimination requires the first stacked block to carry the
    pivot rows, so it runs exactly when the carry is already full height
    (``>= n`` rows — the steady state); the start-up folds use the dense
    merge.  Either way ``new_R`` is the ``min(total, n) x n`` triangle
    of the stacked pair — a valid R of the rows seen so far.
    """
    r_b, n = r_run.shape
    kc = r_chunk.shape[0]
    if r_b >= min(n, r_b + kc):
        f = structured_stack_qr([r_run, r_chunk])
        return _StructuredMergeNode(heights=(r_b, kc), factor=f), f.R
    stacked = np.vstack([r_run, r_chunk])
    VR, tau = geqr2(stacked)
    kd = min(stacked.shape[0], n)
    node = _DenseMergeNode(heights=(r_b, kc), VR=VR, tau=tau)
    return node, np.triu(VR[:kd, :])


# -- the retained factorization -------------------------------------------


@dataclass
class _ChunkQR:
    """One chunk's position and (optionally retained) local factors."""

    index: int
    row_start: int
    height: int
    kc: int  # rows its local R contributed to the fold
    factors: object | None  # CAQRFactors when retained


@dataclass
class StreamingCAQRFactors:
    """Implicit Q and explicit R of a streamed CAQR factorization.

    Duck-type compatible with :class:`~repro.core.caqr.CAQRFactors`
    where the entry points need it (``R``, ``form_q``).  ``form_q``
    needs the retained per-chunk factors (``retain_q=True`` — the
    default for the in-memory ``caqr(path="streaming")`` entry); a soak
    run retains nothing and holds only the carry triangle.
    """

    m: int
    n: int
    chunk_rows: int
    R: np.ndarray  # min(m, n) x n upper trapezoidal
    chunks: list[_ChunkQR]
    merges: list  # merge node per chunk (index 0 is None)
    retained: bool

    def form_q(self) -> np.ndarray:
        """Form the explicit thin ``m x min(m, n)`` orthonormal Q.

        Walks the merge chain top-down — the exact coefficient walk of
        :meth:`~repro.distributed.sharded.ShardedCAQRFactors.form_q`,
        specialized to a chain: the carry block's coefficients propagate
        backwards through each fold, peeling off every chunk's
        coefficient block, which the chunk's local implicit Q then lifts
        to its row slice.
        """
        k = min(self.m, self.n)
        dtype = self.R.dtype
        Q = np.zeros((self.m, k), dtype=dtype)
        if k == 0:
            return Q
        if not self.retained:
            raise RuntimeError(
                "form_q needs the retained per-chunk factors; this "
                "factorization ran with retain_q=False (R-only soak mode)"
            )
        carry = np.eye(k, dtype=dtype)
        for i in range(len(self.chunks) - 1, 0, -1):
            node = self.merges[i]
            r_b, kc = node.heights
            stacked = np.zeros((r_b + kc, k), dtype=dtype)
            stacked[: carry.shape[0]] = carry
            node.apply_q_stack(stacked)
            carry = stacked[:r_b]
            c = self.chunks[i]
            block = np.zeros((c.height, k), dtype=dtype)
            block[:kc] = stacked[r_b:]
            c.factors.apply_q(block)
            Q[c.row_start : c.row_start + c.height] = block
        c0 = self.chunks[0]
        block = np.zeros((c0.height, k), dtype=dtype)
        block[: c0.kc] = carry[: c0.kc]
        c0.factors.apply_q(block)
        Q[c0.row_start : c0.row_start + c0.height] = block
        return Q


# -- the streaming engine -------------------------------------------------


class StreamingQR:
    """Incremental row-append QR over an unbounded chunk stream.

    Push chunks (any height; the ingestion layer normalizes them), read
    the running ``R`` at any point.  Constructing this class outside
    ``repro.streaming`` is a layering-lint violation: external callers
    go through :func:`stream_qr`, ``caqr(policy=...path='streaming')``
    or a ``plan_qr`` plan, so chunk geometry stays an
    :class:`~repro.runtime.policy.ExecutionPolicy` decision and the
    per-chunk obs spans / memory accounting are never bypassed.

    Args:
        n_cols: the stream's column count (``None``: set by the first
            chunk).
        policy: a ``path="streaming"`` policy (default:
            ``chunk_rows=DEFAULT_CHUNK_ROWS``).  ``chunk_rows`` sizes
            the reusable per-chunk plan; pushed chunks of exactly that
            height go through the plan, others (e.g. the ragged tail)
            are factored directly.
        retain_q: keep every chunk's implicit-Q factors and merge
            reflectors so :meth:`factors` can ``form_q`` — memory then
            grows with the stream.  ``False`` (soak mode) keeps only
            the carry triangle: memory is bounded by one chunk.
    """

    def __init__(
        self,
        n_cols: int | None = None,
        policy: ExecutionPolicy | None = None,
        retain_q: bool = False,
    ) -> None:
        if policy is None:
            policy = ExecutionPolicy(path="streaming", chunk_rows=DEFAULT_CHUNK_ROWS)
        if policy.path != "streaming":
            raise ValueError(
                f"StreamingQR needs a path='streaming' policy, got {policy.path!r}"
            )
        self.policy = policy
        self.retain_q = retain_q
        self._n = None if n_cols is None else int(n_cols)
        self._dtype: np.dtype | None = None
        self._R: np.ndarray | None = None
        self._rows = 0
        self._chunks: list[_ChunkQR] = []
        self._merges: list = []
        self._chunk_plan = None  # reusable plan for full-height chunks
        self._retained_bytes = 0
        self.structured_merges = 0
        self.dense_merges = 0
        self.peak_tracked_bytes = 0
        # The inner per-chunk policy: the in-core batched machinery,
        # with guards off (chunks are validated once at this boundary).
        self._inner = ExecutionPolicy(
            path="batched",
            panel_width=policy.panel_width,
            block_rows=policy.block_rows,
            tree_shape=policy.tree_shape,
            nonfinite="propagate",
        )

    # -- state views -------------------------------------------------------

    @property
    def n_cols(self) -> int | None:
        return self._n

    @property
    def rows_seen(self) -> int:
        return self._rows

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    @property
    def R(self) -> np.ndarray:
        """The running ``min(rows_seen, n) x n`` upper-trapezoidal R."""
        if self._R is not None:
            return self._R
        n = 0 if self._n is None else self._n
        dt = self._dtype if self._dtype is not None else np.dtype(np.float64)
        return np.zeros((0, n), dtype=dt)

    @property
    def resident_tracked_bytes(self) -> int:
        """Deterministic footprint of the carried state (pure shape math)."""
        carry = 0 if self._R is None else int(self._R.nbytes)
        return carry + self._retained_bytes

    # -- the pipeline ------------------------------------------------------

    def push(self, chunk, validated: bool = False) -> "StreamingQR":
        """Fold one chunk of rows into the running factorization."""
        if not validated:
            chunk = validate_stream_chunk(
                chunk,
                where="StreamingQR.push",
                n_cols=self._n,
                dtype=self._dtype,
                nonfinite=self.policy.nonfinite,
            )
        else:
            chunk = np.asarray(chunk)
        if self._n is None:
            self._n = int(chunk.shape[1])
        if self._dtype is None:
            self._dtype = chunk.dtype
        h = int(chunk.shape[0])
        if h == 0 or self._n == 0:
            self._rows += h
            return self
        idx = len(self._chunks)
        itemsize = self._dtype.itemsize
        resident_before = self.resident_tracked_bytes
        with _obs.span("stream.push", cat="stream", chunk=idx, rows=h):
            with _obs.span("stream.factor", cat="factor", chunk=idx, rows=h):
                f = self._factor_chunk(chunk)
            rc = np.triu(f.R)
            kc = int(rc.shape[0])
            r_b = 0 if self._R is None else int(self._R.shape[0])
            if self._R is None:
                node = None
                self._R = rc
            else:
                with _obs.span(
                    "stream.merge", cat="stream", chunk=idx, carry=r_b, rows=kc
                ):
                    node, self._R = _merge_triangles(self._R, rc)
                if isinstance(node, _StructuredMergeNode):
                    self.structured_merges += 1
                else:
                    self.dense_merges += 1
            self._rows += h
            self._chunks.append(
                _ChunkQR(
                    index=idx,
                    row_start=self._rows - h,
                    height=h,
                    kc=kc,
                    factors=f if self.retain_q else None,
                )
            )
            self._merges.append(node if self.retain_q else None)
            _obs.counters(stream_rows=h, stream_chunks=1)
        # Deterministic peak accounting: carry + transients of this push
        # (the chunk, its working copy + factors, the merge stack).  A
        # pure function of shapes, so the soak gate pins it without OS
        # noise; bounded because chunk shape and carry height both are.
        transient = 3 * h * self._n * itemsize + (r_b + kc) * self._n * itemsize
        if self.retain_q:
            self._retained_bytes += h * self._n * itemsize + kc * kc * itemsize
        self.peak_tracked_bytes = max(
            self.peak_tracked_bytes, resident_before + transient
        )
        return self

    def _factor_chunk(self, chunk: np.ndarray):
        from repro.core.caqr import _caqr_serial

        if chunk.shape[0] == self.policy.chunk_rows:
            if self._chunk_plan is None:
                from repro.runtime.plan import plan_qr

                self._chunk_plan = plan_qr(
                    self.policy.chunk_rows, self._n, self._dtype, self._inner
                )
            return self._chunk_plan.factor(chunk, validated=True)
        return _caqr_serial(chunk, self._inner)

    def factors(self) -> StreamingCAQRFactors:
        """Snapshot the stream as a :class:`StreamingCAQRFactors`."""
        n = 0 if self._n is None else self._n
        k = min(self._rows, n)
        if self._R is not None:
            R = self._R
        else:
            dt = self._dtype if self._dtype is not None else np.dtype(np.float64)
            R = np.zeros((k, n), dtype=dt)
        return StreamingCAQRFactors(
            m=self._rows,
            n=n,
            chunk_rows=self.policy.chunk_rows,
            R=R,
            chunks=self._chunks,
            merges=self._merges,
            retained=self.retain_q,
        )


# -- entry points ---------------------------------------------------------


def run_streaming_matrix(
    A: np.ndarray,
    policy: ExecutionPolicy,
    schedule: StreamSchedule | None = None,
    retain_q: bool = True,
) -> StreamingCAQRFactors:
    """Stream an *already validated* in-memory matrix chunk by chunk.

    The ``caqr(path="streaming")`` / ``QRPlan.factor`` backend: the
    matrix is cut along the schedule's row deal (built here when no
    prebuilt plan schedule is passed) and pushed through
    :class:`StreamingQR`.  Chunks are row slices of the validated input,
    so the guard layer runs exactly once per public call.
    """
    m, n = A.shape
    if schedule is None:
        schedule = build_stream_schedule(m, n, policy.chunk_rows)
    sq = StreamingQR(n_cols=n, policy=policy, retain_q=retain_q)
    for s, e in schedule.rows:
        sq.push(A[s:e], validated=True)
    f = sq.factors()
    if f.R.dtype != A.dtype:
        # Degenerate empty streams default to float64; pin the input dtype.
        f.R = f.R.astype(A.dtype)
    return f


def stream_qr(
    source,
    policy: ExecutionPolicy | None = None,
    retain_q: bool = False,
    max_in_flight: int = 2,
) -> StreamingQR:
    """Consume an iterable of row blocks into a streamed factorization.

    The public out-of-core entry point: re-blocks the source through the
    bounded :func:`repro.streaming.ingest.stream_chunks` window (so
    producer block heights never need to match ``chunk_rows``), folds
    every chunk, and returns the consumed :class:`StreamingQR` — read
    ``.R``, ``.rows_seen``, ``.peak_tracked_bytes`` off it.
    """
    if policy is None:
        policy = ExecutionPolicy(path="streaming", chunk_rows=DEFAULT_CHUNK_ROWS)
    from repro.streaming.ingest import stream_chunks

    sq = StreamingQR(policy=policy, retain_q=retain_q)
    with _obs.maybe_trace(policy.trace):
        with _obs.span("stream.qr", cat="entry", chunk_rows=policy.chunk_rows):
            for chunk in stream_chunks(
                source,
                policy.chunk_rows,
                max_in_flight=max_in_flight,
                nonfinite=policy.nonfinite,
            ):
                sq.push(chunk, validated=True)
    return sq
