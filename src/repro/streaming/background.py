"""Bounded-memory online video background model with drift adaptation.

The paper's motivating application (Section VI) runs RPCA over 100
video frames in one batch; a deployed camera never stops producing
frames.  :class:`StreamingBackground` closes that gap by composing the
two streaming layers this package and :mod:`repro.rpca.online` provide:

* frames arrive as *rows* (one flattened frame per row, any batch
  height) and are re-blocked to the model's chunk size through the same
  bounded :class:`~repro.streaming.ingest.ChunkBuffer` window the QR
  stream uses;
* each chunk runs :class:`~repro.rpca.online.OnlineRPCA` in its
  bounded-memory mode (``keep_history=False`` — no per-chunk L/S
  history, the cached-subspace fast path on drift-free chunks), so
  resident state is one chunk plus the carried rank-``r`` subspace no
  matter how long the stream runs;
* **drift adaptation**: the per-chunk foreground fraction
  ``||S||_F / ||chunk||_F`` is the drift signal.  Slow drift is
  absorbed by the model's own residual-RPCA subspace refresh; a
  *sustained* spike (``drift_threshold`` exceeded ``drift_patience``
  chunks in a row — a camera move, a lighting flip) triggers
  re-detection: the carried subspace is dropped and the next chunk
  cold-starts a full RPCA, re-learning the scene.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import tracer as _obs
from repro.rpca.online import OnlineRPCA

from .ingest import ChunkBuffer

__all__ = ["BackgroundChunk", "StreamingBackground"]


@dataclass
class BackgroundChunk:
    """Summary of one processed chunk (no frame payloads retained)."""

    frame_start: int
    frame_stop: int
    rank: int
    foreground_fraction: float
    n_iterations: int
    converged: bool
    redetected: bool  # this chunk cold-started after a drift trip


class StreamingBackground:
    """Consume an unbounded frame stream into a background subspace.

    Args:
        chunk_frames: temporal chunk size (frames per RPCA solve).
        rank_cap: maximum carried background rank.
        drift_threshold: foreground fraction above which a chunk counts
            as drifted (default 0.5 — more unexplained energy than
            explained).
        drift_patience: consecutive drifted chunks before re-detection
            (default 2; one chunk might just be a busy scene).
        subspace_refresh_tol: forwarded to
            :class:`~repro.rpca.online.OnlineRPCA` — the no-drift
            threshold under which the carried subspace SVD is skipped.
        max_in_flight: ingestion window (assembled chunks buffered).
        policy: optional :class:`~repro.runtime.policy.ExecutionPolicy`
            for the inner SVT factorizations.
    """

    def __init__(
        self,
        chunk_frames: int = 25,
        rank_cap: int = 4,
        drift_threshold: float = 0.5,
        drift_patience: int = 2,
        subspace_refresh_tol: float = 1e-6,
        max_in_flight: int = 2,
        policy=None,
    ) -> None:
        if drift_patience < 1:
            raise ValueError("drift_patience must be positive")
        self.drift_threshold = float(drift_threshold)
        self.drift_patience = int(drift_patience)
        self._model = OnlineRPCA(
            chunk_frames=chunk_frames,
            rank_cap=rank_cap,
            keep_history=False,
            subspace_refresh_tol=subspace_refresh_tol,
            policy=policy,
        )
        self._buf = ChunkBuffer(chunk_frames, max_in_flight=max_in_flight)
        self._drift_run = 0
        self._pending_redetect = False
        self.redetections = 0
        self.chunks_processed = 0
        self.summaries: list[BackgroundChunk] = []

    # -- state views -------------------------------------------------------

    @property
    def frames_seen(self) -> int:
        return self._model.frames_seen

    @property
    def background_rank(self) -> int:
        return self._model.background_rank

    @property
    def subspace_svd_calls(self) -> int:
        return self._model.subspace_svd_calls

    def subspace(self) -> np.ndarray | None:
        """The carried pixels x rank background basis (``None`` cold)."""
        return self._model._U

    @property
    def peak_tracked_bytes(self) -> int:
        """Deterministic footprint: ingestion window + carried basis."""
        u = self._model._U
        return self._buf.peak_buffered_bytes + (0 if u is None else int(u.nbytes))

    # -- the pipeline ------------------------------------------------------

    def push(self, frame_rows) -> list[BackgroundChunk]:
        """Buffer a block of frames (one flattened frame per row).

        Returns the summaries of every chunk that became complete and
        was processed by this push (possibly empty).
        """
        self._buf.push(frame_rows)
        return [self._process(c) for c in self._buf.drain()]

    def finish(self) -> list[BackgroundChunk]:
        """Flush the ragged tail chunk (call once, at end of stream)."""
        return [self._process(c) for c in self._buf.flush()]

    def _process(self, chunk: np.ndarray) -> BackgroundChunk:
        redetected = False
        if self._pending_redetect:
            # Drop the stale subspace: the next model push cold-starts.
            self._model._U = None
            self._pending_redetect = False
            self._drift_run = 0
            self.redetections += 1
            redetected = True
        with _obs.span(
            "stream.background", cat="stream", frames=chunk.shape[0]
        ):
            res = self._model.push(chunk.T)  # model wants pixels x frames
        scale = max(float(np.linalg.norm(chunk)), np.finfo(float).tiny)
        fg = float(np.linalg.norm(res.S)) / scale
        if fg > self.drift_threshold:
            self._drift_run += 1
            if self._drift_run >= self.drift_patience:
                self._pending_redetect = True
        else:
            self._drift_run = 0
        self.chunks_processed += 1
        summary = BackgroundChunk(
            frame_start=res.frame_start,
            frame_stop=res.frame_stop,
            rank=self._model.background_rank,
            foreground_fraction=fg,
            n_iterations=res.n_iterations,
            converged=res.converged,
            redetected=redetected,
        )
        self.summaries.append(summary)
        _obs.counters(background_frames=chunk.shape[0], background_chunks=1)
        return summary
