"""Streaming / out-of-core pipeline: bounded-memory QR and RPCA.

The "heavy sustained traffic" tier (ROADMAP item 5): chunked ingestion
of unbounded row streams (:mod:`~repro.streaming.ingest`), incremental
row-append QR reusing the in-core CAQR machinery and the tree-node
eliminations (:mod:`~repro.streaming.qr`), the pipeline compiled to
shared task-graph layers (:mod:`~repro.streaming.graphs`), and a
drift-adaptive online video background model
(:mod:`~repro.streaming.background`).

Entry points: ``stream_qr`` for iterables, ``caqr(A,
policy=ExecutionPolicy(path="streaming", chunk_rows=...))`` or a
``plan_qr`` plan for in-memory matrices, ``StreamingBackground`` for
video.
"""

from .background import BackgroundChunk, StreamingBackground
from .graphs import emit_streaming_layers, run_streaming_graph
from .ingest import ChunkBuffer, StreamBackpressure, stream_chunks
from .qr import (
    DEFAULT_CHUNK_ROWS,
    StreamingCAQRFactors,
    StreamingQR,
    StreamSchedule,
    build_stream_schedule,
    run_streaming_matrix,
    stream_qr,
)

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "BackgroundChunk",
    "ChunkBuffer",
    "StreamBackpressure",
    "StreamSchedule",
    "StreamingBackground",
    "StreamingCAQRFactors",
    "StreamingQR",
    "build_stream_schedule",
    "emit_streaming_layers",
    "run_streaming_graph",
    "run_streaming_matrix",
    "stream_chunks",
    "stream_qr",
]
