"""BLAS3 building blocks for the CholeskyQR2 execution paths.

The cheap paths spend their whole budget in three level-3 shapes: the
``n x n`` Gram accumulation ``W^T W``, an in-place right-multiply by a
small triangular factor, and the matching in-place triangular solve.
When SciPy's BLAS bindings are importable they run as single ``syrk`` /
``trmm`` / ``trsm`` calls with zero copies (the row-major ``(m, n)``
buffer is handed to Fortran BLAS as its own transpose); otherwise the
blocked NumPy fallbacks below compute the same quantities a row/column
block at a time so peak scratch stays O(block * n), never O(m * n).

Everything here is pure numerics — no policy, no condition decisions.
The runtime layer (:mod:`repro.runtime.cholqr`) owns *when* these
kernels are allowed to run.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised indirectly on hosts with SciPy
    from scipy.linalg import blas as _blas
    from scipy.linalg import lapack as _lapack

    HAVE_BLAS3 = True
except ImportError:  # pragma: no cover - numpy-only hosts
    _blas = None
    _lapack = None
    HAVE_BLAS3 = False

__all__ = [
    "HAVE_BLAS3",
    "GRAM_BLOCK_ROWS",
    "gram",
    "tri_inv_upper",
    "trmm_right_inplace",
    "trsm_right_inplace",
]

# Row-block height for the fallback Gram accumulation and the sampled
# condition precheck: big enough that the per-block matmul amortizes,
# small enough that a block of a 100-column matrix stays cache-friendly.
GRAM_BLOCK_ROWS = 4096


def _syrk(W: np.ndarray):
    """One-call ``W^T W`` via BLAS syrk, or ``None`` if not applicable."""
    if not HAVE_BLAS3:
        return None
    if W.dtype == np.float64:
        fn = _blas.dsyrk
    elif W.dtype == np.float32:
        fn = _blas.ssyrk
    else:
        return None
    if not W.flags.c_contiguous or W.size == 0:
        return None
    # W.T is an (n, m) Fortran-order view of the same buffer, so syrk
    # sees column-major data without a copy; ``lower=0`` fills the upper
    # triangle of (W.T)(W.T)^T = W^T W.
    G = fn(1.0, W.T, lower=0)
    G += np.triu(G, 1).T  # symmetrize: callers read both triangles
    return G


def gram(W: np.ndarray, dtype=None) -> np.ndarray:
    """``W^T W`` as a full symmetric ``(n, n)`` array.

    ``dtype`` selects the *accumulation* precision (the mixed path
    computes a float32 Gram of float64 data); default is ``W.dtype``.
    """
    out_dtype = np.dtype(dtype if dtype is not None else W.dtype)
    if W.dtype != out_dtype:
        W = np.ascontiguousarray(W, dtype=out_dtype)
    G = _syrk(W)
    if G is not None:
        return G
    m, n = W.shape
    G = np.zeros((n, n), dtype=out_dtype)
    for lo in range(0, m, GRAM_BLOCK_ROWS):
        Wb = W[lo : lo + GRAM_BLOCK_ROWS]
        G += Wb.T @ Wb
    return G


def tri_inv_upper(R: np.ndarray) -> np.ndarray:
    """Inverse of an upper-triangular matrix (LAPACK ``trtri`` or
    column-wise back substitution)."""
    n = R.shape[0]
    if n == 0:
        return R.copy()
    if HAVE_BLAS3 and R.dtype in (np.float32, np.float64):
        trtri = _lapack.dtrtri if R.dtype == np.float64 else _lapack.strtri
        X, info = trtri(np.asfortranarray(R), lower=0)
        if info == 0:
            return np.ascontiguousarray(np.triu(X))
    X = np.zeros_like(R)
    for j in range(n - 1, -1, -1):
        X[j, j] = 1.0 / R[j, j]
        if j + 1 < n:
            # X[j, j+1:] solves R[j, j] * x + R[j, j+1:] @ X[j+1:, j+1:] = 0.
            X[j, j + 1 :] = -(R[j, j + 1 :] @ X[j + 1 :, j + 1 :]) * X[j, j]
    return X


def trmm_right_inplace(W: np.ndarray, X: np.ndarray) -> np.ndarray:
    """``W <- W @ X`` with upper-triangular ``X``, in place on ``W``."""
    m, n = W.shape
    if n == 0 or m == 0:
        return W
    if (
        HAVE_BLAS3
        and W.dtype == X.dtype
        and W.dtype in (np.float32, np.float64)
        and W.flags.c_contiguous
    ):
        fn = _blas.dtrmm if W.dtype == np.float64 else _blas.strmm
        # (W @ X)^T = X^T @ W^T: left-multiply the Fortran-order view of
        # W by the lower-triangular X^T, writing back into W's buffer.
        out = fn(1.0, X.T, W.T, side=0, lower=1, trans_a=0, overwrite_b=1)
        if out.base is W or np.shares_memory(out, W):
            return W
        W[:] = out.T
        return W
    # Blocked fallback, right to left: output column block [lo, hi) only
    # reads original columns [0, hi), which are untouched so far.
    step = max(1, GRAM_BLOCK_ROWS // max(1, m // n + 1)) if n > 1 else 1
    step = max(step, 1)
    for hi in range(n, 0, -step):
        lo = max(0, hi - step)
        W[:, lo:hi] = W[:, :hi] @ X[:hi, lo:hi]
    return W


def trsm_right_inplace(W: np.ndarray, R: np.ndarray) -> np.ndarray:
    """``W <- W @ R^{-1}`` with upper-triangular ``R``, in place."""
    m, n = W.shape
    if n == 0 or m == 0:
        return W
    if (
        HAVE_BLAS3
        and W.dtype == R.dtype
        and W.dtype in (np.float32, np.float64)
        and W.flags.c_contiguous
    ):
        fn = _blas.dtrsm if W.dtype == np.float64 else _blas.strsm
        # Solve X R = W via the transposed system R^T X^T = W^T.
        out = fn(1.0, R, W.T, side=0, lower=0, trans_a=1, overwrite_b=1)
        if out.base is W or np.shares_memory(out, W):
            return W
        W[:] = out.T
        return W
    # Blocked forward substitution, left to right: by the time block
    # [lo, hi) is solved, blocks [0, lo) already hold the solution.
    for lo in range(0, n, 64):
        hi = min(n, lo + 64)
        rhs = W[:, lo:hi]
        if lo:
            rhs = rhs - W[:, :lo] @ R[:lo, lo:hi]
        W[:, lo:hi] = rhs @ tri_inv_upper(R[lo:hi, lo:hi])
    return W
