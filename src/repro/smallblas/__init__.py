"""Batched small dense kernels (the "batched LAPACK" the paper hand-rolled).

:mod:`.batched` holds the seed einsum kernels (the reference
implementations); :mod:`.wy` holds the GEMM-based compact-WY kernels the
batched execution path runs on; :mod:`.gram` holds the BLAS3 Gram /
triangular-multiply kernels behind the CholeskyQR2 fast paths.
"""

from .gram import (
    HAVE_BLAS3,
    gram,
    tri_inv_upper,
    trmm_right_inplace,
    trsm_right_inplace,
)
from .batched import (
    batched_apply_blocked,
    batched_apply_q,
    batched_apply_qt,
    batched_form_q,
    batched_geqr2,
    batched_house,
    batched_larft,
)
from .wy import apply_wy, extract_v, geqr2_blocked, larft, wy_factors

__all__ = [
    "batched_apply_blocked",
    "batched_apply_q",
    "batched_apply_qt",
    "batched_form_q",
    "batched_geqr2",
    "batched_house",
    "batched_larft",
    "apply_wy",
    "extract_v",
    "geqr2_blocked",
    "larft",
    "wy_factors",
    "HAVE_BLAS3",
    "gram",
    "tri_inv_upper",
    "trmm_right_inplace",
    "trsm_right_inplace",
]
