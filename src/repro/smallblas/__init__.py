"""Batched small dense kernels (the "batched LAPACK" the paper hand-rolled)."""

from .batched import (
    batched_apply_blocked,
    batched_apply_q,
    batched_apply_qt,
    batched_form_q,
    batched_geqr2,
    batched_house,
    batched_larft,
)

__all__ = [
    "batched_apply_blocked",
    "batched_apply_q",
    "batched_apply_qt",
    "batched_form_q",
    "batched_geqr2",
    "batched_house",
    "batched_larft",
]
