"""Batched small dense kernels — the library the vendor BLAS lacked.

"The algorithm requires many hundreds or thousands of small QR
decompositions and other small BLAS and LAPACK operations to be performed
in parallel.  This is not currently supported in the vendor's BLAS
library.  Consequently, we had to do significant low-level tuning of
these very small operations" (Section I).

On the GPU that meant hand-written thread-block kernels; in NumPy the
same transformation is *batching*: operate on a ``(batch, m, n)`` stack
with the inner column loop vectorized across the whole batch, instead of
looping Python-side over thousands of small blocks.  These routines are
the level-0 workhorses of :mod:`repro.core.tsqr` for uniform blocks and
give it an order-of-magnitude real-time speedup at paper-like block
counts.

All routines follow the same packed conventions as their single-block
counterparts in :mod:`repro.core.householder` and are tested against
them block by block.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtypes import working_dtype
from repro.core.householder import norm_safe_range

__all__ = [
    "batched_house",
    "batched_geqr2",
    "batched_apply_qt",
    "batched_apply_q",
    "batched_form_q",
    "batched_larft",
    "batched_apply_blocked",
]


def _check_stack(A: np.ndarray, name: str = "A") -> np.ndarray:
    A = np.asarray(A)
    if A.ndim != 3:
        raise ValueError(f"{name} must be a (batch, m, n) stack")
    dt = working_dtype(A)
    return A if A.dtype == dt else A.astype(dt)


def batched_house(X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Householder reflectors for a batch of vectors.

    Args:
        X: ``(batch, L)`` — one vector per batch entry.

    Returns:
        ``(V, tau, beta)``: ``V`` is ``(batch, L)`` with ``V[:, 0] == 1``,
        ``tau`` and ``beta`` are ``(batch,)``.  Zero (or already-reduced)
        vectors get ``tau = 0`` identity reflectors, exactly like the
        scalar :func:`repro.core.householder.house`.
    """
    X = np.asarray(X)
    if X.ndim != 2 or X.shape[1] == 0:
        raise ValueError("X must be a non-empty (batch, L) array")
    dt = working_dtype(X)
    V = np.array(X, dtype=dt, copy=True)
    alpha = V[:, 0].copy()
    if V.shape[1] == 1:
        V[:, 0] = 1.0
        return V, np.zeros(V.shape[0], dtype=dt), alpha
    amax = np.max(np.abs(V[:, 1:]), axis=1)
    # Same rescaling as the scalar house(): lanes whose squared norm
    # would overflow (or underflow to a spurious identity reflector)
    # are renormalized by their largest entry before squaring.
    big, tiny = norm_safe_range(dt, V.shape[1] - 1)
    scaled = (np.maximum(np.abs(alpha), amax) > big) | ((amax < tiny) & (amax > 0.0))
    with np.errstate(over="ignore", invalid="ignore"):
        sigma = np.einsum("bi,bi->b", V[:, 1:], V[:, 1:])
        norm_x = np.sqrt(alpha * alpha + sigma)
    if scaled.any():
        s = np.maximum(np.abs(alpha[scaled]), amax[scaled])
        W = V[scaled, 1:] / s[:, None]
        norm_x[scaled] = s * np.sqrt(
            (alpha[scaled] / s) ** 2 + np.einsum("bi,bi->b", W, W)
        )
    beta = -np.copysign(norm_x, alpha)
    active = amax != 0.0
    # Avoid divide-by-zero on inactive lanes; their V rows are reset below.
    v0 = np.where(active, alpha - beta, 1.0)
    V[:, 1:] /= v0[:, None]
    V[:, 0] = 1.0
    with np.errstate(invalid="ignore", divide="ignore"):
        tau = np.where(active, (beta - alpha) / np.where(beta == 0.0, 1.0, beta), 0.0)
    tau = tau.astype(dt, copy=False)
    # Inactive lanes: identity reflector, beta = alpha.
    V[~active, 1:] = X[~active, 1:]
    beta = np.where(active, beta, alpha).astype(dt, copy=False)
    return V, tau, beta


def batched_geqr2(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unblocked Householder QR of a ``(batch, m, n)`` stack.

    The column loop runs ``min(m, n)`` times; every reflector generation
    and rank-1 update is vectorized across the batch — the NumPy analogue
    of one thread block per small QR.

    Returns packed ``(VR, tau)`` with shapes ``(batch, m, n)`` and
    ``(batch, k)``.
    """
    A = _check_stack(A)
    b, m, n = A.shape
    k = min(m, n)
    VR = A.copy()
    tau = np.zeros((b, k), dtype=VR.dtype)
    for j in range(k):
        V, t, beta = batched_house(VR[:, j:, j])
        tau[:, j] = t
        if j + 1 < n:
            # w = C^T v ; C -= tau * v w^T   (vectorized over the batch)
            C = VR[:, j:, j + 1 :]
            w = np.einsum("bij,bi->bj", C, V)
            C -= (t[:, None] * V).reshape(b, m - j, 1) * w.reshape(b, 1, n - j - 1)
        VR[:, j, j] = beta
        VR[:, j + 1 :, j] = V[:, 1:]
    return VR, tau


def batched_apply_qt(VR: np.ndarray, tau: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Apply each block's ``Q^T`` to the matching tile, in place.

    The batched ``apply_qt_h``: ``C[b] <- Q[b]^T C[b]`` for every batch
    entry at once.
    """
    return _batched_apply(VR, tau, C, transpose=True)


def batched_apply_q(VR: np.ndarray, tau: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Apply each block's ``Q`` to the matching tile, in place."""
    return _batched_apply(VR, tau, C, transpose=False)


def _batched_apply(VR: np.ndarray, tau: np.ndarray, C: np.ndarray, transpose: bool) -> np.ndarray:
    VR = _check_stack(VR, "VR")
    C = np.asarray(C)
    if C.ndim != 3 or C.shape[0] != VR.shape[0] or C.shape[1] != VR.shape[1]:
        raise ValueError("C must be (batch, m, w) matching VR's batch and rows")
    dt = working_dtype(VR, C)
    if C.dtype != dt:
        raise ValueError("C must share VR's working dtype for in-place application")
    b, m, n = VR.shape
    k = tau.shape[1]
    order = range(k) if transpose else range(k - 1, -1, -1)
    for j in order:
        V = np.empty((b, m - j), dtype=dt)
        V[:, 0] = 1.0
        V[:, 1:] = VR[:, j + 1 :, j]
        t = tau[:, j]
        sub = C[:, j:, :]
        w = np.einsum("bij,bi->bj", sub, V)
        sub -= (t[:, None] * V).reshape(b, m - j, 1) * w.reshape(b, 1, -1)
    return C


def batched_form_q(VR: np.ndarray, tau: np.ndarray, n_cols: int | None = None) -> np.ndarray:
    """Explicit thin Q for every block of the batch: ``(batch, m, k)``."""
    VR = _check_stack(VR, "VR")
    b, m, n = VR.shape
    k = min(m, n)
    if n_cols is None:
        n_cols = k
    Q = np.zeros((b, m, n_cols), dtype=VR.dtype)
    idx = np.arange(min(m, n_cols))
    Q[:, idx, idx] = 1.0
    return batched_apply_q(VR, tau, Q)


def _extract_v_batch(VR: np.ndarray) -> np.ndarray:
    """Unit-lower-trapezoidal V for every block of the batch."""
    b, m, n = VR.shape
    k = min(m, n)
    V = np.tril(VR[:, :, :k], -1)
    idx = np.arange(k)
    V[:, idx, idx] = 1.0
    return V


def batched_larft(VR: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Block-reflector T factors for a batch (``slarft``, batched).

    Returns ``(batch, k, k)`` upper-triangular T with
    ``Q_b = I - V_b T_b V_b^T``.  The column loop is short (k); each step
    is a batched matvec — the same restructuring as ``batched_geqr2``.
    """
    VR = _check_stack(VR, "VR")
    b, m, n = VR.shape
    k = tau.shape[1]
    V = _extract_v_batch(VR)
    T = np.zeros((b, k, k), dtype=VR.dtype)
    for i in range(k):
        t_i = tau[:, i]
        T[:, i, i] = t_i
        if i > 0:
            # w = V[:, :, :i]^T v_i ; T[:, :i, i] = -tau_i T[:, :i, :i] w
            w = np.einsum("bmi,bm->bi", V[:, :, :i], V[:, :, i])
            T[:, :i, i] = -t_i[:, None] * np.einsum("bij,bj->bi", T[:, :i, :i], w)
    return T


def batched_apply_blocked(
    VR: np.ndarray,
    tau: np.ndarray,
    C: np.ndarray,
    transpose: bool = True,
    T: np.ndarray | None = None,
) -> np.ndarray:
    """Apply each block's Q/Q^T via the compact-WY (BLAS3) form, in place.

    ``C_b <- (I - V_b T_b' V_b^T) C_b`` with three batched matmuls instead
    of ``k`` reflector sweeps — the batched ``larfb``.  Numerically
    equivalent to :func:`batched_apply_qt` / :func:`batched_apply_q`;
    substantially faster for wide right-hand sides.
    """
    VR = _check_stack(VR, "VR")
    C = np.asarray(C)
    if C.ndim != 3 or C.shape[0] != VR.shape[0] or C.shape[1] != VR.shape[1]:
        raise ValueError("C must be (batch, m, w) matching VR's batch and rows")
    dt = working_dtype(VR, C)
    if C.dtype != dt:
        raise ValueError("C must share VR's working dtype for in-place application")
    V = _extract_v_batch(VR)
    if T is None:
        T = batched_larft(VR, tau)
    Tm = np.swapaxes(T, 1, 2) if transpose else T
    W = np.einsum("bmk,bmw->bkw", V, C)  # V^T C
    W = Tm @ W
    C -= V @ W
    return C
