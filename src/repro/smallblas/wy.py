"""Compact-WY (BLAS3) batched kernels — the fast path of the real-time CAQR.

The seed library in :mod:`repro.smallblas.batched` vectorizes the small
QRs across a batch but formulates every contraction as ``np.einsum``,
which NumPy evaluates with its own C loop instead of BLAS.  At paper
scale (thousands of 64x16 blocks per panel) the batched matmuls below
run roughly an order of magnitude faster because ``np.matmul`` dispatches
each batch slice to a GEMM microkernel, and because the blocked
factorization produces the ``V`` and ``T`` factors of ``Q = I - V T V^T``
as byproducts, so trailing updates and repeated Q applications never
rebuild them.

Everything here accepts strided views (e.g. a trailing-matrix slice
reshaped into ``(blocks, block_rows, width)`` without a copy) — GEMM
handles the leading-dimension strides natively, which is what lets the
level-0 update of :mod:`repro.core.tsqr` run with no gather/scatter
copies at all.

The seed einsum kernels are kept untouched as the reference
implementations; these routines are tested against them block by block.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.dtypes import working_dtype

__all__ = [
    "extract_v",
    "larft",
    "apply_wy",
    "geqr2_blocked",
    "geqr2_wy",
    "wy_factors",
]

# One flat scratch allocation per dtype, grown to the high-water mark and
# reused by every apply_wy call.  The GEMM temporaries at paper scale are
# ~100 MB per trailing update; reusing one buffer instead of allocating
# fresh (page-faulting) memory each call is worth ~2x on a cold run.
# Thread-local so the look-ahead executor can run independent trailing
# updates concurrently without sharing (and corrupting) the buffer.
_TLS = threading.local()


def _scratch(count: int, dtype: np.dtype) -> np.ndarray:
    """Flat reusable buffer of at least ``count`` elements of ``dtype``."""
    work: dict[str, np.ndarray] | None = getattr(_TLS, "work", None)
    if work is None:
        work = _TLS.work = {}
    key = np.dtype(dtype).str
    buf = work.get(key)
    if buf is None or buf.size < count:
        buf = np.empty(max(count, 1), dtype=dtype)
        work[key] = buf
    return buf


def extract_v(VR: np.ndarray, k: int | None = None) -> np.ndarray:
    """Unit-lower-trapezoidal ``V`` from a packed ``(batch, m, n)`` stack.

    Equivalent to the reference ``_extract_v_batch`` but done with one
    boolean-mask pass instead of ``np.tril`` + diagonal fill per call.
    """
    b, m, n = VR.shape
    if k is None:
        k = min(m, n)
    mask = np.tri(m, k, -1, dtype=bool)
    V = np.where(mask, VR[:, :, :k], 0.0)
    idx = np.arange(min(m, k))
    V[:, idx, idx] = 1.0
    return V


def larft(V: np.ndarray, tau: np.ndarray, VtV: np.ndarray | None = None) -> np.ndarray:
    """Block-reflector ``T`` (``slarft``) for a batch, via GEMM.

    The m-length contractions are hoisted into one batched GEMM
    ``S = V^T V``; the remaining recurrence works on k-sized data only::

        T[i, i] = tau_i
        T[:i, i] = -tau_i * T[:i, :i] @ S[:i, i]

    Args:
        V: ``(batch, m, k)`` unit-lower-trapezoidal reflectors.
        tau: ``(batch, k)`` coefficients.
        VtV: optional precomputed ``V^T V`` ``(batch, k, k)``.
    """
    b, m, k = V.shape
    if VtV is None:
        VtV = np.matmul(V.transpose(0, 2, 1), V)
    T = np.zeros((b, k, k), dtype=V.dtype)
    for i in range(k):
        t_i = tau[:, i]
        T[:, i, i] = t_i
        if i > 0:
            w = np.matmul(T[:, :i, :i], VtV[:, :i, i, None])
            T[:, :i, i] = -t_i[:, None] * w[:, :, 0]
    return T


def apply_wy(
    V: np.ndarray,
    T: np.ndarray,
    C: np.ndarray,
    transpose: bool = True,
    chunk_elems: int = 131072,
) -> np.ndarray:
    """Apply ``Q`` / ``Q^T`` of ``Q = I - V T V^T`` to each tile, in place.

    ``C_b <- C_b - V_b (T_b' (V_b^T C_b))`` — three batched GEMMs and a
    subtraction.  ``C`` may be any strided ``(batch, m, w)`` view; the
    update writes through it, so callers can pass a reshaped trailing
    slice and skip gather/scatter entirely.

    The batch is processed in chunks whose temporaries hold at most
    ``chunk_elems`` elements, carved out of the shared scratch buffer.
    The default keeps a chunk cache-resident, which at paper scale
    (few huge trailing updates) halves main-memory traffic versus three
    full-batch GEMMs with materialized intermediates; the serving
    coalescer, whose updates are many and small, passes a larger bound
    to buy fewer GEMM dispatches instead.  Chunking splits the batch
    axis only — each slice's arithmetic is independent of ``chunk_elems``,
    so results are bitwise identical across settings.
    """
    Tm = T.transpose(0, 2, 1) if transpose else T
    b, m, k = V.shape
    w = C.shape[2]
    if V.dtype != C.dtype or k == 0 or w == 0:
        W = np.matmul(V.transpose(0, 2, 1), C)
        W = np.matmul(Tm, W)
        np.subtract(C, np.matmul(V, W), out=C)
        return C
    per_block = w * (2 * k + m)
    chunk = max(1, min(b, chunk_elems // max(1, per_block)))
    buf = _scratch(chunk * per_block, C.dtype)
    for s0 in range(0, b, chunk):
        s1 = min(s0 + chunk, b)
        cb = s1 - s0
        Vc = V[s0:s1]
        Cc = C[s0:s1]
        W1 = buf[: cb * k * w].reshape(cb, k, w)
        W2 = buf[cb * k * w : 2 * cb * k * w].reshape(cb, k, w)
        VW = buf[2 * cb * k * w : cb * per_block].reshape(cb, m, w)
        np.matmul(Vc.transpose(0, 2, 1), Cc, out=W1)
        np.matmul(Tm[s0:s1], W1, out=W2)
        np.matmul(Vc, W2, out=VW)
        np.subtract(Cc, VW, out=Cc)
    return C


def wy_factors(VR: np.ndarray, tau: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(V, T)`` of the compact-WY form for an already-packed factor."""
    V = extract_v(VR)
    return V, larft(V, tau)


def geqr2_wy(
    A: np.ndarray,
    vmask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lean batched QR for stacked *independent* problems: ``(V, T, h)``.

    The same arithmetic as the float path of :func:`geqr2_blocked` — the
    stacked-QR gufunc per slice, :func:`larft` for ``T`` — minus the
    materialization of the full contiguous packed factor, which the
    serving coalescer (:mod:`repro.serving`) never reads: it extracts
    ``V`` and the triangular ``R`` block straight from the LAPACK output
    ``h`` through strided views.  Because every contraction is computed
    per batch slice, stacking independent same-shape matrices along the
    batch axis produces factors bit-identical to factoring each matrix
    alone — that is the property the request coalescer is built on.

    Args:
        A: ``(batch, m, n)`` stack, float32/float64 (the only dtypes the
            gufunc fast path covers; other dtypes belong in
            :func:`geqr2_blocked`).
        vmask: optional precomputed ``np.tri(m, k, -1, bool)`` strict
            lower-trapezoid mask; per-shape callers cache it.

    Returns:
        ``(V, T, h)``: the unit-lower-trapezoidal reflectors ``(batch,
        m, k)``, the block-reflector ``T`` ``(batch, k, k)``, and the raw
        ``(batch, n, m)`` packed factor from ``np.linalg.qr(mode="raw")``
        (rows of ``h`` are columns of VR; ``R`` is its upper ``k x n``
        corner, transposed).
    """
    if A.ndim != 3:
        raise ValueError("A must be a (batch, m, n) stack")
    if A.dtype not in (np.float32, np.float64):
        raise TypeError(
            f"geqr2_wy covers the gufunc fast path (float32/float64) only, "
            f"got {A.dtype}; use geqr2_blocked"
        )
    b, m, n = A.shape
    k = min(m, n)
    h, tau = np.linalg.qr(A, mode="raw")
    if vmask is None:
        vmask = np.tri(m, k, -1, dtype=bool)
    VRk = h[:, :k, :].transpose(0, 2, 1)
    V = np.where(vmask, VRk, 0.0)
    idx = np.arange(k)
    V[:, idx, idx] = 1.0
    return V, larft(V, tau), h


def geqr2_blocked(
    A: np.ndarray,
    ib: int = 8,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Blocked batched QR returning the compact-WY factors as byproducts.

    Factors a ``(batch, m, n)`` stack right-looking in column sub-blocks
    of width ``ib`` — the batched ``sgeqrf`` to the seed's batched
    ``sgeqr2``.  The whole panel is staged through one transposed
    ``(batch, n, m)`` scratch so every column the inner reflector loop
    touches is a contiguous row; reflector vectors are normalized in
    place (no per-column copies), and each sub-block's trailing update is
    three batched GEMMs executed directly in the transposed layout.

    Returns:
        ``(VR, tau, V, T)``: the packed factor and coefficients exactly as
        :func:`repro.smallblas.batched.batched_geqr2` lays them out (up to
        roundoff in the trailing updates), plus the assembled ``(batch,
        m, k)`` reflectors and ``(batch, k, k)`` block-reflector T with
        ``Q_b = I - V_b T_b V_b^T``.
    """
    A = np.asarray(A)
    if A.ndim != 3:
        raise ValueError("A must be a (batch, m, n) stack")
    dt = working_dtype(A)
    b, m, n = A.shape
    k = min(m, n)
    tau = np.zeros((b, k), dtype=dt)
    if k == 0:
        VR = np.array(A, dtype=dt, copy=True)
        return VR, tau, np.zeros((b, m, 0), dtype=dt), np.zeros((b, 0, 0), dtype=dt)
    if dt in (np.float32, np.float64):
        # LAPACK geqrf through the stacked-QR gufunc: the whole batch is
        # factored in one C loop with no per-column Python dispatch.
        # dlarfg uses the same reflector convention as the reference
        # batched_house (beta = -sign(alpha)|x|, tau = (beta-alpha)/beta,
        # tau = 0 for already-reduced columns), so the packed factor is
        # interchangeable with batched_geqr2 output up to roundoff.
        h, tau = np.linalg.qr(np.asarray(A, dtype=dt), mode="raw")
        VR = np.ascontiguousarray(h.transpose(0, 2, 1))
        V = extract_v(VR)
        return VR, tau, V, larft(V, tau)
    # .copy() (not ascontiguousarray) — a size-1 axis can make the
    # transposed view already contiguous, and the input must not be
    # mutated by the in-place reflector loop below.
    St = np.asarray(A, dtype=dt).transpose(0, 2, 1).copy()  # (b, n, m)
    ib = max(1, min(ib, k))
    starts = list(range(0, k, ib))
    V = np.zeros((b, m, k), dtype=dt)
    sub_T: list[np.ndarray] = []
    for j0 in starts:
        j1 = min(j0 + ib, k)
        w = j1 - j0
        # Unblocked reflector loop on columns j0:j1 (St rows), rows j0:.
        # Same arithmetic as the reference batched_house/batched_geqr2,
        # inlined: v_rest overwrites the column storage directly and the
        # rank-1 trailing update touches at most `w` columns.
        for i in range(w):
            c = j0 + i  # global column index == pivot row index
            row = St[:, c, c:]  # (b, m - c), contiguous
            if row.shape[1] == 1:
                continue  # length-1 vector: tau = 0, beta = alpha
            alpha = row[:, 0].copy()
            rest = row[:, 1:]
            sigma = np.einsum("bi,bi->b", rest, rest)
            norm_x = np.sqrt(alpha * alpha + sigma)
            beta = -np.copysign(norm_x, alpha)
            active = sigma != 0.0
            denom = np.where(active, alpha - beta, 1.0)
            rest /= denom[:, None]
            with np.errstate(invalid="ignore", divide="ignore"):
                t = np.where(
                    active, (beta - alpha) / np.where(beta == 0.0, 1.0, beta), 0.0
                )
            tau[:, c] = t
            row[:, 0] = np.where(active, beta, alpha)
            if i + 1 < w:
                # C_j -= t (C_j . v) v for the sub-block's remaining
                # columns, with v = [1, rest] never materialized.
                Ct = St[:, c + 1 : j1, c:]  # (b, w - i - 1, m - c)
                c0 = Ct[:, :, 0]
                cv = c0 + np.matmul(Ct[:, :, 1:], rest[:, :, None])[:, :, 0]
                s = t[:, None] * cv
                c0 -= s
                Ct[:, :, 1:] -= s[:, :, None] * rest[:, None, :]
        # Assemble the sub-block's unit-lower V and its T.
        Vb = V[:, j0:, j0:j1]
        for i in range(w):
            c = j0 + i
            Vb[:, i, i] = 1.0
            Vb[:, i + 1 :, i] = St[:, c, c + 1 :]
        Tb = larft(np.ascontiguousarray(Vb), tau[:, j0:j1])
        sub_T.append(Tb)
        if j1 < n:
            # Trailing update in the transposed layout:
            # C <- (I - V T' V^T) C  ==>  Ct <- Ct - ((Ct V) T) V^T.
            Ct = St[:, j1:, j0:]  # (b, n - j1, m - j0)
            W1 = np.matmul(Ct, Vb)
            W2 = np.matmul(W1, Tb)
            prod = _scratch(Ct.size, dt)[: Ct.size].reshape(Ct.shape)
            np.matmul(W2, Vb.transpose(0, 2, 1), out=prod)
            Ct -= prod
    VR = np.ascontiguousarray(St.transpose(0, 2, 1))
    T = np.zeros((b, k, k), dtype=dt)
    T[:, : min(ib, k), : min(ib, k)] = sub_T[0]
    for bi, i0 in enumerate(starts[1:], start=1):
        i1 = min(i0 + ib, k)
        T[:, i0:i1, i0:i1] = sub_T[bi]
        # Prefix merge: T[:i0, i0:i1] = -T[:i0, :i0] (V_pref^T V_blk) T_blk,
        # contracted over the block's row support (zero above row i0).
        cross = np.matmul(V[:, i0:, :i0].transpose(0, 2, 1), V[:, i0:, i0:i1])
        T[:, :i0, i0:i1] = -np.matmul(np.matmul(T[:, :i0, :i0], cross), sub_T[bi])
    return VR, tau, V, T
