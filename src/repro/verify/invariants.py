"""Reusable QR invariant checks.

The invariants a correct thin QR must satisfy, packaged so the tests,
the benchmarks and the differential fuzz harness all measure the same
quantities with the same tolerances:

* orthogonality ``||Q^T Q - I||_F``
* relative reconstruction residual ``||A - Q R||_F / ||A||_F``
* upper-triangularity of R
* shape and dtype contracts against ``np.linalg.qr(mode="reduced")``
* launch-stream fingerprint stability of the GPU cost model (the serial
  kernel-launch sequence is pure shape arithmetic and must never move
  when numeric execution strategies change)

Tolerances scale with the *input's* working precision: a float32
factorization is held to float32's Householder bound, not float64's.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.dtypes import working_dtype
from repro.core.validation import (
    factorization_error,
    orthogonality_error,
    triangularity_error,
)

__all__ = [
    "QRInvariantReport",
    "qr_invariants",
    "check_qr",
    "expected_qr_shapes",
    "qr_tolerance",
    "launch_fingerprint",
]


def expected_qr_shapes(m: int, n: int) -> tuple[tuple[int, int], tuple[int, int]]:
    """The ``(Q.shape, R.shape)`` contract of a reduced QR: k = min(m, n)."""
    k = min(m, n)
    return (m, k), (k, n)


def qr_tolerance(m: int, n: int, dtype, factor: float = 100.0) -> float:
    """Householder backward-error bound for an ``m x n`` factorization.

    ``factor * eps * sqrt(max(m * n, 1))`` in the working precision of
    ``dtype`` — the same generous bound
    :func:`repro.core.validation.is_factorization_accurate` uses, made
    dtype-aware.
    """
    eps = float(np.finfo(working_dtype(np.empty(0, dtype=dtype))).eps)
    return factor * eps * max(float(np.sqrt(m * n)), 1.0)


@dataclass(frozen=True)
class QRInvariantReport:
    """Measured invariants of one ``(A, Q, R)`` triple."""

    m: int
    n: int
    orthogonality: float
    residual: float
    triangularity: float
    q_shape: tuple[int, int]
    r_shape: tuple[int, int]
    q_dtype: str
    r_dtype: str
    a_dtype: str
    tol: float
    q_finite: bool = True
    r_finite: bool = True

    @property
    def shapes_ok(self) -> bool:
        eq, er = expected_qr_shapes(self.m, self.n)
        return self.q_shape == eq and self.r_shape == er

    @property
    def dtypes_ok(self) -> bool:
        """Q and R carry the input's working precision (float32 in,
        float32 out — the paper's single-precision pipeline end to end)."""
        want = str(np.dtype(working_dtype(np.empty(0, dtype=self.a_dtype))))
        return self.q_dtype == want and self.r_dtype == want

    def failures(self) -> list[str]:
        """Human-readable list of violated invariants (empty when clean)."""
        out = []
        # Checked first and explicitly: NaN metrics compare False against
        # every tolerance, so without this a NaN-filled Q/R would pass.
        if not self.q_finite:
            out.append("Q contains non-finite entries")
        if not self.r_finite:
            out.append("R contains non-finite entries")
        if not self.shapes_ok:
            eq, er = expected_qr_shapes(self.m, self.n)
            out.append(
                f"shape mismatch: Q {self.q_shape} R {self.r_shape}, "
                f"expected Q {eq} R {er}"
            )
        if not self.dtypes_ok:
            out.append(
                f"dtype not preserved: A {self.a_dtype} -> Q {self.q_dtype}, R {self.r_dtype}"
            )
        if self.orthogonality > self.tol * max(1.0, float(np.sqrt(self.n))):
            out.append(f"orthogonality {self.orthogonality:.3e} > tol {self.tol:.3e}")
        if self.residual > self.tol:
            out.append(f"residual {self.residual:.3e} > tol {self.tol:.3e}")
        if self.triangularity != 0.0:
            out.append(f"R not upper-triangular (strict-lower norm {self.triangularity:.3e})")
        return out

    @property
    def ok(self) -> bool:
        return not self.failures()


def qr_invariants(
    A: np.ndarray, Q: np.ndarray, R: np.ndarray, factor: float = 100.0
) -> QRInvariantReport:
    """Measure every invariant of a reduced QR of ``A``."""
    A = np.asarray(A)
    m, n = A.shape
    return QRInvariantReport(
        m=m,
        n=n,
        orthogonality=orthogonality_error(Q) if Q.size else 0.0,
        residual=factorization_error(A, Q, R),
        triangularity=triangularity_error(R) if R.size else 0.0,
        q_shape=tuple(Q.shape),
        r_shape=tuple(R.shape),
        q_dtype=str(Q.dtype),
        r_dtype=str(R.dtype),
        a_dtype=str(A.dtype),
        tol=qr_tolerance(m, n, A.dtype, factor=factor),
        q_finite=bool(np.isfinite(Q).all()) if Q.size else True,
        r_finite=bool(np.isfinite(R).all()) if R.size else True,
    )


def check_qr(A: np.ndarray, Q: np.ndarray, R: np.ndarray, factor: float = 100.0) -> None:
    """Raise ``AssertionError`` listing every violated invariant."""
    report = qr_invariants(A, Q, R, factor=factor)
    failures = report.failures()
    if failures:
        raise AssertionError(
            f"QR invariants violated for {report.m} x {report.n} ({report.a_dtype}):\n  "
            + "\n  ".join(failures)
        )


def launch_fingerprint(m: int, n: int, cfg=None, dev=None) -> str:
    """SHA-256 fingerprint of the serial CAQR kernel-launch stream.

    The launch sequence is pure shape arithmetic — it must be identical
    no matter which numeric execution strategy (seed, batched, look-ahead,
    structured) runs the arithmetic, and must not move when perf PRs
    reorganize the numerics.  Tests pin fingerprints of reference shapes;
    the fuzz harness asserts stability across repeated enumeration.
    """
    # Imported lazily: repro.caqr_gpu imports repro.core.caqr, which
    # imports the guard layer of this package.
    from repro.caqr_gpu import enumerate_caqr_launches
    from repro.gpusim.device import C2050
    from repro.kernels.config import REFERENCE_CONFIG

    cfg = REFERENCE_CONFIG if cfg is None else cfg
    dev = C2050 if dev is None else dev
    h = hashlib.sha256()
    for spec in enumerate_caqr_launches(m, n, cfg, dev):
        h.update(
            repr(
                (
                    spec.kernel,
                    spec.n_blocks,
                    spec.threads_per_block,
                    round(spec.cycles_per_block, 9),
                    round(spec.flops_per_block, 9),
                    round(spec.read_bytes_per_block, 9),
                    round(spec.write_bytes_per_block, 9),
                    spec.tag,
                )
            ).encode()
        )
    return h.hexdigest()
