"""Input guard rails for every public factorization entry point.

One validation policy, enforced in one place (this module) and wired
through ``caqr`` / ``caqr_qr``, ``tsqr`` / ``tsqr_qr``,
``caqr_gpu_factor``, ``caqr_lookahead``, ``QRDispatcher.qr``,
``randomized_svd`` / ``randomized_range_finder``, ``AdaptiveSVT`` and
the numeric baselines (``blocked_qr``, ``cholesky_qr``, ``cgs2``):

* **Complex dtypes are rejected** with ``TypeError``.  The kernels are
  real-arithmetic only; the historical behaviour (truncate the imaginary
  part under a ``ComplexWarning``) produced a plausible-looking Q/R built
  from corrupted data.
* **Non-finite entries are detected** under a configurable policy:
  ``"raise"`` (the default) reports the offending entry with a
  ``ValueError``; ``"propagate"`` opts out for callers — benchmarks,
  failure-injection studies — that knowingly feed non-finite data.
* **Dtype and layout are normalized**: Python lists, integers and booleans
  become float64, float32 is preserved end to end (the paper computes in
  single precision), every other real float widens to float64.  Strided
  and Fortran-order views are accepted everywhere; the layer that needs a
  contiguous buffer makes its own copy, so no entry point ever mutates a
  caller's array through an aliased view.

Internal calls between entry points (e.g. ``caqr`` factoring each panel
through ``tsqr``) pass ``nonfinite="propagate"`` after validating once at
the public boundary, so inputs are scanned exactly once per call.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.obs import tracer as _obs

__all__ = [
    "NONFINITE_POLICIES",
    "GuardError",
    "ValidationCounter",
    "count_validations",
    "validate_matrix",
    "validate_nonfinite_policy",
    "validate_stream_chunk",
]

NONFINITE_POLICIES = ("raise", "propagate")


@dataclass
class ValidationCounter:
    """Counts guard-layer activity while a :func:`count_validations` scope
    is open.

    ``validations`` counts :func:`validate_matrix` entries; ``scans``
    counts actual non-finite sweeps over the data (``"raise"`` mode
    only).  The single-scan contract — one public entry point, one scan
    per matrix — is asserted in tests through this hook.
    """

    validations: int = 0
    scans: int = 0


_COUNTERS: list[ValidationCounter] = []


@contextmanager
def count_validations():
    """Context manager yielding a live :class:`ValidationCounter`."""
    counter = ValidationCounter()
    _COUNTERS.append(counter)
    try:
        yield counter
    finally:
        _COUNTERS.remove(counter)


class GuardError(ValueError):
    """A guard-policy misconfiguration (not a data problem)."""


def validate_nonfinite_policy(nonfinite: str, where: str = "validate_matrix") -> str:
    """Check that ``nonfinite`` names a known policy; return it."""
    if nonfinite not in NONFINITE_POLICIES:
        raise GuardError(
            f"{where}: nonfinite policy must be one of {NONFINITE_POLICIES}, "
            f"got {nonfinite!r}"
        )
    return nonfinite


def _raise_on_nonfinite(A: np.ndarray, where: str) -> None:
    for counter in _COUNTERS:
        counter.scans += 1
    if A.size == 0:
        return
    # The scan is the guard layer's whole O(mn) cost — span it so traces
    # show where (and how often) inputs are being re-scanned.
    with _obs.span("guard.scan", cat="guard", where=where):
        _obs.counters(guard_scans=1, guard_scan_bytes=int(A.nbytes))
        finite = np.isfinite(A)
        ok = bool(finite.all())
    if ok:
        return
    bad = np.argwhere(~finite)
    idx = tuple(int(x) for x in bad[0])
    value = A[idx]
    kind = "nan" if np.isnan(value) else "inf"
    raise ValueError(
        f"{where}: input contains {bad.shape[0]} non-finite entr"
        f"{'y' if bad.shape[0] == 1 else 'ies'}; first is {kind} at index {idx}. "
        "Pass nonfinite='propagate' to skip this check."
    )


def validate_matrix(
    A,
    where: str,
    nonfinite: str = "raise",
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """Validate and normalize one matrix input at a public entry point.

    Args:
        A: the caller's matrix (array-like).
        where: the entry point's name — prefixed to every diagnostic so a
            failure names the API the bad data reached, not an internal.
        nonfinite: ``"raise"`` (default) or ``"propagate"``.
        dtype: force this floating dtype instead of the default
            float32-preserving promotion (the SVD-based paths compute in
            float64 regardless of input precision).

    Returns:
        The validated array in its working float dtype.  No copy is made
        when the input already has that dtype; layout (C/F/strided) is
        preserved — downstream code copies where it needs contiguity.

    Raises:
        TypeError: complex input.
        ValueError: non-2-D input, or non-finite entries under ``"raise"``.
        GuardError: unknown ``nonfinite`` policy.
    """
    # Lazy: repro.core's modules import this guard layer at definition
    # time, so importing repro.core here at module level would cycle.
    from repro.core.dtypes import as_float_array

    for counter in _COUNTERS:
        counter.validations += 1
    validate_nonfinite_policy(nonfinite, where)
    A = np.asarray(A)
    if np.iscomplexobj(A):
        raise TypeError(f"{where}: complex input is not supported")
    if A.ndim != 2:
        raise ValueError(f"{where}: input must be 2-D, got {A.ndim}-D shape {A.shape}")
    if dtype is not None:
        out = np.asarray(A, dtype=np.dtype(dtype))
    else:
        out = as_float_array(A)
    if nonfinite == "raise":
        _raise_on_nonfinite(out, where)
    return out


def validate_stream_chunk(
    chunk,
    where: str,
    n_cols: int | None = None,
    dtype: np.dtype | None = None,
    nonfinite: str = "raise",
) -> np.ndarray:
    """Validate one chunk of a row stream against the stream's contract.

    A streamed factorization sees its input one chunk at a time, so the
    per-matrix checks of :func:`validate_matrix` are not enough: every
    chunk must also *agree with the chunks before it*.  This guard adds
    the two stream-level rejections on top of the usual matrix checks:

    * **column drift** — a chunk whose width differs from the stream's
      established ``n_cols`` raises ``ValueError`` (the running R would
      silently be the factorization of garbage);
    * **dtype mixing** — a chunk whose working float dtype differs from
      the stream's established ``dtype`` raises ``TypeError``.  Folding
      a float32 chunk into a float64 carry (or vice versa) would change
      the arithmetic mid-stream, breaking the streamed-equals-one-shot
      contract the fuzz harness pins.

    Args:
        chunk: the caller's row block (array-like, 2-D).
        where: the entry point's name for diagnostics.
        n_cols: the stream's established column count (``None`` for the
            first chunk, which sets it).
        dtype: the stream's established working dtype (``None`` for the
            first chunk).
        nonfinite: per-chunk non-finite policy, as in
            :func:`validate_matrix`.

    Returns:
        The validated chunk in its working float dtype.
    """
    out = validate_matrix(chunk, where=where, nonfinite=nonfinite)
    if n_cols is not None and out.shape[1] != n_cols:
        raise ValueError(
            f"{where}: chunk has {out.shape[1]} columns but the stream "
            f"established {n_cols}; every chunk of a stream must share "
            f"one column count"
        )
    if dtype is not None and out.dtype != np.dtype(dtype):
        raise TypeError(
            f"{where}: chunk dtype {out.dtype} differs from the stream's "
            f"established {np.dtype(dtype)}; dtype-mixed chunks would "
            f"change the arithmetic mid-stream — cast the stream to one "
            f"dtype at the source"
        )
    return out
