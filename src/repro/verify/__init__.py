"""Correctness subsystem: input guards, invariants, differential fuzzing.

Three layers, each usable on its own:

* :mod:`repro.verify.guards` — the single input-validation policy every
  public factorization entry point enforces (complex rejection,
  non-finite detection, dtype/layout normalization).
* :mod:`repro.verify.invariants` — reusable QR invariant checks
  (orthogonality, residual, triangularity, shape/dtype contracts, launch
  -stream fingerprints) shared by the tests, the benchmarks and the fuzz
  harness.
* :mod:`repro.verify.fuzz` — the differential fuzz harness behind
  ``python -m repro verify``: a seeded grid of shapes, dtypes, layouts
  and path flags, cross-checked against ``np.linalg.qr`` and against
  each other.  Imported lazily so the guard layer stays dependency-free
  for the core modules that import it at definition time.
"""

from __future__ import annotations

from .guards import NONFINITE_POLICIES, GuardError, validate_matrix
from .invariants import (
    QRInvariantReport,
    check_qr,
    expected_qr_shapes,
    launch_fingerprint,
    qr_invariants,
)

__all__ = [
    "NONFINITE_POLICIES",
    "GuardError",
    "validate_matrix",
    "QRInvariantReport",
    "check_qr",
    "expected_qr_shapes",
    "launch_fingerprint",
    "qr_invariants",
    "FuzzCase",
    "FuzzReport",
    "run_grid",
]


def __getattr__(name: str):
    # repro.verify.fuzz imports repro.core.caqr, which itself imports the
    # guard layer; loading it lazily keeps that cycle open.
    if name in ("FuzzCase", "FuzzReport", "run_grid"):
        from . import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
