"""Differential fuzz harness over every CAQR execution path.

``python -m repro verify`` drives this module: a seeded grid of shapes
(including 0-row/0-col, square, m < n, single-panel and
panel_width > n), dtypes (float64/float32), memory layouts (C, Fortran,
strided views) and matrix kinds (Gaussian, graded spectrum, extreme
"huge"/"tiny" scales that stress the rescaled reflector path), each
factored through every execution path —

* ``seed``          — the per-node reference path (``batched=False``)
* ``batched``       — level-batched compact-WY (the default)
* ``structured``    — sparsity-exploiting stacked-triangle tree
* ``lookahead``     — the task-graph executor, serial
* ``lookahead_mt``  — the task-graph executor on a thread pool
* ``cholqr2``       — BLAS3 CholeskyQR2 (guard *refuses* ill-conditioned)
* ``cholqr2_mixed`` — CholeskyQR2 with a float32 first-pass Gram
* ``auto``          — condition-guarded cholqr2 with tree fallback
* ``sharded``       — multi-device CAQR over 3 simulated ranks
* ``streaming``     — out-of-core chunked CAQR (11-row chunks)

— and cross-checked three ways: the QR invariants of
:mod:`repro.verify.invariants` (orthogonality, residual,
triangularity, shape/dtype contracts vs ``np.linalg.qr``), direct
factor agreement with ``np.linalg.qr`` after sign canonicalization
(well-conditioned matrices only — forward R/Q perturbation bounds carry
a condition-number factor, so graded matrices check invariants only),
and pairwise agreement between paths.  The serial launch-stream
fingerprint is asserted stable for every factorable shape in the grid.

The CholeskyQR2 paths carry extra differential semantics: a
:class:`~repro.core.cholesky_qr.CholeskyBreakdownError` from an
*explicit* cholqr path on an adversarial (non-Gaussian) kind is an
accepted refusal, not a divergence; ``auto`` must never raise it, must
never fall back on a Gaussian matrix, and must provably fall back
(fallback counter > 0) somewhere in any sweep that includes
ill-conditioned kinds.  Tall well-conditioned cases additionally factor
through :func:`repro.core.gram_schmidt.cgs2` as an independent
"twice is enough" reference.

Any divergence is reported with a minimal standalone repro snippet.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.caqr import caqr_qr
from repro.core.cholesky_qr import CholeskyBreakdownError
from repro.core.gram_schmidt import cgs2
from repro.core.validation import sign_canonical
from repro.runtime.cholqr import count_fallbacks
from repro.runtime.policy import ExecutionPolicy

from .invariants import launch_fingerprint, qr_invariants, qr_tolerance

__all__ = [
    "PATHS",
    "FuzzCase",
    "Divergence",
    "FuzzReport",
    "policy_for",
    "run_case",
    "generate_cases",
    "run_grid",
]


# ExecutionPolicy field overrides per fuzz path, keyed by the name the
# report uses.  ``lookahead_mt`` is the same policy path with a thread
# pool — kept as a distinct fuzz identity because it exercises the
# concurrent executor engine.
PATHS: dict[str, dict] = {
    "seed": {"path": "seed"},
    "batched": {"path": "batched"},
    "structured": {"path": "structured"},
    "lookahead": {"path": "lookahead"},
    "lookahead_mt": {"path": "lookahead", "workers": 3},
    "cholqr2": {"path": "cholqr2"},
    "cholqr2_mixed": {"path": "cholqr2_mixed"},
    "auto": {"path": "auto"},
    # Sharded multi-device CAQR: 3 ranks (uneven deals on most shapes)
    # over the default binomial fan-in; the effective rank count clamps
    # to the row count, so degenerate grid shapes run too.
    "sharded": {"path": "sharded", "shards": 3},
    # Streaming out-of-core CAQR: an 11-row chunk leaves a ragged tail
    # on most grid shapes and forces chunks narrower than the panel
    # width, exercising both merge regimes (dense start-up + structured
    # steady state) against the in-core paths.
    "streaming": {"path": "streaming", "chunk_rows": 11},
}

# Fuzz names whose policy is a CholeskyQR2 path that may *refuse*
# (raise CholeskyBreakdownError) rather than fall back.
_EXPLICIT_CHOLQR = ("cholqr2", "cholqr2_mixed")


def policy_for(
    name: str,
    panel_width: int = 16,
    block_rows: int = 64,
    tree_shape: str = "quad",
    nonfinite: str = "raise",
) -> ExecutionPolicy:
    """The :class:`ExecutionPolicy` a fuzz path name denotes."""
    return ExecutionPolicy(
        panel_width=panel_width,
        block_rows=block_rows,
        tree_shape=tree_shape,
        nonfinite=nonfinite,
        **PATHS[name],
    )

# Factor on the pairwise/vs-numpy comparison tolerance: looser than the
# invariant bound because two independently-rounded stable QRs of the
# same matrix may differ by a modest multiple of the backward error.
_PAIR_FACTOR = 2000.0


@dataclass(frozen=True)
class FuzzCase:
    """One matrix + parameter combination of the differential grid."""

    m: int
    n: int
    dtype: str = "float64"  # "float64" | "float32"
    order: str = "C"  # "C" | "F" | "strided"
    kind: str = "gauss"  # "gauss" | "graded" | "huge" | "tiny"
    panel_width: int = 16
    block_rows: int = 64
    tree_shape: str = "quad"
    seed: int = 0

    def build(self) -> np.ndarray:
        """Materialize the case's matrix (deterministic in ``seed``)."""
        rng = np.random.default_rng(self.seed)
        A = rng.standard_normal((self.m, self.n))
        k = min(self.m, self.n)
        if self.kind == "graded" and k >= 2:
            # Geometric singular values spanning six decades.
            U, _, Vt = np.linalg.svd(A, full_matrices=False)
            A = (U * np.logspace(0, -6, k)) @ Vt
        A = A.astype(self.dtype)
        if self.kind in ("huge", "tiny"):
            # Extreme but representable magnitudes: in float32, "huge"
            # entries square past float32 max, exercising the rescaled
            # reflector path in house()/batched_house(); "tiny" entries
            # square to zero, which once produced spurious identity
            # reflectors.  Cross-check metrics run in float64 and stay
            # finite at these scales.
            exp = 30 if self.dtype == "float32" else 150
            A = A * A.dtype.type(10.0 ** (exp if self.kind == "huge" else -exp))
        if self.order == "F":
            A = np.asfortranarray(A)
        elif self.order == "strided":
            buf = np.zeros((2 * self.m + 1, 2 * self.n + 1), dtype=A.dtype)
            view = buf[0 : 2 * self.m : 2, 0 : 2 * self.n : 2]
            view[...] = A
            A = view
        return A

    def policy(self, path: str) -> ExecutionPolicy:
        """The execution policy this case runs path ``path`` under."""
        return policy_for(
            path,
            panel_width=self.panel_width,
            block_rows=self.block_rows,
            tree_shape=self.tree_shape,
        )

    def repro(self, path: str) -> str:
        """Minimal standalone snippet reproducing this case on ``path``."""
        kw = ", ".join(
            f"{k}={v!r}"
            for k, v in dict(
                panel_width=self.panel_width,
                block_rows=self.block_rows,
                tree_shape=self.tree_shape,
                **PATHS[path],
            ).items()
        )
        return (
            "from repro.core.caqr import caqr_qr\n"
            "from repro.runtime import ExecutionPolicy\n"
            f"from repro.verify.fuzz import FuzzCase\n"
            f"A = {self!r}.build()\n"
            f"Q, R = caqr_qr(A, policy=ExecutionPolicy({kw}))"
        )


@dataclass(frozen=True)
class Divergence:
    """One detected disagreement, with enough context to reproduce it."""

    case: FuzzCase
    path: str
    # "exception" | "invariants" | "vs-numpy" | "pairwise" | "fingerprint"
    # | "fallback" (auto fell back on Gaussian input, or a sweep with
    #   adversarial kinds saw no fallback at all)
    check: str
    detail: str

    def format(self) -> str:
        return (
            f"[{self.check}] path={self.path} "
            f"{self.case.m}x{self.case.n} {self.case.dtype} {self.case.order} "
            f"{self.case.kind} pw={self.case.panel_width} bh={self.case.block_rows} "
            f"tree={self.case.tree_shape} seed={self.case.seed}\n"
            f"    {self.detail}\n"
            f"    repro:\n"
            + "\n".join("      " + line for line in self.case.repro(self.path).splitlines())
        )


@dataclass
class FuzzReport:
    """Outcome of one grid sweep."""

    cases_run: int
    paths_run: int
    divergences: list[Divergence]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def format(self, max_shown: int = 20) -> str:
        lines = [
            f"differential fuzz: {self.cases_run} cases x {self.paths_run} paths "
            f"-> {len(self.divergences)} divergence(s)"
        ]
        for d in self.divergences[:max_shown]:
            lines.append(d.format())
        if len(self.divergences) > max_shown:
            lines.append(f"... and {len(self.divergences) - max_shown} more")
        if self.ok:
            lines.append("all paths agree with np.linalg.qr and with each other")
        return "\n".join(lines)


def _factor_diff(Q1, R1, Q2, R2, scale: float) -> tuple[float, float]:
    """Max-abs differences of sign-canonicalized factors (R scaled)."""
    Q1c, R1c = sign_canonical(Q1, R1)
    Q2c, R2c = sign_canonical(Q2, R2)
    dq = float(np.abs(Q1c - Q2c).max()) if Q1c.size else 0.0
    dr = float(np.abs(R1c - R2c).max()) / scale if R1c.size else 0.0
    return dq, dr


def run_case(case: FuzzCase, paths: list[str] | None = None) -> list[Divergence]:
    """Run every requested path on one case; return all divergences."""
    names = list(PATHS) if paths is None else list(paths)
    A = case.build()
    m, n = case.m, case.n
    divs: list[Divergence] = []
    ref_Q, ref_R = np.linalg.qr(A, mode="reduced")
    # Norm in float64: a float32 "huge" case would overflow its own norm.
    scale = max(float(np.linalg.norm(np.asarray(A, dtype=np.float64))), 1.0)
    pair_tol = qr_tolerance(m, n, A.dtype, factor=_PAIR_FACTOR)
    # Scaled Gaussians ("huge"/"tiny") stay well-conditioned; only graded
    # spectra get invariants-only treatment.
    well_conditioned = case.kind != "graded" and min(m, n) > 0

    results: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name in names:
        path = PATHS[name].get("path")
        try:
            with count_fallbacks() as counter:
                Q, R = caqr_qr(A, policy=case.policy(name))
        except CholeskyBreakdownError as exc:
            # Explicit cholqr paths contractually refuse input their
            # guard deems too ill-conditioned — an accepted refusal on
            # the adversarial kinds, a finding on Gaussian input.  The
            # adaptive path must never surface a breakdown.
            if name in _EXPLICIT_CHOLQR and case.kind != "gauss":
                continue
            divs.append(Divergence(case, name, "exception", f"{type(exc).__name__}: {exc}"))
            continue
        except Exception as exc:  # a crash on valid input is a finding
            divs.append(Divergence(case, name, "exception", f"{type(exc).__name__}: {exc}"))
            continue
        if path == "auto" and case.kind == "gauss" and counter.fallbacks:
            divs.append(
                Divergence(
                    case,
                    name,
                    "fallback",
                    f"auto fell back on a Gaussian matrix "
                    f"(stages={counter.stages!r}) — the guard is too tight",
                )
            )
        report = qr_invariants(A, Q, R)
        failures = report.failures()
        if failures:
            divs.append(Divergence(case, name, "invariants", "; ".join(failures)))
            continue
        results[name] = (Q, R)
        if well_conditioned:
            dq, dr = _factor_diff(Q, R, ref_Q, ref_R, scale)
            if dq > pair_tol or dr > pair_tol:
                divs.append(
                    Divergence(
                        case,
                        name,
                        "vs-numpy",
                        f"max|dQ|={dq:.3e} max|dR|/||A||={dr:.3e} > tol {pair_tol:.3e}",
                    )
                )
    # Independent reference: CGS2 ("twice is enough") through the same
    # guard-validated entry point, cross-checked on tall well-conditioned
    # Gaussian cases — a non-Householder, non-Cholesky orthogonalizer
    # that the BLAS3 paths must agree with.
    if case.kind == "gauss" and 0 < n <= m:
        try:
            Qg, Rg = cgs2(A)
        except Exception as exc:
            divs.append(Divergence(case, "cgs2", "exception", f"{type(exc).__name__}: {exc}"))
        else:
            failures = qr_invariants(A, Qg, Rg).failures()
            if failures:
                divs.append(Divergence(case, "cgs2", "invariants", "; ".join(failures)))
            else:
                dq, dr = _factor_diff(Qg, Rg, ref_Q, ref_R, scale)
                if dq > pair_tol or dr > pair_tol:
                    divs.append(
                        Divergence(
                            case,
                            "cgs2",
                            "vs-numpy",
                            f"max|dQ|={dq:.3e} max|dR|/||A||={dr:.3e} > tol {pair_tol:.3e}",
                        )
                    )
    # Pairwise: every surviving path against the first surviving one.
    if well_conditioned and len(results) > 1:
        base_name = next(iter(results))
        Qb, Rb = results[base_name]
        for name, (Q, R) in list(results.items())[1:]:
            dq, dr = _factor_diff(Q, R, Qb, Rb, scale)
            if dq > pair_tol or dr > pair_tol:
                divs.append(
                    Divergence(
                        case,
                        name,
                        "pairwise",
                        f"vs {base_name}: max|dQ|={dq:.3e} max|dR|/||A||={dr:.3e} "
                        f"> tol {pair_tol:.3e}",
                    )
                )
    return divs


# Core shape set: degenerate, square, wide, single-panel, multi-panel,
# non-multiple-of-block, panel wider than the matrix.
CORE_SHAPES: tuple[tuple[int, int], ...] = (
    (0, 5),
    (5, 0),
    (0, 0),
    (1, 1),
    (2, 2),
    (3, 7),
    (7, 3),
    (16, 16),
    (40, 8),
    (33, 7),
    (64, 16),
    (97, 13),
    (130, 20),
)

# (dtype, order, kind, panel_width, block_rows, tree_shape)
CORE_VARIANTS: tuple[tuple[str, str, str, int, int, str], ...] = (
    ("float64", "C", "gauss", 16, 64, "quad"),
    ("float32", "C", "gauss", 16, 64, "quad"),
    ("float64", "F", "graded", 4, 8, "binary"),
    # A float32 graded spectrum overwhelms the float32 Gram condition
    # limit: the explicit cholqr paths must refuse it and the auto path
    # must provably take the tree (the quick grid's guaranteed-fallback
    # coverage).
    ("float32", "C", "graded", 8, 16, "quad"),
    ("float64", "strided", "gauss", 5, 8, "flat"),
    ("float32", "F", "gauss", 8, 16, "binomial"),
    ("float32", "C", "huge", 4, 16, "quad"),
    ("float32", "C", "tiny", 4, 16, "binary"),
)

_RANDOM_AXES = {
    "dtype": ("float64", "float32"),
    "order": ("C", "F", "strided"),
    "kind": ("gauss", "graded", "huge", "tiny"),
    "panel_width": (3, 4, 5, 8, 16, 17),
    "block_rows": (4, 8, 16, 64),
    "tree_shape": ("quad", "binary", "binomial", "flat"),
}


def generate_cases(seed: int = 0, n_random: int = 60, quick: bool = False) -> list[FuzzCase]:
    """The deterministic core grid plus ``n_random`` sampled combinations.

    ``quick`` keeps the core grid only (the CI smoke: < 60 s).  Random
    cases draw every axis independently, with shapes biased toward small
    multi-panel sizes and a guaranteed tail of m < n cases.
    """
    cases = [
        FuzzCase(m, n, dtype=dt, order=order, kind=kind, panel_width=pw, block_rows=bh,
                 tree_shape=tree, seed=seed)
        for m, n in CORE_SHAPES
        for dt, order, kind, pw, bh, tree in CORE_VARIANTS
    ]
    if quick:
        return cases
    rng = np.random.default_rng(seed)
    for i in range(n_random):
        if i % 5 == 4:  # guaranteed wide-matrix coverage
            m = int(rng.integers(0, 12))
            n = int(rng.integers(m + 1, m + 20))
        else:
            m = int(rng.integers(1, 161))
            n = int(rng.integers(1, 25))
        cases.append(
            FuzzCase(
                m,
                n,
                dtype=str(rng.choice(_RANDOM_AXES["dtype"])),
                order=str(rng.choice(_RANDOM_AXES["order"])),
                kind=str(rng.choice(_RANDOM_AXES["kind"])),
                panel_width=int(rng.choice(_RANDOM_AXES["panel_width"])),
                block_rows=int(rng.choice(_RANDOM_AXES["block_rows"])),
                tree_shape=str(rng.choice(_RANDOM_AXES["tree_shape"])),
                seed=seed + 1 + i,
            )
        )
    return cases


def run_grid(
    seed: int = 0,
    quick: bool = False,
    n_random: int = 60,
    paths: list[str] | None = None,
    progress=None,
) -> FuzzReport:
    """Sweep the grid; cross-check every path; return the full report."""
    names = list(PATHS) if paths is None else list(paths)
    unknown = [p for p in names if p not in PATHS]
    if unknown:
        raise ValueError(f"unknown path(s) {unknown}; known: {list(PATHS)}")
    cases = generate_cases(seed=seed, n_random=n_random, quick=quick)
    divergences: list[Divergence] = []
    fingerprinted: set[tuple[int, int]] = set()
    with count_fallbacks() as sweep_counter:
        for i, case in enumerate(cases):
            divergences.extend(run_case(case, paths=names))
            shape = (case.m, case.n)
            if shape not in fingerprinted and case.m >= 1 and case.n >= 1:
                fingerprinted.add(shape)
                if launch_fingerprint(*shape) != launch_fingerprint(*shape):
                    divergences.append(
                        Divergence(
                            case,
                            "-",
                            "fingerprint",
                            f"launch fingerprint of {shape} unstable across enumerations",
                        )
                    )
            if progress is not None and (i + 1) % 25 == 0:
                progress(f"  {i + 1}/{len(cases)} cases, {len(divergences)} divergence(s)")
    # The adaptive path must *provably* fall back somewhere: a sweep that
    # includes adversarial kinds and the auto path but never took the
    # tree means the guard went soft (or the fallback counter broke).
    adversarial = [c for c in cases if c.kind != "gauss" and min(c.m, c.n) >= 2]
    if "auto" in names and adversarial and sweep_counter.fallbacks == 0:
        divergences.append(
            Divergence(
                adversarial[0],
                "auto",
                "fallback",
                f"{len(adversarial)} adversarial case(s) swept but the auto path "
                f"never fell back to the tree — the condition guard is inert",
            )
        )
    return FuzzReport(cases_run=len(cases), paths_run=len(names), divergences=divergences)
