"""Block-size autotuner — the Figure-7 sweep.

"After committing to a data layout, we can write scripts to test many
different block sizes and choose the best."  The autotuner evaluates the
steady-state ``apply_qt_h`` kernel rate (the workhorse kernel) for every
feasible block shape, reproducing the tradeoff of Section IV-F: wider
blocks raise arithmetic intensity and reduction parallelism, but past the
point where each thread owns a whole column the reflector broadcast
serializes and performance falls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import C2050, DeviceSpec
from repro.gpusim.launch import occupancy_blocks_per_sm
from repro.kernels.config import KernelConfig, REFERENCE_CONFIG
from repro.kernels.costs import apply_qt_h_launch
from repro.kernels.strategies import strategy_block_cost

from .search import BlockCandidate, candidate_blocks

__all__ = ["SweepEntry", "apply_qt_h_kernel_gflops", "sweep_block_sizes", "autotune"]


@dataclass(frozen=True)
class SweepEntry:
    """One measured point of the block-size sweep."""

    height: int
    width: int
    gflops: float


def apply_qt_h_kernel_gflops(
    height: int,
    width: int,
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> float:
    """Steady-state ``apply_qt_h`` rate for one block shape.

    Saturating conditions: enough thread blocks to fill every SM, launch
    overhead excluded (it is amortized in a long-running sweep, exactly
    like the paper's microbenchmark).
    """
    trial = cfg.with_(block_rows=height, panel_width=width, tile_width=width)
    # Resident-data core rate (the Section IV-E microbenchmark conditions),
    # derated by achievable occupancy: low resident-warp counts cannot
    # hide latency, which is what defeats very large blocks.
    cost = strategy_block_cost(trial.strategy, height, width, dev, threads=trial.threads)
    spec = apply_qt_h_launch(1, height, width, width, trial, dev)
    bps = occupancy_blocks_per_sm(spec, dev)
    issue_eff = min(1.0, spec.threads_per_block / 32.0 * bps / dev.min_warps_full_rate)
    compute_rate = dev.n_sm * dev.clock_hz * cost.flops / cost.cycles * issue_eff
    bytes_per_block = spec.read_bytes_per_block + spec.write_bytes_per_block
    mem_rate = cost.flops / bytes_per_block * dev.dram_bw_gbs * 1e9 * cost.bw_efficiency
    return min(compute_rate, mem_rate) / 1e9


def sweep_block_sizes(
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
    heights: tuple[int, ...] | None = None,
    widths: tuple[int, ...] | None = None,
) -> list[SweepEntry]:
    """Evaluate every feasible block shape (Figure 7's grid)."""
    kwargs = {}
    if heights is not None:
        kwargs["heights"] = heights
    if widths is not None:
        kwargs["widths"] = widths
    entries = [
        SweepEntry(c.height, c.width, apply_qt_h_kernel_gflops(c.height, c.width, cfg, dev))
        for c in candidate_blocks(cfg, dev, **kwargs)
    ]
    return sorted(entries, key=lambda e: -e.gflops)


def autotune(
    cfg: KernelConfig = REFERENCE_CONFIG,
    dev: DeviceSpec = C2050,
) -> tuple[KernelConfig, list[SweepEntry]]:
    """Pick the best block shape and return the tuned config + full sweep."""
    entries = sweep_block_sizes(cfg, dev)
    if not entries:
        raise RuntimeError("no feasible block candidates for this device/strategy")
    best = entries[0]
    tuned = cfg.with_(block_rows=best.height, panel_width=best.width, tile_width=None)
    return tuned, entries
