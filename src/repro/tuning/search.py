"""Block-size search space for the kernel autotuner (Section IV-F).

"Our block size is fundamentally limited by our shared memory size and/or
register file size": a candidate ``(height, width)`` is feasible when the
matrix fits the register file (register strategies) or shared memory
(shared-memory strategies) with at least one resident block, and the
thread block is within device limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.kernels.config import KernelConfig

__all__ = ["BlockCandidate", "candidate_blocks", "is_feasible"]

DEFAULT_HEIGHTS = (32, 64, 128, 192, 256, 384, 512, 768, 1024)
DEFAULT_WIDTHS = (4, 8, 16, 24, 32, 48, 64)


@dataclass(frozen=True)
class BlockCandidate:
    """One point of the Figure-7 sweep."""

    height: int
    width: int

    def config(self, base: KernelConfig) -> KernelConfig:
        return base.with_(block_rows=self.height, panel_width=self.width, tile_width=self.width)


def is_feasible(height: int, width: int, cfg: KernelConfig, dev: DeviceSpec) -> bool:
    """Resource check for one candidate under a strategy/device."""
    if height < width:
        return False  # R must fit within a block (TSQR invariant)
    trial = cfg.with_(block_rows=height, panel_width=width, tile_width=width)
    from repro.kernels.costs import apply_qt_h_launch

    spec = apply_qt_h_launch(1, height, width, width, trial, dev)
    if spec.smem_per_block_bytes > dev.smem_per_sm_bytes:
        return False
    if spec.regs_per_block_bytes > dev.regfile_per_sm_bytes:
        return False
    threads = height if cfg.strategy == "smem_parallel" else cfg.threads
    if threads > dev.max_threads_per_block:
        return False
    return True


def candidate_blocks(
    cfg: KernelConfig,
    dev: DeviceSpec,
    heights: tuple[int, ...] = DEFAULT_HEIGHTS,
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
) -> list[BlockCandidate]:
    """All feasible (height, width) candidates for the sweep."""
    return [
        BlockCandidate(h, w)
        for h in heights
        for w in widths
        if is_feasible(h, w, cfg, dev)
    ]
