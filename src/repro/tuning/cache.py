"""Persistence for autotuning results.

Tuning a device is deterministic here but expensive in a real system;
production autotuners cache the winning configuration per device.  The
cache stores the full sweep, keyed by ``(device name, strategy)``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .autotune import SweepEntry

__all__ = ["TuningCache"]


class TuningCache:
    """JSON-backed store of block-size sweeps.

    Writes are atomic (temp file + ``os.replace``), so a crash mid-write
    never leaves a half-written cache, and a corrupt or truncated file on
    disk — e.g. from an interrupted run of an older version — is treated
    as an empty cache rather than an error.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._data: dict[str, list[dict]] = {}
        if self.path is not None and self.path.exists():
            try:
                data = json.loads(self.path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                data = None
            if isinstance(data, dict):
                self._data = data

    @staticmethod
    def key(device_name: str, strategy: str) -> str:
        return f"{device_name}/{strategy}"

    def put(self, device_name: str, strategy: str, entries: list[SweepEntry]) -> None:
        self._data[self.key(device_name, strategy)] = [
            {"height": e.height, "width": e.width, "gflops": e.gflops} for e in entries
        ]
        if self.path is not None:
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(json.dumps(self._data, indent=1))
            os.replace(tmp, self.path)

    def get(self, device_name: str, strategy: str) -> list[SweepEntry] | None:
        raw = self._data.get(self.key(device_name, strategy))
        if raw is None:
            return None
        return [SweepEntry(d["height"], d["width"], d["gflops"]) for d in raw]

    def best(self, device_name: str, strategy: str) -> SweepEntry | None:
        entries = self.get(device_name, strategy)
        if not entries:
            return None
        return max(entries, key=lambda e: e.gflops)

    def __len__(self) -> int:
        return len(self._data)
