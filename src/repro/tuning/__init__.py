"""Kernel autotuning (Section IV-F / Figure 7)."""

from .autotune import SweepEntry, apply_qt_h_kernel_gflops, autotune, sweep_block_sizes
from .cache import TuningCache
from .search import BlockCandidate, candidate_blocks, is_feasible

__all__ = [
    "SweepEntry",
    "apply_qt_h_kernel_gflops",
    "autotune",
    "sweep_block_sizes",
    "TuningCache",
    "BlockCandidate",
    "candidate_blocks",
    "is_feasible",
]
