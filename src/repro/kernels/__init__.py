"""GPU kernels of Section IV: real math + analytic launch costs.

One module per kernel (``factor``, ``factor_tree``, ``apply_qt_h``,
``apply_qt_tree``) mirroring the paper's naming, plus the reduction-
strategy micro-models of Section IV-E, the block configuration, the
launch-cost builders, and the transposed-panel layout helpers.
"""

from .apply_qt_h import apply_qt_h_block
from .apply_qt_tree import apply_qt_tree_block
from .config import REFERENCE_CONFIG, KernelConfig
from .costs import (
    apply_qt_h_launch,
    apply_qt_tree_launch,
    factor_launch,
    factor_tree_launch,
    transpose_launch,
)
from .factor import factor_block
from .factor_tree import factor_tree_block
from .layouts import from_transposed_panel, panel_is_transposable, to_transposed_panel
from .simt import cyclic_layout, simt_apply_qt_h
from .simt_factor import simt_factor
from .strategies import (
    PAPER_STRATEGY_GFLOPS,
    STRATEGIES,
    BlockComputeCost,
    Strategy,
    strategy_block_cost,
    strategy_gflops,
)

__all__ = [
    "apply_qt_h_block",
    "apply_qt_tree_block",
    "REFERENCE_CONFIG",
    "KernelConfig",
    "apply_qt_h_launch",
    "apply_qt_tree_launch",
    "factor_launch",
    "factor_tree_launch",
    "transpose_launch",
    "factor_block",
    "factor_tree_block",
    "from_transposed_panel",
    "panel_is_transposable",
    "to_transposed_panel",
    "cyclic_layout",
    "simt_apply_qt_h",
    "simt_factor",
    "PAPER_STRATEGY_GFLOPS",
    "STRATEGIES",
    "BlockComputeCost",
    "Strategy",
    "strategy_block_cost",
    "strategy_gflops",
]
