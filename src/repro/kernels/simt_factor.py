"""The ``factor`` kernel executed on the SIMT block machine.

Thread-level small-block Householder QR in the Figure-6 register layout:
for each column, the threads owning it serially reduce their squared
elements, combine through shared memory, form the reflector (scale in
registers, stage u to shared memory), and all threads apply the
matvec + rank-1 update to their trailing columns.  Together with
:func:`repro.kernels.simt.simt_apply_qt_h` this covers all four Section
IV-D kernels at thread level — ``factor_tree`` is this kernel on a stack
of triangles, ``apply_qt_tree`` is the apply kernel on gathered pieces.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.block_machine import BlockCounters, BlockMachine

from .simt import cyclic_layout

__all__ = ["simt_factor"]


def simt_factor(
    block: np.ndarray,
    threads: int = 64,
) -> tuple[np.ndarray, np.ndarray, BlockCounters]:
    """Factor one small block thread-level; returns ``(VR, tau, counters)``.

    Matches :func:`repro.core.householder.geqr2`'s packed output exactly
    (same reflector conventions), while measuring the shared-memory
    traffic and flops the real kernel would generate.
    """
    block = np.asarray(block, dtype=float)
    if block.ndim != 2 or block.size == 0:
        raise ValueError("factor expects a non-empty 2-D block")
    mb, nb = block.shape
    rows, cols, owned = cyclic_layout(mb, nb, threads)
    tpc = threads // nb

    # Shared memory: [0:mb) u | [mb:mb+threads) partials | [+nb) w | [+4) scalars
    machine = BlockMachine(threads=threads, smem_words=mb + threads + nb + 4)
    smem = machine.smem
    u_base, part_base, w_base, scal_base = 0, mb, mb + threads, mb + threads + nb

    regs = machine.alloc_registers(owned)
    regs[:] = block[rows, cols[:, None]]
    tau_out = np.zeros(min(mb, nb))
    k = min(mb, nb)

    for j in range(k):
        col_owners = np.nonzero(cols == j)[0]
        # --- Householder generation (reduce, sqrt, broadcast, scale) ----
        # Partial sums of squares over rows >= j, per owning thread.
        partial = np.zeros(col_owners.size)
        alpha = 0.0
        for k_el in range(owned):
            r = rows[col_owners, k_el]
            vals = regs[col_owners, k_el]
            mask = r > j
            partial += np.where(mask, vals * vals, 0.0)
            machine.fma(col_owners.size)
            at = r == j
            if at.any():
                alpha = float(vals[at][0])
        smem.write(part_base + col_owners, partial)
        machine.syncthreads()
        sigma = float(smem.read(part_base + col_owners).sum())
        machine.flop(tpc)
        # Scalar phase (one lane): beta, tau, 1/v0.
        if sigma == 0.0:
            tau, beta, inv_v0 = 0.0, alpha, 0.0
        else:
            norm_x = math.sqrt(alpha * alpha + sigma)
            beta = -math.copysign(norm_x, alpha)
            tau = (beta - alpha) / beta
            inv_v0 = 1.0 / (alpha - beta)
        machine.flop(8)
        smem.write(np.array([scal_base, scal_base + 1]), np.array([tau, beta]))
        machine.syncthreads()
        tau_out[j] = tau

        # Scale the column into reflector form and stage u to shared memory.
        u_full = np.zeros(mb)
        u_full[j] = 1.0
        for k_el in range(owned):
            r = rows[col_owners, k_el]
            sel = r > j
            if tau != 0.0:
                regs[col_owners[sel], k_el] *= inv_v0
                machine.fma(int(sel.sum()))
            at = r == j
            if at.any():
                regs[col_owners[at], k_el] = beta
            u_full[r[sel]] = regs[col_owners[sel], k_el]
        smem.load_bulk(u_full, offset=u_base)
        machine.syncthreads()
        if tau == 0.0 or j + 1 >= nb:
            continue

        # --- Trailing update: matvec + rank-1, columns > j ---------------
        trail = np.nonzero(cols > j)[0]
        partial = np.zeros(threads)
        for k_el in range(owned):
            u_k = smem.read(u_base + rows[:, k_el])
            active = (cols > j) & (rows[:, k_el] >= j)
            partial += np.where(active, regs[:, k_el] * u_k, 0.0)
            machine.fma(int(active.sum()))
        smem.write(part_base + np.arange(threads), partial)
        machine.syncthreads()
        w_full = np.zeros(nb)
        for c in range(j + 1, nb):
            owners = np.nonzero(cols == c)[0]
            w_full[c] = tau * float(smem.read(part_base + owners).sum())
            machine.flop(tpc + 1)
        smem.write(w_base + np.arange(j + 1, nb), w_full[j + 1 :])
        machine.syncthreads()
        w_t = smem.read(w_base + cols)
        for k_el in range(owned):
            u_k = smem.read(u_base + rows[:, k_el])
            active = (cols > j) & (rows[:, k_el] >= j)
            regs[:, k_el] = np.where(active, regs[:, k_el] - u_k * w_t, regs[:, k_el])
            machine.fma(int(active.sum()))
        machine.syncthreads()

    VR = np.empty_like(block)
    VR[rows, cols[:, None]] = regs
    return VR, tau_out, machine.counters
