"""``apply_qt_h`` executed on the SIMT block machine.

A faithful thread-level implementation of the paper's best strategy
(register-file serial reductions, Section IV-E.3/4, Figure 6): the
trailing tile lives in the register file, distributed cyclically so each
thread's elements belong to a single column; the Householder vectors are
staged in shared memory; each reflector is applied as a per-thread serial
reduction, a cross-thread partial-sum reduction through shared memory,
and a register-resident rank-1 update.

Running this against :func:`repro.core.householder.orm2r` validates the
kernel's *algorithm*; its measured :class:`~repro.gpusim.block_machine.BlockCounters`
validate the analytic cost model's flop and shared-memory predictions.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.block_machine import BlockCounters, BlockMachine

__all__ = ["simt_apply_qt_h", "cyclic_layout"]


def cyclic_layout(mb: int, tw: int, threads: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Figure-6 layout: thread -> (rows, column) ownership map.

    Threads are grouped ``tpc = threads // tw`` per column; thread ``t``
    owns the rows ``r`` of column ``t // tpc`` with ``r % tpc == t % tpc``
    (dealt cyclically).  Requires ``threads`` to be a multiple of ``tw``
    and ``mb`` a multiple of ``tpc``, which the tuned configurations
    satisfy (e.g. 128 x 16 with 64 threads: tpc = 4, 32 elements/thread).

    Returns ``(rows, cols, owned)`` where ``rows`` is ``(threads, owned)``
    and ``cols`` is ``(threads,)``.
    """
    if threads % tw != 0:
        raise ValueError(f"threads ({threads}) must be a multiple of the tile width ({tw})")
    tpc = threads // tw
    if mb % tpc != 0:
        raise ValueError(f"block height ({mb}) must be a multiple of threads-per-column ({tpc})")
    owned = mb // tpc
    t = np.arange(threads)
    cols = t // tpc
    lane_in_col = t % tpc
    rows = lane_in_col[:, None] + tpc * np.arange(owned)[None, :]
    return rows, cols, owned


def simt_apply_qt_h(
    V_panel: np.ndarray,
    tau: np.ndarray,
    tile: np.ndarray,
    threads: int = 64,
) -> tuple[np.ndarray, BlockCounters]:
    """Apply ``Q^T`` (packed reflectors) to one tile, thread-level.

    Args:
        V_panel: packed ``mb x nb`` factor block (``geqr2`` layout).
        tau: the ``nb`` reflector coefficients.
        tile: the ``mb x tw`` trailing tile to update.
        threads: thread-block size (the paper uses 64).

    Returns:
        ``(updated_tile, counters)`` — the numerical result plus the
        dynamically measured work/traffic counters.
    """
    V_panel = np.asarray(V_panel, dtype=float)
    tile = np.asarray(tile, dtype=float)
    mb, nb = V_panel.shape
    if tile.shape[0] != mb:
        raise ValueError("tile rows must match the factor block")
    tw = tile.shape[1]
    rows, cols, owned = cyclic_layout(mb, tw, threads)

    # Shared memory map: [0:mb)                u (current reflector)
    #                    [mb:mb+threads)       per-thread partial sums
    #                    [mb+threads: +tw)     reduced w values
    machine = BlockMachine(threads=threads, smem_words=mb + threads + tw)
    smem = machine.smem
    u_base, part_base, w_base = 0, mb, mb + threads

    # Registers: each thread holds its ``owned`` tile elements (the
    # "store the matrix entirely in the register file" of IV-E.3).
    regs = machine.alloc_registers(owned)
    regs[:] = tile[rows, cols[:, None]]

    for j in range(nb):
        if tau[j] == 0.0:
            continue
        # Stage reflector j into shared memory (cooperative load).
        u = np.empty(mb)
        u[:j] = 0.0
        u[j] = 1.0
        u[j + 1 :] = V_panel[j + 1 :, j]
        smem.load_bulk(u, offset=u_base)
        machine.syncthreads()

        # Phase 1: per-thread serial reduction over owned elements,
        # reading u from shared memory step by step (register FMAs).
        partial = np.zeros(threads)
        for k in range(owned):
            u_k = smem.read(u_base + rows[:, k])
            partial += regs[:, k] * u_k
            machine.fma(threads)
        smem.write(part_base + np.arange(threads), partial)
        machine.syncthreads()

        # Phase 2: tpc-way cross-thread reduction per column (the first
        # thread of each column accumulates its group's partials).
        tpc = threads // tw
        leaders = np.arange(tw) * tpc
        acc = np.zeros(tw)
        for g in range(tpc):
            acc += smem.read(part_base + leaders + g)
            if g > 0:
                machine.flop(tw)
        # w = tau_j * (tile^T u); scale once at write time.
        smem.write(w_base + np.arange(tw), float(tau[j]) * acc)
        machine.flop(tw)
        machine.syncthreads()

        # Phase 3: rank-1 update in registers; w broadcast per column.
        w_t = smem.read(w_base + cols)
        for k in range(owned):
            u_k = smem.read(u_base + rows[:, k])
            regs[:, k] -= u_k * w_t
            machine.fma(threads)
        machine.syncthreads()

    out = np.empty_like(tile)
    out[rows, cols[:, None]] = regs
    return out, machine.counters
