"""The ``factor`` kernel (Section IV-D.1): small QR of one block.

"Perform a QR decomposition of a small block in fast memory using
customized BLAS2 routines.  Overwrite the Householder vectors and upper
triangular R on top of the original small input matrix."
"""

from __future__ import annotations

import numpy as np

from repro.core.householder import geqr2

__all__ = ["factor_block"]


def factor_block(block: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Factor one small block; returns ``(VR_packed, tau, R)``.

    ``VR_packed`` overwrites the block in place of the input (Householder
    vectors below the diagonal, R above), exactly the layout the GPU
    kernel leaves in global memory.
    """
    block = np.asarray(block, dtype=float)
    if block.ndim != 2 or block.size == 0:
        raise ValueError("factor_block expects a non-empty 2-D block")
    VR, tau = geqr2(block)
    r_rows = min(block.shape)
    R = np.triu(VR[:r_rows, :])
    return VR, tau, R
