"""Analytic launch costs for the four CAQR kernels (Section IV-D).

Each builder returns a :class:`~repro.gpusim.launch.LaunchSpec` describing
one kernel launch: thread-block count, per-block compute cycles from the
strategy micro-model, and per-block DRAM traffic.  Dense linear algebra is
deterministic, so these costs are exact functions of the shapes — the
executed path (real NumPy math) and the simulate-only path (shape
arithmetic for matrices too large to materialize) share them, which is
what keeps the two paths' timelines identical.
"""

from __future__ import annotations

from functools import lru_cache

from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import LaunchSpec

from repro.core.structured import structured_tree_flops

from .config import KernelConfig
from .strategies import strategy_block_cost

__all__ = [
    "factor_launch",
    "factor_tree_launch",
    "apply_qt_h_launch",
    "apply_qt_tree_launch",
    "apply_qt_h_split_launches",
    "apply_qt_tree_split_launches",
    "transpose_launch",
    "factor_block_cycles",
    "scale_launch",
    "gram_launch",
    "chol_launch",
    "trsm_launch",
]

_F32 = 4.0  # bytes per single-precision element


def _factor_footprints(mb: int, nb: int, cfg: KernelConfig) -> tuple[int, int]:
    """(smem, regs) bytes per factor-style block.

    Register strategies hold the block in the register file; shared-memory
    strategies hold it in shared memory.  Either way the reflector column,
    tau and the cross-thread partial sums live in shared memory.
    """
    extras = int(_F32 * (mb + nb + 2 * cfg.threads))
    if cfg.strategy == "smem_serial":
        return int(_F32 * mb * nb) + extras, 32 * cfg.threads
    return extras, int(_F32 * mb * nb) + 32 * cfg.threads


def _apply_footprints(mb: int, nb: int, tile_w: int, cfg: KernelConfig) -> tuple[int, int]:
    """(smem, regs) bytes per apply-style block.

    The trailing tile occupies the register file (or shared memory for
    the smem strategy); the panel's Householder vectors (``mb x nb``) are
    staged in shared memory so every thread can read them.
    """
    v_bytes = int(_F32 * mb * nb)
    extras = int(_F32 * (mb + 2 * cfg.threads))
    if cfg.strategy == "smem_serial":
        return int(_F32 * mb * tile_w) + v_bytes + extras, 32 * cfg.threads
    return v_bytes + extras, int(_F32 * mb * tile_w) + 32 * cfg.threads


def _apply_kernel_cycles(
    mb: int, nb: int, tile_w: int, cfg: KernelConfig, dev: DeviceSpec
) -> tuple[float, float, float]:
    """(cycles, smem, bw_eff) for an apply-style kernel block.

    On top of the resident-data strategy cost (the Section IV-E
    microbenchmark), an actual kernel block pays:

    * a dependency stall per reflector — the rank-1 update cannot start
      until the matvec reduction completes and ``w`` is broadcast, and a
      64-thread block is only 2 warps, far too few to hide that latency;
    * a load/store prologue — issuing the global loads of the tile and
      the Householder vectors, and the final store.

    These are why the whole CAQR runs below the 388 GFLOPS of the
    microbenchmark even when ``apply_qt_h`` dominates.
    """
    cost = strategy_block_cost(
        cfg.strategy, mb, nb, dev, threads=cfg.threads, n_vectors=nb, trailing_width=tile_w
    )
    stalls = nb * 2.0 * dev.phase_latency_cycles
    prologue = (2.0 * mb * tile_w + mb * nb) / 32.0 * dev.gmem_issue_cycles
    return cost.cycles + stalls + prologue, cost.smem_transactions, cost.bw_efficiency


@lru_cache(maxsize=4096)
def factor_block_cycles(mb: int, nb: int, cfg: KernelConfig, dev: DeviceSpec) -> tuple[float, float]:
    """(cycles, smem transactions) for one ``factor`` block (a small QR).

    ``geqr2`` in fast memory: for each of the ``nb`` columns, build the
    Householder vector (a norm reduction plus a scale — modeled as one
    width-1 matvec pass plus a fixed sqrt/divide latency) and apply it to
    the shrinking trailing width.  The sequential column dependency is why
    ``factor`` runs below ``apply_qt_h`` throughput even with the same
    inner loops.
    """
    cycles = 0.0
    smem = 0.0
    house_latency = 40.0  # sqrt + reciprocal + scale of the column
    for j in range(nb):
        w = nb - j - 1
        # Householder generation: norm reduction over column j, then the
        # column scale — a fully serialized chain (reduce, sqrt, broadcast,
        # scale), so it pays four phase latencies.
        gen = strategy_block_cost(
            cfg.strategy, mb, nb, dev, threads=cfg.threads, n_vectors=1, trailing_width=1
        )
        cycles += gen.cycles / 2.0 + house_latency + 4.0 * dev.phase_latency_cycles
        smem += gen.smem_transactions / 2.0
        if w > 0:
            upd = strategy_block_cost(
                cfg.strategy, mb, nb, dev, threads=cfg.threads, n_vectors=1, trailing_width=w
            )
            # The trailing update chains matvec -> broadcast -> rank-1 and
            # the next column depends on its completion: three more phases.
            cycles += upd.cycles + 3.0 * dev.phase_latency_cycles
            smem += upd.smem_transactions
    # Load/store prologue for the whole block.
    cycles += 2.0 * mb * nb / 32.0 * dev.gmem_issue_cycles
    return cycles, smem


def factor_launch(
    n_blocks: int,
    mb: int,
    nb: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Level-0 TSQR factorization: one small QR per thread block."""
    cycles, smem = factor_block_cycles(mb, nb, cfg, dev)
    cost = strategy_block_cost(cfg.strategy, mb, nb, dev, threads=cfg.threads)
    return LaunchSpec(
        kernel="factor",
        n_blocks=n_blocks,
        threads_per_block=cost.threads,
        cycles_per_block=cycles,
        flops_per_block=2.0 * mb * nb * nb - 2.0 * nb**3 / 3.0,
        read_bytes_per_block=mb * nb * _F32,
        write_bytes_per_block=mb * nb * _F32 + nb * _F32,  # packed VR + tau
        smem_per_block_bytes=_factor_footprints(mb, nb, cfg)[0],
        regs_per_block_bytes=_factor_footprints(mb, nb, cfg)[1],
        smem_transactions_per_block=smem,
        bw_efficiency=cost.bw_efficiency,
        tag=tag,
    )


def factor_tree_launch(
    n_groups: int,
    arity: int,
    nb: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Tree-level elimination: QR of ``arity`` stacked R triangles per block.

    The stacked Rs are gathered from the tops of distributed blocks
    ("gather a stack of upper triangular Rs ... and store them in fast
    memory", Section IV-D.2), so traffic pays the gather efficiency.
    """
    mb = arity * nb
    cycles, smem = factor_block_cycles(mb, nb, cfg, dev)
    cost = strategy_block_cost(cfg.strategy, mb, nb, dev, threads=cfg.threads)
    flops = 2.0 * mb * nb * nb - 2.0 * nb**3 / 3.0
    if cfg.structured_tree:
        # Sparsity-exploiting elimination (Figure 2(c)): both arithmetic
        # and issue cycles shrink with the reflector support; the
        # per-column latency chain does not.
        s_flops = structured_tree_flops(arity, nb)
        work_cycles = cycles - nb * 7.0 * dev.phase_latency_cycles
        cycles = work_cycles * (s_flops / flops) + nb * 7.0 * dev.phase_latency_cycles
        smem *= s_flops / flops
        flops = s_flops
    tri_bytes = arity * (nb * (nb + 1) / 2.0) * _F32  # upper triangles only
    return LaunchSpec(
        kernel="factor_tree",
        n_blocks=n_groups,
        threads_per_block=cost.threads,
        cycles_per_block=cycles,
        flops_per_block=flops,
        read_bytes_per_block=tri_bytes,
        write_bytes_per_block=tri_bytes + nb * _F32,
        smem_per_block_bytes=_factor_footprints(mb, nb, cfg)[0],
        regs_per_block_bytes=_factor_footprints(mb, nb, cfg)[1],
        smem_transactions_per_block=smem,
        bw_efficiency=dev.gather_bw_eff,
        tag=tag,
    )


def apply_qt_h_launch(
    n_blocks: int,
    mb: int,
    nb: int,
    tile_w: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Horizontal trailing update: apply a panel block's Q^T to one tile.

    Each thread block reads one ``mb x tile_w`` trailing tile plus the
    ``mb x nb`` Householder vectors, applies all ``nb`` reflectors, and
    writes the tile back (Section IV-D.3).
    """
    cost = strategy_block_cost(
        cfg.strategy, mb, nb, dev, threads=cfg.threads, n_vectors=nb, trailing_width=tile_w
    )
    cycles, smem, bw_eff = _apply_kernel_cycles(mb, nb, tile_w, cfg, dev)
    return LaunchSpec(
        kernel="apply_qt_h",
        n_blocks=n_blocks,
        threads_per_block=cost.threads,
        cycles_per_block=cycles,
        flops_per_block=cost.flops,
        read_bytes_per_block=(mb * tile_w + mb * nb) * _F32,
        write_bytes_per_block=mb * tile_w * _F32,
        smem_per_block_bytes=_apply_footprints(mb, nb, tile_w, cfg)[0],
        regs_per_block_bytes=_apply_footprints(mb, nb, tile_w, cfg)[1],
        smem_transactions_per_block=smem,
        bw_efficiency=bw_eff,
        tag=tag,
    )


def apply_qt_tree_launch(
    n_blocks: int,
    arity: int,
    nb: int,
    tile_w: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Tree trailing update: apply a tree factor to gathered row pieces.

    "Collect the distributed components of the trailing matrix to be
    updated as well as the distributed Householder vectors ... and write
    back to the same distributed locations" (Section IV-D.4) — the
    irregular access pays the gather efficiency on top of the same
    compute core.
    """
    mb = arity * nb
    cost = strategy_block_cost(
        cfg.strategy, mb, nb, dev, threads=cfg.threads, n_vectors=nb, trailing_width=tile_w
    )
    cycles, smem, bw_eff = _apply_kernel_cycles(mb, nb, tile_w, cfg, dev)
    flops = cost.flops
    if cfg.structured_tree:
        # Sparse reflectors touch ~half the stacked rows on average.
        support = sum(1 + (arity - 1) * min(j + 1, nb) for j in range(nb)) / (nb * mb)
        cycles *= support
        smem *= support
        flops *= support
    # Gathering/scattering ``arity`` distributed row pieces adds one
    # unhidden memory-latency phase per piece.
    cycles += 2.0 * arity * dev.phase_latency_cycles
    v_bytes = arity * (nb * (nb + 1) / 2.0) * _F32
    return LaunchSpec(
        kernel="apply_qt_tree",
        n_blocks=n_blocks,
        threads_per_block=cost.threads,
        cycles_per_block=cycles,
        flops_per_block=flops,
        read_bytes_per_block=(mb * tile_w) * _F32 + v_bytes,
        write_bytes_per_block=mb * tile_w * _F32,
        smem_per_block_bytes=_apply_footprints(mb, nb, tile_w, cfg)[0],
        regs_per_block_bytes=_apply_footprints(mb, nb, tile_w, cfg)[1],
        smem_transactions_per_block=smem,
        bw_efficiency=min(dev.gather_bw_eff, bw_eff),
        tag=tag,
    )


def apply_qt_h_split_launches(
    n_row_blocks: int,
    mb: int,
    nb: int,
    tile_w: int,
    tiles: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> tuple[LaunchSpec, LaunchSpec | None]:
    """Split one horizontal trailing update into (first-tile, rest) launches.

    The serial enumeration issues a single ``apply_qt_h`` over all
    ``tiles`` trailing tiles.  For the dependency graph the *first* tile
    is special: it covers the next panel's columns, so the look-ahead
    edge only needs that slice to finish before ``factor(k+1)`` can
    start.  Splitting the launch in two keeps the per-block cost model
    identical (same block shape, same cycles/bytes per block) while
    exposing the edge; the total block count is preserved, so merging the
    pair reproduces the serial launch exactly.
    """
    first = apply_qt_h_launch(n_row_blocks, mb, nb, tile_w, cfg, dev, tag=f"{tag}/t0")
    if tiles <= 1:
        return first, None
    rest = apply_qt_h_launch(
        n_row_blocks * (tiles - 1), mb, nb, tile_w, cfg, dev, tag=f"{tag}/rest"
    )
    return first, rest


def apply_qt_tree_split_launches(
    n_groups: int,
    arity: int,
    nb: int,
    tile_w: int,
    tiles: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> tuple[LaunchSpec, LaunchSpec | None]:
    """Split one tree-level trailing update into (first-tile, rest) launches.

    Same contract as :func:`apply_qt_h_split_launches`, for the
    ``apply_qt_tree`` kernel.
    """
    first = apply_qt_tree_launch(n_groups, arity, nb, tile_w, cfg, dev, tag=f"{tag}/t0")
    if tiles <= 1:
        return first, None
    rest = apply_qt_tree_launch(
        n_groups * (tiles - 1), arity, nb, tile_w, cfg, dev, tag=f"{tag}/rest"
    )
    return first, rest


def transpose_launch(
    rows: int,
    cols: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Out-of-place panel transpose preprocessing (Section IV-E.4).

    A bandwidth-bound pass: read the column-major panel, write it back
    row-major.  Done once per panel and amortized over the many kernel
    invocations that then enjoy coalesced access.
    """
    elems = rows * cols
    n_blocks = max(1, -(-elems // cfg.elements_per_block))
    per_block = elems / n_blocks
    return LaunchSpec(
        kernel="transpose",
        n_blocks=n_blocks,
        threads_per_block=cfg.threads,
        cycles_per_block=2.0 * per_block / 32.0 * dev.smem_cycles,
        flops_per_block=0.0,
        read_bytes_per_block=per_block * _F32,
        write_bytes_per_block=per_block * _F32,
        smem_per_block_bytes=cfg.smem_footprint_bytes(),
        smem_transactions_per_block=2.0 * per_block / 32.0,
        bw_efficiency=0.8,  # transpose writes are partially uncoalesced
        tag=tag,
    )


# -- CholeskyQR2 fast-path kernels (launch-count-avoiding BLAS3) -----------
#
# The cheap path replaces the whole panel/tree launch stream with O(1)
# GEMM-class kernels: a column-equilibration pass, two Gram (syrk)
# accumulations, two single-block Cholesky factorizations and two big
# triangular multiplies/solves.  The BLAS3 kernels are modeled at the
# device's best SGEMM rate (``dev.gemm_peak_gflops`` — Volkov-style
# register blocking, not the 64-thread strategy micro-model, which
# describes latency-bound panel kernels).


def _gemm_cycles_per_block(flops_per_block: float, dev: DeviceSpec) -> float:
    """SM cycles for a GEMM-class block running at the SGEMM peak."""
    derate = dev.peak_gflops / dev.gemm_peak_gflops
    return flops_per_block / dev.flops_per_cycle_per_sm * derate


def scale_launch(
    m: int,
    n: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Column equilibration: norm reduction + scaled copy ``W = A/s``.

    Bandwidth-bound — reads A twice (reduce, then divide) and writes W
    once; the flop count is negligible next to the traffic.
    """
    elems = m * n
    n_blocks = max(1, -(-elems // cfg.elements_per_block))
    per_block = elems / max(1, n_blocks)
    return LaunchSpec(
        kernel="cholqr_scale",
        n_blocks=n_blocks,
        threads_per_block=cfg.threads,
        cycles_per_block=3.0 * per_block / 32.0 * dev.smem_cycles,
        flops_per_block=2.0 * per_block,
        read_bytes_per_block=2.0 * per_block * _F32,
        write_bytes_per_block=per_block * _F32,
        smem_per_block_bytes=cfg.smem_footprint_bytes(),
        smem_transactions_per_block=3.0 * per_block / 32.0,
        bw_efficiency=1.0,  # column-major streaming is fully coalesced
        tag=tag,
    )


def gram_launch(
    m: int,
    n: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Gram accumulation ``G = W^T W`` (syrk): one block per row slab.

    Each block multiplies a ``slab x n`` strip into a private ``n x n``
    partial accumulator (reduced by the tail block); compute runs at the
    SGEMM rate since the strip is register-blocked like a GEMM.
    """
    slab = max(cfg.block_rows, n)
    n_blocks = max(1, -(-m // slab))
    rows = m / n_blocks
    flops = rows * n * n  # syrk: half the GEMM products, 2x flops/product
    return LaunchSpec(
        kernel="gram",
        n_blocks=n_blocks,
        threads_per_block=cfg.threads,
        cycles_per_block=_gemm_cycles_per_block(flops, dev),
        flops_per_block=flops,
        read_bytes_per_block=rows * n * _F32,
        write_bytes_per_block=n * n * _F32,  # partial accumulator flush
        smem_per_block_bytes=cfg.smem_footprint_bytes(),
        smem_transactions_per_block=rows * n / 32.0,
        bw_efficiency=1.0,
        tag=tag,
    )


def chol_launch(
    n: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Single-block Cholesky of the ``n x n`` Gram matrix.

    A fully serialized pivot chain (like the ``factor`` column loop):
    each of the ``n`` pivots pays a sqrt/divide latency plus dependent
    phase boundaries before its rank-1 trailing update.
    """
    pivot_latency = 40.0  # sqrt + reciprocal, same constant as factor
    chain = n * (pivot_latency + 4.0 * dev.phase_latency_cycles)
    flops = n**3 / 3.0
    return LaunchSpec(
        kernel="chol",
        n_blocks=1,
        threads_per_block=cfg.threads,
        cycles_per_block=chain + flops / dev.flops_per_cycle_per_sm * dev.issue_overhead,
        flops_per_block=flops,
        read_bytes_per_block=n * n * _F32,
        write_bytes_per_block=n * n * _F32 / 2.0,  # the triangular factor
        smem_per_block_bytes=min(int(_F32 * n * n), dev.smem_per_sm_bytes),
        smem_transactions_per_block=n * n / 32.0,
        bw_efficiency=1.0,
        tag=tag,
    )


def trsm_launch(
    m: int,
    n: int,
    cfg: KernelConfig,
    dev: DeviceSpec,
    tag: str = "",
) -> LaunchSpec:
    """Right triangular solve/multiply ``W <- W R^{-1}`` over row slabs.

    Row blocks are independent (the triangular factor is shared), so the
    kernel is GEMM-class: every block stages the ``n x n`` triangle and
    streams its slab through it.
    """
    slab = max(cfg.block_rows, n)
    n_blocks = max(1, -(-m // slab))
    rows = m / n_blocks
    flops = rows * n * n  # m n^2 over the whole matrix
    return LaunchSpec(
        kernel="trsm",
        n_blocks=n_blocks,
        threads_per_block=cfg.threads,
        cycles_per_block=_gemm_cycles_per_block(flops, dev),
        flops_per_block=flops,
        read_bytes_per_block=rows * n * _F32 + n * n * _F32 / 2.0,
        write_bytes_per_block=rows * n * _F32,
        smem_per_block_bytes=cfg.smem_footprint_bytes(),
        smem_transactions_per_block=2.0 * rows * n / 32.0,
        bw_efficiency=1.0,
        tag=tag,
    )
