"""The ``apply_qt_h`` kernel (Section IV-D.3): horizontal trailing update.

"Apply Q^T from the Householder vectors generated in ``factor``
horizontally to small blocks across the trailing matrix.  Write back the
updated trailing matrix blocks to the locations from which they were
read."  This kernel is the performance pivot of the whole paper — the
matvec + rank-1 core that the Section IV-E strategies optimize from 55 to
388 GFLOPS.
"""

from __future__ import annotations

import numpy as np

from repro.core.householder import orm2r

__all__ = ["apply_qt_h_block"]


def apply_qt_h_block(VR: np.ndarray, tau: np.ndarray, tile: np.ndarray) -> np.ndarray:
    """Apply ``Q^T`` of one factored block to one trailing tile, in place.

    ``tile`` must share its row range with ``VR`` (same block of the
    panel's row partition).
    """
    if tile.shape[0] != VR.shape[0]:
        raise ValueError(
            f"tile rows ({tile.shape[0]}) must match the factored block rows ({VR.shape[0]})"
        )
    return orm2r(VR, tau, tile, transpose=True)
