"""Cycle-level micro-models of the four reduction strategies (Section IV-E).

Every CAQR kernel's inner loop is a matrix-vector product followed by a
rank-1 update (Figure 5), repeated once per Householder vector.  The paper
evaluates four ways of organizing that loop on a 128x16 block with 64
threads and reports:

1. shared-memory parallel reductions   —  55 GFLOPS
2. shared-memory serial reductions     — 168 GFLOPS
3. register-file serial reductions     — 194 GFLOPS
4. register file + transposed storage  — 388 GFLOPS

We model each strategy's per-Householder-vector cost in SM issue cycles
from its actual instruction structure (register FMA throughput, shared
memory transaction counts, synchronization barriers, idle lanes in
parallel reductions) using the calibrated micro-costs on the
:class:`~repro.gpusim.device.DeviceSpec`.  Strategies 3 and 4 differ only
in data layout: without the transposed panels, global-memory accesses are
strided, so strategy 3 is modeled with the device's uncoalesced bandwidth
efficiency — that (not extra cycles) is what halves its throughput,
matching the paper's observation that the out-of-place transpose
preprocessing pays for itself because "these kernels are called many
times on the same block of the matrix".

The resulting GFLOPS land within the calibration bands asserted by the
tests (ordering exact, values within +-30% of the paper's).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec

__all__ = [
    "STRATEGIES",
    "Strategy",
    "strategy_block_cost",
    "strategy_gflops",
    "BlockComputeCost",
]

STRATEGIES = (
    "smem_parallel",
    "smem_serial",
    "regfile_serial",
    "regfile_transpose",
)

PAPER_STRATEGY_GFLOPS = {
    "smem_parallel": 55.0,
    "smem_serial": 168.0,
    "regfile_serial": 194.0,
    "regfile_transpose": 388.0,
}


@dataclass(frozen=True)
class Strategy:
    """Static description of one reduction strategy."""

    name: str
    storage: str  # "smem" | "regfile"
    reduction: str  # "parallel" | "serial"
    transposed_layout: bool


_STRATEGY_DEFS = {
    "smem_parallel": Strategy("smem_parallel", "regfile", "parallel", False),
    "smem_serial": Strategy("smem_serial", "smem", "serial", False),
    "regfile_serial": Strategy("regfile_serial", "regfile", "serial", False),
    "regfile_transpose": Strategy("regfile_transpose", "regfile", "serial", True),
}


@dataclass(frozen=True)
class BlockComputeCost:
    """Per-thread-block compute cost of applying ``n_vectors`` reflectors."""

    cycles: float  # SM issue cycles for the whole block
    smem_transactions: float
    flops: float  # useful flops
    bw_efficiency: float  # global-memory coalescing efficiency
    threads: int


def _ceil_warps(active_threads: float) -> float:
    """Issue slots consumed by ``active_threads`` lanes (warp granularity)."""
    return max(1.0, math.ceil(active_threads / 32.0))


def _per_vector_cycles(
    strategy: Strategy,
    mb: int,
    nb: int,
    threads: int,
    dev: DeviceSpec,
) -> tuple[float, float]:
    """(cycles, smem transactions) to apply ONE length-``mb`` reflector
    across an ``mb x nb`` block."""
    elem_groups = mb * nb / 32.0  # warp-transactions covering the block
    smem = 0.0

    if strategy.reduction == "parallel":
        # One row per thread (threads == mb); columns reduced one at a time
        # with log2(mb) shared-memory steps, most lanes idle (Section
        # IV-E.1: "many of the threads sit idle").
        t = mb
        work = 2.0 * nb * _ceil_warps(t)  # elementwise mult + rank-1 FMA
        reduce_cycles = 0.0
        steps = max(1, math.ceil(math.log2(max(t, 2))))
        for k in range(1, steps + 1):
            active = t / (2.0**k)
            reduce_cycles += _ceil_warps(active) * dev.smem_cycles + dev.sync_cycles
            smem += _ceil_warps(active)
        cycles = work + nb * reduce_cycles
        smem *= nb
        return dev.issue_overhead * cycles, smem

    if strategy.storage == "smem":
        # Matrix lives in shared memory: every matvec read and every rank-1
        # read-modify-write round-trips shared memory (3 transactions per
        # element), plus the broadcast of u and a small partial reduction.
        matvec = elem_groups * (dev.smem_cycles + 1.0)
        rank1 = elem_groups * (2.0 * dev.smem_cycles + 1.0)
        u_bcast = (mb / 32.0) * dev.smem_cycles
        partial = 2.0 * dev.sync_cycles + _ceil_warps(threads) * 2.0 * dev.smem_cycles
        # Transactions: matvec A read + u read, rank-1 A read + A write
        # (all through shared memory), plus partials and the w broadcast.
        warps = _ceil_warps(threads)
        smem = 4.0 * elem_groups + 2.0 * warps + warps + 1.0
        cycles = matvec + rank1 + u_bcast + partial
        return dev.issue_overhead * cycles, smem

    # Register-file serial reduction (strategies 3 and 4): the block is
    # distributed cyclically so each thread's elements share a column
    # (Figure 6); serial reductions run at register throughput and only the
    # per-thread partial sums touch shared memory.
    work = 2.0 * elem_groups  # matvec FMA + rank-1 FMA, both in registers
    owned = mb * nb / threads  # elements (and u reads) per thread
    threads_per_col = max(threads / max(nb, 1), 1.0)
    # u is read from shared memory once per owned element; when several
    # threads share a column the reads broadcast, when a thread owns more
    # than one column they serialize fully.
    u_penalty = 1.0 if threads_per_col >= 1.0 else 2.0
    # The broadcast is imperfect: a warp spans several columns, so reads
    # serialize partially (calibrated 1.3x).
    u_read = owned * dev.smem_cycles * 1.3 * u_penalty
    partial = 2.0 * dev.sync_cycles + _ceil_warps(threads) * 2.0 * dev.smem_cycles
    # Transaction accounting validated against the SIMT block machine
    # (tests/kernels/test_simt.py): u is read from shared memory in both
    # the matvec and the rank-1 phase (one warp transaction per owned
    # element per warp), plus the staged reflector, per-thread partials,
    # the cross-thread reduction and the w broadcast.
    warps = _ceil_warps(threads)
    smem = 2.0 * owned * warps + (mb / 32.0) + 2.0 * warps + max(threads_per_col, 1.0) + 1.0
    cycles = work + u_read + partial
    return dev.issue_overhead * cycles, smem


def strategy_block_cost(
    name: str,
    mb: int,
    nb: int,
    dev: DeviceSpec,
    threads: int = 64,
    n_vectors: int | None = None,
    trailing_width: int | None = None,
) -> BlockComputeCost:
    """Compute cost of applying ``n_vectors`` reflectors to one block.

    Args:
        name: one of :data:`STRATEGIES`.
        mb, nb: block height and width (reflector length is ``mb``).
        dev: device whose micro-costs to use.
        threads: threads per block (the paper uses 64).
        n_vectors: number of reflectors (default ``nb``).
        trailing_width: width of the updated block (default ``nb``) —
            lets the ``factor`` kernel model its shrinking trailing width.
    """
    if name not in _STRATEGY_DEFS:
        raise ValueError(f"unknown strategy {name!r}; choose from {STRATEGIES}")
    if mb < 1 or nb < 1:
        raise ValueError("block dimensions must be positive")
    strategy = _STRATEGY_DEFS[name]
    if strategy.reduction == "parallel":
        threads = mb  # one row per thread by construction
    n_vec = nb if n_vectors is None else n_vectors
    w = nb if trailing_width is None else trailing_width
    per_vec_cycles, per_vec_smem = _per_vector_cycles(strategy, mb, w, threads, dev)
    cycles = n_vec * per_vec_cycles
    smem = n_vec * per_vec_smem
    flops = 4.0 * mb * w * n_vec  # matvec (2 m w) + rank-1 (2 m w) per vector
    bw_eff = 1.0 if strategy.transposed_layout or strategy.storage == "smem" else dev.uncoalesced_bw_eff
    if strategy.reduction == "parallel":
        bw_eff = 1.0  # row-per-thread loads stream columns contiguously
    return BlockComputeCost(
        cycles=cycles,
        smem_transactions=smem,
        flops=flops,
        bw_efficiency=bw_eff,
        threads=threads,
    )


def strategy_gflops(
    name: str,
    mb: int = 128,
    nb: int = 16,
    dev: DeviceSpec | None = None,
    threads: int = 64,
) -> float:
    """Steady-state GFLOPS of the matvec + rank-1 core under a strategy.

    Assumes a fully-occupied GPU (many blocks) and the ``apply_qt_h``
    traffic pattern (read block, read reflectors, write block).  This is
    the number Section IV-E reports for each approach.
    """
    from repro.gpusim.device import C2050

    dev = dev or C2050
    cost = strategy_block_cost(name, mb, nb, dev, threads=threads)
    compute_rate = dev.n_sm * dev.clock_hz * cost.flops / cost.cycles  # flops/s
    bytes_per_block = 3.0 * mb * nb * 4.0  # read A, write A, read V
    mem_rate = cost.flops / bytes_per_block * dev.dram_bw_gbs * 1e9 * cost.bw_efficiency
    return min(compute_rate, mem_rate) / 1e9
