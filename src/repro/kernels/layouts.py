"""Panel data layouts and the transpose preprocessing step (Section IV-E.4).

The best-performing strategy stores each panel in *transposed* (row-major)
form so that the register-file serial reductions read global memory with
unit stride.  "This transpose can be done as a preprocessing step ...
Unfortunately this means that the factorization is done out of place, as
an in-place transpose is difficult for non-square matrices."

The simulator only needs the byte counts (costed in
:func:`repro.kernels.costs.transpose_launch`); these helpers provide the
functional equivalent for the executed path and tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_transposed_panel", "from_transposed_panel", "panel_is_transposable"]


def to_transposed_panel(panel: np.ndarray) -> np.ndarray:
    """Out-of-place conversion of a column-major panel to row-major storage.

    Returns a C-contiguous array holding ``panel.T`` — the layout the
    tuned kernels read.  A copy is always made (out-of-place by design).
    """
    panel = np.asarray(panel, dtype=float)
    if panel.ndim != 2:
        raise ValueError("panel must be 2-D")
    return np.ascontiguousarray(panel.T)


def from_transposed_panel(tpanel: np.ndarray) -> np.ndarray:
    """Invert :func:`to_transposed_panel`."""
    tpanel = np.asarray(tpanel, dtype=float)
    if tpanel.ndim != 2:
        raise ValueError("panel must be 2-D")
    return np.ascontiguousarray(tpanel.T)


def panel_is_transposable(rows: int, cols: int) -> bool:
    """In-place transpose is only easy for square panels; otherwise the
    factorization must run out of place (extra workspace)."""
    return rows == cols
