"""Kernel/grid configuration for the GPU CAQR (Section IV).

The reference configuration follows the paper: 128x16 blocks for the
update kernels (the Figure 7 tuning optimum), 64 threads per block, the
register-file + transposed-layout strategy, and a reduction tree whose
arity is ``block_rows / panel_width`` (64x16 blocks give the quad-tree of
Section IV-C; 128x16 gives arity 8).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["KernelConfig", "REFERENCE_CONFIG"]


@dataclass(frozen=True)
class KernelConfig:
    """Block-level configuration shared by all four kernels."""

    block_rows: int = 128  # level-0 block height (mb)
    panel_width: int = 16  # panel / block width (nb)
    threads: int = 64
    strategy: str = "regfile_transpose"
    transpose_preprocess: bool = True  # out-of-place panel transpose (IV-E.4)
    tile_width: int | None = None  # trailing tile width (default panel_width)
    structured_tree: bool = False  # sparsity-exploiting tree elimination

    def __post_init__(self) -> None:
        if self.block_rows < 1 or self.panel_width < 1:
            raise ValueError("block dimensions must be positive")
        if self.block_rows < self.panel_width:
            raise ValueError("block_rows must be >= panel_width (R must fit in a block)")
        if self.threads < 1:
            raise ValueError("threads must be positive")

    @property
    def tree_arity(self) -> int:
        """Rs stacked per tree block: ``block_rows // panel_width`` >= 2.

        'If the block size is 64x16 ... we can fit 64/16 = 4 of them in
        each 64x16 block ... the reduction is a quad-tree' (Section IV-C).
        """
        return max(2, self.block_rows // self.panel_width)

    @property
    def trailing_tile_width(self) -> int:
        return self.tile_width if self.tile_width is not None else self.panel_width

    @property
    def tree_shape(self) -> str:
        return f"arity:{self.tree_arity}"

    @property
    def elements_per_block(self) -> int:
        return self.block_rows * self.panel_width

    def smem_footprint_bytes(self) -> int:
        """Shared-memory bytes per block: staging + u + partial sums.

        For the shared-memory strategies the whole block lives in shared
        memory; for the register-file strategies only the reflector, the
        partial sums and a staging buffer do.
        """
        fl = 4
        if self.strategy in ("smem_serial",):
            return fl * (self.elements_per_block + self.block_rows + self.threads)
        return fl * (self.block_rows + self.panel_width + 2 * self.threads)

    def regfile_footprint_bytes(self) -> int:
        """Register-file bytes per block (the matrix lives in registers)."""
        fl = 4
        if self.strategy in ("regfile_serial", "regfile_transpose", "smem_parallel"):
            return fl * self.elements_per_block + 32 * self.threads
        return 32 * self.threads

    def with_(self, **kwargs) -> "KernelConfig":
        return replace(self, **kwargs)


#: The paper's best configuration (Section IV-F: 128x16 blocks, 388 GFLOPS).
REFERENCE_CONFIG = KernelConfig()
